package fixedpsnr_test

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"fixedpsnr"
	"fixedpsnr/internal/kernels"
)

// -update regenerates the committed stream fixtures from the current
// code. Run it only when a format change is intentional:
//
//	go test -run TestStreamFixtures -update .
var updateFixtures = flag.Bool("update", false, "regenerate testdata stream fixtures")

// fixtureField builds the deterministic synthetic field the committed
// fixtures were generated from. Any change here invalidates testdata.
func fixtureField(name string, prec fixedpsnr.Precision, dims ...int) *fixedpsnr.Field {
	f := fixedpsnr.NewField(name, prec, dims...)
	inner := 1
	for _, d := range dims[1:] {
		inner *= d
	}
	for i := range f.Data {
		r, c := i/inner, i%inner
		v := math.Sin(0.11*float64(r))*math.Cos(0.07*float64(c)) +
			0.3*math.Sin(0.013*float64(r)*float64(c%37)) +
			0.05*math.Cos(0.41*float64(i%101))
		if prec == fixedpsnr.Float32 {
			v = float64(float32(v))
		}
		f.Data[i] = v
	}
	return f
}

// fixtureConfigs are the encode configurations pinned by committed
// fixtures: every steered target and both pipelines, all with explicit
// Workers and ChunkPoints so the tiling is machine-independent.
func fixtureConfigs() map[string]fixedpsnr.Options {
	return map[string]fixedpsnr.Options{
		"sz_psnr_calibrated": {
			Mode: fixedpsnr.ModePSNR, TargetPSNR: 60, Calibrated: true,
			ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2,
		},
		"sz_psnr_plain": {
			Mode: fixedpsnr.ModePSNR, TargetPSNR: 80,
			ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2,
		},
		"sz_ratio": {
			Mode: fixedpsnr.ModeRatio, TargetRatio: 8,
			ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2,
		},
		"sz_abs": {
			Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3,
			ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2,
		},
		"otc_psnr": {
			Mode: fixedpsnr.ModePSNR, TargetPSNR: 60,
			Compressor:  fixedpsnr.CompressorTransform,
			ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2,
		},
	}
}

// TestStreamFixtures pins the exact bytes every no-region-target encode
// produces: refactors of the steering stack (per-region targets, group
// tables) must leave plain streams untouched, so new code is compared
// byte for byte against fixtures committed from the previous release.
// The current (four-lane payload) fixtures live under
// testdata/streams/lanes4; the files directly under testdata/streams are
// the frozen legacy single-stream fixtures TestLegacyStreamFixtures
// guards and -update never rewrites.
func TestStreamFixtures(t *testing.T) {
	f := fixtureField("fixture", fixedpsnr.Float32, 64, 64, 16)
	for name, opt := range fixtureConfigs() {
		t.Run(name, func(t *testing.T) {
			blob, _, err := fixedpsnr.Compress(f, opt)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "streams", "lanes4", name+".fpsz")
			if *updateFixtures {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(blob))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (regenerate with -update): %v", err)
			}
			if !bytes.Equal(blob, want) {
				t.Fatalf("stream bytes differ from committed fixture %s (%d vs %d bytes): no-region-target output must stay byte-identical across releases",
					path, len(blob), len(want))
			}
			// The fixture must still round-trip through current decoders.
			g, _, err := fixedpsnr.Decompress(want)
			if err != nil {
				t.Fatal(err)
			}
			if d := fixedpsnr.CompareFields(f, g); !(d.PSNR > 40) {
				t.Fatalf("fixture round-trip PSNR %.2f dB", d.PSNR)
			}
		})
	}
}

// TestLegacyStreamFixtures is the backward-compatibility guard for the
// pre-lane payload format: the streams directly under testdata/streams
// were committed before the four-lane payload existed and are frozen —
// -update deliberately does not rewrite them. Each must keep decoding
// through the legacy dispatch path, and its reconstruction must be
// bit-identical to decoding a current-format encode of the same input:
// the lane refactor changed only the entropy-stage serialization, never
// the codes or literals, so the two decodes must agree on every float.
func TestLegacyStreamFixtures(t *testing.T) {
	f := fixtureField("fixture", fixedpsnr.Float32, 64, 64, 16)
	for name, opt := range fixtureConfigs() {
		t.Run(name, func(t *testing.T) {
			legacy, err := os.ReadFile(filepath.Join("testdata", "streams", name+".fpsz"))
			if err != nil {
				t.Fatalf("missing frozen legacy fixture: %v", err)
			}
			got, _, err := fixedpsnr.Decompress(legacy)
			if err != nil {
				t.Fatalf("legacy stream no longer decodes: %v", err)
			}
			if opt.Mode == fixedpsnr.ModeRatio {
				// Fixed-ratio steering converges on the achieved
				// compressed size, which the payload format changes, so
				// the legacy stream's error bound legitimately differs
				// from a current encode's. Guard decode fidelity instead
				// of bit-equality.
				if d := fixedpsnr.CompareFields(f, got); !(d.PSNR > 40) {
					t.Fatalf("legacy fixture round-trip PSNR %.2f dB", d.PSNR)
				}
				return
			}
			blob, _, err := fixedpsnr.Compress(f, opt)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := fixedpsnr.Decompress(blob)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Data) != len(want.Data) {
				t.Fatalf("legacy decode has %d points, current %d", len(got.Data), len(want.Data))
			}
			for i := range got.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("legacy decode diverges from current-format decode at point %d: %x vs %x",
						i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
				}
			}
		})
	}
}

// TestStreamFixturesKernelIndependent is the kernel-drift guard: every
// fixture input is encoded twice in one process — once under whatever
// kernel implementation init dispatched (AVX2 assembly on capable amd64
// hosts) and once with the generic kernels forced — and the container
// bytes must be identical. Together with the committed-fixture
// comparison in TestStreamFixtures this pins the bit-identity contract:
// no assembly change can silently alter stream bytes without tripping
// one of the two. On builds where dispatch already selected the generic
// kernels the two encodes coincide; the test still guards against a
// ForceGeneric restore bug.
func TestStreamFixturesKernelIndependent(t *testing.T) {
	f := fixtureField("fixture", fixedpsnr.Float32, 64, 64, 16)
	for name, opt := range fixtureConfigs() {
		t.Run(name, func(t *testing.T) {
			dispatched, _, err := fixedpsnr.Compress(f, opt)
			if err != nil {
				t.Fatal(err)
			}
			restore := kernels.ForceGeneric()
			generic, _, genErr := fixedpsnr.Compress(f, opt)
			restore()
			if genErr != nil {
				t.Fatal(genErr)
			}
			if !bytes.Equal(dispatched, generic) {
				t.Fatalf("%s: %s-kernel stream (%d bytes) differs from generic-kernel stream (%d bytes): kernel implementations must be bit-identical",
					name, kernels.Active(), len(dispatched), len(generic))
			}
		})
	}
}
