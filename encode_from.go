package fixedpsnr

import (
	"context"
	"fmt"
	"io"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/plan"
	"fixedpsnr/internal/quantizer"
)

// FieldSpec describes a field whose values arrive incrementally through
// a FieldReader: everything the encoder must know before the first value.
type FieldSpec struct {
	// Name identifies the field.
	Name string
	// Precision is the storage precision of the values.
	Precision Precision
	// Dims holds the grid dimensions, slowest-varying first (rank 1–3).
	Dims []int
	// Min and Max are the field's value range when known. HPC writers
	// usually have it (simulation outputs carry min/max attributes);
	// ModeRel and ModePSNR require it, because the relative bound and
	// the Eq. 8 bound are derived from the range before any value is
	// read. ModeAbs works without it.
	Min, Max float64
	// HasRange reports whether Min/Max are meaningful.
	HasRange bool
}

// FieldReader supplies a field's values incrementally, in row-major
// order, so the streaming encoder never needs the whole field in memory.
// Implementations are read exactly once, front to back.
type FieldReader interface {
	// Spec returns the field's metadata. It is called once, before any
	// values are read.
	Spec() (FieldSpec, error)
	// ReadValues fills dst with the next values in row-major order and
	// returns how many were written (any number ≥ 1 while values
	// remain). It returns io.EOF — with 0 — once the field's
	// Dims-implied point count has been delivered.
	ReadValues(dst []float64) (int, error)
}

// fieldDataReader adapts an in-memory Field to the FieldReader
// interface; its Spec carries the measured value range.
type fieldDataReader struct {
	f   *Field
	pos int
}

// NewFieldReader wraps an in-memory field as a FieldReader (its value
// range is measured up front), so code paths built on EncodeFrom also
// accept fields that happen to fit in memory.
func NewFieldReader(f *Field) FieldReader { return &fieldDataReader{f: f} }

func (r *fieldDataReader) Spec() (FieldSpec, error) {
	if err := r.f.Validate(); err != nil {
		return FieldSpec{}, err
	}
	min, max, _ := r.f.ValueRange()
	return FieldSpec{
		Name:      r.f.Name,
		Precision: r.f.Precision,
		Dims:      append([]int(nil), r.f.Dims...),
		Min:       min,
		Max:       max,
		HasRange:  true,
	}, nil
}

func (r *fieldDataReader) ReadValues(dst []float64) (int, error) {
	if r.pos >= len(r.f.Data) {
		return 0, io.EOF
	}
	n := copy(dst, r.f.Data[r.pos:])
	r.pos += n
	return n, nil
}

// EncodeFrom compresses a field that streams through fr chunk by chunk:
// rows are read into a bounded window of chunk buffers and compressed
// concurrently, so peak memory is O(chunk size × workers) rather than
// O(field) — the out-of-core encode path for fields larger than RAM. The
// output is a standard chunked stream, byte-compatible with Encode's
// given the same chunk tiling.
//
// Constraints that follow from single-pass streaming: ModeRel and
// ModePSNR need the value range up front (FieldSpec.HasRange), because
// the bound is derived from it before the first value arrives; ModePWRel,
// ModeRatio, and AutoCapacity need the whole field and are rejected; the
// Calibrated refinement would need to re-read the input and is ignored. The chunk
// size comes from ChunkPoints (DefaultChunkPoints when zero); ChunkRows
// overrides it.
func (e *Encoder) EncodeFrom(ctx context.Context, fr FieldReader) ([]byte, *Result, error) {
	opt := e.opt
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if opt.Mode == ModePWRel {
		return nil, nil, fmt.Errorf("fixedpsnr: EncodeFrom does not support ModePWRel (needs the whole field)")
	}
	if opt.Mode == ModeRatio {
		return nil, nil, fmt.Errorf("fixedpsnr: EncodeFrom does not support ModeRatio (ratio steering recompresses, which needs the whole field)")
	}
	if len(opt.RegionTargets) > 0 {
		return nil, nil, fmt.Errorf("fixedpsnr: EncodeFrom does not support RegionTargets (region steering recompresses, which needs the whole field)")
	}
	if opt.AutoCapacity {
		return nil, nil, fmt.Errorf("fixedpsnr: EncodeFrom does not support AutoCapacity (needs the whole field)")
	}
	spec, err := fr.Spec()
	if err != nil {
		return nil, nil, fmt.Errorf("fixedpsnr: field spec: %w", err)
	}
	if len(spec.Dims) == 0 || len(spec.Dims) > 3 {
		return nil, nil, fmt.Errorf("fixedpsnr: unsupported rank %d (want 1..3)", len(spec.Dims))
	}
	for _, d := range spec.Dims {
		if d <= 0 {
			return nil, nil, fmt.Errorf("fixedpsnr: non-positive dimension %d in %v", d, spec.Dims)
		}
	}
	vr := 0.0
	if spec.HasRange {
		vr = spec.Max - spec.Min
	}
	if (opt.Mode == ModeRel || opt.Mode == ModePSNR) && !spec.HasRange {
		return nil, nil, fmt.Errorf("fixedpsnr: %v needs FieldSpec.HasRange — the bound derives from the value range before any value is read", opt.Mode)
	}
	if opt.Mode == ModeAbs && !(opt.ErrorBound > 0) && !(spec.HasRange && vr == 0) {
		return nil, nil, fmt.Errorf("fixedpsnr: ModeAbs requires a positive ErrorBound")
	}

	res, err := opt.planRequest(spec.Precision).Resolve(vr)
	if err != nil {
		return nil, nil, err
	}
	if spec.HasRange && vr == 0 {
		return encodeConstantFrom(fr, spec, opt, res)
	}

	name := opt.codecName()
	c, ok := codec.ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("fixedpsnr: codec %q is not registered", name)
	}
	cc, ok := c.(codec.ChunkCodec)
	if !ok {
		return nil, nil, fmt.Errorf("fixedpsnr: codec %q cannot compress chunk-by-chunk: %w", name, codec.ErrNotChunked)
	}
	if name != "sz" && name != "otc" {
		// EncodeFrom assembles the container itself and must stamp the
		// stream ID the chunks decode under; custom pipelines own their
		// IDs and go through Encode.
		return nil, nil, fmt.Errorf("fixedpsnr: EncodeFrom supports the built-in pipelines, not %q", name)
	}

	copt := opt.codecOptions(res, vr)
	if copt.ChunkPoints == 0 && copt.ChunkRows == 0 {
		copt.ChunkPoints = DefaultChunkPoints
	}
	// The codec's own planner (otc aligns chunks to its block edge) must
	// drive the tiling so EncodeFrom stays byte-identical to Encode.
	spans := codec.PlanChunkSpans(cc, spec.Dims, copt)
	inner := 1
	for _, d := range spec.Dims[1:] {
		inner *= d
	}

	payloads := make([][]byte, len(spans))
	chunks := make([]codec.ChunkInfo, len(spans))
	// The Group's semaphore is the bounded window: the reader blocks in
	// Go once `workers` chunks are in flight, so at most workers+1 chunk
	// buffers exist at any moment, all drawn from the session's pools.
	g := parallel.NewGroup(opt.Workers)
	for ci := range spans {
		if err := ctx.Err(); err != nil {
			g.Wait()
			return nil, nil, err
		}
		if g.Err() != nil {
			break
		}
		rows := spans[ci][1] - spans[ci][0]
		buf := e.scratch.Floats(rows * inner)
		if err := readFull(fr, buf); err != nil {
			g.Wait()
			return nil, nil, fmt.Errorf("fixedpsnr: reading chunk %d: %w", ci, err)
		}
		ci := ci
		g.Go(func() error {
			defer e.scratch.PutFloats(buf)
			dims := append([]int{rows}, spec.Dims[1:]...)
			payload, cst, err := cc.CompressChunk(ctx, buf, dims, spec.Precision, copt, e.scratch)
			if err != nil {
				return fmt.Errorf("fixedpsnr: chunk %d: %w", ci, err)
			}
			payloads[ci] = payload
			chunks[ci] = codec.ChunkInfo{
				Rows:          rows,
				Unpredictable: cst.Unpredictable,
				MSE:           cst.MSE,
				Min:           cst.Min,
				Max:           cst.Max,
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, nil, err
	}

	h := &codec.Header{
		Codec:      streamIDFor(name),
		Precision:  spec.Precision,
		Mode:       res.StreamMode,
		Name:       spec.Name,
		Dims:       append([]int(nil), spec.Dims...),
		EbAbs:      res.EbAbs,
		TargetPSNR: res.TargetPSNR,
		ValueRange: vr,
		Capacity:   copt.Capacity,
		Chunks:     chunks,
	}
	if h.Capacity == 0 {
		h.Capacity = quantizer.DefaultCapacity
	}
	out, err := codec.AssembleStream(h, payloads)
	if err != nil {
		return nil, nil, err
	}

	npts := h.NPoints()
	st := codec.StatsFromChunks(h, len(out), npts*spec.Precision.Bytes())
	return out, resultFromStats(st, res.EbAbs, res.EbRel, res.TargetPSNR, res.EstimatedPSNR), nil
}

// streamIDFor maps a built-in registry name to the stream ID its chunked
// streams carry. Custom ChunkCodecs are reached through Encode (they
// produce their own headers); EncodeFrom assembles the container itself
// and supports the built-in pipelines.
func streamIDFor(name string) codec.ID {
	if name == "otc" {
		return codec.IDOTC
	}
	return codec.IDLorenzo
}

// readFull fills buf completely from fr.
func readFull(fr FieldReader, buf []float64) error {
	for off := 0; off < len(buf); {
		n, err := fr.ReadValues(buf[off:])
		off += n
		if err != nil {
			if err == io.EOF && off == len(buf) {
				return nil
			}
			if err == io.EOF {
				return fmt.Errorf("short field: %w", io.ErrUnexpectedEOF)
			}
			return err
		}
		if n == 0 {
			return fmt.Errorf("reader returned no data without error")
		}
	}
	return nil
}

// encodeConstantFrom handles the zero-range case: the stream is a
// constant header carrying the first value; the reader is drained to
// honor the read-once contract.
func encodeConstantFrom(fr FieldReader, spec FieldSpec, opt Options, res plan.Resolution) ([]byte, *Result, error) {
	var first [1]float64
	n, err := fr.ReadValues(first[:])
	if err != nil && err != io.EOF {
		return nil, nil, err
	}
	if n == 0 {
		first[0] = spec.Min
	}
	// Drain the remainder so the reader's stream position is consistent.
	sink := make([]float64, 4096)
	for {
		_, err := fr.ReadValues(sink)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
	}
	h := &codec.Header{
		Codec:      codec.IDConstant,
		Precision:  spec.Precision,
		Mode:       res.StreamMode,
		Name:       spec.Name,
		Dims:       append([]int(nil), spec.Dims...),
		ConstValue: first[0],
	}
	out := h.Marshal()
	npts := h.NPoints()
	st := &codec.Stats{
		OriginalBytes:   npts * spec.Precision.Bytes(),
		CompressedBytes: len(out),
		NPoints:         npts,
		Chunks:          1,
	}
	if len(out) > 0 {
		st.Ratio = float64(st.OriginalBytes) / float64(len(out))
		st.BitRate = 8 * float64(len(out)) / float64(npts)
	}
	return out, resultFromStats(st, res.EbAbs, res.EbRel, res.TargetPSNR, res.EstimatedPSNR), nil
}
