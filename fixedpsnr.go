// Package fixedpsnr provides fixed-PSNR error-controlled lossy compression
// for 1-, 2-, and 3-dimensional scientific floating-point fields,
// reproducing "Fixed-PSNR Lossy Compression for Scientific Data"
// (Tao, Di, Liang, Chen, Cappello — IEEE CLUSTER 2018).
//
// The package wraps two compressor families behind one interface:
//
//   - CompressorSZ — an SZ-style prediction-based pipeline (Lorenzo
//     predictor, error-controlled uniform quantization, Huffman, DEFLATE);
//   - CompressorTransform — a blockwise orthonormal-DCT pipeline with the
//     same quantization and entropy back end.
//
// Four error-control modes are supported:
//
//   - ModeAbs   — absolute error bound (|x−x̃| ≤ eb for every point);
//   - ModeRel   — value-range-based relative bound (eb = rel·(max−min));
//   - ModePSNR  — the paper's contribution: a target PSNR is converted to
//     a relative bound in closed form (ebrel = √3·10^(−PSNR/20), Eq. 8)
//     and the compressor runs exactly once;
//   - ModePWRel — pointwise relative bound (|x−x̃| ≤ rel·|x|), via
//     log-domain compression (SZ family only).
//
// Quick start:
//
//	f := fixedpsnr.NewField("temperature", fixedpsnr.Float32, 100, 500, 500)
//	// ... fill f.Data ...
//	stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
//		Mode:       fixedpsnr.ModePSNR,
//		TargetPSNR: 80, // dB
//	})
//	// ...
//	g, info, err := fixedpsnr.Decompress(stream)
//	d := fixedpsnr.CompareFields(f, g) // d.PSNR ≈ 80 dB
package fixedpsnr

import (
	"fmt"
	"math"

	"fixedpsnr/internal/core"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/otc"
	"fixedpsnr/internal/stats"
	"fixedpsnr/internal/sz"
)

// Field is the N-dimensional data container accepted by Compress.
type Field = field.Field

// Precision tags the storage precision of field values.
type Precision = field.Precision

// Precision values.
const (
	Float32 = field.Float32
	Float64 = field.Float64
)

// NewField allocates a zero-filled field (see field.New).
func NewField(name string, prec Precision, dims ...int) *Field {
	return field.New(name, prec, dims...)
}

// FieldFromData wraps an existing row-major slice as a field without
// copying.
func FieldFromData(name string, prec Precision, data []float64, dims ...int) (*Field, error) {
	return field.FromData(name, prec, data, dims...)
}

// Distortion reports reconstruction quality (MSE, NRMSE, PSNR, max error).
type Distortion = stats.Distortion

// CompareFields computes distortion metrics between an original and a
// reconstructed field. It panics if shapes differ.
func CompareFields(orig, recon *Field) Distortion {
	return stats.Compare(orig.Data, recon.Data)
}

// StreamInfo describes a compressed stream's header.
type StreamInfo = sz.Header

// Plan is the bound derivation produced by fixed-PSNR planning.
type Plan = core.Plan

// Mode selects the error-control strategy.
type Mode int

// Modes.
const (
	// ModeAbs bounds the absolute pointwise error.
	ModeAbs Mode = iota
	// ModeRel bounds the pointwise error relative to the value range.
	ModeRel
	// ModePSNR fixes the overall PSNR of the reconstruction (the
	// paper's fixed-PSNR mode).
	ModePSNR
	// ModePWRel bounds the pointwise error relative to each value.
	ModePWRel
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAbs:
		return "abs"
	case ModeRel:
		return "rel"
	case ModePSNR:
		return "psnr"
	case ModePWRel:
		return "pwrel"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Compressor selects the compression pipeline.
type Compressor int

// Compressors.
const (
	// CompressorSZ is the prediction-based (Lorenzo) pipeline.
	CompressorSZ Compressor = iota
	// CompressorTransform is the blockwise orthonormal-DCT pipeline.
	// It controls l2 distortion only (no pointwise bound), which makes
	// it most useful in ModePSNR/ModeRel.
	CompressorTransform
	// CompressorWavelet is the blockwise orthonormal Haar-DWT pipeline
	// (SSEM-flavored), sharing the transform back end.
	CompressorWavelet
)

// String names the compressor.
func (c Compressor) String() string {
	switch c {
	case CompressorSZ:
		return "sz"
	case CompressorTransform:
		return "transform"
	case CompressorWavelet:
		return "wavelet"
	default:
		return fmt.Sprintf("compressor(%d)", int(c))
	}
}

// Options configures Compress.
type Options struct {
	// Mode selects how the error bound is specified (default ModeAbs).
	Mode Mode
	// Compressor selects the pipeline (default CompressorSZ).
	Compressor Compressor

	// ErrorBound is the absolute bound for ModeAbs.
	ErrorBound float64
	// RelBound is the value-range-based relative bound for ModeRel.
	RelBound float64
	// TargetPSNR is the target PSNR in dB for ModePSNR.
	TargetPSNR float64
	// Calibrated refines ModePSNR for low targets (the paper's stated
	// future work). Theorem 1 lets the compressor measure its exact MSE
	// during compression, so when the Eq. 8 pass lands outside ±0.5 dB
	// of the target the bin width is re-derived by a log–log secant
	// step and the field recompressed (up to three extra passes). High
	// targets exit after the first pass at no extra cost. SZ pipeline
	// only; other pipelines ignore it.
	Calibrated bool
	// PWRelBound is the pointwise relative bound for ModePWRel.
	PWRelBound float64

	// Capacity is the number of quantization intervals (0 = default
	// 65536); AutoCapacity estimates it from the data instead.
	Capacity     int
	AutoCapacity bool
	// Workers bounds compression concurrency (0 = all CPUs).
	Workers int
	// ChunkRows forces the parallel slab height (SZ pipeline).
	ChunkRows int
	// Level is the DEFLATE level (0 = fastest).
	Level int
	// BlockSize is the transform block edge (transform pipeline).
	BlockSize int
}

// Result reports the outcome of one compression.
type Result struct {
	// OriginalBytes and CompressedBytes give the size accounting at the
	// field's declared precision.
	OriginalBytes   int
	CompressedBytes int
	// Ratio is OriginalBytes / CompressedBytes.
	Ratio float64
	// BitRate is compressed bits per value.
	BitRate float64
	// NPoints is the number of values compressed.
	NPoints int
	// Unpredictable counts points (or coefficients) stored losslessly.
	Unpredictable int
	// EbAbs and EbRel are the bounds the quantizer actually ran with.
	// For ModePSNR they come from the Eq. 8 plan.
	EbAbs, EbRel float64
	// TargetPSNR echoes the requested PSNR (NaN for other modes).
	TargetPSNR float64
	// EstimatedPSNR is the closed-form Eq. 7 prediction of the actual
	// PSNR at the chosen bound (+Inf for constant fields).
	EstimatedPSNR float64
	// MSE and MeasuredPSNR are the *exact* reconstruction distortion,
	// measured during compression via Theorem 1 (SZ pipeline only; NaN
	// for the transform pipelines, +Inf PSNR for lossless/constant).
	MSE          float64
	MeasuredPSNR float64
}

// Compress compresses the field according to the options and returns the
// self-describing stream plus a result summary.
func Compress(f *Field, opt Options) ([]byte, *Result, error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	_, _, vr := f.ValueRange()

	var (
		ebAbs  float64
		target = math.NaN()
		szMode sz.Mode
	)
	switch opt.Mode {
	case ModeAbs:
		if !(opt.ErrorBound > 0) {
			if vr == 0 { // constant fields need no bound
				break
			}
			return nil, nil, fmt.Errorf("fixedpsnr: ModeAbs requires a positive ErrorBound")
		}
		ebAbs = opt.ErrorBound
		szMode = sz.ModeAbs
	case ModeRel:
		if !(opt.RelBound > 0) {
			return nil, nil, fmt.Errorf("fixedpsnr: ModeRel requires a positive RelBound")
		}
		ebAbs = opt.RelBound * vr
		szMode = sz.ModeRel
	case ModePSNR:
		plan, err := core.PlanFixedPSNR(opt.TargetPSNR, vr)
		if err != nil {
			return nil, nil, err
		}
		ebAbs = plan.EbAbs
		target = opt.TargetPSNR
		szMode = sz.ModePSNR
	case ModePWRel:
		if opt.Compressor != CompressorSZ {
			return nil, nil, fmt.Errorf("fixedpsnr: ModePWRel is only supported by CompressorSZ")
		}
		blob, st, err := sz.CompressPWRel(f, opt.PWRelBound, sz.Options{
			Capacity:     opt.Capacity,
			AutoCapacity: opt.AutoCapacity,
			Workers:      opt.Workers,
			ChunkRows:    opt.ChunkRows,
			Level:        opt.Level,
		})
		if err != nil {
			return nil, nil, err
		}
		return blob, resultFromSZ(st, opt.PWRelBound, 0, math.NaN(), math.Inf(1)), nil
	default:
		return nil, nil, fmt.Errorf("fixedpsnr: unknown mode %v", opt.Mode)
	}

	ebRel := 0.0
	if vr > 0 {
		ebRel = ebAbs / vr
	}
	estimate := core.EstimatePSNRFromAbsBound(vr, ebAbs)

	switch opt.Compressor {
	case CompressorSZ:
		szOpt := sz.Options{
			ErrorBound:   ebAbs,
			Capacity:     opt.Capacity,
			AutoCapacity: opt.AutoCapacity,
			Workers:      opt.Workers,
			ChunkRows:    opt.ChunkRows,
			Level:        opt.Level,
			Mode:         szMode,
			TargetPSNR:   target,
			ValueRange:   vr,
		}
		blob, st, err := sz.Compress(f, szOpt)
		if err != nil {
			return nil, nil, err
		}
		if opt.Calibrated && opt.Mode == ModePSNR && vr > 0 {
			blob, st, ebAbs, err = refineFixedPSNR(f, szOpt, blob, st, target, vr)
			if err != nil {
				return nil, nil, err
			}
			ebRel = ebAbs / vr
		}
		return blob, resultFromSZ(st, ebAbs, ebRel, target, estimate), nil
	case CompressorTransform, CompressorWavelet:
		tr := otc.TransformDCT
		if opt.Compressor == CompressorWavelet {
			tr = otc.TransformHaar
		}
		blob, st, err := otc.Compress(f, otc.Options{
			Delta:      2 * ebAbs, // Eq. 6's δ; equals DeltaForPSNR in PSNR mode
			Transform:  tr,
			BlockSize:  opt.BlockSize,
			Capacity:   opt.Capacity,
			Workers:    opt.Workers,
			Level:      opt.Level,
			Mode:       szMode,
			TargetPSNR: target,
			ValueRange: vr,
		})
		if err != nil {
			return nil, nil, err
		}
		return blob, &Result{
			OriginalBytes:   st.OriginalBytes,
			CompressedBytes: st.CompressedBytes,
			Ratio:           st.Ratio,
			BitRate:         st.BitRate,
			NPoints:         st.NPoints,
			Unpredictable:   st.Unpredictable,
			EbAbs:           ebAbs,
			EbRel:           ebRel,
			TargetPSNR:      target,
			EstimatedPSNR:   estimate,
			MSE:             math.NaN(), // not measured by the transform pipeline
			MeasuredPSNR:    math.NaN(),
		}, nil
	default:
		return nil, nil, fmt.Errorf("fixedpsnr: unknown compressor %v", opt.Compressor)
	}
}

// refineFixedPSNR implements the calibrated mode: Theorem 1 lets the
// compressor measure its exact MSE during compression, so when the first
// (Eq. 8) pass lands outside ±0.5 dB of the target — which happens at low
// targets where prediction errors concentrate in the center bin — the bin
// width is re-derived by a log–log secant step and the field recompressed,
// up to three extra passes. High targets exit after the first pass.
func refineFixedPSNR(f *Field, szOpt sz.Options, blob []byte, st *sz.Stats, target, vr float64) ([]byte, *sz.Stats, float64, error) {
	const tolDB = 0.5
	targetMSE := core.MSEForPSNR(target, vr)
	d0, mse0 := 2*szOpt.ErrorBound, st.MSE
	var d1, mse1 float64
	ebAbs := szOpt.ErrorBound
	for pass := 0; pass < 3 && !core.WithinTolerance(st.MSE, target, vr, tolDB); pass++ {
		if st.MSE == 0 {
			break // lossless at this bound; nothing cheaper to try safely
		}
		next, err := core.NextDelta(d0, mse0, d1, mse1, targetMSE)
		if err != nil {
			break
		}
		if d1 > 0 {
			d0, mse0 = d1, mse1
		}
		szOpt.ErrorBound = next / 2
		nb, nst, nerr := sz.Compress(f, szOpt)
		if nerr != nil {
			return nil, nil, 0, nerr
		}
		blob, st = nb, nst
		ebAbs = next / 2
		d1, mse1 = next, st.MSE
	}
	return blob, st, ebAbs, nil
}

func resultFromSZ(st *sz.Stats, ebAbs, ebRel, target, estimate float64) *Result {
	r := &Result{
		OriginalBytes:   st.OriginalBytes,
		CompressedBytes: st.CompressedBytes,
		Ratio:           st.Ratio,
		BitRate:         st.BitRate,
		NPoints:         st.NPoints,
		Unpredictable:   st.Unpredictable,
		EbAbs:           ebAbs,
		EbRel:           ebRel,
		TargetPSNR:      target,
		EstimatedPSNR:   estimate,
		MSE:             st.MSE,
		MeasuredPSNR:    math.Inf(1),
	}
	if st.MSE > 0 {
		var vr float64
		if ebRel > 0 {
			vr = ebAbs / ebRel
		}
		if vr > 0 {
			r.MeasuredPSNR = -10*math.Log10(st.MSE) + 20*math.Log10(vr)
		} else {
			r.MeasuredPSNR = math.NaN()
		}
	}
	return r
}

// CompressFixedPSNR is shorthand for Compress in ModePSNR with the SZ
// pipeline: one-shot compression to a target PSNR.
func CompressFixedPSNR(f *Field, targetPSNR float64) ([]byte, *Result, error) {
	return Compress(f, Options{Mode: ModePSNR, TargetPSNR: targetPSNR})
}

// Decompress reconstructs a field from any stream produced by Compress,
// dispatching on the codec recorded in the header.
func Decompress(data []byte) (*Field, *StreamInfo, error) {
	h, err := sz.ParseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	switch h.Codec {
	case sz.CodecLorenzo, sz.CodecConstant, sz.CodecLogLorenzo:
		return sz.Decompress(data)
	case sz.CodecOTC:
		return otc.Decompress(data)
	default:
		return nil, nil, fmt.Errorf("fixedpsnr: unknown codec %v", h.Codec)
	}
}

// Inspect parses a stream header without decompressing the payload.
func Inspect(data []byte) (*StreamInfo, error) {
	return sz.ParseHeader(data)
}

// RelBoundForPSNR exposes Eq. 8: the value-range-based relative error
// bound that achieves the target PSNR.
func RelBoundForPSNR(targetPSNR float64) float64 {
	return core.RelBoundForPSNR(targetPSNR)
}

// EstimatePSNR exposes Eq. 7: the PSNR an SZ-style compressor achieves at
// an absolute bound ebAbs over data of value range vr.
func EstimatePSNR(vr, ebAbs float64) float64 {
	return core.EstimatePSNRFromAbsBound(vr, ebAbs)
}

// PlanFixedPSNR exposes the full bound derivation for one field.
func PlanFixedPSNR(targetPSNR, vr float64) (Plan, error) {
	return core.PlanFixedPSNR(targetPSNR, vr)
}
