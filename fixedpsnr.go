// Package fixedpsnr provides fixed-PSNR error-controlled lossy compression
// for 1-, 2-, and 3-dimensional scientific floating-point fields,
// reproducing "Fixed-PSNR Lossy Compression for Scientific Data"
// (Tao, Di, Liang, Chen, Cappello — IEEE CLUSTER 2018).
//
// The compression stack has four layers (top to bottom):
//
//   - this package — the public API: fields in, self-describing streams
//     and archives out;
//   - internal/plan — error-control planning: every mode is converted to
//     the absolute bound a codec runs with (Eq. 8 for fixed PSNR), plus
//     the calibrated refinement loop (chunk-aware: the global MSE is
//     aggregated from per-chunk MSEs and only stale chunks recompress);
//   - internal/codec — the codec registry and the shared chunked stream
//     container (per-chunk index with offsets and statistics, enabling
//     random-access region decodes and bounded-memory streaming);
//   - internal/sz and internal/otc — the registered pipelines: an
//     SZ-style prediction-based compressor (Lorenzo predictor,
//     error-controlled uniform quantization, Huffman, DEFLATE) and a
//     blockwise orthonormal-transform compressor (DCT or Haar) with the
//     same entropy back end.
//
// Five quality targets (error-control modes) are supported:
//
//   - ModeAbs   — absolute error bound (|x−x̃| ≤ eb for every point);
//   - ModeRel   — value-range-based relative bound (eb = rel·(max−min));
//   - ModePSNR  — the paper's contribution: a target PSNR is converted to
//     a relative bound in closed form (ebrel = √3·10^(−PSNR/20), Eq. 8)
//     and the compressor runs exactly once (Calibrated adds a
//     measured-MSE secant refinement for low targets);
//   - ModeRatio — FRaZ-style fixed compression ratio: the bound is
//     steered by a log–log secant over the measured rate curve until
//     original/compressed bytes lands within RatioTolerance of
//     TargetRatio (works on every pipeline — size needs no Theorem 1);
//   - ModePWRel — pointwise relative bound (|x−x̃| ≤ rel·|x|), via
//     log-domain compression (SZ family only).
//
// Quality can additionally vary by region: Options.RegionTargets steers
// sub-blocks of a field to their own PSNR or ratio targets (a region of
// interest held at 80 dB over a fixed-ratio background), with per-group
// outcomes in Result.Regions and the group table recorded in the stream
// (format v4).
//
// The primary API is the session pair Encoder/Decoder: reusable,
// concurrency-safe objects built with functional options that thread a
// context.Context through the pipelines (cancellation aborts within one
// chunk of work), reuse pooled scratch buffers across calls, and offer
// io.Writer/io.Reader streaming, batch compression, bounded-memory
// streaming encodes (EncodeFrom), and random-access region decodes
// (DecodeRegion) over the chunked container:
//
//	enc, err := fixedpsnr.NewEncoder(
//		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
//		fixedpsnr.WithTargetPSNR(80), // dB
//	)
//	stream, res, err := enc.Encode(ctx, f)
//	g, info, err := fixedpsnr.NewDecoder().Decode(ctx, stream)
//	d := fixedpsnr.CompareFields(f, g) // d.PSNR ≈ 80 dB
//
// One-shot quick start (a thin wrapper over the same core):
//
//	f := fixedpsnr.NewField("temperature", fixedpsnr.Float32, 100, 500, 500)
//	// ... fill f.Data ...
//	stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
//		Mode:       fixedpsnr.ModePSNR,
//		TargetPSNR: 80, // dB
//	})
//	// ...
//	g, info, err := fixedpsnr.Decompress(stream)
package fixedpsnr

import (
	"compress/flate"
	"context"
	"fmt"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/core"
	"fixedpsnr/internal/field"
	_ "fixedpsnr/internal/otc" // register the orthogonal-transform codec
	"fixedpsnr/internal/plan"
	"fixedpsnr/internal/stats"
	_ "fixedpsnr/internal/sz" // register the prediction-based codec
)

// Field is the N-dimensional data container accepted by Compress.
type Field = field.Field

// Precision tags the storage precision of field values.
type Precision = field.Precision

// Precision values.
const (
	Float32 = field.Float32
	Float64 = field.Float64
)

// NewField allocates a zero-filled field (see field.New).
func NewField(name string, prec Precision, dims ...int) *Field {
	return field.New(name, prec, dims...)
}

// FieldFromData wraps an existing row-major slice as a field without
// copying.
func FieldFromData(name string, prec Precision, data []float64, dims ...int) (*Field, error) {
	return field.FromData(name, prec, data, dims...)
}

// Distortion reports reconstruction quality (MSE, NRMSE, PSNR, max error).
type Distortion = stats.Distortion

// CompareFields computes distortion metrics between an original and a
// reconstructed field. It panics if shapes differ.
func CompareFields(orig, recon *Field) Distortion {
	return stats.Compare(orig.Data, recon.Data)
}

// StreamInfo describes a compressed stream's header.
type StreamInfo = codec.Header

// ChunkInfo is one entry of a chunked stream's per-chunk index: the rows
// it covers, where its payload lives, and the statistics (exact MSE,
// value range) measured when it was compressed.
type ChunkInfo = codec.ChunkInfo

// Chunked-container sizing (see Options.ChunkPoints).
const (
	// MinChunkPoints is the smallest accepted ChunkPoints value.
	MinChunkPoints = codec.MinChunkPoints
	// DefaultChunkPoints is the chunk size EncodeFrom uses when
	// ChunkPoints is zero.
	DefaultChunkPoints = codec.DefaultChunkPoints
)

// Plan is the bound derivation produced by fixed-PSNR planning.
type Plan = core.Plan

// Mode selects the error-control strategy (see internal/plan).
type Mode = plan.Mode

// Modes.
const (
	// ModeAbs bounds the absolute pointwise error.
	ModeAbs = plan.ModeAbs
	// ModeRel bounds the pointwise error relative to the value range.
	ModeRel = plan.ModeRel
	// ModePSNR fixes the overall PSNR of the reconstruction (the
	// paper's fixed-PSNR mode).
	ModePSNR = plan.ModePSNR
	// ModePWRel bounds the pointwise error relative to each value.
	ModePWRel = plan.ModePWRel
	// ModeRatio fixes the overall compression ratio (FRaZ-style): the
	// bound is steered until OriginalBytes/CompressedBytes lands within
	// RatioTolerance of TargetRatio.
	ModeRatio = plan.ModeRatio
)

// Compressor selects the compression pipeline.
type Compressor int

// Compressors.
const (
	// CompressorSZ is the prediction-based (Lorenzo) pipeline.
	CompressorSZ Compressor = iota
	// CompressorTransform is the blockwise orthonormal-DCT pipeline.
	// It controls l2 distortion only (no pointwise bound), which makes
	// it most useful in ModePSNR/ModeRel.
	CompressorTransform
	// CompressorWavelet is the blockwise orthonormal Haar-DWT pipeline
	// (SSEM-flavored), sharing the transform back end.
	CompressorWavelet
)

// String names the compressor.
func (c Compressor) String() string {
	switch c {
	case CompressorSZ:
		return "sz"
	case CompressorTransform:
		return "transform"
	case CompressorWavelet:
		return "wavelet"
	default:
		return fmt.Sprintf("compressor(%d)", int(c))
	}
}

// codecName maps the compressor selector to its codec registry key.
func (c Compressor) codecName() string {
	switch c {
	case CompressorSZ:
		return "sz"
	case CompressorTransform, CompressorWavelet:
		return "otc"
	default:
		return ""
	}
}

// transform maps the compressor selector to the block transform used by
// the otc pipeline.
func (c Compressor) transform() codec.Transform {
	if c == CompressorWavelet {
		return codec.TransformHaar
	}
	return codec.TransformDCT
}

// Region is an axis-aligned sub-block of a field: a per-dimension offset
// and extent, the same shape DecodeRegion and ExtractRegion take. Region
// targets use it to mark the rows a quality demand covers.
type Region struct {
	// Off is the region's starting index per dimension.
	Off []int
	// Ext is the region's extent per dimension (every entry positive).
	Ext []int
}

// RegionTarget is one region group's quality demand: hold the given
// sub-block at its own target while the rest of the field follows the
// field-level options — a region of interest at high PSNR over a cheap
// fixed-ratio background, the workload region-of-interest fidelity asks
// for.
//
// Chunk granularity: the chunked container tiles the field into row
// slabs, so a region claims every chunk its rows intersect — region
// boundaries round outward to chunk boundaries, and quality spills over
// to the rest of any chunk the region touches. Two region targets whose
// row windows overlap (or share a chunk) are rejected; chunks no region
// touches follow the field-level target. Per-region PSNR targets are
// defined against the field's global value range, the same normalization
// as the stream-level fixed-PSNR guarantee.
type RegionTarget struct {
	// Name identifies the group in results, stream inspection, and
	// error messages. Empty selects "roi0", "roi1", ... by position;
	// "background" is reserved for the field-level default group.
	Name string
	// Region is the sub-block the target covers.
	Region Region
	// Mode is the group's steering mode: ModePSNR or ModeRatio.
	Mode Mode
	// TargetPSNR is the group's PSNR target in dB (ModePSNR).
	TargetPSNR float64
	// TargetRatio is the group's compression-ratio target (ModeRatio,
	// > 1).
	TargetRatio float64
}

// BackgroundGroup is the name of the implicit default group that holds
// every chunk no region target claims; it follows the field-level
// options.
const BackgroundGroup = "background"

// Options configures Compress.
type Options struct {
	// Mode selects how the error bound is specified (default ModeAbs).
	Mode Mode
	// Compressor selects the pipeline (default CompressorSZ).
	Compressor Compressor
	// Codec, when non-empty, selects a registered pipeline by name and
	// overrides Compressor — the hook through which codecs registered
	// via the public fixedpsnr/codec package become reachable from this
	// API. Decompression needs no selector: it routes by the codec byte
	// in the stream header.
	Codec string

	// ErrorBound is the absolute bound for ModeAbs.
	ErrorBound float64
	// RelBound is the value-range-based relative bound for ModeRel.
	RelBound float64
	// TargetPSNR is the target PSNR in dB for ModePSNR.
	TargetPSNR float64
	// Calibrated refines ModePSNR for low targets (the paper's stated
	// future work). Theorem 1 lets a pipeline measure its exact MSE
	// during compression, so when the Eq. 8 pass lands outside
	// ToleranceDB of the target the bin width is re-derived by a
	// log–log secant step and the field recompressed (up to
	// MaxRefinePasses extra passes). High targets exit after the first
	// pass at no extra cost. Only pipelines that measure their MSE
	// honor it (the SZ family); others ignore it.
	Calibrated bool
	// PWRelBound is the pointwise relative bound for ModePWRel.
	PWRelBound float64
	// TargetRatio is the target compression ratio
	// (OriginalBytes/CompressedBytes, > 1) for ModeRatio. The bound is
	// steered across passes until the achieved ratio lands within
	// RatioTolerance of it; the achieved value is reported in
	// Result.Ratio and the passes consumed in Result.Passes.
	TargetRatio float64

	// RegionTargets steers sub-blocks of the field to their own quality
	// targets: each region becomes a group of chunks driven by its own
	// Measure/Solve loop, while chunks outside every region follow the
	// field-level mode above. Regions are validated against the field at
	// encode time (in bounds, pairwise disjoint row windows); the
	// resulting stream is a version-4 grouped container and the
	// per-group outcomes land in Result.Regions. Requires a chunked
	// pipeline; incompatible with ModePWRel and EncodeFrom.
	RegionTargets []RegionTarget

	// ToleranceDB is the calibrated fixed-PSNR acceptance band in dB
	// around TargetPSNR (0 = the default 0.5 dB). Every steered target
	// reads its band through the same tuning mechanism.
	ToleranceDB float64
	// RatioTolerance is the fixed-ratio acceptance band as a fraction of
	// TargetRatio (0 = the default 0.05, i.e. ±5%).
	RatioTolerance float64
	// MaxRefinePasses bounds the extra compression passes any steered
	// target may take (0 = per-target default: 3 for calibrated
	// fixed-PSNR, 8 for fixed-ratio).
	MaxRefinePasses int
	// NoWarmStart disables the solver warm start an Encoder session
	// keeps per field name (the settled bound of the last steered
	// encode seeds the next encode of the same variable, so repeated
	// snapshots converge in 1–2 passes). Warm starts never apply to
	// one-shot Compress or to region-target encodes; set this when a
	// session must produce bit-reproducible streams for re-encodes of
	// changing data under the same name.
	NoWarmStart bool

	// Capacity is the number of quantization intervals (0 = default
	// 65536); AutoCapacity estimates it from the data instead.
	Capacity     int
	AutoCapacity bool
	// Workers bounds compression concurrency (0 = all CPUs).
	Workers int
	// ChunkRows forces the chunk height (rows along the slowest
	// dimension); zero defers to ChunkPoints.
	ChunkRows int
	// ChunkPoints is the target chunk size in points for the chunked
	// container: the field is tiled into ChunkPoints-sized row slabs
	// along the slowest dimension, each independently decodable, which
	// is what DecodeRegion, archive ExtractRegion, and the streaming
	// EncodeFrom are built on. Zero keeps a Workers-derived tiling for
	// in-memory encodes (and DefaultChunkPoints for EncodeFrom).
	//
	// ChunkPoints interacts with Capacity: every chunk carries its own
	// Huffman table over [0, Capacity) plus a chunk-table entry, so the
	// per-chunk overhead grows with Capacity while the payload shrinks
	// with the chunk. Values below MinChunkPoints (16384) are rejected —
	// below that floor the fixed overhead dominates even at the default
	// capacity.
	ChunkPoints int
	// Level is the DEFLATE level (0 = fastest).
	Level int
	// BlockSize is the transform block edge (transform pipeline).
	BlockSize int
}

// Validate checks the options for nonsense that no field could make
// valid: a missing or non-finite bound for the selected mode, a
// negative or NaN PSNR target, an unknown mode or pipeline, absurd
// capacity or block sizes, and out-of-range DEFLATE levels. It is called
// by every compression entry point — Compress, CompressFields, the
// ArchiveWriter, and NewEncoder — so both the legacy and the session API
// reject bad configurations with the same fixedpsnr-prefixed errors.
//
// A zero ErrorBound in ModeAbs passes: constant fields compress without
// a bound, and the field-dependent check happens at plan time.
func (opt Options) Validate() error {
	badBound := func(name string, v float64) error {
		return fmt.Errorf("fixedpsnr: %s must be positive and finite, got %g", name, v)
	}
	switch opt.Mode {
	case ModeAbs:
		if opt.ErrorBound < 0 || math.IsNaN(opt.ErrorBound) || math.IsInf(opt.ErrorBound, 0) {
			return badBound("ErrorBound", opt.ErrorBound)
		}
	case ModeRel:
		if !(opt.RelBound > 0) || math.IsInf(opt.RelBound, 0) {
			return badBound("RelBound", opt.RelBound)
		}
	case ModePSNR:
		if !(opt.TargetPSNR > 0) || math.IsInf(opt.TargetPSNR, 0) {
			return badBound("TargetPSNR", opt.TargetPSNR)
		}
	case ModePWRel:
		if !(opt.PWRelBound > 0) || opt.PWRelBound >= 1 {
			return fmt.Errorf("fixedpsnr: PWRelBound must be in (0, 1), got %g", opt.PWRelBound)
		}
		if name := opt.codecName(); name != "sz" {
			// Capability-based: any registered codec implementing the
			// pointwise-relative interface qualifies, not just sz.
			c, ok := codec.ByName(name)
			if !ok || !isPWRelCodec(c) {
				return fmt.Errorf("fixedpsnr: ModePWRel is only supported by pipelines with pointwise-relative capability (codec %q has none)", name)
			}
		}
	case ModeRatio:
		if err := validTargetRatio(opt.TargetRatio); err != nil {
			return err
		}
	default:
		return fmt.Errorf("fixedpsnr: unknown mode %v", opt.Mode)
	}
	if len(opt.RegionTargets) > 0 {
		if opt.Mode == ModePWRel {
			return fmt.Errorf("fixedpsnr: RegionTargets are incompatible with ModePWRel (log-domain streams have no chunk-granular recompression)")
		}
		for i, rt := range opt.RegionTargets {
			name := rt.Name
			if name == "" {
				name = fmt.Sprintf("roi%d", i)
			}
			switch rt.Mode {
			case ModePSNR:
				if !(rt.TargetPSNR > 0) || math.IsInf(rt.TargetPSNR, 0) {
					return fmt.Errorf("fixedpsnr: region %q: TargetPSNR must be positive and finite, got %g", name, rt.TargetPSNR)
				}
			case ModeRatio:
				if err := validTargetRatio(rt.TargetRatio); err != nil {
					return fmt.Errorf("fixedpsnr: region %q: %w", name, err)
				}
			default:
				return fmt.Errorf("fixedpsnr: region %q: mode %v cannot steer a region (want ModePSNR or ModeRatio)", name, rt.Mode)
			}
		}
	}
	if opt.ToleranceDB < 0 || math.IsNaN(opt.ToleranceDB) || math.IsInf(opt.ToleranceDB, 0) {
		return fmt.Errorf("fixedpsnr: ToleranceDB must be non-negative and finite, got %g", opt.ToleranceDB)
	}
	if opt.RatioTolerance < 0 || opt.RatioTolerance >= 1 || math.IsNaN(opt.RatioTolerance) {
		return fmt.Errorf("fixedpsnr: RatioTolerance must be in [0, 1), got %g", opt.RatioTolerance)
	}
	if opt.MaxRefinePasses < 0 || opt.MaxRefinePasses > 64 {
		return fmt.Errorf("fixedpsnr: MaxRefinePasses %d outside [0, 64]", opt.MaxRefinePasses)
	}
	if opt.Codec == "" && opt.Compressor.codecName() == "" {
		return fmt.Errorf("fixedpsnr: unknown compressor %v", opt.Compressor)
	}
	// Quantization codes range over [0, Capacity), and the Huffman
	// encoder's dense construction tables are sized by the largest code,
	// so the capacity ceiling also bounds per-chunk encoder memory
	// (~17 bytes/interval). 2^20 is 16× the SZ default of 65536 — far
	// beyond any useful setting.
	if opt.Capacity < 0 || opt.Capacity > 1<<20 {
		return fmt.Errorf("fixedpsnr: Capacity %d outside [0, 2^20]", opt.Capacity)
	}
	if opt.Capacity != 0 && (opt.Capacity < 4 || opt.Capacity%2 != 0) {
		return fmt.Errorf("fixedpsnr: Capacity must be an even number >= 4 (or 0 for the default), got %d", opt.Capacity)
	}
	if opt.BlockSize < 0 || opt.BlockSize > 1<<20 {
		return fmt.Errorf("fixedpsnr: BlockSize %d outside [0, 2^20]", opt.BlockSize)
	}
	// Each chunk pays a Huffman table sized by Capacity plus a chunk-table
	// entry; below MinChunkPoints that fixed overhead dominates the
	// payload (see the ChunkPoints field docs for the Capacity
	// interaction).
	if opt.ChunkPoints != 0 && opt.ChunkPoints < MinChunkPoints {
		return fmt.Errorf("fixedpsnr: ChunkPoints %d below minimum %d (0 selects the default)", opt.ChunkPoints, MinChunkPoints)
	}
	if opt.Level != 0 && (opt.Level < flate.HuffmanOnly || opt.Level > flate.BestCompression) {
		return fmt.Errorf("fixedpsnr: DEFLATE Level %d outside [%d, %d]", opt.Level, flate.HuffmanOnly, flate.BestCompression)
	}
	return nil
}

// validTargetRatio rejects compression-ratio targets that no stream can
// achieve: a ratio of 1 or below asks the compressed stream to be at
// least as large as the input, which the solver would otherwise chase
// fruitlessly until MaxRefinePasses ran out.
func validTargetRatio(r float64) error {
	if !(r > 1) || math.IsInf(r, 0) {
		return fmt.Errorf("fixedpsnr: TargetRatio must be finite and > 1, got %g (a ratio at or below 1 means no compression and can never be achieved)", r)
	}
	return nil
}

// isPWRelCodec reports whether a registered codec implements the
// pointwise-relative capability.
func isPWRelCodec(c codec.Codec) bool {
	_, ok := c.(codec.PWRelCodec)
	return ok
}

// codecName resolves the registry key the options select: the explicit
// Codec override when set, the Compressor mapping otherwise.
func (opt Options) codecName() string {
	if opt.Codec != "" {
		return opt.Codec
	}
	return opt.Compressor.codecName()
}

// planRequest lowers the options into the plan layer's error-control
// demand for values stored at the given precision.
func (opt Options) planRequest(prec Precision) plan.Request {
	return plan.Request{
		Mode:         opt.Mode,
		ErrorBound:   opt.ErrorBound,
		RelBound:     opt.RelBound,
		TargetPSNR:   opt.TargetPSNR,
		PWRelBound:   opt.PWRelBound,
		TargetRatio:  opt.TargetRatio,
		BitsPerValue: float64(8 * prec.Bytes()),
		Calibrated:   opt.Calibrated,
		Tuning: plan.Tuning{
			ToleranceDB:    opt.ToleranceDB,
			RatioTolerance: opt.RatioTolerance,
			MaxPasses:      opt.MaxRefinePasses,
		},
	}
}

// codecOptions lowers the public options plus a plan resolution into the
// unified codec configuration.
func (opt Options) codecOptions(res plan.Resolution, vr float64) codec.Options {
	return codec.Options{
		ErrorBound:   res.EbAbs,
		Capacity:     opt.Capacity,
		AutoCapacity: opt.AutoCapacity,
		Workers:      opt.Workers,
		ChunkRows:    opt.ChunkRows,
		ChunkPoints:  opt.ChunkPoints,
		Level:        opt.Level,
		BlockSize:    opt.BlockSize,
		Transform:    opt.Compressor.transform(),
		Mode:         res.StreamMode,
		TargetPSNR:   res.TargetPSNR,
		ValueRange:   vr,
	}
}

// Result reports the outcome of one compression.
type Result struct {
	// OriginalBytes and CompressedBytes give the size accounting at the
	// field's declared precision.
	OriginalBytes   int
	CompressedBytes int
	// Ratio is OriginalBytes / CompressedBytes.
	Ratio float64
	// BitRate is compressed bits per value.
	BitRate float64
	// NPoints is the number of values compressed.
	NPoints int
	// Unpredictable counts points (or coefficients) stored losslessly.
	Unpredictable int
	// EbAbs and EbRel are the bounds the quantizer actually ran with.
	// For ModePSNR they come from the Eq. 8 plan.
	EbAbs, EbRel float64
	// TargetPSNR echoes the requested PSNR (NaN for other modes).
	TargetPSNR float64
	// TargetRatio echoes the requested compression ratio (0 for other
	// modes); compare against Ratio for the achieved value.
	TargetRatio float64
	// Passes counts the compression passes the quality-steering loop
	// consumed (1 = the first pass was accepted; steered targets may
	// take extra refinement passes).
	Passes int
	// EstimatedPSNR is the closed-form Eq. 7 prediction of the actual
	// PSNR at the chosen bound (+Inf for constant fields).
	EstimatedPSNR float64
	// MSE and MeasuredPSNR are the *exact* reconstruction distortion,
	// measured during compression via Theorem 1 (pipelines that measure
	// MSE only; NaN for the transform pipelines, +Inf PSNR for
	// lossless/constant).
	MSE          float64
	MeasuredPSNR float64
	// Regions reports the per-group outcome of a region-target encode,
	// in region order with the background group last. Empty unless
	// Options.RegionTargets was set.
	Regions []RegionResult
}

// RegionResult is one region group's steering outcome.
type RegionResult struct {
	// Name is the group's name ("roi0", ..., "background").
	Name string
	// Mode is the group's steering mode.
	Mode Mode
	// TargetPSNR and TargetRatio echo the group's request (NaN / 0 when
	// not applicable).
	TargetPSNR  float64
	TargetRatio float64
	// EbAbs is the absolute bound the group settled on.
	EbAbs float64
	// AchievedPSNR is the group's measured PSNR against the field's
	// global value range (NaN when the pipeline does not measure MSE,
	// +Inf for exact groups).
	AchievedPSNR float64
	// AchievedRatio is the group's compression ratio on payload bytes
	// (the group's nominal storage footprint over its compressed chunk
	// payloads; container overhead is shared and excluded).
	AchievedRatio float64
	// Passes counts the compression passes that touched the group's
	// chunks (1 = the shared first pass was accepted as-is).
	Passes int
	// Chunks is the number of container chunks the group owns.
	Chunks int
}

// Compress compresses the field according to the options and returns the
// self-describing stream plus a result summary. The error-control mode is
// resolved by the plan layer and the stream is produced by whichever
// registered codec the options select.
//
// Compress is the one-shot form: it cannot be cancelled and allocates its
// working buffers fresh every call. Servers and batch jobs should hold an
// Encoder instead, which adds context cancellation, io.Writer streaming,
// batch compression, and scratch-buffer reuse over the same pipeline.
func Compress(f *Field, opt Options) ([]byte, *Result, error) {
	return compress(context.Background(), f, opt, nil, nil)
}

// compress is the shared compression core behind Compress and
// Encoder.Encode: options are validated, the mode is resolved by the plan
// layer, and the stream is produced by the selected registered codec with
// ctx cancellation honored between slabs/blocks/refinement passes and
// transient buffers drawn from sc (both may be Background/nil). wc is the
// session's solver warm-start cache (nil for one-shot callers).
func compress(ctx context.Context, f *Field, opt Options, sc *codec.Scratch, wc *warmCache) ([]byte, *Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	_, _, vr := f.ValueRange()

	req := opt.planRequest(f.Precision)
	res, err := req.Resolve(vr)
	if err != nil {
		return nil, nil, err
	}

	name := opt.codecName()
	c, ok := codec.ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("fixedpsnr: codec %q is not registered", name)
	}

	if res.PWRel {
		// Pointwise-relative compression is a distinct log-domain path
		// dispatched by capability (Validate guarantees the codec has
		// it). The inner log-domain stream annotates its own value range.
		pw, ok := c.(codec.PWRelCodec)
		if !ok {
			return nil, nil, fmt.Errorf("fixedpsnr: codec %q lost its pointwise-relative capability", name)
		}
		blob, st, err := pw.CompressPWRel(ctx, f, opt.PWRelBound, opt.codecOptions(res, 0), sc)
		if err != nil {
			return nil, nil, err
		}
		r := resultFromStats(st, opt.PWRelBound, 0, math.NaN(), res.EstimatedPSNR)
		r.Passes = 1
		return blob, r, nil
	}

	// Region targets are validated against the field before any
	// compression; constant fields compress to a single exact header, so
	// region groups have nothing to steer there.
	var specs []plan.GroupSpec
	if len(opt.RegionTargets) > 0 {
		specs, err = regionGroupSpecs(f, opt, req)
		if err != nil {
			return nil, nil, err
		}
		if vr == 0 {
			specs = nil
		}
	}

	copt := opt.codecOptions(res, vr)
	tgt := req.BuildTarget(c, vr)
	if tgt != nil && specs == nil && !opt.NoWarmStart {
		// Solver warm start: the first pass runs at the bound the last
		// steered encode of this variable settled on, so repeated
		// snapshots converge in 1–2 passes instead of starting
		// data-blind.
		if b, ok := wc.lookup(f.Name, opt); ok {
			copt.ErrorBound = b
		}
	}
	blob, st, err := c.Compress(ctx, f, copt, sc)
	if err != nil {
		return nil, nil, err
	}

	if specs != nil {
		return finishRegions(ctx, f, opt, c, res, vr, copt, blob, specs, sc)
	}

	// The steered quality targets — calibrated fixed-PSNR, fixed ratio —
	// refine the first pass through the plan layer's generic Drive loop;
	// single-pass modes get a nil target and pass through unchanged.
	blob, st, ebAbs, passes, err := plan.Drive(ctx, f, c, copt, blob, st, tgt, sc)
	if err != nil {
		return nil, nil, err
	}
	if tgt != nil && !opt.NoWarmStart {
		wc.store(f.Name, opt, ebAbs)
	}
	ebRel := res.EbRel
	estimate := res.EstimatedPSNR
	if ebAbs != res.EbAbs {
		if vr > 0 {
			ebRel = ebAbs / vr
		}
		if opt.Mode == ModeRatio {
			estimate = core.EstimatePSNRFromAbsBound(vr, ebAbs)
		}
	}
	r := resultFromStats(st, ebAbs, ebRel, res.TargetPSNR, estimate)
	r.Passes = passes
	if opt.Mode == ModeRatio {
		r.TargetRatio = opt.TargetRatio
	}
	return blob, r, nil
}

// regionGroupSpecs validates the region targets against a concrete field
// and lowers them into the plan layer's group specs: one spec per region
// (row window from the region's slowest-dimension span) plus the default
// background group carrying the field-level request. Regions must fit
// the field and claim pairwise-disjoint row windows — chunk assignment
// happens by row-slab intersection, so overlapping windows would hand
// one chunk two masters.
func regionGroupSpecs(f *Field, opt Options, req plan.Request) ([]plan.GroupSpec, error) {
	specs := make([]plan.GroupSpec, 0, len(opt.RegionTargets)+1)
	seen := map[string]bool{BackgroundGroup: true}
	for i, rt := range opt.RegionTargets {
		name := rt.Name
		if name == "" {
			name = fmt.Sprintf("roi%d", i)
		}
		if name != BackgroundGroup && seen[name] {
			return nil, fmt.Errorf("fixedpsnr: duplicate region name %q", name)
		}
		if name == BackgroundGroup && rt.Name != "" {
			return nil, fmt.Errorf("fixedpsnr: region name %q is reserved for the default group", BackgroundGroup)
		}
		seen[name] = true
		if err := field.ValidateRegion(f.Dims, rt.Region.Off, rt.Region.Ext); err != nil {
			return nil, fmt.Errorf("fixedpsnr: region %q: %w", name, err)
		}
		lo, hi := rt.Region.Off[0], rt.Region.Off[0]+rt.Region.Ext[0]
		for _, prev := range specs {
			if lo < prev.RowHi && prev.RowLo < hi {
				return nil, fmt.Errorf(
					"fixedpsnr: regions %q (rows [%d,%d)) and %q (rows [%d,%d)) overlap: region targets must claim disjoint row windows",
					prev.Name, prev.RowLo, prev.RowHi, name, lo, hi)
			}
		}
		specs = append(specs, plan.GroupSpec{
			Name:  name,
			RowLo: lo,
			RowHi: hi,
			Request: plan.Request{
				Mode:         rt.Mode,
				TargetPSNR:   rt.TargetPSNR,
				TargetRatio:  rt.TargetRatio,
				BitsPerValue: req.BitsPerValue,
				Calibrated:   true, // region PSNR targets steer whenever the codec measures MSE
				Tuning:       req.Tuning,
			},
		})
	}
	specs = append(specs, plan.GroupSpec{Name: BackgroundGroup, Request: req, Default: true})
	return specs, nil
}

// finishRegions turns the first full-field pass into a grouped stream:
// chunks are partitioned onto the region groups and every group's target
// steers its own chunk subset through plan.DriveGroups. The public result
// carries the global accounting plus per-group outcomes.
func finishRegions(ctx context.Context, f *Field, opt Options, c codec.Codec, res plan.Resolution, vr float64, copt codec.Options, blob []byte, specs []plan.GroupSpec, sc *codec.Scratch) ([]byte, *Result, error) {
	h, err := codec.ParseHeader(blob)
	if err != nil {
		return nil, nil, err
	}
	part, err := plan.BuildPartition(h, specs)
	if err != nil {
		return nil, nil, fmt.Errorf("fixedpsnr: %w", err)
	}
	final, st, outcomes, err := plan.DriveGroups(ctx, f, c, copt, blob, part, vr, sc)
	if err != nil {
		return nil, nil, fmt.Errorf("fixedpsnr: %w", err)
	}

	ebAbs := res.EbAbs
	passes := 1
	regions := make([]RegionResult, len(outcomes))
	for i, o := range outcomes {
		if o.Passes > passes {
			passes = o.Passes
		}
		if specs[i].Default && o.Chunks > 0 {
			ebAbs = o.EbAbs
		}
		achievedPSNR := math.NaN()
		switch {
		case o.MSE == 0:
			achievedPSNR = math.Inf(1)
		case o.MSE > 0 && vr > 0:
			achievedPSNR = -10*math.Log10(o.MSE) + 20*math.Log10(vr)
		}
		regions[i] = RegionResult{
			Name:          o.Name,
			Mode:          o.Mode,
			TargetPSNR:    o.TargetPSNR,
			TargetRatio:   o.TargetRatio,
			EbAbs:         o.EbAbs,
			AchievedPSNR:  achievedPSNR,
			AchievedRatio: o.Ratio,
			Passes:        o.Passes,
			Chunks:        o.Chunks,
		}
	}
	ebRel := 0.0
	if vr > 0 {
		ebRel = ebAbs / vr
	}
	estimate := res.EstimatedPSNR
	if opt.Mode == ModeRatio && ebAbs != res.EbAbs {
		// Same convention as the field-wide ratio path: the estimate
		// tracks the bound the background actually settled on, not the
		// entropy-model seed.
		estimate = core.EstimatePSNRFromAbsBound(vr, ebAbs)
	}
	r := resultFromStats(st, ebAbs, ebRel, res.TargetPSNR, estimate)
	r.Passes = passes
	if opt.Mode == ModeRatio {
		r.TargetRatio = opt.TargetRatio
	}
	r.Regions = regions
	return final, r, nil
}

// resultFromStats lifts a codec stats report into the public Result. The
// measured PSNR comes from the exact MSE and the value range recorded in
// the stats, so it is correct in every mode — including ModeAbs, where no
// relative bound exists to recover the range from.
func resultFromStats(st *codec.Stats, ebAbs, ebRel, target, estimate float64) *Result {
	r := &Result{
		OriginalBytes:   st.OriginalBytes,
		CompressedBytes: st.CompressedBytes,
		Ratio:           st.Ratio,
		BitRate:         st.BitRate,
		NPoints:         st.NPoints,
		Unpredictable:   st.Unpredictable,
		EbAbs:           ebAbs,
		EbRel:           ebRel,
		TargetPSNR:      target,
		EstimatedPSNR:   estimate,
		MSE:             st.MSE,
		MeasuredPSNR:    math.Inf(1),
		Passes:          1, // steered callers overwrite with the loop's count
	}
	switch {
	case math.IsNaN(st.MSE):
		r.MeasuredPSNR = math.NaN() // pipeline does not measure MSE
	case st.MSE > 0:
		if st.ValueRange > 0 {
			r.MeasuredPSNR = -10*math.Log10(st.MSE) + 20*math.Log10(st.ValueRange)
		} else {
			r.MeasuredPSNR = math.NaN()
		}
	}
	return r
}

// CompressFixedPSNR is shorthand for Compress in ModePSNR with the SZ
// pipeline: one-shot compression to a target PSNR.
func CompressFixedPSNR(f *Field, targetPSNR float64) ([]byte, *Result, error) {
	return Compress(f, Options{Mode: ModePSNR, TargetPSNR: targetPSNR})
}

// Decompress reconstructs a field from any stream produced by Compress.
// Routing goes through the codec registry: the codec byte recorded in the
// header selects the registered pipeline, so new codecs are decodable
// here the moment they register.
func Decompress(data []byte) (*Field, *StreamInfo, error) {
	return codec.Decompress(data)
}

// DecompressRegion reconstructs only the axis-aligned sub-block starting
// at off with extents ext (one entry per dimension) from a compressed
// stream. On chunked (version 3) streams only the chunks the region's
// row window intersects are decoded, so the cost scales with the region,
// not the field; the result is byte-identical to slicing a full
// Decompress. Streams without chunk-granular access (legacy
// single-payload, pointwise-relative, custom codecs) fall back to a full
// decode plus crop.
func DecompressRegion(data []byte, off, ext []int) (*Field, *StreamInfo, error) {
	return codec.DecompressRegion(data, off, ext)
}

// Inspect parses a stream header without decompressing the payload.
func Inspect(data []byte) (*StreamInfo, error) {
	return codec.ParseHeader(data)
}

// Codecs lists the registered compression pipelines.
func Codecs() []string { return codec.Names() }

// RelBoundForPSNR exposes Eq. 8: the value-range-based relative error
// bound that achieves the target PSNR.
func RelBoundForPSNR(targetPSNR float64) float64 {
	return core.RelBoundForPSNR(targetPSNR)
}

// EstimatePSNR exposes Eq. 7: the PSNR an SZ-style compressor achieves at
// an absolute bound ebAbs over data of value range vr.
func EstimatePSNR(vr, ebAbs float64) float64 {
	return core.EstimatePSNRFromAbsBound(vr, ebAbs)
}

// PlanFixedPSNR exposes the full bound derivation for one field.
func PlanFixedPSNR(targetPSNR, vr float64) (Plan, error) {
	return core.PlanFixedPSNR(targetPSNR, vr)
}
