// Command fpsz-datagen writes the synthetic stand-in data sets to disk as
// SDF1 field files, one file per field, so the fpsz CLI (and external
// tooling) can operate on them.
//
// Usage:
//
//	fpsz-datagen -dataset ATM -dir ./data/atm
//	fpsz-datagen -dataset NYX -dims 128x128x128 -dir ./data/nyx
//	fpsz-datagen -dataset Hurricane -field U -dir ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"fixedpsnr/internal/datagen"
	"fixedpsnr/internal/fieldio"
	"fixedpsnr/internal/parallel"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "data set: NYX, ATM, or Hurricane")
		dir     = flag.String("dir", ".", "output directory")
		dims    = flag.String("dims", "", "override grid, e.g. 128x128x128")
		fieldN  = flag.String("field", "", "generate only this field")
		workers = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	)
	flag.Parse()

	if err := run(*dataset, *dir, *dims, *fieldN, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "fpsz-datagen:", err)
		os.Exit(1)
	}
}

func run(dataset, dir, dimsStr, fieldName string, workers int) error {
	if dataset == "" {
		return fmt.Errorf("-dataset is required (NYX, ATM, or Hurricane)")
	}
	ds, err := datagen.ByName(dataset)
	if err != nil {
		return err
	}
	if dimsStr != "" {
		parts := strings.Split(strings.ToLower(dimsStr), "x")
		if len(parts) != len(ds.Dims) {
			return fmt.Errorf("dims %q: %s needs %d dimensions", dimsStr, ds.Name, len(ds.Dims))
		}
		dims := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil || v <= 0 {
				return fmt.Errorf("dims %q: bad dimension %q", dimsStr, p)
			}
			dims[i] = v
		}
		ds.Dims = dims
	}

	if fieldName != "" {
		f, err := ds.FieldByName(fieldName, workers)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, f.Name+".sdf")
		if err := fieldio.WriteFile(path, f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%v, %d bytes)\n", path, f.Dims, f.SizeBytes())
		return nil
	}

	fmt.Printf("generating %s: %d fields on %v\n", ds.Name, ds.NumFields(), ds.Dims)
	err = parallel.ForEach(ds.NumFields(), workers, func(i int) error {
		f, err := ds.Field(i, 1)
		if err != nil {
			return err
		}
		return fieldio.WriteFile(filepath.Join(dir, f.Name+".sdf"), f)
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d fields to %s\n", ds.NumFields(), dir)
	return nil
}
