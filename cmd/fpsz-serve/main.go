// Command fpsz-serve is the archive catalog daemon: it exposes a
// directory of .fpsa archives over HTTP, with upload-and-compress,
// full-field and ranged region decode (served from a decoded-chunk LRU
// cache), chunk/group inspection, bounded-concurrency admission, and
// Prometheus metrics. `fpsz serve` runs the same engine; this binary is
// the deployable form.
package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"fixedpsnr/internal/serve"
)

func main() {
	cfg, err := serve.ParseFlags("fpsz-serve", os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	// First SIGINT/SIGTERM starts the graceful drain; a second one hits
	// the restored default handler and force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := serve.Run(ctx, cfg, os.Stderr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fpsz-serve:", err)
		os.Exit(1)
	}
}
