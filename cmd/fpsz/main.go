// Command fpsz is the compressor CLI: it compresses and decompresses
// field files (the SDF1 format of internal/fieldio) with any of the four
// error-control modes, and inspects compressed streams.
//
// Usage:
//
//	fpsz compress   -in field.sdf -out field.fpsz -mode psnr -psnr 80
//	fpsz compress   -in field.sdf -out field.fpsz -ratio 16
//	fpsz compress   -in field.sdf -out field.fpsz -mode abs -eb 1e-3
//	fpsz compress   -in field.sdf -out field.fpsz -mode rel -eb 1e-4
//	fpsz compress   -in field.sdf -out field.fpsz -mode pwrel -eb 1e-3
//	fpsz decompress -in field.fpsz -out recon.sdf
//	fpsz inspect    -in field.fpsz
//	fpsz verify     -in field.fpsz -orig field.sdf
//
// The verify subcommand decompresses and reports distortion metrics
// against the original.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"

	"fixedpsnr"
	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/fieldio"
	"fixedpsnr/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// Compression runs under a signal-cancelled context: the first
	// SIGINT/SIGTERM aborts the in-flight work within one slab per
	// worker. Once that happens, unregister immediately so a second
	// signal hits the restored default handler and force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	var err error
	switch os.Args[1] {
	case "compress":
		err = compress(ctx, os.Args[2:])
	case "decompress":
		err = decompress(os.Args[2:])
	case "inspect", "info":
		err = inspect(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	case "archive":
		err = archive(ctx, os.Args[2:])
	case "list":
		err = list(os.Args[2:])
	case "extract":
		err = extract(os.Args[2:])
	case "serve":
		err = serveCmd(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fpsz: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "fpsz: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpsz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fpsz compress   -in <field.sdf> -out <stream.fpsz> -mode abs|rel|psnr|ratio|pwrel [-eb <bound>] [-psnr <dB>] [-ratio <R>] [flags]
                  [-roi "off:ext[,off:ext...]=psnr:<dB>|ratio:<R>"] (repeatable: per-region quality targets)
  fpsz decompress -in <stream.fpsz> -out <field.sdf>
  fpsz inspect    -in <stream.fpsz>
  fpsz verify     -in <stream.fpsz> -orig <field.sdf>
  fpsz archive    -dir <dir-of-sdf> -out <snapshot.fpsa> [-psnr <dB> | -ratio <R>]
  fpsz list       -in <snapshot.fpsa>
  fpsz extract    -in <snapshot.fpsa> -field <name> -out <field.sdf> [-region off:ext,...]
  fpsz serve      [-addr :8080] [-root archives] [-cache-mb 256] [flags]  serve an archive catalog over HTTP
  fpsz info       alias of inspect; -chunks prints the per-chunk index (and region groups)`)
	os.Exit(2)
}

// roiFlags collects repeated -roi region-target specs. Each value reads
// "off:ext[,off:ext...]=psnr:<dB>" or "...=ratio:<R>" — the region
// syntax of extract -region, an equals sign, then the region's quality
// target.
type roiFlags []fixedpsnr.RegionTarget

func (r *roiFlags) String() string { return fmt.Sprintf("%d region targets", len(*r)) }

func (r *roiFlags) Set(s string) error {
	rt, err := serve.ParseROISpec(s)
	if err != nil {
		return err
	}
	*r = append(*r, rt)
	return nil
}

func compress(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	var (
		in         = fs.String("in", "", "input field file (SDF1)")
		out        = fs.String("out", "", "output compressed stream")
		mode       = fs.String("mode", "psnr", "quality target: abs, rel, psnr, ratio, pwrel")
		eb         = fs.Float64("eb", 0, "error bound (abs: absolute; rel/pwrel: relative)")
		psnr       = fs.Float64("psnr", 80, "target PSNR in dB (psnr mode)")
		ratio      = fs.Float64("ratio", 0, "target compression ratio (> 1; selects ratio mode)")
		compressor = fs.String("compressor", "sz", "pipeline: sz, transform, or wavelet")
		capacity   = fs.Int("capacity", 0, "quantization intervals (0 = 65536)")
		autoCap    = fs.Bool("autocap", false, "estimate capacity from the data")
		workers    = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		level      = fs.Int("level", 0, "DEFLATE level (0 = fastest)")
		chunkPts   = fs.Int("chunkpoints", 0, "target chunk size in points for random-access streams (0 = default tiling)")
	)
	var rois roiFlags
	fs.Var(&rois, "roi", `region quality target "off:ext[,off:ext...]=psnr:<dB>|ratio:<R>" (repeatable)`)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("compress: -in and -out are required")
	}

	f, err := fieldio.ReadFile(*in)
	if err != nil {
		return err
	}

	opt := fixedpsnr.Options{
		Capacity:      *capacity,
		AutoCapacity:  *autoCap,
		Workers:       *workers,
		Level:         *level,
		ChunkPoints:   *chunkPts,
		RegionTargets: rois,
	}
	switch *compressor {
	case "sz":
		opt.Compressor = fixedpsnr.CompressorSZ
	case "transform":
		opt.Compressor = fixedpsnr.CompressorTransform
	case "wavelet":
		opt.Compressor = fixedpsnr.CompressorWavelet
	default:
		return fmt.Errorf("compress: unknown compressor %q", *compressor)
	}
	if *ratio > 0 {
		// -ratio is a shorthand that selects the fixed-ratio target.
		*mode = "ratio"
	}
	switch *mode {
	case "abs":
		opt.Mode, opt.ErrorBound = fixedpsnr.ModeAbs, *eb
	case "rel":
		opt.Mode, opt.RelBound = fixedpsnr.ModeRel, *eb
	case "psnr":
		opt.Mode, opt.TargetPSNR = fixedpsnr.ModePSNR, *psnr
	case "ratio":
		opt.Mode, opt.TargetRatio = fixedpsnr.ModeRatio, *ratio
	case "pwrel":
		opt.Mode, opt.PWRelBound = fixedpsnr.ModePWRel, *eb
	default:
		return fmt.Errorf("compress: unknown mode %q", *mode)
	}

	enc, err := fixedpsnr.NewEncoder(fixedpsnr.WithOptions(opt))
	if err != nil {
		return err
	}
	blob, res, err := enc.Encode(ctx, f)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %v %s\n", f.Name, f.Dims, f.Precision)
	fmt.Printf("  mode=%s compressor=%s ebAbs=%.6g ebRel=%.6g\n", *mode, *compressor, res.EbAbs, res.EbRel)
	fmt.Printf("  %d -> %d bytes  ratio=%.2f  bitrate=%.3f bits/value  unpredictable=%d\n",
		res.OriginalBytes, res.CompressedBytes, res.Ratio, res.BitRate, res.Unpredictable)
	if *mode == "psnr" {
		fmt.Printf("  target PSNR=%.2f dB (estimated actual: %.2f dB)\n", *psnr, res.EstimatedPSNR)
	}
	if *mode == "ratio" {
		fmt.Printf("  target ratio=%.2f achieved=%.2f (%+.1f%%) in %d pass(es)\n",
			res.TargetRatio, res.Ratio, 100*(res.Ratio-res.TargetRatio)/res.TargetRatio, res.Passes)
	}
	for _, rg := range res.Regions {
		switch rg.Mode {
		case fixedpsnr.ModePSNR:
			fmt.Printf("  region %-12s psnr target=%.4g dB achieved=%.2f dB (eb=%.4g, %d chunk(s), %d pass(es))\n",
				rg.Name, rg.TargetPSNR, rg.AchievedPSNR, rg.EbAbs, rg.Chunks, rg.Passes)
		case fixedpsnr.ModeRatio:
			fmt.Printf("  region %-12s ratio target=%.4g achieved=%.2f (eb=%.4g, %d chunk(s), %d pass(es))\n",
				rg.Name, rg.TargetRatio, rg.AchievedRatio, rg.EbAbs, rg.Chunks, rg.Passes)
		default:
			fmt.Printf("  region %-12s mode=%v eb=%.4g (%d chunk(s), %d pass(es))\n",
				rg.Name, rg.Mode, rg.EbAbs, rg.Chunks, rg.Passes)
		}
	}
	return nil
}

func decompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	var (
		in  = fs.String("in", "", "input compressed stream")
		out = fs.String("out", "", "output field file (SDF1)")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("decompress: -in and -out are required")
	}
	src, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	f, info, err := fixedpsnr.NewDecoder().DecodeFrom(context.Background(), bufio.NewReader(src))
	if err != nil {
		return err
	}
	if err := fieldio.WriteFile(*out, f); err != nil {
		return err
	}
	fmt.Printf("%s: %v %s (codec %v) -> %s\n", f.Name, f.Dims, f.Precision, info.Codec, *out)
	return nil
}

func inspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "compressed stream")
	chunksFlag := fs.Bool("chunks", false, "also print the per-chunk index (rows, offsets, stats)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	h, err := fixedpsnr.Inspect(blob)
	if err != nil {
		return err
	}
	fmt.Printf("name:        %s\n", h.Name)
	fmt.Printf("version:     %d\n", h.Version)
	fmt.Printf("codec:       %v\n", h.Codec)
	fmt.Printf("mode:        %v\n", h.Mode)
	fmt.Printf("precision:   %v\n", h.Precision)
	fmt.Printf("dims:        %v (%d points)\n", h.Dims, h.NPoints())
	fmt.Printf("ebAbs:       %g\n", h.EbAbs)
	fmt.Printf("target PSNR: %g dB\n", h.TargetPSNR)
	fmt.Printf("value range: %g\n", h.ValueRange)
	fmt.Printf("capacity:    %d\n", h.Capacity)
	fmt.Printf("chunks:      %d\n", len(h.Chunks))
	if len(h.Groups) > 0 {
		fmt.Printf("groups:      %d\n", len(h.Groups))
		for gi, g := range h.Groups {
			target := ""
			switch g.Mode {
			case codec.ModePSNR:
				target = fmt.Sprintf("psnr %.4g dB", g.TargetPSNR)
			case codec.ModeRatio:
				target = fmt.Sprintf("ratio %.4g:1", g.TargetRatio)
			default:
				target = g.Mode.String()
			}
			fmt.Printf("  group %d %-14s %-14s %d chunk(s)\n", gi, g.Name, target, len(h.GroupChunks(gi)))
		}
	}
	fmt.Printf("stream size: %d bytes\n", len(blob))
	if *chunksFlag {
		grouped := len(h.Groups) > 0
		if grouped {
			fmt.Printf("%5s %10s %10s %10s %10s %12s %12s  %-12s %s\n",
				"chunk", "rows", "offset", "bytes", "ebAbs", "mse", "range", "group", "target")
		} else {
			fmt.Printf("%5s %10s %10s %10s %10s %12s %12s\n",
				"chunk", "rows", "offset", "bytes", "ebAbs", "mse", "range")
		}
		for ci, c := range h.Chunks {
			eb := c.EbAbs
			if eb == 0 {
				eb = h.EbAbs
			}
			fmt.Printf("%5d %4d+%-5d %10d %10d %10.4g %12.6g %12.6g",
				ci, c.RowStart, c.Rows, c.Off, c.Len, eb, c.MSE, c.Max-c.Min)
			if grouped {
				g := h.Groups[c.Group]
				target := g.Mode.String()
				switch g.Mode {
				case codec.ModePSNR:
					target = fmt.Sprintf("psnr %.4g", g.TargetPSNR)
				case codec.ModeRatio:
					target = fmt.Sprintf("ratio %.4g", g.TargetRatio)
				}
				fmt.Printf("  %-12s %s", g.Name, target)
			}
			fmt.Println()
		}
	}
	return nil
}

func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	var (
		in   = fs.String("in", "", "compressed stream")
		orig = fs.String("orig", "", "original field file (SDF1)")
	)
	fs.Parse(args)
	if *in == "" || *orig == "" {
		return fmt.Errorf("verify: -in and -orig are required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	recon, h, err := fixedpsnr.Decompress(blob)
	if err != nil {
		return err
	}
	f, err := fieldio.ReadFile(*orig)
	if err != nil {
		return err
	}
	if !f.SameShape(recon) {
		return fmt.Errorf("verify: shape mismatch %v vs %v", f.Dims, recon.Dims)
	}
	d := fixedpsnr.CompareFields(f, recon)
	fmt.Printf("%s (codec %v)\n", h.Name, h.Codec)
	fmt.Printf("  PSNR:    %.4f dB", d.PSNR)
	if h.Mode == codec.ModePSNR {
		fmt.Printf("  (target %.4g dB)", h.TargetPSNR)
	}
	fmt.Println()
	fmt.Printf("  MSE:     %.6g\n", d.MSE)
	fmt.Printf("  NRMSE:   %.6g\n", d.NRMSE)
	fmt.Printf("  max err: %.6g\n", d.MaxErr)
	return nil
}

// archive compresses every .sdf file in a directory into one archive at a
// fixed PSNR — the batch snapshot workflow of the paper's introduction.
// Fields stream through one at a time: each file is read, compressed, and
// appended to the output archive before the next is loaded, so snapshots
// larger than memory archive fine.
func archive(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("archive", flag.ExitOnError)
	var (
		dir      = fs.String("dir", "", "directory of .sdf field files")
		out      = fs.String("out", "", "output archive (.fpsa)")
		psnr     = fs.Float64("psnr", 80, "target PSNR in dB")
		ratio    = fs.Float64("ratio", 0, "target compression ratio per field (> 1; overrides -psnr)")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		chunkPts = fs.Int("chunkpoints", 0, "target chunk size in points for random-access streams (0 = default tiling)")
	)
	fs.Parse(args)
	if *dir == "" || *out == "" {
		return fmt.Errorf("archive: -dir and -out are required")
	}
	paths, err := filepath.Glob(filepath.Join(*dir, "*.sdf"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("archive: no .sdf files in %s", *dir)
	}
	sort.Strings(paths)

	// Stream into a temp file and rename on success, so a failed run
	// never leaves a truncated archive at the destination.
	tmp := *out + ".tmp"
	outFile, err := os.Create(tmp)
	if err != nil {
		return err
	}
	done := false
	defer func() {
		if !done {
			outFile.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(outFile, 1<<20)
	aw, err := fixedpsnr.NewArchiveWriter(bw)
	if err != nil {
		return err
	}
	// One Encoder session serves the whole snapshot: scratch buffers
	// are reused field to field and Ctrl-C aborts the in-flight field.
	// With -ratio every field is steered to the same compression ratio
	// (so the whole snapshot hits it too); otherwise every field gets
	// its own Eq. 8 bound for the target PSNR.
	quality := []fixedpsnr.Option{
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(*psnr),
	}
	if *ratio > 0 {
		quality = []fixedpsnr.Option{
			fixedpsnr.WithMode(fixedpsnr.ModeRatio),
			fixedpsnr.WithTargetRatio(*ratio),
		}
	}
	enc, err := fixedpsnr.NewEncoder(append(quality,
		fixedpsnr.WithWorkers(*workers),
		fixedpsnr.WithChunkPoints(*chunkPts),
	)...)
	if err != nil {
		return err
	}
	var inBytes int
	for _, p := range paths {
		f, err := fieldio.ReadFile(p)
		if err != nil {
			return fmt.Errorf("archive: %s: %w", p, err)
		}
		res, err := aw.WriteFieldEncoder(ctx, enc, f)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return err
			}
			return fmt.Errorf("archive: %s: %w", p, err)
		}
		inBytes += res.OriginalBytes
	}
	if err := aw.Close(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	st, err := outFile.Stat()
	if err != nil {
		return err
	}
	if err := outFile.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, *out); err != nil {
		return err
	}
	done = true
	outBytes := st.Size()
	achieved := float64(inBytes) / float64(outBytes)
	if *ratio > 0 {
		fmt.Printf("archived %d fields at target ratio %g: %.1f MB -> %.1f MB (achieved %.1fx, %+.1f%%)\n",
			aw.Count(), *ratio, float64(inBytes)/(1<<20), float64(outBytes)/(1<<20),
			achieved, 100*(achieved-*ratio)/(*ratio))
		return nil
	}
	fmt.Printf("archived %d fields at %g dB: %.1f MB -> %.1f MB (%.1fx)\n",
		aw.Count(), *psnr, float64(inBytes)/(1<<20), float64(outBytes)/(1<<20),
		achieved)
	return nil
}

// list prints the archive index. Only the tail index and the per-entry
// headers are read; payloads stay on disk.
func list(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	in := fs.String("in", "", "archive file (.fpsa)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("list: -in is required")
	}
	ar, err := fixedpsnr.OpenArchiveFile(*in)
	if err != nil {
		return err
	}
	defer ar.Close()
	for i := 0; i < ar.Len(); i++ {
		h, err := ar.Info(i)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %v %s codec=%v mode=%v target=%g dB\n",
			h.Name, h.Dims, h.Precision, h.Codec, h.Mode, h.TargetPSNR)
	}
	fmt.Printf("%d fields (archive v%d)\n", ar.Len(), ar.Version())
	return nil
}

// extract pulls one field — or, with -region, one sub-block of it — out
// of an archive. On a v2 archive this reads only the tail index and the
// requested entry; with -region on a chunked stream, only the entry's
// header and the chunks the region intersects are read.
func extract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	var (
		in        = fs.String("in", "", "archive file (.fpsa)")
		fieldArg  = fs.String("field", "", "field name")
		out       = fs.String("out", "", "output field file (.sdf)")
		regionArg = fs.String("region", "", `sub-block "off:ext[,off:ext...]" per dimension, e.g. 10:4,0:384,0:384`)
	)
	fs.Parse(args)
	if *in == "" || *fieldArg == "" || *out == "" {
		return fmt.Errorf("extract: -in, -field, and -out are required")
	}
	ar, err := fixedpsnr.OpenArchiveFile(*in)
	if err != nil {
		return err
	}
	defer ar.Close()
	var f *fixedpsnr.Field
	if *regionArg != "" {
		off, ext, err := parseRegion(*regionArg)
		if err != nil {
			return fmt.Errorf("extract: %w", err)
		}
		f, _, err = ar.ExtractRegion(*fieldArg, off, ext)
		if err != nil {
			return err
		}
	} else {
		f, _, err = ar.Extract(*fieldArg)
		if err != nil {
			return err
		}
	}
	if err := fieldio.WriteFile(*out, f); err != nil {
		return err
	}
	fmt.Printf("extracted %s %v -> %s\n", f.Name, f.Dims, *out)
	return nil
}

// parseRegion parses "off:ext,off:ext,..." into offset and extent
// vectors — one syntax shared with the server's ROI query parameters.
func parseRegion(s string) (off, ext []int, err error) {
	return serve.ParseRegionSpec(s)
}

// serveCmd runs the archive catalog daemon in-process — the same engine
// as the standalone fpsz-serve binary. It serves until the first
// SIGINT/SIGTERM, then drains gracefully.
func serveCmd(ctx context.Context, args []string) error {
	cfg, err := serve.ParseFlags("fpsz serve", args, os.Stderr)
	if err != nil {
		return err
	}
	return serve.Run(ctx, cfg, os.Stderr)
}
