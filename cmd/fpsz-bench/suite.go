package main

import (
	"encoding/json"
	"flag"
	"fmt"

	"fixedpsnr"
)

// SuiteRecord is the combined per-PR benchmark artifact: the chunked
// streaming-encoder record, the fixed-ratio accuracy datapoints, the
// mixed-target region datapoints (ROI PSNR vs background ratio), and
// (when -gobench is given) the parsed `go test -bench` session results —
// one JSON file instead of one file per tool.
type SuiteRecord struct {
	Chunked    []ChunkRecord   `json:"chunked"`
	FixedRatio []RatioRecord   `json:"fixed_ratio"`
	Region     []RegionRecord  `json:"region"`
	GoBench    []GoBenchResult `json:"go_bench,omitempty"`
}

// suiteMain runs the chunked-encoder benchmark, the fixed-ratio sweep,
// and the mixed-target region sweep, and emits one combined JSON record
// (BENCH_pr5.json in CI).
func suiteMain(args []string) error {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	var (
		chunkDims   = fs.String("dims", "256x384x384", "chunked benchmark grid")
		psnr        = fs.Float64("psnr", 80, "chunked benchmark target PSNR in dB")
		chunkPoints = fs.Int("chunkpoints", fixedpsnr.DefaultChunkPoints, "chunked benchmark chunk size in points")
		ratioDims   = fs.String("ratiodims", "64x96x96", "fixed-ratio sweep grid")
		ratiosArg   = fs.String("ratios", "8,16,32", "fixed-ratio sweep targets")
		codecsArg   = fs.String("codecs", "sz,otc", "fixed-ratio sweep codecs")
		regionDims  = fs.String("regiondims", "64x96x96", "region sweep grid")
		roiPSNR     = fs.Float64("roipsnr", 80, "region sweep ROI PSNR target in dB")
		bgRatiosArg = fs.String("bgratios", "8,16", "region sweep background ratio targets")
		workers     = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		gobenchPath = fs.String("gobench", "", "optional `go test -bench` output to fold in")
		out         = fs.String("out", "-", "JSON output path (default stdout)")
	)
	fs.Parse(args)

	chunk, err := chunkRecord(*chunkDims, *psnr, *chunkPoints, *workers)
	if err != nil {
		return fmt.Errorf("suite: chunk benchmark: %w", err)
	}
	ratios, err := ratioRecords(*ratioDims, *ratiosArg, *codecsArg, *workers)
	if err != nil {
		return fmt.Errorf("suite: ratio sweep: %w", err)
	}
	regions, err := regionRecords(*regionDims, *roiPSNR, *bgRatiosArg, *workers)
	if err != nil {
		return fmt.Errorf("suite: region sweep: %w", err)
	}
	rec := SuiteRecord{Chunked: []ChunkRecord{chunk}, FixedRatio: ratios, Region: regions}
	if *gobenchPath != "" {
		gb, err := parseGoBenchFile(*gobenchPath)
		if err != nil {
			return fmt.Errorf("suite: gobench: %w", err)
		}
		rec.GoBench = gb
	}
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := writeJSON(*out, blob); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Printf("suite: chunked %.1f MB/s @ %.2f dB; %d fixed-ratio datapoints; %d region datapoints; %d go-bench results -> %s\n",
			chunk.EncodeMBps, chunk.MeasuredPSNR, len(ratios), len(regions), len(rec.GoBench), *out)
	}
	return nil
}
