package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"runtime"
	"strings"

	"fixedpsnr"
)

// SuiteRecord is the combined per-PR benchmark artifact: the chunked
// streaming-encoder record, the fixed-ratio accuracy datapoints, the
// mixed-target region datapoints (ROI PSNR vs background ratio), and
// (when -gobench is given) the parsed `go test -bench` session results —
// one JSON file instead of one file per tool.
type SuiteRecord struct {
	Chunked    []ChunkRecord      `json:"chunked"`
	FixedRatio []RatioRecord      `json:"fixed_ratio"`
	Region     []RegionRecord     `json:"region"`
	Serve      []ServeRecord      `json:"serve,omitempty"`
	GoBench    []GoBenchResult    `json:"go_bench,omitempty"`
	Throughput []ThroughputRecord `json:"throughput,omitempty"`
}

// ThroughputRecord is one encode/decode throughput datapoint distilled
// from the BenchmarkChunked{Encode,Decode}{1Core,AllCores} go-bench
// results: single-core and all-core MB/s on the chunked benchmark field,
// plus the parallel scaling factor between them.
type ThroughputRecord struct {
	Op           string  `json:"op"` // "encode" or "decode"
	OneCoreMBps  float64 `json:"one_core_mb_per_sec"`
	AllCoresMBps float64 `json:"all_cores_mb_per_sec"`
	Scaling      float64 `json:"scaling,omitempty"` // all-cores / one-core
	Cores        int     `json:"cores,omitempty"`   // cores the all-core run used
	// ScalingEfficiency is Scaling normalized by the core count: 1.0 is
	// perfect linear scaling, and the ISSUE 9 all-core target is ≥ 0.7.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
}

// throughputRecords distills the chunked encode/decode datapoints from
// parsed go-bench results. Missing benchmarks yield zero-valued fields;
// an op with neither datapoint is omitted.
func throughputRecords(gb []GoBenchResult) []ThroughputRecord {
	mbps := make(map[string]float64, len(gb))
	for _, r := range gb {
		mbps[r.Name] = r.MBPerSec
	}
	var out []ThroughputRecord
	for _, op := range []string{"Encode", "Decode"} {
		one := mbps["BenchmarkChunked"+op+"1Core"]
		all := mbps["BenchmarkChunked"+op+"AllCores"]
		if one == 0 && all == 0 {
			continue
		}
		tr := ThroughputRecord{Op: strings.ToLower(op), OneCoreMBps: one, AllCoresMBps: all, Cores: runtime.GOMAXPROCS(0)}
		if one > 0 {
			tr.Scaling = all / one
			tr.ScalingEfficiency = tr.Scaling / float64(tr.Cores)
		}
		out = append(out, tr)
	}
	return out
}

// checkThroughput enforces the CI contract: both ops present, with
// non-zero single-core and all-core MB/s and a recorded scaling factor.
func checkThroughput(recs []ThroughputRecord) error {
	if len(recs) != 2 {
		return fmt.Errorf("throughput: want encode and decode datapoints, got %d", len(recs))
	}
	for _, r := range recs {
		if !(r.OneCoreMBps > 0) || !(r.AllCoresMBps > 0) {
			return fmt.Errorf("throughput: %s MB/s not positive (1-core %.2f, all-cores %.2f)", r.Op, r.OneCoreMBps, r.AllCoresMBps)
		}
		if !(r.Scaling > 0) {
			return fmt.Errorf("throughput: %s scaling factor missing", r.Op)
		}
	}
	return nil
}

// checkScaling enforces a parallel-scaling floor: every throughput
// datapoint's all-core/1-core factor must be at least `factor`. It is
// the CI guard against regressions that serialize the chunk pipeline
// (a lock on the scratch pools, a single-threaded stage) without
// slowing the single-core numbers.
func checkScaling(recs []ThroughputRecord, factor float64) error {
	// Both ops must be present: a go-bench run that dropped the decode
	// benchmarks used to sail through this loop with only the encode
	// datapoint, leaving decode scaling unguarded.
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		seen[r.Op] = true
		if !(r.Scaling >= factor) {
			return fmt.Errorf("scaling: %s all-core/1-core factor %.2f below required %.2f (1-core %.2f MB/s, all-cores %.2f MB/s on %d cores)",
				r.Op, r.Scaling, factor, r.OneCoreMBps, r.AllCoresMBps, r.Cores)
		}
	}
	for _, op := range []string{"encode", "decode"} {
		if !seen[op] {
			return fmt.Errorf("scaling: no %s throughput datapoint (need 1-core and all-core go-bench runs for both ops)", op)
		}
	}
	return nil
}

// suiteMain runs the chunked-encoder benchmark, the fixed-ratio sweep,
// and the mixed-target region sweep, and emits one combined JSON record
// (BENCH_pr5.json in CI).
func suiteMain(args []string) error {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	pf := registerProfileFlags(fs)
	var (
		chunkDims     = fs.String("dims", "256x384x384", "chunked benchmark grid")
		psnr          = fs.Float64("psnr", 80, "chunked benchmark target PSNR in dB")
		chunkPoints   = fs.Int("chunkpoints", fixedpsnr.DefaultChunkPoints, "chunked benchmark chunk size in points")
		ratioDims     = fs.String("ratiodims", "64x96x96", "fixed-ratio sweep grid")
		ratiosArg     = fs.String("ratios", "8,16,32", "fixed-ratio sweep targets")
		codecsArg     = fs.String("codecs", "sz,otc", "fixed-ratio sweep codecs")
		regionDims    = fs.String("regiondims", "64x96x96", "region sweep grid")
		roiPSNR       = fs.Float64("roipsnr", 80, "region sweep ROI PSNR target in dB")
		bgRatiosArg   = fs.String("bgratios", "8,16", "region sweep background ratio targets")
		withServe     = fs.Bool("serve", false, "include the archive-service load test")
		serveDims     = fs.String("servedims", "96x96x96", "serve load-test per-field grid")
		serveFields   = fs.Int("servefields", 2, "serve load-test fields per archive")
		serveReaders  = fs.Int("servereaders", 200, "serve load-test concurrent readers")
		serveRequests = fs.Int("serverequests", 4000, "serve load-test total requests")
		workers       = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		gobenchPath   = fs.String("gobench", "", "optional `go test -bench` output to fold in")
		requireTP     = fs.Bool("require-throughput", false, "fail unless chunked encode/decode 1-core and all-core MB/s datapoints are present and non-zero")
		requireScale  = fs.Float64("require-scaling", 0, "fail unless every throughput datapoint's all-core/1-core scaling factor is at least this value (0 = no check)")
		out           = fs.String("out", "-", "JSON output path (default stdout)")
	)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	chunk, err := chunkRecord(*chunkDims, *psnr, *chunkPoints, *workers)
	if err != nil {
		return fmt.Errorf("suite: chunk benchmark: %w", err)
	}
	ratios, err := ratioRecords(*ratioDims, *ratiosArg, *codecsArg, *workers)
	if err != nil {
		return fmt.Errorf("suite: ratio sweep: %w", err)
	}
	regions, err := regionRecords(*regionDims, *roiPSNR, *bgRatiosArg, *workers)
	if err != nil {
		return fmt.Errorf("suite: region sweep: %w", err)
	}
	rec := SuiteRecord{Chunked: []ChunkRecord{chunk}, FixedRatio: ratios, Region: regions}
	if *withServe {
		sr, err := serveRecord(*serveDims, *serveFields, *serveReaders, *serveRequests, 64, 1.2, 256)
		if err != nil {
			return fmt.Errorf("suite: serve load test: %w", err)
		}
		if sr.FailedRequests > 0 || sr.MismatchedByte > 0 {
			return fmt.Errorf("suite: serve load test: %d failed requests, %d mismatched responses (want 0/0)",
				sr.FailedRequests, sr.MismatchedByte)
		}
		rec.Serve = []ServeRecord{sr}
	}
	if *gobenchPath != "" {
		gb, err := parseGoBenchFile(*gobenchPath)
		if err != nil {
			return fmt.Errorf("suite: gobench: %w", err)
		}
		rec.GoBench = gb
		rec.Throughput = throughputRecords(gb)
	}
	if *requireTP {
		if err := checkThroughput(rec.Throughput); err != nil {
			return fmt.Errorf("suite: %w", err)
		}
	}
	if *requireScale > 0 {
		if err := checkScaling(rec.Throughput, *requireScale); err != nil {
			return fmt.Errorf("suite: %w", err)
		}
	}
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := writeJSON(*out, blob); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Printf("suite: chunked %.1f MB/s @ %.2f dB; %d fixed-ratio datapoints; %d region datapoints; %d go-bench results -> %s\n",
			chunk.EncodeMBps, chunk.MeasuredPSNR, len(ratios), len(regions), len(rec.GoBench), *out)
	}
	return nil
}
