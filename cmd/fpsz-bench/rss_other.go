//go:build !linux && !darwin

package main

// peakRSSBytes is unavailable on this platform; the JSON record carries
// 0 and consumers fall back to heap_sys_bytes.
func peakRSSBytes() int64 { return 0 }
