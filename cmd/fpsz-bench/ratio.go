package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"fixedpsnr"
)

// RatioRecord is one fixed-ratio benchmark datapoint: how close the
// steered compression ratio landed, how many passes the solver spent,
// and the end-to-end encode throughput including those passes.
type RatioRecord struct {
	Name        string  `json:"name"`
	Codec       string  `json:"codec"`
	Dims        []int   `json:"dims"`
	TargetRatio float64 `json:"target_ratio"`
	Achieved    float64 `json:"achieved_ratio"`
	DevPct      float64 `json:"deviation_pct"`
	Passes      int     `json:"passes"`
	PSNR        float64 `json:"measured_psnr_db"`
	EncodeMBps  float64 `json:"encode_mb_per_s"`
}

// ratioMain sweeps the fixed-ratio mode over the chunkbench synthetic
// field for each codec × target-ratio pair and emits the records.
func ratioMain(args []string) error {
	fs := flag.NewFlagSet("ratio", flag.ExitOnError)
	pf := registerProfileFlags(fs)
	var (
		dimsArg   = fs.String("dims", "64x96x96", "synthetic field grid")
		ratiosArg = fs.String("ratios", "8,16,32", "comma-separated target ratios")
		codecsArg = fs.String("codecs", "sz,otc", "comma-separated codecs (sz, otc)")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		out       = fs.String("out", "-", "JSON output path (default stdout)")
	)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	recs, err := ratioRecords(*dimsArg, *ratiosArg, *codecsArg, *workers)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	if err := writeJSON(*out, blob); err != nil {
		return err
	}
	if *out != "-" {
		for _, r := range recs {
			fmt.Printf("%s %s R=%g: achieved %.2f (%+.1f%%) in %d pass(es), %.1f MB/s, %.1f dB\n",
				r.Name, r.Codec, r.TargetRatio, r.Achieved, r.DevPct, r.Passes, r.EncodeMBps, r.PSNR)
		}
	}
	return nil
}

// ratioRecords runs the fixed-ratio sweep.
func ratioRecords(dimsArg, ratiosArg, codecsArg string, workers int) ([]RatioRecord, error) {
	dims, err := parseDims(dimsArg, 3)
	if err != nil {
		return nil, err
	}
	if dims == nil {
		return nil, fmt.Errorf("ratio: -dims is required")
	}
	ratios, err := parseFloats(ratiosArg)
	if err != nil {
		return nil, err
	}
	f := synthFieldForBench(dims)

	var recs []RatioRecord
	for _, codecName := range strings.Split(codecsArg, ",") {
		codecName = strings.TrimSpace(codecName)
		var comp fixedpsnr.Compressor
		switch codecName {
		case "sz":
			comp = fixedpsnr.CompressorSZ
		case "otc":
			comp = fixedpsnr.CompressorTransform
		default:
			return nil, fmt.Errorf("ratio: unknown codec %q (want sz or otc)", codecName)
		}
		for _, target := range ratios {
			opt := fixedpsnr.Options{
				Mode:        fixedpsnr.ModeRatio,
				TargetRatio: target,
				Compressor:  comp,
				Workers:     workers,
			}
			start := time.Now()
			blob, res, err := fixedpsnr.Compress(f, opt)
			if err != nil {
				return nil, fmt.Errorf("ratio: %s @ %g: %w", codecName, target, err)
			}
			secs := time.Since(start).Seconds()
			recon, _, err := fixedpsnr.Decompress(blob)
			if err != nil {
				return nil, err
			}
			d := fixedpsnr.CompareFields(f, recon)
			recs = append(recs, RatioRecord{
				Name:        "fixed_ratio_" + dimsArg,
				Codec:       codecName,
				Dims:        dims,
				TargetRatio: target,
				Achieved:    res.Ratio,
				DevPct:      100 * (res.Ratio - target) / target,
				Passes:      res.Passes,
				PSNR:        d.PSNR,
				EncodeMBps:  float64(res.OriginalBytes) / (1 << 20) / secs,
			})
		}
	}
	return recs, nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad ratio list %q", s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty ratio list")
	}
	return out, nil
}
