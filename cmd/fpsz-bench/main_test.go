package main

import (
	"io"
	"strings"
	"testing"

	"fixedpsnr/internal/experiment"
)

func TestParseDims(t *testing.T) {
	cases := []struct {
		in   string
		rank int
		want []int
		ok   bool
	}{
		{"", 3, nil, true},
		{"64x64x64", 3, []int{64, 64, 64}, true},
		{"180x360", 2, []int{180, 360}, true},
		{"64X32", 2, []int{64, 32}, true}, // case-insensitive separator
		{"64x64", 3, nil, false},          // wrong rank
		{"ax2", 2, nil, false},            // non-numeric
		{"0x4", 2, nil, false},            // non-positive
		{"-3x4", 2, nil, false},
	}
	for _, c := range cases {
		got, err := parseDims(c.in, c.rank)
		if c.ok && err != nil {
			t.Fatalf("parseDims(%q, %d): unexpected error %v", c.in, c.rank, err)
		}
		if !c.ok {
			if err == nil {
				t.Fatalf("parseDims(%q, %d): expected error", c.in, c.rank)
			}
			continue
		}
		if len(got) != len(c.want) {
			t.Fatalf("parseDims(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("parseDims(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, "nope", cfgForTest(), "", false); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunTable1(t *testing.T) {
	if err := run(io.Discard, "table1", cfgForTest(), "", false); err != nil {
		t.Fatal(err)
	}
}

// cfgForTest keeps CLI tests fast.
func cfgForTest() experiment.Config {
	return experiment.Config{
		NYXDims:       []int{8, 8, 8},
		ATMDims:       []int{16, 32},
		HurricaneDims: []int{4, 16, 16},
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
BenchmarkOneShotCompress-8   	     100	  11481571 ns/op	  87.10 MB/s	 7391472 B/op	      59 allocs/op
BenchmarkEncoderReuse-8      	     200	   5000000 ns/op
some unrelated line
PASS
`
	results, err := parseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkOneShotCompress" || r.Iterations != 100 ||
		r.NsPerOp != 11481571 || r.MBPerSec != 87.10 || r.BytesPerOp != 7391472 || r.AllocsPerOp != 59 {
		t.Fatalf("first result mismatch: %+v", r)
	}
	if results[1].Name != "BenchmarkEncoderReuse" || results[1].NsPerOp != 5000000 {
		t.Fatalf("second result mismatch: %+v", results[1])
	}
}

func TestRatioRecordsSweep(t *testing.T) {
	recs, err := ratioRecords("16x32x32", "6", "sz", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Codec != "sz" || r.TargetRatio != 6 || r.Passes < 1 || !(r.Achieved > 0) {
		t.Fatalf("implausible record: %+v", r)
	}
}

func TestRatioRecordsRejectsUnknownCodec(t *testing.T) {
	if _, err := ratioRecords("16x32x32", "8", "zstd", 1); err == nil {
		t.Fatal("expected unknown-codec error")
	}
}

func TestThroughputRecords(t *testing.T) {
	gb := []GoBenchResult{
		{Name: "BenchmarkChunkedEncode1Core", MBPerSec: 75.2},
		{Name: "BenchmarkChunkedEncodeAllCores", MBPerSec: 140.5},
		{Name: "BenchmarkChunkedDecode1Core", MBPerSec: 280.1},
		{Name: "BenchmarkChunkedDecodeAllCores", MBPerSec: 300.9},
		{Name: "BenchmarkUnrelated", MBPerSec: 1.0},
	}
	recs := throughputRecords(gb)
	if err := checkThroughput(recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Op != "encode" || recs[1].Op != "decode" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].OneCoreMBps != 75.2 || recs[0].AllCoresMBps != 140.5 {
		t.Fatalf("encode datapoints = %+v", recs[0])
	}
	if want := recs[0].AllCoresMBps / recs[0].OneCoreMBps; recs[0].Scaling != want {
		t.Fatalf("encode scaling = %g, want %g", recs[0].Scaling, want)
	}

	// Missing or zero datapoints must fail the CI assertion.
	if err := checkThroughput(throughputRecords(gb[:2])); err == nil {
		t.Fatal("want error with decode datapoints missing")
	}
	gb[2].MBPerSec = 0
	if err := checkThroughput(throughputRecords(gb)); err == nil {
		t.Fatal("want error with zero 1-core decode MB/s")
	}
}

func TestCheckScaling(t *testing.T) {
	gb := []GoBenchResult{
		{Name: "BenchmarkChunkedEncode1Core", MBPerSec: 100},
		{Name: "BenchmarkChunkedEncodeAllCores", MBPerSec: 320},
		{Name: "BenchmarkChunkedDecode1Core", MBPerSec: 200},
		{Name: "BenchmarkChunkedDecodeAllCores", MBPerSec: 500},
	}
	recs := throughputRecords(gb)
	if recs[0].ScalingEfficiency <= 0 || recs[0].Cores <= 0 {
		t.Fatalf("encode record missing scaling efficiency: %+v", recs[0])
	}
	if got, want := recs[0].ScalingEfficiency, recs[0].Scaling/float64(recs[0].Cores); got != want {
		t.Fatalf("encode efficiency = %g, want %g", got, want)
	}
	// Decode scales 2.5x, encode 3.2x: a floor of 2.4 passes, 2.6 trips
	// on decode.
	if err := checkScaling(recs, 2.4); err != nil {
		t.Fatal(err)
	}
	if err := checkScaling(recs, 2.6); err == nil {
		t.Fatal("want error with decode scaling 2.5 below floor 2.6")
	}
	if err := checkScaling(nil, 1.0); err == nil {
		t.Fatal("want error with no throughput datapoints")
	}
	// A missing op must fail, not silently pass on the ops that exist:
	// encode-only results once satisfied the check with decode scaling
	// unmeasured.
	if err := checkScaling(throughputRecords(gb[:2]), 2.4); err == nil {
		t.Fatal("want error with decode datapoints missing")
	}
	if err := checkScaling(throughputRecords(gb[2:]), 2.4); err == nil {
		t.Fatal("want error with encode datapoints missing")
	}
}
