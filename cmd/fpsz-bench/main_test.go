package main

import (
	"io"
	"testing"

	"fixedpsnr/internal/experiment"
)

func TestParseDims(t *testing.T) {
	cases := []struct {
		in   string
		rank int
		want []int
		ok   bool
	}{
		{"", 3, nil, true},
		{"64x64x64", 3, []int{64, 64, 64}, true},
		{"180x360", 2, []int{180, 360}, true},
		{"64X32", 2, []int{64, 32}, true}, // case-insensitive separator
		{"64x64", 3, nil, false},          // wrong rank
		{"ax2", 2, nil, false},            // non-numeric
		{"0x4", 2, nil, false},            // non-positive
		{"-3x4", 2, nil, false},
	}
	for _, c := range cases {
		got, err := parseDims(c.in, c.rank)
		if c.ok && err != nil {
			t.Fatalf("parseDims(%q, %d): unexpected error %v", c.in, c.rank, err)
		}
		if !c.ok {
			if err == nil {
				t.Fatalf("parseDims(%q, %d): expected error", c.in, c.rank)
			}
			continue
		}
		if len(got) != len(c.want) {
			t.Fatalf("parseDims(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("parseDims(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, "nope", cfgForTest(), "", false); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunTable1(t *testing.T) {
	if err := run(io.Discard, "table1", cfgForTest(), "", false); err != nil {
		t.Fatal(err)
	}
}

// cfgForTest keeps CLI tests fast.
func cfgForTest() experiment.Config {
	return experiment.Config{
		NYXDims:       []int{8, 8, 8},
		ATMDims:       []int{16, 32},
		HurricaneDims: []int{4, 16, 16},
	}
}
