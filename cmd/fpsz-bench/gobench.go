package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// GoBenchResult is one parsed `go test -bench` result line.
type GoBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// gobenchMain converts `go test -bench -benchmem` text output into a JSON
// benchmark record, so CI can emit machine-readable perf artifacts and
// the perf trajectory accumulates across PRs. Lines that are not
// benchmark results are ignored.
func gobenchMain(args []string) error {
	fs := flag.NewFlagSet("gobench", flag.ExitOnError)
	pf := registerProfileFlags(fs)
	in := fs.String("in", "-", "bench output file (default stdin)")
	out := fs.String("out", "-", "JSON output file (default stdout)")
	requireScale := fs.Float64("require-scaling", 0, "fail unless every chunked throughput datapoint's all-core/1-core scaling factor is at least this value (0 = no check)")
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	results, err := parseGoBenchFile(*in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	if *requireScale > 0 {
		if err := checkScaling(throughputRecords(results), *requireScale); err != nil {
			return err
		}
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return writeJSON(*out, blob)
}

// parseGoBenchFile parses a bench output file ("-" = stdin).
func parseGoBenchFile(path string) ([]GoBenchResult, error) {
	src := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}
	return parseGoBench(src)
}

// parseGoBench extracts benchmark result lines of the form
//
//	BenchmarkName-8  100  11481571 ns/op  87.10 MB/s  7391472 B/op  59 allocs/op
//
// from mixed `go test` output.
func parseGoBench(r io.Reader) ([]GoBenchResult, error) {
	var out []GoBenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := GoBenchResult{Name: trimGOMAXPROCS(fields[0]), Iterations: iters}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seen = true
			case "MB/s":
				res.MBPerSec = v
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		if seen {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// trimGOMAXPROCS strips the trailing "-N" procs suffix from a benchmark
// name.
func trimGOMAXPROCS(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
