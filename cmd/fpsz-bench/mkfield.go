package main

import (
	"flag"
	"fmt"

	"fixedpsnr"
	"fixedpsnr/internal/fieldio"
)

// mkfieldMain writes a deterministic synthetic field as an SDF1 file —
// the input generator for smoke tests and serve demos, so they need no
// external datasets.
func mkfieldMain(args []string) error {
	fs := flag.NewFlagSet("mkfield", flag.ExitOnError)
	var (
		dimsArg = fs.String("dims", "48x40x32", "field grid")
		name    = fs.String("name", "synth", "field name recorded in the file")
		out     = fs.String("out", "", "output SDF1 path (required)")
	)
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("mkfield: -out is required")
	}
	dims, err := parseDims(*dimsArg, 3)
	if err != nil {
		return err
	}
	f := fixedpsnr.NewField(*name, fixedpsnr.Float64, dims...)
	for i := range f.Data {
		f.Data[i] = synthValue(i, dims)
	}
	if err := fieldio.WriteFile(*out, f); err != nil {
		return err
	}
	fmt.Printf("mkfield: %s %v -> %s\n", *name, dims, *out)
	return nil
}
