package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"strings"
	"time"

	"fixedpsnr"
)

// RegionRecord is one mixed-target benchmark datapoint: a middle-rows
// region of interest held at a fixed PSNR while the background is
// steered to a fixed ratio, with both groups' achieved statistics and
// the end-to-end encode throughput including every steering pass.
type RegionRecord struct {
	Name            string  `json:"name"`
	Codec           string  `json:"codec"`
	Dims            []int   `json:"dims"`
	ROIPSNRTarget   float64 `json:"roi_psnr_target_db"`
	ROIPSNR         float64 `json:"roi_psnr_db"`
	ROIPasses       int     `json:"roi_passes"`
	ROIChunks       int     `json:"roi_chunks"`
	BGRatioTarget   float64 `json:"bg_ratio_target"`
	BGRatio         float64 `json:"bg_ratio"`
	BGPasses        int     `json:"bg_passes"`
	StreamRatio     float64 `json:"stream_ratio"`
	DecodedROIPSNR  float64 `json:"decoded_roi_psnr_db"`
	EncodeMBps      float64 `json:"encode_mb_per_s"`
	TotalFieldPSNR  float64 `json:"field_psnr_db"`
	CompressedBytes int     `json:"compressed_bytes"`
}

// regionMain sweeps the per-region quality targets over the synthetic
// benchmark field: ROI PSNR fixed, background ratio swept, emitting one
// record per background target — the ROI-PSNR-vs-background-ratio
// datapoints of the per-region steering stack.
func regionMain(args []string) error {
	fs := flag.NewFlagSet("region", flag.ExitOnError)
	pf := registerProfileFlags(fs)
	var (
		dimsArg   = fs.String("dims", "64x96x96", "synthetic field grid")
		roiPSNR   = fs.Float64("roipsnr", 80, "region-of-interest PSNR target in dB")
		ratiosArg = fs.String("bgratios", "8,16", "comma-separated background ratio targets")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		out       = fs.String("out", "-", "JSON output path (default stdout)")
	)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	recs, err := regionRecords(*dimsArg, *roiPSNR, *ratiosArg, *workers)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	if err := writeJSON(*out, blob); err != nil {
		return err
	}
	if *out != "-" {
		for _, r := range recs {
			fmt.Printf("%s: ROI %.2f dB (target %g, %d passes), background ratio %.2f (target %g, %d passes), %.1f MB/s\n",
				r.Name, r.ROIPSNR, r.ROIPSNRTarget, r.ROIPasses, r.BGRatio, r.BGRatioTarget, r.BGPasses, r.EncodeMBps)
		}
	}
	return nil
}

// regionRecords runs the mixed-target sweep on the sz pipeline (the one
// that measures MSE and so can steer PSNR per region).
func regionRecords(dimsArg string, roiPSNR float64, ratiosArg string, workers int) ([]RegionRecord, error) {
	dims, err := parseDims(dimsArg, 3)
	if err != nil {
		return nil, err
	}
	if dims == nil {
		return nil, fmt.Errorf("region: -dims is required")
	}
	ratios, err := parseFloats(ratiosArg)
	if err != nil {
		return nil, err
	}
	f := synthFieldForBench(dims)

	// ROI: the middle quarter of the rows, full extent elsewhere.
	roiOff := []int{dims[0] * 3 / 8, 0, 0}
	roiExt := []int{dims[0] / 4, dims[1], dims[2]}

	var recs []RegionRecord
	for _, target := range ratios {
		opt := fixedpsnr.Options{
			Mode:        fixedpsnr.ModeRatio,
			TargetRatio: target,
			Workers:     workers,
			ChunkPoints: fixedpsnr.MinChunkPoints,
			RegionTargets: []fixedpsnr.RegionTarget{{
				Region:     fixedpsnr.Region{Off: roiOff, Ext: roiExt},
				Mode:       fixedpsnr.ModePSNR,
				TargetPSNR: roiPSNR,
			}},
		}
		start := time.Now()
		blob, res, err := fixedpsnr.Compress(f, opt)
		if err != nil {
			return nil, fmt.Errorf("region: bg ratio %g: %w", target, err)
		}
		secs := time.Since(start).Seconds()
		if len(res.Regions) != 2 {
			return nil, fmt.Errorf("region: got %d groups", len(res.Regions))
		}
		roi, bg := res.Regions[0], res.Regions[1]

		// Verify through a real decode: field-wide PSNR and ROI PSNR
		// against the global value range.
		recon, _, err := fixedpsnr.Decompress(blob)
		if err != nil {
			return nil, err
		}
		d := fixedpsnr.CompareFields(f, recon)
		sub, err := recon.Slice(roiOff, roiExt)
		if err != nil {
			return nil, err
		}
		orig, err := f.Slice(roiOff, roiExt)
		if err != nil {
			return nil, err
		}
		var sumSq float64
		for i := range sub.Data {
			e := sub.Data[i] - orig.Data[i]
			sumSq += e * e
		}
		_, _, vr := f.ValueRange()
		decodedROIPSNR := math.Inf(1)
		if mse := sumSq / float64(len(sub.Data)); mse > 0 {
			decodedROIPSNR = -10*math.Log10(mse) + 20*math.Log10(vr)
		}

		recs = append(recs, RegionRecord{
			Name:            "region_" + dimsArg + "_bg" + strings.ReplaceAll(fmt.Sprintf("%g", target), ".", "_"),
			Codec:           "sz",
			Dims:            dims,
			ROIPSNRTarget:   roiPSNR,
			ROIPSNR:         roi.AchievedPSNR,
			ROIPasses:       roi.Passes,
			ROIChunks:       roi.Chunks,
			BGRatioTarget:   target,
			BGRatio:         bg.AchievedRatio,
			BGPasses:        bg.Passes,
			StreamRatio:     res.Ratio,
			DecodedROIPSNR:  decodedROIPSNR,
			EncodeMBps:      float64(res.OriginalBytes) / (1 << 20) / secs,
			TotalFieldPSNR:  d.PSNR,
			CompressedBytes: res.CompressedBytes,
		})
	}
	return recs, nil
}
