package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fixedpsnr"
	"fixedpsnr/internal/fieldio"
	"fixedpsnr/internal/serve"
)

// ServeRecord is the archive-service load-test datapoint: many
// concurrent readers issuing zipfian ROI requests against an in-process
// fpsz-serve instance, every response byte-compared against the reader's
// own region extraction.
type ServeRecord struct {
	Name              string  `json:"name"`
	Dims              []int   `json:"dims"`
	Fields            int     `json:"fields"`
	UncompressedBytes int64   `json:"uncompressed_bytes"`
	ArchiveBytes      int64   `json:"archive_bytes"`
	Readers           int     `json:"readers"`
	Requests          int     `json:"requests"`
	DistinctQueries   int     `json:"distinct_queries"`
	ZipfS             float64 `json:"zipf_s"`
	CacheMB           int64   `json:"cache_mb"`

	FailedRequests int    `json:"failed_requests"`
	MismatchedByte int    `json:"mismatched_responses"`
	Shed429        uint64 `json:"shed_429"`
	Shed503        uint64 `json:"shed_503"`

	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	ReqPerSec     float64 `json:"req_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	WallSeconds   float64 `json:"wall_seconds"`
}

// serveQuery is one precomputed ROI request with its expected answer.
type serveQuery struct {
	url  string
	want []float64
}

// buildServeArchive synthesizes nFields fields of the given dims,
// compresses each (fixed absolute bound: single-pass, so archive build
// time stays linear), and writes them into one .fpsa in dir.
func buildServeArchive(dir string, dims []int, nFields int) (archivePath string, uncompressed, archiveBytes int64, err error) {
	archivePath = filepath.Join(dir, "bench"+".fpsa")
	f, err := os.Create(archivePath)
	if err != nil {
		return "", 0, 0, err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	aw, err := fixedpsnr.NewArchiveWriter(bw)
	if err != nil {
		return "", 0, 0, err
	}
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeAbs),
		fixedpsnr.WithErrorBound(1e-3),
	)
	if err != nil {
		return "", 0, 0, err
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	fld := fixedpsnr.NewField("", fixedpsnr.Float64, dims...)
	for fi := 0; fi < nFields; fi++ {
		fld.Name = fmt.Sprintf("field%03d", fi)
		scale := 1 + 0.05*float64(fi)
		for i := range fld.Data {
			fld.Data[i] = scale * synthValue(i, dims)
		}
		blob, _, err := enc.Encode(context.Background(), fld)
		if err != nil {
			return "", 0, 0, err
		}
		if err := aw.WriteStream(blob); err != nil {
			return "", 0, 0, err
		}
		uncompressed += int64(n * 8)
	}
	if err := aw.Close(); err != nil {
		return "", 0, 0, err
	}
	if err := bw.Flush(); err != nil {
		return "", 0, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return "", 0, 0, err
	}
	return archivePath, uncompressed, st.Size(), nil
}

// buildServeQueries draws nQueries deterministic ROI requests across the
// archive's fields and precomputes each expected answer with the
// reader's own extraction — the ground truth the responses must match
// byte for byte.
func buildServeQueries(archivePath, baseURL string, dims []int, nFields, nQueries int) ([]serveQuery, error) {
	ar, err := fixedpsnr.OpenArchiveFile(archivePath)
	if err != nil {
		return nil, err
	}
	defer ar.Close()
	rng := rand.New(rand.NewPCG(42, 7))
	queries := make([]serveQuery, nQueries)
	for qi := range queries {
		fi := rng.IntN(nFields)
		off := make([]int, len(dims))
		ext := make([]int, len(dims))
		for d, dim := range dims {
			e := 1 + rng.IntN(dim/2)
			if d == 0 && e > 32 {
				e = 32 // cap the row span so one query reads a few chunks, not the world
			}
			o := rng.IntN(dim - e + 1)
			off[d], ext[d] = o, e
		}
		want, _, err := ar.ExtractRegionAt(fi, off, ext)
		if err != nil {
			return nil, fmt.Errorf("query %d (field %d off %v ext %v): %w", qi, fi, off, ext, err)
		}
		url := fmt.Sprintf("%s/v1/archives/bench/fields/field%03d/region?off=%s&ext=%s",
			baseURL, fi, intsCSV(off), intsCSV(ext))
		queries[qi] = serveQuery{url: url, want: want.Data}
	}
	return queries, nil
}

func intsCSV(v []int) string {
	out := ""
	for i, x := range v {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(x)
	}
	return out
}

// serveRecord builds the archive, starts an in-process server, and runs
// the concurrent zipfian ROI load.
func serveRecord(dimsArg string, nFields, readers, requests, nQueries int, zipfS float64, cacheMB int64) (ServeRecord, error) {
	var rec ServeRecord
	dims, err := parseDims(dimsArg, 3)
	if err != nil {
		return rec, err
	}
	dir, err := os.MkdirTemp("", "fpsz-serve-bench")
	if err != nil {
		return rec, err
	}
	defer os.RemoveAll(dir)

	t0 := time.Now()
	archivePath, uncompressed, archiveBytes, err := buildServeArchive(dir, dims, nFields)
	if err != nil {
		return rec, fmt.Errorf("building archive: %w", err)
	}
	fmt.Fprintf(os.Stderr, "serve bench: archive %s: %d fields, %.1f MB raw -> %.1f MB in %.1fs\n",
		filepath.Base(archivePath), nFields, float64(uncompressed)/(1<<20), float64(archiveBytes)/(1<<20),
		time.Since(t0).Seconds())

	srv, err := serve.NewServer(serve.Config{
		Root:        dir,
		CacheBytes:  cacheMB << 20,
		MaxInFlight: 64,
		// Deep queue + generous timeout: the identity phase must never
		// shed, so every response can be byte-checked.
		QueueDepth:   2 * readers,
		QueueTimeout: 5 * time.Minute,
	})
	if err != nil {
		return rec, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rec, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	baseURL := "http://" + ln.Addr().String()

	queries, err := buildServeQueries(archivePath, baseURL, dims, nFields, nQueries)
	if err != nil {
		return rec, fmt.Errorf("precomputing queries: %w", err)
	}

	tr := &http.Transport{
		MaxIdleConns:        readers + 16,
		MaxIdleConnsPerHost: readers + 16,
	}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	perReader := requests / readers
	if perReader == 0 {
		perReader = 1
	}
	latencies := make([][]time.Duration, readers)
	var failed, mismatched, respBytes atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 0xbeef))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(queries)-1))
			lats := make([]time.Duration, 0, perReader)
			for i := 0; i < perReader; i++ {
				q := queries[zipf.Uint64()]
				reqStart := time.Now()
				resp, err := client.Get(q.url)
				if err != nil {
					failed.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				lats = append(lats, time.Since(reqStart))
				if rerr != nil || resp.StatusCode != http.StatusOK {
					failed.Add(1)
					continue
				}
				respBytes.Add(int64(len(body)))
				got, err := fieldio.Read(bytes.NewReader(body))
				if err != nil || !equalFloats(got.Data, q.want) {
					mismatched.Add(1)
				}
			}
			latencies[g] = lats
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	mean := time.Duration(0)
	for _, d := range all {
		mean += d
	}
	if len(all) > 0 {
		mean /= time.Duration(len(all))
	}

	st := srv.CacheStats()
	met := srv.Metrics()
	rec = ServeRecord{
		Name: "serve-zipf-roi", Dims: dims, Fields: nFields,
		UncompressedBytes: uncompressed, ArchiveBytes: archiveBytes,
		Readers: readers, Requests: len(all) + int(failed.Load()),
		DistinctQueries: nQueries, ZipfS: zipfS, CacheMB: cacheMB,
		FailedRequests: int(failed.Load()), MismatchedByte: int(mismatched.Load()),
		Shed429: met.Shed429.Load(), Shed503: met.Shed503.Load(),
		P50Ms: pct(0.50), P95Ms: pct(0.95), P99Ms: pct(0.99),
		MeanMs:        float64(mean) / float64(time.Millisecond),
		ReqPerSec:     float64(len(all)) / wall.Seconds(),
		MBPerSec:      float64(respBytes.Load()) / (1 << 20) / wall.Seconds(),
		CacheHitRatio: st.HitRatio(), WallSeconds: wall.Seconds(),
	}
	return rec, nil
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// serveMain is the `fpsz-bench serve` entry point.
func serveMain(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	pf := registerProfileFlags(fs)
	var (
		dimsArg  = fs.String("dims", "128x128x128", "per-field grid")
		nFields  = fs.Int("fields", 4, "fields in the archive")
		readers  = fs.Int("readers", 256, "concurrent reader goroutines")
		requests = fs.Int("requests", 8192, "total ROI requests across all readers")
		queries  = fs.Int("queries", 64, "distinct precomputed ROI queries")
		zipfS    = fs.Float64("zipf", 1.2, "zipf skew of query popularity (> 1)")
		cacheMB  = fs.Int64("cache-mb", 256, "server decoded-chunk cache (MiB)")
		out      = fs.String("out", "-", "JSON output path (default stdout)")
	)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	rec, err := serveRecord(*dimsArg, *nFields, *readers, *requests, *queries, *zipfS, *cacheMB)
	if err != nil {
		return err
	}
	if rec.FailedRequests > 0 || rec.MismatchedByte > 0 {
		return fmt.Errorf("serve bench: %d failed requests, %d mismatched responses (want 0/0)",
			rec.FailedRequests, rec.MismatchedByte)
	}
	blob, err := json.MarshalIndent([]ServeRecord{rec}, "", "  ")
	if err != nil {
		return err
	}
	if err := writeJSON(*out, blob); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"serve bench: %d readers x %d reqs: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, %.0f req/s, %.1f MB/s, hit ratio %.3f\n",
		rec.Readers, rec.Requests, rec.P50Ms, rec.P95Ms, rec.P99Ms, rec.ReqPerSec, rec.MBPerSec, rec.CacheHitRatio)
	return nil
}
