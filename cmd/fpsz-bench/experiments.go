package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fixedpsnr/internal/experiment"
)

// experimentsMain regenerates the paper's tables and figures plus the
// extension studies on the synthetic stand-in data sets.
func experimentsMain(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	pf := registerProfileFlags(fs)
	var (
		name    = fs.String("experiment", "all", "experiment to run (table1, figure1, figure2, table2, overhead, baseline, transform, ablation, ratio, decimation, calibration, fixedratio, all)")
		csvPath = fs.String("csv", "", "also write machine-readable CSV to this path (table2, figure1, figure2)")
		fields  = fs.Bool("fields", false, "print per-field tables where applicable")
		workers = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		nyxDims = fs.String("nyx", "", "NYX grid, e.g. 64x64x64")
		atmDims = fs.String("atm", "", "ATM grid, e.g. 180x360")
		hurDims = fs.String("hurricane", "", "Hurricane grid, e.g. 25x125x125")
	)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	cfg := experiment.Config{Workers: *workers}
	if cfg.NYXDims, err = parseDims(*nyxDims, 3); err != nil {
		return err
	}
	if cfg.ATMDims, err = parseDims(*atmDims, 2); err != nil {
		return err
	}
	if cfg.HurricaneDims, err = parseDims(*hurDims, 3); err != nil {
		return err
	}
	return run(os.Stdout, *name, cfg, *csvPath, *fields)
}

func run(w io.Writer, name string, cfg experiment.Config, csvPath string, fields bool) error {
	var csvW *os.File
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csvW = f
	}

	all := name == "all"
	ran := false

	if all || name == "table1" {
		ran = true
		experiment.RenderTable1(w, experiment.Table1(cfg))
		fmt.Fprintln(w)
	}
	if all || name == "figure1" {
		ran = true
		r, err := experiment.Figure1(cfg)
		if err != nil {
			return err
		}
		experiment.RenderFigure1(w, r)
		fmt.Fprintln(w)
		if csvW != nil && name == "figure1" {
			if err := experiment.CSVFigure1(csvW, r); err != nil {
				return err
			}
		}
	}
	if all || name == "figure2" {
		ran = true
		r, err := experiment.Figure2(cfg)
		if err != nil {
			return err
		}
		experiment.RenderFigure2(w, r)
		if fields {
			experiment.RenderFigure2Fields(w, r)
		}
		fmt.Fprintln(w)
		if csvW != nil && name == "figure2" {
			if err := experiment.CSVFigure2(csvW, r); err != nil {
				return err
			}
		}
	}
	if all || name == "table2" {
		ran = true
		r, err := experiment.Table2(cfg)
		if err != nil {
			return err
		}
		experiment.RenderTable2(w, r)
		fmt.Fprintln(w)
		if csvW != nil && name == "table2" {
			if err := experiment.CSVTable2(csvW, r); err != nil {
				return err
			}
		}
	}
	if all || name == "overhead" {
		ran = true
		rows, err := experiment.Overhead(cfg)
		if err != nil {
			return err
		}
		experiment.RenderOverhead(w, rows)
		fmt.Fprintln(w)
	}
	if all || name == "baseline" {
		ran = true
		rows, err := experiment.Baseline(cfg, nil)
		if err != nil {
			return err
		}
		experiment.RenderBaseline(w, rows)
		fmt.Fprintln(w)
	}
	if all || name == "transform" {
		ran = true
		cells, err := experiment.TransformExperiment(cfg, nil)
		if err != nil {
			return err
		}
		experiment.RenderTransform(w, cells)
		fmt.Fprintln(w)
	}
	if all || name == "ablation" {
		ran = true
		rows, err := experiment.Ablation(cfg)
		if err != nil {
			return err
		}
		experiment.RenderAblation(w, rows)
		fmt.Fprintln(w)
	}
	if all || name == "ratio" {
		ran = true
		cells, err := experiment.RatioSweep(cfg)
		if err != nil {
			return err
		}
		experiment.RenderRatio(w, cells)
		fmt.Fprintln(w)
	}
	if all || name == "decimation" {
		ran = true
		r, err := experiment.Decimation(cfg)
		if err != nil {
			return err
		}
		experiment.RenderDecimation(w, r)
		fmt.Fprintln(w)
	}
	if all || name == "calibration" {
		ran = true
		cells, err := experiment.Calibration(cfg, nil)
		if err != nil {
			return err
		}
		experiment.RenderCalibration(w, cells)
		fmt.Fprintln(w)
	}
	if all || name == "fixedratio" {
		ran = true
		cells, err := experiment.FixedRatio(cfg, nil)
		if err != nil {
			return err
		}
		experiment.RenderFixedRatio(w, cells)
		fmt.Fprintln(w)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
