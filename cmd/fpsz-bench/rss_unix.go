//go:build linux || darwin

package main

import (
	"runtime"
	"syscall"
)

// peakRSSBytes reports the process's peak resident set size via
// getrusage. Linux reports ru_maxrss in kilobytes, Darwin in bytes.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	if runtime.GOOS == "darwin" {
		return ru.Maxrss
	}
	return ru.Maxrss * 1024
}
