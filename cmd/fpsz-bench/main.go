// Command fpsz-bench is the unified benchmark and experiment tool: the
// paper's tables and figures, machine-readable performance records, and
// the fixed-ratio accuracy sweep all live behind one binary with
// subcommands.
//
// Usage:
//
//	fpsz-bench experiments -experiment all            # paper tables/figures
//	fpsz-bench experiments -experiment table2 -csv t2.csv
//	fpsz-bench gobench -in bench.out -out bench.json  # parse `go test -bench`
//	fpsz-bench chunk -dims 256x384x384 -psnr 80       # chunked-encoder record
//	fpsz-bench ratio -dims 64x96x96 -ratios 8,16,32   # fixed-ratio records
//	fpsz-bench region -dims 64x96x96 -roipsnr 80      # ROI-PSNR vs background-ratio
//	fpsz-bench suite -out BENCH_pr5.json [-gobench bench.out]
//
// The suite subcommand runs the chunked-encoder benchmark and the
// fixed-ratio sweep (optionally folding in parsed `go test -bench`
// output) and emits one combined JSON record — the per-PR perf artifact
// CI uploads.
//
// For backward compatibility, invoking fpsz-bench with a leading flag
// (e.g. `fpsz-bench -experiment table1`) routes to the experiments
// subcommand.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	args := os.Args[1:]
	sub := "help"
	if len(args) > 0 {
		if strings.HasPrefix(args[0], "-") {
			// Legacy spelling: flags straight after the binary name.
			sub = "experiments"
		} else {
			sub, args = args[0], args[1:]
		}
	}
	var err error
	switch sub {
	case "experiments":
		err = experimentsMain(args)
	case "gobench":
		err = gobenchMain(args)
	case "chunk":
		err = chunkMain(args)
	case "ratio":
		err = ratioMain(args)
	case "region":
		err = regionMain(args)
	case "serve":
		err = serveMain(args)
	case "mkfield":
		err = mkfieldMain(args)
	case "suite":
		err = suiteMain(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fpsz-bench: unknown subcommand %q\n\n", sub)
		usage()
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fpsz-bench experiments -experiment <name> [-csv <path>] [-fields] [-workers N] [dims flags]
  fpsz-bench gobench     [-in <bench.out>] [-out <json>]
  fpsz-bench chunk       [-dims HxWxD] [-psnr dB] [-chunkpoints N] [-workers N] [-out <json>]
  fpsz-bench ratio       [-dims HxWxD] [-ratios R,R,...] [-codecs sz,otc] [-workers N] [-out <json>]
  fpsz-bench region      [-dims HxWxD] [-roipsnr dB] [-bgratios R,R,...] [-workers N] [-out <json>]
  fpsz-bench serve       [-dims HxWxD] [-fields N] [-readers N] [-requests N] [-zipf s] [-out <json>]
  fpsz-bench mkfield     -out <field.sdf> [-dims HxWxD] [-name <field>]
  fpsz-bench suite       [-out <json>] [-gobench <bench.out>] [-serve] [chunk/ratio/region/serve flags]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpsz-bench:", err)
	os.Exit(1)
}

// parseDims parses "AxBxC" into dimensions of the required rank.
func parseDims(s string, wantRank int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != wantRank {
		return nil, fmt.Errorf("dims %q: want %d dimensions", s, wantRank)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("dims %q: bad dimension %q", s, p)
		}
		dims[i] = v
	}
	return dims, nil
}

// writeJSON marshals blob-ready bytes to a path, "-" meaning stdout.
func writeJSON(path string, blob []byte) error {
	blob = append(blob, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}
