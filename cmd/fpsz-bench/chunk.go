package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"fixedpsnr"
)

// ChunkRecord is the chunked-encoder benchmark record: compression ratio,
// achieved PSNR, encode throughput, and peak memory of one streaming
// encode over a synthetic 3-D field.
type ChunkRecord struct {
	Name          string  `json:"name"`
	Dims          []int   `json:"dims"`
	Points        int     `json:"points"`
	TargetPSNR    float64 `json:"target_psnr_db"`
	MeasuredPSNR  float64 `json:"measured_psnr_db"`
	Ratio         float64 `json:"ratio"`
	BitRate       float64 `json:"bit_rate"`
	Chunks        int     `json:"chunks"`
	ChunkPoints   int     `json:"chunk_points"`
	EncodeSeconds float64 `json:"encode_seconds"`
	EncodeMBps    float64 `json:"encode_mb_per_s"`
	PeakRSSBytes  int64   `json:"peak_rss_bytes"`
	HeapSysBytes  uint64  `json:"heap_sys_bytes"`
}

// synthReader generates the benchmark field on the fly: smooth structure
// (separable trigonometric modes) with a deterministic high-frequency
// perturbation, single-precision rounded, value range known analytically
// enough for a declared [-2, 2] envelope.
type synthReader struct {
	dims []int
	pos  int
	n    int
}

func synthValue(i int, dims []int) float64 {
	plane := dims[1] * dims[2]
	x := i / plane
	rem := i % plane
	y := rem / dims[2]
	z := rem % dims[2]
	v := math.Sin(float64(x)/17)*math.Cos(float64(y)/23) +
		0.5*math.Sin(float64(z)/11) +
		0.05*math.Sin(float64(i)/3)
	return float64(float32(v))
}

func (r *synthReader) Spec() (fixedpsnr.FieldSpec, error) {
	return fixedpsnr.FieldSpec{
		Name:      "chunkbench",
		Precision: fixedpsnr.Float32,
		Dims:      r.dims,
		Min:       -2,
		Max:       2,
		HasRange:  true,
	}, nil
}

func (r *synthReader) ReadValues(dst []float64) (int, error) {
	if r.pos >= r.n {
		return 0, io.EOF
	}
	n := len(dst)
	if n > r.n-r.pos {
		n = r.n - r.pos
	}
	for i := 0; i < n; i++ {
		dst[i] = synthValue(r.pos+i, r.dims)
	}
	r.pos += n
	return n, nil
}

// synthFieldForBench materializes the benchmark field for callers that
// need the values in memory (ratio steering, PSNR verification).
func synthFieldForBench(dims []int) *fixedpsnr.Field {
	f := fixedpsnr.NewField("chunkbench", fixedpsnr.Float32, dims...)
	for i := range f.Data {
		f.Data[i] = synthValue(i, dims)
	}
	return f
}

// chunkMain benchmarks the chunked encoder end to end on a synthetic 3-D
// field. The encode runs through Encoder.EncodeFrom with a
// generator-backed FieldReader: the input field is synthesized row by row
// and never materialized, which is exactly the out-of-core path the
// chunked pipeline exists for. The decode + PSNR verification then
// materializes the field once for comparison.
func chunkMain(args []string) error {
	fs := flag.NewFlagSet("chunk", flag.ExitOnError)
	pf := registerProfileFlags(fs)
	var (
		dimsArg     = fs.String("dims", "256x384x384", "synthetic field grid")
		psnr        = fs.Float64("psnr", 80, "target PSNR in dB")
		chunkPoints = fs.Int("chunkpoints", fixedpsnr.DefaultChunkPoints, "chunk size in points")
		workers     = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		out         = fs.String("out", "-", "JSON output path (default stdout)")
	)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	rec, err := chunkRecord(*dimsArg, *psnr, *chunkPoints, *workers)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent([]ChunkRecord{rec}, "", "  ")
	if err != nil {
		return err
	}
	if err := writeJSON(*out, blob); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Printf("%s: %.2f dB (target %g), ratio %.2f, %.1f MB/s, peak RSS %.1f MB -> %s\n",
			rec.Name, rec.MeasuredPSNR, rec.TargetPSNR, rec.Ratio, rec.EncodeMBps,
			float64(rec.PeakRSSBytes)/(1<<20), *out)
	}
	return nil
}

// chunkRecord runs one streaming encode + verification and builds the
// record.
func chunkRecord(dimsArg string, psnr float64, chunkPoints, workers int) (ChunkRecord, error) {
	dims, err := parseDims(dimsArg, 3)
	if err != nil {
		return ChunkRecord{}, err
	}
	if dims == nil {
		return ChunkRecord{}, fmt.Errorf("chunk: -dims is required")
	}
	n := dims[0] * dims[1] * dims[2]

	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(psnr),
		fixedpsnr.WithChunkPoints(chunkPoints),
		fixedpsnr.WithWorkers(workers),
	)
	if err != nil {
		return ChunkRecord{}, err
	}

	start := time.Now()
	blob, res, err := enc.EncodeFrom(context.Background(), &synthReader{dims: dims, n: n})
	if err != nil {
		return ChunkRecord{}, err
	}
	encodeSecs := time.Since(start).Seconds()

	// Verify: decode and compare against the regenerated original.
	recon, info, err := fixedpsnr.Decompress(blob)
	if err != nil {
		return ChunkRecord{}, err
	}
	d := fixedpsnr.CompareFields(synthFieldForBench(dims), recon)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ChunkRecord{
		Name:          "chunked_encode_" + dimsArg,
		Dims:          dims,
		Points:        n,
		TargetPSNR:    psnr,
		MeasuredPSNR:  d.PSNR,
		Ratio:         res.Ratio,
		BitRate:       res.BitRate,
		Chunks:        len(info.Chunks),
		ChunkPoints:   chunkPoints,
		EncodeSeconds: encodeSecs,
		EncodeMBps:    float64(res.OriginalBytes) / (1 << 20) / encodeSecs,
		PeakRSSBytes:  peakRSSBytes(),
		HeapSysBytes:  ms.HeapSys,
	}, nil
}
