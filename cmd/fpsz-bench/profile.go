package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags carries the -cpuprofile/-memprofile options every
// subcommand registers, so any benchmark run can be profiled directly
// (`fpsz-bench chunk -cpuprofile cpu.pprof ...`) without rigging up a
// separate go-test harness around the hot paths.
type profileFlags struct {
	cpu string
	mem string
}

// registerProfileFlags adds the profiling options to fs.
func registerProfileFlags(fs *flag.FlagSet) *profileFlags {
	p := &profileFlags{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile to `file` on exit")
	return p
}

// start begins CPU profiling if requested and returns a stop function
// that finalizes the CPU profile and snapshots the heap profile. stop is
// idempotent and reports write failures on stderr so callers can defer
// it.
func (p *profileFlags) start() (stop func(), err error) {
	var cpuF *os.File
	if p.cpu != "" {
		f, err := os.Create(p.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuF = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fpsz-bench: cpuprofile:", err)
			}
		}
		if p.mem != "" {
			f, err := os.Create(p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpsz-bench: memprofile:", err)
				return
			}
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fpsz-bench: memprofile:", err)
			}
			f.Close()
		}
	}, nil
}
