// Command fpsz-chunkbench benchmarks the chunked encoder end to end on a
// synthetic 3-D field and emits a machine-readable JSON record
// (BENCH_pr3.json in CI), so the perf trajectory tracks compression
// ratio, achieved PSNR, encode throughput, and — new with the chunked
// container — peak memory.
//
// The encode runs through Encoder.EncodeFrom with a generator-backed
// FieldReader: the input field is synthesized row by row and never
// materialized, which is exactly the out-of-core path the chunked
// pipeline exists for. The decode + PSNR verification then materializes
// the field once for comparison.
//
// Usage:
//
//	fpsz-chunkbench -dims 256x384x384 -psnr 80 -out BENCH_pr3.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fixedpsnr"
)

// Record is the JSON benchmark record.
type Record struct {
	Name          string  `json:"name"`
	Dims          []int   `json:"dims"`
	Points        int     `json:"points"`
	TargetPSNR    float64 `json:"target_psnr_db"`
	MeasuredPSNR  float64 `json:"measured_psnr_db"`
	Ratio         float64 `json:"ratio"`
	BitRate       float64 `json:"bit_rate"`
	Chunks        int     `json:"chunks"`
	ChunkPoints   int     `json:"chunk_points"`
	EncodeSeconds float64 `json:"encode_seconds"`
	EncodeMBps    float64 `json:"encode_mb_per_s"`
	PeakRSSBytes  int64   `json:"peak_rss_bytes"`
	HeapSysBytes  uint64  `json:"heap_sys_bytes"`
}

// synthReader generates the benchmark field on the fly: smooth structure
// (separable trigonometric modes) with a deterministic high-frequency
// perturbation, single-precision rounded, value range known analytically
// enough for a declared [-2, 2] envelope.
type synthReader struct {
	dims []int
	pos  int
	n    int
}

func synthValue(i int, dims []int) float64 {
	plane := dims[1] * dims[2]
	x := i / plane
	rem := i % plane
	y := rem / dims[2]
	z := rem % dims[2]
	v := math.Sin(float64(x)/17)*math.Cos(float64(y)/23) +
		0.5*math.Sin(float64(z)/11) +
		0.05*math.Sin(float64(i)/3)
	return float64(float32(v))
}

func (r *synthReader) Spec() (fixedpsnr.FieldSpec, error) {
	return fixedpsnr.FieldSpec{
		Name:      "chunkbench",
		Precision: fixedpsnr.Float32,
		Dims:      r.dims,
		Min:       -2,
		Max:       2,
		HasRange:  true,
	}, nil
}

func (r *synthReader) ReadValues(dst []float64) (int, error) {
	if r.pos >= r.n {
		return 0, io.EOF
	}
	n := len(dst)
	if n > r.n-r.pos {
		n = r.n - r.pos
	}
	for i := 0; i < n; i++ {
		dst[i] = synthValue(r.pos+i, r.dims)
	}
	r.pos += n
	return n, nil
}

func main() {
	var (
		dimsArg     = flag.String("dims", "256x384x384", "synthetic field grid")
		psnr        = flag.Float64("psnr", 80, "target PSNR in dB")
		chunkPoints = flag.Int("chunkpoints", fixedpsnr.DefaultChunkPoints, "chunk size in points")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		out         = flag.String("out", "-", "JSON output path (default stdout)")
	)
	flag.Parse()

	dims, err := parseDims(*dimsArg)
	if err != nil {
		fatal(err)
	}
	n := dims[0] * dims[1] * dims[2]

	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(*psnr),
		fixedpsnr.WithChunkPoints(*chunkPoints),
		fixedpsnr.WithWorkers(*workers),
	)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	blob, res, err := enc.EncodeFrom(context.Background(), &synthReader{dims: dims, n: n})
	if err != nil {
		fatal(err)
	}
	encodeSecs := time.Since(start).Seconds()

	// Verify: decode and compare against the regenerated original.
	recon, info, err := fixedpsnr.Decompress(blob)
	if err != nil {
		fatal(err)
	}
	orig := fixedpsnr.NewField("chunkbench", fixedpsnr.Float32, dims...)
	for i := range orig.Data {
		orig.Data[i] = synthValue(i, dims)
	}
	d := fixedpsnr.CompareFields(orig, recon)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec := Record{
		Name:          "chunked_encode_" + *dimsArg,
		Dims:          dims,
		Points:        n,
		TargetPSNR:    *psnr,
		MeasuredPSNR:  d.PSNR,
		Ratio:         res.Ratio,
		BitRate:       res.BitRate,
		Chunks:        len(info.Chunks),
		ChunkPoints:   *chunkPoints,
		EncodeSeconds: encodeSecs,
		EncodeMBps:    float64(res.OriginalBytes) / (1 << 20) / encodeSecs,
		PeakRSSBytes:  peakRSSBytes(),
		HeapSysBytes:  ms.HeapSys,
	}

	blobJSON, err := json.MarshalIndent([]Record{rec}, "", "  ")
	if err != nil {
		fatal(err)
	}
	blobJSON = append(blobJSON, '\n')
	if *out == "-" {
		os.Stdout.Write(blobJSON)
		return
	}
	if err := os.WriteFile(*out, blobJSON, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %.2f dB (target %g), ratio %.2f, %.1f MB/s, peak RSS %.1f MB -> %s\n",
		rec.Name, rec.MeasuredPSNR, rec.TargetPSNR, rec.Ratio, rec.EncodeMBps,
		float64(rec.PeakRSSBytes)/(1<<20), *out)
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return nil, fmt.Errorf("dims %q: want 3 dimensions", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("dims %q: bad dimension %q", s, p)
		}
		dims[i] = v
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpsz-chunkbench:", err)
	os.Exit(1)
}
