package fixedpsnr_test

import (
	"bytes"
	"context"
	"io"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"fixedpsnr"
)

// noisyField builds a deterministic field with smooth structure plus
// noise, so quantization errors spread across bins and the calibrated
// refinement has a well-behaved MSE(δ) curve.
func noisyField(name string, sigma float64, dims ...int) *fixedpsnr.Field {
	f := fixedpsnr.NewField(name, fixedpsnr.Float32, dims...)
	rng := rand.New(rand.NewSource(42))
	for i := range f.Data {
		v := math.Sin(float64(i)/53) + sigma*rng.NormFloat64()
		f.Data[i] = float64(float32(v))
	}
	return f
}

// legacyStream re-serializes a current (v3) stream in the legacy v1/v2
// layout: old header, same payloads. The payload formats never changed,
// so the result is exactly what an old writer would have produced.
func legacyStream(t *testing.T, blob []byte, version byte) []byte {
	t.Helper()
	h, err := fixedpsnr.Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	head, err := h.MarshalLegacy(version)
	if err != nil {
		t.Fatal(err)
	}
	return append(head, blob[h.PayloadOffset():]...)
}

// regionCases returns representative regions of a 3-D field: the whole
// field, one plane, an interior block spanning chunk boundaries, and a
// far corner.
func regionCases(dims []int) [][2][]int {
	return [][2][]int{
		{{0, 0, 0}, {dims[0], dims[1], dims[2]}},
		{{dims[0] / 2, 0, 0}, {1, dims[1], dims[2]}},
		{{dims[0]/4 + 1, 3, 2}, {dims[0] / 2, dims[1] / 3, dims[2] / 2}},
		{{dims[0] - 2, dims[1] - 3, dims[2] - 4}, {2, 3, 4}},
	}
}

// DecodeRegion must be byte-identical to slicing a full Decode, for both
// chunk-capable pipelines, across chunk boundaries.
func TestDecodeRegionMatchesFullDecode(t *testing.T) {
	dims := []int{64, 64, 16}
	f := noisyField("region", 0.05, dims...)
	dec := fixedpsnr.NewDecoder()
	configs := map[string]fixedpsnr.Options{
		"sz-chunkpoints":  {Mode: fixedpsnr.ModePSNR, TargetPSNR: 70, ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2},
		"sz-chunkrows":    {Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3, ChunkRows: 5, Workers: 2},
		"otc-chunkpoints": {Mode: fixedpsnr.ModePSNR, TargetPSNR: 70, Compressor: fixedpsnr.CompressorTransform, ChunkPoints: fixedpsnr.MinChunkPoints},
	}
	for name, opt := range configs {
		blob, _, err := fixedpsnr.Compress(f, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h, err := fixedpsnr.Inspect(blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Chunks) < 2 {
			t.Fatalf("%s: want a multi-chunk stream, got %d chunks", name, len(h.Chunks))
		}
		full, _, err := dec.Decode(context.Background(), blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rc := range regionCases(dims) {
			off, ext := rc[0], rc[1]
			got, _, err := dec.DecodeRegion(context.Background(), blob, off, ext)
			if err != nil {
				t.Fatalf("%s: region %v+%v: %v", name, off, ext, err)
			}
			want, err := full.Slice(off, ext)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s: region %v+%v differs from full decode at %d", name, off, ext, i)
				}
			}
		}
	}
	// Out-of-range regions are rejected.
	blob, _, err := fixedpsnr.Compress(f, configs["sz-chunkrows"])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.DecodeRegion(context.Background(), blob, []int{0, 0, 0}, []int{65, 1, 1}); err == nil {
		t.Fatal("oversized region accepted")
	}
	if _, _, err := dec.DecodeRegion(context.Background(), blob, []int{0}, []int{1}); err == nil {
		t.Fatal("rank-mismatched region accepted")
	}
}

// Streams without chunk-granular access — pointwise-relative, constant,
// and legacy single-chunk formats — must still answer region requests
// via the fallback path.
func TestDecodeRegionFallbacks(t *testing.T) {
	dims := []int{20, 24, 8}
	f := noisyField("fb", 0.02, dims...)
	for i := range f.Data {
		f.Data[i] += 2 // keep values away from zero for pwrel
	}
	dec := fixedpsnr.NewDecoder()
	off, ext := []int{3, 4, 1}, []int{5, 6, 4}

	check := func(name string, blob []byte) {
		t.Helper()
		full, _, err := fixedpsnr.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, _, err := dec.DecodeRegion(context.Background(), blob, off, ext)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := full.Slice(off, ext)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%s: region differs from full decode at %d", name, i)
			}
		}
	}

	pwrel, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModePWRel, PWRelBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	check("pwrel", pwrel)

	c := fixedpsnr.NewField("const", fixedpsnr.Float32, dims...)
	for i := range c.Data {
		c.Data[i] = 7.5
	}
	constant, _, err := fixedpsnr.Compress(c, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs})
	if err != nil {
		t.Fatal(err)
	}
	check("constant", constant)

	v3, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3, ChunkRows: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("legacy-v1", legacyStream(t, v3, 1))
	check("legacy-v2", legacyStream(t, v3, 2))
}

// Acceptance: chunked encode in calibrated mode still hits the *global*
// fixed-PSNR target — per-chunk MSEs aggregate to the field MSE the
// refinement steers on.
func TestChunkedCalibratedGlobalPSNR(t *testing.T) {
	f := noisyField("cal", 0.1, 48, 64, 64)
	for _, target := range []float64{35, 45} {
		blob, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
			Mode:        fixedpsnr.ModePSNR,
			TargetPSNR:  target,
			Calibrated:  true,
			ChunkPoints: fixedpsnr.MinChunkPoints,
		})
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		h, err := fixedpsnr.Inspect(blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Chunks) < 2 {
			t.Fatalf("target %g: want a multi-chunk stream, got %d chunks", target, len(h.Chunks))
		}
		g, _, err := fixedpsnr.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		d := fixedpsnr.CompareFields(f, g)
		if math.Abs(d.PSNR-target) > 0.5 {
			t.Fatalf("target %g: measured %.3f dB outside ±0.5", target, d.PSNR)
		}
		// The aggregate of the per-chunk MSEs is the true global MSE
		// (Theorem 1, summed over chunks).
		if agg := h.AggregateMSE(); math.Abs(agg-d.MSE) > 1e-12*math.Max(agg, d.MSE) {
			t.Fatalf("target %g: aggregated chunk MSE %g != measured %g", target, agg, d.MSE)
		}
		if math.Abs(res.MeasuredPSNR-d.PSNR) > 1e-6 {
			t.Fatalf("target %g: reported %.4f dB, measured %.4f dB", target, res.MeasuredPSNR, d.PSNR)
		}
	}
}

// Selective recompression: a chunk that reconstructs exactly (a zero
// slab — the masked/padded regions ubiquitous in scientific fields)
// keeps its payload across refinement passes, with its original bound
// pinned in its chunk entry, and still decodes exactly.
func TestSelectiveRecompressionPinsLosslessChunks(t *testing.T) {
	dims := []int{64, 32, 16}
	f := noisyField("pin", 0.2, dims...)
	inner := dims[1] * dims[2]
	for i := 0; i < 32*inner; i++ {
		f.Data[i] = 0 // rows 0..31: zeros predict exactly (chunk MSE 0)
	}
	blob, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: 35,
		Calibrated: true,
		ChunkRows:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := fixedpsnr.Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Chunks) != 2 {
		t.Fatalf("chunks = %d, want 2", len(h.Chunks))
	}
	if h.Chunks[0].MSE != 0 {
		t.Fatalf("constant chunk MSE = %g, want 0", h.Chunks[0].MSE)
	}
	_, _, vr := f.ValueRange()
	initial := fixedpsnr.RelBoundForPSNR(35) * vr
	refined := math.Abs(res.EbAbs-initial) > 1e-12*initial
	if h.Chunks[0].EbAbs != 0 {
		// Refinement kept the chunk: its entry must pin a bound that
		// differs from the header's final bound.
		if h.Chunks[0].EbAbs == h.EbAbs {
			t.Fatalf("pinned chunk bound equals header bound %g", h.EbAbs)
		}
	} else if refined {
		t.Log("refinement ran but constant chunk carries the header bound (first pass landed in band)")
	}
	// The zero slab reconstructs exactly, via region decode.
	g, _, err := fixedpsnr.NewDecoder().DecodeRegion(context.Background(), blob,
		[]int{0, 0, 0}, []int{32, dims[1], dims[2]})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data {
		if v != 0 {
			t.Fatalf("zero slab value %g at %d", v, i)
		}
	}
	// And the whole stream still meets the global target.
	full, _, err := fixedpsnr.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if d := fixedpsnr.CompareFields(f, full); math.Abs(d.PSNR-35) > 0.5 {
		t.Fatalf("measured %.3f dB outside ±0.5 of 35", d.PSNR)
	}
}

// EncodeFrom must produce byte-identical streams to Encode under the
// same chunk tiling — streaming is invisible in the output. The otc
// case pins the codec-planner path: its ChunkPoints tiling rounds to
// the transform block edge, and both encode paths must agree.
func TestEncodeFromMatchesEncode(t *testing.T) {
	// 40 rows with inner 48×16 give 22-row raw chunks, which otc rounds
	// to 24 — a tiling the generic partition would not produce.
	f := noisyField("stream", 0.05, 40, 48, 16)
	configs := map[string][]fixedpsnr.Option{
		"sz": {
			fixedpsnr.WithMode(fixedpsnr.ModePSNR),
			fixedpsnr.WithTargetPSNR(60),
			fixedpsnr.WithChunkPoints(fixedpsnr.MinChunkPoints),
			fixedpsnr.WithWorkers(2),
		},
		"otc": {
			fixedpsnr.WithMode(fixedpsnr.ModePSNR),
			fixedpsnr.WithTargetPSNR(60),
			fixedpsnr.WithCompressor(fixedpsnr.CompressorTransform),
			fixedpsnr.WithChunkPoints(fixedpsnr.MinChunkPoints),
			fixedpsnr.WithWorkers(2),
		},
	}
	for name, opts := range configs {
		enc := mustEncoder(t, opts...)
		want, wantRes, err := enc.Encode(context.Background(), f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, gotRes, err := enc.EncodeFrom(context.Background(), fixedpsnr.NewFieldReader(f))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: EncodeFrom stream differs from Encode (%d vs %d bytes)", name, len(got), len(want))
		}
		if gotRes.CompressedBytes != wantRes.CompressedBytes || gotRes.NPoints != wantRes.NPoints {
			t.Fatalf("%s: results differ: %+v vs %+v", name, gotRes, wantRes)
		}
		if name == "sz" && math.Abs(gotRes.MSE-wantRes.MSE) > 1e-15 {
			t.Fatalf("%s: MSE differs: %g vs %g", name, gotRes.MSE, wantRes.MSE)
		}
	}
}

// synthReader generates rows on the fly — the out-of-core shape: no
// backing array anywhere.
type synthReader struct {
	dims []int
	pos  int
	n    int
}

func synthValue(i int) float64 { return float64(float32(math.Sin(float64(i) / 37))) }

func (r *synthReader) Spec() (fixedpsnr.FieldSpec, error) {
	return fixedpsnr.FieldSpec{
		Name: "synth", Precision: fixedpsnr.Float64, Dims: r.dims,
		Min: -1, Max: 1, HasRange: true,
	}, nil
}

func (r *synthReader) ReadValues(dst []float64) (int, error) {
	if r.pos >= r.n {
		return 0, io.EOF
	}
	n := len(dst)
	if n > r.n-r.pos {
		n = r.n - r.pos
	}
	for i := 0; i < n; i++ {
		dst[i] = synthValue(r.pos + i)
	}
	r.pos += n
	return n, nil
}

// EncodeFrom's peak allocation must be sublinear in the field: the input
// is never materialized, and the bounded window caps live chunk buffers
// at O(chunk × workers).
func TestEncodeFromBoundedAllocation(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation measurements")
	}
	dims := []int{96, 64, 64} // 393216 points ≈ 3 MiB at float64
	n := dims[0] * dims[1] * dims[2]
	fieldBytes := uint64(n * 8)
	enc := mustEncoder(t,
		fixedpsnr.WithMode(fixedpsnr.ModeAbs),
		fixedpsnr.WithErrorBound(1e-3),
		fixedpsnr.WithChunkPoints(fixedpsnr.MinChunkPoints),
		fixedpsnr.WithCapacity(4096),
		fixedpsnr.WithWorkers(1),
	)
	// Warm the scratch pools so the measurement reflects steady state.
	if _, _, err := enc.EncodeFrom(context.Background(), &synthReader{dims: dims, n: n}); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	blob, _, err := enc.EncodeFrom(context.Background(), &synthReader{dims: dims, n: n})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc

	if allocated >= fieldBytes/2 {
		t.Fatalf("EncodeFrom allocated %d bytes for a %d-byte field; the streaming window should be far sublinear",
			allocated, fieldBytes)
	}
	// The stream is real: it decodes back to the synthetic values within
	// the bound.
	g, _, err := fixedpsnr.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 7919 {
		if math.Abs(g.Data[i]-synthValue(i)) > 1e-3+1e-12 {
			t.Fatalf("value %d off by %g", i, math.Abs(g.Data[i]-synthValue(i)))
		}
	}
}

// EncodeFrom rejects configurations that need the whole field.
func TestEncodeFromValidation(t *testing.T) {
	dims := []int{20, 24, 8}
	mk := func(opts ...fixedpsnr.Option) error {
		enc := mustEncoder(t, opts...)
		n := dims[0] * dims[1] * dims[2]
		_, _, err := enc.EncodeFrom(context.Background(), &synthReader{dims: dims, n: n})
		return err
	}
	if err := mk(fixedpsnr.WithMode(fixedpsnr.ModePWRel), fixedpsnr.WithPWRelBound(1e-3)); err == nil {
		t.Fatal("ModePWRel accepted")
	}
	if err := mk(fixedpsnr.WithMode(fixedpsnr.ModeAbs), fixedpsnr.WithErrorBound(1e-3), fixedpsnr.WithAutoCapacity(true)); err == nil {
		t.Fatal("AutoCapacity accepted")
	}
	// ModePSNR without a declared range must fail.
	enc := mustEncoder(t, fixedpsnr.WithMode(fixedpsnr.ModePSNR), fixedpsnr.WithTargetPSNR(60))
	if _, _, err := enc.EncodeFrom(context.Background(), &noRangeReader{synthReader{dims: dims, n: dims[0] * dims[1] * dims[2]}}); err == nil {
		t.Fatal("ModePSNR without range accepted")
	}
}

type noRangeReader struct{ synthReader }

func (r *noRangeReader) Spec() (fixedpsnr.FieldSpec, error) {
	s, err := r.synthReader.Spec()
	s.HasRange = false
	return s, err
}

// WithChunkPoints below the floor is rejected by validation with a clear
// error; zero stays valid.
func TestChunkPointsValidation(t *testing.T) {
	if _, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeAbs),
		fixedpsnr.WithErrorBound(1e-3),
		fixedpsnr.WithChunkPoints(fixedpsnr.MinChunkPoints-1),
	); err == nil {
		t.Fatal("ChunkPoints below MinChunkPoints accepted")
	}
	if _, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeAbs),
		fixedpsnr.WithErrorBound(1e-3),
		fixedpsnr.WithChunkPoints(-5),
	); err == nil {
		t.Fatal("negative ChunkPoints accepted")
	}
	f := fixedpsnr.NewField("v", fixedpsnr.Float32, 4, 4)
	if _, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ChunkPoints: 100}); err == nil {
		t.Fatal("one-shot path accepted bad ChunkPoints")
	}
	if _, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeAbs),
		fixedpsnr.WithErrorBound(1e-3),
		fixedpsnr.WithChunkPoints(fixedpsnr.MinChunkPoints),
	); err != nil {
		t.Fatalf("minimum ChunkPoints rejected: %v", err)
	}
}

// BenchmarkEncodeFromStreaming tracks the streaming encoder's allocation
// profile (the CI bench job records it in BENCH_pr3.json).
func BenchmarkEncodeFromStreaming(b *testing.B) {
	dims := []int{96, 64, 64}
	n := dims[0] * dims[1] * dims[2]
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(60),
		fixedpsnr.WithChunkPoints(fixedpsnr.MinChunkPoints),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.EncodeFrom(context.Background(), &synthReader{dims: dims, n: n}); err != nil {
			b.Fatal(err)
		}
	}
}
