package fixedpsnr_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"fixedpsnr"
	"fixedpsnr/internal/codec"
)

// compressSeparately compresses each field to its own stream.
func compressSeparately(t *testing.T, fields []*fixedpsnr.Field, opt fixedpsnr.Options) [][]byte {
	t.Helper()
	streams := make([][]byte, len(fields))
	for i, f := range fields {
		blob, _, err := fixedpsnr.Compress(f, opt)
		if err != nil {
			t.Fatalf("field %q: %v", f.Name, err)
		}
		streams[i] = blob
	}
	return streams
}

// buildV1Archive assembles a legacy (version 1) archive blob from streams.
func buildV1Archive(streams [][]byte) []byte {
	out := []byte{'F', 'P', 'S', 'A', 1}
	out = binary.AppendUvarint(out, uint64(len(streams)))
	for _, s := range streams {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return out
}

// TestArchiveWriterReaderRoundTrip is the streaming acceptance check: a
// round-trip through NewArchiveWriter/OpenArchive must match the
// CompressFields/DecompressArchive output field-for-field.
func TestArchiveWriterReaderRoundTrip(t *testing.T) {
	fields := archiveFields(t)
	opt := fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 60}

	blob, _, err := fixedpsnr.CompressFields(fields, opt)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := fixedpsnr.DecompressArchive(blob)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	aw, err := fixedpsnr.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	perField := opt
	perField.Workers = 1 // match CompressFields' per-field determinism
	for _, f := range fields {
		if _, err := aw.WriteField(f, perField); err != nil {
			t.Fatalf("WriteField %q: %v", f.Name, err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	ar, err := fixedpsnr.OpenArchive(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ar.Len() != len(fields) || ar.Version() != 2 {
		t.Fatalf("reader sees %d entries, version %d", ar.Len(), ar.Version())
	}
	for i, f := range fields {
		g, h, err := ar.ExtractAt(i)
		if err != nil {
			t.Fatalf("ExtractAt(%d): %v", i, err)
		}
		if g.Name != f.Name || h.Name != f.Name {
			t.Fatalf("entry %d: name %q != %q", i, g.Name, f.Name)
		}
		if !g.SameShape(batch[i]) {
			t.Fatalf("entry %d: shape mismatch vs batch path", i)
		}
		for j := range g.Data {
			if g.Data[j] != batch[i].Data[j] {
				t.Fatalf("entry %d (%q): value %d differs between streaming and batch paths", i, f.Name, j)
			}
		}
	}

	// The streamed bytes must themselves decompress through the blob API.
	streamed, err := fixedpsnr.DecompressArchive(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(fields) {
		t.Fatalf("blob API sees %d entries in streamed archive", len(streamed))
	}
}

// TestExtractFieldParsesOnlyRequestedEntry is the index acceptance check:
// extracting one field from a v2 archive must parse the tail index plus
// that entry only — the header parse count cannot scale with the number
// of uninvolved entries.
func TestExtractFieldParsesOnlyRequestedEntry(t *testing.T) {
	fields := archiveFields(t)
	if len(fields) < 4 {
		t.Fatalf("want several fields, got %d", len(fields))
	}
	blob, _, err := fixedpsnr.CompressFields(fields, fixedpsnr.Options{
		Mode: fixedpsnr.ModePSNR, TargetPSNR: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	name := fields[len(fields)-1].Name

	before := codec.HeaderParses()
	if _, _, err := fixedpsnr.ExtractField(blob, name); err != nil {
		t.Fatal(err)
	}
	parses := codec.HeaderParses() - before
	// One parse to route through the registry plus one inside the codec's
	// own Decompress. Anything proportional to len(fields) means the
	// index is being ignored.
	if parses > 2 {
		t.Fatalf("ExtractField parsed %d headers for one of %d entries", parses, len(fields))
	}
}

// TestExtractIgnoresCorruptSiblings corrupts every entry except one and
// extracts the survivor: proof that v2 extraction never reads sibling
// payloads.
func TestExtractIgnoresCorruptSiblings(t *testing.T) {
	fields := archiveFields(t)
	opt := fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3, Workers: 1}
	streams := compressSeparately(t, fields, opt)

	var buf bytes.Buffer
	aw, err := fixedpsnr.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	keep := 1 // entry index to leave intact
	offsets := make([]int64, len(streams))
	off := int64(5)
	for i, s := range streams {
		offsets[i] = off
		if err := aw.WriteStream(s); err != nil {
			t.Fatal(err)
		}
		off += int64(len(s))
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for i, s := range streams {
		if i == keep {
			continue
		}
		for j := int64(0); j < int64(len(s)); j++ {
			blob[offsets[i]+j] ^= 0xFF
		}
	}

	g, _, err := fixedpsnr.ExtractField(blob, fields[keep].Name)
	if err != nil {
		t.Fatalf("extraction of intact entry failed: %v", err)
	}
	if g.Name != fields[keep].Name {
		t.Fatalf("extracted %q", g.Name)
	}
	if _, _, err := fixedpsnr.ExtractField(blob, fields[keep+1].Name); err == nil {
		t.Fatal("extraction of corrupted entry unexpectedly succeeded")
	}
}

// TestArchiveV1ReadCompat: v1 blobs (length-prefixed, no index) written
// by the previous format stay readable through every blob API.
func TestArchiveV1ReadCompat(t *testing.T) {
	fields := archiveFields(t)
	opt := fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 60, Workers: 1}
	streams := compressSeparately(t, fields, opt)
	v1 := buildV1Archive(streams)

	out, err := fixedpsnr.DecompressArchive(v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(fields) {
		t.Fatalf("got %d fields", len(out))
	}
	for i, f := range fields {
		if out[i].Name != f.Name {
			t.Fatalf("entry %d: %q != %q", i, out[i].Name, f.Name)
		}
	}

	infos, err := fixedpsnr.ArchiveInfo(v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(fields) {
		t.Fatalf("got %d infos", len(infos))
	}

	g, _, err := fixedpsnr.ExtractField(v1, fields[2].Name)
	if err != nil {
		t.Fatal(err)
	}
	d := fixedpsnr.CompareFields(fields[2], g)
	if math.IsNaN(d.PSNR) || d.PSNR < 58 {
		t.Fatalf("v1 extract PSNR %g", d.PSNR)
	}

	ar, err := fixedpsnr.OpenArchive(bytes.NewReader(v1), int64(len(v1)))
	if err != nil {
		t.Fatal(err)
	}
	if ar.Version() != 1 || ar.Len() != len(fields) {
		t.Fatalf("v1 reader: version %d, %d entries", ar.Version(), ar.Len())
	}
}

// TestArchiveV2CorruptionTable walks the v2 index/footer corruption
// space; every mutation must produce an error, never a panic or a bogus
// success.
func TestArchiveV2CorruptionTable(t *testing.T) {
	fields := archiveFields(t)
	blob, _, err := fixedpsnr.CompressFields(fields, fixedpsnr.Options{
		Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	footerStart := len(blob) - 12

	mutate := func(m func(b []byte) []byte) []byte {
		c := append([]byte{}, blob...)
		return m(c)
	}
	cases := []struct {
		name string
		blob []byte
	}{
		{"empty", nil},
		{"too short", []byte("FPSA")},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"bad version", mutate(func(b []byte) []byte { b[4] = 9; return b })},
		{"truncated half", blob[:len(blob)/2]},
		{"missing footer magic", mutate(func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b })},
		{"index offset beyond size", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[footerStart:], uint64(len(b)))
			return b
		})},
		{"index offset before data", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[footerStart:], 0)
			return b
		})},
		{"index magic smashed", mutate(func(b []byte) []byte {
			idxOff := binary.LittleEndian.Uint64(b[footerStart:])
			b[idxOff] = 'X'
			return b
		})},
		{"index count unreasonable", mutate(func(b []byte) []byte {
			idxOff := binary.LittleEndian.Uint64(b[footerStart:])
			// Overwrite the count varint region with a huge value; the
			// remaining index bytes become garbage, which is the point.
			huge := binary.AppendUvarint(nil, 1<<30)
			copy(b[idxOff+4:], huge)
			return b
		})},
		{"index truncated", append(append([]byte{}, blob[:footerStart-3]...), blob[footerStart:]...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := fixedpsnr.DecompressArchive(tc.blob); err == nil {
				t.Fatalf("DecompressArchive accepted %s", tc.name)
			}
			if _, err := fixedpsnr.ArchiveInfo(tc.blob); err == nil {
				t.Fatalf("ArchiveInfo accepted %s", tc.name)
			}
			if _, _, err := fixedpsnr.ExtractField(tc.blob, "U"); err == nil {
				t.Fatalf("ExtractField accepted %s", tc.name)
			}
		})
	}
}

// TestArchiveV2IndexOffsetOverflow hand-builds a v2 archive whose index
// entry offset is ≥ 2^63: the open-time validation must reject it rather
// than let the signed conversion smuggle it past the range check.
func TestArchiveV2IndexOffsetOverflow(t *testing.T) {
	payload := []byte("entrybytes")
	blob := []byte{'F', 'P', 'S', 'A', 2}
	blob = append(blob, payload...)
	idxOff := uint64(len(blob))
	blob = append(blob, 'F', 'P', 'S', 'I')
	blob = binary.AppendUvarint(blob, 1)                 // count
	blob = binary.AppendUvarint(blob, 1)                 // name length
	blob = append(blob, 'x')                             // name
	blob = binary.AppendUvarint(blob, math.MaxUint64-15) // offset ≥ 2^63
	blob = binary.AppendUvarint(blob, 1)                 // length
	var footer [12]byte
	binary.LittleEndian.PutUint64(footer[:8], idxOff)
	copy(footer[8:], "FPSE")
	blob = append(blob, footer[:]...)

	if _, err := fixedpsnr.OpenArchive(bytes.NewReader(blob), int64(len(blob))); err == nil {
		t.Fatal("OpenArchive accepted an index offset ≥ 2^63")
	}
}

// failAfterWriter accepts the first n writes, then fails forever.
type failAfterWriter struct{ writes, n int }

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, fmt.Errorf("synthetic write failure")
	}
	return len(p), nil
}

// TestArchiveWriterCloseErrorIsSticky: a Close that fails to write the
// index must keep failing on repeated calls instead of reporting success.
func TestArchiveWriterCloseErrorIsSticky(t *testing.T) {
	f := fixedpsnr.NewField("s", fixedpsnr.Float64, 16)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	w := &failAfterWriter{n: 2} // preamble + one entry succeed
	aw, err := fixedpsnr.NewArchiveWriter(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aw.WriteField(f, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3}); err != nil {
		t.Fatal(err)
	}
	first := aw.Close()
	if first == nil {
		t.Fatal("Close succeeded despite index write failure")
	}
	if again := aw.Close(); again == nil || again.Error() != first.Error() {
		t.Fatalf("second Close = %v, want the original failure %v", again, first)
	}
}

// TestArchiveV1CorruptionTable covers the legacy scanner: truncated
// count, oversized entry lengths, absurd counts.
func TestArchiveV1CorruptionTable(t *testing.T) {
	f := fixedpsnr.NewField("x", fixedpsnr.Float64, 32)
	for i := range f.Data {
		f.Data[i] = float64(i % 7)
	}
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	good := buildV1Archive([][]byte{stream})

	overlapping := []byte{'F', 'P', 'S', 'A', 1}
	overlapping = binary.AppendUvarint(overlapping, 2)
	// First entry claims more bytes than remain after the second's prefix.
	overlapping = binary.AppendUvarint(overlapping, uint64(len(stream)+100))
	overlapping = append(overlapping, stream...)

	cases := []struct {
		name string
		blob []byte
	}{
		{"truncated count", []byte{'F', 'P', 'S', 'A', 1}},
		{"unreasonable count", append([]byte{'F', 'P', 'S', 'A', 1}, binary.AppendUvarint(nil, 1<<30)...)},
		{"entry length past end", overlapping},
		{"truncated entry", good[:len(good)-5]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := fixedpsnr.DecompressArchive(tc.blob); err == nil {
				t.Fatalf("DecompressArchive accepted %s", tc.name)
			}
			if _, err := fixedpsnr.ArchiveInfo(tc.blob); err == nil {
				t.Fatalf("ArchiveInfo accepted %s", tc.name)
			}
		})
	}
}

// FuzzOpenArchive shakes both archive parsers (v1 scanner and v2 index):
// arbitrary bytes must produce an error or a well-formed reader, never a
// panic.
func FuzzOpenArchive(f *testing.F) {
	fld := fixedpsnr.NewField("fz", fixedpsnr.Float64, 16)
	for i := range fld.Data {
		fld.Data[i] = float64(i)
	}
	stream, _, err := fixedpsnr.Compress(fld, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-2})
	if err != nil {
		f.Fatal(err)
	}
	v1 := buildV1Archive([][]byte{stream})
	var buf bytes.Buffer
	aw, err := fixedpsnr.NewArchiveWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	if err := aw.WriteStream(stream); err != nil {
		f.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(v1)
	f.Add(buf.Bytes())
	f.Add([]byte("FPSA"))
	f.Add([]byte{'F', 'P', 'S', 'A', 2, 0, 0, 0, 0, 0, 0, 0, 0, 'F', 'P', 'S', 'E'})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ar, err := fixedpsnr.OpenArchive(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		for i := 0; i < ar.Len(); i++ {
			ar.Info(i)      //nolint:errcheck — looking for panics only
			ar.ExtractAt(i) //nolint:errcheck
		}
	})
}

// The v2 tail index maps names to offsets, so a duplicate field name
// would silently shadow the earlier entry; the writer must reject it at
// write time instead.
func TestArchiveWriterRejectsDuplicateNames(t *testing.T) {
	f := waveField("dup", 24, 24)
	var buf bytes.Buffer
	aw, err := fixedpsnr.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opt := fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3}
	if _, err := aw.WriteField(f, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := aw.WriteField(f, opt); err == nil || !strings.Contains(err.Error(), "already has a field") {
		t.Fatalf("duplicate WriteField err = %v", err)
	}
	stream, _, err := fixedpsnr.Compress(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.WriteStream(stream); err == nil {
		t.Fatal("duplicate WriteStream accepted")
	}
	// The writer stays usable: a fresh name lands fine and the archive
	// closes with exactly the non-duplicate entries.
	g := waveField("dup2", 24, 24)
	if _, err := aw.WriteField(g, opt); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	ar, err := fixedpsnr.OpenArchive(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ar.Len() != 2 {
		t.Fatalf("archive has %d entries, want 2", ar.Len())
	}
}

// CompressFields inherits the duplicate-name rejection.
func TestCompressFieldsRejectsDuplicateNames(t *testing.T) {
	f := waveField("twin", 16, 16)
	g := waveField("twin", 16, 16)
	_, _, err := fixedpsnr.CompressFields([]*fixedpsnr.Field{f, g},
		fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3})
	if err == nil {
		t.Fatal("duplicate field names accepted")
	}
}

// An ArchiveWriter riding an Encoder session must produce the same
// archive as the one-shot WriteField path, and a cancelled context must
// leave the writer usable.
func TestArchiveWriterWriteFieldEncoder(t *testing.T) {
	fields := []*fixedpsnr.Field{waveField("A", 30, 40), waveField("B", 20, 50)}
	opt := fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 70, Workers: 1}

	var oneShot bytes.Buffer
	aw1, err := fixedpsnr.NewArchiveWriter(&oneShot)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fields {
		if _, err := aw1.WriteField(f, opt); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw1.Close(); err != nil {
		t.Fatal(err)
	}

	enc, err := fixedpsnr.NewEncoder(fixedpsnr.WithOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	var session bytes.Buffer
	aw2, err := fixedpsnr.NewArchiveWriter(&session)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := aw2.WriteFieldEncoder(cancelled, enc, fields[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled WriteFieldEncoder err = %v", err)
	}
	for _, f := range fields {
		if _, err := aw2.WriteFieldEncoder(context.Background(), enc, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oneShot.Bytes(), session.Bytes()) {
		t.Fatal("session-built archive differs from one-shot archive")
	}
}
