package fixedpsnr

import (
	"context"
	"math"
	"testing"

	"fixedpsnr/internal/parallel"
)

func TestBatchWorkers(t *testing.T) {
	cases := []struct {
		budget, nfields, want int
	}{
		{8, 1, 8}, // single-field batch gets the whole budget
		{8, 2, 4}, // even split
		{8, 3, 2}, // floor division
		{2, 5, 1}, // more fields than workers: min one each
		{16, 16, 1},
	}
	for _, c := range cases {
		if got := batchWorkers(c.budget, c.nfields); got != c.want {
			t.Errorf("batchWorkers(%d, %d) = %d, want %d", c.budget, c.nfields, got, c.want)
		}
	}
	// Non-positive budget resolves to all CPUs before the split.
	if got, want := batchWorkers(0, 1), parallel.DefaultWorkers(); got != want {
		t.Errorf("batchWorkers(0, 1) = %d, want DefaultWorkers() = %d", got, want)
	}
}

// TestEncodeBatchSingleFieldParallel pins the core-starvation fix: a
// single-field batch must encode with the session's full worker budget,
// not one worker. With no explicit chunk geometry the in-memory tiling
// is derived from the per-field worker count, so the batch stream only
// matches the plain Encode stream (same 4-worker session) if the batch
// path really ran with >1 worker — the old Workers=1 pinning produced a
// single-chunk stream here and fails the comparison.
func TestEncodeBatchSingleFieldParallel(t *testing.T) {
	f := NewField("solo", Float64, 64, 48)
	for i := range f.Data {
		f.Data[i] = math.Sin(0.05*float64(i)) + 0.2*math.Cos(0.31*float64(i%97))
	}
	enc, err := NewEncoder(
		WithMode(ModePSNR), WithTargetPSNR(70), WithWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, _, err := enc.Encode(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	streams, _, err := enc.EncodeBatch(ctx, []*Field{f})
	if err != nil {
		t.Fatal(err)
	}
	if string(streams[0]) != string(want) {
		t.Fatalf("single-field batch stream (%d bytes) differs from 4-worker Encode stream (%d bytes): batch is not using the full worker budget",
			len(streams[0]), len(want))
	}
}
