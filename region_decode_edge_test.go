package fixedpsnr_test

import (
	"bytes"
	"context"
	"testing"

	"fixedpsnr"
)

// edgeStreams builds one stream per (pipeline × container version) the
// region decoders must serve: plain v3 chunked streams from both
// pipelines and v4 grouped streams (a region target forces the group
// table), all with 16-row chunks over a 64×64×16 field so chunk
// boundaries sit at row multiples of 16.
func edgeStreams(t *testing.T, f *fixedpsnr.Field) map[string][]byte {
	t.Helper()
	streams := map[string][]byte{}
	mk := func(name string, opt fixedpsnr.Options) {
		blob, _, err := fixedpsnr.Compress(f, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		streams[name] = blob
	}
	roi := fixedpsnr.RegionTarget{
		Region:     fixedpsnr.Region{Off: []int{16, 0, 0}, Ext: []int{16, 64, 16}},
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: 75,
	}
	mk("sz_v3", fixedpsnr.Options{
		Mode: fixedpsnr.ModePSNR, TargetPSNR: 60,
		ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2,
	})
	mk("otc_v3", fixedpsnr.Options{
		Mode: fixedpsnr.ModePSNR, TargetPSNR: 60, Compressor: fixedpsnr.CompressorTransform,
		ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2,
	})
	mk("sz_v4", fixedpsnr.Options{
		Mode: fixedpsnr.ModeRatio, TargetRatio: 6,
		RegionTargets: []fixedpsnr.RegionTarget{roi},
		ChunkPoints:   fixedpsnr.MinChunkPoints, Workers: 2,
	})
	// otc cannot steer PSNR per group (no measured MSE) but still writes
	// a grouped container; the ROI rides a ratio target instead.
	mk("otc_v4", fixedpsnr.Options{
		Mode: fixedpsnr.ModePSNR, TargetPSNR: 60, Compressor: fixedpsnr.CompressorTransform,
		RegionTargets: []fixedpsnr.RegionTarget{{
			Region: roi.Region, Mode: fixedpsnr.ModeRatio, TargetRatio: 4,
		}},
		ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2,
	})
	for name, blob := range streams {
		h, err := fixedpsnr.Inspect(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantVer := 3
		if name == "sz_v4" || name == "otc_v4" {
			wantVer = 4
		}
		if h.Version != uint8(wantVer) {
			t.Fatalf("%s: stream version %d, want %d", name, h.Version, wantVer)
		}
	}
	return streams
}

// TestDecodeRegionChunkBoundaryAbutment: regions that exactly abut chunk
// boundaries — start on one, end on one, cover exactly one chunk, and
// span a boundary by one row on each side — must decode byte-identically
// to slicing a full decode, on v3 and v4 streams from both pipelines.
func TestDecodeRegionChunkBoundaryAbutment(t *testing.T) {
	f := noisyField("edge", 0.05, 64, 64, 16)
	dec := fixedpsnr.NewDecoder()
	ctx := context.Background()
	// 16-row chunks: boundaries at rows 16, 32, 48.
	cases := [][2][]int{
		{{16, 0, 0}, {16, 64, 16}},  // exactly chunk 1
		{{0, 0, 0}, {16, 64, 16}},   // exactly chunk 0 (stream start)
		{{48, 0, 0}, {16, 64, 16}},  // exactly the last chunk
		{{15, 0, 0}, {2, 64, 16}},   // one row each side of a boundary
		{{16, 0, 0}, {32, 64, 16}},  // two whole chunks
		{{31, 5, 3}, {2, 20, 9}},    // boundary-straddling interior block
		{{63, 63, 15}, {1, 1, 1}},   // single far-corner point
	}
	for name, blob := range edgeStreams(t, f) {
		full, _, err := dec.Decode(ctx, blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rc := range cases {
			off, ext := rc[0], rc[1]
			got, _, err := dec.DecodeRegion(ctx, blob, off, ext)
			if err != nil {
				t.Fatalf("%s %v+%v: %v", name, off, ext, err)
			}
			want, err := full.Slice(off, ext)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s %v+%v: differs from full decode at %d", name, off, ext, i)
				}
			}
		}
	}
}

// TestDecodeRegionZeroExtent: zero- and negative-extent regions must be
// rejected loudly by both the stream and the archive pipelines, on v3
// and v4 streams — not decoded as empty fields.
func TestDecodeRegionZeroExtent(t *testing.T) {
	f := noisyField("zero", 0.05, 64, 64, 16)
	dec := fixedpsnr.NewDecoder()
	ctx := context.Background()
	bad := [][2][]int{
		{{0, 0, 0}, {0, 64, 16}},  // zero rows
		{{0, 0, 0}, {16, 0, 16}},  // zero inner extent
		{{8, 8, 8}, {1, 1, 0}},    // zero fastest extent
		{{0, 0, 0}, {-1, 64, 16}}, // negative
	}
	for name, blob := range edgeStreams(t, f) {
		// Archive round trip: the same stream behind ExtractRegion.
		var buf bytes.Buffer
		aw, err := fixedpsnr.NewArchiveWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := aw.WriteStream(blob); err != nil {
			t.Fatal(err)
		}
		if err := aw.Close(); err != nil {
			t.Fatal(err)
		}
		ar, err := fixedpsnr.OpenArchive(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		for _, rc := range bad {
			off, ext := rc[0], rc[1]
			if _, _, err := dec.DecodeRegion(ctx, blob, off, ext); err == nil {
				t.Errorf("%s: DecodeRegion accepted extent %v", name, ext)
			}
			if _, _, err := fixedpsnr.DecompressRegion(blob, off, ext); err == nil {
				t.Errorf("%s: DecompressRegion accepted extent %v", name, ext)
			}
			if _, _, err := ar.ExtractRegion(f.Name, off, ext); err == nil {
				t.Errorf("%s: ExtractRegion accepted extent %v", name, ext)
			}
		}
	}
}

// TestExtractRegionGroupedArchive: a v4 grouped stream inside an archive
// serves chunk-granular region reads exactly like a v3 stream — the ROI
// chunks come back byte-identical to the full reconstruction.
func TestExtractRegionGroupedArchive(t *testing.T) {
	f := noisyField("argrp", 0.05, 64, 64, 16)
	blob, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode: fixedpsnr.ModeRatio, TargetRatio: 6,
		RegionTargets: []fixedpsnr.RegionTarget{{
			Region:     fixedpsnr.Region{Off: []int{16, 0, 0}, Ext: []int{16, 64, 16}},
			Mode:       fixedpsnr.ModePSNR,
			TargetPSNR: 75,
		}},
		ChunkPoints: fixedpsnr.MinChunkPoints, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	aw, err := fixedpsnr.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.WriteStream(blob); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	ar, err := fixedpsnr.OpenArchive(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := fixedpsnr.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range [][2][]int{
		{{16, 0, 0}, {16, 64, 16}}, // exactly the ROI chunk
		{{15, 0, 0}, {18, 64, 16}}, // ROI plus one row each side
		{{0, 10, 2}, {64, 4, 8}},   // column slab across all groups
	} {
		off, ext := rc[0], rc[1]
		got, h, err := ar.ExtractRegion("argrp", off, ext)
		if err != nil {
			t.Fatalf("%v+%v: %v", off, ext, err)
		}
		if len(h.Groups) != 2 {
			t.Fatalf("extracted header lost the group table: %+v", h.Groups)
		}
		want, err := full.Slice(off, ext)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%v+%v: differs at %d", off, ext, i)
			}
		}
	}
}
