package fixedpsnr_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"fixedpsnr"
)

// chunkedStream compresses a multi-chunk field and returns the stream
// plus the original.
func chunkedStream(t *testing.T) ([]byte, *fixedpsnr.Field) {
	t.Helper()
	f := noisyField("cancel", 0.05, 64, 48, 8)
	blob, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3, ChunkRows: 8, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob, f
}

// Cancelling mid-region-decode must surface ctx.Err() promptly, and the
// session's pooled scratch must stay reusable: a follow-up decode on the
// same Decoder returns the exact same bytes as a fresh one.
func TestDecodeRegionCancellationMidDecode(t *testing.T) {
	blob, _ := chunkedStream(t)
	dec := fixedpsnr.NewDecoder()
	off, ext := []int{0, 0, 0}, []int{64, 48, 8}

	// The region spans 8 chunks; the countdown trips after a few Err
	// checks, well inside the chunk loop.
	ctx := &countdownCtx{Context: context.Background(), left: 3}
	if _, _, err := dec.DecodeRegion(ctx, blob, off, ext); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DecodeRegion err = %v, want context.Canceled", err)
	}

	// Same Decoder, fresh context: byte-identical to an untouched one.
	got, _, err := dec.DecodeRegion(context.Background(), blob, off, ext)
	if err != nil {
		t.Fatalf("post-cancel DecodeRegion: %v", err)
	}
	want, _, err := fixedpsnr.NewDecoder().DecodeRegion(context.Background(), blob, off, ext)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("post-cancel decode diverges at %d: %v != %v (scratch corrupted?)", i, got.Data[i], want.Data[i])
		}
	}
}

// Archive region extraction must honor cancellation too, and leave the
// reader usable.
func TestArchiveExtractRegionCancellation(t *testing.T) {
	blob, _ := chunkedStream(t)
	var buf bytes.Buffer
	aw, err := fixedpsnr.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.WriteStream(blob); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	ar, err := fixedpsnr.OpenArchive(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()

	ctx := &countdownCtx{Context: context.Background(), left: 3}
	if _, _, err := ar.ExtractRegionAtContext(ctx, 0, []int{0, 0, 0}, []int{64, 48, 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ExtractRegionAtContext err = %v, want context.Canceled", err)
	}
	if _, _, err := ar.ExtractRegionAt(0, []int{8, 0, 0}, []int{16, 32, 4}); err != nil {
		t.Fatalf("post-cancel extraction: %v", err)
	}
}

// One ArchiveReader shared by many goroutines issuing region extractions,
// whole-field extractions, and Info lookups — the documented
// concurrent-readers guarantee, checked under -race.
func TestArchiveReaderConcurrentExtract(t *testing.T) {
	blob, orig := chunkedStream(t)
	var buf bytes.Buffer
	aw, err := fixedpsnr.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.WriteStream(blob); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	ar, err := fixedpsnr.OpenArchive(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()

	want, _, err := ar.ExtractRegionAt(0, []int{4, 8, 0}, []int{24, 16, 8})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				switch (g + iter) % 3 {
				case 0:
					got, _, err := ar.ExtractRegionAt(0, []int{4, 8, 0}, []int{24, 16, 8})
					if err != nil {
						errs <- err
						return
					}
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							errs <- errors.New("concurrent region extraction diverged")
							return
						}
					}
				case 1:
					f, _, err := ar.ExtractAt(0)
					if err != nil {
						errs <- err
						return
					}
					if len(f.Data) != len(orig.Data) {
						errs <- errors.New("concurrent full extraction wrong size")
						return
					}
				case 2:
					h, err := ar.Info(0)
					if err != nil {
						errs <- err
						return
					}
					if h.Name != orig.Name {
						errs <- errors.New("concurrent Info wrong header")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
