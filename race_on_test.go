//go:build race

package fixedpsnr_test

// raceEnabled reports that the race detector is active; allocation-bound
// assertions are skipped because instrumentation inflates every
// measurement and defeats the scratch pools.
const raceEnabled = true
