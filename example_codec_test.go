package fixedpsnr_test

// This file is a whole-file example: registering a third-party codec
// through the public fixedpsnr/codec extension point. The "store" codec
// below is deliberately trivial — it stores every value losslessly — but
// it is a complete pipeline: it registers in init(), emits the shared
// stream container, and from then on fixedpsnr.Decompress, Decoder
// sessions, archives, and the fpsz CLI can all read its streams. An
// Encoder selects it by registry name with WithCodecName.

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"fixedpsnr"
	"fixedpsnr/codec"
)

// storeID is the stream codec byte the example pipeline claims. Pick any
// value no registered codec uses; Register panics at init time on
// collisions, so a clash cannot ship silently.
const storeID codec.ID = 200

// storeCodec is a lossless "compressor": raw little-endian float64
// values behind the standard stream header.
type storeCodec struct{}

func (storeCodec) Name() string      { return "store" }
func (storeCodec) IDs() []codec.ID   { return []codec.ID{storeID} }
func (storeCodec) MeasuresMSE() bool { return false }

func (storeCodec) Compress(ctx context.Context, f *codec.Field, opt codec.Options, sc *codec.Scratch) ([]byte, *codec.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	h := codec.Header{
		Codec:      storeID,
		Precision:  f.Precision,
		Mode:       opt.Mode,
		Name:       f.Name,
		Dims:       f.Dims,
		TargetPSNR: math.NaN(),
		ValueRange: opt.ValueRange,
		Capacity:   4, // container minimum; unused by this pipeline
		Chunks: []codec.ChunkInfo{{
			Rows: f.Dims[0],
			Len:  8 * f.Len(),
			MSE:  0, // lossless
		}},
	}
	out := h.Marshal()
	for _, v := range f.Data {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	st := &codec.Stats{
		OriginalBytes:   f.SizeBytes(),
		CompressedBytes: len(out),
		NPoints:         f.Len(),
		ValueRange:      opt.ValueRange,
		MSE:             0, // lossless
	}
	st.Ratio = float64(st.OriginalBytes) / float64(len(out))
	st.BitRate = 8 * float64(len(out)) / float64(f.Len())
	return out, st, nil
}

func (storeCodec) Decompress(data []byte) (*codec.Field, *codec.Header, error) {
	h, err := codec.ParseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	out := codec.NewField(h.Name, h.Precision, h.Dims...)
	payload := data[len(data)-8*out.Len():]
	for i := range out.Data {
		out.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out, h, nil
}

func init() { codec.Register(storeCodec{}) }

// Example_customCodec compresses with the registered third-party codec
// and decompresses through the ordinary registry-routed path.
func Example_customCodec() {
	f := fixedpsnr.NewField("raw", fixedpsnr.Float64, 16, 16)
	for i := range f.Data {
		f.Data[i] = math.Sqrt(float64(i))
	}

	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeAbs),
		fixedpsnr.WithErrorBound(1e-6), // resolved by plan; ignored by "store"
		fixedpsnr.WithCodecName("store"),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	stream, _, err := enc.Encode(context.Background(), f)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// No special decode path: the header's codec byte routes to the
	// registered pipeline.
	g, info, err := fixedpsnr.Decompress(stream)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	exact := true
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			exact = false
		}
	}
	fmt.Printf("codec byte: %d\n", info.Codec)
	fmt.Printf("lossless round-trip: %v\n", exact)
	// Output:
	// codec byte: 200
	// lossless round-trip: true
}
