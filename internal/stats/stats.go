// Package stats provides the distortion metrics used throughout the
// module: mean squared error, normalized root mean squared error, peak
// signal-to-noise ratio, maximum pointwise error, and supporting moment and
// histogram utilities.
//
// Definitions follow the paper exactly:
//
//	MSE    = (1/N) Σ (x_i − x̃_i)²
//	NRMSE  = sqrt(MSE) / vr          with vr = max(X) − min(X)
//	PSNR   = −20·log10(NRMSE) = 20·log10(vr / RMSE)
//
// PSNR is reported in decibels. A lossless reconstruction has infinite
// PSNR; a constant original field (vr = 0) makes NRMSE/PSNR undefined and
// the functions return ±Inf accordingly.
package stats

import (
	"fmt"
	"math"
)

// Distortion bundles the reconstruction-quality metrics of a lossy
// compression run.
type Distortion struct {
	MSE      float64 // mean squared error
	RMSE     float64 // sqrt(MSE)
	NRMSE    float64 // RMSE / value range of the original data
	PSNR     float64 // −20 log10(NRMSE), in dB
	MaxErr   float64 // max |x_i − x̃_i|
	ValueRng float64 // vr = max − min of the original data
	N        int     // number of points compared
}

// String renders the metrics in a compact single line.
func (d Distortion) String() string {
	return fmt.Sprintf("psnr=%.4f dB mse=%.6g nrmse=%.6g maxerr=%.6g vr=%.6g n=%d",
		d.PSNR, d.MSE, d.NRMSE, d.MaxErr, d.ValueRng, d.N)
}

// Compare computes the distortion metrics between an original and a
// reconstructed slice. The two slices must have equal length; Compare
// panics otherwise (mismatched shapes are a programming error, not an
// input condition).
func Compare(orig, recon []float64) Distortion {
	if len(orig) != len(recon) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(orig), len(recon)))
	}
	var d Distortion
	d.N = len(orig)
	if d.N == 0 {
		d.PSNR = math.Inf(1)
		return d
	}
	min, max := math.Inf(1), math.Inf(-1)
	var sumSq, maxErr float64
	for i, x := range orig {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		e := x - recon[i]
		if e < 0 {
			e = -e
		}
		if e > maxErr {
			maxErr = e
		}
		sumSq += e * e
	}
	d.MSE = sumSq / float64(d.N)
	d.RMSE = math.Sqrt(d.MSE)
	d.MaxErr = maxErr
	d.ValueRng = max - min
	if d.ValueRng > 0 {
		d.NRMSE = d.RMSE / d.ValueRng
	} else if d.RMSE == 0 {
		d.NRMSE = 0
	} else {
		d.NRMSE = math.Inf(1)
	}
	d.PSNR = PSNRFromNRMSE(d.NRMSE)
	return d
}

// PSNRFromNRMSE converts a normalized RMSE into PSNR (dB). A zero NRMSE
// yields +Inf (lossless); an infinite or NaN NRMSE yields −Inf.
func PSNRFromNRMSE(nrmse float64) float64 {
	switch {
	case nrmse == 0:
		return math.Inf(1)
	case math.IsInf(nrmse, 1) || math.IsNaN(nrmse):
		return math.Inf(-1)
	default:
		return -20 * math.Log10(nrmse)
	}
}

// NRMSEFromPSNR inverts PSNRFromNRMSE.
func NRMSEFromPSNR(psnr float64) float64 {
	if math.IsInf(psnr, 1) {
		return 0
	}
	return math.Pow(10, -psnr/20)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Moments holds streaming mean/variance accumulators (Welford's method),
// which stay numerically stable across the value magnitudes seen in HPC
// fields.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// N returns the number of observations.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean.
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the population variance (division by n).
func (m *Moments) Variance() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// SampleVariance returns the unbiased sample variance (division by n−1).
func (m *Moments) SampleVariance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// SampleStdDev returns the sample standard deviation, the STDEV column of
// the paper's Table II.
func (m *Moments) SampleStdDev() float64 { return math.Sqrt(m.SampleVariance()) }

// MeanStd computes mean and sample standard deviation of xs in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	return m.Mean(), m.SampleStdDev()
}
