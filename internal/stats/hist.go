package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a uniform-bin histogram over a closed interval [Lo, Hi].
// It backs Figure 1 (the prediction-error distribution plot) and the
// general MSE estimator of Eq. 3, which needs P(m_i) — the empirical
// density evaluated at bin midpoints.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Total  int64
	// Underflow and Overflow count samples outside [Lo, Hi].
	Underflow, Overflow int64
}

// NewHistogram creates a histogram with the given bounds and bin count.
// It returns an error for degenerate bounds or a non-positive bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram bounds [%g, %g] are degenerate", lo, hi)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs a positive bin count, got %d", bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add folds one sample into the histogram.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		// The top edge belongs to the last bin so that Hi itself is
		// representable.
		if x == h.Hi {
			h.Counts[len(h.Counts)-1]++
		} else {
			h.Overflow++
		}
	default:
		w := (h.Hi - h.Lo) / float64(len(h.Counts))
		i := int((x - h.Lo) / w)
		if i >= len(h.Counts) { // guard float rounding at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// AddAll folds a slice of samples into the histogram.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// Midpoint returns the midpoint of bin i.
func (h *Histogram) Midpoint(i int) float64 {
	w := h.BinWidth()
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of all samples that landed in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Density returns the empirical probability density evaluated at the
// midpoint of bin i: fraction / bin width. This is the P(m_i) of Eq. 3.
func (h *Histogram) Density(i int) float64 {
	w := h.BinWidth()
	if w == 0 {
		return 0
	}
	return h.Fraction(i) / w
}

// InRangeFraction returns the fraction of samples that fell inside
// [Lo, Hi].
func (h *Histogram) InRangeFraction() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Total-h.Underflow-h.Overflow) / float64(h.Total)
}

// Quantile returns an empirical quantile (0 ≤ q ≤ 1) of xs. It sorts a
// copy; callers on hot paths should pre-sort. An empty input returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
