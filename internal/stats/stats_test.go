package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

func TestCompareLossless(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	d := Compare(x, x)
	if d.MSE != 0 || d.MaxErr != 0 {
		t.Fatalf("lossless comparison has nonzero error: %+v", d)
	}
	if !math.IsInf(d.PSNR, 1) {
		t.Fatalf("lossless PSNR = %g, want +Inf", d.PSNR)
	}
}

func TestCompareKnownValues(t *testing.T) {
	orig := []float64{0, 10}  // vr = 10
	recon := []float64{1, 10} // errors: 1, 0
	d := Compare(orig, recon)
	if !almostEqual(d.MSE, 0.5, 1e-12) {
		t.Fatalf("MSE = %g, want 0.5", d.MSE)
	}
	if !almostEqual(d.MaxErr, 1, 1e-12) {
		t.Fatalf("MaxErr = %g, want 1", d.MaxErr)
	}
	wantNRMSE := math.Sqrt(0.5) / 10
	if !almostEqual(d.NRMSE, wantNRMSE, 1e-12) {
		t.Fatalf("NRMSE = %g, want %g", d.NRMSE, wantNRMSE)
	}
	wantPSNR := -20 * math.Log10(wantNRMSE)
	if !almostEqual(d.PSNR, wantPSNR, 1e-9) {
		t.Fatalf("PSNR = %g, want %g", d.PSNR, wantPSNR)
	}
}

func TestComparePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Compare([]float64{1}, []float64{1, 2})
}

func TestCompareEmpty(t *testing.T) {
	d := Compare(nil, nil)
	if !math.IsInf(d.PSNR, 1) {
		t.Fatalf("empty comparison PSNR = %g, want +Inf", d.PSNR)
	}
}

func TestCompareConstantOriginal(t *testing.T) {
	orig := []float64{5, 5, 5}
	recon := []float64{5, 5, 6}
	d := Compare(orig, recon)
	if !math.IsInf(d.NRMSE, 1) {
		t.Fatalf("NRMSE = %g, want +Inf for constant original with loss", d.NRMSE)
	}
	if !math.IsInf(d.PSNR, -1) {
		t.Fatalf("PSNR = %g, want -Inf", d.PSNR)
	}
}

func TestPSNRNRMSERoundTrip(t *testing.T) {
	if err := quick.Check(func(raw float64) bool {
		nrmse := math.Abs(raw)
		if nrmse == 0 || math.IsInf(nrmse, 0) || math.IsNaN(nrmse) || nrmse > 1e8 {
			return true
		}
		back := NRMSEFromPSNR(PSNRFromNRMSE(nrmse))
		return almostEqual(back, nrmse, 1e-9*nrmse)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPSNRSpecialCases(t *testing.T) {
	if !math.IsInf(PSNRFromNRMSE(0), 1) {
		t.Fatal("PSNR of 0 NRMSE should be +Inf")
	}
	if !math.IsInf(PSNRFromNRMSE(math.Inf(1)), -1) {
		t.Fatal("PSNR of +Inf NRMSE should be -Inf")
	}
	if NRMSEFromPSNR(math.Inf(1)) != 0 {
		t.Fatal("NRMSE of +Inf PSNR should be 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("Mean = %g, want 2", got)
	}
}

func TestMomentsAgainstDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	if !almostEqual(m.Mean(), mean, 1e-12) {
		t.Fatalf("Mean = %g, want %g", m.Mean(), mean)
	}
	if !almostEqual(m.Variance(), ss/10, 1e-12) {
		t.Fatalf("Variance = %g, want %g", m.Variance(), ss/10)
	}
	if !almostEqual(m.SampleVariance(), ss/9, 1e-12) {
		t.Fatalf("SampleVariance = %g, want %g", m.SampleVariance(), ss/9)
	}
	if m.N() != 10 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestMomentsDegenerate(t *testing.T) {
	var m Moments
	if m.Variance() != 0 || m.SampleVariance() != 0 {
		t.Fatal("empty moments should have zero variance")
	}
	m.Add(5)
	if m.SampleVariance() != 0 {
		t.Fatal("single observation sample variance should be 0")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(mean, 5, 1e-12) {
		t.Fatalf("mean = %g, want 5", mean)
	}
	// Sample std of this classic set is sqrt(32/7).
	if !almostEqual(std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("std = %g, want %g", std, math.Sqrt(32.0/7.0))
	}
}

func TestMomentsMatchMeanStdProperty(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsInf(x, 0) && !math.IsNaN(x) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		mean, std := MeanStd(clean)
		m := Mean(clean)
		var ss float64
		for _, x := range clean {
			ss += (x - m) * (x - m)
		}
		want := math.Sqrt(ss / float64(len(clean)-1))
		return almostEqual(mean, m, 1e-6) && almostEqual(std, want, 1e-6*(1+want))
	}, nil); err != nil {
		t.Fatal(err)
	}
}
