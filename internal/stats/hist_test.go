package stats

import (
	"math"
	"testing"
)

func TestHistogramRejectsBadArgs(t *testing.T) {
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Fatal("expected error for degenerate bounds")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 1.9, 2, 5.5, 9.99, 10, -1, 11})
	// bins: [0,2) [2,4) [4,6) [6,8) [8,10]; 10 lands in the last bin.
	want := []int64{2, 1, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d count = %d, want %d (counts=%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under/over = %d/%d, want 1/1", h.Underflow, h.Overflow)
	}
	if h.Total != 8 {
		t.Fatalf("Total = %d, want 8", h.Total)
	}
	if got := h.InRangeFraction(); !almostEqual(got, 6.0/8.0, 1e-12) {
		t.Fatalf("InRangeFraction = %g", got)
	}
}

func TestHistogramMidpointAndDensity(t *testing.T) {
	h, _ := NewHistogram(-1, 1, 4)
	if !almostEqual(h.BinWidth(), 0.5, 1e-12) {
		t.Fatalf("BinWidth = %g", h.BinWidth())
	}
	if !almostEqual(h.Midpoint(0), -0.75, 1e-12) {
		t.Fatalf("Midpoint(0) = %g", h.Midpoint(0))
	}
	h.AddAll([]float64{-0.9, -0.8, 0.1})
	if !almostEqual(h.Fraction(0), 2.0/3.0, 1e-12) {
		t.Fatalf("Fraction(0) = %g", h.Fraction(0))
	}
	// Density integrates to 1 over in-range samples.
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * h.BinWidth()
	}
	if !almostEqual(integral, 1, 1e-12) {
		t.Fatalf("density integral = %g, want 1", integral)
	}
}

func TestHistogramEmptyDensity(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	if h.Density(0) != 0 || h.Fraction(0) != 0 || h.InRangeFraction() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("quantile of empty should be 0")
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.25); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("interpolated quantile = %g, want 2.5", got)
	}
}

func TestHistogramTopEdge(t *testing.T) {
	h, _ := NewHistogram(0, 1, 10)
	h.Add(1.0) // exactly the top edge
	if h.Counts[9] != 1 || h.Overflow != 0 {
		t.Fatalf("top edge misbinned: counts=%v overflow=%d", h.Counts, h.Overflow)
	}
	h.Add(math.Nextafter(1, 2))
	if h.Overflow != 1 {
		t.Fatal("value just above the top edge should overflow")
	}
}
