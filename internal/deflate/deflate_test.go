package deflate

import (
	"bytes"
	"compress/flate"
	"io"
	"math"
	"math/rand"
	"testing"
)

// inflate decompresses a DEFLATE stream with the stock stdlib reader —
// the reference every emitted stream must satisfy.
func inflate(t testing.TB, stream []byte) []byte {
	t.Helper()
	fr := flate.NewReader(bytes.NewReader(stream))
	out, err := io.ReadAll(fr)
	if err != nil {
		t.Fatalf("compress/flate failed to inflate emitted stream: %v", err)
	}
	if err := fr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return out
}

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	e := NewEncoder()
	stream := e.AppendEncode(nil, src)
	got := inflate(t, stream)
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d bytes out", len(src), len(got))
	}
}

// testInputs covers every block-type decision path: empty, tiny,
// incompressible (stored), skewed (dynamic literal-only), repetitive
// (LZ matches), single-symbol, and multi-block inputs.
func testInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 200000) // > 3 blocks of incompressible data
	rng.Read(random)

	skewed := make([]byte, 100000)
	for i := range skewed {
		skewed[i] = byte(rng.ExpFloat64() * 8)
	}

	repetitive := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 3000)

	floats := make([]byte, 0, 160000)
	for i := 0; i < 40000; i++ {
		v := math.Float32bits(float32(math.Sin(float64(i) / 97)))
		floats = append(floats, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}

	mixed := append(append(append([]byte{}, random[:70000]...), repetitive[:70000]...), skewed[:70000]...)

	return map[string][]byte{
		"empty":         nil,
		"one_byte":      {0x42},
		"tiny":          []byte("abc"),
		"single_symbol": bytes.Repeat([]byte{7}, 70000),
		"two_symbols":   bytes.Repeat([]byte{0, 255}, 40000),
		"random":        random,
		"skewed":        skewed,
		"repetitive":    repetitive,
		"float_bytes":   floats,
		"mixed":         mixed,
		"block_edge_lo": random[:65535],
		"block_edge_hi": random[:65536],
		"all_zero":      make([]byte, 130000),
	}
}

func TestRoundTrip(t *testing.T) {
	for name, src := range testInputs() {
		t.Run(name, func(t *testing.T) { roundTrip(t, src) })
	}
}

// TestEncoderReuse checks that one Encoder produces independent,
// correct streams across reuse, including after inputs that exercise
// the LZ hash table.
func TestEncoderReuse(t *testing.T) {
	e := NewEncoder()
	inputs := testInputs()
	for round := 0; round < 3; round++ {
		for name, src := range inputs {
			stream := e.AppendEncode(nil, src)
			if got := inflate(t, stream); !bytes.Equal(got, src) {
				t.Fatalf("round %d %s: mismatch after reuse", round, name)
			}
		}
	}
}

// TestAppendToPrefix checks that AppendEncode appends after existing
// dst content instead of clobbering it.
func TestAppendToPrefix(t *testing.T) {
	prefix := []byte("header-bytes")
	e := NewEncoder()
	src := []byte("some payload worth compressing, some payload worth compressing")
	out := e.AppendEncode(append([]byte{}, prefix...), src)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("prefix clobbered")
	}
	if got := inflate(t, out[len(prefix):]); !bytes.Equal(got, src) {
		t.Fatalf("stream after prefix does not round-trip")
	}
}

// TestSizeVsStdlib pins the compressed-size contract: on inputs shaped
// like fpsz chunk payloads (near-incompressible entropy-coded bytes
// plus structured float sections) the purpose-built encoder stays
// within 2% of compress/flate BestSpeed.
func TestSizeVsStdlib(t *testing.T) {
	e := NewEncoder()
	for name, src := range testInputs() {
		if len(src) < 1024 {
			continue // framing noise dominates tiny inputs
		}
		ours := len(e.AppendEncode(nil, src))
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(src)
		fw.Close()
		std := buf.Len()
		ratio := float64(ours) / float64(std)
		t.Logf("%-14s ours %8d  stdlib %8d  ratio %.4f", name, ours, std, ratio)
		if ratio > 1.02 {
			t.Errorf("%s: %d bytes vs stdlib %d (%.2f%% larger, budget 2%%)",
				name, ours, std, 100*(ratio-1))
		}
	}
}

// TestAllocs pins the zero-steady-state-allocation contract of a warm
// Encoder.
func TestAllocs(t *testing.T) {
	e := NewEncoder()
	inputs := testInputs()
	dst := make([]byte, 0, 1<<20)
	for _, src := range inputs {
		e.AppendEncode(dst[:0], src) // warm token/sort buffers
	}
	for name, src := range inputs {
		src := src
		allocs := testing.AllocsPerRun(5, func() {
			out := e.AppendEncode(dst[:0], src)
			if cap(out) > cap(dst) {
				dst = out[:0]
			}
		})
		if allocs > 0 {
			t.Errorf("%s: %v allocs per warm encode, want 0", name, allocs)
		}
	}
}

// FuzzDeflateVsStdlib is the differential fuzzer of the CI fuzz-smoke
// job: every stream the purpose-built encoder emits must inflate
// byte-identically with stock compress/flate.
func FuzzDeflateVsStdlib(f *testing.F) {
	for _, src := range testInputs() {
		if len(src) > 1<<17 {
			src = src[:1<<17]
		}
		f.Add(src)
	}
	e := NewEncoder()
	f.Fuzz(func(t *testing.T, src []byte) {
		stream := e.AppendEncode(nil, src)
		fr := flate.NewReader(bytes.NewReader(stream))
		got, err := io.ReadAll(fr)
		if err != nil {
			t.Fatalf("stdlib inflate rejected emitted stream: %v", err)
		}
		if err := fr.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("inflate(%d bytes) != src(%d bytes)", len(got), len(src))
		}
	})
}

func benchEncode(b *testing.B, src []byte) {
	e := NewEncoder()
	dst := e.AppendEncode(nil, src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = e.AppendEncode(dst[:0], src)
	}
}

func benchStdlib(b *testing.B, src []byte) {
	var buf bytes.Buffer
	fw, _ := flate.NewWriter(&buf, flate.BestSpeed)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		fw.Reset(&buf)
		fw.Write(src)
		fw.Close()
	}
}

func BenchmarkEncodeRandom(b *testing.B)     { benchEncode(b, testInputs()["random"]) }
func BenchmarkEncodeFloatBytes(b *testing.B) { benchEncode(b, testInputs()["float_bytes"]) }
func BenchmarkEncodeSkewed(b *testing.B)     { benchEncode(b, testInputs()["skewed"]) }
func BenchmarkEncodeRepetitive(b *testing.B) { benchEncode(b, testInputs()["repetitive"]) }
func BenchmarkStdlibRandom(b *testing.B)     { benchStdlib(b, testInputs()["random"]) }
func BenchmarkStdlibFloatBytes(b *testing.B) { benchStdlib(b, testInputs()["float_bytes"]) }
func BenchmarkStdlibSkewed(b *testing.B)     { benchStdlib(b, testInputs()["skewed"]) }
func BenchmarkStdlibRepetitive(b *testing.B) { benchStdlib(b, testInputs()["repetitive"]) }
