// Package deflate implements a one-pass, throughput-oriented DEFLATE
// (RFC 1951) encoder specialized for the fpsz chunk payloads: data that
// is mostly already entropy-coded (the Huffman-packed quantization
// codes) followed by short stretches of structured bytes (uvarint
// counts, literal floats). A general-purpose encoder such as
// compress/flate spends most of its time on LZ77 match search that can
// never pay off on the near-incompressible section, so this encoder
// inverts the default: every block first takes a cheap byte histogram,
// and the match search only runs when the histogram says the block has
// enough structure for matches to plausibly exist. Each block is then
// emitted as whichever of stored / fixed-Huffman / dynamic-Huffman is
// smallest by exact bit count.
//
// The output is a conformant DEFLATE stream: anything this package
// emits inflates byte-identically with compress/flate (enforced by the
// differential fuzzer FuzzDeflateVsStdlib), so it can replace the
// stdlib writer behind any container format without a format change.
//
// The encoder only ever appends to the destination slice and keeps all
// construction state (histograms, code tables, token buffers, the LZ
// hash table) inside the Encoder value, so a pooled Encoder encodes
// with zero steady-state heap allocations.
package deflate

import (
	"encoding/binary"
	"math"
	"math/bits"

	"fixedpsnr/internal/bitstream"
)

const (
	// maxBlock is the block granularity: the stored-block LEN field
	// limit, so any block can fall back to stored.
	maxBlock = 65535
	// minMatch is the shortest match emitted. DEFLATE allows 3; this
	// encoder requires 4 so the hash probe can work on 4-byte loads and
	// marginal matches don't bloat the distance-code table.
	minMatch = 4
	// maxMatch and maxDist are the DEFLATE limits.
	maxMatch = 258
	maxDist  = 32768
	// hashBits sizes the single-probe LZ hash table.
	hashBits = 14
	// lzEntropyGate is the decision threshold in bits per byte: blocks
	// whose byte histogram entropy is at or above it skip the LZ77
	// match search entirely (near-uniform bytes are near-random, where
	// a 4-byte match is a ~2^-32 accident), and go straight to the
	// literal-only stored/fixed/dynamic choice.
	lzEntropyGate = 7.0
)

// token is one LZ77 output item: values < 256 are literal bytes;
// matches pack 1<<24 | (length-minMatch)<<16 | (distance-1).
type token = uint32

// Encoder holds the reusable state of the purpose-built DEFLATE
// encoder. The zero value is ready to use; an Encoder is not safe for
// concurrent use (pool instances, one per in-flight chunk).
type Encoder struct {
	w bitstream.LSBWriter

	litFreq  [numLitLen]uint32
	byteFreq [numLitLen]uint32
	distFreq [numDist]uint32
	clFreq   [numCL]uint32

	litLen   [numLitLen]uint8
	litCode  [numLitLen]uint16
	distLen  [numDist]uint8
	distCode [numDist]uint16
	clLen    [numCL]uint8
	clCode   [numCL]uint16

	allLens  [numLitLen + numDist]uint8
	clTokens []clToken
	tokens   []token
	sortBuf  []uint32

	// Dynamic-header geometry prepared by buildCLHeader for
	// emitDynHeader.
	nLit, nDist, nCL int

	table [1 << hashBits]int32
	// tableCleared tracks whether table has been wiped for the current
	// AppendEncode call (positions are absolute per call, so entries
	// from a previous stream must not leak in; blocks of the same call
	// share the table so matches cross block boundaries).
	tableCleared bool
}

// NewEncoder returns a ready Encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// AppendEncode compresses src into a complete DEFLATE stream (final
// block marked) appended to dst, and returns the extended slice. The
// Encoder may be reused immediately; successive streams are
// independent.
func (e *Encoder) AppendEncode(dst, src []byte) []byte {
	e.w.ResetTo(dst)
	e.tableCleared = false
	if len(src) == 0 {
		e.emitStoredHeader(true, 0)
		return e.w.Bytes()
	}
	for base := 0; base < len(src); base += maxBlock {
		end := base + maxBlock
		if end > len(src) {
			end = len(src)
		}
		e.encodeBlock(src, base, end, end == len(src))
	}
	return e.w.Bytes()
}

// encodeBlock histograms one block, decides whether LZ77 can pay, and
// emits the block in its cheapest representation.
func (e *Encoder) encodeBlock(src []byte, base, end int, final bool) {
	block := src[base:end]
	histogramBytes(block, &e.litFreq)
	e.litFreq[endOfBlock] = 1

	if byteEntropy(&e.litFreq, len(block)) >= lzEntropyGate || len(block) < 64 {
		// Near-incompressible (or trivial) block: no matches, choose
		// among stored / fixed / dynamic literal-only coding.
		for i := range e.distFreq {
			e.distFreq[i] = 0
		}
		e.tokens = e.tokens[:0]
		e.chooseAndEmit(block, nil, final)
		return
	}

	// Structured block: bounded greedy LZ77 (single hash probe per
	// position), then the same exact-cost three-way choice.
	e.byteFreq = e.litFreq // lz77 rebuilds litFreq from the token stream
	e.lz77(src, base, end)

	// On semi-random data the greedy matcher finds mostly spurious short
	// matches whose distance codes cost more than the literals they
	// replace. Compare the coded size of the token stream against plain
	// literal coding and keep whichever is smaller (header sizes favor
	// the literal side, so this comparison is conservative).
	litOnlyBits := buildLens(e.byteFreq[:], maxBits, e.litLen[:], &e.sortBuf)
	tokenBits := buildLens(e.litFreq[:], maxBits, e.litLen[:], &e.sortBuf) +
		buildLens(e.distFreq[:], maxBits, e.distLen[:], &e.sortBuf) +
		extraBitsTotal(e.tokens)
	if litOnlyBits < tokenBits {
		e.litFreq = e.byteFreq
		for i := range e.distFreq {
			e.distFreq[i] = 0
		}
		e.chooseAndEmit(block, nil, final)
		return
	}
	e.chooseAndEmit(block, e.tokens, final)
}

// chooseAndEmit computes exact bit costs for the three block types over
// the current histograms and emits the cheapest. tokens == nil means
// literal-only emission straight from block (no token buffer was
// built).
func (e *Encoder) chooseAndEmit(block []byte, tokens []token, final bool) {
	// A dynamic header must declare at least one distance code even if
	// the block has no matches; give symbol 0 a 1-bit code.
	distBits := buildLens(e.distFreq[:], maxBits, e.distLen[:], &e.sortBuf)
	if e.distLen[0] == 0 && countUsed(e.distLen[:]) == 0 {
		e.distLen[0] = 1
	}
	litBits := buildLens(e.litFreq[:], maxBits, e.litLen[:], &e.sortBuf)
	headerBits := e.buildCLHeader()

	extra := extraBitsTotal(tokens)
	dynCost := 3 + headerBits + litBits + distBits + extra
	fixedCost := e.fixedCost() + extra
	storedCost := uint64(3+16+16) + 8*uint64(len(block)) + 7 // worst-case alignment

	if storedCost <= dynCost && storedCost <= fixedCost {
		e.emitStoredHeader(final, len(block))
		e.w.WriteBytes(block)
		return
	}
	if fixedCost <= dynCost {
		e.w.WriteBits(b2u(final)|0b01<<1, 3)
		e.emitData(block, tokens, &fixedLitCode, &fixedLitLen, &fixedDistCode, &fixedDistLen)
		return
	}
	canonicalCodes(e.litLen[:], e.litCode[:])
	canonicalCodes(e.distLen[:], e.distCode[:])
	e.w.WriteBits(b2u(final)|0b10<<1, 3)
	e.emitDynHeader()
	e.emitData(block, tokens, &e.litCode, &e.litLen, &e.distCode, &e.distLen)
}

// emitStoredHeader writes a stored-block header: 3 header bits, byte
// alignment, LEN and NLEN.
func (e *Encoder) emitStoredHeader(final bool, n int) {
	e.w.WriteBits(b2u(final), 3) // BTYPE=00
	e.w.AlignByte()
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(n))
	binary.LittleEndian.PutUint16(hdr[2:], ^uint16(n))
	e.w.WriteBytes(hdr[:])
}

// emitData replays the block through the given code tables: the token
// stream when one was built, otherwise every byte as a literal. Ends
// with the end-of-block code.
func (e *Encoder) emitData(block []byte, tokens []token, litCode *[numLitLen]uint16, litLen *[numLitLen]uint8, distCode *[numDist]uint16, distLen *[numDist]uint8) {
	w := &e.w
	if tokens == nil {
		// Literal-only blocks are the overwhelmingly common case for
		// fpsz payloads; emit two bytes per WriteBits call (codes are
		// ≤ 15 bits each, so a pair always fits one staged write).
		i := 0
		for ; i+2 <= len(block); i += 2 {
			b0, b1 := block[i], block[i+1]
			l0 := uint(litLen[b0])
			w.WriteBits(uint64(litCode[b1])<<l0|uint64(litCode[b0]), l0+uint(litLen[b1]))
		}
		if i < len(block) {
			b := block[i]
			w.WriteBits(uint64(litCode[b]), uint(litLen[b]))
		}
	} else {
		for _, t := range tokens {
			if t < 256 {
				w.WriteBits(uint64(litCode[t]), uint(litLen[t]))
				continue
			}
			length := int(t>>16&0xff) + minMatch
			dist := int(t&0xffff) + 1
			lc := lengthCode(length)
			sym := 257 + int(lc)
			w.WriteBits(uint64(litCode[sym]), uint(litLen[sym]))
			if eb := lenExtra[lc]; eb > 0 {
				w.WriteBits(uint64(length)-uint64(lenBase[lc]), uint(eb))
			}
			dc := distanceCode(dist)
			w.WriteBits(uint64(distCode[dc]), uint(distLen[dc]))
			if eb := distExtra[dc]; eb > 0 {
				w.WriteBits(uint64(dist)-uint64(distBase[dc]), uint(eb))
			}
		}
	}
	w.WriteBits(uint64(litCode[endOfBlock]), uint(litLen[endOfBlock]))
}

// buildCLHeader RLE-encodes the current litLen/distLen tables, builds
// the code-length code over them, and returns the exact bit size of the
// dynamic header it will emit (HLIT/HDIST/HCLEN fields, CL code
// lengths, and the RLE token stream).
func (e *Encoder) buildCLHeader() uint64 {
	nLit := numLitLen
	for nLit > 257 && e.litLen[nLit-1] == 0 {
		nLit--
	}
	nDist := numDist
	for nDist > 1 && e.distLen[nDist-1] == 0 {
		nDist--
	}
	all := e.allLens[:0]
	all = append(all, e.litLen[:nLit]...)
	all = append(all, e.distLen[:nDist]...)
	for i := range e.clFreq {
		e.clFreq[i] = 0
	}
	e.clTokens = clEncode(all, e.clTokens[:0], &e.clFreq)
	clBits := buildLens(e.clFreq[:], maxCLBits, e.clLen[:], &e.sortBuf)
	canonicalCodes(e.clLen[:], e.clCode[:])

	nCL := numCL
	for nCL > 4 && e.clLen[clOrder[nCL-1]] == 0 {
		nCL--
	}
	e.nLit, e.nDist, e.nCL = nLit, nDist, nCL

	total := uint64(5+5+4) + 3*uint64(nCL) + clBits
	for _, t := range e.clTokens {
		total += uint64(clExtraBits(t.sym))
	}
	return total
}

// emitDynHeader writes the dynamic-block header prepared by
// buildCLHeader.
func (e *Encoder) emitDynHeader() {
	w := &e.w
	w.WriteBits(uint64(e.nLit-257), 5)
	w.WriteBits(uint64(e.nDist-1), 5)
	w.WriteBits(uint64(e.nCL-4), 4)
	for i := 0; i < e.nCL; i++ {
		w.WriteBits(uint64(e.clLen[clOrder[i]]), 3)
	}
	for _, t := range e.clTokens {
		w.WriteBits(uint64(e.clCode[t.sym]), uint(e.clLen[t.sym]))
		if eb := clExtraBits(t.sym); eb > 0 {
			w.WriteBits(uint64(t.extra), eb)
		}
	}
}

// fixedCost is the exact bit count of the block under the fixed code
// including the 3 header bits (length/distance extra bits excluded —
// the caller adds them).
func (e *Encoder) fixedCost() uint64 {
	total := uint64(3)
	for i, f := range e.litFreq {
		if f != 0 {
			total += uint64(f) * uint64(fixedLitLen[i])
		}
	}
	for i, f := range e.distFreq {
		if f != 0 {
			total += uint64(f) * uint64(fixedDistLen[i])
		}
	}
	return total
}

// lz77 runs the bounded greedy match search over src[base:end], filling
// e.tokens and the litFreq/distFreq histograms with the token
// distribution (litFreq was a plain byte histogram on entry and is
// rebuilt). Hash-table entries hold absolute positions in src, so
// matches reach back across block boundaries into the full 32 KB
// DEFLATE window. A single hash probe per position, matches extended
// eight bytes at a time, a same-distance continuation check after each
// match (which turns runs into chains of cheap repeated-distance
// matches), and a skip ramp on long literal stretches keep the per-byte
// cost low when matches are sparse.
func (e *Encoder) lz77(src []byte, base, end int) {
	for i := range e.litFreq {
		e.litFreq[i] = 0
	}
	for i := range e.distFreq {
		e.distFreq[i] = 0
	}
	if !e.tableCleared {
		for i := range e.table {
			e.table[i] = 0
		}
		e.tableCleared = true
	}
	e.litFreq[endOfBlock] = 1
	tokens := e.tokens[:0]
	emitLits := func(lo, hi int) {
		for _, b := range src[lo:hi] {
			e.litFreq[b]++
			tokens = append(tokens, token(b))
		}
	}
	emitMatch := func(l, dist int) {
		tokens = append(tokens, 1<<24|token(l-minMatch)<<16|token(dist-1))
		e.litFreq[257+int(lengthCode(l))]++
		e.distFreq[distanceCode(dist)]++
	}
	i, lastLit := base, base
	for i+minMatch <= end {
		h := hash4(binary.LittleEndian.Uint32(src[i:]))
		cand := int(e.table[h]) - 1
		e.table[h] = int32(i + 1)
		if cand >= 0 && i-cand <= maxDist && cand < i &&
			binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[i:]) {
			dist := i - cand
			// The shifted compare handles overlapping matches (dist <
			// length) exactly like an LZ77 decoder's byte-by-byte copy.
			// Capping the window up front keeps long runs O(1) per match
			// instead of scanning to the end of the block.
			limit := end - i
			if limit > maxMatch {
				limit = maxMatch
			}
			l := minMatch + matchLen(src[cand+minMatch:], src[i+minMatch:i+limit])
			// Marginal matches lose: a far distance code plus extra bits
			// costs more than the handful of literals it replaces
			// (zlib's too_far rule, shifted for the 4-byte minimum).
			if l == minMatch && dist > 4096 {
				i++
				continue
			}
			emitLits(lastLit, i)
			emitMatch(l, dist)
			if i+1+minMatch <= end {
				e.table[hash4(binary.LittleEndian.Uint32(src[i+1:]))] = int32(i + 2)
			}
			i += l
			// Same-distance continuation: runs and repeated records
			// chain here with no hashing at all.
			for i+minMatch <= end &&
				binary.LittleEndian.Uint32(src[i-dist:]) == binary.LittleEndian.Uint32(src[i:]) {
				limit = end - i
				if limit > maxMatch {
					limit = maxMatch
				}
				l = minMatch + matchLen(src[i-dist+minMatch:], src[i+minMatch:i+limit])
				emitMatch(l, dist)
				i += l
			}
			lastLit = i
			continue
		}
		// Miss: accelerate through literal stretches — the farther since
		// the last match, the bigger the stride.
		i += 1 + (i-lastLit)>>8
	}
	emitLits(lastLit, end)
	e.tokens = tokens
}

// matchLen returns the length of the common prefix of a and b, capped
// only by their lengths (the caller caps at maxMatch).
func matchLen(a, b []byte) int {
	n := 0
	for len(a) >= 8 && len(b) >= 8 {
		if x := binary.LittleEndian.Uint64(a) ^ binary.LittleEndian.Uint64(b); x != 0 {
			return n + bits.TrailingZeros64(x)>>3
		}
		a, b = a[8:], b[8:]
		n += 8
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			break
		}
		n++
	}
	return n
}

func hash4(v uint32) uint32 {
	return v * 0x9E3779B1 >> (32 - hashBits)
}

// histogramBytes counts byte frequencies with four sub-histograms to
// break the store-to-load dependency on repeated bytes, then merges.
func histogramBytes(p []byte, freq *[numLitLen]uint32) {
	var h0, h1, h2, h3 [256]uint32
	i := 0
	for ; i+4 <= len(p); i += 4 {
		h0[p[i]]++
		h1[p[i+1]]++
		h2[p[i+2]]++
		h3[p[i+3]]++
	}
	for ; i < len(p); i++ {
		h0[p[i]]++
	}
	for b := 0; b < 256; b++ {
		freq[b] = h0[b] + h1[b] + h2[b] + h3[b]
	}
	for b := 256; b < numLitLen; b++ {
		freq[b] = 0
	}
}

// byteEntropy returns the Shannon entropy of the byte histogram in bits
// per byte (the EOB slot is ignored).
func byteEntropy(freq *[numLitLen]uint32, n int) float64 {
	if n == 0 {
		return 0
	}
	inv := 1 / float64(n)
	h := 0.0
	for _, f := range freq[:256] {
		if f != 0 {
			p := float64(f) * inv
			h -= p * math.Log2(p)
		}
	}
	return h
}

// extraBitsTotal sums the length/distance extra bits of the token
// stream (identical under fixed and dynamic coding).
func extraBitsTotal(tokens []token) uint64 {
	total := uint64(0)
	for _, t := range tokens {
		if t < 256 {
			continue
		}
		length := int(t>>16&0xff) + minMatch
		dist := int(t&0xffff) + 1
		total += uint64(lenExtra[lengthCode(length)]) + uint64(distExtra[distanceCode(dist)])
	}
	return total
}

func countUsed(lens []uint8) int {
	n := 0
	for _, l := range lens {
		if l != 0 {
			n++
		}
	}
	return n
}

func b2u(final bool) uint64 {
	if final {
		return 1
	}
	return 0
}
