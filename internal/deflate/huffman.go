package deflate

import (
	"math/bits"
	"slices"
)

// Alphabet sizes fixed by RFC 1951.
const (
	numLitLen  = 286 // literal/length alphabet: 0-255 literals, 256 EOB, 257-285 lengths
	numDist    = 30  // distance alphabet
	numCL      = 19  // code-length (tree-header) alphabet
	maxBits    = 15  // longest literal/length or distance code
	maxCLBits  = 7   // longest code-length code
	endOfBlock = 256
)

// clOrder is the fixed transmission order of code-length code lengths in
// a dynamic block header (RFC 1951 §3.2.7).
var clOrder = [numCL]uint8{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}

// Length-code tables (codes 257-285): first length of each code and the
// number of extra bits that follow it.
var (
	lenBase  = [29]uint16{3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258}
	lenExtra = [29]uint8{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0}
	// lenCode maps length-3 (0..255) to the length code index 0..28.
	lenCode [256]uint8
)

// Distance-code tables (codes 0-29).
var (
	distBase  = [30]uint16{1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577}
	distExtra = [30]uint8{0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13}
	// distCodeLo maps distance-1 (0..255) to its code; distCodeHi maps
	// (distance-1)>>7 (2..255) to its code for distances above 256 —
	// zlib's classic two-level dist_code table.
	distCodeLo [256]uint8
	distCodeHi [256]uint8
)

// Fixed-Huffman code (BTYPE=01) lengths and pre-reversed codes.
var (
	fixedLitLen   [numLitLen]uint8
	fixedLitCode  [numLitLen]uint16
	fixedDistLen  [numDist]uint8
	fixedDistCode [numDist]uint16
)

func init() {
	for c, base := range lenBase {
		if base == 258 {
			continue // code 285 is reached only via the explicit 258 check
		}
		span := 1 << lenExtra[c]
		for l := int(base); l < int(base)+span && l <= 257; l++ {
			lenCode[l-3] = uint8(c)
		}
	}
	lenCode[258-3] = 28
	for c := range distBase {
		lo := int(distBase[c])
		hi := lo + 1<<distExtra[c]
		for d := lo; d < hi && d <= 256; d++ {
			distCodeLo[d-1] = uint8(c)
		}
		if lo > 256 {
			for d := lo; d < hi; d += 128 {
				distCodeHi[(d-1)>>7] = uint8(c)
			}
		}
	}
	for i := range fixedLitLen {
		switch {
		case i < 144:
			fixedLitLen[i] = 8
		case i < 256:
			fixedLitLen[i] = 9
		case i < 280:
			fixedLitLen[i] = 7
		default:
			fixedLitLen[i] = 8
		}
	}
	// The fixed code is canonical over the full 288-symbol alphabet; the
	// two trailing reserved symbols only shift code assignment, so build
	// over 288 and keep the first 286.
	var lens288 [288]uint8
	var codes288 [288]uint16
	for i := range lens288 {
		switch {
		case i < 144:
			lens288[i] = 8
		case i < 256:
			lens288[i] = 9
		case i < 280:
			lens288[i] = 7
		default:
			lens288[i] = 8
		}
	}
	canonicalCodes(lens288[:], codes288[:])
	copy(fixedLitCode[:], codes288[:numLitLen])
	for i := range fixedDistLen {
		fixedDistLen[i] = 5
	}
	canonicalCodes(fixedDistLen[:], fixedDistCode[:])
}

// lengthCode returns the length code index (0..28) for a match length in
// [3, 258].
func lengthCode(l int) uint8 { return lenCode[l-3] }

// distanceCode returns the distance code (0..29) for a distance in
// [1, 32768].
func distanceCode(d int) uint8 {
	if d <= 256 {
		return distCodeLo[d-1]
	}
	return distCodeHi[(d-1)>>7]
}

// canonicalCodes fills codes with the canonical DEFLATE code for each
// symbol's length, pre-reversed for LSB-first emission (RFC 1951 packs
// Huffman codes most-significant-bit first inside the LSB-first stream).
func canonicalCodes(lens []uint8, codes []uint16) {
	var blCount [maxBits + 1]uint16
	for _, l := range lens {
		blCount[l]++
	}
	blCount[0] = 0
	var next [maxBits + 2]uint16
	code := uint16(0)
	for b := 1; b <= maxBits; b++ {
		code = (code + blCount[b-1]) << 1
		next[b] = code
	}
	for i, l := range lens {
		if l == 0 {
			codes[i] = 0
			continue
		}
		codes[i] = bits.Reverse16(next[l]) >> (16 - l)
		next[l]++
	}
}

// buildLens computes optimal prefix-code lengths for freq, limited to
// maxLen bits, into lens (zeroed for unused symbols). It uses the
// standard two-queue Huffman construction over frequency-sorted symbols
// followed by zlib's bl_count overflow adjustment, and reassigns lengths
// monotonically (most frequent symbol gets the shortest code), which is
// optimal among limit-respecting codes with the same length multiset.
// scratch is the caller's reusable sort buffer. Returns the total coded
// size in bits, Σ freq·len.
func buildLens(freq []uint32, maxLen int, lens []uint8, scratch *[]uint32) uint64 {
	clear(lens[:len(freq)])
	// Pack (freq, symbol) pairs so a plain slices.Sort gives a
	// deterministic frequency-then-symbol order with no comparator
	// closure. Frequencies are < 2^23 (block sizes are ≤ 65535 bytes and
	// token counts smaller still), symbols < 2^9.
	syms := (*scratch)[:0]
	for i, f := range freq {
		if f != 0 {
			syms = append(syms, f<<9|uint32(i))
		}
	}
	*scratch = syms
	n := len(syms)
	switch n {
	case 0:
		return 0
	case 1:
		s := syms[0] & 511
		lens[s] = 1
		return uint64(syms[0] >> 9)
	}
	slices.Sort(syms)

	// Two-queue merge: leaves (sorted ascending) and internal nodes (built
	// in ascending weight order). parent[] links every node to its merge
	// parent; depth then flows root-down.
	const maxNodes = 2*numLitLen - 1
	var weight [maxNodes]uint64
	var parent [maxNodes]int16
	for i, s := range syms {
		weight[i] = uint64(s >> 9)
	}
	li, ii := 0, n // leaf cursor, internal-node read cursor
	next := n      // next internal node to create
	for next < 2*n-1 {
		var pick [2]int
		for k := 0; k < 2; k++ {
			if li < n && (ii >= next || weight[li] <= weight[ii]) {
				pick[k] = li
				li++
			} else {
				pick[k] = ii
				ii++
			}
		}
		weight[next] = weight[pick[0]] + weight[pick[1]]
		parent[pick[0]] = int16(next)
		parent[pick[1]] = int16(next)
		next++
	}
	var depth [maxNodes]uint8
	root := 2*n - 2
	depth[root] = 0
	for i := root - 1; i >= 0; i-- {
		depth[i] = depth[parent[i]] + 1
	}

	// Histogram of leaf depths, clamping overflow past maxLen, then the
	// zlib repair: move one interior slot down a level per two overflowed
	// leaves until the Kraft sum holds again.
	var blCount [maxBits + 1]int
	overflow := 0
	for i := 0; i < n; i++ {
		d := int(depth[i])
		if d > maxLen {
			overflow++
			d = maxLen
		}
		blCount[d]++
	}
	for overflow > 0 {
		b := maxLen - 1
		for blCount[b] == 0 {
			b--
		}
		blCount[b]--
		blCount[b+1] += 2
		blCount[maxLen]--
		overflow -= 2
	}

	// Reassign: shortest lengths to the most frequent symbols. syms is
	// sorted ascending, so walk it backwards while lengths grow.
	total := uint64(0)
	i := n - 1
	for b := 1; b <= maxLen; b++ {
		for c := blCount[b]; c > 0; c-- {
			s := syms[i] & 511
			i--
			lens[s] = uint8(b)
			total += uint64(b) * uint64(freq[s])
		}
	}
	return total
}

// clToken is one symbol of the RLE-compressed code-length sequence a
// dynamic header transmits: sym is the CL alphabet symbol (0-18), extra
// the value of its extra-bits field.
type clToken struct {
	sym   uint8
	extra uint8
}

// clEncode RLE-compresses the concatenated literal/length + distance
// code-length sequence into tokens (RFC 1951 §3.2.7: 16 repeats the
// previous length 3-6 times, 17 and 18 encode zero runs) and accumulates
// CL symbol frequencies. Returns the token list.
func clEncode(lens []uint8, tokens []clToken, clFreq *[numCL]uint32) []clToken {
	for i := 0; i < len(lens); {
		v := lens[i]
		run := 1
		for i+run < len(lens) && lens[i+run] == v {
			run++
		}
		switch {
		case v == 0 && run >= 3:
			for run >= 3 {
				r := run
				if r > 138 {
					r = 138
				}
				if r < 11 {
					tokens = append(tokens, clToken{17, uint8(r - 3)})
					clFreq[17]++
				} else {
					tokens = append(tokens, clToken{18, uint8(r - 11)})
					clFreq[18]++
				}
				run -= r
				i += r
			}
			for ; run > 0; run-- {
				tokens = append(tokens, clToken{0, 0})
				clFreq[0]++
				i++
			}
		case v != 0 && run >= 4:
			tokens = append(tokens, clToken{v, 0})
			clFreq[v]++
			i++
			run--
			for run >= 3 {
				r := run
				if r > 6 {
					r = 6
				}
				tokens = append(tokens, clToken{16, uint8(r - 3)})
				clFreq[16]++
				run -= r
				i += r
			}
			for ; run > 0; run-- {
				tokens = append(tokens, clToken{v, 0})
				clFreq[v]++
				i++
			}
		default:
			for ; run > 0; run-- {
				tokens = append(tokens, clToken{v, 0})
				clFreq[v]++
				i++
			}
		}
	}
	return tokens
}

// clExtraBits is the extra-bits width of CL symbols 16, 17, 18.
func clExtraBits(sym uint8) uint {
	switch sym {
	case 16:
		return 2
	case 17:
		return 3
	case 18:
		return 7
	}
	return 0
}
