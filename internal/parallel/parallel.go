// Package parallel provides the small set of concurrency utilities the
// module needs: a bounded parallel-for over index ranges, a first-error
// worker group, and chunk partitioning helpers. Everything is built from
// goroutines and channels in the style of Effective Go; there are no
// external dependencies.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers returns the worker count used when a caller passes a
// non-positive value: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach invokes fn(i) for every i in [0, n) using up to `workers`
// goroutines (non-positive means DefaultWorkers). Iterations are handed
// out in contiguous blocks to preserve cache locality. ForEach returns the
// first non-nil error reported by fn; other iterations still run to
// completion (fn implementations should be cheap to cancel via their own
// state if that matters).
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: every worker checks ctx before
// each iteration, so a cancelled context stops the loop within one unit
// of work per worker and ForEachCtx returns ctx.Err(). Iterations already
// in flight run to completion; none are abandoned half-done.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	return ForEachWorkerCtx(ctx, n, workers, func(_, i int) error { return fn(i) })
}

// ForEachWorkerCtx is ForEachCtx with the worker slot exposed: fn
// receives (worker, i) where worker is the index of the goroutine
// running the iteration, in [0, min(workers, n)). Worker slots are
// stable for the duration of the call, so callers can key per-worker
// state (scratch shards, accumulators) on the slot without locking.
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		lo, hi := Partition(n, workers, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					record(err)
					return
				}
				if err := fn(w, i); err != nil {
					record(err)
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return firstErr
}

// Partition returns the half-open range [lo, hi) of items assigned to
// worker w when n items are split across `workers` workers as evenly as
// possible (the first n%workers workers receive one extra item).
func Partition(n, workers, w int) (lo, hi int) {
	base := n / workers
	extra := n % workers
	if w < extra {
		lo = w * (base + 1)
		hi = lo + base + 1
	} else {
		lo = extra*(base+1) + (w-extra)*base
		hi = lo + base
	}
	return lo, hi
}

// Group runs tasks concurrently with at most `workers` in flight and
// returns the first error. It is the channel-semaphore pattern from
// Effective Go wrapped in a reusable type.
type Group struct {
	sem      chan struct{}
	wg       sync.WaitGroup
	mu       sync.Mutex
	firstErr error
}

// NewGroup creates a Group allowing up to `workers` concurrent tasks
// (non-positive means DefaultWorkers).
func NewGroup(workers int) *Group {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Group{sem: make(chan struct{}, workers)}
}

// Go schedules fn, blocking while the concurrency limit is saturated.
func (g *Group) Go(fn func() error) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.firstErr == nil {
				g.firstErr = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every scheduled task has finished and returns the
// first error observed (nil if none).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

// Err returns the first error observed so far without waiting. Producers
// feeding a Group through Go use it to stop scheduling work that a
// failed task has already doomed.
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

// Chunks splits n items into chunks of at most chunkSize and returns the
// half-open [lo, hi) boundaries. chunkSize ≤ 0 yields a single chunk.
func Chunks(n, chunkSize int) [][2]int {
	if n <= 0 {
		return nil
	}
	if chunkSize <= 0 || chunkSize >= n {
		return [][2]int{{0, n}}
	}
	var out [][2]int
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
