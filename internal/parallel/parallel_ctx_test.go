package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls int32
	err := ForEachCtx(ctx, 100, 4, func(i int) error {
		atomic.AddInt32(&calls, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("%d iterations ran under a pre-cancelled context", calls)
	}
}

// Cancelling from inside iteration 0 must stop a single-worker loop
// after exactly that one iteration: one unit of work, no more.
func TestForEachCtxCancelStopsWithinOneUnit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls int32
	err := ForEachCtx(ctx, 1000, 1, func(i int) error {
		atomic.AddInt32(&calls, 1)
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("%d iterations ran after cancellation, want 1", calls)
	}
}

// With w workers, each may finish the iteration it is in when the
// context dies, but none may start another: at most w units run after
// the cancel.
func TestForEachCtxCancelBoundsParallelWork(t *testing.T) {
	const workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls int32
	err := ForEachCtx(ctx, 10_000, workers, func(i int) error {
		atomic.AddInt32(&calls, 1)
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls > workers {
		t.Fatalf("%d iterations ran after cancellation, want <= %d", calls, workers)
	}
}

// fn errors still win when the context stays live, exactly as ForEach.
func TestForEachCtxPropagatesFnError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEachCtx(context.Background(), 50, 4, func(i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestForEachCtxNilContext(t *testing.T) {
	var calls int32
	if err := ForEachCtx(nil, 10, 2, func(i int) error { //nolint:staticcheck // nil ctx tolerated by design
		atomic.AddInt32(&calls, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("ran %d of 10", calls)
	}
}
