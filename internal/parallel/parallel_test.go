package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 100} {
		n := 137
		seen := make([]int32, n)
		err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(50, 4, func(i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestForEachSequentialErrorStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	var count int
	err := ForEach(100, 1, func(i int) error {
		count++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatal("expected error")
	}
	if count != 4 {
		t.Fatalf("sequential path ran %d iterations after error, want 4", count)
	}
}

func TestPartitionCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {3, 10}, {1, 1}, {100, 7}, {7, 7}, {0, 4},
	} {
		covered := 0
		prevHi := 0
		for w := 0; w < tc.workers; w++ {
			lo, hi := Partition(tc.n, tc.workers, w)
			if lo != prevHi {
				t.Fatalf("n=%d w=%d: gap at %d (lo=%d)", tc.n, tc.workers, prevHi, lo)
			}
			if hi < lo {
				t.Fatalf("n=%d w=%d: hi < lo", tc.n, tc.workers)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d workers=%d: covered %d", tc.n, tc.workers, covered)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	// No worker's share may exceed another's by more than 1.
	min, max := 1<<30, 0
	for w := 0; w < 7; w++ {
		lo, hi := Partition(100, 7, w)
		size := hi - lo
		if size < min {
			min = size
		}
		if size > max {
			max = size
		}
	}
	if max-min > 1 {
		t.Fatalf("imbalance: min=%d max=%d", min, max)
	}
}

func TestGroupRunsAll(t *testing.T) {
	g := NewGroup(3)
	var n int64
	for i := 0; i < 40; i++ {
		g.Go(func() error {
			atomic.AddInt64(&n, 1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("ran %d tasks, want 40", n)
	}
}

func TestGroupLimitsConcurrency(t *testing.T) {
	const limit = 2
	g := NewGroup(limit)
	var cur, peak int64
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		g.Go(func() error {
			c := atomic.AddInt64(&cur, 1)
			mu.Lock()
			if c > peak {
				peak = c
			}
			mu.Unlock()
			atomic.AddInt64(&cur, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", peak, limit)
	}
}

func TestGroupFirstError(t *testing.T) {
	g := NewGroup(4)
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		g.Go(func() error { return nil })
	}
	g.Go(func() error { return boom })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestChunks(t *testing.T) {
	got := Chunks(10, 4)
	want := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	if len(got) != len(want) {
		t.Fatalf("Chunks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Chunks = %v, want %v", got, want)
		}
	}
	if Chunks(0, 4) != nil {
		t.Fatal("Chunks(0) should be nil")
	}
	one := Chunks(5, 0)
	if len(one) != 1 || one[0] != [2]int{0, 5} {
		t.Fatalf("Chunks(5,0) = %v", one)
	}
	if c := Chunks(5, 100); len(c) != 1 {
		t.Fatalf("oversized chunk size should yield one chunk, got %v", c)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers must be ≥ 1")
	}
}
