// Package datagen synthesizes the three HPC data sets of the paper's
// Table I (NYX cosmology, CESM-ATM climate, Hurricane ISABEL) at
// configurable grid sizes. The real data sets total 62 GB–1.5 TB and are
// not redistributable, so this package substitutes spectrally synthesized
// Gaussian random fields with per-field smoothness exponents and domain
// transforms (lognormal densities, clipped cloud fractions, vortex winds,
// sparse hydrometeors).
//
// Why the substitution preserves the paper's behaviour: the fixed-PSNR
// result depends only on each field's value range and on the shape of the
// prediction-error distribution relative to the quantization bin size.
// Smooth spectral fields produce the sharply peaked, symmetric
// prediction-error distributions of the paper's Figure 1; per-field
// spectral exponents and transforms reproduce the cross-field diversity
// behind Table II's STDEV columns.
package datagen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"fixedpsnr/internal/fft"
)

// GRFOptions parameterizes spectral Gaussian-random-field synthesis.
type GRFOptions struct {
	// Beta is the power-spectrum exponent: P(κ) ∝ (κ²+κ0²)^(−β/2) on
	// normalized wavenumbers. Larger β → smoother fields. Typical HPC
	// fields fall in [2, 5].
	Beta float64
	// Kappa0 regularizes the spectrum at low wavenumber (in cycles per
	// domain; default 1).
	Kappa0 float64
	// Seed makes the field reproducible.
	Seed int64
	// Workers bounds FFT parallelism (non-positive: all CPUs).
	Workers int
}

// GRF synthesizes a real Gaussian random field with the requested
// dimensions: complex white noise is shaped by the power-law spectrum on a
// power-of-two grid, inverse-FFT'd, cropped to dims, and normalized to
// zero mean and unit variance.
func GRF(dims []int, opt GRFOptions) ([]float64, error) {
	if len(dims) == 0 || len(dims) > 3 {
		return nil, fmt.Errorf("datagen: GRF supports 1–3 dims, got %d", len(dims))
	}
	pdims := make([]int, len(dims))
	ptotal := 1
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("datagen: non-positive dimension %d", d)
		}
		pdims[i] = fft.NextPow2(d)
		ptotal *= pdims[i]
	}
	if opt.Kappa0 <= 0 {
		opt.Kappa0 = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	spec := make([]complex128, ptotal)
	// Normalized cutoff: Kappa0 cycles across the domain.
	kap0 := opt.Kappa0
	fillSpectrum(spec, pdims, opt.Beta, kap0, rng)

	if err := fft.InverseND(spec, pdims, opt.Workers); err != nil {
		return nil, err
	}

	out := make([]float64, prod(dims))
	crop(out, spec, dims, pdims)

	normalize(out)
	return out, nil
}

func prod(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

// fillSpectrum populates the Fourier coefficients with complex Gaussian
// noise shaped by the power-law amplitude. The DC coefficient is zeroed
// (the caller controls the mean separately).
func fillSpectrum(spec []complex128, pdims []int, beta, kap0 float64, rng *rand.Rand) {
	rank := len(pdims)
	idx := make([]int, rank)
	for i := range spec {
		// Decompose flat index into per-axis frequency indices.
		rem := i
		for a := rank - 1; a >= 0; a-- {
			idx[a] = rem % pdims[a]
			rem /= pdims[a]
		}
		var kap2 float64
		zero := true
		for a := 0; a < rank; a++ {
			f := idx[a]
			if f > pdims[a]/2 {
				f = pdims[a] - f
			}
			if f != 0 {
				zero = false
			}
			// Wavenumber in cycles per domain along axis a.
			kap2 += float64(f) * float64(f)
		}
		if zero {
			spec[i] = 0
			continue
		}
		amp := math.Pow(kap2+kap0*kap0, -beta/4) // amplitude ∝ sqrt of power
		spec[i] = complex(amp*rng.NormFloat64(), amp*rng.NormFloat64())
	}
}

// crop copies the real part of the padded synthesis grid into the target
// dimensions.
func crop(dst []float64, src []complex128, dims, pdims []int) {
	switch len(dims) {
	case 1:
		for i := 0; i < dims[0]; i++ {
			dst[i] = real(src[i])
		}
	case 2:
		pc := pdims[1]
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				dst[i*dims[1]+j] = real(src[i*pc+j])
			}
		}
	case 3:
		p1, p2 := pdims[1], pdims[2]
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				for k := 0; k < dims[2]; k++ {
					dst[(i*dims[1]+j)*dims[2]+k] = real(src[(i*p1+j)*p2+k])
				}
			}
		}
	}
}

// normalize shifts and scales xs to zero mean and unit variance in place.
// A degenerate (constant) field is left at zero mean.
func normalize(xs []float64) {
	if len(xs) == 0 {
		return
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var varsum float64
	for i := range xs {
		xs[i] -= mean
		varsum += xs[i] * xs[i]
	}
	sd := math.Sqrt(varsum / float64(len(xs)))
	if sd == 0 {
		return
	}
	inv := 1 / sd
	for i := range xs {
		xs[i] *= inv
	}
}

// seedFor derives a deterministic per-field seed from the data-set and
// field names, so fields are reproducible independently of generation
// order.
func seedFor(dataset, fieldName string) int64 {
	h := fnv.New64a()
	h.Write([]byte(dataset))
	h.Write([]byte{0})
	h.Write([]byte(fieldName))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
