package datagen

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"fixedpsnr/internal/fft"
	"fixedpsnr/internal/field"
)

// TimeSeriesOptions parameterizes the evolving-field generator.
type TimeSeriesOptions struct {
	// Beta is the spatial spectral exponent (as in GRFOptions).
	Beta float64
	// Rho is the per-step spectral correlation in (0, 1]; higher means
	// slower evolution (default 0.95).
	Rho float64
	// OmegaScale sets the phase-advection rate per wavenumber per step
	// (default 0.05 rad per unit wavenumber) — the "weather moves"
	// term.
	OmegaScale float64
	// Seed makes the series reproducible.
	Seed int64
	// Workers bounds FFT parallelism.
	Workers int
}

// TimeSeries generates `steps` temporally correlated snapshots of a smooth
// field: the spectral coefficients evolve by phase advection plus an
// Ornstein–Uhlenbeck refresh, so consecutive snapshots look like
// consecutive dumps of a simulation. It backs the temporal-decimation
// experiment (the paper's introduction describes HACC keeping only every
// k-th snapshot to fit storage, "degrading the consecutiveness of
// simulation in time").
//
// All snapshots share one normalization so temporal differences are
// meaningful; each is rounded to float32 like a real dump.
func TimeSeries(dims []int, steps int, opt TimeSeriesOptions) ([]*field.Field, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("datagen: need a positive number of steps, got %d", steps)
	}
	if len(dims) == 0 || len(dims) > 3 {
		return nil, fmt.Errorf("datagen: time series supports 1–3 dims, got %d", len(dims))
	}
	if opt.Rho == 0 {
		opt.Rho = 0.95
	}
	if opt.Rho <= 0 || opt.Rho > 1 {
		return nil, fmt.Errorf("datagen: rho must be in (0, 1], got %g", opt.Rho)
	}
	if opt.OmegaScale == 0 {
		opt.OmegaScale = 0.05
	}

	pdims := make([]int, len(dims))
	ptotal := 1
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("datagen: non-positive dimension %d", d)
		}
		pdims[i] = fft.NextPow2(d)
		ptotal *= pdims[i]
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Initial spectrum and the per-coefficient amplitude/phase-rate
	// tables.
	state := make([]complex128, ptotal)
	amp := make([]float64, ptotal)
	omega := make([]float64, ptotal)
	fillSpectrum(state, pdims, opt.Beta, 1, rng)
	rank := len(pdims)
	idx := make([]int, rank)
	for i := range state {
		rem := i
		for a := rank - 1; a >= 0; a-- {
			idx[a] = rem % pdims[a]
			rem /= pdims[a]
		}
		var kap2 float64
		for a := 0; a < rank; a++ {
			f := idx[a]
			if f > pdims[a]/2 {
				f = pdims[a] - f
			}
			kap2 += float64(f) * float64(f)
		}
		if kap2 == 0 {
			amp[i] = 0
			continue
		}
		amp[i] = math.Pow(kap2+1, -opt.Beta/4)
		omega[i] = opt.OmegaScale * math.Sqrt(kap2)
	}

	refresh := math.Sqrt(1 - opt.Rho*opt.Rho)
	var norm float64 // set from the first snapshot

	out := make([]*field.Field, steps)
	work := make([]complex128, ptotal)
	for t := 0; t < steps; t++ {
		if t > 0 {
			for i := range state {
				if amp[i] == 0 {
					continue
				}
				rot := cmplx.Exp(complex(0, omega[i]))
				fresh := complex(amp[i]*rng.NormFloat64(), amp[i]*rng.NormFloat64())
				state[i] = complex(opt.Rho, 0)*state[i]*rot + complex(refresh, 0)*fresh
			}
		}
		copy(work, state)
		if err := fft.InverseND(work, pdims, opt.Workers); err != nil {
			return nil, err
		}
		f := field.New(fmt.Sprintf("t%03d", t), field.Float32, dims...)
		crop(f.Data, work, dims, pdims)
		if t == 0 {
			var sum, sumSq float64
			for _, v := range f.Data {
				sum += v
			}
			mean := sum / float64(len(f.Data))
			for _, v := range f.Data {
				sumSq += (v - mean) * (v - mean)
			}
			sd := math.Sqrt(sumSq / float64(len(f.Data)))
			if sd == 0 {
				sd = 1
			}
			norm = 1 / sd
		}
		for i := range f.Data {
			f.Data[i] *= norm
		}
		f.RoundToFloat32()
		out[t] = f
	}
	return out, nil
}
