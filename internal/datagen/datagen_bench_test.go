package datagen

import "testing"

func BenchmarkGRF2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GRF([]int{180, 360}, GRFOptions{Beta: 3.2, Seed: int64(i), Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGRF3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GRF([]int{64, 64, 64}, GRFOptions{Beta: 3.2, Seed: int64(i), Workers: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesizeATMField(b *testing.B) {
	ds := ATM(nil)
	for i := 0; i < b.N; i++ {
		if _, err := ds.Field(i%ds.NumFields(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimeSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := TimeSeries([]int{64, 64}, 8, TimeSeriesOptions{Beta: 3.2, Seed: int64(i), Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
