package datagen

import (
	"fmt"

	"fixedpsnr/internal/field"
	"fixedpsnr/internal/parallel"
)

// Dataset is a registry of synthetic fields standing in for one of the
// paper's Table I data sets.
type Dataset struct {
	// Name is the data-set identifier ("NYX", "ATM", "Hurricane").
	Name string
	// Dims is the synthesis grid (configurable, defaults are
	// laptop-scale reductions of the paper's grids).
	Dims []int
	// PaperDims and PaperSizeGB record the original data set for
	// Table I rendering.
	PaperDims   []int
	PaperSizeGB float64
	// Specs lists the fields; len(Specs) matches the paper's field
	// counts (6 / 79 / 13).
	Specs []Spec
}

// Default grid sizes: reductions of the paper's grids that keep every
// experiment runnable on a laptop while preserving multi-dimensional
// structure. Override via the constructors' dims argument.
var (
	DefaultNYXDims       = []int{64, 64, 64}   // paper: 2048³
	DefaultATMDims       = []int{180, 360}     // paper: 1800×3600
	DefaultHurricaneDims = []int{25, 125, 125} // paper: 100×500×500
)

// NumFields returns the number of fields in the set.
func (d *Dataset) NumFields() int { return len(d.Specs) }

// SizeBytes returns the nominal single-precision footprint of the whole
// synthetic data set.
func (d *Dataset) SizeBytes() int64 {
	n := int64(1)
	for _, dim := range d.Dims {
		n *= int64(dim)
	}
	return n * 4 * int64(len(d.Specs))
}

// Field synthesizes field i.
func (d *Dataset) Field(i, workers int) (*field.Field, error) {
	if i < 0 || i >= len(d.Specs) {
		return nil, fmt.Errorf("datagen: %s has no field %d", d.Name, i)
	}
	return Synthesize(d.Name, d.Specs[i], d.Dims, workers)
}

// FieldByName synthesizes the named field.
func (d *Dataset) FieldByName(name string, workers int) (*field.Field, error) {
	for i, s := range d.Specs {
		if s.Name == name {
			return d.Field(i, workers)
		}
	}
	return nil, fmt.Errorf("datagen: %s has no field %q", d.Name, name)
}

// Fields synthesizes every field, parallelizing across fields.
func (d *Dataset) Fields(workers int) ([]*field.Field, error) {
	out := make([]*field.Field, len(d.Specs))
	err := parallel.ForEach(len(d.Specs), workers, func(i int) error {
		f, err := d.Field(i, 1)
		if err != nil {
			return err
		}
		out[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NYX builds the cosmology data-set registry (6 fields, 3-D). Passing nil
// dims selects DefaultNYXDims. Baryon and dark-matter densities are
// lognormal with several decades of dynamic range; temperature is a
// positive lognormal; velocities are smooth signed fields, all following
// the qualitative structure of Nyx outputs.
func NYX(dims []int) *Dataset {
	if dims == nil {
		dims = DefaultNYXDims
	}
	return &Dataset{
		Name:        "NYX",
		Dims:        dims,
		PaperDims:   []int{2048, 2048, 2048},
		PaperSizeGB: 206,
		Specs: []Spec{
			{Name: "baryon_density", Kind: KindLognormal, Beta: 3.0, Sigma: 0.7, Scale: 1, Offset: 0},
			{Name: "dark_matter_density", Kind: KindLognormal, Beta: 2.7, Sigma: 0.85, Scale: 1, Offset: 0},
			{Name: "temperature", Kind: KindLognormal, Beta: 3.2, Sigma: 0.6, Scale: 1.2e4, Offset: 2e3},
			{Name: "velocity_x", Kind: KindSmooth, Beta: 3.6, Scale: 8.5e6},
			{Name: "velocity_y", Kind: KindSmooth, Beta: 3.6, Scale: 8.5e6},
			{Name: "velocity_z", Kind: KindSmooth, Beta: 3.6, Scale: 8.5e6},
		},
	}
}

// Hurricane builds the Hurricane-ISABEL registry (13 fields, 3-D): the 13
// variables of the IEEE Visualization 2004 contest data. Hydrometeor
// mixing ratios are sparse, the wind components form a Rankine vortex with
// turbulence, pressure and temperature are smooth.
func Hurricane(dims []int) *Dataset {
	if dims == nil {
		dims = DefaultHurricaneDims
	}
	return &Dataset{
		Name:        "Hurricane",
		Dims:        dims,
		PaperDims:   []int{100, 500, 500},
		PaperSizeGB: 62.4,
		Specs: []Spec{
			{Name: "QCLOUD", Kind: KindSparse, Beta: 2.8, Scale: 1.5e-3, Thresh: 0.8},
			{Name: "QGRAUP", Kind: KindSparse, Beta: 2.5, Scale: 2.0e-3, Thresh: 1.3},
			{Name: "QICE", Kind: KindSparse, Beta: 2.6, Scale: 1.0e-3, Thresh: 1.1},
			{Name: "QRAIN", Kind: KindSparse, Beta: 2.7, Scale: 2.5e-3, Thresh: 1.0},
			{Name: "QSNOW", Kind: KindSparse, Beta: 2.6, Scale: 1.2e-3, Thresh: 1.2},
			{Name: "QVAPOR", Kind: KindLognormal, Beta: 3.3, Sigma: 0.9, Scale: 8e-3},
			{Name: "CLOUD", Kind: KindClipped, Beta: 2.9, Sigma: 0.45, Thresh: 0.35},
			{Name: "PRECIP", Kind: KindSparse, Beta: 2.4, Scale: 3.0e-3, Thresh: 0.9},
			{Name: "P", Kind: KindSmooth, Beta: 4.0, Offset: 500, Scale: 1200},
			{Name: "TC", Kind: KindSmooth, Beta: 3.7, Offset: 10, Scale: 18},
			{Name: "U", Kind: KindVortexU, Beta: 3.0, Sigma: 4.5, Scale: 65},
			{Name: "V", Kind: KindVortexV, Beta: 3.0, Sigma: 4.5, Scale: 65},
			{Name: "W", Kind: KindVortexW, Beta: 2.8, Sigma: 2.5, Scale: 55},
		},
	}
}

// ATM builds the CESM-ATM climate registry: 79 two-dimensional fields
// named after CESM Large Ensemble atmosphere output. Recipes follow the
// variable class: cloud fractions are clipped to [0,1], precipitation and
// snow fields are sparse, temperatures/pressures/geopotentials are smooth
// with physical offsets, humidities and number concentrations are
// lognormal, winds are signed and rougher. Spectral exponents spread over
// [2.2, 4.6] to give the estimator a diverse population, which is what
// produces the non-trivial STDEV columns in Table II.
func ATM(dims []int) *Dataset {
	if dims == nil {
		dims = DefaultATMDims
	}
	return &Dataset{
		Name:        "ATM",
		Dims:        dims,
		PaperDims:   []int{1800, 3600},
		PaperSizeGB: 1536,
		Specs:       atmSpecs(),
	}
}

func atmSpecs() []Spec {
	return []Spec{
		// Cloud fraction family — hard saturation at 0 and 1.
		{Name: "CLDHGH", Kind: KindClipped, Beta: 2.8, Sigma: 0.42, Thresh: 0.35},
		{Name: "CLDLOW", Kind: KindClipped, Beta: 2.6, Sigma: 0.45, Thresh: 0.45},
		{Name: "CLDMED", Kind: KindClipped, Beta: 2.7, Sigma: 0.40, Thresh: 0.40},
		{Name: "CLDTOT", Kind: KindClipped, Beta: 2.9, Sigma: 0.38, Thresh: 0.60},
		{Name: "CLOUD", Kind: KindClipped, Beta: 2.8, Sigma: 0.35, Thresh: 0.30},
		{Name: "FICE", Kind: KindClipped, Beta: 2.5, Sigma: 0.50, Thresh: 0.50},
		{Name: "ICEFRAC", Kind: KindClipped, Beta: 3.4, Sigma: 0.55, Thresh: 0.15},
		{Name: "LANDFRAC", Kind: KindClipped, Beta: 3.8, Sigma: 0.70, Thresh: 0.30},
		{Name: "OCNFRAC", Kind: KindClipped, Beta: 3.8, Sigma: 0.70, Thresh: 0.70},
		{Name: "RELHUM", Kind: KindClipped, Beta: 3.0, Sigma: 0.30, Thresh: 0.65},

		// Precipitation / snow — sparse positive bursts.
		{Name: "PRECC", Kind: KindSparse, Beta: 2.3, Scale: 2.5e-7, Thresh: 1.1},
		{Name: "PRECL", Kind: KindSparse, Beta: 2.5, Scale: 1.8e-7, Thresh: 0.9},
		{Name: "PRECSC", Kind: KindSparse, Beta: 2.3, Scale: 6.0e-8, Thresh: 1.5},
		{Name: "PRECSL", Kind: KindSparse, Beta: 2.4, Scale: 5.0e-8, Thresh: 1.4},
		{Name: "SNOWHICE", Kind: KindSparse, Beta: 2.9, Scale: 0.4, Thresh: 1.0},
		{Name: "SNOWHLND", Kind: KindSparse, Beta: 2.8, Scale: 0.5, Thresh: 1.1},

		// Surface/TOA radiative fluxes — smooth, positive, moderate range.
		{Name: "FLDS", Kind: KindSmooth, Beta: 3.5, Offset: 340, Scale: 60},
		{Name: "FLNS", Kind: KindSmooth, Beta: 3.2, Offset: 65, Scale: 30},
		{Name: "FLNSC", Kind: KindSmooth, Beta: 3.4, Offset: 80, Scale: 30},
		{Name: "FLNT", Kind: KindSmooth, Beta: 3.6, Offset: 235, Scale: 45},
		{Name: "FLNTC", Kind: KindSmooth, Beta: 3.7, Offset: 260, Scale: 40},
		{Name: "FLUT", Kind: KindSmooth, Beta: 3.5, Offset: 240, Scale: 50},
		{Name: "FLUTC", Kind: KindSmooth, Beta: 3.7, Offset: 265, Scale: 40},
		{Name: "FSDS", Kind: KindSmooth, Beta: 3.3, Offset: 190, Scale: 80},
		{Name: "FSDSC", Kind: KindSmooth, Beta: 4.0, Offset: 230, Scale: 70},
		{Name: "FSNS", Kind: KindSmooth, Beta: 3.2, Offset: 160, Scale: 70},
		{Name: "FSNSC", Kind: KindSmooth, Beta: 3.9, Offset: 200, Scale: 65},
		{Name: "FSNT", Kind: KindSmooth, Beta: 3.4, Offset: 240, Scale: 70},
		{Name: "FSNTC", Kind: KindSmooth, Beta: 3.9, Offset: 270, Scale: 60},
		{Name: "FSNTOA", Kind: KindSmooth, Beta: 3.4, Offset: 245, Scale: 70},
		{Name: "FSNTOAC", Kind: KindSmooth, Beta: 3.9, Offset: 275, Scale: 60},
		{Name: "SOLIN", Kind: KindSmooth, Beta: 4.6, Offset: 1180, Scale: 180},
		{Name: "LWCF", Kind: KindSmooth, Beta: 3.1, Offset: 25, Scale: 18},
		{Name: "SWCF", Kind: KindSmooth, Beta: 3.0, Offset: -45, Scale: 30},
		{Name: "QRL", Kind: KindSmooth, Beta: 2.9, Offset: -1.5e-5, Scale: 1.0e-5},
		{Name: "QRS", Kind: KindSmooth, Beta: 3.0, Offset: 1.2e-5, Scale: 0.8e-5},

		// Turbulent fluxes.
		{Name: "LHFLX", Kind: KindLognormal, Beta: 2.8, Sigma: 0.8, Scale: 60, Offset: 2},
		{Name: "SHFLX", Kind: KindSmooth, Beta: 2.7, Offset: 20, Scale: 35},
		{Name: "QFLX", Kind: KindLognormal, Beta: 2.7, Sigma: 0.8, Scale: 2.5e-5},
		{Name: "TAUX", Kind: KindSmooth, Beta: 2.9, Offset: 0, Scale: 0.12},
		{Name: "TAUY", Kind: KindSmooth, Beta: 2.9, Offset: 0, Scale: 0.10},

		// Temperatures — very smooth with offsets.
		{Name: "T010", Kind: KindSmooth, Beta: 4.3, Offset: 232, Scale: 9},
		{Name: "T200", Kind: KindSmooth, Beta: 4.2, Offset: 218, Scale: 7},
		{Name: "T500", Kind: KindSmooth, Beta: 4.1, Offset: 253, Scale: 10},
		{Name: "T850", Kind: KindSmooth, Beta: 4.0, Offset: 275, Scale: 12},
		{Name: "TREFHT", Kind: KindSmooth, Beta: 3.8, Offset: 288, Scale: 15},
		{Name: "TS", Kind: KindSmooth, Beta: 3.7, Offset: 289, Scale: 16},

		// Pressures and geopotential heights — smoothest fields.
		{Name: "PS", Kind: KindSmooth, Beta: 4.4, Offset: 98500, Scale: 1400},
		{Name: "PSL", Kind: KindSmooth, Beta: 4.5, Offset: 101100, Scale: 900},
		{Name: "PHIS", Kind: KindLognormal, Beta: 2.6, Sigma: 1.0, Scale: 2500},
		{Name: "Z050", Kind: KindSmooth, Beta: 4.5, Offset: 20500, Scale: 320},
		{Name: "Z500", Kind: KindSmooth, Beta: 4.4, Offset: 5650, Scale: 160},
		{Name: "PBLH", Kind: KindLognormal, Beta: 2.7, Sigma: 0.7, Scale: 520, Offset: 40},

		// Humidity family — lognormal, small magnitudes.
		{Name: "Q200", Kind: KindLognormal, Beta: 3.1, Sigma: 0.9, Scale: 4e-5},
		{Name: "Q500", Kind: KindLognormal, Beta: 3.0, Sigma: 1.0, Scale: 9e-4},
		{Name: "Q850", Kind: KindLognormal, Beta: 2.9, Sigma: 0.9, Scale: 6e-3},
		{Name: "QREFHT", Kind: KindLognormal, Beta: 2.9, Sigma: 0.8, Scale: 9e-3},
		{Name: "TMQ", Kind: KindLognormal, Beta: 3.2, Sigma: 0.7, Scale: 18, Offset: 1},
		{Name: "TGCLDIWP", Kind: KindSparse, Beta: 2.6, Scale: 0.08, Thresh: 0.7},
		{Name: "TGCLDLWP", Kind: KindSparse, Beta: 2.6, Scale: 0.12, Thresh: 0.6},

		// Winds — signed, rougher spectra.
		{Name: "U010", Kind: KindSmooth, Beta: 3.3, Offset: 5, Scale: 16},
		{Name: "U200", Kind: KindSmooth, Beta: 3.4, Offset: 12, Scale: 18},
		{Name: "U500", Kind: KindSmooth, Beta: 3.3, Offset: 6, Scale: 14},
		{Name: "U850", Kind: KindSmooth, Beta: 3.2, Offset: 1, Scale: 10},
		{Name: "U10", Kind: KindLognormal, Beta: 2.8, Sigma: 0.6, Scale: 6, Offset: 0.5},
		{Name: "V200", Kind: KindSmooth, Beta: 3.3, Offset: 0, Scale: 12},
		{Name: "V500", Kind: KindSmooth, Beta: 3.2, Offset: 0, Scale: 10},
		{Name: "V850", Kind: KindSmooth, Beta: 3.1, Offset: 0, Scale: 8},
		{Name: "OMEGA500", Kind: KindSmooth, Beta: 2.6, Offset: 0, Scale: 0.12},
		{Name: "WSPDSRFMX", Kind: KindLognormal, Beta: 2.7, Sigma: 0.5, Scale: 8, Offset: 1},

		// Dynamical products — roughest spectra (products of fields).
		{Name: "OMEGAT", Kind: KindSmooth, Beta: 2.4, Offset: 0, Scale: 30},
		{Name: "UU", Kind: KindLognormal, Beta: 2.3, Sigma: 0.8, Scale: 250},
		{Name: "VV", Kind: KindLognormal, Beta: 2.3, Sigma: 0.8, Scale: 150},
		{Name: "VQ", Kind: KindSmooth, Beta: 2.4, Offset: 0, Scale: 0.05},
		{Name: "VT", Kind: KindSmooth, Beta: 2.5, Offset: 0, Scale: 900},
		{Name: "VU", Kind: KindSmooth, Beta: 2.4, Offset: 0, Scale: 120},

		// Aerosol / microphysics diagnostics — wide dynamic range.
		{Name: "AEROD_v", Kind: KindLognormal, Beta: 2.8, Sigma: 0.9, Scale: 0.12},
		{Name: "CCN3", Kind: KindLognormal, Beta: 2.5, Sigma: 1.0, Scale: 90},
		{Name: "CDNUMC", Kind: KindLognormal, Beta: 2.5, Sigma: 1.0, Scale: 2.5e10},
	}
}

// Registry returns the three paper data sets at their default scales.
func Registry() []*Dataset {
	return []*Dataset{NYX(nil), ATM(nil), Hurricane(nil)}
}

// ByName returns the named data set at default scale.
func ByName(name string) (*Dataset, error) {
	for _, d := range Registry() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("datagen: unknown data set %q (want NYX, ATM, or Hurricane)", name)
}
