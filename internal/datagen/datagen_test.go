package datagen

import (
	"math"
	"testing"

	"fixedpsnr/internal/field"
)

func TestGRFValidates(t *testing.T) {
	if _, err := GRF(nil, GRFOptions{Beta: 3}); err == nil {
		t.Fatal("expected error for empty dims")
	}
	if _, err := GRF([]int{2, 2, 2, 2}, GRFOptions{Beta: 3}); err == nil {
		t.Fatal("expected error for rank 4")
	}
	if _, err := GRF([]int{4, -1}, GRFOptions{Beta: 3}); err == nil {
		t.Fatal("expected error for negative dim")
	}
}

func TestGRFNormalized(t *testing.T) {
	xs, err := GRF([]int{48, 52}, GRFOptions{Beta: 3, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 48*52 {
		t.Fatalf("len = %d", len(xs))
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var variance float64
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	if math.Abs(mean) > 1e-10 {
		t.Fatalf("mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 1e-10 {
		t.Fatalf("variance = %g, want 1", variance)
	}
}

func TestGRFDeterministic(t *testing.T) {
	a, err := GRF([]int{30, 30}, GRFOptions{Beta: 2.5, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GRF([]int{30, 30}, GRFOptions{Beta: 2.5, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded GRF not deterministic at %d (workers must not matter)", i)
		}
	}
	c, _ := GRF([]int{30, 30}, GRFOptions{Beta: 2.5, Seed: 8, Workers: 1})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fields")
	}
}

// Higher beta must give smoother fields: neighbor differences shrink.
func TestGRFSmoothnessOrdering(t *testing.T) {
	rough, err := GRF([]int{64, 64}, GRFOptions{Beta: 2.0, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := GRF([]int{64, 64}, GRFOptions{Beta: 4.5, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	meanAbsDiff := func(xs []float64) float64 {
		var s float64
		for i := 1; i < len(xs); i++ {
			s += math.Abs(xs[i] - xs[i-1])
		}
		return s / float64(len(xs)-1)
	}
	if meanAbsDiff(smooth) >= meanAbsDiff(rough) {
		t.Fatalf("beta=4.5 rougher than beta=2.0: %g vs %g",
			meanAbsDiff(smooth), meanAbsDiff(rough))
	}
}

func TestSynthesizeKinds(t *testing.T) {
	dims2 := []int{24, 28}
	dims3 := []int{8, 16, 16}
	cases := []struct {
		spec Spec
		dims []int
	}{
		{Spec{Name: "smooth", Kind: KindSmooth, Beta: 3, Offset: 100, Scale: 10}, dims2},
		{Spec{Name: "logn", Kind: KindLognormal, Beta: 3, Sigma: 1.5, Scale: 2}, dims2},
		{Spec{Name: "clip", Kind: KindClipped, Beta: 3, Sigma: 0.5, Thresh: 0.4}, dims2},
		{Spec{Name: "sparse", Kind: KindSparse, Beta: 3, Scale: 1e-3, Thresh: 1.0}, dims2},
		{Spec{Name: "u", Kind: KindVortexU, Beta: 3, Sigma: 2, Scale: 50}, dims3},
		{Spec{Name: "v", Kind: KindVortexV, Beta: 3, Sigma: 2, Scale: 50}, dims3},
		{Spec{Name: "w", Kind: KindVortexW, Beta: 3, Sigma: 1, Scale: 40}, dims3},
	}
	for _, c := range cases {
		f, err := Synthesize("test", c.spec, c.dims, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Name, err)
		}
		if f.Precision != field.Float32 {
			t.Fatalf("%s: not rounded to float32", c.spec.Name)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", c.spec.Name, err)
		}
		_, _, vr := f.ValueRange()
		if vr <= 0 {
			t.Fatalf("%s: degenerate value range", c.spec.Name)
		}
	}
}

func TestSynthesizeClippedInUnitInterval(t *testing.T) {
	f, err := Synthesize("t", Spec{Name: "c", Kind: KindClipped, Beta: 2.8, Sigma: 0.5, Thresh: 0.5}, []int{40, 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sawLow, sawHigh := false, false
	for _, v := range f.Data {
		if v < 0 || v > 1 {
			t.Fatalf("clipped value %g outside [0,1]", v)
		}
		if v < 0.02 {
			sawLow = true
		}
		if v > 0.98 {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Fatal("expected near-saturation at both ends for a cloud-fraction field")
	}
}

func TestSynthesizeSparseNonNegative(t *testing.T) {
	f, err := Synthesize("t", Spec{Name: "s", Kind: KindSparse, Beta: 2.5, Scale: 1, Thresh: 1.0}, []int{40, 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, max, _ := f.ValueRange()
	low := 0
	for _, v := range f.Data {
		if v < 0 {
			t.Fatalf("sparse value %g < 0", v)
		}
		if v < 0.02*max {
			low++
		}
	}
	// Sparse fields are burst-dominated: most points sit on the weak
	// background, far below the peaks.
	if low < len(f.Data)/2 {
		t.Fatalf("sparse field has only %d/%d background points", low, len(f.Data))
	}
}

func TestVortexNeedsRank3(t *testing.T) {
	if _, err := Synthesize("t", Spec{Name: "u", Kind: KindVortexU, Beta: 3, Scale: 10}, []int{10, 10}, 1); err == nil {
		t.Fatal("expected error for 2-D vortex")
	}
}

func TestSynthesizeUnknownKind(t *testing.T) {
	if _, err := Synthesize("t", Spec{Name: "x", Kind: Kind(99), Beta: 3}, []int{8, 8}, 1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestDatasetRegistries(t *testing.T) {
	nyx := NYX(nil)
	atm := ATM(nil)
	hur := Hurricane(nil)
	if nyx.NumFields() != 6 {
		t.Fatalf("NYX has %d fields, want 6", nyx.NumFields())
	}
	if atm.NumFields() != 79 {
		t.Fatalf("ATM has %d fields, want 79 (paper Table I)", atm.NumFields())
	}
	if hur.NumFields() != 13 {
		t.Fatalf("Hurricane has %d fields, want 13", hur.NumFields())
	}
	if len(nyx.Dims) != 3 || len(atm.Dims) != 2 || len(hur.Dims) != 3 {
		t.Fatal("dataset ranks wrong")
	}
	// Unique names per set.
	for _, d := range []*Dataset{nyx, atm, hur} {
		seen := map[string]bool{}
		for _, s := range d.Specs {
			if seen[s.Name] {
				t.Fatalf("%s: duplicate field %q", d.Name, s.Name)
			}
			seen[s.Name] = true
		}
		if d.SizeBytes() <= 0 {
			t.Fatalf("%s: non-positive size", d.Name)
		}
	}
}

func TestDatasetFieldAccess(t *testing.T) {
	d := NYX([]int{8, 8, 8})
	f, err := d.Field(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "baryon_density" {
		t.Fatalf("field 0 = %q", f.Name)
	}
	if _, err := d.Field(99, 1); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
	g, err := d.FieldByName("temperature", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "temperature" {
		t.Fatal("FieldByName returned wrong field")
	}
	if _, err := d.FieldByName("nope", 1); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestDatasetFieldsParallel(t *testing.T) {
	d := Hurricane([]int{6, 20, 20})
	fs, err := d.Fields(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 13 {
		t.Fatalf("got %d fields", len(fs))
	}
	for i, f := range fs {
		if f == nil {
			t.Fatalf("field %d missing", i)
		}
		if f.Name != d.Specs[i].Name {
			t.Fatalf("field %d name %q != %q", i, f.Name, d.Specs[i].Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"NYX", "ATM", "Hurricane"} {
		d, err := ByName(name)
		if err != nil || d.Name != name {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown data set")
	}
	if len(Registry()) != 3 {
		t.Fatal("registry should have 3 data sets")
	}
}

func TestFieldReproducible(t *testing.T) {
	d := ATM([]int{20, 30})
	a, err := d.Field(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Field(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("field not reproducible at %d", i)
		}
	}
}

func TestTimeSeriesValidates(t *testing.T) {
	if _, err := TimeSeries([]int{16, 16}, 0, TimeSeriesOptions{Beta: 3}); err == nil {
		t.Fatal("expected error for zero steps")
	}
	if _, err := TimeSeries(nil, 4, TimeSeriesOptions{Beta: 3}); err == nil {
		t.Fatal("expected error for empty dims")
	}
	if _, err := TimeSeries([]int{16, -1}, 4, TimeSeriesOptions{Beta: 3}); err == nil {
		t.Fatal("expected error for bad dim")
	}
	if _, err := TimeSeries([]int{16}, 4, TimeSeriesOptions{Beta: 3, Rho: 1.5}); err == nil {
		t.Fatal("expected error for rho > 1")
	}
}

func TestTimeSeriesTemporalCorrelation(t *testing.T) {
	series, err := TimeSeries([]int{32, 32}, 8, TimeSeriesOptions{Beta: 3.2, Rho: 0.95, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 8 {
		t.Fatalf("got %d snapshots", len(series))
	}
	// Consecutive snapshots must be far closer than distant ones.
	dist := func(a, b *field.Field) float64 {
		var s float64
		for i := range a.Data {
			d := a.Data[i] - b.Data[i]
			s += d * d
		}
		return s
	}
	near := dist(series[0], series[1])
	far := dist(series[0], series[7])
	if near <= 0 {
		t.Fatal("consecutive snapshots identical — no evolution")
	}
	if far <= near {
		t.Fatalf("temporal correlation broken: near=%g far=%g", near, far)
	}
	for i, f := range series {
		if f.Precision != field.Float32 {
			t.Fatalf("snapshot %d not float32", i)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
}

func TestTimeSeriesReproducible(t *testing.T) {
	a, err := TimeSeries([]int{16, 16}, 3, TimeSeriesOptions{Beta: 3, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TimeSeries([]int{16, 16}, 3, TimeSeriesOptions{Beta: 3, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for tdx := range a {
		for i := range a[tdx].Data {
			if a[tdx].Data[i] != b[tdx].Data[i] {
				t.Fatalf("series not reproducible at t=%d i=%d", tdx, i)
			}
		}
	}
}
