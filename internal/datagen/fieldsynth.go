package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"fixedpsnr/internal/field"
)

// Kind selects the domain transform applied to the base Gaussian random
// field to mimic a physical variable class.
type Kind uint8

// Field kinds.
const (
	// KindSmooth: offset + scale·g. Temperatures, pressures, geopotential.
	KindSmooth Kind = iota
	// KindLognormal: offset + scale·exp(sigma·g). Densities, humidities —
	// high dynamic range, strictly positive.
	KindLognormal
	// KindClipped: sigmoid((sigma·g + thresh − 0.5)/0.12) — cloud
	// fractions: values crowd 0 and 1 but never flatten exactly, the
	// way time-averaged fraction fields do.
	KindClipped
	// KindSparse: scale·(max(0, g − thresh)² + background). Strong
	// positive bursts over a weak smooth background, like precipitation
	// or hydrometeor fields in time-averaged output.
	KindSparse
	// KindVortexU / KindVortexV: horizontal wind components of a Rankine
	// vortex plus spectral turbulence (3-D fields only; the slowest
	// dimension is treated as height).
	KindVortexU
	KindVortexV
	// KindVortexW: vertical velocity — updraft ring around the eyewall
	// plus turbulence.
	KindVortexW
)

// Spec describes one synthetic field.
type Spec struct {
	Name string
	Kind Kind
	// Beta is the spectral exponent of the underlying GRF.
	Beta float64
	// Sigma scales the GRF inside the transform (lognormal width, clip
	// amplitude, turbulence amplitude, …).
	Sigma float64
	// Offset and Scale place the final field in a physical-looking range.
	Offset, Scale float64
	// Thresh is the sparsity threshold for KindSparse (in GRF sigmas)
	// and the saturation level for KindClipped.
	Thresh float64
	// Background is the relative amplitude of the smooth floor under
	// KindSparse bursts (0 selects the default 0.01).
	Background float64
}

// Synthesize builds the field described by spec on the given grid. The
// result is rounded to float32, matching the single-precision data sets
// used in the paper.
func Synthesize(dataset string, spec Spec, dims []int, workers int) (*field.Field, error) {
	g, err := GRF(dims, GRFOptions{
		Beta:    spec.Beta,
		Seed:    seedFor(dataset, spec.Name),
		Workers: workers,
	})
	if err != nil {
		return nil, fmt.Errorf("datagen: %s/%s: %w", dataset, spec.Name, err)
	}
	out := field.New(spec.Name, field.Float32, dims...)
	switch spec.Kind {
	case KindSmooth:
		for i, v := range g {
			out.Data[i] = spec.Offset + spec.Scale*v
		}
	case KindLognormal:
		for i, v := range g {
			out.Data[i] = spec.Offset + spec.Scale*math.Exp(spec.Sigma*v)
		}
	case KindClipped:
		for i, v := range g {
			z := (spec.Sigma*v + spec.Thresh - 0.5) / 0.12
			out.Data[i] = 1 / (1 + math.Exp(-z))
		}
	case KindSparse:
		bg := spec.Background
		if bg == 0 {
			bg = 0.01
		}
		for i, v := range g {
			x := v - spec.Thresh
			if x < 0 {
				x = 0
			}
			out.Data[i] = spec.Scale * (x*x + bg*(1+math.Tanh(0.7*v)))
		}
	case KindVortexU, KindVortexV, KindVortexW:
		if len(dims) != 3 {
			return nil, fmt.Errorf("datagen: %s/%s: vortex kinds need a 3-D grid", dataset, spec.Name)
		}
		synthVortex(out, g, spec)
	default:
		return nil, fmt.Errorf("datagen: %s/%s: unknown kind %d", dataset, spec.Name, spec.Kind)
	}
	out.RoundToFloat32()
	return out, nil
}

// synthVortex writes a Rankine-vortex wind component plus turbulence. The
// eye drifts with height to avoid a perfectly axisymmetric (and therefore
// unrealistically predictable) field.
func synthVortex(out *field.Field, g []float64, spec Spec) {
	nz, ny, nx := out.Dims[0], out.Dims[1], out.Dims[2]
	vmax := spec.Scale
	rc := 0.15 // eyewall radius in normalized units
	rng := rand.New(rand.NewSource(seedFor("vortex-track", spec.Name)))
	phase := rng.Float64() * 2 * math.Pi
	idx := 0
	for iz := 0; iz < nz; iz++ {
		z := 0.0
		if nz > 1 {
			z = float64(iz) / float64(nz-1)
		}
		// Eye center drifts on a slow helix with height.
		xc := 0.15 * math.Sin(2*math.Pi*z+phase)
		yc := 0.15 * math.Cos(2*math.Pi*z+phase)
		decay := 1 - 0.6*z // winds weaken aloft
		for iy := 0; iy < ny; iy++ {
			y := -1 + 2*float64(iy)/float64(ny-1)
			for ix := 0; ix < nx; ix++ {
				x := -1 + 2*float64(ix)/float64(nx-1)
				dx, dy := x-xc, y-yc
				r := math.Hypot(dx, dy)
				var vt float64
				if r < rc {
					vt = vmax * r / rc
				} else {
					vt = vmax * rc / r * math.Exp(-(r-rc)/0.8)
				}
				var base float64
				switch spec.Kind {
				case KindVortexU:
					if r > 0 {
						base = -vt * dy / r
					}
				case KindVortexV:
					if r > 0 {
						base = vt * dx / r
					}
				case KindVortexW:
					// Updraft ring at the eyewall, strongest mid-column.
					ring := math.Exp(-((r - rc) / 0.08) * ((r - rc) / 0.08))
					base = 0.15 * vmax * ring * math.Sin(math.Pi*z)
				}
				out.Data[idx] = decay*base + spec.Sigma*g[idx]
				idx++
			}
		}
	}
}
