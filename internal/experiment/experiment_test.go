package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// smallCfg shrinks the grids so the full experiment suite runs in seconds.
func smallCfg() Config {
	return Config{
		NYXDims:       []int{24, 24, 24},
		ATMDims:       []int{60, 120},
		HurricaneDims: []int{10, 40, 40},
	}
}

func TestConfigDatasets(t *testing.T) {
	cfg := smallCfg()
	ds := cfg.Datasets()
	if len(ds) != 3 {
		t.Fatalf("got %d data sets", len(ds))
	}
	if ds[0].Dims[0] != 24 || ds[1].Dims[0] != 60 || ds[2].Dims[0] != 10 {
		t.Fatal("dims overrides not applied")
	}
	if _, err := cfg.Dataset("ATM"); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Dataset("nope"); err == nil {
		t.Fatal("expected error for unknown data set")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(smallCfg())
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Name != "NYX" || rows[0].NumFields != 6 {
		t.Fatalf("row 0: %+v", rows[0])
	}
	if rows[1].PaperDims != "1800x3600" {
		t.Fatalf("ATM paper dims: %q", rows[1].PaperDims)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	out := buf.String()
	for _, want := range []string{"TABLE I", "NYX", "ATM", "Hurricane", "79"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	// Figure 1 synthesizes a single field, so it runs at the default ATM
	// scale: the 60 dB bin width matches the prediction-error scale of
	// the 180×360 grid (shrunken grids are rougher per pixel and flatten
	// the histogram).
	r, err := Figure1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bins) != 17 {
		t.Fatalf("got %d bins", len(r.Bins))
	}
	center := r.Bins[8]
	if center.Index != 0 {
		t.Fatalf("center bin index = %d", center.Index)
	}
	// The paper's Figure 1 shape: the distribution peaks at the center
	// and decays monotonically-ish toward the edges.
	if center.Percent < r.Bins[4].Percent || center.Percent < r.Bins[12].Percent {
		t.Fatalf("distribution not peaked at center: %+v", r.Bins)
	}
	if r.Bins[0].Percent > center.Percent/4 || r.Bins[16].Percent > center.Percent/4 {
		t.Fatalf("tails too heavy: %+v", r.Bins)
	}
	// Near-symmetry (paper: symmetric in a large majority of cases).
	for k := 1; k <= 8; k++ {
		l, rr := r.Bins[8-k].Percent, r.Bins[8+k].Percent
		if math.Abs(l-rr) > 0.5*(l+rr)+1 {
			t.Fatalf("asymmetric at ±%d: %g vs %g", k, l, rr)
		}
	}

	var buf bytes.Buffer
	RenderFigure1(&buf, r)
	if !strings.Contains(buf.String(), "FIGURE 1") {
		t.Fatal("render missing title")
	}
	buf.Reset()
	if err := CSVFigure1(&buf, r); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 18 { // header + 17 bins
		t.Fatalf("CSV has %d lines", lines)
	}
}

func TestRunFixedPSNRSingleField(t *testing.T) {
	cfg := smallCfg()
	ds, err := cfg.Dataset("ATM")
	if err != nil {
		t.Fatal(err)
	}
	f, err := ds.FieldByName("TS", 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunFixedPSNR(f, 70, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.Field != "TS" || run.Target != 70 {
		t.Fatalf("run metadata: %+v", run)
	}
	if math.Abs(run.Actual-70) > 2 {
		t.Fatalf("actual %g too far from 70", run.Actual)
	}
	if run.Ratio <= 1 || run.CompressMS < 0 {
		t.Fatalf("run stats: %+v", run)
	}
}

func TestFigure2SmallScale(t *testing.T) {
	r, err := Figure2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("got %d series", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Runs) != 79 {
			t.Fatalf("target %g: %d runs", s.Target, len(s.Runs))
		}
		// Every field lands within 1 dB below target (paper: most meet,
		// shortfalls are visually indistinguishable from the line).
		for _, run := range s.Runs {
			if run.Actual < s.Target-1 {
				t.Fatalf("target %g: %s fell to %g", s.Target, run.Field, run.Actual)
			}
		}
		if s.MeetWithinHalfDB < 0.9 {
			t.Fatalf("target %g: meet±0.5dB = %g", s.Target, s.MeetWithinHalfDB)
		}
	}
	var buf bytes.Buffer
	RenderFigure2(&buf, r)
	if !strings.Contains(buf.String(), "FIGURE 2") {
		t.Fatal("render missing title")
	}
	buf.Reset()
	RenderFigure2Fields(&buf, r)
	if !strings.Contains(buf.String(), "TS") {
		t.Fatal("per-field table missing fields")
	}
	buf.Reset()
	if err := CSVFigure2(&buf, r); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1+3*79 {
		t.Fatalf("CSV has %d lines", lines)
	}
}

// TestTable2Shape is the repository's core reproduction check: the
// Table II trend — averages track the target from above-or-near, and the
// deviation shrinks as the target grows — must hold at test scale.
func TestTable2Shape(t *testing.T) {
	r, err := Table2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 18 { // 3 datasets × 6 targets
		t.Fatalf("got %d cells", len(r.Cells))
	}
	for _, name := range []string{"NYX", "ATM", "Hurricane"} {
		low, okLow := r.Cell(name, 20)
		high, okHigh := r.Cell(name, 100)
		if !okLow || !okHigh {
			t.Fatalf("%s: missing cells", name)
		}
		// Low targets overshoot (peaked prediction errors), high targets
		// land within a fraction of a dB — the paper's 0.1–5.0 dB band.
		if low.Avg < low.Target-1 {
			t.Fatalf("%s @ 20: avg %g below target", name, low.Avg)
		}
		if math.Abs(high.Avg-high.Target) > 1 {
			t.Fatalf("%s @ 100: avg %g off target", name, high.Avg)
		}
		// Accuracy improves with the target: |avg−target| at 100 dB must
		// be no worse than at 20 dB.
		devLow := math.Abs(low.Avg - low.Target)
		devHigh := math.Abs(high.Avg - high.Target)
		if devHigh > devLow+0.5 {
			t.Fatalf("%s: deviation grew with target (%g -> %g)", name, devLow, devHigh)
		}
		// STDEV shrinks too.
		if high.Std > low.Std+0.5 {
			t.Fatalf("%s: stdev grew with target (%g -> %g)", name, low.Std, high.Std)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, r)
	if !strings.Contains(buf.String(), "TABLE II") {
		t.Fatal("render missing title")
	}
	buf.Reset()
	if err := CSVTable2(&buf, r); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 19 {
		t.Fatalf("CSV has %d lines", lines)
	}
}

func TestOverheadNegligible(t *testing.T) {
	rows, err := Overhead(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The paper's claim: bound derivation is negligible next to the
		// compression itself. Allow a loose 25% at tiny test scales.
		if r.OverheadPct > 25 {
			t.Fatalf("%s: overhead %.1f%% not negligible", r.Dataset, r.OverheadPct)
		}
		if r.Eq8OnlyNS > 100_000 {
			t.Fatalf("%s: Eq.8 alone took %d ns", r.Dataset, r.Eq8OnlyNS)
		}
	}
	var buf bytes.Buffer
	RenderOverhead(&buf, rows)
	if !strings.Contains(buf.String(), "OVERHEAD") {
		t.Fatal("render missing title")
	}
}

func TestBaselineNeedsMultipleIterations(t *testing.T) {
	rows, err := Baseline(smallCfg(), []float64{60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SearchIterations < 2 {
			t.Fatalf("%s: search converged in %d iterations — baseline trivial", r.Dataset, r.SearchIterations)
		}
		if math.Abs(r.FixedActual-60) > 5 {
			t.Fatalf("%s: fixed-PSNR landed at %g", r.Dataset, r.FixedActual)
		}
	}
	var buf bytes.Buffer
	RenderBaseline(&buf, rows)
	if !strings.Contains(buf.String(), "BASELINE") {
		t.Fatal("render missing title")
	}
}

func TestTransformExperimentHitsTargets(t *testing.T) {
	cells, err := TransformExperiment(smallCfg(), []float64{60})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if c.Avg < c.Target-1 {
			t.Fatalf("%s: transform avg %g fell below target %g", c.Dataset, c.Avg, c.Target)
		}
	}
	var buf bytes.Buffer
	RenderTransform(&buf, cells)
	if !strings.Contains(buf.String(), "Theorem 2") {
		t.Fatal("render missing title")
	}
}

func TestAblationExplainsOvershoot(t *testing.T) {
	rows, err := Ablation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The refined estimate can only raise the prediction (exact MSE
		// ≤ uniform-assumption MSE up to sampling noise).
		if r.RefinedPSNR < r.AssumedPSNR-0.2 {
			t.Fatalf("%s @ %g: refined %g below Eq.7 %g", r.Dataset, r.Target, r.RefinedPSNR, r.AssumedPSNR)
		}
		// Center-bin mass decreases with the target for a fixed field.
	}
	for _, name := range []string{"NYX", "ATM", "Hurricane"} {
		var prev float64 = 2
		for _, r := range rows {
			if r.Dataset != name {
				continue
			}
			if r.CenterBinMass > prev+0.01 {
				t.Fatalf("%s: center-bin mass grew with target", name)
			}
			prev = r.CenterBinMass
		}
	}
	var buf bytes.Buffer
	RenderAblation(&buf, rows)
	if !strings.Contains(buf.String(), "ABLATION") {
		t.Fatal("render missing title")
	}
}

func TestRatioSweepMonotone(t *testing.T) {
	cells, err := RatioSweep(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 18 {
		t.Fatalf("got %d cells", len(cells))
	}
	// Higher quality targets must cost bits: within a data set, the mean
	// bit rate is non-decreasing in the target.
	for _, name := range []string{"NYX", "ATM", "Hurricane"} {
		prev := -1.0
		for _, c := range cells {
			if c.Dataset != name {
				continue
			}
			if c.MeanBits < prev-0.05 {
				t.Fatalf("%s: bit rate fell from %g to %g as target grew", name, prev, c.MeanBits)
			}
			prev = c.MeanBits
		}
	}
	var buf bytes.Buffer
	RenderRatio(&buf, cells)
	if !strings.Contains(buf.String(), "RATE") {
		t.Fatal("render missing title")
	}
}

func TestMeanStdHelpers(t *testing.T) {
	if m, s := meanStd(nil); !math.IsNaN(m) || !math.IsNaN(s) {
		t.Fatal("empty meanStd should be NaN")
	}
	if m, s := meanStd([]float64{5}); m != 5 || s != 0 {
		t.Fatal("single-element meanStd")
	}
	m, s := meanStd([]float64{1, 2, 3})
	if math.Abs(m-2) > 1e-12 || math.Abs(s-1) > 1e-12 {
		t.Fatalf("meanStd = %g, %g", m, s)
	}
}

func TestWriteTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	writeTable(&buf, []string{"A", "LongHeader"}, [][]string{{"xxxxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestDecimationStudy(t *testing.T) {
	r, err := Decimation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 { // 3 decimation factors + 4 targets
		t.Fatalf("got %d rows", len(r.Rows))
	}
	// The reproduction claim: at comparable (or lower) storage,
	// fixed-PSNR compression of every snapshot beats decimation by a
	// wide margin. Compare decimate k=4 (8 bits) with the fixed-PSNR row
	// of nearest-but-not-higher storage.
	var dec4, fp60 DecimationRow
	for _, row := range r.Rows {
		switch row.Method {
		case "decimate k=4 + lerp":
			dec4 = row
		case "fixed-PSNR 60 dB, all snapshots":
			fp60 = row
		}
	}
	if dec4.Method == "" || fp60.Method == "" {
		t.Fatalf("rows missing: %+v", r.Rows)
	}
	if fp60.Bits > dec4.Bits*1.2 {
		t.Fatalf("fixed-PSNR 60 dB costs %g bits, decimation k=4 costs %g — not comparable", fp60.Bits, dec4.Bits)
	}
	if fp60.PSNR < dec4.PSNR+10 {
		t.Fatalf("fixed-PSNR (%g dB) should beat decimation (%g dB) by ≥10 dB at matched storage", fp60.PSNR, dec4.PSNR)
	}
	if fp60.Snapshots != 1 || dec4.Snapshots >= 0.5 {
		t.Fatalf("snapshot accounting wrong: %+v %+v", fp60, dec4)
	}
	// Decimation PSNR degrades with k.
	var prev float64 = math.Inf(1)
	for _, row := range r.Rows[:3] {
		if row.PSNR > prev {
			t.Fatalf("decimation PSNR should fall with k: %+v", r.Rows[:3])
		}
		prev = row.PSNR
	}
	var buf bytes.Buffer
	RenderDecimation(&buf, r)
	if !strings.Contains(buf.String(), "DECIMATION") {
		t.Fatal("render missing title")
	}
}

func TestCalibrationTightensLowTargets(t *testing.T) {
	cells, err := Calibration(smallCfg(), []float64{30})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		// Calibration must not be worse than plain beyond noise, and the
		// calibrated average must sit close above-or-at the target.
		if c.CalibDev > c.PlainDev+0.3 {
			t.Fatalf("%s @ %g: calibrated dev %g worse than plain %g",
				c.Dataset, c.Target, c.CalibDev, c.PlainDev)
		}
		if c.CalibAvg < c.Target-1 {
			t.Fatalf("%s @ %g: calibrated avg %g fell below target", c.Dataset, c.Target, c.CalibAvg)
		}
	}
	var buf bytes.Buffer
	RenderCalibration(&buf, cells)
	if !strings.Contains(buf.String(), "CALIBRATION") {
		t.Fatal("render missing title")
	}
}
