package experiment

import (
	"context"
	"fmt"
	"io"
	"time"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/core"
)

// OverheadRow quantifies the paper's "negligible overhead" claim for one
// field: the cost of the Eq. 8 bound derivation (including the value-range
// scan it needs) against the cost of one full compression.
type OverheadRow struct {
	Dataset     string
	Field       string
	PlanNS      int64   // value-range scan + Eq. 8
	Eq8OnlyNS   int64   // the closed-form arithmetic alone
	CompressNS  int64   // one full error-bounded compression
	OverheadPct float64 // 100·Plan/Compress
}

// Overhead measures the fixed-PSNR planning cost on the first field of
// each data set.
func Overhead(cfg Config) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, ds := range cfg.Datasets() {
		f, err := ds.Field(0, cfg.Workers)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		_, _, vr := f.ValueRange()
		plan, err := core.PlanFixedPSNR(80, vr)
		if err != nil {
			return nil, err
		}
		planNS := time.Since(start).Nanoseconds()

		// The pure Eq. 8 arithmetic, excluding the range scan a
		// compressor needs anyway. Loop to get above timer resolution.
		const iters = 1000
		start = time.Now()
		sink := 0.0
		for i := 0; i < iters; i++ {
			sink += core.RelBoundForPSNR(80 + float64(i%3))
		}
		eq8NS := time.Since(start).Nanoseconds() / iters
		_ = sink

		c, ok := codec.ByName("sz")
		if !ok {
			return nil, fmt.Errorf("experiment: sz codec not registered")
		}
		start = time.Now()
		if _, _, err := c.Compress(context.Background(), f, codec.Options{ErrorBound: plan.EbAbs, Workers: cfg.Workers}, nil); err != nil {
			return nil, err
		}
		compressNS := time.Since(start).Nanoseconds()

		rows = append(rows, OverheadRow{
			Dataset:     ds.Name,
			Field:       f.Name,
			PlanNS:      planNS,
			Eq8OnlyNS:   eq8NS,
			CompressNS:  compressNS,
			OverheadPct: 100 * float64(planNS) / float64(compressNS),
		})
	}
	return rows, nil
}

// RenderOverhead prints the overhead table.
func RenderOverhead(w io.Writer, rows []OverheadRow) {
	fmt.Fprintln(w, "OVERHEAD — fixed-PSNR bound derivation vs one compression (paper §IV: \"negligible\")")
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Dataset, r.Field,
			fmt.Sprintf("%.3f ms", float64(r.PlanNS)/1e6),
			fmt.Sprintf("%d ns", r.Eq8OnlyNS),
			fmt.Sprintf("%.1f ms", float64(r.CompressNS)/1e6),
			fmt.Sprintf("%.3f%%", r.OverheadPct),
		}
	}
	writeTable(w, []string{"Dataset", "Field", "plan (range+Eq.8)", "Eq.8 alone", "compression", "overhead"}, out)
}
