package experiment

import (
	"fmt"
	"io"
	"math"
)

// Table2Targets are the user-set PSNRs of the paper's Table II.
var Table2Targets = []float64{20, 40, 60, 80, 100, 120}

// PaperTable2 holds the AVG/STDEV pairs the paper reports, for
// side-by-side rendering and shape checks (EXPERIMENTS.md).
var PaperTable2 = map[string]map[float64][2]float64{
	"NYX": {
		20: {24.3, 1.82}, 40: {41.9, 2.32}, 60: {60.7, 0.74},
		80: {80.1, 0.05}, 100: {100.1, 0.07}, 120: {120.1, 0.01},
	},
	"ATM": {
		20: {21.9, 3.34}, 40: {40.9, 1.80}, 60: {60.2, 0.62},
		80: {80.1, 0.35}, 100: {100.2, 0.17}, 120: {120.2, 0.19},
	},
	"Hurricane": {
		20: {25.0, 6.52}, 40: {42.0, 3.97}, 60: {60.5, 0.74},
		80: {80.1, 0.32}, 100: {100.1, 0.39}, 120: {120.3, 0.63},
	},
}

// Table2Cell is the aggregate over one data set at one target.
type Table2Cell struct {
	Dataset string
	Target  float64
	Avg     float64 // average actual PSNR over fields
	Std     float64 // sample standard deviation over fields
	// Fields carries the per-field runs behind the aggregate.
	Fields []FieldRun
}

// Table2Result is the full reproduction of Table II.
type Table2Result struct {
	Cells []Table2Cell
}

// Cell looks up one aggregate.
func (r *Table2Result) Cell(dataset string, target float64) (Table2Cell, bool) {
	for _, c := range r.Cells {
		if c.Dataset == dataset && c.Target == target {
			return c, true
		}
	}
	return Table2Cell{}, false
}

// Table2 regenerates the paper's Table II: fixed-PSNR compression of
// every field of NYX, ATM, and Hurricane at user-set PSNRs
// 20..120 dB, reporting the average and standard deviation of the actual
// PSNRs per data set.
//
// Fields whose actual PSNR is +Inf (lossless reconstruction, possible for
// extremely sparse fields at low targets) are excluded from the moments
// and reported via the run list; the synthetic registries do not produce
// any at the default scale.
func Table2(cfg Config) (*Table2Result, error) {
	res := &Table2Result{}
	for _, ds := range cfg.Datasets() {
		fields, err := ds.Fields(cfg.Workers)
		if err != nil {
			return nil, err
		}
		for _, target := range Table2Targets {
			runs, err := RunDataset(ds, fields, target, cfg.Workers)
			if err != nil {
				return nil, err
			}
			var actuals []float64
			for _, r := range runs {
				if !math.IsInf(r.Actual, 0) {
					actuals = append(actuals, r.Actual)
				}
			}
			avg, std := meanStd(actuals)
			res.Cells = append(res.Cells, Table2Cell{
				Dataset: ds.Name,
				Target:  target,
				Avg:     avg,
				Std:     std,
				Fields:  runs,
			})
		}
	}
	return res, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// RenderTable2 prints the reproduction side by side with the paper's
// reported numbers.
func RenderTable2(w io.Writer, r *Table2Result) {
	fmt.Fprintln(w, "TABLE II — fixed-PSNR mode with SZ on NYX, ATM, and Hurricane")
	fmt.Fprintln(w, "(measured on synthetic stand-in data; paper values in parentheses)")
	header := []string{"User-set PSNR"}
	for _, name := range []string{"NYX", "ATM", "Hurricane"} {
		header = append(header, name+" AVG", name+" STDEV")
	}
	var rows [][]string
	for _, target := range Table2Targets {
		row := []string{fmtF(target, 0)}
		for _, name := range []string{"NYX", "ATM", "Hurricane"} {
			c, ok := r.Cell(name, target)
			if !ok {
				row = append(row, "-", "-")
				continue
			}
			paper := PaperTable2[name][target]
			row = append(row,
				fmt.Sprintf("%s (%s)", fmtF(c.Avg, 1), fmtF(paper[0], 1)),
				fmt.Sprintf("%s (%s)", fmtF(c.Std, 2), fmtF(paper[1], 2)),
			)
		}
		rows = append(rows, row)
	}
	writeTable(w, header, rows)
}

// CSVTable2 writes the aggregates as CSV.
func CSVTable2(w io.Writer, r *Table2Result) error {
	if _, err := fmt.Fprintln(w, "dataset,target_psnr,avg_actual,stdev_actual,paper_avg,paper_stdev"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		paper := PaperTable2[c.Dataset][c.Target]
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g,%g\n",
			c.Dataset, c.Target, c.Avg, c.Std, paper[0], paper[1]); err != nil {
			return err
		}
	}
	return nil
}
