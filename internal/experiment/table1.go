package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table1Row is one line of Table I: the data-set inventory.
type Table1Row struct {
	Name        string
	PaperDims   string
	PaperSizeGB float64
	SynthDims   string
	SynthSizeMB float64
	NumFields   int
	Examples    string
}

// Table1 builds the data-set inventory at the configured scale. No field
// synthesis happens; only registry metadata is consulted.
func Table1(cfg Config) []Table1Row {
	var rows []Table1Row
	for _, ds := range cfg.Datasets() {
		examples := make([]string, 0, 2)
		for _, s := range ds.Specs {
			examples = append(examples, s.Name)
			if len(examples) == 2 {
				break
			}
		}
		rows = append(rows, Table1Row{
			Name:        ds.Name,
			PaperDims:   dimsString(ds.PaperDims),
			PaperSizeGB: ds.PaperSizeGB,
			SynthDims:   dimsString(ds.Dims),
			SynthSizeMB: float64(ds.SizeBytes()) / (1 << 20),
			NumFields:   ds.NumFields(),
			Examples:    strings.Join(examples, ", "),
		})
	}
	return rows
}

// RenderTable1 prints the inventory in the shape of the paper's Table I,
// with the synthetic-scale columns alongside the original ones.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "TABLE I — data sets (paper originals vs synthetic stand-ins)")
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Name,
			r.PaperDims,
			fmt.Sprintf("%d", r.NumFields),
			fmt.Sprintf("%.1f GB", r.PaperSizeGB),
			r.SynthDims,
			fmt.Sprintf("%.1f MB", r.SynthSizeMB),
			r.Examples,
		}
	}
	writeTable(w, []string{"Dataset", "Paper dim.", "#Fields", "Paper size", "Synth dim.", "Synth size", "Example fields"}, out)
}

func dimsString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return strings.Join(parts, "x")
}
