// Package experiment regenerates every table and figure of the paper's
// evaluation (Table I, Figure 1, Figure 2, Table II) plus the extension
// studies listed in DESIGN.md, on the synthetic stand-in data sets of
// internal/datagen. Each experiment returns plain data and renders to a
// writer, so the same code backs the CLI (cmd/fpsz-bench), the integration
// tests, and the benchmark harness.
package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"fixedpsnr"
	"fixedpsnr/internal/datagen"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/stats"
)

// Config scales and parallelizes the experiments.
type Config struct {
	// NYXDims, ATMDims, HurricaneDims override the default synthesis
	// grids (nil keeps the laptop-scale defaults).
	NYXDims, ATMDims, HurricaneDims []int
	// Workers bounds concurrency (0 = all CPUs).
	Workers int
}

// Datasets instantiates the three registries at the configured scale.
func (c Config) Datasets() []*datagen.Dataset {
	return []*datagen.Dataset{
		datagen.NYX(c.NYXDims),
		datagen.ATM(c.ATMDims),
		datagen.Hurricane(c.HurricaneDims),
	}
}

// Dataset returns one registry by name at the configured scale.
func (c Config) Dataset(name string) (*datagen.Dataset, error) {
	for _, d := range c.Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("experiment: unknown data set %q", name)
}

// FieldRun is the outcome of one fixed-PSNR compression of one field.
type FieldRun struct {
	Field      string
	Target     float64 // requested PSNR (dB)
	Actual     float64 // measured PSNR after decompression (dB)
	Ratio      float64 // compression ratio
	BitRate    float64 // bits per value
	CompressMS float64 // wall time of the compression call
}

// RunFixedPSNR compresses one field at the target PSNR with the public
// API, decompresses, and measures the actual PSNR.
func RunFixedPSNR(f *field.Field, target float64, workers int) (FieldRun, error) {
	start := time.Now()
	blob, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: target,
		Workers:    workers,
	})
	elapsed := time.Since(start)
	if err != nil {
		return FieldRun{}, fmt.Errorf("experiment: %s @ %g dB: %w", f.Name, target, err)
	}
	g, _, err := fixedpsnr.Decompress(blob)
	if err != nil {
		return FieldRun{}, fmt.Errorf("experiment: %s @ %g dB: %w", f.Name, target, err)
	}
	d := stats.Compare(f.Data, g.Data)
	return FieldRun{
		Field:      f.Name,
		Target:     target,
		Actual:     d.PSNR,
		Ratio:      res.Ratio,
		BitRate:    res.BitRate,
		CompressMS: float64(elapsed.Microseconds()) / 1000,
	}, nil
}

// RunDataset compresses every field of a data set at one target PSNR,
// parallelizing across fields.
func RunDataset(ds *datagen.Dataset, fields []*field.Field, target float64, workers int) ([]FieldRun, error) {
	runs := make([]FieldRun, len(fields))
	err := parallel.ForEach(len(fields), workers, func(i int) error {
		r, err := RunFixedPSNR(fields[i], target, 1)
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", ds.Name, err)
	}
	return runs, nil
}

// writeTable renders a simple space-padded table.
func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtF renders a float with the given decimals, using "inf" for
// infinities.
func fmtF(v float64, decimals int) string {
	return strings.TrimSpace(fmt.Sprintf("%*.*f", 0, decimals, v))
}
