package experiment

import (
	"fmt"
	"io"
	"math"

	"fixedpsnr"
	"fixedpsnr/internal/datagen"
	"fixedpsnr/internal/field"
)

// DecimationRow is one storage strategy in the temporal-decimation study:
// either HACC-style "keep every k-th snapshot" or fixed-PSNR compression
// of every snapshot, at the storage it actually consumes.
type DecimationRow struct {
	Method string  // "decimate k=4" or "fixed-PSNR 60 dB"
	Bits   float64 // stored bits per original value
	PSNR   float64 // pooled PSNR of the reconstructed series
	// Snapshots is the fraction of time steps individually represented
	// (decimation loses the skipped ones; compression keeps all).
	Snapshots float64
}

// DecimationResult is the full study.
type DecimationResult struct {
	Steps int
	Dims  []int
	Rows  []DecimationRow
}

// Decimation reproduces the introduction's motivating trade-off: HACC
// controls data volume by dumping every k-th snapshot, which destroys
// temporal continuity; error-controlled lossy compression of *every*
// snapshot spends the same storage on bounded pointwise loss instead.
// The study reconstructs skipped snapshots by linear interpolation in
// time (the best a decimated archive can do) and compares pooled PSNR at
// matched storage.
func Decimation(cfg Config) (*DecimationResult, error) {
	const steps = 32
	dims := []int{96, 192}
	series, err := datagen.TimeSeries(dims, steps, datagen.TimeSeriesOptions{
		Beta:    3.4,
		Rho:     0.9,
		Seed:    12345,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}

	res := &DecimationResult{Steps: steps, Dims: dims}

	// Pooled value range over the whole series (PSNR baseline).
	vrLo, vrHi := math.Inf(1), math.Inf(-1)
	for _, f := range series {
		lo, hi, _ := f.ValueRange()
		if lo < vrLo {
			vrLo = lo
		}
		if hi > vrHi {
			vrHi = hi
		}
	}
	vr := vrHi - vrLo
	n := series[0].Len()

	pooledPSNR := func(recon []*field.Field) float64 {
		var sumSq float64
		for t := range series {
			for i := range series[t].Data {
				d := series[t].Data[i] - recon[t].Data[i]
				sumSq += d * d
			}
		}
		mse := sumSq / float64(steps*n)
		if mse == 0 {
			return math.Inf(1)
		}
		return -10*math.Log10(mse) + 20*math.Log10(vr)
	}

	// --- HACC-style decimation ----------------------------------------
	for _, k := range []int{2, 4, 8} {
		recon := make([]*field.Field, steps)
		kept := 0
		for t := 0; t < steps; t++ {
			if t%k == 0 {
				recon[t] = series[t]
				kept++
			}
		}
		for t := 0; t < steps; t++ {
			if recon[t] != nil {
				continue
			}
			t0 := (t / k) * k
			t1 := t0 + k
			if t1 >= steps {
				recon[t] = recon[t0]
				continue
			}
			w := float64(t-t0) / float64(k)
			g := field.New(series[t].Name, series[t].Precision, dims...)
			for i := range g.Data {
				g.Data[i] = (1-w)*series[t0].Data[i] + w*series[t1].Data[i]
			}
			recon[t] = g
		}
		res.Rows = append(res.Rows, DecimationRow{
			Method:    fmt.Sprintf("decimate k=%d + lerp", k),
			Bits:      32 * float64(kept) / float64(steps),
			PSNR:      pooledPSNR(recon),
			Snapshots: float64(kept) / float64(steps),
		})
	}

	// --- Fixed-PSNR compression of every snapshot ----------------------
	for _, target := range []float64{40, 60, 80, 100} {
		recon := make([]*field.Field, steps)
		var totalBits float64
		for t, f := range series {
			stream, r, err := fixedpsnr.Compress(f, fixedpsnr.Options{
				Mode:       fixedpsnr.ModePSNR,
				TargetPSNR: target,
				Workers:    cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			g, _, err := fixedpsnr.Decompress(stream)
			if err != nil {
				return nil, err
			}
			recon[t] = g
			totalBits += r.BitRate
		}
		res.Rows = append(res.Rows, DecimationRow{
			Method:    fmt.Sprintf("fixed-PSNR %g dB, all snapshots", target),
			Bits:      totalBits / float64(steps),
			PSNR:      pooledPSNR(recon),
			Snapshots: 1,
		})
	}
	return res, nil
}

// RenderDecimation prints the study.
func RenderDecimation(w io.Writer, r *DecimationResult) {
	fmt.Fprintf(w, "DECIMATION — temporal decimation (the HACC workaround) vs fixed-PSNR compression\n")
	fmt.Fprintf(w, "(%d snapshots of a %v field; pooled PSNR over the whole series)\n", r.Steps, r.Dims)
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Method,
			fmt.Sprintf("%.2f", row.Bits),
			fmtF(row.PSNR, 1),
			fmt.Sprintf("%.0f%%", 100*row.Snapshots),
		}
	}
	writeTable(w, []string{"Method", "bits/value", "pooled PSNR (dB)", "time steps kept"}, rows)
	fmt.Fprintln(w, "(at matched storage, compressing every snapshot dominates decimation and keeps the full time axis)")
}
