package experiment

import (
	"fmt"
	"io"
	"math"

	"fixedpsnr"
	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/stats"
)

// FixedRatioCell summarizes the FRaZ-style fixed-ratio mode on one data
// set at one target ratio: how close the steered ratio lands, how many
// compression passes the solver needed, and the quality that fell out.
type FixedRatioCell struct {
	Dataset  string
	Target   float64
	Achieved float64 // mean achieved ratio
	DevPct   float64 // mean |achieved − target| / target, percent
	Passes   float64 // mean compression passes consumed
	PSNR     float64 // mean decompressed PSNR at the settled bound
}

// FixedRatio steers every field of every data set to the target
// compression ratios and reports the landing accuracy — the fixed-ratio
// counterpart of the Calibration experiment.
func FixedRatio(cfg Config, targets []float64) ([]FixedRatioCell, error) {
	if len(targets) == 0 {
		targets = []float64{8, 16, 32}
	}
	var cells []FixedRatioCell
	for _, ds := range cfg.Datasets() {
		fields, err := ds.Fields(cfg.Workers)
		if err != nil {
			return nil, err
		}
		for _, target := range targets {
			type outcome struct {
				achieved, passes, psnr float64
				ok                     bool
			}
			results := make([]outcome, len(fields))
			err := parallel.ForEach(len(fields), cfg.Workers, func(i int) error {
				f := fields[i]
				blob, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
					Mode:        fixedpsnr.ModeRatio,
					TargetRatio: target,
					Workers:     1,
				})
				if err != nil {
					return err
				}
				g, _, err := fixedpsnr.Decompress(blob)
				if err != nil {
					return err
				}
				results[i] = outcome{
					achieved: res.Ratio,
					passes:   float64(res.Passes),
					psnr:     stats.Compare(f.Data, g.Data).PSNR,
					ok:       true,
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: fixedratio %s @ %g: %w", ds.Name, target, err)
			}
			cell := FixedRatioCell{Dataset: ds.Name, Target: target}
			n := 0.0
			for _, r := range results {
				if !r.ok || math.IsInf(r.psnr, 0) {
					continue
				}
				cell.Achieved += r.achieved
				cell.DevPct += 100 * math.Abs(r.achieved-target) / target
				cell.Passes += r.passes
				cell.PSNR += r.psnr
				n++
			}
			if n > 0 {
				cell.Achieved /= n
				cell.DevPct /= n
				cell.Passes /= n
				cell.PSNR /= n
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// RenderFixedRatio prints the fixed-ratio accuracy table.
func RenderFixedRatio(w io.Writer, cells []FixedRatioCell) {
	fmt.Fprintln(w, "FIXED-RATIO — FRaZ-style mode: bound steered to a target compression ratio")
	out := make([][]string, len(cells))
	for i, c := range cells {
		out[i] = []string{
			c.Dataset, fmtF(c.Target, 0),
			fmtF(c.Achieved, 2), fmtF(c.DevPct, 1),
			fmtF(c.Passes, 1), fmtF(c.PSNR, 1),
		}
	}
	writeTable(w, []string{
		"Dataset", "Target",
		"achieved", "|dev| %",
		"passes", "PSNR dB",
	}, out)
	fmt.Fprintln(w, "(the generic Drive loop lands each field within the ratio acceptance band; PSNR is whatever quality that ratio buys)")
}
