package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"

	"fixedpsnr/internal/core"
	"fixedpsnr/internal/predictor"
	"fixedpsnr/internal/stats"
)

// Figure1Bin is one quantization bin of the prediction-error histogram.
type Figure1Bin struct {
	// Index is the signed bin index q (0 = center bin around zero).
	Index int
	// Center is the bin's midpoint q·δ in data units.
	Center float64
	// Percent is the share of prediction errors landing in the bin.
	Percent float64
}

// Figure1Result is the distribution of first-phase SZ prediction errors
// on one ATM field, overlaid with the uniform quantization bins — the
// paper's Figure 1.
type Figure1Result struct {
	Field      string
	TargetPSNR float64
	Delta      float64 // quantization bin width δ = 2·ebabs
	Bins       []Figure1Bin
	// InRange is the fraction of errors covered by the plotted bins.
	InRange float64
}

// Figure1 regenerates the paper's Figure 1: it synthesizes a smooth ATM
// field (surface temperature), computes the Lorenzo prediction errors, and
// bins them into the uniform quantization bins of a mid-quality target.
// At 60 dB the bin width is comparable to the prediction-error scale,
// which reproduces the paper's plot: a symmetric peaked distribution that
// tapers to zero within a few bins of the center.
func Figure1(cfg Config) (*Figure1Result, error) {
	const fieldName = "TS"
	const target = 60.0
	const halfBins = 8 // plot q ∈ [−8, 8] like the paper's ±n window

	ds, err := cfg.Dataset("ATM")
	if err != nil {
		return nil, err
	}
	f, err := ds.FieldByName(fieldName, cfg.Workers)
	if err != nil {
		return nil, err
	}
	_, _, vr := f.ValueRange()
	plan, err := core.PlanFixedPSNR(target, vr)
	if err != nil {
		return nil, err
	}
	delta := 2 * plan.EbAbs

	errs := predictor.Errors(predictor.ForDims(f.Dims), f.Data)
	lo := -(float64(halfBins) + 0.5) * delta
	hi := (float64(halfBins) + 0.5) * delta
	h, err := stats.NewHistogram(lo, hi, 2*halfBins+1)
	if err != nil {
		return nil, err
	}
	h.AddAll(errs)

	res := &Figure1Result{
		Field:      f.Name,
		TargetPSNR: target,
		Delta:      delta,
		InRange:    h.InRangeFraction(),
	}
	for i := 0; i < 2*halfBins+1; i++ {
		q := i - halfBins
		res.Bins = append(res.Bins, Figure1Bin{
			Index:   q,
			Center:  float64(q) * delta,
			Percent: 100 * h.Fraction(i),
		})
	}
	return res, nil
}

// RenderFigure1 prints the histogram as an ASCII bar chart in the shape
// of the paper's Figure 1.
func RenderFigure1(w io.Writer, r *Figure1Result) {
	fmt.Fprintf(w, "FIGURE 1 — distribution of SZ prediction errors on ATM field %s\n", r.Field)
	fmt.Fprintf(w, "uniform quantization bins of width delta=%.3g (target %g dB); %.2f%% of errors in plotted window\n",
		r.Delta, r.TargetPSNR, 100*r.InRange)
	maxPct := 0.0
	for _, b := range r.Bins {
		if b.Percent > maxPct {
			maxPct = b.Percent
		}
	}
	for _, b := range r.Bins {
		barLen := 0
		if maxPct > 0 {
			barLen = int(math.Round(50 * b.Percent / maxPct))
		}
		fmt.Fprintf(w, "q=%+3d  %6.2f%%  %s\n", b.Index, b.Percent, strings.Repeat("#", barLen))
	}
}

// CSVFigure1 writes the histogram as CSV (bin index, center, percent).
func CSVFigure1(w io.Writer, r *Figure1Result) error {
	if _, err := fmt.Fprintln(w, "bin_index,bin_center,percent"); err != nil {
		return err
	}
	for _, b := range r.Bins {
		if _, err := fmt.Fprintf(w, "%d,%g,%g\n", b.Index, b.Center, b.Percent); err != nil {
			return err
		}
	}
	return nil
}
