package experiment

import (
	"fmt"
	"io"
	"math"

	"fixedpsnr"
	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/stats"
)

// CalibrationCell compares the plain fixed-PSNR mode against the
// calibrated mode (the paper's stated future work: better accuracy at low
// compression-quality demands) on one data set at one target.
type CalibrationCell struct {
	Dataset    string
	Target     float64
	PlainAvg   float64 // avg actual PSNR, Eq.-8 bound
	PlainDev   float64 // avg |actual − target|
	CalibAvg   float64 // avg actual PSNR, calibrated bound
	CalibDev   float64 // avg |actual − target|
	CalibRatio float64 // mean compression ratio in calibrated mode
}

// Calibration runs both modes over every field of every data set at the
// given (low) targets.
func Calibration(cfg Config, targets []float64) ([]CalibrationCell, error) {
	if len(targets) == 0 {
		targets = []float64{20, 30, 40}
	}
	var cells []CalibrationCell
	for _, ds := range cfg.Datasets() {
		fields, err := ds.Fields(cfg.Workers)
		if err != nil {
			return nil, err
		}
		for _, target := range targets {
			type pair struct{ plain, calib, ratio float64 }
			results := make([]pair, len(fields))
			err := parallel.ForEach(len(fields), cfg.Workers, func(i int) error {
				f := fields[i]
				run := func(calibrated bool) (float64, float64, error) {
					blob, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
						Mode:       fixedpsnr.ModePSNR,
						TargetPSNR: target,
						Calibrated: calibrated,
						Workers:    1,
					})
					if err != nil {
						return 0, 0, err
					}
					g, _, err := fixedpsnr.Decompress(blob)
					if err != nil {
						return 0, 0, err
					}
					return stats.Compare(f.Data, g.Data).PSNR, res.Ratio, nil
				}
				plain, _, err := run(false)
				if err != nil {
					return err
				}
				calib, ratio, err := run(true)
				if err != nil {
					return err
				}
				results[i] = pair{plain: plain, calib: calib, ratio: ratio}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: calibration %s @ %g: %w", ds.Name, target, err)
			}
			cell := CalibrationCell{Dataset: ds.Name, Target: target}
			n := 0.0
			for _, p := range results {
				if math.IsInf(p.plain, 0) || math.IsInf(p.calib, 0) {
					continue
				}
				cell.PlainAvg += p.plain
				cell.PlainDev += math.Abs(p.plain - target)
				cell.CalibAvg += p.calib
				cell.CalibDev += math.Abs(p.calib - target)
				cell.CalibRatio += p.ratio
				n++
			}
			if n > 0 {
				cell.PlainAvg /= n
				cell.PlainDev /= n
				cell.CalibAvg /= n
				cell.CalibDev /= n
				cell.CalibRatio /= n
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// RenderCalibration prints the comparison.
func RenderCalibration(w io.Writer, cells []CalibrationCell) {
	fmt.Fprintln(w, "CALIBRATION — future-work mode: empirical-MSE bin calibration at low targets")
	out := make([][]string, len(cells))
	for i, c := range cells {
		out[i] = []string{
			c.Dataset, fmtF(c.Target, 0),
			fmtF(c.PlainAvg, 1), fmtF(c.PlainDev, 2),
			fmtF(c.CalibAvg, 1), fmtF(c.CalibDev, 2),
			fmtF(c.CalibRatio, 1),
		}
	}
	writeTable(w, []string{
		"Dataset", "Target",
		"plain AVG", "plain |dev|",
		"calibrated AVG", "calibrated |dev|",
		"calib ratio",
	}, out)
	fmt.Fprintln(w, "(calibration shrinks the low-target overshoot of Table II's 20–40 dB rows and raises the ratio)")
}
