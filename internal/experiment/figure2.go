package experiment

import (
	"fmt"
	"io"
	"math"
)

// Figure2Targets are the user-set PSNRs of the paper's Figure 2 panels.
var Figure2Targets = []float64{40, 80, 120}

// Figure2Series holds one panel of Figure 2: the actual PSNR of every ATM
// field at one user-set PSNR.
type Figure2Series struct {
	Target float64
	Runs   []FieldRun
	// MeetFraction is the share of fields whose actual PSNR is at least
	// the user-set PSNR (the paper's strict "meet" criterion).
	MeetFraction float64
	// MeetWithinHalfDB relaxes the criterion to actual ≥ target − 0.5 dB
	// (the resolution visible in the paper's plots). Synthetic GRF
	// fields have near-uniform within-bin error distributions, so about
	// half land a few hundredths of a dB below target where the paper's
	// real fields land just above; this metric makes the comparison
	// meaningful.
	MeetWithinHalfDB float64
	// MaxBelow is the largest shortfall (target − actual) over fields
	// that missed, 0 if none missed.
	MaxBelow float64
}

// Figure2Result aggregates the three panels.
type Figure2Result struct {
	Series []Figure2Series
}

// Figure2 regenerates the paper's Figure 2: fixed-PSNR compression of all
// 79 ATM fields at user-set PSNRs of 40, 80, and 120 dB.
func Figure2(cfg Config) (*Figure2Result, error) {
	ds, err := cfg.Dataset("ATM")
	if err != nil {
		return nil, err
	}
	fields, err := ds.Fields(cfg.Workers)
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{}
	for _, target := range Figure2Targets {
		runs, err := RunDataset(ds, fields, target, cfg.Workers)
		if err != nil {
			return nil, err
		}
		s := Figure2Series{Target: target, Runs: runs}
		met, metTol := 0, 0
		for _, r := range runs {
			if r.Actual >= target {
				met++
			} else if miss := target - r.Actual; miss > s.MaxBelow {
				s.MaxBelow = miss
			}
			if r.Actual >= target-0.5 {
				metTol++
			}
		}
		s.MeetFraction = float64(met) / float64(len(runs))
		s.MeetWithinHalfDB = float64(metTol) / float64(len(runs))
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// RenderFigure2 prints per-panel summaries and a compact per-field strip
// for each user-set PSNR.
func RenderFigure2(w io.Writer, r *Figure2Result) {
	fmt.Fprintln(w, "FIGURE 2 — fixed-PSNR mode on all ATM data fields")
	for _, s := range r.Series {
		min, max := math.Inf(1), math.Inf(-1)
		var sum float64
		for _, run := range s.Runs {
			if run.Actual < min {
				min = run.Actual
			}
			if run.Actual > max {
				max = run.Actual
			}
			sum += run.Actual
		}
		fmt.Fprintf(w, "\n(user-set PSNR = %g dB)  fields=%d  actual: min=%.1f avg=%.1f max=%.1f  meet=%0.1f%%  meet±0.5dB=%0.1f%%  worst shortfall=%.2f dB\n",
			s.Target, len(s.Runs), min, sum/float64(len(s.Runs)), max, 100*s.MeetFraction, 100*s.MeetWithinHalfDB, s.MaxBelow)
		// Strip chart: one character per field ('*' ≥ target, '.' below).
		fmt.Fprint(w, "  ")
		for _, run := range s.Runs {
			if run.Actual >= s.Target {
				fmt.Fprint(w, "*")
			} else {
				fmt.Fprint(w, ".")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n(paper: actual PSNRs track the user-set line with >90% of ATM fields meeting the target)")
}

// RenderFigure2Fields prints the full per-field table (the raw points of
// the paper's scatter plots).
func RenderFigure2Fields(w io.Writer, r *Figure2Result) {
	header := []string{"Field"}
	for _, s := range r.Series {
		header = append(header, fmt.Sprintf("actual@%gdB", s.Target))
	}
	if len(r.Series) == 0 || len(r.Series[0].Runs) == 0 {
		return
	}
	rows := make([][]string, len(r.Series[0].Runs))
	for i := range rows {
		row := []string{r.Series[0].Runs[i].Field}
		for _, s := range r.Series {
			row = append(row, fmtF(s.Runs[i].Actual, 2))
		}
		rows[i] = row
	}
	writeTable(w, header, rows)
}

// CSVFigure2 writes all panels as CSV (field, target, actual, ratio).
func CSVFigure2(w io.Writer, r *Figure2Result) error {
	if _, err := fmt.Fprintln(w, "field,target_psnr,actual_psnr,ratio"); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, run := range s.Runs {
			if _, err := fmt.Fprintf(w, "%s,%g,%g,%g\n", run.Field, run.Target, run.Actual, run.Ratio); err != nil {
				return err
			}
		}
	}
	return nil
}
