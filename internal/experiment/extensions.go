package experiment

import (
	"fmt"
	"io"
	"math"
	"time"

	"fixedpsnr"
	"fixedpsnr/internal/core"
	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/predictor"
	"fixedpsnr/internal/stats"
)

// --- Extension 1: fixed-PSNR on the orthogonal-transform compressor ----

// TransformCell aggregates the transform-pipeline fixed-PSNR accuracy on
// one data set at one target (Theorem 2 in action; the paper states the
// theorem but evaluates only the SZ pipeline).
type TransformCell struct {
	Dataset string
	Target  float64
	Avg     float64
	Std     float64
}

// TransformExperiment runs fixed-PSNR compression with the orthonormal
// DCT pipeline over every field of every data set at the given targets.
func TransformExperiment(cfg Config, targets []float64) ([]TransformCell, error) {
	if len(targets) == 0 {
		targets = []float64{40, 80, 120}
	}
	var cells []TransformCell
	for _, ds := range cfg.Datasets() {
		fields, err := ds.Fields(cfg.Workers)
		if err != nil {
			return nil, err
		}
		for _, target := range targets {
			actuals := make([]float64, len(fields))
			err := parallel.ForEach(len(fields), cfg.Workers, func(i int) error {
				f := fields[i]
				blob, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
					Mode:       fixedpsnr.ModePSNR,
					TargetPSNR: target,
					Compressor: fixedpsnr.CompressorTransform,
					Workers:    1,
				})
				if err != nil {
					return err
				}
				g, _, err := fixedpsnr.Decompress(blob)
				if err != nil {
					return err
				}
				actuals[i] = stats.Compare(f.Data, g.Data).PSNR
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: transform %s @ %g: %w", ds.Name, target, err)
			}
			var finite []float64
			for _, a := range actuals {
				if !math.IsInf(a, 0) {
					finite = append(finite, a)
				}
			}
			avg, std := meanStd(finite)
			cells = append(cells, TransformCell{Dataset: ds.Name, Target: target, Avg: avg, Std: std})
		}
	}
	return cells, nil
}

// RenderTransform prints the transform-pipeline accuracy table.
func RenderTransform(w io.Writer, cells []TransformCell) {
	fmt.Fprintln(w, "EXTENSION — fixed-PSNR with the orthonormal-DCT compressor (Theorem 2)")
	out := make([][]string, len(cells))
	for i, c := range cells {
		out[i] = []string{c.Dataset, fmtF(c.Target, 0), fmtF(c.Avg, 1), fmtF(c.Std, 2)}
	}
	writeTable(w, []string{"Dataset", "User-set PSNR", "AVG actual", "STDEV"}, out)
}

// --- Extension 2: estimator ablation ------------------------------------

// AblationRow explains the Table II error trend for one field and target:
// the uniform-within-bin assumption (δ²/12) versus the exact quantization
// MSE of the real prediction-error distribution.
type AblationRow struct {
	Dataset string
	Field   string
	Target  float64
	// AssumedPSNR is the Eq. 7 estimate (what fixed-PSNR promises).
	AssumedPSNR float64
	// RefinedPSNR replaces δ²/12 with the exact expected quantization
	// MSE of the first-phase prediction errors.
	RefinedPSNR float64
	// ActualPSNR is the measured end-to-end value.
	ActualPSNR float64
	// CenterBinMass is the share of prediction errors in the central
	// bin — the quantity that grows as targets drop and drives the
	// overshoot.
	CenterBinMass float64
}

// Ablation computes the comparison on the first field of each data set
// across the Table II targets.
func Ablation(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, ds := range cfg.Datasets() {
		f, err := ds.Field(0, cfg.Workers)
		if err != nil {
			return nil, err
		}
		_, _, vr := f.ValueRange()
		errs := predictor.Errors(predictor.ForDims(f.Dims), f.Data)
		for _, target := range Table2Targets {
			plan, err := core.PlanFixedPSNR(target, vr)
			if err != nil {
				return nil, err
			}
			delta := 2 * plan.EbAbs
			exactMSE, _ := core.QuantizationMSE(errs, delta, 32768)
			refined := math.Inf(1)
			if exactMSE > 0 {
				refined = -10*math.Log10(exactMSE) + 20*math.Log10(vr)
			}
			center := 0
			for _, e := range errs {
				if math.Abs(e) <= delta/2 {
					center++
				}
			}
			run, err := RunFixedPSNR(f, target, cfg.Workers)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Dataset:       ds.Name,
				Field:         f.Name,
				Target:        target,
				AssumedPSNR:   core.EstimatePSNRFromAbsBound(vr, plan.EbAbs),
				RefinedPSNR:   refined,
				ActualPSNR:    run.Actual,
				CenterBinMass: float64(center) / float64(len(errs)),
			})
		}
	}
	return rows, nil
}

// RenderAblation prints the estimator ablation.
func RenderAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "ABLATION — why low targets overshoot: uniform-within-bin assumption vs exact quantization MSE")
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Dataset, r.Field, fmtF(r.Target, 0),
			fmtF(r.AssumedPSNR, 1), fmtF(r.RefinedPSNR, 1), fmtF(r.ActualPSNR, 1),
			fmt.Sprintf("%.1f%%", 100*r.CenterBinMass),
		}
	}
	writeTable(w, []string{"Dataset", "Field", "Target", "Eq.7 estimate", "refined estimate", "actual", "center-bin mass"}, out)
}

// --- Extension 3: rate/ratio vs target ----------------------------------

// RatioCell is the mean compression ratio and bit rate of a data set at
// one target PSNR.
type RatioCell struct {
	Dataset    string
	Target     float64
	MeanRatio  float64
	MeanBits   float64 // bits per value
	CompressMS float64 // mean per-field compression time
}

// RatioSweep measures compression ratio and bit rate across the Table II
// targets for every data set.
func RatioSweep(cfg Config) ([]RatioCell, error) {
	var cells []RatioCell
	for _, ds := range cfg.Datasets() {
		fields, err := ds.Fields(cfg.Workers)
		if err != nil {
			return nil, err
		}
		for _, target := range Table2Targets {
			start := time.Now()
			runs, err := RunDataset(ds, fields, target, cfg.Workers)
			if err != nil {
				return nil, err
			}
			elapsed := float64(time.Since(start).Microseconds()) / 1000
			var ratio, bits float64
			for _, r := range runs {
				ratio += r.Ratio
				bits += r.BitRate
			}
			n := float64(len(runs))
			cells = append(cells, RatioCell{
				Dataset:    ds.Name,
				Target:     target,
				MeanRatio:  ratio / n,
				MeanBits:   bits / n,
				CompressMS: elapsed / n,
			})
		}
	}
	return cells, nil
}

// RenderRatio prints the rate table.
func RenderRatio(w io.Writer, cells []RatioCell) {
	fmt.Fprintln(w, "RATE — compression ratio / bit rate vs user-set PSNR")
	out := make([][]string, len(cells))
	for i, c := range cells {
		out[i] = []string{
			c.Dataset, fmtF(c.Target, 0),
			fmtF(c.MeanRatio, 1), fmtF(c.MeanBits, 2),
			fmt.Sprintf("%.1f ms", c.CompressMS),
		}
	}
	writeTable(w, []string{"Dataset", "User-set PSNR", "mean ratio", "bits/value", "mean time/field"}, out)
}
