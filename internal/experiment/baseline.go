package experiment

import (
	"context"
	"fmt"
	"io"
	"time"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/core"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/stats"
	_ "fixedpsnr/internal/sz" // register the sz codec
)

// BaselineRow compares the paper's motivating workflow — iteratively
// re-running the compressor until the measured PSNR lands near the target
// — against the one-shot fixed-PSNR mode, on one field.
type BaselineRow struct {
	Dataset string
	Field   string
	Target  float64

	// Iterative search (the traditional workflow).
	SearchIterations int
	SearchMS         float64
	SearchActual     float64

	// Fixed-PSNR mode (one compression).
	FixedMS     float64
	FixedActual float64

	// Speedup is SearchMS / FixedMS.
	Speedup float64
}

// Baseline runs the comparison on the first field of each data set at the
// given targets.
func Baseline(cfg Config, targets []float64) ([]BaselineRow, error) {
	if len(targets) == 0 {
		targets = []float64{40, 80}
	}
	var rows []BaselineRow
	for _, ds := range cfg.Datasets() {
		f, err := ds.Field(0, cfg.Workers)
		if err != nil {
			return nil, err
		}
		_, _, vr := f.ValueRange()
		for _, target := range targets {
			probe := func(ebRel float64) (float64, error) {
				return probePSNR(f, ebRel*vr, cfg.Workers)
			}
			start := time.Now()
			sr, err := core.IterativeSearch(target, 0.5, 40, probe)
			searchMS := float64(time.Since(start).Microseconds()) / 1000
			if err != nil {
				return nil, fmt.Errorf("experiment: baseline %s @ %g: %w", f.Name, target, err)
			}

			start = time.Now()
			run, err := RunFixedPSNR(f, target, cfg.Workers)
			fixedMS := float64(time.Since(start).Microseconds()) / 1000
			if err != nil {
				return nil, err
			}

			row := BaselineRow{
				Dataset:          ds.Name,
				Field:            f.Name,
				Target:           target,
				SearchIterations: sr.Iterations,
				SearchMS:         searchMS,
				SearchActual:     sr.ActualPSNR,
				FixedMS:          fixedMS,
				FixedActual:      run.Actual,
			}
			if fixedMS > 0 {
				row.Speedup = searchMS / fixedMS
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// probePSNR performs one full compress+decompress cycle at an absolute
// bound and returns the measured PSNR — the unit of work the iterative
// workflow repeats. It runs through the codec registry so the experiment
// exercises the same routing as the public API.
func probePSNR(f *field.Field, ebAbs float64, workers int) (float64, error) {
	c, ok := codec.ByName("sz")
	if !ok {
		return 0, fmt.Errorf("experiment: sz codec not registered")
	}
	blob, _, err := c.Compress(context.Background(), f, codec.Options{ErrorBound: ebAbs, Workers: workers}, nil)
	if err != nil {
		return 0, err
	}
	g, _, err := codec.Decompress(blob)
	if err != nil {
		return 0, err
	}
	return stats.Compare(f.Data, g.Data).PSNR, nil
}

// RenderBaseline prints the comparison.
func RenderBaseline(w io.Writer, rows []BaselineRow) {
	fmt.Fprintln(w, "BASELINE — iterative error-bound tuning vs one-shot fixed-PSNR")
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Dataset, r.Field, fmtF(r.Target, 0),
			fmt.Sprintf("%d", r.SearchIterations),
			fmt.Sprintf("%.1f ms", r.SearchMS),
			fmtF(r.SearchActual, 1),
			"1",
			fmt.Sprintf("%.1f ms", r.FixedMS),
			fmtF(r.FixedActual, 1),
			fmt.Sprintf("%.1fx", r.Speedup),
		}
	}
	writeTable(w, []string{
		"Dataset", "Field", "Target",
		"search iters", "search time", "search PSNR",
		"fixed iters", "fixed time", "fixed PSNR", "speedup",
	}, out)
}
