// Package quantizer implements SZ's error-controlled uniform quantization
// (linear-scaling quantization). Prediction errors are mapped to integer
// codes representing uniform bins of width δ = 2·ebabs centered on integer
// multiples of δ; reconstruction uses the bin midpoint, so the pointwise
// error contributed by a quantized code is at most ebabs.
//
// Codes use the SZ convention:
//
//	code 0                     → unpredictable (value stored losslessly)
//	code c ∈ [1, 2R−1]         → quantized, signed index q = c − R
//	                             reconstructed error  q · 2·ebabs
//
// where R is the interval radius (capacity/2).
package quantizer

import (
	"fmt"
	"math"
)

// DefaultCapacity is the default number of quantization intervals (2n in
// the paper's notation). It matches SZ 1.4's default of 65536.
const DefaultCapacity = 65536

// Quantizer maps prediction errors to integer codes under a fixed absolute
// error bound.
type Quantizer struct {
	eb       float64 // absolute error bound (half the bin width)
	delta    float64 // bin width δ = 2·eb
	invDelta float64 // 1/δ, for the reciprocal-multiply fast path
	radius   int     // interval radius R = capacity/2
}

// New creates a quantizer with the given absolute error bound and interval
// capacity. Capacity must be an even number ≥ 4; non-positive capacity
// selects DefaultCapacity. The error bound must be positive.
func New(ebAbs float64, capacity int) (*Quantizer, error) {
	if !(ebAbs > 0) || math.IsInf(ebAbs, 0) || math.IsNaN(ebAbs) {
		return nil, fmt.Errorf("quantizer: error bound must be positive and finite, got %g", ebAbs)
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity < 4 || capacity%2 != 0 {
		return nil, fmt.Errorf("quantizer: capacity must be an even number >= 4, got %d", capacity)
	}
	return &Quantizer{eb: ebAbs, delta: 2 * ebAbs, invDelta: 1 / (2 * ebAbs), radius: capacity / 2}, nil
}

// ErrorBound returns the absolute error bound.
func (q *Quantizer) ErrorBound() float64 { return q.eb }

// Delta returns the quantization bin width δ = 2·ebabs.
func (q *Quantizer) Delta() float64 { return q.delta }

// InvDelta returns the precomputed reciprocal bin width 1/δ used by the
// QuantizeRecon binning multiply, for callers hand-inlining that kernel.
func (q *Quantizer) InvDelta() float64 { return q.invDelta }

// Radius returns the interval radius R.
func (q *Quantizer) Radius() int { return q.radius }

// Capacity returns the total number of intervals 2R.
func (q *Quantizer) Capacity() int { return 2 * q.radius }

// Quantize maps a prediction error diff to a code. ok is false when the
// error falls outside the representable interval range (or is not finite),
// in which case the caller must store the value losslessly and emit
// code 0.
func (q *Quantizer) Quantize(diff float64) (code int, ok bool) {
	if math.IsNaN(diff) || math.IsInf(diff, 0) {
		return 0, false
	}
	idx := math.Round(diff / q.delta)
	// |q| must stay strictly below R so the code fits [1, 2R−1].
	if idx >= float64(q.radius) || idx <= -float64(q.radius) {
		return 0, false
	}
	return int(idx) + q.radius, true
}

// RoundMagic implements round-to-nearest (ties to even) by pushing the
// value into the [2^52, 2^53) binade, where the floating-point grid
// spacing is exactly 1: adding and subtracting 1.5·2^52 leaves the
// nearest integer. Valid for |t| < 2^51, far beyond any radius.
// Exported for callers that hand-inline the QuantizeRecon kernel into
// their prediction loops (see internal/sz).
const RoundMagic = 3 << 51

const roundMagic = RoundMagic

// QuantizeFast is Quantize without the math.Round call and the explicit
// NaN/Inf pre-checks: the range comparison is false for non-finite
// quotients, so they reject naturally. It differs from Quantize only on
// exact half-bin ties, which it rounds to the even index instead of away
// from zero — both choices sit exactly on the error bound, so the
// reconstruction guarantee is unchanged.
func (q *Quantizer) QuantizeFast(diff float64) (code int, ok bool) {
	idx := (diff/q.delta + roundMagic) - roundMagic
	if !(idx < float64(q.radius) && idx > -float64(q.radius)) {
		return 0, false
	}
	return int(idx) + q.radius, true
}

// QuantizeRecon is the compression-loop fast path: it quantizes diff and
// also returns the reconstructed prediction error rec (what Reconstruct
// of the code would produce), computed without leaving the float domain.
// The binning multiplies by the precomputed 1/δ instead of dividing —
// one or two ulps cheaper than the quotient, which can land a borderline
// diff in the neighboring bin — so the error bound is enforced the only
// way that is airtight under any binning: by checking the reconstruction
// itself. ok is false (store the value losslessly) when |diff − rec|
// exceeds the bound or the index leaves the representable range;
// non-finite inputs fail the comparisons and reject naturally. The
// residual err = diff − rec (the exact pointwise reconstruction error)
// comes back for free — callers accumulating distortion use it instead
// of re-deriving the error in a second pass over the data.
// The binning itself fuses the scale and the magic-constant add
// (math.FMA) — one rounding instead of two, which both shortens the
// serial dependency chain and is still a valid round-to-nearest of some
// quotient near diff/δ; rec stays a plain (unfused) multiply because the
// decoder reconstructs with exactly that expression.
func (q *Quantizer) QuantizeRecon(diff float64) (code int, rec, err float64, ok bool) {
	idx := math.FMA(diff, q.invDelta, roundMagic) - roundMagic
	rec = idx * q.delta
	err = diff - rec
	if !(idx < float64(q.radius) && idx > -float64(q.radius) &&
		err <= q.eb && err >= -q.eb) {
		return 0, 0, 0, false
	}
	return int(idx) + q.radius, rec, err, true
}

// Reconstruct returns the decoded prediction error for a non-zero code:
// the midpoint of the code's bin.
func (q *Quantizer) Reconstruct(code int) float64 {
	return float64(code-q.radius) * q.delta
}

// IsUnpredictable reports whether code marks a literal value.
func IsUnpredictable(code int) bool { return code == 0 }
