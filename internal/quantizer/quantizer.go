// Package quantizer implements SZ's error-controlled uniform quantization
// (linear-scaling quantization). Prediction errors are mapped to integer
// codes representing uniform bins of width δ = 2·ebabs centered on integer
// multiples of δ; reconstruction uses the bin midpoint, so the pointwise
// error contributed by a quantized code is at most ebabs.
//
// Codes use the SZ convention:
//
//	code 0                     → unpredictable (value stored losslessly)
//	code c ∈ [1, 2R−1]         → quantized, signed index q = c − R
//	                             reconstructed error  q · 2·ebabs
//
// where R is the interval radius (capacity/2).
package quantizer

import (
	"fmt"
	"math"
)

// DefaultCapacity is the default number of quantization intervals (2n in
// the paper's notation). It matches SZ 1.4's default of 65536.
const DefaultCapacity = 65536

// Quantizer maps prediction errors to integer codes under a fixed absolute
// error bound.
type Quantizer struct {
	eb     float64 // absolute error bound (half the bin width)
	delta  float64 // bin width δ = 2·eb
	radius int     // interval radius R = capacity/2
}

// New creates a quantizer with the given absolute error bound and interval
// capacity. Capacity must be an even number ≥ 4; non-positive capacity
// selects DefaultCapacity. The error bound must be positive.
func New(ebAbs float64, capacity int) (*Quantizer, error) {
	if !(ebAbs > 0) || math.IsInf(ebAbs, 0) || math.IsNaN(ebAbs) {
		return nil, fmt.Errorf("quantizer: error bound must be positive and finite, got %g", ebAbs)
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity < 4 || capacity%2 != 0 {
		return nil, fmt.Errorf("quantizer: capacity must be an even number >= 4, got %d", capacity)
	}
	return &Quantizer{eb: ebAbs, delta: 2 * ebAbs, radius: capacity / 2}, nil
}

// ErrorBound returns the absolute error bound.
func (q *Quantizer) ErrorBound() float64 { return q.eb }

// Delta returns the quantization bin width δ = 2·ebabs.
func (q *Quantizer) Delta() float64 { return q.delta }

// Radius returns the interval radius R.
func (q *Quantizer) Radius() int { return q.radius }

// Capacity returns the total number of intervals 2R.
func (q *Quantizer) Capacity() int { return 2 * q.radius }

// Quantize maps a prediction error diff to a code. ok is false when the
// error falls outside the representable interval range (or is not finite),
// in which case the caller must store the value losslessly and emit
// code 0.
func (q *Quantizer) Quantize(diff float64) (code int, ok bool) {
	if math.IsNaN(diff) || math.IsInf(diff, 0) {
		return 0, false
	}
	idx := math.Round(diff / q.delta)
	// |q| must stay strictly below R so the code fits [1, 2R−1].
	if idx >= float64(q.radius) || idx <= -float64(q.radius) {
		return 0, false
	}
	return int(idx) + q.radius, true
}

// Reconstruct returns the decoded prediction error for a non-zero code:
// the midpoint of the code's bin.
func (q *Quantizer) Reconstruct(code int) float64 {
	return float64(code-q.radius) * q.delta
}

// IsUnpredictable reports whether code marks a literal value.
func IsUnpredictable(code int) bool { return code == 0 }
