package quantizer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(0, 64); err == nil {
		t.Fatal("expected error for zero bound")
	}
	if _, err := New(-1, 64); err == nil {
		t.Fatal("expected error for negative bound")
	}
	if _, err := New(math.NaN(), 64); err == nil {
		t.Fatal("expected error for NaN bound")
	}
	if _, err := New(math.Inf(1), 64); err == nil {
		t.Fatal("expected error for Inf bound")
	}
	if _, err := New(1, 5); err == nil {
		t.Fatal("expected error for odd capacity")
	}
	if _, err := New(1, 2); err == nil {
		t.Fatal("expected error for capacity < 4")
	}
	q, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Capacity() != DefaultCapacity {
		t.Fatalf("default capacity = %d", q.Capacity())
	}
}

func TestAccessors(t *testing.T) {
	q, _ := New(0.5, 1024)
	if q.ErrorBound() != 0.5 || q.Delta() != 1.0 || q.Radius() != 512 || q.Capacity() != 1024 {
		t.Fatalf("accessors: eb=%g delta=%g radius=%d cap=%d",
			q.ErrorBound(), q.Delta(), q.Radius(), q.Capacity())
	}
}

func TestQuantizeKnownValues(t *testing.T) {
	q, _ := New(0.5, 8) // delta=1, radius=4, codes 1..7
	cases := []struct {
		diff float64
		code int
		ok   bool
	}{
		{0, 4, true},
		{0.4, 4, true},
		{0.6, 5, true},
		{-0.6, 3, true},
		{2.9, 7, true},
		{3.6, 0, false}, // rounds to 4 == radius → out of range
		{-3.6, 0, false},
		{100, 0, false},
	}
	for _, c := range cases {
		code, ok := q.Quantize(c.diff)
		if code != c.code || ok != c.ok {
			t.Fatalf("Quantize(%g) = (%d, %v), want (%d, %v)", c.diff, code, ok, c.code, c.ok)
		}
	}
}

func TestQuantizeNonFinite(t *testing.T) {
	q, _ := New(1, 8)
	if _, ok := q.Quantize(math.NaN()); ok {
		t.Fatal("NaN should be unpredictable")
	}
	if _, ok := q.Quantize(math.Inf(1)); ok {
		t.Fatal("+Inf should be unpredictable")
	}
}

func TestReconstructMidpoint(t *testing.T) {
	q, _ := New(0.5, 8)
	if got := q.Reconstruct(4); got != 0 {
		t.Fatalf("Reconstruct(center) = %g", got)
	}
	if got := q.Reconstruct(5); got != 1 {
		t.Fatalf("Reconstruct(5) = %g, want 1 (= delta)", got)
	}
	if got := q.Reconstruct(1); got != -3 {
		t.Fatalf("Reconstruct(1) = %g, want -3", got)
	}
}

func TestIsUnpredictable(t *testing.T) {
	if !IsUnpredictable(0) || IsUnpredictable(1) {
		t.Fatal("IsUnpredictable misclassifies")
	}
}

// Property: for any finite diff, either the code is 0 (unpredictable) or
// |diff − Reconstruct(code)| ≤ eb and 1 ≤ code ≤ capacity−1.
func TestErrorBoundProperty(t *testing.T) {
	q, _ := New(0.25, 256)
	if err := quick.Check(func(diff float64) bool {
		if math.IsNaN(diff) || math.IsInf(diff, 0) {
			return true
		}
		code, ok := q.Quantize(diff)
		if !ok {
			return code == 0
		}
		if code < 1 || code > q.Capacity()-1 {
			return false
		}
		// Allow half-ulp slack for |diff| huge relative to eb — such
		// diffs are out of range anyway, so reaching here means the
		// arithmetic is well-conditioned.
		return math.Abs(diff-q.Reconstruct(code)) <= q.ErrorBound()*(1+1e-12)
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization is monotone — larger diffs never get smaller
// codes (within range).
func TestMonotoneProperty(t *testing.T) {
	q, _ := New(0.5, 64)
	prevCode := 0
	for diff := -15.0; diff <= 15.0; diff += 0.01 {
		code, ok := q.Quantize(diff)
		if !ok {
			continue
		}
		if prevCode != 0 && code < prevCode {
			t.Fatalf("monotonicity violated near diff=%g", diff)
		}
		prevCode = code
	}
}

func TestBoundaryRounding(t *testing.T) {
	// A diff exactly at a bin boundary (odd multiple of eb) rounds away
	// from zero with math.Round; either neighbor keeps the error ≤ eb.
	q, _ := New(0.5, 16)
	code, ok := q.Quantize(0.5)
	if !ok {
		t.Fatal("0.5 should be in range")
	}
	if err := math.Abs(0.5 - q.Reconstruct(code)); err > 0.5 {
		t.Fatalf("boundary error %g > eb", err)
	}
}
