package predictor

import (
	"math/rand"
	"testing"
)

func TestLorenzo1D(t *testing.T) {
	p := NewLorenzo1D(4)
	data := []float64{5, 7, 2, 9}
	if got := p.Predict(data, 0); got != 0 {
		t.Fatalf("first prediction = %g, want 0", got)
	}
	if got := p.Predict(data, 2); got != 7 {
		t.Fatalf("Predict(2) = %g, want 7", got)
	}
	if p.Name() != "lorenzo1d" || len(p.Dims()) != 1 {
		t.Fatal("metadata wrong")
	}
}

func TestLorenzo2DStencil(t *testing.T) {
	// 2x2 grid: prediction at (1,1) = a + b − d.
	p := NewLorenzo2D(2, 2)
	data := []float64{1, 2, 3, 0} // d=1 b=2(north of (1,1)? layout: [ (0,0)=1 (0,1)=2 (1,0)=3 (1,1) ]
	got := p.Predict(data, 3)
	want := 3.0 + 2.0 - 1.0 // west + north − northwest
	if got != want {
		t.Fatalf("Predict = %g, want %g", got, want)
	}
	// Boundary cases.
	if p.Predict(data, 0) != 0 {
		t.Fatal("corner prediction should be 0")
	}
	if p.Predict(data, 1) != 1 { // west only
		t.Fatalf("edge prediction = %g, want 1", p.Predict(data, 1))
	}
	if p.Predict(data, 2) != 1 { // north only
		t.Fatalf("edge prediction = %g, want 1", p.Predict(data, 2))
	}
}

func TestLorenzo3DStencil(t *testing.T) {
	p := NewLorenzo3D(2, 2, 2)
	data := []float64{1, 2, 3, 4, 5, 6, 7, 0}
	// At (1,1,1): x100=4? layout idx = (i*2+j)*2+k:
	// (0,0,0)=1 (0,0,1)=2 (0,1,0)=3 (0,1,1)=4 (1,0,0)=5 (1,0,1)=6 (1,1,0)=7
	// pred = x(0,1,1)+x(1,0,1)+x(1,1,0) − x(0,0,1)−x(0,1,0)−x(1,0,0) + x(0,0,0)
	want := 4.0 + 6.0 + 7.0 - 2.0 - 3.0 - 5.0 + 1.0
	if got := p.Predict(data, 7); got != want {
		t.Fatalf("Predict = %g, want %g", got, want)
	}
	if p.Predict(data, 0) != 0 {
		t.Fatal("origin prediction should be 0")
	}
}

// Lorenzo predictors are exact on polynomial surfaces of the matching
// degree: 1D on constants, 2D on bilinear-minus-cross terms, 3D similar.
// In particular all ranks reproduce affine fields exactly away from the
// boundary.
func TestLorenzoExactOnAffine(t *testing.T) {
	const r, c = 6, 7
	p := NewLorenzo2D(r, c)
	data := make([]float64, r*c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			data[i*c+j] = 3 + 2*float64(i) - 5*float64(j)
		}
	}
	for i := 1; i < r; i++ {
		for j := 1; j < c; j++ {
			idx := i*c + j
			if got := p.Predict(data, idx); got != data[idx] {
				t.Fatalf("affine field mispredicted at (%d,%d): %g vs %g", i, j, got, data[idx])
			}
		}
	}

	p3 := NewLorenzo3D(4, 5, 6)
	d3 := make([]float64, 4*5*6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			for k := 0; k < 6; k++ {
				d3[(i*5+j)*6+k] = 1 - float64(i) + 2*float64(j) + 0.5*float64(k)
			}
		}
	}
	for i := 1; i < 4; i++ {
		for j := 1; j < 5; j++ {
			for k := 1; k < 6; k++ {
				idx := (i*5+j)*6 + k
				if got := p3.Predict(d3, idx); got != d3[idx] {
					t.Fatalf("3D affine mispredicted at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestForDims(t *testing.T) {
	if ForDims([]int{4}).Name() != "lorenzo1d" {
		t.Fatal("rank 1 dispatch")
	}
	if ForDims([]int{4, 4}).Name() != "lorenzo2d" {
		t.Fatal("rank 2 dispatch")
	}
	if ForDims([]int{4, 4, 4}).Name() != "lorenzo3d" {
		t.Fatal("rank 3 dispatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank 4")
		}
	}()
	ForDims([]int{1, 1, 1, 1})
}

func TestErrorsReconstructsData(t *testing.T) {
	// data[i] = pred_i + err_i must hold when predictions come from the
	// original data.
	rng := rand.New(rand.NewSource(11))
	data := make([]float64, 8*9)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	p := NewLorenzo2D(8, 9)
	errs := Errors(p, data)
	if len(errs) != len(data) {
		t.Fatal("length mismatch")
	}
	for i := range data {
		if errs[i] != data[i]-p.Predict(data, i) {
			t.Fatalf("identity violated at %d", i)
		}
	}
}

func TestPredictUsesOnlyPrecedingValues(t *testing.T) {
	// Corrupting future values must not change the prediction.
	p := NewLorenzo3D(3, 3, 3)
	data := make([]float64, 27)
	rng := rand.New(rand.NewSource(13))
	for i := range data {
		data[i] = rng.Float64()
	}
	idx := 13 // center
	want := p.Predict(data, idx)
	for j := idx; j < 27; j++ {
		data[j] = 999
	}
	if got := p.Predict(data, idx); got != want {
		t.Fatal("prediction depends on current/future values")
	}
}
