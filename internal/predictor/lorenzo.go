// Package predictor implements the Lorenzo predictors used by the SZ-style
// compressor (SZ 1.4's default prediction method, after Ibarria et al.).
//
// The d-dimensional Lorenzo predictor estimates a point from its 2^d − 1
// preceding neighbors with alternating-sign weights — the inclusion-
// exclusion corner of the local hypercube:
//
//	1D: p(i)       = x(i−1)
//	2D: p(i,j)     = x(i−1,j) + x(i,j−1) − x(i−1,j−1)
//	3D: p(i,j,k)   = x(i−1,j,k) + x(i,j−1,k) + x(i,j,k−1)
//	               − x(i−1,j−1,k) − x(i−1,j,k−1) − x(i,j−1,k−1)
//	               + x(i−1,j−1,k−1)
//
// Out-of-domain neighbors are treated as 0, which makes the first point's
// prediction 0 (SZ stores it as a large prediction error or an
// unpredictable literal).
//
// The functions here operate on a *reconstructed* array: during both
// compression and decompression the neighbors come from already-decoded
// values. That property is what makes Eq. 1 of the paper
// (X − X̃ = Xpe − X̃pe) hold exactly, and it is asserted by tests.
package predictor

// Predictor predicts the value at flat index idx of a row-major array
// using only entries of recon at indices < idx.
type Predictor interface {
	// Predict returns the prediction for flat index idx.
	Predict(recon []float64, idx int) float64
	// Dims returns the grid dimensions the predictor was built for.
	Dims() []int
	// Name identifies the predictor in stream headers and logs.
	Name() string
}

// Lorenzo1D predicts each point from its immediate predecessor.
type Lorenzo1D struct{ n int }

// NewLorenzo1D returns a 1-D Lorenzo predictor for arrays of length n.
func NewLorenzo1D(n int) *Lorenzo1D { return &Lorenzo1D{n: n} }

// Predict implements Predictor.
func (p *Lorenzo1D) Predict(recon []float64, idx int) float64 {
	if idx == 0 {
		return 0
	}
	return recon[idx-1]
}

// Dims implements Predictor.
func (p *Lorenzo1D) Dims() []int { return []int{p.n} }

// Name implements Predictor.
func (p *Lorenzo1D) Name() string { return "lorenzo1d" }

// Lorenzo2D implements the three-point 2-D Lorenzo stencil.
type Lorenzo2D struct{ r, c int }

// NewLorenzo2D returns a 2-D Lorenzo predictor for an r×c grid.
func NewLorenzo2D(r, c int) *Lorenzo2D { return &Lorenzo2D{r: r, c: c} }

// Predict implements Predictor.
func (p *Lorenzo2D) Predict(recon []float64, idx int) float64 {
	i, j := idx/p.c, idx%p.c
	var a, b, d float64 // west, north, northwest
	if j > 0 {
		a = recon[idx-1]
	}
	if i > 0 {
		b = recon[idx-p.c]
	}
	if i > 0 && j > 0 {
		d = recon[idx-p.c-1]
	}
	return a + b - d
}

// Dims implements Predictor.
func (p *Lorenzo2D) Dims() []int { return []int{p.r, p.c} }

// Name implements Predictor.
func (p *Lorenzo2D) Name() string { return "lorenzo2d" }

// Lorenzo3D implements the seven-point 3-D Lorenzo stencil.
type Lorenzo3D struct{ d0, d1, d2 int }

// NewLorenzo3D returns a 3-D Lorenzo predictor for a d0×d1×d2 grid.
func NewLorenzo3D(d0, d1, d2 int) *Lorenzo3D { return &Lorenzo3D{d0: d0, d1: d1, d2: d2} }

// Predict implements Predictor.
func (p *Lorenzo3D) Predict(recon []float64, idx int) float64 {
	plane := p.d1 * p.d2
	i := idx / plane
	rem := idx % plane
	j := rem / p.d2
	k := rem % p.d2

	var x100, x010, x001, x110, x101, x011, x111 float64
	if i > 0 {
		x100 = recon[idx-plane]
	}
	if j > 0 {
		x010 = recon[idx-p.d2]
	}
	if k > 0 {
		x001 = recon[idx-1]
	}
	if i > 0 && j > 0 {
		x110 = recon[idx-plane-p.d2]
	}
	if i > 0 && k > 0 {
		x101 = recon[idx-plane-1]
	}
	if j > 0 && k > 0 {
		x011 = recon[idx-p.d2-1]
	}
	if i > 0 && j > 0 && k > 0 {
		x111 = recon[idx-plane-p.d2-1]
	}
	return x100 + x010 + x001 - x110 - x101 - x011 + x111
}

// Dims implements Predictor.
func (p *Lorenzo3D) Dims() []int { return []int{p.d0, p.d1, p.d2} }

// Name implements Predictor.
func (p *Lorenzo3D) Name() string { return "lorenzo3d" }

// ForDims returns the Lorenzo predictor matching the rank of dims
// (1, 2, or 3 dimensions). It panics on other ranks; the field layer
// validates rank before compression.
func ForDims(dims []int) Predictor {
	switch len(dims) {
	case 1:
		return NewLorenzo1D(dims[0])
	case 2:
		return NewLorenzo2D(dims[0], dims[1])
	case 3:
		return NewLorenzo3D(dims[0], dims[1], dims[2])
	default:
		panic("predictor: unsupported rank")
	}
}

// Errors computes first-phase prediction errors against the *original*
// data (prediction from original neighbors, as in the compression pass
// before quantization feedback). The experiment harness uses it for the
// Figure 1 distribution plot.
func Errors(p Predictor, data []float64) []float64 {
	out := make([]float64, len(data))
	for i := range data {
		out[i] = data[i] - p.Predict(data, i)
	}
	return out
}
