package serve

import (
	"net/http"
	"time"
)

// Limiter is the bounded-concurrency admission layer in front of the
// data-plane handlers: at most MaxInFlight requests execute at once, at
// most QueueDepth more wait for a slot, and everything beyond that is
// shed immediately with 429 — the server's memory stays bounded by
// (MaxInFlight + QueueDepth) × per-request footprint no matter how hard
// it is hammered. A queued request that cannot get a slot within
// QueueTimeout (or whose client gives up) is shed with 503, so the queue
// never holds work that has already missed its deadline.
//
// Status-code convention: 429 Too Many Requests means "rejected at the
// door, the queue is full — back off"; 503 Service Unavailable means
// "admitted to the queue but the service stayed saturated past the
// timeout". Both carry Retry-After: 1.
type Limiter struct {
	slots   chan struct{}
	queue   chan struct{}
	timeout time.Duration
	met     *Metrics
}

// NewLimiter builds an admission layer. maxInFlight and queueDepth must
// be positive; timeout <= 0 means queued requests wait as long as their
// client does.
func NewLimiter(maxInFlight, queueDepth int, timeout time.Duration, met *Metrics) *Limiter {
	return &Limiter{
		slots:   make(chan struct{}, maxInFlight),
		queue:   make(chan struct{}, queueDepth),
		timeout: timeout,
		met:     met,
	}
}

// QueueDepth samples the number of requests currently waiting for a
// slot.
func (l *Limiter) QueueDepth() int { return len(l.queue) }

// Wrap applies admission control to h. Control-plane endpoints
// (/metrics, /healthz, /debug/pprof) must not be wrapped — they are how
// an overloaded server is diagnosed.
func (l *Limiter) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case l.slots <- struct{}{}:
			// Fast path: a slot was free.
		default:
			// Saturated: try to queue, shedding on overflow.
			select {
			case l.queue <- struct{}{}:
			default:
				l.met.Shed429.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
				return
			}
			var timeout <-chan time.Time
			if l.timeout > 0 {
				t := time.NewTimer(l.timeout)
				defer t.Stop()
				timeout = t.C
			}
			select {
			case l.slots <- struct{}{}:
				<-l.queue
			case <-timeout:
				<-l.queue
				l.met.Shed503.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "saturated past queue timeout", http.StatusServiceUnavailable)
				return
			case <-r.Context().Done():
				<-l.queue
				l.met.Shed503.Add(1)
				http.Error(w, "client gave up in queue", http.StatusServiceUnavailable)
				return
			}
		}
		defer func() { <-l.slots }()
		l.met.InFlight.Add(1)
		defer l.met.InFlight.Add(-1)
		h.ServeHTTP(w, r)
	})
}
