package serve

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Config is the daemon's tuning surface. Zero values mean "use the
// default" (see withDefaults), so a zero Config is runnable.
type Config struct {
	Addr           string        // listen address, e.g. ":8080"
	Root           string        // catalog root directory of .fpsa archives
	CacheBytes     int64         // decoded-chunk LRU capacity in bytes
	MaxInFlight    int           // data-plane requests executing at once
	QueueDepth     int           // data-plane requests allowed to wait
	QueueTimeout   time.Duration // max wait for a slot before 503
	MaxUploadBytes int64         // PUT body cap
	ShutdownGrace  time.Duration // graceful drain window on shutdown
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Root == "" {
		c.Root = "archives"
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 128
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 4 << 30
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	return c
}

// ParseFlags parses command-line arguments into a Config. It uses
// flag.ContinueOnError and writes usage to errw, so callers (and tests)
// decide what a parse failure does.
func ParseFlags(prog string, args []string, errw io.Writer) (Config, error) {
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	fs.SetOutput(errw)
	var cfg Config
	var cacheMB, uploadMB int64
	fs.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.Root, "root", "archives", "catalog root directory of .fpsa archives")
	fs.Int64Var(&cacheMB, "cache-mb", 256, "decoded-chunk cache capacity (MiB)")
	fs.IntVar(&cfg.MaxInFlight, "max-inflight", 128, "max concurrently executing data-plane requests")
	fs.IntVar(&cfg.QueueDepth, "queue-depth", 256, "max data-plane requests waiting for a slot (beyond: 429)")
	fs.DurationVar(&cfg.QueueTimeout, "queue-timeout", 2*time.Second, "max queue wait before shedding with 503")
	fs.Int64Var(&uploadMB, "max-upload-mb", 4096, "max PUT body size (MiB)")
	fs.DurationVar(&cfg.ShutdownGrace, "shutdown-grace", 10*time.Second, "graceful drain window on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return Config{}, err
	}
	if fs.NArg() != 0 {
		return Config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cacheMB < 0 || uploadMB <= 0 {
		return Config{}, fmt.Errorf("cache-mb must be >= 0 and max-upload-mb > 0")
	}
	cfg.CacheBytes = cacheMB << 20
	cfg.MaxUploadBytes = uploadMB << 20
	return cfg, nil
}

// Run serves until ctx is cancelled (typically by SIGINT/SIGTERM), then
// drains in-flight requests for up to ShutdownGrace before closing the
// catalog. logw receives start/stop lines; pass io.Discard to silence.
func Run(ctx context.Context, cfg Config, logw io.Writer) error {
	cfg = cfg.withDefaults()
	s, err := NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(logw, "fpsz-serve: listening on %s (root %s, cache %d MiB, inflight %d, queue %d)\n",
		ln.Addr(), cfg.Root, cfg.CacheBytes>>20, cfg.MaxInFlight, cfg.QueueDepth)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		s.cat.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(logw, "fpsz-serve: shutting down, draining for up to %s\n", cfg.ShutdownGrace)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.ShutdownGrace)
	defer cancel()
	err = srv.Shutdown(sctx)
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	if cerr := s.cat.Close(); cerr != nil && err == nil {
		err = cerr
	}
	fmt.Fprintf(logw, "fpsz-serve: stopped\n")
	return err
}
