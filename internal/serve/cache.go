package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// chunkKey identifies one decoded chunk in the cache. The generation
// number is assigned by the catalog each time it (re)opens an archive, so
// replacing an archive invalidates every cached chunk of the old version
// without a scan: the stale keys simply stop being requested and age out
// of the LRU.
type chunkKey struct {
	gen   uint64
	entry int
	chunk int
}

// ChunkCache is a size-bounded LRU over decoded chunk slabs — the hot-set
// store behind ranged region reads. Regions are assembled by copying from
// cached slabs, so N concurrent readers of one hot chunk decode it once
// and share the float64 slab read-only afterwards.
//
// Concurrent misses on the same key are deduplicated singleflight-style:
// the first requester decodes while the rest block on its result, so a
// thundering herd on a cold hot-spot costs one decode, not N.
type ChunkCache struct {
	capBytes int64

	mu     sync.Mutex
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[chunkKey]*list.Element
	flight map[chunkKey]*flightCall

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

// cacheEntry is one resident slab.
type cacheEntry struct {
	key  chunkKey
	slab []float64
}

// flightCall is one in-progress decode other requesters wait on.
type flightCall struct {
	done chan struct{}
	slab []float64
	err  error
}

// slabBytes is the accounting size of a slab: 8 bytes per float64. The
// map/list overhead per entry is negligible next to any realistic chunk.
func slabBytes(slab []float64) int64 { return int64(len(slab)) * 8 }

// NewChunkCache builds a cache bounded to capBytes of decoded slab data.
// capBytes <= 0 disables residency entirely (every Get decodes; useful
// for measuring the cache's own contribution) while keeping singleflight
// dedup.
func NewChunkCache(capBytes int64) *ChunkCache {
	return &ChunkCache{
		capBytes: capBytes,
		ll:       list.New(),
		items:    make(map[chunkKey]*list.Element),
		flight:   make(map[chunkKey]*flightCall),
	}
}

// GetOrDecode returns the decoded slab for key, filling a miss by calling
// decode exactly once no matter how many goroutines miss concurrently.
// The returned slab is shared: callers must only read it (copy out with
// codec.CopyChunkRegion), never write or retain past the request.
func (c *ChunkCache) GetOrDecode(key chunkKey, decode func() ([]float64, error)) ([]float64, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		slab := el.Value.(*cacheEntry).slab
		c.mu.Unlock()
		c.hits.Add(1)
		return slab, nil
	}
	if fc, ok := c.flight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-fc.done
		return fc.slab, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	c.flight[key] = fc
	c.mu.Unlock()
	c.misses.Add(1)

	fc.slab, fc.err = decode()

	c.mu.Lock()
	delete(c.flight, key)
	if fc.err == nil {
		c.insertLocked(key, fc.slab)
	}
	c.mu.Unlock()
	close(fc.done)
	return fc.slab, fc.err
}

// insertLocked adds a decoded slab and evicts from the cold end until the
// cache fits its bound again. Slabs larger than the whole bound are never
// admitted — they would evict the entire hot set for one resident.
func (c *ChunkCache) insertLocked(key chunkKey, slab []float64) {
	n := slabBytes(slab)
	if n > c.capBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		// A concurrent Put of the same archive raced us; keep the one
		// already resident.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, slab: slab})
	c.bytes += n
	for c.bytes > c.capBytes {
		cold := c.ll.Back()
		if cold == nil {
			break
		}
		ent := cold.Value.(*cacheEntry)
		c.ll.Remove(cold)
		delete(c.items, ent.key)
		c.bytes -= slabBytes(ent.slab)
		c.evictions.Add(1)
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"` // waiters that rode another goroutine's decode
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	CapBytes  int64  `json:"cap_bytes"`
}

// HitRatio is the fraction of lookups served without a decode (resident
// hits plus coalesced waiters); 0 when nothing has been looked up.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Stats snapshots the counters.
func (c *ChunkCache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		CapBytes:  c.capBytes,
	}
}
