package serve

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fixedpsnr"
)

// Catalog is the on-disk archive set the server exposes: one .fpsa file
// per archive under a root directory, each held open behind a cached
// ArchiveReader. Reads of one archive proceed concurrently; an upload
// rewrites the archive into a temp file, renames it over the old one,
// and swaps in a fresh reader while in-flight reads drain the old one
// before it is closed — readers never observe a half-written archive and
// never read through a closed file handle.
type Catalog struct {
	root    string
	nextGen atomic.Uint64

	mu       sync.Mutex
	archives map[string]*catalogEntry
}

// catalogEntry is one archive's slot: the current reader reference plus
// the lock that serializes writers against reader swaps.
type catalogEntry struct {
	name string
	path string
	// mu guards rdr: shared for acquire (reads), exclusive for Put's
	// rewrite-and-swap. Holding it shared only long enough to bump the
	// refcount keeps reads concurrent with each other and with the old
	// generation draining.
	mu  sync.RWMutex
	rdr *readerRef
}

// readerRef is one open generation of an archive: the reader, its cache
// generation (chunk-cache keys embed it, so a swap invalidates cached
// chunks implicitly), and a drain group counting in-flight requests.
type readerRef struct {
	ar  *fixedpsnr.ArchiveReader
	gen uint64
	wg  sync.WaitGroup
}

// archiveExt is the catalog's on-disk archive suffix.
const archiveExt = ".fpsa"

// nameRe constrains archive and field names to one path-safe segment: no
// separators, no dot-prefix, nothing that could escape the root.
var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,254}$`)

// ValidateName reports whether s is usable as an archive or field name in
// catalog paths and URLs.
func ValidateName(s string) error {
	if !nameRe.MatchString(s) || strings.Contains(s, "..") {
		return fmt.Errorf("serve: invalid name %q (want a single [A-Za-z0-9._-] path segment)", s)
	}
	return nil
}

// NewCatalog opens (creating if needed) the catalog root and registers
// every *.fpsa already present. Archives are opened lazily on first use,
// so one corrupt file fails its own requests, not startup.
func NewCatalog(root string) (*Catalog, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("serve: catalog root: %w", err)
	}
	c := &Catalog{root: root, archives: make(map[string]*catalogEntry)}
	matches, err := filepath.Glob(filepath.Join(root, "*"+archiveExt))
	if err != nil {
		return nil, err
	}
	for _, p := range matches {
		name := strings.TrimSuffix(filepath.Base(p), archiveExt)
		if ValidateName(name) != nil {
			continue
		}
		c.archives[name] = &catalogEntry{name: name, path: p}
	}
	return c, nil
}

// Names lists the cataloged archives, sorted.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.archives))
	for n := range c.archives {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Path returns the on-disk location of an archive (whether or not it
// exists yet).
func (c *Catalog) Path(name string) string {
	return filepath.Join(c.root, name+archiveExt)
}

// lookup returns the entry for name, or nil when the catalog has none.
func (c *Catalog) lookup(name string) *catalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.archives[name]
}

// entry returns the slot for name, creating it if needed (a PUT may
// target a brand-new archive).
func (c *Catalog) entry(name string) *catalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.archives[name]
	if e == nil {
		e = &catalogEntry{name: name, path: c.Path(name)}
		c.archives[name] = e
	}
	return e
}

// Acquire pins the current generation of the named archive for one
// request: the returned reader stays open until release is called, even
// if a concurrent upload swaps in a newer generation meanwhile. gen keys
// cached chunks of this generation.
func (c *Catalog) Acquire(name string) (ar *fixedpsnr.ArchiveReader, gen uint64, release func(), err error) {
	e := c.lookup(name)
	if e == nil {
		return nil, 0, nil, fmt.Errorf("serve: no archive %q", name)
	}
	ref, err := e.acquire(c)
	if err != nil {
		return nil, 0, nil, err
	}
	return ref.ar, ref.gen, ref.wg.Done, nil
}

// acquire returns the entry's current readerRef with its refcount
// bumped, opening the archive on first use.
func (e *catalogEntry) acquire(c *Catalog) (*readerRef, error) {
	e.mu.RLock()
	if e.rdr != nil {
		ref := e.rdr
		ref.wg.Add(1)
		e.mu.RUnlock()
		return ref, nil
	}
	e.mu.RUnlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rdr == nil {
		ar, err := fixedpsnr.OpenArchiveFile(e.path)
		if err != nil {
			return nil, fmt.Errorf("serve: archive %q: %w", e.name, err)
		}
		e.rdr = &readerRef{ar: ar, gen: c.nextGen.Add(1)}
	}
	ref := e.rdr
	ref.wg.Add(1)
	return ref, nil
}

// Put installs (or replaces) one field's compressed stream in the named
// archive. The archive is rewritten entry-by-entry into a temp file —
// surviving entries are copied as raw bytes, never recompressed — then
// renamed into place and reopened; the displaced reader generation is
// closed in the background once its in-flight requests drain.
func (c *Catalog) Put(archive, fieldName string, stream []byte) error {
	if err := ValidateName(archive); err != nil {
		return err
	}
	if err := ValidateName(fieldName); err != nil {
		return err
	}
	e := c.entry(archive)
	e.mu.Lock()
	defer e.mu.Unlock()

	// Open the current generation (if any) to carry its other entries
	// over. e.rdr may be nil either on a brand-new archive or before
	// first read of an existing file.
	old := e.rdr
	if old == nil {
		if _, err := os.Stat(e.path); err == nil {
			ar, err := fixedpsnr.OpenArchiveFile(e.path)
			if err != nil {
				return fmt.Errorf("serve: archive %q: %w", archive, err)
			}
			old = &readerRef{ar: ar, gen: c.nextGen.Add(1)}
		}
	}

	tmp := e.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	aw, err := fixedpsnr.NewArchiveWriter(bw)
	if err != nil {
		return err
	}
	if old != nil {
		for i, name := range old.ar.Names() {
			if name == fieldName {
				continue
			}
			blob, err := old.ar.Stream(i)
			if err != nil {
				return fmt.Errorf("serve: carrying entry %q: %w", name, err)
			}
			if err := aw.WriteStreamNamed(name, blob); err != nil {
				return err
			}
		}
	}
	if err := aw.WriteStreamNamed(fieldName, stream); err != nil {
		return err
	}
	if err := aw.Close(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, e.path); err != nil {
		return err
	}
	ok = true

	ar, err := fixedpsnr.OpenArchiveFile(e.path)
	if err != nil {
		return fmt.Errorf("serve: reopening %q: %w", archive, err)
	}
	e.rdr = &readerRef{ar: ar, gen: c.nextGen.Add(1)}
	if old != nil {
		// Close the displaced generation once its readers drain. New
		// acquires already see the new reader (we hold e.mu), so the
		// refcount only falls from here.
		go func(old *readerRef) {
			old.wg.Wait()
			old.ar.Close()
		}(old)
	}
	return nil
}

// Close drains nothing and closes every open reader — call only after
// the HTTP server has finished its graceful shutdown, when no requests
// are in flight.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, e := range c.archives {
		e.mu.Lock()
		if e.rdr != nil {
			if err := e.rdr.ar.Close(); err != nil && first == nil {
				first = err
			}
			e.rdr = nil
		}
		e.mu.Unlock()
	}
	return first
}
