package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the server's observability surface, exposed at /metrics in
// the Prometheus text exposition format (hand-rolled — the module takes
// no dependencies). It tracks per-route request counts by status code,
// per-route latency histograms, the in-flight gauge, and shed counters;
// cache statistics are appended from the ChunkCache at scrape time.
type Metrics struct {
	InFlight atomic.Int64
	Shed429  atomic.Uint64
	Shed503  atomic.Uint64

	mu     sync.Mutex
	counts map[routeCode]uint64
	hists  map[string]*histogram
}

// routeCode labels one requests_total series.
type routeCode struct {
	route string
	code  int
}

// latencyBuckets are the cumulative histogram bounds in seconds, spaced
// for a service whose fast path is a sub-millisecond cache hit and whose
// slow path is a multi-second cold multi-chunk decode.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bound latency histogram; the last bucket is the
// +Inf overflow.
type histogram struct {
	buckets []uint64 // len(latencyBuckets)+1; last is the +Inf overflow
	sum     float64
	count   uint64
}

// NewMetrics builds an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		counts: make(map[routeCode]uint64),
		hists:  make(map[string]*histogram),
	}
}

// Observe records one finished request.
func (m *Metrics) Observe(route string, code int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[routeCode{route, code}]++
	h := m.hists[route]
	if h == nil {
		h = &histogram{buckets: make([]uint64, len(latencyBuckets)+1)}
		m.hists[route] = h
	}
	h.sum += sec
	h.count++
	for i, ub := range latencyBuckets {
		if sec <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(latencyBuckets)]++
}

// WriteTo renders the exposition text. queueDepth is sampled by the
// caller (the limiter owns the queue).
func (m *Metrics) WriteTo(w io.Writer, cache *ChunkCache, queueDepth int) {
	fmt.Fprintf(w, "# TYPE fpsz_inflight_requests gauge\nfpsz_inflight_requests %d\n", m.InFlight.Load())
	fmt.Fprintf(w, "# TYPE fpsz_queue_depth gauge\nfpsz_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# TYPE fpsz_shed_total counter\n")
	fmt.Fprintf(w, "fpsz_shed_total{code=\"429\"} %d\n", m.Shed429.Load())
	fmt.Fprintf(w, "fpsz_shed_total{code=\"503\"} %d\n", m.Shed503.Load())

	m.mu.Lock()
	countKeys := make([]routeCode, 0, len(m.counts))
	for k := range m.counts {
		countKeys = append(countKeys, k)
	}
	sort.Slice(countKeys, func(i, j int) bool {
		if countKeys[i].route != countKeys[j].route {
			return countKeys[i].route < countKeys[j].route
		}
		return countKeys[i].code < countKeys[j].code
	})
	fmt.Fprintf(w, "# TYPE fpsz_requests_total counter\n")
	for _, k := range countKeys {
		fmt.Fprintf(w, "fpsz_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.counts[k])
	}
	histKeys := make([]string, 0, len(m.hists))
	for k := range m.hists {
		histKeys = append(histKeys, k)
	}
	sort.Strings(histKeys)
	fmt.Fprintf(w, "# TYPE fpsz_request_seconds histogram\n")
	for _, route := range histKeys {
		h := m.hists[route]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(w, "fpsz_request_seconds_bucket{route=%q,le=\"%g\"} %d\n", route, ub, cum)
		}
		cum += h.buckets[len(latencyBuckets)]
		fmt.Fprintf(w, "fpsz_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, cum)
		fmt.Fprintf(w, "fpsz_request_seconds_sum{route=%q} %g\n", route, h.sum)
		fmt.Fprintf(w, "fpsz_request_seconds_count{route=%q} %d\n", route, h.count)
	}
	m.mu.Unlock()

	if cache != nil {
		st := cache.Stats()
		fmt.Fprintf(w, "# TYPE fpsz_cache_hits_total counter\nfpsz_cache_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# TYPE fpsz_cache_misses_total counter\nfpsz_cache_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# TYPE fpsz_cache_coalesced_total counter\nfpsz_cache_coalesced_total %d\n", st.Coalesced)
		fmt.Fprintf(w, "# TYPE fpsz_cache_evictions_total counter\nfpsz_cache_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(w, "# TYPE fpsz_cache_entries gauge\nfpsz_cache_entries %d\n", st.Entries)
		fmt.Fprintf(w, "# TYPE fpsz_cache_bytes gauge\nfpsz_cache_bytes %d\n", st.Bytes)
		fmt.Fprintf(w, "# TYPE fpsz_cache_hit_ratio gauge\nfpsz_cache_hit_ratio %g\n", st.HitRatio())
	}
}
