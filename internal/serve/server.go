package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"fixedpsnr"
	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/fieldio"
)

// Server is the archive catalog service: a long-running HTTP daemon over
// a directory of .fpsa archives, exercising the random-access machinery
// (tail index, chunk-granular byte-range reads, per-group quality
// metadata) the way in-situ analysis consumers do.
//
// Endpoints (all field payloads travel as SDF1, the fieldio format):
//
//	GET  /v1/archives                                 catalog listing (JSON)
//	GET  /v1/archives/{name}                          raw archive download
//	GET  /v1/archives/{name}/fields                   field listing (JSON)
//	PUT  /v1/archives/{name}/fields/{field}           upload-and-compress
//	GET  /v1/archives/{name}/fields/{field}           full decode
//	GET  /v1/archives/{name}/fields/{field}/region    ranged ROI decode
//	GET  /v1/archives/{name}/fields/{field}/info      chunk/group inspection (JSON)
//	GET  /metrics, /healthz, /debug/pprof/            control plane (never queued)
//
// PUT query parameters select the compression configuration: mode
// (psnr|ratio|abs|rel|pwrel), psnr, ratio, eb, compressor, chunkpoints,
// level, and repeatable roi specs ("off:ext,...=psnr:80"). Region reads
// take off=o1,o2,... and ext=e1,e2,... vectors.
//
// Region reads are served from a size-bounded LRU of decoded chunk
// slabs with singleflight miss dedup; every data-plane request passes
// the bounded-concurrency admission layer and carries its request
// context through the decode, so a dropped client aborts the work.
type Server struct {
	cfg     Config
	cat     *Catalog
	cache   *ChunkCache
	dec     *fixedpsnr.Decoder
	met     *Metrics
	lim     *Limiter
	scratch *codec.Scratch
	handler http.Handler

	encMu sync.Mutex
	encs  map[string]*fixedpsnr.Encoder
}

// NewServer builds the service over cfg.Root. The catalog is scanned at
// construction; archives appearing on disk later are not picked up (use
// PUT to add archives at runtime).
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cat, err := NewCatalog(cfg.Root)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cat:     cat,
		cache:   NewChunkCache(cfg.CacheBytes),
		dec:     fixedpsnr.NewDecoder(),
		met:     NewMetrics(),
		lim:     NewLimiter(cfg.MaxInFlight, cfg.QueueDepth, cfg.QueueTimeout, nil),
		scratch: codec.NewScratch(),
		encs:    make(map[string]*fixedpsnr.Encoder),
	}
	s.lim.met = s.met
	s.handler = s.buildMux()
	return s, nil
}

// Catalog exposes the underlying catalog (the bench seeds archives
// through it directly).
func (s *Server) Catalog() *Catalog { return s.cat }

// CacheStats snapshots the decoded-chunk cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Metrics exposes the server's counters (the load-test bench reads shed
// totals from here).
func (s *Server) Metrics() *Metrics { return s.met }

// Handler returns the root handler (data plane behind admission,
// control plane in front of it).
func (s *Server) Handler() http.Handler { return s.handler }

func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	data := func(route string, h http.HandlerFunc) http.Handler {
		return s.instrument(route, s.lim.Wrap(h))
	}
	mux.Handle("GET /v1/archives", data("list_archives", s.handleListArchives))
	mux.Handle("GET /v1/archives/{name}", data("get_archive", s.handleGetArchive))
	mux.Handle("GET /v1/archives/{name}/fields", data("list_fields", s.handleListFields))
	mux.Handle("PUT /v1/archives/{name}/fields/{field}", data("put_field", s.handlePutField))
	mux.Handle("GET /v1/archives/{name}/fields/{field}", data("get_field", s.handleGetField))
	mux.Handle("GET /v1/archives/{name}/fields/{field}/region", data("get_region", s.handleGetRegion))
	mux.Handle("GET /v1/archives/{name}/fields/{field}/info", data("get_info", s.handleGetInfo))

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.met.WriteTo(w, s.cache, s.lim.QueueDepth())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route with request counting and latency histograms.
// It sits outside admission so shed responses are counted too.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r)
		s.met.Observe(route, sw.code, time.Since(start))
	})
}

// httpErr maps an error to a status and writes it. Catalog misses are
// 404s, validation problems 400s, cancellations the nginx-style 499, and
// everything else a 500.
func httpErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case isNotFound(err):
		code = http.StatusNotFound
	case isBadRequest(err):
		code = http.StatusBadRequest
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		code = 499
	}
	http.Error(w, err.Error(), code)
}

// errNotFound / errBadRequest tag errors with their HTTP class.
type taggedErr struct {
	err  error
	code int
}

func (t taggedErr) Error() string { return t.err.Error() }
func (t taggedErr) Unwrap() error { return t.err }

func notFound(format string, a ...any) error {
	return taggedErr{fmt.Errorf(format, a...), http.StatusNotFound}
}
func badRequest(err error) error {
	return taggedErr{err, http.StatusBadRequest}
}
func isNotFound(err error) bool {
	var t taggedErr
	return errors.As(err, &t) && t.code == http.StatusNotFound
}
func isBadRequest(err error) bool {
	var t taggedErr
	return errors.As(err, &t) && t.code == http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleListArchives(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"archives": s.cat.Names()})
}

func (s *Server) handleGetArchive(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := ValidateName(name); err != nil {
		httpErr(w, badRequest(err))
		return
	}
	if s.cat.lookup(name) == nil {
		httpErr(w, notFound("no archive %q", name))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, s.cat.Path(name))
}

func (s *Server) handleListFields(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ar, _, release, err := s.acquire(name)
	if err != nil {
		httpErr(w, err)
		return
	}
	defer release()
	type fieldEntry struct {
		Name      string `json:"name"`
		Dims      []int  `json:"dims"`
		Points    int    `json:"points"`
		Precision string `json:"precision"`
		Codec     string `json:"codec"`
		Mode      string `json:"mode"`
		Chunks    int    `json:"chunks"`
	}
	out := make([]fieldEntry, 0, ar.Len())
	for i := 0; i < ar.Len(); i++ {
		h, err := ar.Info(i)
		if err != nil {
			httpErr(w, err)
			return
		}
		out = append(out, fieldEntry{
			Name: h.Name, Dims: h.Dims, Points: h.NPoints(),
			Precision: h.Precision.String(), Codec: h.Codec.String(),
			Mode: h.Mode.String(), Chunks: len(h.Chunks),
		})
	}
	writeJSON(w, map[string]any{"archive": name, "fields": out})
}

// acquire validates the archive name and pins its current generation.
func (s *Server) acquire(name string) (*fixedpsnr.ArchiveReader, uint64, func(), error) {
	if err := ValidateName(name); err != nil {
		return nil, 0, nil, badRequest(err)
	}
	ar, gen, release, err := s.cat.Acquire(name)
	if err != nil {
		return nil, 0, nil, notFound("%v", err)
	}
	return ar, gen, release, nil
}

// entryIndex resolves a field name inside an acquired archive.
func entryIndex(ar *fixedpsnr.ArchiveReader, fieldName string) (int, error) {
	if err := ValidateName(fieldName); err != nil {
		return 0, badRequest(err)
	}
	i, ok := ar.Index(fieldName)
	if !ok {
		return 0, notFound("no field %q", fieldName)
	}
	return i, nil
}

func (s *Server) handleGetField(w http.ResponseWriter, r *http.Request) {
	ar, _, release, err := s.acquire(r.PathValue("name"))
	if err != nil {
		httpErr(w, err)
		return
	}
	defer release()
	i, err := entryIndex(ar, r.PathValue("field"))
	if err != nil {
		httpErr(w, err)
		return
	}
	blob, err := ar.Stream(i)
	if err != nil {
		httpErr(w, err)
		return
	}
	f, _, err := s.dec.Decode(r.Context(), blob)
	if err != nil {
		httpErr(w, err)
		return
	}
	writeField(w, f)
}

func (s *Server) handleGetRegion(w http.ResponseWriter, r *http.Request) {
	ar, gen, release, err := s.acquire(r.PathValue("name"))
	if err != nil {
		httpErr(w, err)
		return
	}
	defer release()
	i, err := entryIndex(ar, r.PathValue("field"))
	if err != nil {
		httpErr(w, err)
		return
	}
	q := r.URL.Query()
	if q.Get("off") == "" || q.Get("ext") == "" {
		httpErr(w, badRequest(errors.New("off and ext query parameters are required (e.g. off=0,0,0&ext=4,96,96)")))
		return
	}
	off, err := ParseIntList(q.Get("off"))
	if err != nil {
		httpErr(w, badRequest(err))
		return
	}
	ext, err := ParseIntList(q.Get("ext"))
	if err != nil {
		httpErr(w, badRequest(err))
		return
	}
	f, err := s.regionRead(r, ar, gen, i, off, ext)
	if err != nil {
		httpErr(w, err)
		return
	}
	writeField(w, f)
}

// regionRead assembles a region from cached decoded chunks, decoding
// misses through the singleflight cache. Non-chunked entries (constant
// fields, custom codecs) fall back to the reader's own region extraction.
func (s *Server) regionRead(r *http.Request, ar *fixedpsnr.ArchiveReader, gen uint64, entry int, off, ext []int) (*fixedpsnr.Field, error) {
	ctx := r.Context()
	h, err := ar.Info(entry)
	if err != nil {
		return nil, err
	}
	if err := field.ValidateRegion(h.Dims, off, ext); err != nil {
		return nil, badRequest(err)
	}
	if len(h.Chunks) == 0 {
		f, _, err := ar.ExtractRegionAtContext(ctx, entry, off, ext)
		return f, err
	}
	out := field.New(h.Name, h.Precision, ext...)
	rowLo, rowHi := off[0], off[0]+ext[0]
	for ci := range h.Chunks {
		ck := &h.Chunks[ci]
		if ck.RowStart >= rowHi || ck.RowStart+ck.Rows <= rowLo {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		slab, err := s.cache.GetOrDecode(chunkKey{gen: gen, entry: entry, chunk: ci}, func() ([]float64, error) {
			pl, err := ar.ChunkPayload(entry, ci)
			if err != nil {
				return nil, err
			}
			slab := make([]float64, h.ChunkPoints(ci))
			if err := codec.DecompressChunkInto(slab, h, ci, pl, s.scratch); err != nil {
				return nil, err
			}
			return slab, nil
		})
		if err != nil {
			if errors.Is(err, codec.ErrNotChunked) {
				f, _, err := ar.ExtractRegionAtContext(ctx, entry, off, ext)
				return f, err
			}
			return nil, err
		}
		codec.CopyChunkRegion(out.Data, h, ci, slab, off, ext)
	}
	return out, nil
}

// writeField serializes a field as SDF1 onto the response.
func writeField(w http.ResponseWriter, f *fixedpsnr.Field) {
	w.Header().Set("Content-Type", "application/octet-stream")
	var buf bytes.Buffer
	if err := fieldio.Write(&buf, f); err != nil {
		httpErr(w, err)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes())
}

// infoChunk mirrors one row of `fpsz inspect -chunks`.
type infoChunk struct {
	Index    int     `json:"index"`
	RowStart int     `json:"row_start"`
	Rows     int     `json:"rows"`
	Offset   int     `json:"offset"`
	Bytes    int     `json:"bytes"`
	EbAbs    float64 `json:"eb_abs"`
	MSE      float64 `json:"mse"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Group    int     `json:"group,omitempty"`
}

// infoGroup mirrors one region-group row.
type infoGroup struct {
	Index       int     `json:"index"`
	Name        string  `json:"name"`
	Mode        string  `json:"mode"`
	TargetPSNR  float64 `json:"target_psnr_db,omitempty"`
	TargetRatio float64 `json:"target_ratio,omitempty"`
	Chunks      int     `json:"chunks"`
	PSNR        float64 `json:"psnr_db,omitempty"`
}

func (s *Server) handleGetInfo(w http.ResponseWriter, r *http.Request) {
	ar, _, release, err := s.acquire(r.PathValue("name"))
	if err != nil {
		httpErr(w, err)
		return
	}
	defer release()
	i, err := entryIndex(ar, r.PathValue("field"))
	if err != nil {
		httpErr(w, err)
		return
	}
	h, err := ar.Info(i)
	if err != nil {
		httpErr(w, err)
		return
	}
	chunks := make([]infoChunk, len(h.Chunks))
	for ci, c := range h.Chunks {
		eb := c.EbAbs
		if eb == 0 {
			eb = h.EbAbs
		}
		chunks[ci] = infoChunk{
			Index: ci, RowStart: c.RowStart, Rows: c.Rows, Offset: c.Off,
			Bytes: c.Len, EbAbs: eb, MSE: c.MSE, Min: c.Min, Max: c.Max, Group: c.Group,
		}
	}
	var groups []infoGroup
	for gi, g := range h.Groups {
		gc := h.GroupChunks(gi)
		ig := infoGroup{
			Index: gi, Name: g.Name, Mode: g.Mode.String(),
			TargetPSNR: g.TargetPSNR, TargetRatio: g.TargetRatio, Chunks: len(gc),
		}
		if mse := h.GroupAggregateMSE(gc); mse > 0 && h.ValueRange > 0 {
			ig.PSNR = 10 * math.Log10(h.ValueRange*h.ValueRange/mse)
		}
		groups = append(groups, ig)
	}
	resp := map[string]any{
		"name":        h.Name,
		"dims":        h.Dims,
		"points":      h.NPoints(),
		"precision":   h.Precision.String(),
		"codec":       h.Codec.String(),
		"mode":        h.Mode.String(),
		"version":     h.Version,
		"eb_abs":      h.EbAbs,
		"target_psnr": h.TargetPSNR,
		"value_range": h.ValueRange,
		"capacity":    h.Capacity,
		"chunks":      chunks,
	}
	if mse := h.AggregateMSE(); mse > 0 && h.ValueRange > 0 {
		resp["aggregate_mse"] = mse
		resp["aggregate_psnr_db"] = 10 * math.Log10(h.ValueRange*h.ValueRange/mse)
	}
	if groups != nil {
		resp["groups"] = groups
	}
	writeJSON(w, resp)
}

func (s *Server) handlePutField(w http.ResponseWriter, r *http.Request) {
	name, fieldName := r.PathValue("name"), r.PathValue("field")
	if err := ValidateName(name); err != nil {
		httpErr(w, badRequest(err))
		return
	}
	if err := ValidateName(fieldName); err != nil {
		httpErr(w, badRequest(err))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		httpErr(w, badRequest(fmt.Errorf("reading body: %w", err)))
		return
	}
	f, err := fieldio.Read(bytes.NewReader(body))
	if err != nil {
		httpErr(w, badRequest(fmt.Errorf("body is not an SDF1 field: %w", err)))
		return
	}
	f.Name = fieldName

	opt, err := optionsFromQuery(r)
	if err != nil {
		httpErr(w, badRequest(err))
		return
	}
	enc, err := s.encoder(opt)
	if err != nil {
		httpErr(w, badRequest(err))
		return
	}
	blob, res, err := enc.Encode(r.Context(), f)
	if err != nil {
		httpErr(w, err)
		return
	}
	if err := s.cat.Put(name, fieldName, blob); err != nil {
		httpErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{
		"archive":          name,
		"field":            fieldName,
		"original_bytes":   res.OriginalBytes,
		"compressed_bytes": res.CompressedBytes,
		"ratio":            res.Ratio,
		"bitrate":          res.BitRate,
		"eb_abs":           res.EbAbs,
		"estimated_psnr":   res.EstimatedPSNR,
		"passes":           res.Passes,
		"regions":          len(res.Regions),
	})
}

// optionsFromQuery builds compression options from PUT query parameters.
func optionsFromQuery(r *http.Request) (fixedpsnr.Options, error) {
	q := r.URL.Query()
	var opt fixedpsnr.Options
	floatQ := func(key string, def float64) (float64, error) {
		s := q.Get(key)
		if s == "" {
			return def, nil
		}
		return strconv.ParseFloat(s, 64)
	}
	intQ := func(key string) (int, error) {
		s := q.Get(key)
		if s == "" {
			return 0, nil
		}
		return strconv.Atoi(s)
	}
	psnr, err := floatQ("psnr", 80)
	if err != nil {
		return opt, fmt.Errorf("psnr: %w", err)
	}
	ratio, err := floatQ("ratio", 0)
	if err != nil {
		return opt, fmt.Errorf("ratio: %w", err)
	}
	eb, err := floatQ("eb", 0)
	if err != nil {
		return opt, fmt.Errorf("eb: %w", err)
	}
	mode := q.Get("mode")
	if mode == "" {
		if ratio > 0 {
			mode = "ratio"
		} else {
			mode = "psnr"
		}
	}
	switch mode {
	case "psnr":
		opt.Mode, opt.TargetPSNR = fixedpsnr.ModePSNR, psnr
	case "ratio":
		opt.Mode, opt.TargetRatio = fixedpsnr.ModeRatio, ratio
	case "abs":
		opt.Mode, opt.ErrorBound = fixedpsnr.ModeAbs, eb
	case "rel":
		opt.Mode, opt.RelBound = fixedpsnr.ModeRel, eb
	case "pwrel":
		opt.Mode, opt.PWRelBound = fixedpsnr.ModePWRel, eb
	default:
		return opt, fmt.Errorf("unknown mode %q (want psnr, ratio, abs, rel, or pwrel)", mode)
	}
	switch comp := q.Get("compressor"); comp {
	case "", "sz":
		opt.Compressor = fixedpsnr.CompressorSZ
	case "transform":
		opt.Compressor = fixedpsnr.CompressorTransform
	case "wavelet":
		opt.Compressor = fixedpsnr.CompressorWavelet
	default:
		return opt, fmt.Errorf("unknown compressor %q", comp)
	}
	if opt.ChunkPoints, err = intQ("chunkpoints"); err != nil {
		return opt, fmt.Errorf("chunkpoints: %w", err)
	}
	if opt.Level, err = intQ("level"); err != nil {
		return opt, fmt.Errorf("level: %w", err)
	}
	for _, spec := range q["roi"] {
		rt, err := ParseROISpec(spec)
		if err != nil {
			return opt, err
		}
		opt.RegionTargets = append(opt.RegionTargets, rt)
	}
	return opt, nil
}

// encoder returns the session encoder for one compression configuration,
// creating it on first use. Sharing encoders across requests shares
// their scratch pools and per-field solver warm starts, so repeated
// snapshot uploads of the same variable converge in 1–2 passes.
func (s *Server) encoder(opt fixedpsnr.Options) (*fixedpsnr.Encoder, error) {
	key := fmt.Sprintf("%+v", opt)
	s.encMu.Lock()
	defer s.encMu.Unlock()
	if enc, ok := s.encs[key]; ok {
		return enc, nil
	}
	enc, err := fixedpsnr.NewEncoder(fixedpsnr.WithOptions(opt))
	if err != nil {
		return nil, err
	}
	s.encs[key] = enc
	return enc, nil
}
