package serve

import (
	"fmt"
	"strconv"
	"strings"

	"fixedpsnr"
)

// Region and ROI spec parsing, shared by the fpsz CLI flags and the
// server's query parameters so both surfaces speak one syntax:
//
//	region: "off:ext[,off:ext...]"        one off:ext pair per dimension
//	roi:    "<region>=psnr:<dB>"          region steered to a fixed PSNR
//	        "<region>=ratio:<R>"          region steered to a fixed ratio

// ParseRegionSpec parses "off:ext,off:ext,..." into offset and extent
// vectors, one pair per dimension.
func ParseRegionSpec(s string) (off, ext []int, err error) {
	for _, part := range strings.Split(s, ",") {
		o, e, ok := strings.Cut(part, ":")
		if !ok {
			return nil, nil, fmt.Errorf("region %q: want off:ext per dimension", s)
		}
		ov, err1 := strconv.Atoi(strings.TrimSpace(o))
		ev, err2 := strconv.Atoi(strings.TrimSpace(e))
		if err1 != nil || err2 != nil || ov < 0 || ev <= 0 {
			return nil, nil, fmt.Errorf("region %q: bad component %q", s, part)
		}
		off = append(off, ov)
		ext = append(ext, ev)
	}
	return off, ext, nil
}

// ParseIntList parses "a,b,c" into ints — the query-parameter spelling of
// an offset or extent vector.
func ParseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", p, s)
		}
		out[i] = v
	}
	return out, nil
}

// ParseROISpec parses one region-target spec,
// "off:ext[,off:ext...]=psnr:<dB>" or "...=ratio:<R>".
func ParseROISpec(s string) (fixedpsnr.RegionTarget, error) {
	var rt fixedpsnr.RegionTarget
	regionPart, targetPart, ok := strings.Cut(s, "=")
	if !ok {
		return rt, fmt.Errorf(`roi %q: want "off:ext[,off:ext...]=psnr:<dB>" or "...=ratio:<R>"`, s)
	}
	off, ext, err := ParseRegionSpec(regionPart)
	if err != nil {
		return rt, fmt.Errorf("roi: %w", err)
	}
	kind, valStr, ok := strings.Cut(targetPart, ":")
	if !ok {
		return rt, fmt.Errorf("roi %q: target %q: want psnr:<dB> or ratio:<R>", s, targetPart)
	}
	val, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
	if err != nil {
		return rt, fmt.Errorf("roi %q: bad target value %q", s, valStr)
	}
	rt.Region = fixedpsnr.Region{Off: off, Ext: ext}
	switch strings.TrimSpace(kind) {
	case "psnr":
		rt.Mode, rt.TargetPSNR = fixedpsnr.ModePSNR, val
	case "ratio":
		rt.Mode, rt.TargetRatio = fixedpsnr.ModeRatio, val
	default:
		return rt, fmt.Errorf("roi %q: unknown target kind %q (want psnr or ratio)", s, kind)
	}
	return rt, nil
}
