package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fixedpsnr"
	"fixedpsnr/internal/fieldio"
)

// synthField builds a deterministic smooth-plus-texture field.
func synthField(name string, dims ...int) *fixedpsnr.Field {
	f := fixedpsnr.NewField(name, fixedpsnr.Float64, dims...)
	inner := 1
	for _, d := range dims[1:] {
		inner *= d
	}
	for i := range f.Data {
		r, c := i/inner, i%inner
		f.Data[i] = math.Sin(0.09*float64(r))*math.Cos(0.05*float64(c)) +
			0.2*math.Sin(0.017*float64(r)*float64(c%31))
	}
	return f
}

func sdf1Bytes(t *testing.T, f *fixedpsnr.Field) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fieldio.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(Config{
		Root:       t.TempDir(),
		CacheBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.cat.Close()
	})
	return s, ts
}

func doPut(t *testing.T, ts *httptest.Server, path string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getField(t *testing.T, ts *httptest.Server, path string) *fixedpsnr.Field {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
	}
	f, err := fieldio.Read(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: decoding SDF1: %v", path, err)
	}
	return f
}

func TestServeRoundTrip(t *testing.T) {
	s, ts := newTestServer(t)
	f := synthField("vx", 48, 40, 32)

	resp := doPut(t, ts, "/v1/archives/run1/fields/vx?psnr=70&chunkpoints=16384", sdf1Bytes(t, f))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT: %d: %s", resp.StatusCode, b)
	}
	var putRes struct {
		Ratio         float64 `json:"ratio"`
		EstimatedPSNR float64 `json:"estimated_psnr"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&putRes); err != nil {
		t.Fatal(err)
	}
	if putRes.Ratio <= 1 {
		t.Fatalf("PUT ratio = %v, want > 1", putRes.Ratio)
	}

	// Full decode hits the PSNR target.
	got := getField(t, ts, "/v1/archives/run1/fields/vx")
	if d := fixedpsnr.CompareFields(f, got); d.PSNR < 69 {
		t.Fatalf("full GET PSNR = %.1f dB, want >= 69", d.PSNR)
	}

	// Region decode must be byte-identical to the reader's own region
	// extraction of the on-disk archive.
	off, ext := []int{10, 4, 8}, []int{20, 30, 16}
	region := getField(t, ts,
		fmt.Sprintf("/v1/archives/run1/fields/vx/region?off=%d,%d,%d&ext=%d,%d,%d",
			off[0], off[1], off[2], ext[0], ext[1], ext[2]))
	ar, err := fixedpsnr.OpenArchiveFile(s.cat.Path("run1"))
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()
	want, _, err := ar.ExtractRegion("vx", off, ext)
	if err != nil {
		t.Fatal(err)
	}
	if len(region.Data) != len(want.Data) {
		t.Fatalf("region size %d, want %d", len(region.Data), len(want.Data))
	}
	for i := range want.Data {
		if region.Data[i] != want.Data[i] {
			t.Fatalf("region[%d] = %v, want %v (not byte-identical)", i, region.Data[i], want.Data[i])
		}
	}

	// A repeated region read must be served from the chunk cache.
	getField(t, ts, "/v1/archives/run1/fields/vx/region?off=10,4,8&ext=20,30,16")
	if st := s.CacheStats(); st.Hits == 0 {
		t.Fatalf("cache stats after repeat read: %+v, want hits > 0", st)
	}

	// Info exposes the chunk table.
	iresp, err := ts.Client().Get(ts.URL + "/v1/archives/run1/fields/vx/info")
	if err != nil {
		t.Fatal(err)
	}
	defer iresp.Body.Close()
	var info struct {
		Name   string `json:"name"`
		Dims   []int  `json:"dims"`
		Chunks []struct {
			Rows  int `json:"rows"`
			Bytes int `json:"bytes"`
		} `json:"chunks"`
	}
	if err := json.NewDecoder(iresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "vx" || len(info.Chunks) < 2 {
		t.Fatalf("info = %+v, want name vx and >= 2 chunks", info)
	}

	// Second field in the same archive; listing shows both.
	resp2 := doPut(t, ts, "/v1/archives/run1/fields/vy?psnr=60", sdf1Bytes(t, synthField("vy", 32, 24, 16)))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("second PUT: %d", resp2.StatusCode)
	}
	lresp, err := ts.Client().Get(ts.URL + "/v1/archives/run1/fields")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Fields []struct{ Name string } `json:"fields"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Fields) != 2 {
		t.Fatalf("fields after second PUT: %+v, want 2", listing.Fields)
	}
}

// Replacing a field must invalidate cached chunks of the old generation:
// region reads after the PUT reflect the new data.
func TestServePutInvalidatesCache(t *testing.T) {
	_, ts := newTestServer(t)
	f1 := synthField("t", 32, 32)
	put := doPut(t, ts, "/v1/archives/a/fields/t?psnr=80", sdf1Bytes(t, f1))
	put.Body.Close()
	getField(t, ts, "/v1/archives/a/fields/t/region?off=0,0&ext=32,32") // warm the cache

	f2 := synthField("t", 32, 32)
	for i := range f2.Data {
		f2.Data[i] += 5 // shift so old and new reconstructions cannot agree
	}
	put2 := doPut(t, ts, "/v1/archives/a/fields/t?psnr=80", sdf1Bytes(t, f2))
	put2.Body.Close()
	if put2.StatusCode != http.StatusCreated {
		t.Fatalf("replace PUT: %d", put2.StatusCode)
	}
	got := getField(t, ts, "/v1/archives/a/fields/t/region?off=0,0&ext=32,32")
	mean := 0.0
	for _, v := range got.Data {
		mean += v
	}
	mean /= float64(len(got.Data))
	if mean < 4 {
		t.Fatalf("post-replace region mean = %v, want ~5 (stale cache served old generation)", mean)
	}
}

func TestServeErrors(t *testing.T) {
	_, ts := newTestServer(t)
	put := doPut(t, ts, "/v1/archives/e/fields/x?psnr=70", sdf1Bytes(t, synthField("x", 16, 16)))
	put.Body.Close()

	cases := []struct {
		method, path string
		body         []byte
		want         int
	}{
		{"GET", "/v1/archives/nope/fields/x", nil, 404},
		{"GET", "/v1/archives/e/fields/nope", nil, 404},
		{"GET", "/v1/archives/e/fields/x/region?off=0,0", nil, 400},           // ext missing
		{"GET", "/v1/archives/e/fields/x/region?off=0,0&ext=99,99", nil, 400}, // out of bounds
		{"GET", "/v1/archives/e/fields/x/region?off=a,b&ext=1,1", nil, 400},   // not integers
		{"PUT", "/v1/archives/e/fields/y?mode=bogus", sdf1Bytes(t, synthField("y", 8, 8)), 400},
		{"PUT", "/v1/archives/e/fields/y", []byte("not a field"), 400},
		{"PUT", "/v1/archives/..%2Fevil/fields/y", sdf1Bytes(t, synthField("y", 8, 8)), 400},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// Saturating the limiter must shed with 429 (queue full) and 503 (queue
// timeout) — and never deadlock.
func TestLimiterSheds(t *testing.T) {
	met := NewMetrics()
	lim := NewLimiter(1, 1, 50*time.Millisecond, met)
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	h := lim.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(entered.Done)
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Occupy the single slot.
	firstDone := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL)
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	entered.Wait()

	// Hammer with the slot held: exactly one request can sit in the
	// queue (it will 503 after the timeout), the rest must 429.
	var got429, got503 atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL)
			if err != nil {
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				got429.Add(1)
			case http.StatusServiceUnavailable:
				got503.Add(1)
			}
		}()
	}
	wg.Wait()
	if got429.Load() == 0 {
		t.Fatal("no 429s while saturated — queue-full shedding not observed")
	}
	if got503.Load() == 0 {
		t.Fatal("no 503s while saturated — queue-timeout shedding not observed")
	}
	if met.Shed429.Load() == 0 || met.Shed503.Load() == 0 {
		t.Fatalf("shed counters = 429:%d 503:%d, want both > 0", met.Shed429.Load(), met.Shed503.Load())
	}

	// Release the handlers: the held request finishes and new ones admit.
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("held request finished with %d", code)
	}
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release request: %d, want 200", resp.StatusCode)
	}
}

func TestChunkCacheLRUAndBounds(t *testing.T) {
	c := NewChunkCache(4 * 100 * 8) // room for four 100-float slabs
	slab := func(v float64) func() ([]float64, error) {
		return func() ([]float64, error) {
			s := make([]float64, 100)
			for i := range s {
				s[i] = v
			}
			return s, nil
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := c.GetOrDecode(chunkKey{gen: 1, entry: 0, chunk: i}, slab(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > 4*100*8 {
		t.Fatalf("cache bytes %d exceed capacity %d", st.Bytes, 4*100*8)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	// Oldest two (0, 1) are evicted; 5 is resident.
	if _, err := c.GetOrDecode(chunkKey{gen: 1, chunk: 5}, func() ([]float64, error) {
		t.Fatal("decode called for resident chunk")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	decoded := false
	if _, err := c.GetOrDecode(chunkKey{gen: 1, chunk: 0}, func() ([]float64, error) {
		decoded = true
		return make([]float64, 100), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !decoded {
		t.Fatal("chunk 0 should have been evicted and re-decoded")
	}
	// A slab larger than the whole cache is returned but not retained.
	if _, err := c.GetOrDecode(chunkKey{gen: 2, chunk: 9}, func() ([]float64, error) {
		return make([]float64, 1000), nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Bytes > 4*100*8 {
		t.Fatalf("oversized slab was retained: %d bytes", st.Bytes)
	}
}

func TestChunkCacheSingleflight(t *testing.T) {
	c := NewChunkCache(1 << 20)
	var decodes atomic.Int64
	gate := make(chan struct{})
	const readers = 16
	var wg sync.WaitGroup
	results := make([][]float64, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.GetOrDecode(chunkKey{gen: 7, chunk: 3}, func() ([]float64, error) {
				decodes.Add(1)
				<-gate // hold the flight open so the others pile up
				return []float64{1, 2, 3}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = s
		}(i)
	}
	// Let the goroutines reach the cache, then open the gate.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if n := decodes.Load(); n != 1 {
		t.Fatalf("decode ran %d times for one key, want 1 (singleflight)", n)
	}
	for i, s := range results {
		if len(s) != 3 {
			t.Fatalf("reader %d got slab %v", i, s)
		}
	}
	if st := c.Stats(); st.Coalesced == 0 {
		t.Fatalf("stats = %+v, want coalesced > 0", st)
	}
}

// A decode error must not poison the cache: the key stays absent and a
// later attempt retries.
func TestChunkCacheErrorNotCached(t *testing.T) {
	c := NewChunkCache(1 << 20)
	wantErr := fmt.Errorf("payload corrupt")
	if _, err := c.GetOrDecode(chunkKey{gen: 1, chunk: 0}, func() ([]float64, error) {
		return nil, wantErr
	}); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	s, err := c.GetOrDecode(chunkKey{gen: 1, chunk: 0}, func() ([]float64, error) {
		return []float64{42}, nil
	})
	if err != nil || len(s) != 1 {
		t.Fatalf("retry after error: %v, %v", s, err)
	}
}

func TestParseSpecs(t *testing.T) {
	off, ext, err := ParseRegionSpec("0:4, 8:16,2:3")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(off) != "[0 8 2]" || fmt.Sprint(ext) != "[4 16 3]" {
		t.Fatalf("ParseRegionSpec: off=%v ext=%v", off, ext)
	}
	for _, bad := range []string{"", "4", "1:0", "-1:4", "a:b"} {
		if _, _, err := ParseRegionSpec(bad); err == nil {
			t.Errorf("ParseRegionSpec(%q): want error", bad)
		}
	}

	v, err := ParseIntList("1, 2,3")
	if err != nil || fmt.Sprint(v) != "[1 2 3]" {
		t.Fatalf("ParseIntList: %v, %v", v, err)
	}
	if _, err := ParseIntList("1,x"); err == nil {
		t.Error("ParseIntList(1,x): want error")
	}

	rt, err := ParseROISpec("0:4,8:16=psnr:90")
	if err != nil {
		t.Fatal(err)
	}
	if rt.Mode != fixedpsnr.ModePSNR || rt.TargetPSNR != 90 || fmt.Sprint(rt.Region.Off) != "[0 8]" {
		t.Fatalf("ParseROISpec: %+v", rt)
	}
	rt, err = ParseROISpec("0:4=ratio:12.5")
	if err != nil || rt.Mode != fixedpsnr.ModeRatio || rt.TargetRatio != 12.5 {
		t.Fatalf("ParseROISpec ratio: %+v, %v", rt, err)
	}
	for _, bad := range []string{"0:4", "0:4=psnr", "0:4=watts:3", "0:4=psnr:x", "x=psnr:80"} {
		if _, err := ParseROISpec(bad); err == nil {
			t.Errorf("ParseROISpec(%q): want error", bad)
		}
	}
}

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		check   func(Config) error
	}{
		{
			name: "defaults",
			args: nil,
			check: func(c Config) error {
				if c.Addr != ":8080" || c.CacheBytes != 256<<20 || c.MaxInFlight != 128 {
					return fmt.Errorf("defaults: %+v", c)
				}
				return nil
			},
		},
		{
			name: "everything set",
			args: []string{
				"-addr", "127.0.0.1:9999", "-root", "/tmp/cat", "-cache-mb", "64",
				"-max-inflight", "4", "-queue-depth", "8", "-queue-timeout", "500ms",
				"-max-upload-mb", "32", "-shutdown-grace", "3s",
			},
			check: func(c Config) error {
				if c.Addr != "127.0.0.1:9999" || c.Root != "/tmp/cat" ||
					c.CacheBytes != 64<<20 || c.MaxInFlight != 4 || c.QueueDepth != 8 ||
					c.QueueTimeout != 500*time.Millisecond || c.MaxUploadBytes != 32<<20 ||
					c.ShutdownGrace != 3*time.Second {
					return fmt.Errorf("parsed: %+v", c)
				}
				return nil
			},
		},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
		{name: "positional junk", args: []string{"extra"}, wantErr: true},
		{name: "bad duration", args: []string{"-queue-timeout", "fast"}, wantErr: true},
		{name: "negative cache", args: []string{"-cache-mb", "-1"}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := ParseFlags("fpsz-serve", tc.args, io.Discard)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("args %v: want error, got %+v", tc.args, cfg)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.check(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Run must come up, serve, and drain cleanly when its context is
// cancelled — the daemon's whole lifecycle in miniature.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{Addr: "127.0.0.1:0", Root: t.TempDir(), ShutdownGrace: 2 * time.Second}
	var logbuf bytes.Buffer
	var mu sync.Mutex
	logw := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logbuf.Write(p)
	})
	done := make(chan error, 1)
	go func() { done <- Run(ctx, cfg, logw) }()

	// Wait for the listener line so we know it is up.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		up := bytes.Contains(logbuf.Bytes(), []byte("listening on"))
		mu.Unlock()
		if up {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("Run exited early: %v", err)
		case <-deadline:
			t.Fatal("server never came up")
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not shut down")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
