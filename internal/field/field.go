// Package field provides the in-memory representation of an N-dimensional
// scientific data field: a dense row-major array of floating-point values
// together with its grid dimensions, name, and source precision.
//
// All compressors and experiment harnesses in this module operate on
// *field.Field values. Data is held as float64 internally regardless of the
// on-disk precision so that quantization arithmetic is uniform; the
// Precision tag records how values should be serialized and how
// unpredictable points are stored losslessly.
package field

import (
	"fmt"

	"fixedpsnr/internal/kernels"
)

// Precision identifies the storage precision of a field's values.
type Precision uint8

const (
	// Float32 marks single-precision data (the common case for HPC
	// simulation snapshots, and the precision used by the paper).
	Float32 Precision = iota
	// Float64 marks double-precision data.
	Float64
)

// String returns the conventional name of the precision.
func (p Precision) String() string {
	switch p {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// Bytes returns the number of bytes one value occupies at this precision.
func (p Precision) Bytes() int {
	if p == Float32 {
		return 4
	}
	return 8
}

// Field is a dense N-dimensional array of scalar values in row-major order
// (the last dimension varies fastest, matching C array layout and the SZ
// data model).
type Field struct {
	// Name identifies the field (e.g. "CLDHGH", "baryon_density").
	Name string
	// Dims holds the grid dimensions from slowest-varying to
	// fastest-varying. len(Dims) is 1, 2, or 3 for the compressors in
	// this module.
	Dims []int
	// Data holds the values in row-major order; len(Data) == product of
	// Dims.
	Data []float64
	// Precision records the source/storage precision of the values.
	Precision Precision
}

// New allocates a zero-filled field with the given name and dimensions.
// It panics if any dimension is non-positive; construction is a programmer
// decision, not an input-validation site.
func New(name string, prec Precision, dims ...int) *Field {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("field: non-positive dimension %d in %v", d, dims))
		}
		n *= d
	}
	return &Field{
		Name:      name,
		Dims:      append([]int(nil), dims...),
		Data:      make([]float64, n),
		Precision: prec,
	}
}

// FromData wraps an existing slice as a field. The slice is used directly
// (not copied). It returns an error if the dimensions do not match the
// slice length.
func FromData(name string, prec Precision, data []float64, dims ...int) (*Field, error) {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("field: non-positive dimension %d in %v", d, dims)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("field: dims %v imply %d values, slice has %d", dims, n, len(data))
	}
	return &Field{Name: name, Dims: append([]int(nil), dims...), Data: data, Precision: prec}, nil
}

// Len returns the total number of values in the field.
func (f *Field) Len() int { return len(f.Data) }

// NDims returns the number of dimensions.
func (f *Field) NDims() int { return len(f.Dims) }

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	out := &Field{
		Name:      f.Name,
		Dims:      append([]int(nil), f.Dims...),
		Data:      append([]float64(nil), f.Data...),
		Precision: f.Precision,
	}
	return out
}

// SameShape reports whether g has identical dimensions to f.
func (f *Field) SameShape(g *Field) bool {
	if len(f.Dims) != len(g.Dims) {
		return false
	}
	for i := range f.Dims {
		if f.Dims[i] != g.Dims[i] {
			return false
		}
	}
	return true
}

// At2 returns the value at row i, column j of a 2-D field.
func (f *Field) At2(i, j int) float64 { return f.Data[i*f.Dims[1]+j] }

// Set2 sets the value at row i, column j of a 2-D field.
func (f *Field) Set2(i, j int, v float64) { f.Data[i*f.Dims[1]+j] = v }

// At3 returns the value at (i, j, k) of a 3-D field.
func (f *Field) At3(i, j, k int) float64 {
	return f.Data[(i*f.Dims[1]+j)*f.Dims[2]+k]
}

// Set3 sets the value at (i, j, k) of a 3-D field.
func (f *Field) Set3(i, j, k int, v float64) {
	f.Data[(i*f.Dims[1]+j)*f.Dims[2]+k] = v
}

// ValueRange returns the minimum, maximum, and their difference
// (vr = max − min) over the field's data. A constant field has range 0.
// NaNs are skipped; if every value is NaN the range is (0, 0, 0).
//
// The scan is the runtime-dispatched kernels.MinMax — AVX2 on capable
// amd64 hosts, a four-lane unrolled loop elsewhere; NaNs need no
// explicit test because every comparison against them is false.
func (f *Field) ValueRange() (min, max, vr float64) {
	min, max = kernels.MinMax(f.Data)
	if min > max { // all NaN or empty
		return 0, 0, 0
	}
	return min, max, max - min
}

// RoundToFloat32 rounds every value to the nearest float32, in place, and
// marks the field as single precision. Synthetic generators use this to
// emulate the paper's single-precision data sets.
func (f *Field) RoundToFloat32() {
	for i, v := range f.Data {
		f.Data[i] = float64(float32(v))
	}
	f.Precision = Float32
}

// SizeBytes returns the nominal storage footprint of the field at its
// declared precision.
func (f *Field) SizeBytes() int { return f.Len() * f.Precision.Bytes() }

// Validate checks structural invariants (dims product matches data length,
// dims positive, 1–3 dimensions). It returns nil when the field is usable
// by the compressors in this module.
func (f *Field) Validate() error {
	if f == nil {
		return fmt.Errorf("field: nil field")
	}
	if len(f.Dims) == 0 || len(f.Dims) > 3 {
		return fmt.Errorf("field %q: unsupported rank %d (want 1..3)", f.Name, len(f.Dims))
	}
	n := 1
	for _, d := range f.Dims {
		if d <= 0 {
			return fmt.Errorf("field %q: non-positive dimension %d", f.Name, d)
		}
		n *= d
	}
	if n != len(f.Data) {
		return fmt.Errorf("field %q: dims %v imply %d values, have %d", f.Name, f.Dims, n, len(f.Data))
	}
	return nil
}

// String summarizes the field for logs and error messages.
func (f *Field) String() string {
	return fmt.Sprintf("%s %v %s", f.Name, f.Dims, f.Precision)
}
