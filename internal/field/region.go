package field

import "fmt"

// Region helpers: an axis-aligned sub-block of a field, described by a
// per-dimension offset and extent. Regions are how the chunked container
// exposes random access — a decoder reads only the chunks a region
// intersects — and how tests assert that a region decode is byte-
// identical to the matching slice of a full reconstruction.

// ValidateRegion checks that (off, ext) describes a non-empty sub-block
// of a field with the given dims: matching rank, non-negative offsets,
// positive extents, and off+ext within each dimension.
func ValidateRegion(dims, off, ext []int) error {
	if len(off) != len(dims) || len(ext) != len(dims) {
		return fmt.Errorf("field: region rank %d/%d does not match field rank %d", len(off), len(ext), len(dims))
	}
	for a := range dims {
		if off[a] < 0 || ext[a] <= 0 || off[a] > dims[a]-ext[a] {
			return fmt.Errorf("field: region [%d,+%d) outside dimension %d of size %d", off[a], ext[a], a, dims[a])
		}
	}
	return nil
}

// Slice copies the sub-block starting at off with the given extents into
// a new field of dims ext. The name and precision carry over.
func (f *Field) Slice(off, ext []int) (*Field, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateRegion(f.Dims, off, ext); err != nil {
		return nil, err
	}
	out := New(f.Name, f.Precision, ext...)
	CopyRegion(out.Data, ext, make([]int, len(ext)), f.Data, f.Dims, off, ext)
	return out, nil
}

// CopyRegion copies an ext-shaped block from src (shape srcDims, block
// origin srcOff) into dst (shape dstDims, block origin dstOff). All
// slices are row-major; rank must be 1–3 and the block must fit inside
// both arrays — callers validate with ValidateRegion first. Rows along
// the fastest dimension move with copy, so the inner loop is a memmove.
func CopyRegion(dst []float64, dstDims, dstOff []int, src []float64, srcDims, srcOff, ext []int) {
	switch len(ext) {
	case 1:
		copy(dst[dstOff[0]:dstOff[0]+ext[0]], src[srcOff[0]:srcOff[0]+ext[0]])
	case 2:
		sCols, dCols := srcDims[1], dstDims[1]
		for i := 0; i < ext[0]; i++ {
			s := (srcOff[0]+i)*sCols + srcOff[1]
			d := (dstOff[0]+i)*dCols + dstOff[1]
			copy(dst[d:d+ext[1]], src[s:s+ext[1]])
		}
	case 3:
		sPlane, dPlane := srcDims[1]*srcDims[2], dstDims[1]*dstDims[2]
		sCols, dCols := srcDims[2], dstDims[2]
		for i := 0; i < ext[0]; i++ {
			for j := 0; j < ext[1]; j++ {
				s := (srcOff[0]+i)*sPlane + (srcOff[1]+j)*sCols + srcOff[2]
				d := (dstOff[0]+i)*dPlane + (dstOff[1]+j)*dCols + dstOff[2]
				copy(dst[d:d+ext[2]], src[s:s+ext[2]])
			}
		}
	default:
		panic(fmt.Sprintf("field: CopyRegion rank %d", len(ext)))
	}
}
