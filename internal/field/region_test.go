package field

import "testing"

func seqField(dims ...int) *Field {
	f := New("seq", Float64, dims...)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	return f
}

func TestValidateRegion(t *testing.T) {
	dims := []int{4, 6, 8}
	good := [][2][]int{
		{{0, 0, 0}, {4, 6, 8}},
		{{1, 2, 3}, {2, 2, 2}},
		{{3, 5, 7}, {1, 1, 1}},
	}
	for _, g := range good {
		if err := ValidateRegion(dims, g[0], g[1]); err != nil {
			t.Errorf("ValidateRegion(%v, %v) = %v", g[0], g[1], err)
		}
	}
	bad := [][2][]int{
		{{0, 0}, {4, 6}},        // rank mismatch
		{{-1, 0, 0}, {1, 1, 1}}, // negative offset
		{{0, 0, 0}, {0, 1, 1}},  // zero extent
		{{2, 0, 0}, {3, 1, 1}},  // off+ext past dim
		{{4, 0, 0}, {1, 1, 1}},  // offset at dim
	}
	for _, b := range bad {
		if err := ValidateRegion(dims, b[0], b[1]); err == nil {
			t.Errorf("ValidateRegion(%v, %v) accepted", b[0], b[1])
		}
	}
}

func TestSliceMatchesManualIndexing(t *testing.T) {
	f := seqField(5, 6, 7)
	off := []int{1, 2, 3}
	ext := []int{3, 2, 4}
	g, err := f.Slice(off, ext)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != f.Name || g.Precision != f.Precision {
		t.Fatal("metadata not carried over")
	}
	for i := 0; i < ext[0]; i++ {
		for j := 0; j < ext[1]; j++ {
			for k := 0; k < ext[2]; k++ {
				want := f.At3(off[0]+i, off[1]+j, off[2]+k)
				if got := g.At3(i, j, k); got != want {
					t.Fatalf("slice[%d,%d,%d] = %g, want %g", i, j, k, got, want)
				}
			}
		}
	}
}

func TestCopyRegionRanks(t *testing.T) {
	// 1-D
	src := []float64{0, 1, 2, 3, 4}
	dst := make([]float64, 3)
	CopyRegion(dst, []int{3}, []int{0}, src, []int{5}, []int{1}, []int{3})
	if dst[0] != 1 || dst[2] != 3 {
		t.Fatalf("1-D copy = %v", dst)
	}
	// 2-D into an offset destination
	f := seqField(4, 5)
	out := make([]float64, 4*5)
	CopyRegion(out, []int{4, 5}, []int{1, 1}, f.Data, f.Dims, []int{2, 2}, []int{2, 3})
	if out[1*5+1] != f.At2(2, 2) || out[2*5+3] != f.At2(3, 4) {
		t.Fatalf("2-D copy landed wrong: %v", out)
	}
}
