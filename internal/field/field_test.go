package field

import (
	"math"
	"testing"
)

func TestNewAllocatesZeroed(t *testing.T) {
	f := New("t", Float32, 3, 4)
	if f.Len() != 12 {
		t.Fatalf("Len = %d, want 12", f.Len())
	}
	if f.NDims() != 2 {
		t.Fatalf("NDims = %d, want 2", f.NDims())
	}
	for i, v := range f.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %g, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	New("t", Float32, 3, 0)
}

func TestFromDataChecksLength(t *testing.T) {
	if _, err := FromData("t", Float64, make([]float64, 5), 2, 3); err == nil {
		t.Fatal("expected error for mismatched length")
	}
	f, err := FromData("t", Float64, make([]float64, 6), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 6 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFromDataRejectsBadDims(t *testing.T) {
	if _, err := FromData("t", Float64, nil, -1); err == nil {
		t.Fatal("expected error for negative dimension")
	}
}

func TestIndexing2D(t *testing.T) {
	f := New("t", Float64, 3, 5)
	f.Set2(2, 4, 7.5)
	if got := f.At2(2, 4); got != 7.5 {
		t.Fatalf("At2 = %g, want 7.5", got)
	}
	if f.Data[2*5+4] != 7.5 {
		t.Fatal("Set2 wrote to the wrong flat index")
	}
}

func TestIndexing3D(t *testing.T) {
	f := New("t", Float64, 2, 3, 4)
	f.Set3(1, 2, 3, -2.25)
	if got := f.At3(1, 2, 3); got != -2.25 {
		t.Fatalf("At3 = %g, want -2.25", got)
	}
	if f.Data[(1*3+2)*4+3] != -2.25 {
		t.Fatal("Set3 wrote to the wrong flat index")
	}
}

func TestValueRange(t *testing.T) {
	f := New("t", Float64, 4)
	copy(f.Data, []float64{-2, 7, 0, 3})
	min, max, vr := f.ValueRange()
	if min != -2 || max != 7 || vr != 9 {
		t.Fatalf("ValueRange = (%g, %g, %g), want (-2, 7, 9)", min, max, vr)
	}
}

func TestValueRangeSkipsNaN(t *testing.T) {
	f := New("t", Float64, 3)
	copy(f.Data, []float64{math.NaN(), 1, 5})
	min, max, vr := f.ValueRange()
	if min != 1 || max != 5 || vr != 4 {
		t.Fatalf("ValueRange = (%g, %g, %g), want (1, 5, 4)", min, max, vr)
	}
}

func TestValueRangeAllNaN(t *testing.T) {
	f := New("t", Float64, 2)
	f.Data[0], f.Data[1] = math.NaN(), math.NaN()
	min, max, vr := f.ValueRange()
	if min != 0 || max != 0 || vr != 0 {
		t.Fatalf("ValueRange = (%g, %g, %g), want zeros", min, max, vr)
	}
}

func TestValueRangeConstant(t *testing.T) {
	f := New("t", Float64, 3)
	for i := range f.Data {
		f.Data[i] = 4.5
	}
	_, _, vr := f.ValueRange()
	if vr != 0 {
		t.Fatalf("vr = %g, want 0", vr)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := New("t", Float32, 2, 2)
	f.Data[3] = 9
	g := f.Clone()
	g.Data[3] = -1
	g.Dims[0] = 99
	if f.Data[3] != 9 || f.Dims[0] != 2 {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestSameShape(t *testing.T) {
	a := New("a", Float32, 2, 3)
	b := New("b", Float64, 2, 3)
	c := New("c", Float32, 3, 2)
	d := New("d", Float32, 6)
	if !a.SameShape(b) {
		t.Fatal("a and b should have the same shape")
	}
	if a.SameShape(c) || a.SameShape(d) {
		t.Fatal("mismatched shapes reported as equal")
	}
}

func TestRoundToFloat32(t *testing.T) {
	f := New("t", Float64, 1)
	f.Data[0] = 1.0000000001 // not representable in float32
	f.RoundToFloat32()
	if f.Precision != Float32 {
		t.Fatal("precision not updated")
	}
	if f.Data[0] != float64(float32(1.0000000001)) {
		t.Fatal("value not rounded to float32")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New("t", Float32, 10).SizeBytes(); got != 40 {
		t.Fatalf("float32 SizeBytes = %d, want 40", got)
	}
	if got := New("t", Float64, 10).SizeBytes(); got != 80 {
		t.Fatalf("float64 SizeBytes = %d, want 80", got)
	}
}

func TestValidate(t *testing.T) {
	f := New("t", Float32, 2, 2)
	if err := f.Validate(); err != nil {
		t.Fatalf("valid field rejected: %v", err)
	}
	f.Dims = []int{2, 3}
	if err := f.Validate(); err == nil {
		t.Fatal("expected error for dims/data mismatch")
	}
	g := &Field{Name: "r4", Dims: []int{1, 1, 1, 1}, Data: []float64{0}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for rank 4")
	}
	var nilField *Field
	if err := nilField.Validate(); err == nil {
		t.Fatal("expected error for nil field")
	}
}

func TestPrecisionString(t *testing.T) {
	if Float32.String() != "float32" || Float64.String() != "float64" {
		t.Fatal("unexpected precision names")
	}
	if Precision(9).String() == "" {
		t.Fatal("unknown precision should still render")
	}
}

func TestFieldString(t *testing.T) {
	f := New("density", Float32, 4, 5)
	if f.String() == "" {
		t.Fatal("String should describe the field")
	}
}
