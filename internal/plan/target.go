package plan

import (
	"fmt"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/core"
)

// Default steering knobs. DefaultToleranceDB and DefaultMaxPasses are the
// calibrated fixed-PSNR loop's historical constants; ratio steering gets a
// wider pass budget because it always needs at least one solver step (no
// closed-form Eq. 8 exists for the rate curve) and its secant converges
// from a data-blind first guess.
const (
	// DefaultToleranceDB is the fixed-PSNR acceptance band around the
	// target, in dB.
	DefaultToleranceDB = 0.5
	// DefaultMaxPasses bounds the extra compressions the calibrated
	// fixed-PSNR loop may take.
	DefaultMaxPasses = 3
	// DefaultRatioTolerance is the fixed-ratio acceptance band as a
	// fraction of the target ratio.
	DefaultRatioTolerance = 0.05
	// DefaultRatioMaxPasses bounds the extra compressions the
	// fixed-ratio loop may take.
	DefaultRatioMaxPasses = 8
)

// Tuning carries the user-adjustable steering knobs shared by every
// target. Zero values select the per-target defaults above.
type Tuning struct {
	// ToleranceDB is the fixed-PSNR acceptance band in dB.
	ToleranceDB float64
	// RatioTolerance is the fixed-ratio acceptance band as a fraction of
	// the target ratio.
	RatioTolerance float64
	// MaxPasses bounds the extra compression passes any target may take.
	MaxPasses int
}

// Pass records one compression pass the Drive loop made: the absolute
// bound the codec ran with and the target statistic measured from the
// resulting stream.
type Pass struct {
	Bound    float64
	Measured float64
}

// Target is one steerable quality goal: it owns the statistic the loop
// measures, the acceptance test, and the solver that proposes the next
// absolute bound. Codecs know nothing about targets — they compress at a
// bound and report statistics — which is what lets one Drive loop serve
// fixed PSNR, fixed ratio, and future targets without touching any
// pipeline.
type Target interface {
	// Describe names the target for error messages and logs.
	Describe() string
	// Measure extracts the steering statistic from one finished pass:
	// the stream (whose chunk table carries per-chunk sizes and MSEs)
	// and the codec's aggregate stats.
	Measure(blob []byte, st *codec.Stats) float64
	// Solve inspects the pass history (oldest first, most recent last)
	// and either accepts the latest pass (done) or proposes the next
	// absolute bound. An error aborts the compression loudly — silently
	// shipping an off-target stream is the one forbidden outcome.
	Solve(history []Pass) (next float64, done bool, err error)
	// MaxPasses bounds the extra compressions Drive may take.
	MaxPasses() int
	// PinExactChunks reports whether a chunk with zero recorded MSE is
	// final under this target: exact chunks reconstruct identically at
	// any bound, so distortion-steered targets keep their payloads
	// verbatim across passes, while size-steered targets must
	// recompress them (a coarser bound shrinks even an exact chunk).
	PinExactChunks() bool
}

// GroupTarget is a Target that can measure its statistic over one chunk
// subset of a stream — the capability region-group steering requires.
// Both built-in targets implement it: the fixed-PSNR target aggregates
// the group's point-weighted chunk MSEs, the fixed-ratio target measures
// the group's payload bytes against its nominal storage footprint. A
// custom Target without this interface still works field-wide but cannot
// drive a region group.
type GroupTarget interface {
	Target
	// MeasureGroup extracts the steering statistic from the chunks
	// listed in subset of a (possibly mid-steering) chunk table. The
	// header's chunk entries must carry current Len/MSE values.
	MeasureGroup(h *codec.Header, subset []int) float64
}

// BuildTarget constructs the steering target for the request, or nil when
// the request needs no steering: single-pass modes, uncalibrated
// fixed-PSNR, codecs that cannot measure the statistic, and constant
// fields (vr == 0), whose streams are final after one pass.
func (r Request) BuildTarget(c codec.Codec, vr float64) Target {
	if !(vr > 0) {
		return nil
	}
	switch r.Mode {
	case ModePSNR:
		if !r.Calibrated || !c.MeasuresMSE() {
			return nil
		}
		return NewPSNRTarget(r.TargetPSNR, vr, r.Tuning)
	case ModeRatio:
		return NewRatioTarget(r.TargetRatio, r.BitsPerValue, r.Tuning)
	default:
		return nil
	}
}

// psnrTarget is the calibrated fixed-PSNR goal: steer the bin width until
// the measured global MSE lands within ±tolDB of the target PSNR.
type psnrTarget struct {
	targetPSNR float64
	targetMSE  float64
	vr         float64
	tolDB      float64
	maxPasses  int
}

// NewPSNRTarget builds the calibrated fixed-PSNR target for data of value
// range vr.
func NewPSNRTarget(targetPSNR, vr float64, tn Tuning) Target {
	t := &psnrTarget{
		targetPSNR: targetPSNR,
		targetMSE:  core.MSEForPSNR(targetPSNR, vr),
		vr:         vr,
		tolDB:      tn.ToleranceDB,
		maxPasses:  tn.MaxPasses,
	}
	if t.tolDB == 0 {
		t.tolDB = DefaultToleranceDB
	}
	if t.maxPasses == 0 {
		t.maxPasses = DefaultMaxPasses
	}
	return t
}

func (t *psnrTarget) Describe() string {
	return fmt.Sprintf("fixed-PSNR %.4g dB (±%g dB)", t.targetPSNR, t.tolDB)
}

func (t *psnrTarget) MaxPasses() int       { return t.maxPasses }
func (t *psnrTarget) PinExactChunks() bool { return true }

// Measure returns the field MSE the loop steers on: the
// point-count-weighted aggregate of the per-chunk MSEs in the stream's
// chunk table when every chunk is measured, the codec's Stats.MSE
// otherwise.
func (t *psnrTarget) Measure(blob []byte, st *codec.Stats) float64 {
	if h, err := codec.ParseHeader(blob); err == nil {
		if agg := h.AggregateMSE(); !math.IsNaN(agg) {
			return agg
		}
	}
	return st.MSE
}

// MeasureGroup returns the point-weighted MSE of one chunk subset — the
// same accounting as Measure, restricted to a region group's chunks.
func (t *psnrTarget) MeasureGroup(h *codec.Header, subset []int) float64 {
	return h.GroupAggregateMSE(subset)
}

// Solve re-derives the quantization bin width by a log–log secant step
// through the last two measured (δ, MSE) points (single-point quadratic
// law on the first step — see core.NextDelta). A proposal that repeats
// the bin width just measured would loop without progress, so it is
// reported as an explicit error instead of silently accepting an
// off-target stream; a solver that cannot improve (degenerate inputs)
// accepts the current stream, matching the historical refinement loop.
func (t *psnrTarget) Solve(history []Pass) (float64, bool, error) {
	last := history[len(history)-1]
	mse := last.Measured
	if mse == 0 {
		return 0, true, nil // lossless at this bound; nothing cheaper to try safely
	}
	if core.WithinTolerance(mse, t.targetPSNR, t.vr, t.tolDB) {
		return 0, true, nil
	}
	// The solver steers on bin widths δ = 2·bound; d0/d1 are the last two
	// measured points (d1 zero until a second pass exists).
	d0, mse0 := 2*last.Bound, mse
	var d1, mse1 float64
	if len(history) >= 2 {
		prev := history[len(history)-2]
		d0, mse0 = 2*prev.Bound, prev.Measured
		d1, mse1 = 2*last.Bound, last.Measured
	}
	next, err := core.NextDelta(d0, mse0, d1, mse1, t.targetMSE)
	if err != nil {
		return 0, true, nil // cannot improve from here; accept the stream
	}
	cur := d1
	if cur == 0 {
		cur = d0
	}
	if next == cur {
		// The secant step proposes the bin width it just measured (a
		// distortion curve that does not respond to the bound).
		actual := -10*math.Log10(mse) + 20*math.Log10(t.vr)
		return 0, false, fmt.Errorf(
			"plan: calibrated refinement stalled: secant step repeats δ=%g (measured %.2f dB vs target %.2f dB)",
			next, actual, t.targetPSNR)
	}
	return next / 2, false, nil
}

// ratioTarget is the fixed-ratio goal: steer the bound until
// original/compressed bytes lands within ±tol·target of the target ratio.
type ratioTarget struct {
	target    float64
	bpp       float64
	tol       float64
	maxPasses int
}

// NewRatioTarget builds the fixed-ratio target for values stored at bpp
// bits each (0 selects float64's 64).
func NewRatioTarget(targetRatio, bpp float64, tn Tuning) Target {
	t := &ratioTarget{
		target:    targetRatio,
		bpp:       bpp,
		tol:       tn.RatioTolerance,
		maxPasses: tn.MaxPasses,
	}
	if t.bpp <= 0 {
		t.bpp = 64
	}
	if t.tol == 0 {
		t.tol = DefaultRatioTolerance
	}
	if t.maxPasses == 0 {
		t.maxPasses = DefaultRatioMaxPasses
	}
	return t
}

func (t *ratioTarget) Describe() string {
	return fmt.Sprintf("fixed-ratio %.4g:1 (±%g%%)", t.target, t.tol*100)
}

func (t *ratioTarget) MaxPasses() int       { return t.maxPasses }
func (t *ratioTarget) PinExactChunks() bool { return false }

// Measure returns the achieved compression ratio of the pass. Every
// pipeline measures it — size needs no Theorem 1 — which is why fixed
// ratio works on codecs whose distortion is unmeasurable (otc).
func (t *ratioTarget) Measure(blob []byte, st *codec.Stats) float64 {
	if st.OriginalBytes <= 0 || st.CompressedBytes <= 0 {
		return math.NaN()
	}
	return float64(st.OriginalBytes) / float64(st.CompressedBytes)
}

// MeasureGroup returns the compression ratio of one chunk subset: the
// group's nominal storage footprint (points × bits per value) over its
// summed payload bytes. Header overhead is shared by every group and
// excluded, so per-group ratios are steered and reported on payload
// bytes alone.
func (t *ratioTarget) MeasureGroup(h *codec.Header, subset []int) float64 {
	comp := h.GroupPayloadBytes(subset)
	orig := float64(h.GroupPoints(subset)) * t.bpp / 8
	if comp <= 0 || orig <= 0 {
		return math.NaN()
	}
	return orig / float64(comp)
}

// Solve takes a log–log secant step through the last two measured
// (bound, ratio) points, falling back to the one-bit-per-doubling entropy
// model on the first step or when the rate curve flattens (see
// core.NextBoundFixedRatio). A proposal that repeats the bound it just
// measured means the stream's size no longer responds to the bound, so
// the loop accepts the closest achievable stream rather than spinning —
// the caller sees the achieved ratio in its Result.
func (t *ratioTarget) Solve(history []Pass) (float64, bool, error) {
	last := history[len(history)-1]
	r := last.Measured
	if math.IsNaN(r) {
		return 0, false, fmt.Errorf("plan: fixed-ratio target cannot measure the stream's compression ratio")
	}
	if core.WithinRatioTolerance(r, t.target, t.tol) {
		return 0, true, nil
	}
	b0, r0 := last.Bound, r
	var b1, r1 float64
	if len(history) >= 2 {
		prev := history[len(history)-2]
		b0, r0 = prev.Bound, prev.Measured
		b1, r1 = last.Bound, last.Measured
	}
	next, err := core.NextBoundFixedRatio(t.bpp, b0, r0, b1, r1, t.target)
	if err != nil {
		return 0, false, fmt.Errorf("plan: fixed-ratio solver: %w", err)
	}
	if next == last.Bound {
		return 0, true, nil // size no longer responds; this is the closest stream
	}
	return next, false, nil
}
