// Package plan is the error-control layer of the compression stack: it
// converts every user-facing mode (absolute bound, value-range relative
// bound, fixed PSNR, fixed compression ratio, pointwise relative bound)
// into the absolute bound a registered codec runs with, and steers
// multi-pass quality targets through the generic Drive loop.
//
// The layer is organized around the Target interface: a target measures
// one quality statistic from a finished compression pass (exact MSE for
// fixed PSNR, achieved ratio for fixed ratio) and solves for the next
// bound from the pass history. Codecs never see the target — they are
// handed an absolute bound and report statistics — so new targets
// (fixed-SSIM, new group statistics) are plan-layer additions, not codec
// changes. Region-group steering generalizes the same machinery: a
// Partition maps the chunked container onto named groups and DriveGroups
// runs one Measure/Solve loop per group over only that group's chunks
// (GroupTarget supplies the chunk-subset statistic), so one stream can
// hold a region of interest at high PSNR over a fixed-ratio background.
//
// The math (Eqs. 6–8 of the paper, the log–log secant steps) lives in
// internal/core; this package owns the mode dispatch, target
// construction, and the control loop, so the public API and the
// experiment harness share one bound derivation.
package plan

import (
	"fmt"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/core"
)

// Mode selects the error-control strategy.
type Mode int

// Modes.
const (
	// ModeAbs bounds the absolute pointwise error.
	ModeAbs Mode = iota
	// ModeRel bounds the pointwise error relative to the value range.
	ModeRel
	// ModePSNR fixes the overall PSNR of the reconstruction (the
	// paper's fixed-PSNR mode).
	ModePSNR
	// ModePWRel bounds the pointwise error relative to each value.
	ModePWRel
	// ModeRatio fixes the overall compression ratio (FRaZ-style): the
	// bound is steered until original/compressed bytes lands within the
	// acceptance band of the target.
	ModeRatio
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAbs:
		return "abs"
	case ModeRel:
		return "rel"
	case ModePSNR:
		return "psnr"
	case ModePWRel:
		return "pwrel"
	case ModeRatio:
		return "ratio"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// StreamMode maps the planning mode to the informational mode byte
// recorded in stream headers.
func (m Mode) StreamMode() codec.Mode {
	switch m {
	case ModeAbs:
		return codec.ModeAbs
	case ModeRel:
		return codec.ModeRel
	case ModePSNR:
		return codec.ModePSNR
	case ModePWRel:
		return codec.ModePWRel
	case ModeRatio:
		return codec.ModeRatio
	default:
		return codec.ModeAbs
	}
}

// Request is one error-control demand: a mode plus its bound parameter
// and the steering knobs the multi-pass targets read.
type Request struct {
	Mode Mode
	// ErrorBound is the absolute bound for ModeAbs.
	ErrorBound float64
	// RelBound is the value-range-based relative bound for ModeRel.
	RelBound float64
	// TargetPSNR is the target PSNR in dB for ModePSNR.
	TargetPSNR float64
	// PWRelBound is the pointwise relative bound for ModePWRel.
	PWRelBound float64
	// TargetRatio is the target compression ratio for ModeRatio.
	TargetRatio float64
	// BitsPerValue is the uncompressed storage width of one value (32 or
	// 64); ModeRatio's first-pass guess and entropy-model step need it.
	BitsPerValue float64
	// Calibrated enables the measured-MSE refinement loop for ModePSNR
	// (ModeRatio always steers; there is no single-pass ratio formula).
	Calibrated bool
	// Tuning carries the acceptance bands and pass limit the targets
	// share (zero fields select the documented defaults).
	Tuning Tuning
}

// Resolution is the outcome of planning: the bounds a codec should run
// with, plus the header annotations.
type Resolution struct {
	// EbAbs is the absolute bound handed to the codec (0 for constant
	// fields in ModeAbs and for ModePWRel, which carries its bound in
	// PWRelBound).
	EbAbs float64
	// EbRel is EbAbs expressed against the value range (0 when the
	// range is zero).
	EbRel float64
	// TargetPSNR echoes the requested PSNR (NaN for other modes).
	TargetPSNR float64
	// EstimatedPSNR is the closed-form Eq. 7 prediction of the actual
	// PSNR at EbAbs (+Inf for constant fields).
	EstimatedPSNR float64
	// StreamMode annotates the stream header.
	StreamMode codec.Mode
	// PWRel marks a pointwise-relative request, which bypasses the
	// absolute-bound path entirely (log-domain compression).
	PWRel bool
}

// Resolve derives the codec-facing bounds for a field of value range vr.
// This is the entire planning overhead of every mode — a handful of
// floating-point operations (Eq. 8 for ModePSNR).
func (r Request) Resolve(vr float64) (Resolution, error) {
	res := Resolution{TargetPSNR: math.NaN(), StreamMode: r.Mode.StreamMode()}
	switch r.Mode {
	case ModeAbs:
		if !(r.ErrorBound > 0) {
			if vr == 0 { // constant fields need no bound
				break
			}
			return Resolution{}, fmt.Errorf("plan: ModeAbs requires a positive ErrorBound")
		}
		res.EbAbs = r.ErrorBound
	case ModeRel:
		if !(r.RelBound > 0) {
			return Resolution{}, fmt.Errorf("plan: ModeRel requires a positive RelBound")
		}
		res.EbAbs = r.RelBound * vr
	case ModePSNR:
		p, err := core.PlanFixedPSNR(r.TargetPSNR, vr)
		if err != nil {
			return Resolution{}, err
		}
		res.EbAbs = p.EbAbs
		res.TargetPSNR = r.TargetPSNR
	case ModePWRel:
		res.PWRel = true
		res.EstimatedPSNR = math.Inf(1)
		return res, nil
	case ModeRatio:
		if !(r.TargetRatio > 1) || math.IsInf(r.TargetRatio, 0) {
			return Resolution{}, fmt.Errorf("plan: ModeRatio requires a finite TargetRatio > 1")
		}
		if vr == 0 { // constant fields compress to a header; no steering
			break
		}
		bpp := r.BitsPerValue
		if bpp <= 0 {
			bpp = 64
		}
		res.EbAbs = core.InitialBoundForRatio(r.TargetRatio, vr, bpp)
	default:
		return Resolution{}, fmt.Errorf("plan: unknown mode %v", r.Mode)
	}
	if vr > 0 {
		res.EbRel = res.EbAbs / vr
	}
	res.EstimatedPSNR = core.EstimatePSNRFromAbsBound(vr, res.EbAbs)
	return res, nil
}
