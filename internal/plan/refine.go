package plan

import (
	"context"
	"fmt"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/core"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/parallel"
)

// refineTolDB is the calibrated mode's acceptance band around the target.
const refineTolDB = 0.5

// refineMaxPasses bounds the extra compressions the secant loop may take.
const refineMaxPasses = 3

// Refine implements the calibrated fixed-PSNR mode for any codec that
// measures its exact MSE during compression (Theorem 1): when the first
// (Eq. 8) pass lands outside ±0.5 dB of the target — which happens at low
// targets where prediction errors concentrate in the center bin — the bin
// width is re-derived by a log–log secant step and the field
// recompressed, up to three extra passes. High targets exit after the
// first pass at no extra cost.
//
// The fixed-PSNR guarantee is global: the field MSE the loop steers on is
// the point-count-weighted mean of the per-chunk MSEs recorded in the
// stream's chunk table (falling back to the aggregate in Stats for
// streams without measured chunk statistics). On chunked streams from a
// codec.ChunkCodec, each extra pass recompresses only the chunks whose
// error contribution is stale at the new bound — a chunk whose recorded
// MSE is already zero reconstructs exactly at any bound, so its payload
// is kept verbatim and its previous bound is pinned in its chunk entry.
//
// A secant step that repeats the previous bin width (d1 == d0) would loop
// without progress; Refine reports it as an explicit error instead of
// silently accepting an off-target stream.
//
// blob and st are the first pass's output at opt.ErrorBound. Refine
// returns the final stream, stats, and the absolute bound it settled on.
// Codecs without MSE measurement (and constant fields) pass through
// unchanged.
//
// ctx is checked before every extra compression pass (and threaded into
// the codec, which checks it between chunks), so a cancelled refinement
// aborts promptly with ctx.Err(). sc supplies reusable scratch buffers to
// each pass (nil = allocate fresh).
func Refine(ctx context.Context, f *field.Field, c codec.Codec, opt codec.Options, blob []byte, st *codec.Stats, target, vr float64, sc *codec.Scratch) ([]byte, *codec.Stats, float64, error) {
	ebAbs := opt.ErrorBound
	if !c.MeasuresMSE() || !(vr > 0) {
		return blob, st, ebAbs, nil
	}
	targetMSE := core.MSEForPSNR(target, vr)
	mse := measuredMSE(blob, st)
	d0, mse0 := 2*opt.ErrorBound, mse
	var d1, mse1 float64
	for pass := 0; pass < refineMaxPasses && !core.WithinTolerance(mse, target, vr, refineTolDB); pass++ {
		if mse == 0 {
			break // lossless at this bound; nothing cheaper to try safely
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, err
		}
		next, err := core.NextDelta(d0, mse0, d1, mse1, targetMSE)
		if err != nil {
			break
		}
		cur := d1
		if cur == 0 {
			cur = d0
		}
		if next == cur {
			// The secant step proposes the bin width it just measured
			// (the degenerate d1 == d0 case — e.g. a distortion curve
			// that does not respond to the bound). Accepting the stream
			// silently would misreport the calibration, so fail loudly.
			actual := -10*math.Log10(mse) + 20*math.Log10(vr)
			return nil, nil, 0, fmt.Errorf(
				"plan: calibrated refinement stalled: secant step repeats δ=%g (measured %.2f dB vs target %.2f dB)",
				next, actual, target)
		}
		if d1 > 0 {
			d0, mse0 = d1, mse1
		}
		opt.ErrorBound = next / 2
		nb, nst, nerr := recompress(ctx, f, c, opt, blob, sc)
		if nerr != nil {
			return nil, nil, 0, nerr
		}
		blob, st = nb, nst
		ebAbs = next / 2
		mse = measuredMSE(blob, st)
		d1, mse1 = next, mse
	}
	return blob, st, ebAbs, nil
}

// measuredMSE returns the field MSE the refinement loop steers on: the
// point-count-weighted aggregate of the per-chunk MSEs in the stream's
// chunk table when every chunk is measured, the codec's Stats.MSE
// otherwise.
func measuredMSE(blob []byte, st *codec.Stats) float64 {
	if h, err := codec.ParseHeader(blob); err == nil {
		if agg := h.AggregateMSE(); !math.IsNaN(agg) {
			return agg
		}
	}
	return st.MSE
}

// recompress produces a stream at the (new) bound in opt. For chunked
// streams from a ChunkCodec it recompresses only the stale chunks —
// those whose recorded MSE contribution would change at the new bound —
// and reuses the rest verbatim, pinning their previous bound in their
// chunk entries; otherwise it falls back to a full Compress pass.
func recompress(ctx context.Context, f *field.Field, c codec.Codec, opt codec.Options, prev []byte, sc *codec.Scratch) ([]byte, *codec.Stats, error) {
	cc, ok := c.(codec.ChunkCodec)
	if !ok {
		return c.Compress(ctx, f, opt, sc)
	}
	h, err := codec.ParseHeader(prev)
	if err != nil || len(h.Chunks) == 0 || math.IsNaN(h.AggregateMSE()) {
		return c.Compress(ctx, f, opt, sc)
	}

	inner := h.InnerPoints()
	copt := opt
	copt.Capacity = h.Capacity // keep the container's quantizer geometry across passes
	payloads := make([][]byte, len(h.Chunks))
	chunks := make([]codec.ChunkInfo, len(h.Chunks))
	err = parallel.ForEachCtx(ctx, len(h.Chunks), opt.Workers, func(ci int) error {
		ck := h.Chunks[ci]
		if ck.MSE == 0 {
			// Exact reconstruction at the previous bound: the chunk's
			// error contribution is already final, so keep the payload
			// and record the bound it was actually quantized with.
			pl, err := codec.ChunkPayload(prev, h, ci)
			if err != nil {
				return err
			}
			payloads[ci] = pl
			ck.EbAbs = h.ChunkBound(ci)
			chunks[ci] = ck
			return nil
		}
		lo := ck.RowStart
		sub := f.Data[lo*inner : (lo+ck.Rows)*inner]
		pl, cst, err := cc.CompressChunk(ctx, sub, h.ChunkDims(ci), h.Precision, copt, sc)
		if err != nil {
			return err
		}
		payloads[ci] = pl
		chunks[ci] = codec.ChunkInfo{
			Rows:          ck.Rows,
			Unpredictable: cst.Unpredictable,
			MSE:           cst.MSE,
			Min:           cst.Min,
			Max:           cst.Max,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	nh := &codec.Header{
		Codec:      h.Codec,
		Precision:  h.Precision,
		Mode:       h.Mode,
		Name:       h.Name,
		Dims:       h.Dims,
		EbAbs:      opt.ErrorBound,
		TargetPSNR: h.TargetPSNR,
		ValueRange: h.ValueRange,
		Capacity:   h.Capacity,
		Chunks:     chunks,
	}
	out, err := codec.AssembleStream(nh, payloads)
	if err != nil {
		return nil, nil, err
	}
	st := codec.StatsFromChunks(nh, len(out), f.SizeBytes())
	if h.ValueRange > 0 {
		st.ValueRange = h.ValueRange
	}
	return out, st, nil
}
