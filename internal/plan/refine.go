package plan

import (
	"context"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/core"
	"fixedpsnr/internal/field"
)

// refineTolDB is the calibrated mode's acceptance band around the target.
const refineTolDB = 0.5

// refineMaxPasses bounds the extra compressions the secant loop may take.
const refineMaxPasses = 3

// Refine implements the calibrated fixed-PSNR mode for any codec that
// measures its exact MSE during compression (Theorem 1): when the first
// (Eq. 8) pass lands outside ±0.5 dB of the target — which happens at low
// targets where prediction errors concentrate in the center bin — the bin
// width is re-derived by a log–log secant step and the field
// recompressed, up to three extra passes. High targets exit after the
// first pass at no extra cost.
//
// blob and st are the first pass's output at opt.ErrorBound. Refine
// returns the final stream, stats, and the absolute bound it settled on.
// Codecs without MSE measurement (and constant fields) pass through
// unchanged.
//
// ctx is checked before every extra compression pass (and threaded into
// the codec, which checks it between slabs), so a cancelled refinement
// aborts promptly with ctx.Err(). sc supplies reusable scratch buffers to
// each pass (nil = allocate fresh).
func Refine(ctx context.Context, f *field.Field, c codec.Codec, opt codec.Options, blob []byte, st *codec.Stats, target, vr float64, sc *codec.Scratch) ([]byte, *codec.Stats, float64, error) {
	ebAbs := opt.ErrorBound
	if !c.MeasuresMSE() || !(vr > 0) {
		return blob, st, ebAbs, nil
	}
	targetMSE := core.MSEForPSNR(target, vr)
	d0, mse0 := 2*opt.ErrorBound, st.MSE
	var d1, mse1 float64
	for pass := 0; pass < refineMaxPasses && !core.WithinTolerance(st.MSE, target, vr, refineTolDB); pass++ {
		if st.MSE == 0 {
			break // lossless at this bound; nothing cheaper to try safely
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, err
		}
		next, err := core.NextDelta(d0, mse0, d1, mse1, targetMSE)
		if err != nil {
			break
		}
		if d1 > 0 {
			d0, mse0 = d1, mse1
		}
		opt.ErrorBound = next / 2
		nb, nst, nerr := c.Compress(ctx, f, opt, sc)
		if nerr != nil {
			return nil, nil, 0, nerr
		}
		blob, st = nb, nst
		ebAbs = next / 2
		d1, mse1 = next, st.MSE
	}
	return blob, st, ebAbs, nil
}
