package plan

import (
	"context"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
)

// Drive is the generic quality-steering loop: given the first pass's
// output at opt.ErrorBound, it measures the target's statistic, asks the
// target's solver for the next bound, and recompresses until the target
// accepts the stream or its pass budget runs out — whichever comes first.
// The codec never learns what it is being steered toward; it only ever
// sees an absolute bound.
//
// For the fixed-PSNR target this is the paper's calibrated mode
// (Theorem 1: the quantization-stage MSE equals the end-to-end MSE, so
// each pass measures its exact distortion for free); for the fixed-ratio
// target the same loop steers on aggregate compressed bytes. Both steer
// on statistics aggregated from the stream's chunk table when present,
// and both recompress through the chunk-aware path: a distortion-steered
// target keeps exact (MSE == 0) chunks verbatim across passes, a
// size-steered one redoes every chunk at the new bound.
//
// Drive returns the final stream, stats, the absolute bound it settled
// on, and the number of compression passes consumed (1 = the first pass
// was accepted as-is). A nil target — single-pass modes — passes the
// first pass through untouched. ctx is checked before every extra
// compression pass (and threaded into the codec, which checks it between
// chunks); sc supplies reusable scratch buffers to each pass (nil =
// allocate fresh).
func Drive(ctx context.Context, f *field.Field, c codec.Codec, opt codec.Options, blob []byte, st *codec.Stats, tgt Target, sc *codec.Scratch) ([]byte, *codec.Stats, float64, int, error) {
	ebAbs := opt.ErrorBound
	if tgt == nil {
		return blob, st, ebAbs, 1, nil
	}
	history := []Pass{{Bound: ebAbs, Measured: tgt.Measure(blob, st)}}
	for pass := 0; pass < tgt.MaxPasses(); pass++ {
		next, done, err := tgt.Solve(history)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if done {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, 0, err
		}
		opt.ErrorBound = next
		nb, nst, nerr := recompress(ctx, f, c, opt, blob, tgt.PinExactChunks(), sc)
		if nerr != nil {
			return nil, nil, 0, 0, nerr
		}
		blob, st, ebAbs = nb, nst, next
		history = append(history, Pass{Bound: next, Measured: tgt.Measure(blob, st)})
	}
	return blob, st, ebAbs, len(history), nil
}

// recompress produces a stream at the (new) bound in opt. For chunked
// streams from a ChunkCodec it reuses the previous pass's tiling and
// container geometry, recompressing chunks in parallel through the same
// recompressSubset worker the region-group loop uses; with pinExact set,
// chunks whose recorded MSE is zero — already exact, so their error
// contribution is final at any bound — keep their payloads verbatim with
// their previous bound pinned in their chunk entries. Non-chunked
// streams (and, under pinExact, streams without measured chunk
// statistics) fall back to a full Compress pass.
func recompress(ctx context.Context, f *field.Field, c codec.Codec, opt codec.Options, prev []byte, pinExact bool, sc *codec.Scratch) ([]byte, *codec.Stats, error) {
	cc, ok := c.(codec.ChunkCodec)
	if !ok {
		return c.Compress(ctx, f, opt, sc)
	}
	h, err := codec.ParseHeader(prev)
	if err != nil || len(h.Chunks) == 0 {
		return c.Compress(ctx, f, opt, sc)
	}
	if pinExact && math.IsNaN(h.AggregateMSE()) {
		// Pinning decisions need measured per-chunk MSEs.
		return c.Compress(ctx, f, opt, sc)
	}

	copt := opt
	copt.Capacity = h.Capacity // keep the container's quantizer geometry across passes
	work := &codec.Header{
		Codec:      h.Codec,
		Precision:  h.Precision,
		Mode:       h.Mode,
		Name:       h.Name,
		Dims:       h.Dims,
		EbAbs:      opt.ErrorBound,
		TargetPSNR: h.TargetPSNR,
		ValueRange: h.ValueRange,
		Capacity:   h.Capacity,
		Chunks:     append([]codec.ChunkInfo(nil), h.Chunks...),
	}
	payloads := make([][]byte, len(h.Chunks))
	subset := make([]int, len(h.Chunks))
	for ci := range h.Chunks {
		if payloads[ci], err = codec.ChunkPayload(prev, h, ci); err != nil {
			return nil, nil, err
		}
		// Chunks that stay pinned keep the bound they were actually
		// quantized with; recompressed entries reset to the implicit
		// header bound inside recompressSubset.
		work.Chunks[ci].EbAbs = h.ChunkBound(ci)
		subset[ci] = ci
	}
	if err := recompressSubset(ctx, f, cc, copt, work, subset, payloads, opt.ErrorBound, pinExact, false, sc); err != nil {
		return nil, nil, err
	}

	out, err := codec.AssembleStream(work, payloads)
	if err != nil {
		return nil, nil, err
	}
	st := codec.StatsFromChunks(work, len(out), f.SizeBytes())
	if h.ValueRange > 0 {
		st.ValueRange = h.ValueRange
	}
	return out, st, nil
}
