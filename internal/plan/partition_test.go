package plan

import (
	"math"
	"strings"
	"testing"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
)

// chunkedHeader builds a parsed-looking header with the given chunk row
// spans.
func chunkedHeader(rows ...int) *codec.Header {
	h := &codec.Header{Precision: field.Float64, Dims: []int{0, 4}}
	start := 0
	for _, r := range rows {
		h.Chunks = append(h.Chunks, codec.ChunkInfo{Rows: r, RowStart: start})
		start += r
	}
	h.Dims[0] = start
	return h
}

func TestBuildPartitionAssignsByRowIntersection(t *testing.T) {
	h := chunkedHeader(16, 16, 16, 16) // rows [0,64)
	specs := []GroupSpec{
		{Name: "roi", RowLo: 16, RowHi: 30}, // intersects chunk 1 only
		{Name: "tail", RowLo: 47, RowHi: 64}, // last row of chunk 2 + chunk 3
		{Name: "background", Default: true},
	}
	p, err := BuildPartition(h, specs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 0, 1, 1}
	for ci, g := range p.ChunkGroup {
		if g != want[ci] {
			t.Fatalf("chunk %d assigned to %q, want %q", ci, specs[g].Name, specs[want[ci]].Name)
		}
	}
	if len(p.Subset(0)) != 1 || len(p.Subset(1)) != 2 || len(p.Subset(2)) != 1 {
		t.Fatalf("subsets = %v %v %v", p.Subset(0), p.Subset(1), p.Subset(2))
	}
}

func TestBuildPartitionRejectsStraddledChunk(t *testing.T) {
	h := chunkedHeader(16, 16)
	specs := []GroupSpec{
		{Name: "a", RowLo: 0, RowHi: 4},
		{Name: "b", RowLo: 8, RowHi: 12}, // disjoint windows, same chunk
		{Name: "background", Default: true},
	}
	if _, err := BuildPartition(h, specs); err == nil || !strings.Contains(err.Error(), "claimed by regions") {
		t.Fatalf("err = %v, want straddle rejection", err)
	}
}

func TestBuildPartitionNeedsExactlyOneDefault(t *testing.T) {
	h := chunkedHeader(8)
	if _, err := BuildPartition(h, []GroupSpec{{Name: "a", RowLo: 0, RowHi: 8}}); err == nil {
		t.Fatal("accepted partition without a default group")
	}
	if _, err := BuildPartition(h, []GroupSpec{
		{Name: "a", Default: true}, {Name: "b", Default: true},
	}); err == nil {
		t.Fatal("accepted two default groups")
	}
}

func TestBuildPartitionEmptyDefaultIsFine(t *testing.T) {
	h := chunkedHeader(16, 16)
	p, err := BuildPartition(h, []GroupSpec{
		{Name: "all", RowLo: 0, RowHi: 32},
		{Name: "background", Default: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subset(0)) != 2 || len(p.Subset(1)) != 0 {
		t.Fatalf("subsets = %v %v", p.Subset(0), p.Subset(1))
	}
}

// TestGroupMeasures pins the group-statistic helpers both steering
// targets are built on: point-weighted MSE and payload-based ratio over
// a chunk subset.
func TestGroupMeasures(t *testing.T) {
	h := chunkedHeader(16, 48)
	h.Chunks[0].MSE, h.Chunks[0].Len = 1e-6, 100
	h.Chunks[1].MSE, h.Chunks[1].Len = 4e-6, 300

	pt := NewPSNRTarget(60, 2, Tuning{}).(GroupTarget)
	if got := pt.MeasureGroup(h, []int{0}); got != 1e-6 {
		t.Fatalf("single-chunk MSE = %g", got)
	}
	// (16·1e-6 + 48·4e-6) / 64 rows, uniform inner size.
	if got, want := pt.MeasureGroup(h, []int{0, 1}), (16*1e-6+48*4e-6)/64; math.Abs(got-want) > 1e-20 {
		t.Fatalf("weighted MSE = %g, want %g", got, want)
	}

	rt := NewRatioTarget(8, 64, Tuning{}).(GroupTarget)
	// 16 rows × 4 inner × 8 bytes over 100 payload bytes.
	if got, want := rt.MeasureGroup(h, []int{0}), float64(16*4*8)/100; got != want {
		t.Fatalf("group ratio = %g, want %g", got, want)
	}
}
