package plan

import (
	"context"
	"math"
	"strings"
	"testing"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
)

// flatCodec measures an MSE that never responds to the bound — the
// degenerate case where two refinement passes measure the same (δ, MSE)
// point and the secant step repeats itself (d1 == d0).
type flatCodec struct {
	mse          float64
	compressions int
}

func (c *flatCodec) Name() string      { return "flat" }
func (c *flatCodec) IDs() []codec.ID   { return []codec.ID{250} }
func (c *flatCodec) MeasuresMSE() bool { return true }

func (c *flatCodec) Compress(ctx context.Context, f *field.Field, opt codec.Options, sc *codec.Scratch) ([]byte, *codec.Stats, error) {
	c.compressions++
	return []byte{0xFA}, &codec.Stats{MSE: c.mse, ValueRange: 1}, nil
}

func (c *flatCodec) Decompress([]byte) (*field.Field, *codec.Header, error) {
	return nil, nil, nil
}

// TestRefineStallIsAnError: when two equal passes make the secant step
// propose the bin width it just measured, Refine must fail loudly rather
// than silently accept an off-target stream.
func TestRefineStallIsAnError(t *testing.T) {
	f := field.New("flat", field.Float64, 4, 4)
	c := &flatCodec{mse: 1e-2} // 20 dB at vr=1, far from the 40 dB target
	opt := codec.Options{ErrorBound: 0.01}
	blob, st, err := c.Compress(context.Background(), f, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = Refine(context.Background(), f, c, opt, blob, st, 40, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want refinement-stalled error", err)
	}
	// The first extra pass moves the bound and measures the same MSE;
	// the next secant step then repeats δ and the stall is detected
	// before any further compression (1 initial + 1 extra).
	if c.compressions != 2 {
		t.Fatalf("compressions = %d, want 2 (initial + one extra pass, then stall)", c.compressions)
	}
}

// TestRefineWithinToleranceExitsClean: a first pass already inside the
// band never recompresses and never errors.
func TestRefineWithinToleranceExitsClean(t *testing.T) {
	f := field.New("ok", field.Float64, 4, 4)
	target := 40.0
	mse := math.Pow(10, -target/10) // exactly on target at vr=1
	c := &flatCodec{mse: mse}
	opt := codec.Options{ErrorBound: 0.01}
	blob, st, err := c.Compress(context.Background(), f, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	nb, nst, eb, err := Refine(context.Background(), f, c, opt, blob, st, target, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.compressions != 1 || eb != opt.ErrorBound || &nb[0] != &blob[0] || nst.MSE != mse {
		t.Fatalf("within-tolerance pass must be a no-op (compressions=%d)", c.compressions)
	}
}
