package plan

import (
	"context"
	"fmt"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/parallel"
)

// Region-group steering: one field, several quality targets. A Partition
// maps the chunked container's row slabs onto named region groups — a
// region of interest held at a high fixed PSNR, the background steered to
// a cheap fixed ratio — and DriveGroups runs one Measure/Solve/accept
// loop per group over only that group's chunks, recompressing stale
// chunks selectively while every other group stays pinned. The global
// fixed-PSNR accounting is unchanged: the final stream's AggregateMSE is
// still the point-weighted mean over all chunks.

// GroupSpec is one region group's steering demand: the half-open row
// window it claims along the slowest dimension (region groups), or the
// default group that takes every unclaimed chunk.
type GroupSpec struct {
	// Name identifies the group in the stream's group table and in
	// results ("roi0", "background", ...).
	Name string
	// RowLo and RowHi bound the rows the group's region covers along
	// dims[0] (ignored for the default group). A chunk whose row span
	// intersects the window joins the group — region boundaries round
	// outward to chunk boundaries.
	RowLo, RowHi int
	// Request is the group's error-control demand; its mode and targets
	// are recorded in the stream's group table.
	Request Request
	// Default marks the field-level fallback group that claims every
	// chunk no region touches.
	Default bool
}

// Partition is the resolved chunk→group assignment for one stream: the
// group specs plus, per chunk, the index of the group that owns it.
type Partition struct {
	Specs []GroupSpec
	// ChunkGroup[ci] is the index into Specs of chunk ci's group.
	ChunkGroup []int
	// subsets[g] lists the chunk indices of group g, in chunk order.
	subsets [][]int
}

// Subset returns the chunk indices owned by group g.
func (p *Partition) Subset(g int) []int { return p.subsets[g] }

// BuildPartition assigns every chunk of a parsed chunk table to a group:
// a chunk joins the region group whose row window its rows intersect,
// and unclaimed chunks fall to the default group. A chunk claimed by two
// region groups is an error — region row windows are validated disjoint
// upstream, but two disjoint windows can still straddle one chunk, and
// silently splitting it would break both groups' guarantees. So is a
// claimed chunk with no default group to fall back to elsewhere.
func BuildPartition(h *codec.Header, specs []GroupSpec) (*Partition, error) {
	def := -1
	for gi := range specs {
		if specs[gi].Default {
			if def >= 0 {
				return nil, fmt.Errorf("plan: two default groups (%q and %q)", specs[def].Name, specs[gi].Name)
			}
			def = gi
		}
	}
	if def < 0 {
		return nil, fmt.Errorf("plan: partition needs a default group for unclaimed chunks")
	}
	p := &Partition{
		Specs:      specs,
		ChunkGroup: make([]int, len(h.Chunks)),
		subsets:    make([][]int, len(specs)),
	}
	for ci := range h.Chunks {
		ck := &h.Chunks[ci]
		lo, hi := ck.RowStart, ck.RowStart+ck.Rows
		owner := def
		for gi := range specs {
			g := &specs[gi]
			if g.Default || g.RowLo >= hi || g.RowHi <= lo {
				continue
			}
			if owner != def {
				return nil, fmt.Errorf(
					"plan: chunk %d (rows [%d,%d)) is claimed by regions %q and %q: region row windows must not share a chunk (smaller ChunkPoints separates them)",
					ci, lo, hi, specs[owner].Name, g.Name)
			}
			owner = gi
		}
		p.ChunkGroup[ci] = owner
		p.subsets[owner] = append(p.subsets[owner], ci)
	}
	return p, nil
}

// GroupOutcome reports one group's steering result: the bound it settled
// on, the group's final measured distortion and payload-based
// compression ratio, and the compression passes that touched the group's
// chunks (1 = the shared first pass was accepted as-is).
type GroupOutcome struct {
	Name        string
	Mode        Mode
	TargetPSNR  float64 // NaN unless the group steers on PSNR
	TargetRatio float64 // 0 unless the group steers on ratio
	EbAbs       float64 // absolute bound the group settled on
	// MSE is the group's point-weighted aggregate MSE (NaN when the
	// pipeline does not measure it).
	MSE float64
	// Ratio is the group's compression ratio on payload bytes: nominal
	// storage footprint over summed chunk payloads.
	Ratio        float64
	Passes       int
	Chunks       int
	Points       int
	PayloadBytes int
}

// DriveGroups is the group-aware generalization of Drive: it takes the
// first full-field pass (compressed at the default group's bound), maps
// its chunks onto the partition's groups, and then runs every group's
// own Measure/Solve/accept loop over only that group's chunks. Region
// groups whose initial bound differs from the first pass's start with a
// recompression of their chunks at their own bound; from there each
// group's target steers exactly as in Drive, with exact chunks pinned
// across passes for distortion targets. Chunks outside a group are never
// touched by that group's passes.
//
// The returned stream is a version-4 grouped container: group table from
// the specs, per-chunk group IDs and quantization bounds, and the global
// Header.AggregateMSE accounting intact. Outcomes are reported in spec
// order.
func DriveGroups(ctx context.Context, f *field.Field, c codec.Codec, opt codec.Options, blob []byte, part *Partition, vr float64, sc *codec.Scratch) ([]byte, *codec.Stats, []GroupOutcome, error) {
	cc, ok := c.(codec.ChunkCodec)
	if !ok {
		return nil, nil, nil, fmt.Errorf("plan: region groups need chunk-granular recompression: %w", codec.ErrNotChunked)
	}
	h, err := codec.ParseHeader(blob)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(h.Chunks) == 0 {
		return nil, nil, nil, fmt.Errorf("plan: region groups need a chunked stream (codec %v wrote none)", h.Codec)
	}
	if len(part.ChunkGroup) != len(h.Chunks) {
		return nil, nil, nil, fmt.Errorf("plan: partition covers %d chunks, stream has %d", len(part.ChunkGroup), len(h.Chunks))
	}

	// Working state: the chunk table and payload slices of the stream
	// being steered. Recompression rewrites entries and payloads in
	// place; the final header is assembled once, after every group
	// settles.
	work := &codec.Header{
		Codec:      h.Codec,
		Precision:  h.Precision,
		Mode:       h.Mode,
		Name:       h.Name,
		Dims:       h.Dims,
		EbAbs:      h.EbAbs,
		TargetPSNR: h.TargetPSNR,
		ValueRange: h.ValueRange,
		Capacity:   h.Capacity,
		Chunks:     append([]codec.ChunkInfo(nil), h.Chunks...),
	}
	payloads := make([][]byte, len(h.Chunks))
	for ci := range h.Chunks {
		if payloads[ci], err = codec.ChunkPayload(blob, h, ci); err != nil {
			return nil, nil, nil, err
		}
		// Every chunk records the bound it was actually quantized with:
		// grouped streams have no single field-level bound to fall back
		// to, so the per-chunk entry is authoritative.
		work.Chunks[ci].EbAbs = h.ChunkBound(ci)
		work.Chunks[ci].Group = part.ChunkGroup[ci]
	}

	copt := opt
	copt.Capacity = h.Capacity // keep the container's quantizer geometry across passes

	outcomes := make([]GroupOutcome, len(part.Specs))
	for gi := range part.Specs {
		g := &part.Specs[gi]
		subset := part.Subset(gi)
		out := &outcomes[gi]
		out.Name = g.Name
		out.Mode = g.Request.Mode
		out.TargetPSNR = math.NaN()
		if g.Request.Mode == ModePSNR {
			out.TargetPSNR = g.Request.TargetPSNR
		}
		if g.Request.Mode == ModeRatio {
			out.TargetRatio = g.Request.TargetRatio
		}
		out.Chunks = len(subset)
		if len(subset) == 0 {
			out.EbAbs = h.EbAbs
			out.MSE = math.NaN()
			out.Ratio = math.NaN()
			continue
		}

		res, err := g.Request.Resolve(vr)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("plan: group %q: %w", g.Name, err)
		}
		tgt := g.Request.BuildTarget(c, vr)
		var gt GroupTarget
		if tgt != nil {
			if gt, ok = tgt.(GroupTarget); !ok {
				return nil, nil, nil, fmt.Errorf("plan: group %q: target %s cannot steer a region group", g.Name, tgt.Describe())
			}
		}
		pin := tgt != nil && tgt.PinExactChunks()

		bound := h.EbAbs // the shared first pass ran at the default bound
		passes := 1
		if !g.Default && res.EbAbs != bound {
			// The group's own first pass: its chunks move to the group's
			// initial bound while every other group's chunks stay put.
			if err := recompressSubset(ctx, f, cc, copt, work, subset, payloads, res.EbAbs, pin, true, sc); err != nil {
				return nil, nil, nil, fmt.Errorf("plan: group %q: %w", g.Name, err)
			}
			bound = res.EbAbs
			passes++
		}
		if gt != nil {
			history := []Pass{{Bound: bound, Measured: gt.MeasureGroup(work, subset)}}
			for p := 0; p < tgt.MaxPasses(); p++ {
				next, done, err := gt.Solve(history)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("plan: group %q: %w", g.Name, err)
				}
				if done {
					break
				}
				if err := ctx.Err(); err != nil {
					return nil, nil, nil, err
				}
				if err := recompressSubset(ctx, f, cc, copt, work, subset, payloads, next, pin, true, sc); err != nil {
					return nil, nil, nil, fmt.Errorf("plan: group %q: %w", g.Name, err)
				}
				bound = next
				passes++
				history = append(history, Pass{Bound: next, Measured: gt.MeasureGroup(work, subset)})
			}
		}
		out.EbAbs = bound
		out.Passes = passes
		out.Points = work.GroupPoints(subset)
		out.PayloadBytes = work.GroupPayloadBytes(subset)
		out.MSE = work.GroupAggregateMSE(subset)
		out.Ratio = math.NaN()
		if orig := float64(out.Points) * float64(work.Precision.Bytes()); orig > 0 && out.PayloadBytes > 0 {
			out.Ratio = orig / float64(out.PayloadBytes)
		}
		if g.Default {
			work.EbAbs = bound
		}
	}

	work.Groups = make([]codec.GroupInfo, len(part.Specs))
	for gi := range part.Specs {
		work.Groups[gi] = codec.GroupInfo{
			Name:        part.Specs[gi].Name,
			Mode:        outcomes[gi].Mode.StreamMode(),
			TargetPSNR:  outcomes[gi].TargetPSNR,
			TargetRatio: outcomes[gi].TargetRatio,
		}
	}
	final, err := codec.AssembleStream(work, payloads)
	if err != nil {
		return nil, nil, nil, err
	}
	st := codec.StatsFromChunks(work, len(final), f.SizeBytes())
	if h.ValueRange > 0 {
		st.ValueRange = h.ValueRange
	}
	return final, st, outcomes, nil
}

// recompressSubset recompresses one chunk subset at a new bound, leaving
// every other chunk untouched. With pin set (distortion-steered
// targets), chunks whose recorded MSE is zero — exact at their current
// bound, so their error contribution is final — keep their payloads and
// entries verbatim; pinning is skipped entirely when any chunk in the
// subset lacks a measured MSE, because the pinning decision needs one.
//
// explicit selects the bound bookkeeping of recompressed entries: group
// steering records the bound in every chunk entry (grouped streams have
// no single field-level bound), while the field-wide loop leaves it 0 —
// "the header bound" — preserving the historical ungrouped entry layout
// byte for byte.
func recompressSubset(ctx context.Context, f *field.Field, cc codec.ChunkCodec, copt codec.Options, work *codec.Header, subset []int, payloads [][]byte, bound float64, pin, explicit bool, sc *codec.Scratch) error {
	if pin {
		for _, ci := range subset {
			if math.IsNaN(work.Chunks[ci].MSE) {
				pin = false
				break
			}
		}
	}
	inner := work.InnerPoints()
	copt.ErrorBound = bound
	return parallel.ForEachCtx(ctx, len(subset), copt.Workers, func(i int) error {
		ci := subset[i]
		ck := &work.Chunks[ci]
		if pin && ck.MSE == 0 {
			return nil // exact at its recorded bound; payload and entry stay
		}
		lo := ck.RowStart
		sub := f.Data[lo*inner : (lo+ck.Rows)*inner]
		pl, cst, err := cc.CompressChunk(ctx, sub, work.ChunkDims(ci), work.Precision, copt, sc)
		if err != nil {
			return err
		}
		payloads[ci] = pl
		ck.Len = len(pl)
		ck.Unpredictable = cst.Unpredictable
		ck.EbAbs = 0
		if explicit {
			ck.EbAbs = bound
		}
		ck.MSE = cst.MSE
		ck.Min = cst.Min
		ck.Max = cst.Max
		return nil
	})
}
