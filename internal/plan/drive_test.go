package plan

import (
	"context"
	"math"
	"strings"
	"testing"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
)

// flatCodec measures an MSE that never responds to the bound — the
// degenerate case where two refinement passes measure the same (δ, MSE)
// point and the secant step repeats itself (d1 == d0).
type flatCodec struct {
	mse          float64
	compressions int
}

func (c *flatCodec) Name() string      { return "flat" }
func (c *flatCodec) IDs() []codec.ID   { return []codec.ID{250} }
func (c *flatCodec) MeasuresMSE() bool { return true }

func (c *flatCodec) Compress(ctx context.Context, f *field.Field, opt codec.Options, sc *codec.Scratch) ([]byte, *codec.Stats, error) {
	c.compressions++
	return []byte{0xFA}, &codec.Stats{MSE: c.mse, ValueRange: 1}, nil
}

func (c *flatCodec) Decompress([]byte) (*field.Field, *codec.Header, error) {
	return nil, nil, nil
}

// psnrDrive runs the calibrated fixed-PSNR target through the generic
// loop — the shape every caller uses.
func psnrDrive(t *testing.T, c codec.Codec, opt codec.Options, blob []byte, st *codec.Stats, target, vr float64) ([]byte, *codec.Stats, float64, int, error) {
	t.Helper()
	tgt := NewPSNRTarget(target, vr, Tuning{})
	return Drive(context.Background(), field.New("f", field.Float64, 4, 4), c, opt, blob, st, tgt, nil)
}

// TestDriveStallIsAnError: when two equal passes make the secant step
// propose the bin width it just measured, the fixed-PSNR target must fail
// loudly rather than silently accept an off-target stream.
func TestDriveStallIsAnError(t *testing.T) {
	c := &flatCodec{mse: 1e-2} // 20 dB at vr=1, far from the 40 dB target
	opt := codec.Options{ErrorBound: 0.01}
	blob, st, err := c.Compress(context.Background(), nil, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, err = psnrDrive(t, c, opt, blob, st, 40, 1)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want refinement-stalled error", err)
	}
	// The first extra pass moves the bound and measures the same MSE;
	// the next secant step then repeats δ and the stall is detected
	// before any further compression (1 initial + 1 extra).
	if c.compressions != 2 {
		t.Fatalf("compressions = %d, want 2 (initial + one extra pass, then stall)", c.compressions)
	}
}

// TestDriveWithinToleranceExitsClean: a first pass already inside the
// band never recompresses and never errors.
func TestDriveWithinToleranceExitsClean(t *testing.T) {
	target := 40.0
	mse := math.Pow(10, -target/10) // exactly on target at vr=1
	c := &flatCodec{mse: mse}
	opt := codec.Options{ErrorBound: 0.01}
	blob, st, err := c.Compress(context.Background(), nil, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	nb, nst, eb, passes, err := psnrDrive(t, c, opt, blob, st, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.compressions != 1 || eb != opt.ErrorBound || &nb[0] != &blob[0] || nst.MSE != mse || passes != 1 {
		t.Fatalf("within-tolerance pass must be a no-op (compressions=%d passes=%d)", c.compressions, passes)
	}
}

// TestDriveNilTargetPassesThrough: single-pass modes hand Drive a nil
// target and must get their first pass back untouched.
func TestDriveNilTargetPassesThrough(t *testing.T) {
	c := &flatCodec{mse: 1}
	opt := codec.Options{ErrorBound: 0.25}
	blob, st, _ := c.Compress(context.Background(), nil, opt, nil)
	nb, nst, eb, passes, err := Drive(context.Background(), nil, c, opt, blob, st, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if &nb[0] != &blob[0] || nst != st || eb != opt.ErrorBound || passes != 1 {
		t.Fatal("nil target must pass the first pass through unchanged")
	}
}

// sizeCodec reports a compressed size that follows an exact power law of
// the bound, size = base / bound^a, so the fixed-ratio secant should
// converge in a handful of passes.
type sizeCodec struct {
	origBytes    int
	base         float64
	a            float64
	compressions int
}

func (c *sizeCodec) Name() string      { return "size" }
func (c *sizeCodec) IDs() []codec.ID   { return []codec.ID{251} }
func (c *sizeCodec) MeasuresMSE() bool { return false }

func (c *sizeCodec) compressedBytes(bound float64) int {
	n := int(c.base / math.Pow(bound, c.a))
	if n < 1 {
		n = 1
	}
	return n
}

func (c *sizeCodec) Compress(ctx context.Context, f *field.Field, opt codec.Options, sc *codec.Scratch) ([]byte, *codec.Stats, error) {
	c.compressions++
	n := c.compressedBytes(opt.ErrorBound)
	return make([]byte, n), &codec.Stats{
		OriginalBytes:   c.origBytes,
		CompressedBytes: n,
		MSE:             math.NaN(),
	}, nil
}

func (c *sizeCodec) Decompress([]byte) (*field.Field, *codec.Header, error) {
	return nil, nil, nil
}

// TestDriveRatioConvergesOnPowerLawCodec: the fixed-ratio target steers a
// synthetic power-law rate curve into the acceptance band.
func TestDriveRatioConvergesOnPowerLawCodec(t *testing.T) {
	for _, target := range []float64{5, 20, 80} {
		c := &sizeCodec{origBytes: 1 << 20, base: 100, a: 0.7}
		opt := codec.Options{ErrorBound: 1e-4}
		blob, st, _ := c.Compress(context.Background(), nil, opt, nil)
		tgt := NewRatioTarget(target, 32, Tuning{})
		_, nst, eb, passes, err := Drive(context.Background(), nil, c, opt, blob, st, tgt, nil)
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		achieved := float64(nst.OriginalBytes) / float64(nst.CompressedBytes)
		if !(math.Abs(achieved-target) <= DefaultRatioTolerance*target) {
			t.Fatalf("target %g: achieved %.3g after %d passes (eb=%g)", target, achieved, passes, eb)
		}
		if passes > 1+DefaultRatioMaxPasses {
			t.Fatalf("target %g: %d passes exceeds budget", target, passes)
		}
	}
}

// TestDriveRespectsMaxPasses: a tight pass budget stops the loop and
// returns the closest stream without error.
func TestDriveRespectsMaxPasses(t *testing.T) {
	c := &sizeCodec{origBytes: 1 << 20, base: 100, a: 0.7}
	opt := codec.Options{ErrorBound: 1e-4}
	blob, st, _ := c.Compress(context.Background(), nil, opt, nil)
	tgt := NewRatioTarget(80, 32, Tuning{MaxPasses: 1})
	_, _, _, passes, err := Drive(context.Background(), nil, c, opt, blob, st, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if passes != 2 || c.compressions != 2 {
		t.Fatalf("passes = %d, compressions = %d, want 2 each (first pass + one refinement)", passes, c.compressions)
	}
}
