package plan

import (
	"math"
	"testing"

	"fixedpsnr/internal/codec"
)

func TestBuildTargetDispatch(t *testing.T) {
	mseCodec := &flatCodec{} // MeasuresMSE() == true
	sizeOnly := &sizeCodec{} // MeasuresMSE() == false
	cases := []struct {
		name string
		req  Request
		c    codec.Codec
		vr   float64
		want bool
	}{
		{"uncalibrated psnr", Request{Mode: ModePSNR, TargetPSNR: 60}, mseCodec, 1, false},
		{"calibrated psnr", Request{Mode: ModePSNR, TargetPSNR: 60, Calibrated: true}, mseCodec, 1, true},
		{"calibrated psnr, no MSE", Request{Mode: ModePSNR, TargetPSNR: 60, Calibrated: true}, sizeOnly, 1, false},
		{"calibrated psnr, constant field", Request{Mode: ModePSNR, TargetPSNR: 60, Calibrated: true}, mseCodec, 0, false},
		{"ratio", Request{Mode: ModeRatio, TargetRatio: 16}, sizeOnly, 1, true},
		{"ratio on MSE codec", Request{Mode: ModeRatio, TargetRatio: 16}, mseCodec, 1, true},
		{"ratio, constant field", Request{Mode: ModeRatio, TargetRatio: 16}, sizeOnly, 0, false},
		{"abs", Request{Mode: ModeAbs, ErrorBound: 1e-3}, mseCodec, 1, false},
		{"rel", Request{Mode: ModeRel, RelBound: 1e-3}, mseCodec, 1, false},
		{"pwrel", Request{Mode: ModePWRel, PWRelBound: 1e-3}, mseCodec, 1, false},
	}
	for _, c := range cases {
		got := c.req.BuildTarget(c.c, c.vr)
		if (got != nil) != c.want {
			t.Errorf("%s: BuildTarget = %v, want target=%v", c.name, got, c.want)
		}
	}
}

func TestTargetDefaultsAndTuning(t *testing.T) {
	p := NewPSNRTarget(60, 1, Tuning{}).(*psnrTarget)
	if p.tolDB != DefaultToleranceDB || p.maxPasses != DefaultMaxPasses {
		t.Fatalf("psnr defaults: tol=%g passes=%d", p.tolDB, p.maxPasses)
	}
	p = NewPSNRTarget(60, 1, Tuning{ToleranceDB: 2, MaxPasses: 10}).(*psnrTarget)
	if p.tolDB != 2 || p.MaxPasses() != 10 {
		t.Fatalf("psnr tuning not honored: tol=%g passes=%d", p.tolDB, p.MaxPasses())
	}
	r := NewRatioTarget(16, 0, Tuning{}).(*ratioTarget)
	if r.tol != DefaultRatioTolerance || r.maxPasses != DefaultRatioMaxPasses || r.bpp != 64 {
		t.Fatalf("ratio defaults: tol=%g passes=%d bpp=%g", r.tol, r.maxPasses, r.bpp)
	}
	r = NewRatioTarget(16, 32, Tuning{RatioTolerance: 0.2, MaxPasses: 2}).(*ratioTarget)
	if r.tol != 0.2 || r.MaxPasses() != 2 || r.bpp != 32 {
		t.Fatalf("ratio tuning not honored: tol=%g passes=%d bpp=%g", r.tol, r.MaxPasses(), r.bpp)
	}
	if !NewPSNRTarget(60, 1, Tuning{}).PinExactChunks() {
		t.Fatal("fixed-PSNR steering must pin exact chunks")
	}
	if NewRatioTarget(16, 32, Tuning{}).PinExactChunks() {
		t.Fatal("fixed-ratio steering must recompress exact chunks")
	}
}

// FuzzRatioTargetSolve: whatever history the loop hands it, the ratio
// solver must terminate and never propose a NaN, infinite, or
// non-positive bound — it either accepts, errors, or steps to a usable
// bound, and a simulated loop over a synthetic rate curve always halts
// within the pass budget.
func FuzzRatioTargetSolve(f *testing.F) {
	f.Add(16.0, 32.0, 1e-4, 4.0, 2e-4, 6.0)
	f.Add(100.0, 64.0, 1e-9, 1.0001, 0.0, 0.0)
	f.Add(2.0, 32.0, 1e300, 1e300, 1e-300, 1e-300)
	f.Fuzz(func(t *testing.T, target, bpp, b0, m0, b1, m1 float64) {
		if !(target > 1) || math.IsInf(target, 0) {
			target = 16
		}
		tgt := NewRatioTarget(target, bpp, Tuning{})

		// Arbitrary (even nonsensical) history entries must not crash the
		// solver or make it emit an unusable bound.
		hist := []Pass{{Bound: b0, Measured: m0}}
		if b1 != 0 || m1 != 0 {
			hist = append(hist, Pass{Bound: b1, Measured: m1})
		}
		next, done, err := tgt.Solve(hist)
		if err == nil && !done {
			if !(next > 0) || math.IsInf(next, 0) || math.IsNaN(next) {
				t.Fatalf("Solve(%v) proposed unusable bound %g", hist, next)
			}
		}

		// Simulated steering over a monotone synthetic rate curve:
		// ratio(b) = r0·(b/bref)^a with the fuzzed inputs shaping r0 and
		// a. The loop must halt within the pass budget with every
		// intermediate bound usable.
		a := 0.3 + math.Mod(math.Abs(m0), 1.5)
		r0 := 1 + math.Mod(math.Abs(m1), 64)
		bref := 1e-4
		curve := func(b float64) float64 { return r0 * math.Pow(b/bref, a) }
		bound := bref
		history := []Pass{{Bound: bound, Measured: curve(bound)}}
		for pass := 0; pass < tgt.MaxPasses(); pass++ {
			next, done, err := tgt.Solve(history)
			if err != nil || done {
				break
			}
			if !(next > 0) || math.IsInf(next, 0) || math.IsNaN(next) {
				t.Fatalf("loop pass %d proposed unusable bound %g", pass, next)
			}
			bound = next
			history = append(history, Pass{Bound: bound, Measured: curve(bound)})
		}
		if len(history) > 1+tgt.MaxPasses() {
			t.Fatalf("loop took %d passes, budget %d", len(history), 1+tgt.MaxPasses())
		}
	})
}

// FuzzPSNRTargetSolve: same safety net for the calibrated fixed-PSNR
// solver — arbitrary histories must produce an accept, an explicit
// error, or a positive finite bound.
func FuzzPSNRTargetSolve(f *testing.F) {
	f.Add(40.0, 1.0, 1e-3, 1e-4, 2e-3, 1e-5)
	f.Add(20.0, 1e6, 1.0, 1e-2, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, target, vr, b0, m0, b1, m1 float64) {
		if !(target > 0) || math.IsInf(target, 0) {
			target = 40
		}
		if !(vr > 0) || math.IsInf(vr, 0) {
			vr = 1
		}
		tgt := NewPSNRTarget(target, vr, Tuning{})
		hist := []Pass{{Bound: b0, Measured: m0}}
		if b1 != 0 || m1 != 0 {
			hist = append(hist, Pass{Bound: b1, Measured: m1})
		}
		next, done, err := tgt.Solve(hist)
		if err == nil && !done {
			if !(next > 0) || math.IsInf(next, 0) || math.IsNaN(next) {
				t.Fatalf("Solve(%v) proposed unusable bound %g", hist, next)
			}
		}
	})
}
