package huffman

import (
	"slices"
	"testing"
)

// skewedStream encodes a Fibonacci-weighted alphabet 0..depth, whose
// Huffman tree degenerates to a chain: the canonical code has lengths
// 1..depth. depth = tableBits exercises the last all-table code length;
// depth = tableBits+1 forces the canonical-walk fallback.
func skewedStream(tb testing.TB, depth int) ([]int32, []byte) {
	var syms []int32
	a, b := 1, 1
	for s := 0; s <= depth; s++ {
		for j := 0; j < a; j++ {
			syms = append(syms, int32(s))
		}
		a, b = b, a+b
	}
	enc, err := Encode(syms)
	if err != nil {
		tb.Fatal(err)
	}
	return syms, enc
}

// TestSkewedDepthReachesFallback pins the premise of the boundary tests:
// the Fibonacci stream really does produce codes of the requested depth,
// so depth tableBits+1 exercises the lookup-table fallback.
func TestSkewedDepthReachesFallback(t *testing.T) {
	for _, depth := range []int{tableBits, tableBits + 1} {
		syms, enc := skewedStream(t, depth)
		ds := NewDecodeScratch()
		got, _, err := DecodeInto(nil, enc, ds)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if !slices.Equal(got, syms) {
			t.Fatalf("depth %d: round trip mismatch", depth)
		}
		maxLen := uint8(0)
		for _, l := range ds.lens {
			if l > maxLen {
				maxLen = l
			}
		}
		if int(maxLen) != depth {
			t.Fatalf("depth %d: max code length %d", depth, maxLen)
		}
	}
}

// TestDecodeIntoMatchesDecode compares the scratch-backed path against the
// allocating path on every corpus the round-trip tests use, including
// reuse of one scratch across differently-shaped streams.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	ds := NewDecodeScratch()
	var dst []int32
	corpora := [][]int32{
		{},
		{7},
		{5, 5, 5, 5, 5},
		{1, 2, 1, 2, 2, 2, 1},
		{0, 65535, 32768, 1, 65535, 0},
		quantCodes(4096, 3),
	}
	for depth := tableBits - 1; depth <= tableBits+2; depth++ {
		syms, _ := skewedStream(t, depth)
		corpora = append(corpora, syms)
	}
	for i, syms := range corpora {
		enc, err := Encode(syms)
		if err != nil {
			t.Fatal(err)
		}
		want, wantN, err := Decode(enc)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		got, gotN, err := DecodeInto(dst, enc, ds)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		if gotN != wantN || !slices.Equal(got, want) {
			t.Fatalf("corpus %d: scratch decode diverges", i)
		}
		dst = got
	}
}

// TestDecodeIntoNoAllocs is the regression gate for the decode-scratch
// plumbing: a warmed scratch plus a reused destination slice must decode
// without touching the heap.
func TestDecodeIntoNoAllocs(t *testing.T) {
	_, enc := skewedStream(t, tableBits+1) // include the fallback path
	ds := NewDecodeScratch()
	dst, _, err := DecodeInto(nil, enc, ds)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, _, err = DecodeInto(dst, enc, ds)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("reused decode allocates %.1f times per run, want 0", allocs)
	}
}

// FuzzDecodeScratchDifferential feeds arbitrary bytes to both decode
// paths: they must agree on success/failure and on every decoded symbol.
// The seed corpus includes canonical streams whose longest codes sit at
// tableBits and tableBits+1 — the lookup-table/fallback boundary.
func FuzzDecodeScratchDifferential(f *testing.F) {
	for depth := tableBits - 1; depth <= tableBits+1; depth++ {
		var syms []int32
		a, b := 1, 1
		for s := 0; s <= depth; s++ {
			for j := 0; j < a; j++ {
				syms = append(syms, int32(s))
			}
			a, b = b, a+b
		}
		if enc, err := Encode(syms); err == nil {
			f.Add(enc)
		}
	}
	if enc, err := Encode(quantCodes(512, 9)); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{5, 0})
	ds := NewDecodeScratch()
	var dst []int32
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantN, wantErr := Decode(data)
		got, gotN, gotErr := DecodeInto(dst, data, ds)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error divergence: fresh %v, scratch %v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if gotN != wantN || !slices.Equal(got, want) {
			t.Fatalf("decode divergence: fresh (%d syms, %d consumed), scratch (%d syms, %d consumed)",
				len(want), wantN, len(got), gotN)
		}
		dst = got
	})
}

func BenchmarkDecodeScratch(b *testing.B) {
	syms := quantCodes(1<<20, 2)
	enc, err := Encode(syms)
	if err != nil {
		b.Fatal(err)
	}
	ds := NewDecodeScratch()
	dst := make([]int32, 0, len(syms))
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = DecodeInto(dst, enc, ds)
		if err != nil {
			b.Fatal(err)
		}
	}
}
