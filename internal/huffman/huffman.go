// Package huffman implements the customized Huffman coding stage of the SZ
// pipeline: a canonical Huffman coder over integer symbols (quantization
// codes). The encoder builds the code from symbol frequencies, emits a
// compact table (code lengths only) followed by the packed bit stream, and
// the decoder reconstructs the canonical code from the lengths.
//
// Symbols are non-negative int32s — the quantization-code element type,
// which halves the memory traffic of the counting and emit passes over
// multi-megapoint symbol slices compared to machine-word ints. Typical alphabets are the 2n quantization codes of the SZ
// quantizer (tens of thousands of possible symbols of which a few hundred
// occur).
package huffman

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sort"

	"fixedpsnr/internal/bitstream"
	"fixedpsnr/internal/kernels"
)

// maxCodeLen bounds canonical code lengths. A Huffman tree over n symbols
// with total count N has depth ≤ log_φ(N)+O(1); 62 accommodates any input
// this module can produce while keeping codes in a uint64.
const maxCodeLen = 62

// enode is a Huffman tree node in the arena-allocated encoder tree:
// children are arena indices, so the whole tree lives in one slice.
type enode struct {
	weight      int64
	symbol      int32 // leaf symbol; min subtree symbol on internal nodes
	left, right int32 // arena indices, -1 for leaves
}

// Scratch holds the Huffman encoder's construction state — frequency
// table, node arena, heap, and the canonical symbol/length/code tables —
// sized by the symbol alphabet, so sessions that encode many chunks
// reuse one set instead of rebuilding maps and trees from the heap every
// call. A nil *Scratch is valid and falls back to fresh allocation.
// Scratch is not safe for concurrent use; pool instances and hand one to
// each in-flight encode.
type Scratch struct {
	freq    []int64
	present []int32
	lenOf   []uint8
	codes   []uint64
	nodes   []enode
	heap    []int32
	stack   []int64
	w       bitstream.Writer
}

// NewScratch returns an empty Huffman scratch.
func NewScratch() *Scratch { return &Scratch{} }

// freqBuf returns a zeroed dense frequency table of length n.
func (s *Scratch) freqBuf(n int) []int64 {
	if s == nil || cap(s.freq) < n {
		buf := make([]int64, n)
		if s != nil {
			s.freq = buf
		}
		return buf
	}
	buf := s.freq[:n]
	clear(buf)
	return buf
}

// lenOfBuf returns a zeroed dense symbol→length table of length n.
func (s *Scratch) lenOfBuf(n int) []uint8 {
	if s == nil || cap(s.lenOf) < n {
		buf := make([]uint8, n)
		if s != nil {
			s.lenOf = buf
		}
		return buf
	}
	buf := s.lenOf[:n]
	clear(buf)
	return buf
}

// codesBuf returns a dense symbol→code table of length n (contents
// unspecified; only present symbols are written and read).
func (s *Scratch) codesBuf(n int) []uint64 {
	if s == nil || cap(s.codes) < n {
		buf := make([]uint64, n)
		if s != nil {
			s.codes = buf
		}
		return buf
	}
	return s.codes[:n]
}

// presentBuf returns an empty present-symbol list with capacity hint n.
func (s *Scratch) presentBuf(n int) []int32 {
	if s == nil || cap(s.present) < n {
		return make([]int32, 0, n)
	}
	return s.present[:0]
}

// nodesBuf returns an empty node arena with capacity hint n.
func (s *Scratch) nodesBuf(n int) []enode {
	if s == nil || cap(s.nodes) < n {
		return make([]enode, 0, n)
	}
	return s.nodes[:0]
}

// heapBuf returns an empty index heap with capacity hint n.
func (s *Scratch) heapBuf(n int) []int32 {
	if s == nil || cap(s.heap) < n {
		return make([]int32, 0, n)
	}
	return s.heap[:0]
}

// stackBuf returns an empty traversal stack with capacity hint n.
func (s *Scratch) stackBuf(n int) []int64 {
	if s == nil || cap(s.stack) < n {
		return make([]int64, 0, n)
	}
	return s.stack[:0]
}

// keep stores the final slices back so grown buffers survive to the next
// encode with this scratch.
func (s *Scratch) keep(present []int32, nodes []enode, heap []int32, stack []int64) {
	if s == nil {
		return
	}
	s.present, s.nodes, s.heap, s.stack = present, nodes, heap, stack
}

// nodeLess orders the build heap: by weight, tie-broken on the minimum
// subtree symbol so construction is deterministic.
func nodeLess(nodes []enode, a, b int32) bool {
	if nodes[a].weight != nodes[b].weight {
		return nodes[a].weight < nodes[b].weight
	}
	return nodes[a].symbol < nodes[b].symbol
}

// heapPush adds arena index v to the index min-heap h.
func heapPush(h []int32, nodes []enode, v int32) []int32 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeLess(nodes, h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// heapPop removes and returns the minimum arena index from h.
func heapPop(h []int32, nodes []enode) ([]int32, int32) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && nodeLess(nodes, h[l], h[small]) {
			small = l
		}
		if r < len(h) && nodeLess(nodes, h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}

// tableBits is the width of the one-level decode lookup table: the next
// tableBits peeked bits resolve (canonical index, code length) for every
// code no longer than tableBits in a single load. Canonical order sorts
// short codes first, so at most 1<<tableBits of them exist and their
// canonical indices fit 11 bits — one uint16 entry packs idx<<4 | length.
// Longer codes (rare on real quantization-code distributions) fall back to
// the canonical per-length walk.
const tableBits = 11

// DecodeScratch holds the Huffman decoder's reusable state — the lookup
// table, the canonical symbol/length slices, and the per-length canonical
// tables — so sessions that decode many chunks stop rebuilding map-backed
// tables from the heap every call. A nil *DecodeScratch is valid and falls
// back to fresh allocation. Not safe for concurrent use; pool instances
// and hand one to each in-flight decode.
type DecodeScratch struct {
	syms []int32 // symbols in canonical order (by length, then symbol)
	lens []uint8 // parallel code lengths
	dup  []int32 // duplicate-detection scratch

	table     [1 << tableBits]uint16 // peek pattern → idx<<4 | len; 0 = fallback
	firstCode [maxCodeLen + 2]uint64
	firstSym  [maxCodeLen + 2]int32
	countAt   [maxCodeLen + 2]int32

	r bitstream.Reader
}

// NewDecodeScratch returns an empty Huffman decode scratch.
func NewDecodeScratch() *DecodeScratch { return &DecodeScratch{} }

// symsBuf returns empty canonical symbol/length slices with capacity hint n.
func (ds *DecodeScratch) symsBuf(n int) ([]int32, []uint8) {
	if ds == nil || cap(ds.syms) < n || cap(ds.lens) < n {
		return make([]int32, 0, n), make([]uint8, 0, n)
	}
	return ds.syms[:0], ds.lens[:0]
}

// dupBuf returns an empty duplicate-check slice with capacity hint n.
func (ds *DecodeScratch) dupBuf(n int) []int32 {
	if ds == nil || cap(ds.dup) < n {
		return make([]int32, 0, n)
	}
	return ds.dup[:0]
}

// keep stores grown slices back so they survive to the next decode.
func (ds *DecodeScratch) keep(syms []int32, lens []uint8, dup []int32) {
	if ds == nil {
		return
	}
	ds.syms, ds.lens, ds.dup = syms, lens, dup
}

// canonicalSorter orders parallel (symbol, length) slices by (length,
// symbol) — the canonical code order. Only corrupt or foreign streams
// need it: this package's encoder already emits the table sorted.
type canonicalSorter struct {
	syms []int32
	lens []uint8
}

func (c *canonicalSorter) Len() int { return len(c.syms) }
func (c *canonicalSorter) Less(i, j int) bool {
	if c.lens[i] != c.lens[j] {
		return c.lens[i] < c.lens[j]
	}
	return c.syms[i] < c.syms[j]
}
func (c *canonicalSorter) Swap(i, j int) {
	c.syms[i], c.syms[j] = c.syms[j], c.syms[i]
	c.lens[i], c.lens[j] = c.lens[j], c.lens[i]
}

// Encode Huffman-encodes syms and returns a self-describing byte stream:
// the canonical table followed by the packed code words. The alphabet is
// implicit in the symbols themselves; symbols must be non-negative.
func Encode(syms []int32) ([]byte, error) { return EncodeScratch(nil, syms, nil) }

// EncodeTo appends the encoded stream Encode would produce to dst and
// returns the extended slice, so callers staging a larger container can
// reuse one append buffer instead of copying a freshly allocated block.
func EncodeTo(dst []byte, syms []int32) ([]byte, error) { return EncodeScratch(dst, syms, nil) }

// EncodeScratch is EncodeTo drawing every construction table — the dense
// frequency counts, the arena-allocated Huffman tree, the heap, and the
// canonical code tables — from sc, so repeated encodes (one per slab per
// compression, in a long-lived session) stop rebuilding them from the
// heap. A nil sc allocates fresh. The encoded bytes are identical
// whatever sc is.
func EncodeScratch(dst []byte, syms []int32, sc *Scratch) ([]byte, error) {
	maxSym := int32(0)
	for _, s := range syms {
		if s < 0 {
			return nil, fmt.Errorf("huffman: negative symbol %d", s)
		}
		if s > maxSym {
			maxSym = s
		}
	}
	return encodeBounded(dst, syms, int(maxSym), sc)
}

// EncodeScratchMax is EncodeScratch for callers that already know an
// inclusive upper bound on every symbol value (e.g. a quantizer whose
// codes are < capacity by construction): it skips the validation pass,
// which on multi-megabyte symbol slices is a full extra trip through
// memory. Every symbol MUST lie in [0, maxSym]; one outside that range
// panics (slice bounds) rather than returning an error. The encoded
// bytes are identical to EncodeScratch — the emitted table covers only
// symbols that actually occur, so an over-estimated bound costs a
// little scratch memory, not stream bytes.
func EncodeScratchMax(dst []byte, syms []int32, maxSym int, sc *Scratch) ([]byte, error) {
	return encodeBounded(dst, syms, maxSym, sc)
}

func encodeBounded(dst []byte, syms []int32, maxSym int, sc *Scratch) ([]byte, error) {
	// Count into four interleaved lanes (kernels.CountLanes4): runs of
	// one dominant symbol (the common case for quantization codes)
	// otherwise serialize on store-to-load forwarding of a single
	// counter. Only the summed totals matter, so the lane count is free
	// to change without touching the stream. The merge pass also
	// rebuilds the present list, replacing the per-symbol branch.
	m := maxSym + 1
	lanes := sc.freqBuf(4 * m)
	lane0, lane1 := lanes[:m], lanes[m:2*m]
	lane2, lane3 := lanes[2*m:3*m], lanes[3*m:]
	kernels.CountLanes4(lane0, lane1, lane2, lane3, syms)
	i := 0
	freq := lane0
	present := sc.presentBuf(256)
	for s, f := range lane0 {
		f += lane1[s] + lane2[s] + lane3[s]
		if f != 0 {
			freq[s] = f
			present = append(present, int32(s))
		}
	}
	nsym := len(present)

	// Code lengths per symbol (dense table; zero = absent).
	lenOf := sc.lenOfBuf(maxSym + 1)
	nodes := sc.nodesBuf(2 * nsym)
	heap := sc.heapBuf(nsym)
	stack := sc.stackBuf(2 * nsym)
	switch nsym {
	case 0:
		// Empty input: emit the trivial header below.
	case 1:
		lenOf[present[0]] = 1
	default:
		for _, s := range present {
			nodes = append(nodes, enode{weight: freq[s], symbol: s, left: -1, right: -1})
		}
		for i := range nodes {
			heap = heapPush(heap, nodes, int32(i))
		}
		for len(heap) > 1 {
			var a, b int32
			heap, a = heapPop(heap, nodes)
			heap, b = heapPop(heap, nodes)
			nodes = append(nodes, enode{
				weight: nodes[a].weight + nodes[b].weight,
				symbol: min(nodes[a].symbol, nodes[b].symbol),
				left:   a, right: b,
			})
			heap = heapPush(heap, nodes, int32(len(nodes)-1))
		}
		// Iterative depth-first walk assigning leaf depths; entries pack
		// (arena index << 8 | depth), depth ≤ maxCodeLen < 256.
		stack = append(stack, int64(heap[0])<<8)
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			idx, depth := int32(top>>8), int(top&0xff)
			n := nodes[idx]
			if n.left < 0 {
				if depth > maxCodeLen {
					sc.keep(present, nodes, heap, stack)
					return nil, fmt.Errorf("huffman: code length %d exceeds maximum %d", depth, maxCodeLen)
				}
				lenOf[n.symbol] = uint8(depth)
				continue
			}
			stack = append(stack, int64(n.left)<<8|int64(depth+1))
			stack = append(stack, int64(n.right)<<8|int64(depth+1))
		}
	}

	// Canonical order: by (length, symbol).
	slices.SortFunc(present, func(a, b int32) int {
		if lenOf[a] != lenOf[b] {
			return int(lenOf[a]) - int(lenOf[b])
		}
		return int(a - b)
	})
	codes := sc.codesBuf(maxSym + 1)
	var code uint64
	prevLen := uint8(0)
	for _, s := range present {
		l := lenOf[s]
		code <<= uint(l - prevLen)
		codes[s] = code
		code++
		prevLen = l
	}

	dst = binary.AppendUvarint(dst, uint64(len(syms)))
	dst = binary.AppendUvarint(dst, uint64(nsym))
	for _, s := range present {
		dst = binary.AppendUvarint(dst, uint64(s))
		dst = binary.AppendUvarint(dst, uint64(lenOf[s]))
	}

	var w *bitstream.Writer
	if sc != nil {
		// Reuse the scratch-owned Writer (and its buffer): body is copied
		// into dst below, so nothing escapes.
		sc.w.Reset()
		w = &sc.w
	} else {
		w = bitstream.NewWriter(len(syms) / 2)
	}
	// Emit two symbols per WriteBits call when their combined width fits
	// one staged write (almost always: typical code lengths are well
	// under 28 bits), halving the per-call overhead on the hot loop.
	i = 0
	for ; i+2 <= len(syms); i += 2 {
		s0, s1 := syms[i], syms[i+1]
		l0, l1 := uint(lenOf[s0]), uint(lenOf[s1])
		if l0+l1 <= 56 {
			w.WriteBits(codes[s0]<<l1|codes[s1], l0+l1)
			continue
		}
		w.WriteBits(codes[s0], l0)
		w.WriteBits(codes[s1], l1)
	}
	if i < len(syms) {
		s := syms[i]
		w.WriteBits(codes[s], uint(lenOf[s]))
	}
	body := w.Bytes()

	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	sc.keep(present, nodes, heap, stack)
	return dst, nil
}

// Decode reverses Encode. It returns the decoded symbols and the number of
// bytes consumed from buf, allowing the caller to embed the Huffman block
// inside a larger stream.
func Decode(buf []byte) (syms []int32, consumed int, err error) {
	return DecodeInto(nil, buf, nil)
}

// DecodeInto is Decode appending the symbols into dst[:0] (grown as
// needed) and drawing every decoding table — the one-level lookup table,
// the canonical symbol/length slices, the per-length canonical tables,
// and the bit reader — from ds, so repeated decodes (one per chunk, in a
// long-lived session) stop rebuilding them from the heap. Nil dst and/or
// ds allocate fresh. The decoded symbols are identical whatever dst and
// ds are.
func DecodeInto(dst []int32, buf []byte, ds *DecodeScratch) (syms []int32, consumed int, err error) {
	rd := buf
	n, k := binary.Uvarint(rd)
	if k <= 0 {
		return nil, 0, fmt.Errorf("huffman: truncated symbol count")
	}
	rd = rd[k:]
	consumed += k
	nsym, k := binary.Uvarint(rd)
	if k <= 0 {
		return nil, 0, fmt.Errorf("huffman: truncated table size")
	}
	rd = rd[k:]
	consumed += k
	if nsym > uint64(len(rd)) {
		// Each table entry takes ≥ 2 bytes; reject the count before
		// sizing buffers from it.
		return nil, 0, fmt.Errorf("huffman: table size %d exceeds buffer", nsym)
	}

	csyms, clens := ds.symsBuf(int(nsym))
	sorted := true
	prevLen, prevSym := uint8(0), -1
	for i := uint64(0); i < nsym; i++ {
		s, k1 := binary.Uvarint(rd)
		if k1 <= 0 {
			ds.keep(csyms, clens, ds.dupBuf(0))
			return nil, 0, fmt.Errorf("huffman: truncated table entry")
		}
		rd = rd[k1:]
		consumed += k1
		l, k2 := binary.Uvarint(rd)
		if k2 <= 0 {
			ds.keep(csyms, clens, ds.dupBuf(0))
			return nil, 0, fmt.Errorf("huffman: truncated table entry length")
		}
		rd = rd[k2:]
		consumed += k2
		if l == 0 || l > maxCodeLen {
			ds.keep(csyms, clens, ds.dupBuf(0))
			return nil, 0, fmt.Errorf("huffman: invalid code length %d", l)
		}
		if s > 1<<31-1 {
			ds.keep(csyms, clens, ds.dupBuf(0))
			return nil, 0, fmt.Errorf("huffman: symbol %d out of range", s)
		}
		if uint8(l) < prevLen || (uint8(l) == prevLen && int(s) <= prevSym) {
			sorted = false
		}
		prevLen, prevSym = uint8(l), int(s)
		csyms = append(csyms, int32(s))
		clens = append(clens, uint8(l))
	}
	// This package's encoder emits the table in canonical (length, symbol)
	// order, so the sort below never runs on its own streams; foreign or
	// mutated tables are normalized the slow way.
	if !sorted {
		sort.Sort(&canonicalSorter{syms: csyms, lens: clens})
	}
	// Duplicate symbols would make the code ambiguous; the canonical sort
	// does not make equal symbols with different lengths adjacent, so the
	// check sorts a scratch copy by symbol value.
	dup := ds.dupBuf(len(csyms))
	dup = append(dup, csyms...)
	slices.Sort(dup)
	for i := 1; i < len(dup); i++ {
		if dup[i] == dup[i-1] {
			ds.keep(csyms, clens, dup)
			return nil, 0, fmt.Errorf("huffman: duplicate symbols in table")
		}
	}
	defer ds.keep(csyms, clens, dup)

	bodyLen, k := binary.Uvarint(rd)
	if k <= 0 {
		return nil, 0, fmt.Errorf("huffman: truncated body length")
	}
	rd = rd[k:]
	consumed += k
	if uint64(len(rd)) < bodyLen {
		return nil, 0, fmt.Errorf("huffman: body shorter than declared (%d < %d)", len(rd), bodyLen)
	}
	body := rd[:bodyLen]
	consumed += int(bodyLen)

	if n == 0 {
		if dst != nil {
			return dst[:0], consumed, nil
		}
		return []int32{}, consumed, nil
	}
	if nsym == 0 {
		return nil, 0, fmt.Errorf("huffman: %d symbols declared but table is empty", n)
	}
	// Every symbol costs at least one bit, so a corrupt count larger
	// than the body could hold must be rejected before allocation.
	if n > bodyLen*8 {
		return nil, 0, fmt.Errorf("huffman: %d symbols cannot fit in %d body bytes", n, bodyLen)
	}

	// Canonical decoding tables: for each length, the first code word and
	// the index of its first symbol in the canonical order.
	var local DecodeScratch
	if ds == nil {
		ds = &local
	}
	firstCode := &ds.firstCode
	firstSym := &ds.firstSym
	countAt := &ds.countAt
	clear(countAt[:])
	for _, l := range clens {
		countAt[l]++
	}
	var code uint64
	var idx int32
	for l := 1; l <= maxCodeLen; l++ {
		firstCode[l] = code
		firstSym[l] = idx
		code = (code + uint64(countAt[l])) << 1
		idx += countAt[l]
	}

	// One-level lookup table: every code of length ≤ tableBits owns all
	// 1<<(tableBits-len) patterns it prefixes; entry 0 marks the long-code
	// fallback. Canonical order puts short codes first, so their indices
	// fit the packed uint16.
	table := &ds.table
	clear(table[:])
	code = 0
	prev := uint8(0)
	for i, l := range clens {
		if uint(l) > tableBits {
			break
		}
		code <<= uint(l - prev)
		prev = l
		lo := code << (tableBits - uint(l))
		hi := lo + 1<<(tableBits-uint(l))
		if lo >= uint64(len(table)) {
			break // oversubscribed (corrupt) table; fallback still guards
		}
		if hi > uint64(len(table)) {
			hi = uint64(len(table))
		}
		e := uint16(i)<<4 | uint16(l)
		for j := lo; j < hi; j++ {
			table[j] = e
		}
		code++
	}

	r := &ds.r
	r.Reset(body)
	if uint64(cap(dst)) < n {
		dst = make([]int32, n)
	}
	out := dst[:n]
	// The hot loop refills the reader's 64-bit window once per symbol at
	// most, resolves short codes with a single table load, and consumes
	// their bits with an unchecked Skip — no per-bit calls, no double
	// refill check from a Peek/Consume pair.
	for pos := range out {
		if r.Buffered() < tableBits {
			r.Refill()
		}
		if e := table[r.Window()>>(64-tableBits)]; e != 0 {
			l := uint(e & 0xf)
			if l > r.Buffered() {
				return nil, 0, fmt.Errorf("huffman: bit stream exhausted after %d of %d symbols", pos, n)
			}
			r.Skip(l)
			out[pos] = csyms[e>>4]
			continue
		}
		// Long code (or exhaustion): canonical walk, one bit at a time.
		var cw uint64
		l := 0
		for {
			b, err := r.ReadBit()
			if err != nil {
				return nil, 0, fmt.Errorf("huffman: bit stream exhausted after %d of %d symbols", pos, n)
			}
			cw = cw<<1 | uint64(b)
			l++
			if l > maxCodeLen {
				return nil, 0, fmt.Errorf("huffman: code longer than %d bits", maxCodeLen)
			}
			if countAt[l] > 0 && cw-firstCode[l] < uint64(countAt[l]) {
				out[pos] = csyms[firstSym[l]+int32(cw-firstCode[l])]
				break
			}
		}
	}
	return out, consumed, nil
}
