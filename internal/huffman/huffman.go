// Package huffman implements the customized Huffman coding stage of the SZ
// pipeline: a canonical Huffman coder over integer symbols (quantization
// codes). The encoder builds the code from symbol frequencies, emits a
// compact table (code lengths only) followed by the packed bit stream, and
// the decoder reconstructs the canonical code from the lengths.
//
// Symbols are non-negative ints smaller than the alphabet size passed to
// Encode. Typical alphabets are the 2n quantization codes of the SZ
// quantizer (tens of thousands of possible symbols of which a few hundred
// occur).
package huffman

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"

	"fixedpsnr/internal/bitstream"
)

// maxCodeLen bounds canonical code lengths. A Huffman tree over n symbols
// with total count N has depth ≤ log_φ(N)+O(1); 62 accommodates any input
// this module can produce while keeping codes in a uint64.
const maxCodeLen = 62

// node is a Huffman tree node used only during construction.
type node struct {
	weight      int64
	symbol      int // valid for leaves
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	// Tie-break on symbol to make construction deterministic.
	return h[i].symbol < h[j].symbol
}
func (h nodeHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)       { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any         { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }
func (h nodeHeap) Peek() *node       { return h[0] }
func (h *nodeHeap) PushNode(n *node) { heap.Push(h, n) }
func (h *nodeHeap) PopNode() *node   { return heap.Pop(h).(*node) }
func (h *nodeHeap) Init()            { heap.Init((*nodeHeap)(h)) }

// codeLengths computes the canonical code length for every symbol with a
// non-zero frequency.
func codeLengths(freq map[int]int64) map[int]int {
	lengths := make(map[int]int, len(freq))
	switch len(freq) {
	case 0:
		return lengths
	case 1:
		for s := range freq {
			lengths[s] = 1
		}
		return lengths
	}
	h := make(nodeHeap, 0, len(freq))
	for s, f := range freq {
		h = append(h, &node{weight: f, symbol: s})
	}
	h.Init()
	for h.Len() > 1 {
		a := h.PopNode()
		b := h.PopNode()
		h.PushNode(&node{weight: a.weight + b.weight, symbol: min(a.symbol, b.symbol), left: a, right: b})
	}
	root := h.Peek()
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.left == nil && n.right == nil {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonical holds a canonical code: symbols sorted by (length, symbol) and
// the assigned code words.
type canonical struct {
	symbols []int          // sorted by (length, symbol)
	lengths []int          // parallel to symbols
	codes   map[int]uint64 // symbol → code word
	lenOf   map[int]int    // symbol → length
}

func buildCanonical(lengths map[int]int) (*canonical, error) {
	c := &canonical{
		codes: make(map[int]uint64, len(lengths)),
		lenOf: make(map[int]int, len(lengths)),
	}
	for s, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("huffman: code length %d exceeds maximum %d", l, maxCodeLen)
		}
		c.symbols = append(c.symbols, s)
		c.lenOf[s] = l
	}
	sort.Slice(c.symbols, func(i, j int) bool {
		li, lj := c.lenOf[c.symbols[i]], c.lenOf[c.symbols[j]]
		if li != lj {
			return li < lj
		}
		return c.symbols[i] < c.symbols[j]
	})
	c.lengths = make([]int, len(c.symbols))
	var code uint64
	prevLen := 0
	for i, s := range c.symbols {
		l := c.lenOf[s]
		c.lengths[i] = l
		code <<= uint(l - prevLen)
		c.codes[s] = code
		code++
		prevLen = l
	}
	return c, nil
}

// Encode Huffman-encodes syms and returns a self-describing byte stream:
// the canonical table followed by the packed code words. The alphabet is
// implicit in the symbols themselves; symbols must be non-negative.
func Encode(syms []int) ([]byte, error) {
	freq := make(map[int]int64)
	for _, s := range syms {
		if s < 0 {
			return nil, fmt.Errorf("huffman: negative symbol %d", s)
		}
		freq[s]++
	}
	c, err := buildCanonical(codeLengths(freq))
	if err != nil {
		return nil, err
	}

	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(syms)))
	hdr = binary.AppendUvarint(hdr, uint64(len(c.symbols)))
	for i, s := range c.symbols {
		hdr = binary.AppendUvarint(hdr, uint64(s))
		hdr = binary.AppendUvarint(hdr, uint64(c.lengths[i]))
	}

	w := bitstream.NewWriter(len(syms) / 2)
	for _, s := range syms {
		w.WriteBits(c.codes[s], uint(c.lenOf[s]))
	}
	body := w.Bytes()

	out := make([]byte, 0, len(hdr)+len(body)+8)
	out = append(out, hdr...)
	out = binary.AppendUvarint(out, uint64(len(body)))
	out = append(out, body...)
	return out, nil
}

// Decode reverses Encode. It returns the decoded symbols and the number of
// bytes consumed from buf, allowing the caller to embed the Huffman block
// inside a larger stream.
func Decode(buf []byte) (syms []int, consumed int, err error) {
	rd := buf
	n, k := binary.Uvarint(rd)
	if k <= 0 {
		return nil, 0, fmt.Errorf("huffman: truncated symbol count")
	}
	rd = rd[k:]
	consumed += k
	nsym, k := binary.Uvarint(rd)
	if k <= 0 {
		return nil, 0, fmt.Errorf("huffman: truncated table size")
	}
	rd = rd[k:]
	consumed += k

	lengths := make(map[int]int, nsym)
	for i := uint64(0); i < nsym; i++ {
		s, k1 := binary.Uvarint(rd)
		if k1 <= 0 {
			return nil, 0, fmt.Errorf("huffman: truncated table entry")
		}
		rd = rd[k1:]
		consumed += k1
		l, k2 := binary.Uvarint(rd)
		if k2 <= 0 {
			return nil, 0, fmt.Errorf("huffman: truncated table entry length")
		}
		rd = rd[k2:]
		consumed += k2
		if l == 0 || l > maxCodeLen {
			return nil, 0, fmt.Errorf("huffman: invalid code length %d", l)
		}
		lengths[int(s)] = int(l)
	}
	if uint64(len(lengths)) != nsym {
		return nil, 0, fmt.Errorf("huffman: duplicate symbols in table")
	}

	bodyLen, k := binary.Uvarint(rd)
	if k <= 0 {
		return nil, 0, fmt.Errorf("huffman: truncated body length")
	}
	rd = rd[k:]
	consumed += k
	if uint64(len(rd)) < bodyLen {
		return nil, 0, fmt.Errorf("huffman: body shorter than declared (%d < %d)", len(rd), bodyLen)
	}
	body := rd[:bodyLen]
	consumed += int(bodyLen)

	if n == 0 {
		return []int{}, consumed, nil
	}
	if nsym == 0 {
		return nil, 0, fmt.Errorf("huffman: %d symbols declared but table is empty", n)
	}
	// Every symbol costs at least one bit, so a corrupt count larger
	// than the body could hold must be rejected before allocation.
	if n > bodyLen*8 {
		return nil, 0, fmt.Errorf("huffman: %d symbols cannot fit in %d body bytes", n, bodyLen)
	}

	c, err := buildCanonical(lengths)
	if err != nil {
		return nil, 0, err
	}

	// Canonical decoding tables: for each length, the first code word and
	// the index of its first symbol in the sorted list.
	firstCode := make([]uint64, maxCodeLen+2)
	firstSym := make([]int, maxCodeLen+2)
	countAt := make([]int, maxCodeLen+2)
	for _, l := range c.lengths {
		countAt[l]++
	}
	var code uint64
	idx := 0
	for l := 1; l <= maxCodeLen; l++ {
		firstCode[l] = code
		firstSym[l] = idx
		code = (code + uint64(countAt[l])) << 1
		idx += countAt[l]
	}

	r := bitstream.NewReader(body)
	syms = make([]int, 0, n)
	for uint64(len(syms)) < n {
		var cw uint64
		l := 0
		for {
			b, err := r.ReadBit()
			if err != nil {
				return nil, 0, fmt.Errorf("huffman: bit stream exhausted after %d of %d symbols", len(syms), n)
			}
			cw = cw<<1 | uint64(b)
			l++
			if l > maxCodeLen {
				return nil, 0, fmt.Errorf("huffman: code longer than %d bits", maxCodeLen)
			}
			if countAt[l] > 0 && cw-firstCode[l] < uint64(countAt[l]) {
				syms = append(syms, c.symbols[firstSym[l]+int(cw-firstCode[l])])
				break
			}
		}
	}
	return syms, consumed, nil
}
