// Package huffman implements the customized Huffman coding stage of the SZ
// pipeline: a canonical Huffman coder over integer symbols (quantization
// codes). The encoder builds the code from symbol frequencies, emits a
// compact table (code lengths only) followed by the packed bit stream, and
// the decoder reconstructs the canonical code from the lengths.
//
// Symbols are non-negative int32s — the quantization-code element type,
// which halves the memory traffic of the counting and emit passes over
// multi-megapoint symbol slices compared to machine-word ints. Typical alphabets are the 2n quantization codes of the SZ
// quantizer (tens of thousands of possible symbols of which a few hundred
// occur).
package huffman

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sort"

	"fixedpsnr/internal/bitstream"
	"fixedpsnr/internal/kernels"
)

// maxCodeLen bounds canonical code lengths. A Huffman tree over n symbols
// with total count N has depth ≤ log_φ(N)+O(1); 62 accommodates any input
// this module can produce while keeping codes in a uint64.
const maxCodeLen = 62

// enode is a Huffman tree node in the arena-allocated encoder tree:
// children are arena indices, so the whole tree lives in one slice.
type enode struct {
	weight      int64
	symbol      int32 // leaf symbol; min subtree symbol on internal nodes
	left, right int32 // arena indices, -1 for leaves
}

// Scratch holds the Huffman encoder's construction state — frequency
// table, node arena, heap, and the canonical symbol/length/code tables —
// sized by the symbol alphabet, so sessions that encode many chunks
// reuse one set instead of rebuilding maps and trees from the heap every
// call. A nil *Scratch is valid and falls back to fresh allocation.
// Scratch is not safe for concurrent use; pool instances and hand one to
// each in-flight encode.
type Scratch struct {
	freq    []int64
	present []int32
	lenOf   []uint8
	codes   []uint64
	nodes   []enode
	heap    []int32
	stack   []int64
	w       bitstream.Writer
	lw      [4]bitstream.Writer // per-lane body writers (EncodeLanes4)
}

// NewScratch returns an empty Huffman scratch.
func NewScratch() *Scratch { return &Scratch{} }

// freqBuf returns a zeroed dense frequency table of length n.
func (s *Scratch) freqBuf(n int) []int64 {
	if s == nil || cap(s.freq) < n {
		buf := make([]int64, n)
		if s != nil {
			s.freq = buf
		}
		return buf
	}
	buf := s.freq[:n]
	clear(buf)
	return buf
}

// lenOfBuf returns a zeroed dense symbol→length table of length n.
func (s *Scratch) lenOfBuf(n int) []uint8 {
	if s == nil || cap(s.lenOf) < n {
		buf := make([]uint8, n)
		if s != nil {
			s.lenOf = buf
		}
		return buf
	}
	buf := s.lenOf[:n]
	clear(buf)
	return buf
}

// codesBuf returns a dense symbol→code table of length n (contents
// unspecified; only present symbols are written and read).
func (s *Scratch) codesBuf(n int) []uint64 {
	if s == nil || cap(s.codes) < n {
		buf := make([]uint64, n)
		if s != nil {
			s.codes = buf
		}
		return buf
	}
	return s.codes[:n]
}

// presentBuf returns an empty present-symbol list with capacity hint n.
func (s *Scratch) presentBuf(n int) []int32 {
	if s == nil || cap(s.present) < n {
		return make([]int32, 0, n)
	}
	return s.present[:0]
}

// nodesBuf returns an empty node arena with capacity hint n.
func (s *Scratch) nodesBuf(n int) []enode {
	if s == nil || cap(s.nodes) < n {
		return make([]enode, 0, n)
	}
	return s.nodes[:0]
}

// heapBuf returns an empty index heap with capacity hint n.
func (s *Scratch) heapBuf(n int) []int32 {
	if s == nil || cap(s.heap) < n {
		return make([]int32, 0, n)
	}
	return s.heap[:0]
}

// stackBuf returns an empty traversal stack with capacity hint n.
func (s *Scratch) stackBuf(n int) []int64 {
	if s == nil || cap(s.stack) < n {
		return make([]int64, 0, n)
	}
	return s.stack[:0]
}

// keep stores the final slices back so grown buffers survive to the next
// encode with this scratch.
func (s *Scratch) keep(present []int32, nodes []enode, heap []int32, stack []int64) {
	if s == nil {
		return
	}
	s.present, s.nodes, s.heap, s.stack = present, nodes, heap, stack
}

// nodeLess orders the build heap: by weight, tie-broken on the minimum
// subtree symbol so construction is deterministic.
func nodeLess(nodes []enode, a, b int32) bool {
	if nodes[a].weight != nodes[b].weight {
		return nodes[a].weight < nodes[b].weight
	}
	return nodes[a].symbol < nodes[b].symbol
}

// heapPush adds arena index v to the index min-heap h.
func heapPush(h []int32, nodes []enode, v int32) []int32 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeLess(nodes, h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// heapPop removes and returns the minimum arena index from h.
func heapPop(h []int32, nodes []enode) ([]int32, int32) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && nodeLess(nodes, h[l], h[small]) {
			small = l
		}
		if r < len(h) && nodeLess(nodes, h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}

// tableBits is the width of the one-level decode lookup table: the next
// tableBits peeked bits resolve (canonical index, code length) for every
// code no longer than tableBits in a single load. Canonical order sorts
// short codes first, so at most 1<<tableBits of them exist and their
// canonical indices fit 11 bits — one uint16 entry packs idx<<4 | length.
// Longer codes (rare on real quantization-code distributions) fall back to
// the canonical per-length walk.
const tableBits = 11

// DecodeScratch holds the Huffman decoder's reusable state — the lookup
// table, the canonical symbol/length slices, and the per-length canonical
// tables — so sessions that decode many chunks stop rebuilding map-backed
// tables from the heap every call. A nil *DecodeScratch is valid and falls
// back to fresh allocation. Not safe for concurrent use; pool instances
// and hand one to each in-flight decode.
type DecodeScratch struct {
	syms []int32 // symbols in canonical order (by length, then symbol)
	lens []uint8 // parallel code lengths
	dup  []int32 // duplicate-detection scratch

	table     [1 << tableBits]uint16 // peek pattern → idx<<4 | len; 0 = fallback
	firstCode [maxCodeLen + 2]uint64
	firstSym  [maxCodeLen + 2]int32
	countAt   [maxCodeLen + 2]int32

	// Table cache: the canonical (symbol, length) vectors the lookup
	// tables above were last built from, plus a hash for fast rejection.
	// Chunks of one field frequently share histograms (smooth regions
	// quantize to near-identical code distributions), so a pooled scratch
	// sees the same table back to back and skips the 4 KB table clear and
	// populate. The full vector comparison after the hash match makes a
	// collision harmless.
	tblSyms  []int32
	tblLens  []uint8
	tblKey   uint64
	tblValid bool

	r     bitstream.Reader
	lanes [4]bitstream.Reader // four-lane round-robin readers (DecodeLanes4Into)
}

// NewDecodeScratch returns an empty Huffman decode scratch.
func NewDecodeScratch() *DecodeScratch { return &DecodeScratch{} }

// symsBuf returns empty canonical symbol/length slices with capacity hint n.
func (ds *DecodeScratch) symsBuf(n int) ([]int32, []uint8) {
	if ds == nil || cap(ds.syms) < n || cap(ds.lens) < n {
		return make([]int32, 0, n), make([]uint8, 0, n)
	}
	return ds.syms[:0], ds.lens[:0]
}

// dupBuf returns an empty duplicate-check slice with capacity hint n.
func (ds *DecodeScratch) dupBuf(n int) []int32 {
	if ds == nil || cap(ds.dup) < n {
		return make([]int32, 0, n)
	}
	return ds.dup[:0]
}

// keep stores grown slices back so they survive to the next decode.
func (ds *DecodeScratch) keep(syms []int32, lens []uint8, dup []int32) {
	if ds == nil {
		return
	}
	ds.syms, ds.lens, ds.dup = syms, lens, dup
}

// canonicalSorter orders parallel (symbol, length) slices by (length,
// symbol) — the canonical code order. Only corrupt or foreign streams
// need it: this package's encoder already emits the table sorted.
type canonicalSorter struct {
	syms []int32
	lens []uint8
}

func (c *canonicalSorter) Len() int { return len(c.syms) }
func (c *canonicalSorter) Less(i, j int) bool {
	if c.lens[i] != c.lens[j] {
		return c.lens[i] < c.lens[j]
	}
	return c.syms[i] < c.syms[j]
}
func (c *canonicalSorter) Swap(i, j int) {
	c.syms[i], c.syms[j] = c.syms[j], c.syms[i]
	c.lens[i], c.lens[j] = c.lens[j], c.lens[i]
}

// Encode Huffman-encodes syms and returns a self-describing byte stream:
// the canonical table followed by the packed code words. The alphabet is
// implicit in the symbols themselves; symbols must be non-negative.
func Encode(syms []int32) ([]byte, error) { return EncodeScratch(nil, syms, nil) }

// EncodeTo appends the encoded stream Encode would produce to dst and
// returns the extended slice, so callers staging a larger container can
// reuse one append buffer instead of copying a freshly allocated block.
func EncodeTo(dst []byte, syms []int32) ([]byte, error) { return EncodeScratch(dst, syms, nil) }

// EncodeScratch is EncodeTo drawing every construction table — the dense
// frequency counts, the arena-allocated Huffman tree, the heap, and the
// canonical code tables — from sc, so repeated encodes (one per slab per
// compression, in a long-lived session) stop rebuilding them from the
// heap. A nil sc allocates fresh. The encoded bytes are identical
// whatever sc is.
func EncodeScratch(dst []byte, syms []int32, sc *Scratch) ([]byte, error) {
	maxSym := int32(0)
	for _, s := range syms {
		if s < 0 {
			return nil, fmt.Errorf("huffman: negative symbol %d", s)
		}
		if s > maxSym {
			maxSym = s
		}
	}
	return encodeBounded(dst, syms, int(maxSym), sc)
}

// EncodeScratchMax is EncodeScratch for callers that already know an
// inclusive upper bound on every symbol value (e.g. a quantizer whose
// codes are < capacity by construction): it skips the validation pass,
// which on multi-megabyte symbol slices is a full extra trip through
// memory. Every symbol MUST lie in [0, maxSym]; one outside that range
// panics (slice bounds) rather than returning an error. The encoded
// bytes are identical to EncodeScratch — the emitted table covers only
// symbols that actually occur, so an over-estimated bound costs a
// little scratch memory, not stream bytes.
func EncodeScratchMax(dst []byte, syms []int32, maxSym int, sc *Scratch) ([]byte, error) {
	return encodeBounded(dst, syms, maxSym, sc)
}

// buildTable counts syms, builds the canonical code, and appends the
// self-describing table header — uvarint(len(syms)), uvarint(nsym), then
// the (symbol, length) pairs in canonical order — to dst. It returns the
// dense symbol→length and symbol→code tables the emit loops index; both
// are scratch-owned (valid until the next build with the same sc).
func buildTable(dst []byte, syms []int32, maxSym int, sc *Scratch) (out []byte, lenOf []uint8, codes []uint64, err error) {
	// Count into four interleaved lanes (kernels.CountLanes4): runs of
	// one dominant symbol (the common case for quantization codes)
	// otherwise serialize on store-to-load forwarding of a single
	// counter. The lane assignment (position i into lane i mod 4) is the
	// same assignment EncodeLanes4 splits the payload by, so lane i's
	// counts are exactly lane i's symbol frequencies; only the summed
	// totals feed the shared table, which is what keeps one canonical
	// code valid for all four lane bitstreams. The merge pass also
	// rebuilds the present list, replacing the per-symbol branch.
	m := maxSym + 1
	lanes := sc.freqBuf(4 * m)
	lane0, lane1 := lanes[:m], lanes[m:2*m]
	lane2, lane3 := lanes[2*m:3*m], lanes[3*m:]
	kernels.CountLanes4(lane0, lane1, lane2, lane3, syms)
	freq := lane0
	present := sc.presentBuf(256)
	for s, f := range lane0 {
		f += lane1[s] + lane2[s] + lane3[s]
		if f != 0 {
			freq[s] = f
			present = append(present, int32(s))
		}
	}
	nsym := len(present)

	// Code lengths per symbol (dense table; zero = absent).
	lenOf = sc.lenOfBuf(maxSym + 1)
	nodes := sc.nodesBuf(2 * nsym)
	heap := sc.heapBuf(nsym)
	stack := sc.stackBuf(2 * nsym)
	switch nsym {
	case 0:
		// Empty input: emit the trivial header below.
	case 1:
		lenOf[present[0]] = 1
	default:
		for _, s := range present {
			nodes = append(nodes, enode{weight: freq[s], symbol: s, left: -1, right: -1})
		}
		for i := range nodes {
			heap = heapPush(heap, nodes, int32(i))
		}
		for len(heap) > 1 {
			var a, b int32
			heap, a = heapPop(heap, nodes)
			heap, b = heapPop(heap, nodes)
			nodes = append(nodes, enode{
				weight: nodes[a].weight + nodes[b].weight,
				symbol: min(nodes[a].symbol, nodes[b].symbol),
				left:   a, right: b,
			})
			heap = heapPush(heap, nodes, int32(len(nodes)-1))
		}
		// Iterative depth-first walk assigning leaf depths; entries pack
		// (arena index << 8 | depth), depth ≤ maxCodeLen < 256.
		stack = append(stack, int64(heap[0])<<8)
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			idx, depth := int32(top>>8), int(top&0xff)
			n := nodes[idx]
			if n.left < 0 {
				if depth > maxCodeLen {
					sc.keep(present, nodes, heap, stack)
					return nil, nil, nil, fmt.Errorf("huffman: code length %d exceeds maximum %d", depth, maxCodeLen)
				}
				lenOf[n.symbol] = uint8(depth)
				continue
			}
			stack = append(stack, int64(n.left)<<8|int64(depth+1))
			stack = append(stack, int64(n.right)<<8|int64(depth+1))
		}
	}

	// Canonical order: by (length, symbol).
	slices.SortFunc(present, func(a, b int32) int {
		if lenOf[a] != lenOf[b] {
			return int(lenOf[a]) - int(lenOf[b])
		}
		return int(a - b)
	})
	codes = sc.codesBuf(maxSym + 1)
	var code uint64
	prevLen := uint8(0)
	for _, s := range present {
		l := lenOf[s]
		code <<= uint(l - prevLen)
		codes[s] = code
		code++
		prevLen = l
	}

	dst = binary.AppendUvarint(dst, uint64(len(syms)))
	dst = binary.AppendUvarint(dst, uint64(nsym))
	for _, s := range present {
		dst = binary.AppendUvarint(dst, uint64(s))
		dst = binary.AppendUvarint(dst, uint64(lenOf[s]))
	}
	sc.keep(present, nodes, heap, stack)
	return dst, lenOf, codes, nil
}

// emitSyms packs syms' code words into w, two symbols per WriteBits call
// when their combined width fits one staged write (almost always:
// typical code lengths are well under 28 bits), halving the per-call
// overhead on the hot loop.
func emitSyms(w *bitstream.Writer, syms []int32, lenOf []uint8, codes []uint64) {
	i := 0
	for ; i+2 <= len(syms); i += 2 {
		s0, s1 := syms[i], syms[i+1]
		l0, l1 := uint(lenOf[s0]), uint(lenOf[s1])
		if l0+l1 <= 56 {
			w.WriteBits(codes[s0]<<l1|codes[s1], l0+l1)
			continue
		}
		w.WriteBits(codes[s0], l0)
		w.WriteBits(codes[s1], l1)
	}
	if i < len(syms) {
		s := syms[i]
		w.WriteBits(codes[s], uint(lenOf[s]))
	}
}

func encodeBounded(dst []byte, syms []int32, maxSym int, sc *Scratch) ([]byte, error) {
	dst, lenOf, codes, err := buildTable(dst, syms, maxSym, sc)
	if err != nil {
		return nil, err
	}
	var w *bitstream.Writer
	if sc != nil {
		// Reuse the scratch-owned Writer (and its buffer): body is copied
		// into dst below, so nothing escapes.
		sc.w.Reset()
		w = &sc.w
	} else {
		w = bitstream.NewWriter(len(syms) / 2)
	}
	emitSyms(w, syms, lenOf, codes)
	body := w.Bytes()

	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	return dst, nil
}

// EncodeLanes4Scratch is EncodeLanes4 computing the symbol bound itself
// with a validation pass — the EncodeScratch to EncodeLanes4's
// EncodeScratchMax, for callers whose symbols carry no construction-time
// bound.
func EncodeLanes4Scratch(dst []byte, syms []int32, sc *Scratch) ([]byte, error) {
	maxSym := int32(0)
	for _, s := range syms {
		if s < 0 {
			return nil, fmt.Errorf("huffman: negative symbol %d", s)
		}
		if s > maxSym {
			maxSym = s
		}
	}
	return EncodeLanes4(dst, syms, int(maxSym), sc)
}

// emitPair packs two symbols' code words into w, one WriteBits call when
// their combined width fits one staged write — the same pairing emitSyms
// applies to consecutive symbols of a contiguous slice.
func emitPair(w *bitstream.Writer, s0, s1 int32, lenOf []uint8, codes []uint64) {
	l0, l1 := uint(lenOf[s0]), uint(lenOf[s1])
	if l0+l1 <= 56 {
		w.WriteBits(codes[s0]<<l1|codes[s1], l0+l1)
		return
	}
	w.WriteBits(codes[s0], l0)
	w.WriteBits(codes[s1], l1)
}

// EncodeLanes4 appends the four-lane interleaved encoding of syms to dst:
// the same canonical table header Encode emits (built over all symbols,
// shared by every lane), then the four lane body byte lengths as
// uvarints, then the four packed lane bitstreams back to back. Lane i
// carries symbols i, i+4, i+8, … — the CountLanes4 assignment — each as
// an independent bitstream, so DecodeLanes4Into can keep four symbol
// resolutions in flight instead of serializing on one peek→consume
// chain.
//
// The emit fuses the lane split into one sequential pass: each block of
// eight input symbols hands lane j the pair (syms[i+j], syms[i+4+j]), so
// no staged kernels.LaneSplit4 scatter — a strided-store pass over the
// whole slice that profiles as most of the lane overhead — ever runs on
// the encode path. The bytes are identical to splitting first and
// emitting each lane slice with emitSyms; the differential test against
// that kernels.LaneSplit4 reference pins the equivalence.
//
// Every symbol must lie in [0, maxSym], as for EncodeScratchMax. A nil
// sc allocates fresh; the encoded bytes are identical whatever sc is.
func EncodeLanes4(dst []byte, syms []int32, maxSym int, sc *Scratch) ([]byte, error) {
	if sc == nil {
		sc = NewScratch()
	}
	dst, lenOf, codes, err := buildTable(dst, syms, maxSym, sc)
	if err != nil {
		return nil, err
	}

	w0, w1, w2, w3 := &sc.lw[0], &sc.lw[1], &sc.lw[2], &sc.lw[3]
	w0.Reset()
	w1.Reset()
	w2.Reset()
	w3.Reset()
	i := 0
	for ; i+8 <= len(syms); i += 8 {
		emitPair(w0, syms[i], syms[i+4], lenOf, codes)
		emitPair(w1, syms[i+1], syms[i+5], lenOf, codes)
		emitPair(w2, syms[i+2], syms[i+6], lenOf, codes)
		emitPair(w3, syms[i+3], syms[i+7], lenOf, codes)
	}
	// Tail: each lane has at most two symbols left (positions i+j and
	// i+4+j), paired exactly as emitSyms would pair them.
	for j, w := range [4]*bitstream.Writer{w0, w1, w2, w3} {
		if i+j >= len(syms) {
			break
		}
		if i+4+j < len(syms) {
			emitPair(w, syms[i+j], syms[i+4+j], lenOf, codes)
			continue
		}
		s := syms[i+j]
		w.WriteBits(codes[s], uint(lenOf[s]))
	}

	var bodies [4][]byte
	for lane, w := range [4]*bitstream.Writer{w0, w1, w2, w3} {
		bodies[lane] = w.Bytes()
	}
	for _, body := range bodies {
		dst = binary.AppendUvarint(dst, uint64(len(body)))
	}
	for _, body := range bodies {
		dst = append(dst, body...)
	}
	return dst, nil
}

// Decode reverses Encode. It returns the decoded symbols and the number of
// bytes consumed from buf, allowing the caller to embed the Huffman block
// inside a larger stream.
func Decode(buf []byte) (syms []int32, consumed int, err error) {
	return DecodeInto(nil, buf, nil)
}

// parseTable reads the leading symbol count and canonical (symbol,
// length) table shared by the single-stream and four-lane formats,
// returning the scratch-owned canonical slices and the bytes consumed.
// On return csyms/clens are kept in ds for reuse by the next parse.
func parseTable(buf []byte, ds *DecodeScratch) (n uint64, csyms []int32, clens []uint8, consumed int, err error) {
	rd := buf
	n, k := binary.Uvarint(rd)
	if k <= 0 {
		return 0, nil, nil, 0, fmt.Errorf("huffman: truncated symbol count")
	}
	rd = rd[k:]
	consumed += k
	nsym, k := binary.Uvarint(rd)
	if k <= 0 {
		return 0, nil, nil, 0, fmt.Errorf("huffman: truncated table size")
	}
	rd = rd[k:]
	consumed += k
	if nsym > uint64(len(rd)) {
		// Each table entry takes ≥ 2 bytes; reject the count before
		// sizing buffers from it.
		return 0, nil, nil, 0, fmt.Errorf("huffman: table size %d exceeds buffer", nsym)
	}

	csyms, clens = ds.symsBuf(int(nsym))
	sorted := true
	prevLen, prevSym := uint8(0), -1
	for i := uint64(0); i < nsym; i++ {
		s, k1 := binary.Uvarint(rd)
		if k1 <= 0 {
			ds.keep(csyms, clens, ds.dupBuf(0))
			return 0, nil, nil, 0, fmt.Errorf("huffman: truncated table entry")
		}
		rd = rd[k1:]
		consumed += k1
		l, k2 := binary.Uvarint(rd)
		if k2 <= 0 {
			ds.keep(csyms, clens, ds.dupBuf(0))
			return 0, nil, nil, 0, fmt.Errorf("huffman: truncated table entry length")
		}
		rd = rd[k2:]
		consumed += k2
		if l == 0 || l > maxCodeLen {
			ds.keep(csyms, clens, ds.dupBuf(0))
			return 0, nil, nil, 0, fmt.Errorf("huffman: invalid code length %d", l)
		}
		if s > 1<<31-1 {
			ds.keep(csyms, clens, ds.dupBuf(0))
			return 0, nil, nil, 0, fmt.Errorf("huffman: symbol %d out of range", s)
		}
		if uint8(l) < prevLen || (uint8(l) == prevLen && int(s) <= prevSym) {
			sorted = false
		}
		prevLen, prevSym = uint8(l), int(s)
		csyms = append(csyms, int32(s))
		clens = append(clens, uint8(l))
	}
	// This package's encoder emits the table in canonical (length, symbol)
	// order, so the sort below never runs on its own streams; foreign or
	// mutated tables are normalized the slow way.
	if !sorted {
		sort.Sort(&canonicalSorter{syms: csyms, lens: clens})
	}
	// Duplicate symbols would make the code ambiguous; the canonical sort
	// does not make equal symbols with different lengths adjacent, so the
	// check sorts a scratch copy by symbol value.
	dup := ds.dupBuf(len(csyms))
	dup = append(dup, csyms...)
	slices.Sort(dup)
	for i := 1; i < len(dup); i++ {
		if dup[i] == dup[i-1] {
			ds.keep(csyms, clens, dup)
			return 0, nil, nil, 0, fmt.Errorf("huffman: duplicate symbols in table")
		}
	}
	ds.keep(csyms, clens, dup)
	return n, csyms, clens, consumed, nil
}

// tableKey hashes the canonical (symbol, length) vectors — FNV-1a over
// both, length-prefixed — for the prepareTables cache's fast reject.
func tableKey(syms []int32, lens []uint8) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(len(syms))
	h *= prime
	for _, s := range syms {
		h ^= uint64(uint32(s))
		h *= prime
	}
	for _, l := range lens {
		h ^= uint64(l)
		h *= prime
	}
	return h
}

// prepareTables builds the decoding tables for the canonical code
// csyms/clens describe: the per-length first-code/first-symbol tables and
// the one-level lookup table. When the scratch last built the same
// canonical vectors — hash fast-reject, then full comparison — the
// existing tables are reused, skipping the 4 KB table clear and populate;
// chunks of one field frequently share histograms, so pooled scratches
// hit this cache back to back.
func (ds *DecodeScratch) prepareTables(csyms []int32, clens []uint8) {
	key := tableKey(csyms, clens)
	if ds.tblValid && ds.tblKey == key &&
		slices.Equal(ds.tblSyms, csyms) && slices.Equal(ds.tblLens, clens) {
		return
	}
	ds.tblValid = false

	// Canonical decoding tables: for each length, the first code word and
	// the index of its first symbol in the canonical order.
	firstCode := &ds.firstCode
	firstSym := &ds.firstSym
	countAt := &ds.countAt
	clear(countAt[:])
	for _, l := range clens {
		countAt[l]++
	}
	var code uint64
	var idx int32
	for l := 1; l <= maxCodeLen; l++ {
		firstCode[l] = code
		firstSym[l] = idx
		code = (code + uint64(countAt[l])) << 1
		idx += countAt[l]
	}

	// One-level lookup table: every code of length ≤ tableBits owns all
	// 1<<(tableBits-len) patterns it prefixes; entry 0 marks the long-code
	// fallback. Canonical order puts short codes first, so their indices
	// fit the packed uint16.
	table := &ds.table
	clear(table[:])
	code = 0
	prev := uint8(0)
	for i, l := range clens {
		if uint(l) > tableBits {
			break
		}
		code <<= uint(l - prev)
		prev = l
		lo := code << (tableBits - uint(l))
		hi := lo + 1<<(tableBits-uint(l))
		if lo >= uint64(len(table)) {
			break // oversubscribed (corrupt) table; fallback still guards
		}
		if hi > uint64(len(table)) {
			hi = uint64(len(table))
		}
		e := uint16(i)<<4 | uint16(l)
		for j := lo; j < hi; j++ {
			table[j] = e
		}
		code++
	}

	ds.tblKey = key
	ds.tblSyms = append(ds.tblSyms[:0], csyms...)
	ds.tblLens = append(ds.tblLens[:0], clens...)
	ds.tblValid = true
}

// decodeSym resolves one symbol from r through the prepared tables: a
// single-load table hit on short codes, the canonical per-length walk on
// long ones. It is the checked slow path the four-lane decoder falls back
// to for tail symbols and rare long-code rounds; the hot loops inline the
// table hit themselves. Returns bitstream.ErrOutOfBits on exhaustion.
func (ds *DecodeScratch) decodeSym(r *bitstream.Reader, csyms []int32) (int32, error) {
	if r.Buffered() < tableBits {
		r.Refill()
	}
	if e := ds.table[r.Window()>>(64-tableBits)]; e != 0 {
		l := uint(e & 0xf)
		if l > r.Buffered() {
			return 0, bitstream.ErrOutOfBits
		}
		r.Skip(l)
		return csyms[e>>4], nil
	}
	var cw uint64
	l := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, bitstream.ErrOutOfBits
		}
		cw = cw<<1 | uint64(b)
		l++
		if l > maxCodeLen {
			return 0, fmt.Errorf("huffman: code longer than %d bits", maxCodeLen)
		}
		if ds.countAt[l] > 0 && cw-ds.firstCode[l] < uint64(ds.countAt[l]) {
			return csyms[ds.firstSym[l]+int32(cw-ds.firstCode[l])], nil
		}
	}
}

// DecodeInto is Decode appending the symbols into dst[:0] (grown as
// needed) and drawing every decoding table — the one-level lookup table,
// the canonical symbol/length slices, the per-length canonical tables,
// and the bit reader — from ds, so repeated decodes (one per chunk, in a
// long-lived session) stop rebuilding them from the heap. Nil dst and/or
// ds allocate fresh. The decoded symbols are identical whatever dst and
// ds are.
func DecodeInto(dst []int32, buf []byte, ds *DecodeScratch) (syms []int32, consumed int, err error) {
	if ds == nil {
		ds = &DecodeScratch{}
	}
	n, csyms, clens, consumed, err := parseTable(buf, ds)
	if err != nil {
		return nil, 0, err
	}
	rd := buf[consumed:]

	bodyLen, k := binary.Uvarint(rd)
	if k <= 0 {
		return nil, 0, fmt.Errorf("huffman: truncated body length")
	}
	rd = rd[k:]
	consumed += k
	if uint64(len(rd)) < bodyLen {
		return nil, 0, fmt.Errorf("huffman: body shorter than declared (%d < %d)", len(rd), bodyLen)
	}
	body := rd[:bodyLen]
	consumed += int(bodyLen)

	if n == 0 {
		if dst != nil {
			return dst[:0], consumed, nil
		}
		return []int32{}, consumed, nil
	}
	if len(csyms) == 0 {
		return nil, 0, fmt.Errorf("huffman: %d symbols declared but table is empty", n)
	}
	// Every symbol costs at least one bit, so a corrupt count larger
	// than the body could hold must be rejected before allocation.
	if n > bodyLen*8 {
		return nil, 0, fmt.Errorf("huffman: %d symbols cannot fit in %d body bytes", n, bodyLen)
	}

	ds.prepareTables(csyms, clens)
	table := &ds.table
	firstCode := &ds.firstCode
	firstSym := &ds.firstSym
	countAt := &ds.countAt

	r := &ds.r
	r.Reset(body)
	if uint64(cap(dst)) < n {
		dst = make([]int32, n)
	}
	out := dst[:n]
	// The hot loop refills the reader's 64-bit window once per symbol at
	// most, resolves short codes with a single table load, and consumes
	// their bits with an unchecked Skip — no per-bit calls, no double
	// refill check from a Peek/Consume pair.
	for pos := range out {
		if r.Buffered() < tableBits {
			r.Refill()
		}
		if e := table[r.Window()>>(64-tableBits)]; e != 0 {
			l := uint(e & 0xf)
			if l > r.Buffered() {
				return nil, 0, fmt.Errorf("huffman: bit stream exhausted after %d of %d symbols", pos, n)
			}
			r.Skip(l)
			out[pos] = csyms[e>>4]
			continue
		}
		// Long code (or exhaustion): canonical walk, one bit at a time.
		var cw uint64
		l := 0
		for {
			b, err := r.ReadBit()
			if err != nil {
				return nil, 0, fmt.Errorf("huffman: bit stream exhausted after %d of %d symbols", pos, n)
			}
			cw = cw<<1 | uint64(b)
			l++
			if l > maxCodeLen {
				return nil, 0, fmt.Errorf("huffman: code longer than %d bits", maxCodeLen)
			}
			if countAt[l] > 0 && cw-firstCode[l] < uint64(countAt[l]) {
				out[pos] = csyms[firstSym[l]+int32(cw-firstCode[l])]
				break
			}
		}
	}
	return out, consumed, nil
}

// DecodeLanes4Into reverses EncodeLanes4, appending the symbols into
// dst[:0] (grown as needed). The four lane bitstreams decode round-robin
// on four independent reader windows: one fused refill per round, then
// four table loads whose symbol resolutions carry no data dependency on
// each other, so the peek→consume chain that serializes single-stream
// decode runs four-wide. Nil dst and/or ds allocate fresh; the decoded
// symbols are identical to DecodeInto over the equivalent single-stream
// encoding.
func DecodeLanes4Into(dst []int32, buf []byte, ds *DecodeScratch) (syms []int32, consumed int, err error) {
	if ds == nil {
		ds = &DecodeScratch{}
	}
	n, csyms, clens, consumed, err := parseTable(buf, ds)
	if err != nil {
		return nil, 0, err
	}
	rd := buf[consumed:]

	var laneLen [4]int
	total := 0
	for i := range laneLen {
		l, k := binary.Uvarint(rd)
		if k <= 0 {
			return nil, 0, fmt.Errorf("huffman: truncated lane %d length", i)
		}
		rd = rd[k:]
		consumed += k
		if l > uint64(len(rd)) {
			return nil, 0, fmt.Errorf("huffman: lane %d body shorter than declared (%d < %d)", i, len(rd), l)
		}
		laneLen[i] = int(l)
		total += int(l)
	}
	if total > len(rd) {
		return nil, 0, fmt.Errorf("huffman: lane bodies shorter than declared (%d < %d)", len(rd), total)
	}
	var body [4][]byte
	off := 0
	for i := range body {
		body[i] = rd[off : off+laneLen[i]]
		off += laneLen[i]
	}
	consumed += total

	if n == 0 {
		if dst != nil {
			return dst[:0], consumed, nil
		}
		return []int32{}, consumed, nil
	}
	if len(csyms) == 0 {
		return nil, 0, fmt.Errorf("huffman: %d symbols declared but table is empty", n)
	}
	// Every symbol costs at least one bit in its lane; reject corrupt
	// counts before allocation, per lane so no lane can overrun its own
	// stream into a neighbor's bytes.
	if n > uint64(total)*8 {
		return nil, 0, fmt.Errorf("huffman: %d symbols cannot fit in %d lane body bytes", n, total)
	}
	c0, c1, c2, c3 := kernels.LaneLens4(int(n))
	for i, c := range [4]int{c0, c1, c2, c3} {
		if c > laneLen[i]*8 {
			return nil, 0, fmt.Errorf("huffman: lane %d: %d symbols cannot fit in %d body bytes", i, c, laneLen[i])
		}
	}

	ds.prepareTables(csyms, clens)
	table := &ds.table

	r0, r1, r2, r3 := &ds.lanes[0], &ds.lanes[1], &ds.lanes[2], &ds.lanes[3]
	r0.Reset(body[0])
	r1.Reset(body[1])
	r2.Reset(body[2])
	r3.Reset(body[3])
	if uint64(cap(dst)) < n {
		dst = make([]int32, n)
	}
	out := dst[:n]
	// Block hot loop: one fused refill buys every lane ≥ 44 staged bits —
	// four table codes of ≤ tableBits each — so four whole rounds (16
	// symbols) run with no refill branch, no exhaustion check, and no
	// per-symbol call. Within each round the four table lookups depend
	// only on their own lane's window, so the CPU overlaps all four
	// symbol resolutions — the ILP the single-stream peek→consume chain
	// can never expose. A fallback entry (long code, or a lane too near
	// its end to re-arm) exits to the checked per-round loop below, which
	// finishes the stream.
	pos := 0
blocks:
	for pos+16 <= int(n) {
		if r0.Buffered() < 4*tableBits || r1.Buffered() < 4*tableBits ||
			r2.Buffered() < 4*tableBits || r3.Buffered() < 4*tableBits {
			bitstream.Refill4(r0, r1, r2, r3)
			if r0.Buffered() < 4*tableBits || r1.Buffered() < 4*tableBits ||
				r2.Buffered() < 4*tableBits || r3.Buffered() < 4*tableBits {
				break
			}
		}
		for k := 0; k < 4; k++ {
			e0 := table[r0.Window()>>(64-tableBits)]
			e1 := table[r1.Window()>>(64-tableBits)]
			e2 := table[r2.Window()>>(64-tableBits)]
			e3 := table[r3.Window()>>(64-tableBits)]
			if e0 == 0 || e1 == 0 || e2 == 0 || e3 == 0 {
				break blocks // nothing consumed this round; finish below
			}
			r0.Skip(uint(e0 & 0xf))
			r1.Skip(uint(e1 & 0xf))
			r2.Skip(uint(e2 & 0xf))
			r3.Skip(uint(e3 & 0xf))
			out[pos] = csyms[e0>>4]
			out[pos+1] = csyms[e1>>4]
			out[pos+2] = csyms[e2>>4]
			out[pos+3] = csyms[e3>>4]
			pos += 4
		}
	}
	// Checked per-round loop: the block loop's remainder (stream tails,
	// long codes, corrupt streams) decodes with full per-symbol guards.
	for ; pos+4 <= int(n); pos += 4 {
		if r0.Buffered() < tableBits || r1.Buffered() < tableBits ||
			r2.Buffered() < tableBits || r3.Buffered() < tableBits {
			bitstream.Refill4(r0, r1, r2, r3)
		}
		e0 := table[r0.Window()>>(64-tableBits)]
		e1 := table[r1.Window()>>(64-tableBits)]
		e2 := table[r2.Window()>>(64-tableBits)]
		e3 := table[r3.Window()>>(64-tableBits)]
		if e0 == 0 || e1 == 0 || e2 == 0 || e3 == 0 {
			for lane, r := range [4]*bitstream.Reader{r0, r1, r2, r3} {
				s, derr := ds.decodeSym(r, csyms)
				if derr == bitstream.ErrOutOfBits {
					return nil, 0, fmt.Errorf("huffman: lane %d bit stream exhausted after %d of %d symbols", lane, pos+lane, n)
				}
				if derr != nil {
					return nil, 0, derr
				}
				out[pos+lane] = s
			}
			continue
		}
		l0, l1 := uint(e0&0xf), uint(e1&0xf)
		l2, l3 := uint(e2&0xf), uint(e3&0xf)
		if l0 > r0.Buffered() || l1 > r1.Buffered() ||
			l2 > r2.Buffered() || l3 > r3.Buffered() {
			return nil, 0, fmt.Errorf("huffman: bit stream exhausted after %d of %d symbols", pos, n)
		}
		r0.Skip(l0)
		r1.Skip(l1)
		r2.Skip(l2)
		r3.Skip(l3)
		out[pos] = csyms[e0>>4]
		out[pos+1] = csyms[e1>>4]
		out[pos+2] = csyms[e2>>4]
		out[pos+3] = csyms[e3>>4]
	}
	// Tail: the final 1–3 symbols land on lanes 0.. in order, matching
	// LaneSplit4.
	for lane, r := range [4]*bitstream.Reader{r0, r1, r2, r3} {
		if pos+lane >= int(n) {
			break
		}
		s, derr := ds.decodeSym(r, csyms)
		if derr == bitstream.ErrOutOfBits {
			return nil, 0, fmt.Errorf("huffman: lane %d bit stream exhausted after %d of %d symbols", lane, pos+lane, n)
		}
		if derr != nil {
			return nil, 0, derr
		}
		out[pos+lane] = s
	}
	return out, consumed, nil
}
