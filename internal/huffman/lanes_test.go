package huffman

import (
	"bytes"
	"encoding/binary"
	"slices"
	"testing"

	"fixedpsnr/internal/bitstream"
	"fixedpsnr/internal/kernels"
)

// laneCorpora sweeps the shapes the four-lane format cares about: every
// tail length mod 4 (and mod 8, the fused emit's block size), plus the
// skewed and quantization-code streams the single-stream tests use.
func laneCorpora(tb testing.TB) [][]int32 {
	corpora := [][]int32{{}}
	for n := 1; n <= 19; n++ {
		syms := make([]int32, n)
		for i := range syms {
			syms[i] = int32(i%5) * 7
		}
		corpora = append(corpora, syms)
	}
	corpora = append(corpora,
		[]int32{0, 65535, 32768, 1, 65535, 0},
		quantCodes(4096, 3),
		quantCodes(1021, 9), // 1 mod 4 with a wide alphabet
	)
	for depth := tableBits - 1; depth <= tableBits+1; depth++ {
		syms, _ := skewedStream(tb, depth)
		corpora = append(corpora, syms)
	}
	return corpora
}

func maxSymOf(syms []int32) int {
	m := int32(0)
	for _, s := range syms {
		if s > m {
			m = s
		}
	}
	return int(m)
}

// TestEncodeLanes4MatchesSplitReference pins the contract in
// EncodeLanes4's comment: the fused emit is byte-identical to staging a
// kernels.LaneSplit4 scatter and emitting each lane slice with emitSyms.
func TestEncodeLanes4MatchesSplitReference(t *testing.T) {
	sc := NewScratch()
	for i, syms := range laneCorpora(t) {
		maxSym := maxSymOf(syms)
		got, err := EncodeLanes4(nil, syms, maxSym, sc)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}

		ref, lenOf, codes, err := buildTable(nil, syms, maxSym, NewScratch())
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		c0, c1, c2, c3 := kernels.LaneLens4(len(syms))
		lanes := [4][]int32{
			make([]int32, c0), make([]int32, c1),
			make([]int32, c2), make([]int32, c3),
		}
		kernels.LaneSplit4(lanes[0], lanes[1], lanes[2], lanes[3], syms)
		var bodies [4][]byte
		for lane, ls := range lanes {
			w := bitstream.NewWriter(len(ls))
			emitSyms(w, ls, lenOf, codes)
			bodies[lane] = w.Bytes()
		}
		for _, body := range bodies {
			ref = binary.AppendUvarint(ref, uint64(len(body)))
		}
		for _, body := range bodies {
			ref = append(ref, body...)
		}

		if !bytes.Equal(got, ref) {
			t.Fatalf("corpus %d (n=%d): fused encode (%d bytes) differs from LaneSplit4+emitSyms reference (%d bytes)",
				i, len(syms), len(got), len(ref))
		}
	}
}

// TestLanes4RoundTrip drives encode→decode over the corpus shapes,
// checks consumed covers exactly the encoding, and confirms trailing
// bytes are left alone — the embedding contract the chunk payloads rely
// on.
func TestLanes4RoundTrip(t *testing.T) {
	sc := NewScratch()
	ds := NewDecodeScratch()
	var dst []int32
	for i, syms := range laneCorpora(t) {
		enc, err := EncodeLanes4(nil, syms, maxSymOf(syms), sc)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		withTrailer := append(append([]byte{}, enc...), 0xAA, 0xBB)
		got, consumed, err := DecodeLanes4Into(dst, withTrailer, ds)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		if consumed != len(enc) {
			t.Fatalf("corpus %d: consumed %d of %d bytes", i, consumed, len(enc))
		}
		if !slices.Equal(got, syms) {
			t.Fatalf("corpus %d (n=%d): round trip mismatch", i, len(syms))
		}
		dst = got
	}
}

// TestDecodeLanes4RejectsTruncated mirrors the single-stream truncation
// test: no strict prefix of a lane encoding may decode to the full
// input while claiming to have consumed the whole prefix.
func TestDecodeLanes4RejectsTruncated(t *testing.T) {
	syms := quantCodes(257, 5)
	enc, err := EncodeLanes4(nil, syms, maxSymOf(syms), nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDecodeScratch()
	for cut := 0; cut < len(enc); cut++ {
		dec, consumed, err := DecodeLanes4Into(nil, enc[:cut], ds)
		if err == nil && consumed == cut && slices.Equal(dec, syms) {
			t.Fatalf("truncated stream (cut=%d) decoded to the full input", cut)
		}
	}
}

// TestDecodeScratchTableCache exercises the prepareTables cache across
// one scratch: repeating a stream must reuse the cached tables (the key
// stays put), switching streams must rebuild, and every decode must
// stay correct through the alternation — including after a failed parse
// in between.
func TestDecodeScratchTableCache(t *testing.T) {
	symsA := quantCodes(2048, 3)
	symsB, _ := skewedStream(t, tableBits+1) // different alphabet and depths
	encA, err := EncodeLanes4(nil, symsA, maxSymOf(symsA), nil)
	if err != nil {
		t.Fatal(err)
	}
	encB, err := EncodeLanes4(nil, symsB, maxSymOf(symsB), nil)
	if err != nil {
		t.Fatal(err)
	}

	ds := NewDecodeScratch()
	decode := func(enc []byte, want []int32) {
		t.Helper()
		got, _, err := DecodeLanes4Into(nil, enc, ds)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Fatal("decode through shared scratch diverges")
		}
		if !ds.tblValid {
			t.Fatal("decode left the table cache invalid")
		}
	}

	decode(encA, symsA)
	keyA := ds.tblKey
	decode(encA, symsA) // same table: must hit the cache
	if ds.tblKey != keyA {
		t.Fatalf("repeat decode changed the cache key: %#x vs %#x", ds.tblKey, keyA)
	}
	decode(encB, symsB) // different table: must rebuild
	if ds.tblKey == keyA {
		t.Fatal("distinct canonical tables hashed to one cache key")
	}
	if _, _, err := DecodeLanes4Into(nil, encA[:3], ds); err == nil {
		t.Fatal("expected error for truncated header")
	}
	decode(encA, symsA) // back to A, after an error in between
	if ds.tblKey != keyA {
		t.Fatalf("cache key for A not reproducible: %#x vs %#x", ds.tblKey, keyA)
	}
}

// FuzzDecodeLanes4Differential is the lane-format analog of
// FuzzDecodeScratchDifferential: fuzzer bytes are first fed straight to
// DecodeLanes4Into (which must reject garbage without panicking), then
// reinterpreted as a symbol stream that is encoded both ways — four-lane
// and single-stream — and decoded by the matching decoders, which must
// agree with each other and with the input. Symbols are single bytes
// and the input is size-capped so one execution stays in the tens of
// microseconds — the engine's minimizer re-executes inputs O(n²) times,
// so a milliseconds-per-exec body (say, a 65536-symbol alphabet
// rebuilding every table) stalls fuzzing entirely. The wide-alphabet
// shapes stay covered by the deterministic corpus tests above.
func FuzzDecodeLanes4Differential(f *testing.F) {
	seedSyms := [][]int32{{1, 2, 3, 4, 5, 6, 7, 8, 9}}
	for depth := tableBits - 1; depth <= tableBits+1; depth++ {
		syms, _ := skewedStream(f, depth)
		seedSyms = append(seedSyms, syms)
	}
	for _, syms := range seedSyms {
		if enc, err := EncodeLanes4Scratch(nil, syms, nil); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{5, 0})
	f.Add([]byte{0x07, 0x01, 4})
	sc := NewScratch()
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Fresh decode scratches every run: the prepareTables cache keys
		// on the previous stream, so a shared scratch would make coverage
		// depend on execution order and confuse the minimizer.
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		// Arbitrary bytes: may decode or error, must never panic.
		DecodeLanes4Into(nil, raw, NewDecodeScratch())

		syms := make([]int32, len(raw))
		for i, b := range raw {
			syms[i] = int32(b)
		}
		lane, err := EncodeLanes4Scratch(nil, syms, sc)
		if err != nil {
			t.Fatalf("EncodeLanes4Scratch: %v", err)
		}
		single, err := EncodeScratch(nil, syms, sc)
		if err != nil {
			t.Fatalf("EncodeScratch: %v", err)
		}
		got, consumed, err := DecodeLanes4Into(nil, lane, NewDecodeScratch())
		if err != nil {
			t.Fatalf("DecodeLanes4Into: %v", err)
		}
		if consumed != len(lane) {
			t.Fatalf("lane decode consumed %d of %d bytes", consumed, len(lane))
		}
		want, _, err := DecodeInto(nil, single, NewDecodeScratch())
		if err != nil {
			t.Fatalf("DecodeInto: %v", err)
		}
		if !slices.Equal(got, want) || !slices.Equal(got, syms) {
			t.Fatalf("lane decode diverges: %d symbols in, lane %d, single %d", len(syms), len(got), len(want))
		}
	})
}
