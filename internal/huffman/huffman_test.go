package huffman

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, syms []int32) {
	t.Helper()
	enc, err := Encode(syms)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, consumed, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if consumed != len(enc) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(enc))
	}
	if !reflect.DeepEqual(dec, syms) {
		t.Fatalf("round trip mismatch: got %v, want %v", dec, syms)
	}
}

func TestRoundTripEmpty(t *testing.T)        { roundTrip(t, []int32{}) }
func TestRoundTripSingle(t *testing.T)       { roundTrip(t, []int32{7}) }
func TestRoundTripOneSymbol(t *testing.T)    { roundTrip(t, []int32{5, 5, 5, 5, 5}) }
func TestRoundTripTwoSymbols(t *testing.T)   { roundTrip(t, []int32{1, 2, 1, 2, 2, 2, 1}) }
func TestRoundTripWideAlphabet(t *testing.T) { roundTrip(t, []int32{0, 65535, 32768, 1, 65535, 0}) }

func TestRoundTripSkewed(t *testing.T) {
	// Highly skewed frequencies exercise deep codes.
	var syms []int32
	for i := 0; i < 12; i++ {
		for j := 0; j < 1<<i; j++ {
			syms = append(syms, int32(i))
		}
	}
	roundTrip(t, syms)
}

func TestRoundTripRandomQuantCodes(t *testing.T) {
	// Mimic SZ quantization codes: Laplacian-ish around a radius.
	rng := rand.New(rand.NewSource(7))
	radius := 32768
	syms := make([]int32, 50000)
	for i := range syms {
		mag := int(rng.ExpFloat64() * 3)
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		c := radius + mag
		if c < 1 {
			c = 1
		}
		if c > 2*radius-1 {
			c = 2*radius - 1
		}
		if rng.Intn(500) == 0 {
			c = 0 // unpredictable marker
		}
		syms[i] = int32(c)
	}
	roundTrip(t, syms)
}

func TestEncodeRejectsNegative(t *testing.T) {
	if _, err := Encode([]int32{1, -2}); err == nil {
		t.Fatal("expected error for negative symbol")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	enc, err := Encode([]int32{1, 2, 3, 1, 2, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); err == nil {
			// Some prefixes may parse as a shorter valid stream only
			// if counts allow; a fully valid decode of a strict prefix
			// that consumed everything would be a bug.
			dec, consumed, _ := Decode(enc[:cut])
			if consumed == cut && reflect.DeepEqual(dec, []int32{1, 2, 3, 1, 2, 3, 3, 3}) {
				t.Fatalf("truncated stream (cut=%d) decoded to the full input", cut)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode([]byte{}); err == nil {
		t.Fatal("expected error for empty buffer")
	}
	if _, _, err := Decode([]byte{0xff}); err == nil {
		t.Fatal("expected error for bare 0xff")
	}
}

func TestDecodeTrailingBytesIgnored(t *testing.T) {
	syms := []int32{4, 4, 2, 9}
	enc, err := Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	withTrailer := append(append([]byte{}, enc...), 0xAA, 0xBB)
	dec, consumed, err := Decode(withTrailer)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(enc) {
		t.Fatalf("consumed = %d, want %d", consumed, len(enc))
	}
	if !reflect.DeepEqual(dec, syms) {
		t.Fatal("decode with trailer mismatch")
	}
}

func TestCompressionBeatsFixedWidth(t *testing.T) {
	// 64k symbols drawn from a peaked distribution should code well
	// under 16 bits each.
	rng := rand.New(rand.NewSource(3))
	syms := make([]int32, 65536)
	for i := range syms {
		syms[i] = int32(32768 + int(rng.NormFloat64()*2))
	}
	enc, err := Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(syms)*2/2 { // < 8 bits/symbol
		t.Fatalf("encoded %d symbols into %d bytes; expected < %d", len(syms), len(enc), len(syms))
	}
}

// Property: arbitrary non-negative symbol streams round-trip.
func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		syms := make([]int32, len(raw))
		for i, v := range raw {
			syms[i] = int32(v)
		}
		enc, err := Encode(syms)
		if err != nil {
			return false
		}
		dec, consumed, err := Decode(enc)
		if err != nil || consumed != len(enc) {
			return false
		}
		return reflect.DeepEqual(dec, syms)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
