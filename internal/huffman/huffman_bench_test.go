package huffman

import (
	"math/rand"
	"testing"
)

// quantCodes builds a realistic SZ code stream: Laplacian-ish codes around
// the interval radius with occasional unpredictable markers.
func quantCodes(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	radius := 32768
	syms := make([]int32, n)
	for i := range syms {
		mag := int(rng.ExpFloat64() * 2)
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		c := radius + mag
		if c < 1 {
			c = 1
		}
		if c > 2*radius-1 {
			c = 2*radius - 1
		}
		if rng.Intn(1000) == 0 {
			c = 0
		}
		syms[i] = int32(c)
	}
	return syms
}

func BenchmarkEncode(b *testing.B) {
	syms := quantCodes(1<<20, 1)
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(syms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	syms := quantCodes(1<<20, 2)
	enc, err := Encode(syms)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
