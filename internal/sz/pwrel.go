package sz

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
)

// Pointwise-relative compression (SZ's third traditional error-control
// mode, listed in the paper's §II-B) is implemented by compressing in the
// logarithmic domain: y = ln|x| is compressed with the ordinary Lorenzo
// pipeline under the absolute bound ebLog = ln(1 + ebRel), which
// guarantees |x̃/x − 1| ≤ ebRel for every non-zero point. Signs and exact
// zeros travel in bit masks alongside the inner stream.
//
// Stream layout (codec CodecLogLorenzo): the outer container header
// records ebRel in its EbAbs slot, followed by one payload chunk:
//
//	ebRel               8 bytes IEEE-754 LE
//	maskLen             uvarint (compressed byte count)
//	flate(signMask || zeroMask)   each mask ⌈n/8⌉ bytes, MSB-first
//	inner CodecLorenzo stream     (the log-domain field)

// CompressPWRel compresses the field under a pointwise relative error
// bound: every reconstructed value satisfies |x̃ − x| ≤ ebRel·|x| (zeros
// are reconstructed exactly). Values whose magnitude underflows the log
// domain (denormals) are handled like any other: ln|x| is finite for all
// non-zero floats.
func CompressPWRel(f *field.Field, ebRel float64, opt Options) ([]byte, *Stats, error) {
	return CompressPWRelCtx(context.Background(), f, ebRel, opt, nil)
}

// CompressPWRelCtx is CompressPWRel with cancellation and buffer reuse:
// ctx and sc are threaded into the inner log-domain Lorenzo compression,
// and the mask DEFLATE writer comes from the scratch pool.
func CompressPWRelCtx(ctx context.Context, f *field.Field, ebRel float64, opt Options, sc *codec.Scratch) ([]byte, *Stats, error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	if !(ebRel > 0) || ebRel >= 1 || math.IsNaN(ebRel) {
		return nil, nil, fmt.Errorf("sz: pointwise relative bound must be in (0, 1), got %g", ebRel)
	}
	n := f.Len()
	// One backing array so the concatenated masks DEFLATE as a single
	// write with no join copy.
	maskBytes := (n + 7) / 8
	masks := make([]byte, 2*maskBytes)
	signMask := masks[:maskBytes]
	zeroMask := masks[maskBytes:]
	logField := field.New(f.Name, field.Float64, f.Dims...)
	for i, v := range f.Data {
		if math.Signbit(v) {
			signMask[i/8] |= 1 << (7 - i%8)
		}
		if v == 0 {
			zeroMask[i/8] |= 1 << (7 - i%8)
			// A neutral stand-in keeps the log field smooth; the zero
			// mask restores exactness.
			logField.Data[i] = 0
			continue
		}
		logField.Data[i] = math.Log(math.Abs(v))
	}

	ebLog := math.Log1p(ebRel) * (1 - 1e-12) // tiny margin for exp/log rounding
	innerOpt := opt
	innerOpt.ErrorBound = ebLog
	innerOpt.Mode = ModePWRel
	innerOpt.TargetPSNR = math.NaN()
	inner, innerStats, err := CompressCtx(ctx, logField, innerOpt, sc)
	if err != nil {
		return nil, nil, fmt.Errorf("sz: pwrel inner compression: %w", err)
	}

	maskStream, err := sc.AppendDeflate(nil, masks, opt.Level)
	if err != nil {
		return nil, nil, err
	}

	payload := make([]byte, 0, 16+len(maskStream)+len(inner))
	payload = appendFloat64(payload, ebRel)
	payload = binary.AppendUvarint(payload, uint64(len(maskStream)))
	payload = append(payload, maskStream...)
	payload = append(payload, inner...)

	_, _, vr := f.ValueRange()
	h := &Header{
		Codec:      CodecLogLorenzo,
		Precision:  f.Precision,
		Mode:       ModePWRel,
		Name:       f.Name,
		Dims:       f.Dims,
		EbAbs:      ebRel, // the pointwise relative bound, by convention
		TargetPSNR: math.NaN(),
		ValueRange: vr,
		Capacity:   innerStats.Capacity,
		Chunks: []codec.ChunkInfo{{
			Rows: f.Dims[0],
			Len:  len(payload),
			MSE:  math.NaN(), // log-domain streams do not track data-domain MSE
			Min:  math.NaN(),
			Max:  math.NaN(),
		}},
	}
	if h.Capacity == 0 {
		h.Capacity = 4 // constant inner stream; keep header valid
	}
	out := append(h.Marshal(), payload...)

	st := &Stats{
		OriginalBytes:   f.SizeBytes(),
		CompressedBytes: len(out),
		NPoints:         n,
		Unpredictable:   innerStats.Unpredictable,
		Chunks:          innerStats.Chunks,
		Capacity:        innerStats.Capacity,
		ValueRange:      vr,
		// The inner MSE is measured in the log domain; the data-domain
		// MSE is not tracked for this codec.
		MSE: math.NaN(),
	}
	st.Ratio = float64(st.OriginalBytes) / float64(len(out))
	st.BitRate = 8 * float64(len(out)) / float64(n)
	return out, st, nil
}

// DecompressPWRel reconstructs a field from a CodecLogLorenzo stream.
// Decompress routes here automatically; callers normally use it instead.
func DecompressPWRel(data []byte) (*field.Field, *Header, error) {
	return DecompressPWRelScratch(data, nil)
}

// DecompressPWRelScratch is DecompressPWRel drawing the mask inflate
// reader and the inner stream's decode buffers from sc, so session
// callers reuse the ~50 KB flate window across streams. A nil sc
// allocates fresh.
func DecompressPWRelScratch(data []byte, sc *codec.Scratch) (*field.Field, *Header, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	if h.Codec != CodecLogLorenzo {
		return nil, nil, fmt.Errorf("sz: stream has codec %v, not %v", h.Codec, CodecLogLorenzo)
	}
	if len(h.Chunks) != 1 {
		return nil, nil, fmt.Errorf("sz: pwrel stream should have one payload chunk")
	}
	payload, err := codec.ChunkPayload(data, h, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("sz: pwrel payload: %w", err)
	}

	_, payload, err = readFloat64(payload) // ebRel (informational)
	if err != nil {
		return nil, nil, err
	}
	maskLen, payload, err := readUvarint(payload)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(payload)) < maskLen {
		return nil, nil, fmt.Errorf("sz: pwrel masks truncated")
	}
	fr := sc.FlateReader(bytes.NewReader(payload[:maskLen]))
	masks, err := io.ReadAll(fr)
	if err != nil {
		fr.Close()
		sc.PutFlateReader(fr)
		return nil, nil, fmt.Errorf("sz: pwrel masks: %w", err)
	}
	if err := fr.Close(); err != nil {
		sc.PutFlateReader(fr)
		return nil, nil, err
	}
	sc.PutFlateReader(fr)
	n := h.NPoints()
	maskBytes := (n + 7) / 8
	if len(masks) != 2*maskBytes {
		return nil, nil, fmt.Errorf("sz: pwrel masks have %d bytes, want %d", len(masks), 2*maskBytes)
	}
	signMask := masks[:maskBytes]
	zeroMask := masks[maskBytes:]

	inner := payload[maskLen:]
	logField, _, err := DecompressScratch(inner, sc)
	if err != nil {
		return nil, nil, fmt.Errorf("sz: pwrel inner stream: %w", err)
	}
	if logField.Len() != n {
		return nil, nil, fmt.Errorf("sz: pwrel inner field has %d points, want %d", logField.Len(), n)
	}

	out := field.New(h.Name, h.Precision, h.Dims...)
	for i := 0; i < n; i++ {
		if zeroMask[i/8]&(1<<(7-i%8)) != 0 {
			if signMask[i/8]&(1<<(7-i%8)) != 0 {
				out.Data[i] = math.Copysign(0, -1)
			} else {
				out.Data[i] = 0
			}
			continue
		}
		v := math.Exp(logField.Data[i])
		if signMask[i/8]&(1<<(7-i%8)) != 0 {
			v = -v
		}
		out.Data[i] = v
	}
	return out, h, nil
}
