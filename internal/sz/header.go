package sz

import (
	"context"
	"fmt"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/quantizer"
)

// The stream container (header layout, codec identifiers, parsing) lives
// in internal/codec so every registered pipeline shares it; this file
// keeps the historical sz names as aliases for the shared types.

// Magic identifies a fixed-PSNR compressed stream.
var Magic = codec.Magic

// Version is the current stream format version.
const Version = codec.Version

// Codec identifies the compression pipeline used for the payload.
type Codec = codec.ID

// Codec values.
const (
	// CodecLorenzo is the SZ pipeline: Lorenzo prediction +
	// error-controlled uniform quantization + Huffman + DEFLATE.
	CodecLorenzo = codec.IDLorenzo
	// CodecConstant stores a constant field as a single value.
	CodecConstant = codec.IDConstant
	// CodecLogLorenzo is the pointwise-relative pipeline: CodecLorenzo
	// applied in the log domain with a sign/zero side channel.
	CodecLogLorenzo = codec.IDLogLorenzo
	// CodecOTC is the orthogonal-transform pipeline implemented by
	// internal/otc. It shares this container format.
	CodecOTC = codec.IDOTC
)

// Mode records how the error bound embedded in the stream was derived.
type Mode = codec.Mode

// Mode values.
const (
	ModeAbs   = codec.ModeAbs
	ModeRel   = codec.ModeRel
	ModePSNR  = codec.ModePSNR
	ModePWRel = codec.ModePWRel
)

// Header describes a compressed stream.
type Header = codec.Header

// ParseHeader decodes the header of a compressed stream without touching
// the chunk payloads.
func ParseHeader(data []byte) (*Header, error) { return codec.ParseHeader(data) }

func appendFloat64(b []byte, v float64) []byte { return codec.AppendFloat64(b, v) }

func readFloat64(b []byte) (float64, []byte, error) { return codec.ReadFloat64(b) }

func readUvarint(b []byte) (uint64, []byte, error) { return codec.ReadUvarint(b) }

// szCodec publishes this pipeline in the codec registry: it owns the
// Lorenzo, constant, and log-Lorenzo stream IDs and measures its exact
// MSE during compression (Theorem 1).
type szCodec struct{}

func (szCodec) Name() string { return "sz" }

func (szCodec) IDs() []codec.ID {
	return []codec.ID{codec.IDLorenzo, codec.IDConstant, codec.IDLogLorenzo}
}

func (szCodec) MeasuresMSE() bool { return true }

func (szCodec) Compress(ctx context.Context, f *field.Field, opt codec.Options, sc *codec.Scratch) ([]byte, *codec.Stats, error) {
	return CompressCtx(ctx, f, opt, sc)
}

func (szCodec) Decompress(data []byte) (*field.Field, *codec.Header, error) {
	return Decompress(data)
}

// DecompressScratch implements codec.ScratchDecompressor.
func (szCodec) DecompressScratch(data []byte, sc *codec.Scratch) (*field.Field, *codec.Header, error) {
	return DecompressScratch(data, sc)
}

// CompressChunk implements codec.ChunkCodec: one row slab through the
// full Lorenzo pipeline. ctx is checked once up front; a chunk is the
// cancellation granularity of this pipeline.
func (szCodec) CompressChunk(ctx context.Context, data []float64, dims []int, prec field.Precision, opt codec.Options, sc *codec.Scratch) ([]byte, codec.ChunkStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, codec.ChunkStats{}, err
	}
	copt := opt
	if copt.Capacity == 0 {
		copt.Capacity = quantizer.DefaultCapacity
	}
	if !(copt.ErrorBound > 0) || math.IsInf(copt.ErrorBound, 0) || math.IsNaN(copt.ErrorBound) {
		return nil, codec.ChunkStats{}, fmt.Errorf("sz: error bound must be positive and finite, got %g", copt.ErrorBound)
	}
	return compressChunk(data, dims, prec, copt, sc)
}

// CompressPWRel implements codec.PWRelCodec: pointwise-relative
// compression in the log domain (see pwrel.go). The public API routes
// ModePWRel to any registered codec with this capability.
func (szCodec) CompressPWRel(ctx context.Context, f *field.Field, pwRel float64, opt codec.Options, sc *codec.Scratch) ([]byte, *codec.Stats, error) {
	return CompressPWRelCtx(ctx, f, pwRel, opt, sc)
}

// DecompressChunk implements codec.ChunkCodec for Lorenzo streams.
// Constant and log-domain (pointwise-relative) streams are only decoded
// whole and report ErrNotChunked.
func (szCodec) DecompressChunk(payload []byte, h *codec.Header, ci int, dst []float64, sc *codec.Scratch) error {
	if h.Codec != codec.IDLorenzo {
		return codec.ErrNotChunked
	}
	if len(dst) != h.ChunkPoints(ci) {
		return fmt.Errorf("sz: chunk %d dst has %d points, want %d", ci, len(dst), h.ChunkPoints(ci))
	}
	return decompressChunk(payload, h, ci, dst, sc)
}

func init() { codec.Register(szCodec{}) }
