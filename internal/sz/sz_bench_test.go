package sz

import (
	"math"
	"math/rand"
	"testing"

	"fixedpsnr/internal/field"
	"fixedpsnr/internal/quantizer"
)

func benchField3D(b *testing.B) *field.Field {
	b.Helper()
	f := field.New("bench3d", field.Float64, 32, 64, 64)
	rng := rand.New(rand.NewSource(1))
	idx := 0
	for i := 0; i < 32; i++ {
		for j := 0; j < 64; j++ {
			for k := 0; k < 64; k++ {
				f.Data[idx] = math.Sin(float64(i)/4)*math.Cos(float64(j)/9)*math.Sin(float64(k)/7) +
					0.02*rng.NormFloat64()
				idx++
			}
		}
	}
	return f
}

func BenchmarkCompressCore3D(b *testing.B) {
	f := benchField3D(b)
	q, err := quantizer.New(1e-4, quantizer.DefaultCapacity)
	if err != nil {
		b.Fatal(err)
	}
	codes := make([]int32, f.Len())
	recon := make([]float64, f.Len())
	b.SetBytes(int64(f.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compressCore(f.Data, f.Dims, q, codes, recon)
	}
}

func BenchmarkDecompressCore3D(b *testing.B) {
	f := benchField3D(b)
	q, _ := quantizer.New(1e-4, quantizer.DefaultCapacity)
	codes := make([]int32, f.Len())
	recon := make([]float64, f.Len())
	literals, _ := compressCore(f.Data, f.Dims, q, codes, recon)
	out := make([]float64, f.Len())
	b.SetBytes(int64(f.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := decompressCore(out, codes, literals, f.Dims, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullCompress3D(b *testing.B) {
	f := benchField3D(b)
	b.SetBytes(int64(f.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress(f, Options{ErrorBound: 1e-4, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullDecompress3D(b *testing.B) {
	f := benchField3D(b)
	blob, _, err := Compress(f, Options{ErrorBound: 1e-4, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateCapacity(b *testing.B) {
	f := benchField3D(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		estimateCapacity(f.Data, f.Dims, 1e-4)
	}
}

func BenchmarkCompressPWRel(b *testing.B) {
	f := benchField3D(b)
	for i := range f.Data {
		f.Data[i] = math.Exp(f.Data[i])
	}
	b.SetBytes(int64(f.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CompressPWRel(f, 1e-3, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
