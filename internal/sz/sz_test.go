package sz

import (
	"math"
	"math/rand"
	"testing"

	"fixedpsnr/internal/field"
	"fixedpsnr/internal/quantizer"
	"fixedpsnr/internal/stats"
)

// randomField builds a field with smooth structure plus noise so that
// prediction is good but not perfect.
func randomField(t *testing.T, name string, noise float64, dims ...int) *field.Field {
	t.Helper()
	f := field.New(name, field.Float64, dims...)
	rng := rand.New(rand.NewSource(int64(len(name)) + int64(f.Len())))
	switch len(dims) {
	case 1:
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i)/9) + noise*rng.NormFloat64()
		}
	case 2:
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				f.Set2(i, j, math.Sin(float64(i)/7)*math.Cos(float64(j)/11)+noise*rng.NormFloat64())
			}
		}
	case 3:
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				for k := 0; k < dims[2]; k++ {
					f.Set3(i, j, k, math.Sin(float64(i)/5)*math.Cos(float64(j)/7)*math.Sin(float64(k)/3)+noise*rng.NormFloat64())
				}
			}
		}
	}
	return f
}

func roundTrip(t *testing.T, f *field.Field, opt Options) (*field.Field, *Stats) {
	t.Helper()
	blob, st, err := Compress(f, opt)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	g, h, err := Decompress(blob)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if h.Name != f.Name {
		t.Fatalf("name %q != %q", h.Name, f.Name)
	}
	if !f.SameShape(g) {
		t.Fatalf("shape mismatch: %v vs %v", f.Dims, g.Dims)
	}
	return g, st
}

func assertErrorBound(t *testing.T, orig, recon *field.Field, eb float64) {
	t.Helper()
	for i := range orig.Data {
		if d := math.Abs(orig.Data[i] - recon.Data[i]); d > eb*(1+1e-12) {
			t.Fatalf("error bound violated at %d: |%g − %g| = %g > %g",
				i, orig.Data[i], recon.Data[i], d, eb)
		}
	}
}

func TestRoundTrip1D(t *testing.T) {
	f := randomField(t, "r1", 0.05, 1000)
	g, _ := roundTrip(t, f, Options{ErrorBound: 1e-3, Workers: 1})
	assertErrorBound(t, f, g, 1e-3)
}

func TestRoundTrip2D(t *testing.T) {
	f := randomField(t, "r2", 0.05, 50, 60)
	g, _ := roundTrip(t, f, Options{ErrorBound: 1e-3, Workers: 1})
	assertErrorBound(t, f, g, 1e-3)
}

func TestRoundTrip3D(t *testing.T) {
	f := randomField(t, "r3", 0.05, 20, 25, 30)
	g, _ := roundTrip(t, f, Options{ErrorBound: 1e-3, Workers: 1})
	assertErrorBound(t, f, g, 1e-3)
}

func TestRoundTripParallelChunksMatchBound(t *testing.T) {
	f := randomField(t, "rp", 0.05, 64, 40)
	for _, workers := range []int{1, 2, 4} {
		g, st := roundTrip(t, f, Options{ErrorBound: 5e-4, Workers: workers})
		assertErrorBound(t, f, g, 5e-4)
		if workers > 1 && st.Chunks < 2 {
			t.Fatalf("workers=%d produced %d chunks", workers, st.Chunks)
		}
	}
}

func TestExplicitChunkRows(t *testing.T) {
	f := randomField(t, "rc", 0.05, 37, 23)
	g, st := roundTrip(t, f, Options{ErrorBound: 1e-3, ChunkRows: 10, Workers: 2})
	assertErrorBound(t, f, g, 1e-3)
	if st.Chunks != 4 { // ceil(37/10)
		t.Fatalf("chunks = %d, want 4", st.Chunks)
	}
}

func TestTightBoundManyUnpredictable(t *testing.T) {
	// Pure noise with a tiny bound and tiny capacity forces literals.
	f := field.New("noise", field.Float64, 500)
	rng := rand.New(rand.NewSource(3))
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64() * 100
	}
	g, st := roundTrip(t, f, Options{ErrorBound: 1e-9, Capacity: 4, Workers: 1})
	assertErrorBound(t, f, g, 1e-9)
	if st.Unpredictable == 0 {
		t.Fatal("expected unpredictable literals with capacity 4")
	}
}

func TestLiteralsAreExact(t *testing.T) {
	f := field.New("spiky", field.Float64, 100)
	for i := range f.Data {
		f.Data[i] = float64(i % 2 * 1000000) // alternating spikes
	}
	g, st := roundTrip(t, f, Options{ErrorBound: 1e-6, Capacity: 4, Workers: 1})
	if st.Unpredictable == 0 {
		t.Fatal("expected literals")
	}
	assertErrorBound(t, f, g, 1e-6)
}

func TestFloat32LiteralsExactForF32Data(t *testing.T) {
	f := field.New("f32", field.Float32, 200)
	rng := rand.New(rand.NewSource(9))
	for i := range f.Data {
		f.Data[i] = float64(float32(rng.NormFloat64() * 1e5))
	}
	g, _ := roundTrip(t, f, Options{ErrorBound: 1e-4, Capacity: 4, Workers: 1})
	assertErrorBound(t, f, g, 1e-4)
}

func TestConstantField(t *testing.T) {
	f := field.New("const", field.Float32, 10, 10)
	for i := range f.Data {
		f.Data[i] = 3.25
	}
	g, st := roundTrip(t, f, Options{Workers: 1}) // no bound needed
	for i := range g.Data {
		if g.Data[i] != 3.25 {
			t.Fatalf("constant reconstruction broke at %d: %g", i, g.Data[i])
		}
	}
	if st.Ratio < 10 {
		t.Fatalf("constant field ratio = %g, expected large", st.Ratio)
	}
}

func TestInvalidErrorBound(t *testing.T) {
	f := randomField(t, "bad", 0.1, 32)
	for _, eb := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, _, err := Compress(f, Options{ErrorBound: eb}); err == nil {
			t.Fatalf("expected error for bound %g", eb)
		}
	}
}

func TestInvalidField(t *testing.T) {
	f := &field.Field{Name: "broken", Dims: []int{2, 2}, Data: make([]float64, 3)}
	if _, _, err := Compress(f, Options{ErrorBound: 1e-3}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, _, err := Decompress([]byte("not a stream")); err == nil {
		t.Fatal("expected error for garbage input")
	}
	if _, _, err := Decompress(nil); err == nil {
		t.Fatal("expected error for nil input")
	}
}

func TestDecompressRejectsTruncatedPayload(t *testing.T) {
	f := randomField(t, "trunc", 0.05, 40, 40)
	blob, _, err := Compress(f, Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(blob[:len(blob)-10]); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := randomField(t, "hdr-field", 0.05, 30, 30)
	blob, _, err := Compress(f, Options{
		ErrorBound: 1e-3, Workers: 1, Mode: ModePSNR, TargetPSNR: 84.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(blob)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "hdr-field" || h.Mode != ModePSNR || h.TargetPSNR != 84.5 {
		t.Fatalf("header fields lost: %+v", h)
	}
	if h.EbAbs != 1e-3 || h.Codec != CodecLorenzo {
		t.Fatalf("header bound/codec lost: %+v", h)
	}
	if h.NPoints() != 900 {
		t.Fatalf("NPoints = %d", h.NPoints())
	}
}

// TestEquationOneIdentity verifies the paper's Eq. 1 exactly:
// X − X̃ == Xpe − X̃pe, where prediction errors are computed against the
// *reconstructed* neighbor values during both phases.
func TestEquationOneIdentity(t *testing.T) {
	f := randomField(t, "eq1", 0.08, 40, 30)
	eb := 2e-3
	q, err := quantizer.New(eb, 1024)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]int32, f.Len())
	work := make([]float64, f.Len())
	literals, _ := compressCore(f.Data, f.Dims, q, codes, work)

	recon := make([]float64, f.Len())
	if err := decompressCore(recon, codes, literals, f.Dims, q); err != nil {
		t.Fatal(err)
	}

	// Recompute predictions from the reconstructed array (identical in
	// both phases), then the two error vectors.
	cols := f.Dims[1]
	li := 0
	for idx := range f.Data {
		i, j := idx/cols, idx%cols
		var a, b, d float64
		if j > 0 {
			a = recon[idx-1]
		}
		if i > 0 {
			b = recon[idx-cols]
			if j > 0 {
				d = recon[idx-cols-1]
			}
		}
		pred := a + b - d
		xpe := f.Data[idx] - pred // compression-phase prediction error
		var xpeRecon float64      // what the decompressor reconstructs
		if codes[idx] == 0 {
			xpeRecon = literals[li] - pred
			li++
		} else {
			xpeRecon = q.Reconstruct(int(codes[idx]))
		}
		lhs := f.Data[idx] - recon[idx]
		rhs := xpe - xpeRecon
		if math.Abs(lhs-rhs) > 1e-15*(1+math.Abs(lhs)) {
			t.Fatalf("Eq. 1 violated at %d: lhs=%g rhs=%g", idx, lhs, rhs)
		}
	}
}

// The quantization-stage MSE must equal the end-to-end MSE (Theorem 1).
func TestTheoremOneMSEEquality(t *testing.T) {
	f := randomField(t, "thm1", 0.08, 35, 28)
	eb := 1e-3
	q, _ := quantizer.New(eb, 4096)
	codes := make([]int32, f.Len())
	work := make([]float64, f.Len())
	literals, _ := compressCore(f.Data, f.Dims, q, codes, work)
	recon := make([]float64, f.Len())
	if err := decompressCore(recon, codes, literals, f.Dims, q); err != nil {
		t.Fatal(err)
	}

	// End-to-end MSE.
	var e2e float64
	for i := range f.Data {
		d := f.Data[i] - recon[i]
		e2e += d * d
	}
	e2e /= float64(f.Len())

	// Quantization-stage MSE: (xpe − x̃pe)² accumulated during the pass.
	cols := f.Dims[1]
	li := 0
	var qmse float64
	for idx := range f.Data {
		i, j := idx/cols, idx%cols
		var a, b, d float64
		if j > 0 {
			a = recon[idx-1]
		}
		if i > 0 {
			b = recon[idx-cols]
			if j > 0 {
				d = recon[idx-cols-1]
			}
		}
		pred := a + b - d
		xpe := f.Data[idx] - pred
		var xpeR float64
		if codes[idx] == 0 {
			xpeR = literals[li] - pred
			li++
		} else {
			xpeR = q.Reconstruct(int(codes[idx]))
		}
		qmse += (xpe - xpeR) * (xpe - xpeR)
	}
	qmse /= float64(f.Len())

	if math.Abs(e2e-qmse) > 1e-12*(1+e2e) {
		t.Fatalf("Theorem 1 violated: end-to-end MSE %g vs quantization MSE %g", e2e, qmse)
	}
}

func TestAutoCapacity(t *testing.T) {
	f := randomField(t, "auto", 0.01, 60, 60)
	blob, st, err := Compress(f, Options{ErrorBound: 1e-3, AutoCapacity: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Capacity > quantizer.DefaultCapacity {
		t.Fatalf("auto capacity %d exceeds default", st.Capacity)
	}
	g, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertErrorBound(t, f, g, 1e-3)
}

func TestCompressionRatioReported(t *testing.T) {
	f := randomField(t, "ratio", 0.02, 100, 100)
	_, st, err := Compress(f, Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio <= 1 {
		t.Fatalf("ratio = %g, expected > 1 for smooth data", st.Ratio)
	}
	if st.BitRate <= 0 || st.BitRate >= 64 {
		t.Fatalf("bit rate = %g", st.BitRate)
	}
	if st.OriginalBytes != f.SizeBytes() || st.NPoints != f.Len() {
		t.Fatalf("accounting wrong: %+v", st)
	}
}

func TestSmallerBoundLowerRatio(t *testing.T) {
	f := randomField(t, "mono", 0.02, 80, 80)
	_, loose, err := Compress(f, Options{ErrorBound: 1e-2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, tight, err := Compress(f, Options{ErrorBound: 1e-6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Ratio <= tight.Ratio {
		t.Fatalf("loose ratio %g should exceed tight ratio %g", loose.Ratio, tight.Ratio)
	}
}

func TestPSNRImprovesWithTighterBound(t *testing.T) {
	f := randomField(t, "psnrmono", 0.02, 60, 60)
	var prev float64 = -1
	for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
		g, _ := roundTrip(t, f, Options{ErrorBound: eb, Workers: 1})
		d := stats.Compare(f.Data, g.Data)
		if d.PSNR <= prev {
			t.Fatalf("PSNR not increasing: %g after %g at eb=%g", d.PSNR, prev, eb)
		}
		prev = d.PSNR
	}
}

func TestNaNValuesSurviveAsLiterals(t *testing.T) {
	f := field.New("nan", field.Float64, 50)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	f.Data[20] = math.NaN()
	g, _ := roundTrip(t, f, Options{ErrorBound: 1e-3, Workers: 1})
	if !math.IsNaN(g.Data[20]) {
		t.Fatalf("NaN not preserved: %g", g.Data[20])
	}
	// Neighbors of the NaN still within bound (prediction after a NaN
	// neighbor involves NaN arithmetic → those points become literals too).
	for i := range f.Data {
		if i == 20 {
			continue
		}
		if d := math.Abs(f.Data[i] - g.Data[i]); d > 1e-3 {
			t.Fatalf("bound violated at %d: %g", i, d)
		}
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeAbs: "abs", ModeRel: "rel", ModePSNR: "psnr", ModePWRel: "pwrel", Mode(9): "mode(9)",
	} {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
	for c, want := range map[Codec]string{
		CodecLorenzo: "sz-lorenzo", CodecConstant: "constant",
		CodecLogLorenzo: "sz-log-lorenzo", CodecOTC: "otc-dct", Codec(9): "codec(9)",
	} {
		if c.String() != want {
			t.Fatalf("Codec.String() = %q, want %q", c.String(), want)
		}
	}
}

func TestSingleRowField(t *testing.T) {
	f := randomField(t, "onerow", 0.05, 1, 100)
	g, _ := roundTrip(t, f, Options{ErrorBound: 1e-3, Workers: 4})
	assertErrorBound(t, f, g, 1e-3)
}

func TestTinyField(t *testing.T) {
	f := field.New("tiny", field.Float64, 1)
	f.Data[0] = 42
	g, _ := roundTrip(t, f, Options{ErrorBound: 1e-3, Workers: 1})
	if g.Data[0] != 42 {
		t.Fatalf("tiny field value = %g", g.Data[0])
	}
}
