package sz

import (
	"math/rand"
	"testing"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/datagen"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/stats"
)

// TestDecompressNeverPanicsOnMutation flips bytes throughout a valid
// stream and requires Decompress to fail gracefully (error) or succeed —
// never panic, never allocate unboundedly. Mutants whose header declares
// an enormous field are skipped by the same header check a cautious
// caller would perform.
func TestDecompressNeverPanicsOnMutation(t *testing.T) {
	f := randomField(t, "mutate", 0.05, 40, 40)
	blob, _, err := Compress(f, Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	const maxPoints = 1 << 24

	tryDecompress := func(mut []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decompress panicked on mutated stream: %v", r)
			}
		}()
		h, err := ParseHeader(mut)
		if err != nil {
			return
		}
		if h.NPoints() > maxPoints {
			return
		}
		_, _, _ = Decompress(mut)
	}

	// Every header byte, plus random payload positions.
	for pos := 0; pos < len(blob); pos++ {
		if pos > 64 && pos%7 != 0 {
			continue // sample the payload, exhaust the header
		}
		for trial := 0; trial < 3; trial++ {
			mut := append([]byte(nil), blob...)
			mut[pos] ^= byte(1 << rng.Intn(8))
			tryDecompress(mut)
		}
	}
}

// TestDecompressNeverPanicsOnTruncation cuts the stream at every sampled
// length.
func TestDecompressNeverPanicsOnTruncation(t *testing.T) {
	f := randomField(t, "cut", 0.05, 30, 30)
	blob, _, err := Compress(f, Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut += 3 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at cut %d: %v", cut, r)
				}
			}()
			_, _, _ = Decompress(blob[:cut])
		}()
	}
}

func TestParseHeaderRejectsOverflowDims(t *testing.T) {
	// Construct a header whose dims multiply past the overflow guard.
	h := &Header{
		Codec:     CodecLorenzo,
		Precision: field.Float32,
		Name:      "huge",
		Dims:      []int{1 << 40, 1 << 40, 1 << 40},
		EbAbs:     1,
		Capacity:  65536,
		Chunks:    []codec.ChunkInfo{{Rows: 1 << 40, Len: 1}},
	}
	blob := h.Marshal()
	if _, err := ParseHeader(blob); err == nil {
		t.Fatal("expected overflow rejection")
	}
}

// TestRoundTripOnSyntheticDatasetFields runs the bound property over real
// generator output — every field kind of each registry at small scale.
func TestRoundTripOnSyntheticDatasetFields(t *testing.T) {
	for _, ds := range []*datagen.Dataset{
		datagen.NYX([]int{12, 12, 12}),
		datagen.Hurricane([]int{6, 24, 24}),
	} {
		for i := 0; i < ds.NumFields(); i++ {
			f, err := ds.Field(i, 1)
			if err != nil {
				t.Fatal(err)
			}
			_, _, vr := f.ValueRange()
			if vr == 0 {
				continue
			}
			eb := 1e-4 * vr
			blob, _, err := Compress(f, Options{ErrorBound: eb, Workers: 2})
			if err != nil {
				t.Fatalf("%s/%s: %v", ds.Name, f.Name, err)
			}
			g, _, err := Decompress(blob)
			if err != nil {
				t.Fatalf("%s/%s: %v", ds.Name, f.Name, err)
			}
			if d := stats.Compare(f.Data, g.Data); d.MaxErr > eb*(1+1e-12) {
				t.Fatalf("%s/%s: max error %g > %g", ds.Name, f.Name, d.MaxErr, eb)
			}
		}
	}
}

// TestStreamDeterministic: the same field and options must produce a
// byte-identical stream (required for reproducible archives).
func TestStreamDeterministic(t *testing.T) {
	f := randomField(t, "det", 0.05, 40, 50)
	a, _, err := Compress(f, Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Compress(f, Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams differ at byte %d", i)
		}
	}
}

// Chunked and unchunked compression must reconstruct to the same bound;
// the reconstructions themselves may differ (predictor restarts), but both
// obey the bound and the stream sizes stay within a few percent.
func TestChunkingCostIsBounded(t *testing.T) {
	f := randomField(t, "chunkcost", 0.02, 128, 64)
	one, _, err := Compress(f, Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, _, err := Compress(f, Options{ErrorBound: 1e-3, ChunkRows: 32, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(four)) > 1.25*float64(len(one)) {
		t.Fatalf("chunking overhead too high: %d vs %d bytes", len(four), len(one))
	}
}
