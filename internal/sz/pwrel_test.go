package sz

import (
	"math"
	"math/rand"
	"testing"

	"fixedpsnr/internal/field"
)

func pwrelField(dims ...int) *field.Field {
	f := field.New("pwrel", field.Float64, dims...)
	rng := rand.New(rand.NewSource(21))
	for i := range f.Data {
		// Wide dynamic range with both signs and exact zeros.
		mag := math.Exp(rng.NormFloat64() * 4)
		switch rng.Intn(10) {
		case 0:
			f.Data[i] = 0
		case 1, 2, 3:
			f.Data[i] = -mag
		default:
			f.Data[i] = mag
		}
	}
	return f
}

func assertPWRelBound(t *testing.T, orig, recon *field.Field, ebRel float64) {
	t.Helper()
	for i := range orig.Data {
		x, y := orig.Data[i], recon.Data[i]
		if x == 0 {
			if y != 0 {
				t.Fatalf("zero at %d reconstructed as %g", i, y)
			}
			continue
		}
		rel := math.Abs(y-x) / math.Abs(x)
		if rel > ebRel*(1+1e-9) {
			t.Fatalf("pointwise relative bound violated at %d: |%g−%g|/|%g| = %g > %g",
				i, y, x, x, rel, ebRel)
		}
		if math.Signbit(x) != math.Signbit(y) {
			t.Fatalf("sign flipped at %d: %g → %g", i, x, y)
		}
	}
}

func TestPWRelRoundTrip(t *testing.T) {
	f := pwrelField(60, 50)
	for _, ebRel := range []float64{1e-1, 1e-2, 1e-3, 1e-5} {
		blob, st, err := CompressPWRel(f, ebRel, Options{Workers: 1})
		if err != nil {
			t.Fatalf("ebRel=%g: %v", ebRel, err)
		}
		g, h, err := Decompress(blob) // routed via codec dispatch
		if err != nil {
			t.Fatalf("ebRel=%g: %v", ebRel, err)
		}
		if h.Codec != CodecLogLorenzo || h.Mode != ModePWRel {
			t.Fatalf("header: %+v", h)
		}
		assertPWRelBound(t, f, g, ebRel)
		if st.Ratio <= 0 {
			t.Fatalf("stats: %+v", st)
		}
	}
}

func TestPWRel1D3D(t *testing.T) {
	for _, dims := range [][]int{{500}, {10, 15, 20}} {
		f := pwrelField(dims...)
		blob, _, err := CompressPWRel(f, 1e-3, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := DecompressPWRel(blob)
		if err != nil {
			t.Fatal(err)
		}
		assertPWRelBound(t, f, g, 1e-3)
	}
}

func TestPWRelValidatesBound(t *testing.T) {
	f := pwrelField(32)
	for _, eb := range []float64{0, -0.1, 1, 2, math.NaN()} {
		if _, _, err := CompressPWRel(f, eb, Options{}); err == nil {
			t.Fatalf("expected error for ebRel=%g", eb)
		}
	}
}

func TestPWRelAllZeros(t *testing.T) {
	f := field.New("zeros", field.Float64, 40)
	blob, _, err := CompressPWRel(f, 1e-3, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data {
		if v != 0 {
			t.Fatalf("zero field value %d = %g", i, v)
		}
	}
}

func TestPWRelNegativeZeroPreserved(t *testing.T) {
	f := field.New("negz", field.Float64, 8)
	f.Data[3] = math.Copysign(0, -1)
	f.Data[5] = 1.5
	blob, _, err := CompressPWRel(f, 1e-2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !math.Signbit(g.Data[3]) || g.Data[3] != 0 {
		t.Fatalf("negative zero lost: %g", g.Data[3])
	}
	if g.Data[5] == 0 {
		t.Fatal("non-zero value zeroed")
	}
}

func TestPWRelTinyAndHugeMagnitudes(t *testing.T) {
	f := field.New("range", field.Float64, 6)
	copy(f.Data, []float64{1e-300, -1e-300, 1e300, -1e300, 1e-10, 1e10})
	blob, _, err := CompressPWRel(f, 1e-4, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertPWRelBound(t, f, g, 1e-4)
}

func TestPWRelDecompressRejectsWrongCodec(t *testing.T) {
	f := pwrelField(32)
	blob, _, err := Compress(f, Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressPWRel(blob); err == nil {
		t.Fatal("expected codec mismatch error")
	}
}

func TestPWRelTruncatedStream(t *testing.T) {
	f := pwrelField(64)
	blob, _, err := CompressPWRel(f, 1e-3, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(blob[:len(blob)-8]); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}
