// Package sz implements an SZ-style error-bounded lossy compressor for 1-,
// 2-, and 3-dimensional floating-point fields, modeled on SZ 1.4 (Tao et
// al., IPDPS 2017; Di & Cappello, IPDPS 2016):
//
//  1. predict every point with the Lorenzo predictor from its preceding,
//     already-reconstructed neighbors;
//  2. quantize the prediction error with error-controlled uniform
//     quantization (bin width δ = 2·ebabs, midpoint reconstruction);
//  3. entropy-code the quantization codes with a custom canonical Huffman
//     coder; and
//  4. squeeze the result with DEFLATE (the algorithm inside GZIP).
//
// Points whose prediction error falls outside the quantization interval
// range are stored losslessly ("unpredictable" literals), so the
// pointwise absolute error is guaranteed ≤ ebabs for every point.
//
// The compressor optionally splits the field into independent slabs along
// the slowest dimension and compresses them concurrently; each slab
// restarts the predictor, so the error bound is unaffected.
//
// Because prediction during decompression sees exactly the reconstructed
// values the compressor saw, the pipeline is l2-norm-preserving in the
// sense of the paper's Eq. 1: X − X̃ equals the quantization-stage error
// on the prediction residuals. This is what makes the closed-form PSNR
// control of internal/core exact.
package sz

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/huffman"
	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/quantizer"
)

// Options is the unified codec configuration (see codec.Options). The SZ
// pipeline reads ErrorBound, Capacity, AutoCapacity, Workers, ChunkRows,
// ChunkPoints, Level, and the header annotations; BlockSize and
// Transform are ignored.
type Options = codec.Options

// Stats is the unified compression outcome report (see codec.Stats).
type Stats = codec.Stats

// Compress compresses the field under the given absolute error bound and
// returns the encoded stream plus statistics.
func Compress(f *field.Field, opt Options) ([]byte, *Stats, error) {
	return CompressCtx(context.Background(), f, opt, nil)
}

// CompressCtx is Compress with cancellation and buffer reuse: workers
// check ctx between chunks (a cancelled context aborts within one chunk
// of work per worker and surfaces ctx.Err()), and the large per-chunk
// transients — quantization codes, the reconstruction buffer, the
// pre-DEFLATE staging bytes, and the DEFLATE writer — come from scratch
// when it is non-nil, so a session reusing one scratch across calls stops
// paying those allocations on the hot path.
//
// The field is tiled into independent chunks along the slowest dimension
// (codec.ChunkSpans); each chunk restarts the predictor, compresses
// through CompressChunk, and lands in the container's chunk table with
// its exact MSE and value range, so streams are random-access at chunk
// granularity and the global fixed-PSNR accounting can aggregate
// per-chunk distortion.
func CompressCtx(ctx context.Context, f *field.Field, opt Options, sc *codec.Scratch) ([]byte, *Stats, error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	_, _, vr := f.ValueRange()
	if opt.ValueRange == 0 {
		opt.ValueRange = vr
	}

	if vr == 0 {
		return compressConstant(f, opt)
	}
	if !(opt.ErrorBound > 0) || math.IsInf(opt.ErrorBound, 0) || math.IsNaN(opt.ErrorBound) {
		return nil, nil, fmt.Errorf("sz: error bound must be positive and finite, got %g", opt.ErrorBound)
	}

	capacity := opt.Capacity
	if opt.AutoCapacity {
		capacity = estimateCapacity(f.Data, f.Dims, opt.ErrorBound)
	}
	if capacity == 0 {
		capacity = quantizer.DefaultCapacity
	}
	copt := opt
	copt.Capacity = capacity

	spans := codec.ChunkSpans(f.Dims, opt)
	inner := 1
	for _, d := range f.Dims[1:] {
		inner *= d
	}

	payloads := make([][]byte, len(spans))
	chunks := make([]codec.ChunkInfo, len(spans))
	err := parallel.ForEachCtx(ctx, len(spans), opt.Workers, func(c int) error {
		lo, hi := spans[c][0], spans[c][1]
		sub := f.Data[lo*inner : hi*inner]
		subDims := append([]int{hi - lo}, f.Dims[1:]...)
		payload, cst, err := compressChunk(sub, subDims, f.Precision, copt, sc)
		if err != nil {
			return fmt.Errorf("sz: chunk %d: %w", c, err)
		}
		payloads[c] = payload
		chunks[c] = codec.ChunkInfo{
			Rows:          hi - lo,
			Unpredictable: cst.Unpredictable,
			MSE:           cst.MSE,
			Min:           cst.Min,
			Max:           cst.Max,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	h := &Header{
		Codec:      CodecLorenzo,
		Precision:  f.Precision,
		Mode:       opt.Mode,
		Name:       f.Name,
		Dims:       f.Dims,
		EbAbs:      opt.ErrorBound,
		TargetPSNR: opt.TargetPSNR,
		ValueRange: opt.ValueRange,
		Capacity:   capacity,
		Chunks:     chunks,
	}
	if h.TargetPSNR == 0 && opt.Mode != ModePSNR {
		h.TargetPSNR = math.NaN()
	}
	out, err := codec.AssembleStream(h, payloads)
	if err != nil {
		return nil, nil, err
	}
	st := codec.StatsFromChunks(h, len(out), f.SizeBytes())
	st.ValueRange = vr
	return out, st, nil
}

// compressChunk runs the full per-chunk pipeline — Lorenzo prediction,
// quantization, Huffman, DEFLATE — over one row slab and reports the
// chunk's exact statistics. opt.Capacity and opt.ErrorBound must be
// resolved (positive) already.
func compressChunk(data []float64, dims []int, prec field.Precision, opt Options, sc *codec.Scratch) ([]byte, codec.ChunkStats, error) {
	var cst codec.ChunkStats
	q, err := quantizer.New(opt.ErrorBound, opt.Capacity)
	if err != nil {
		return nil, cst, err
	}
	codes := sc.Ints(len(data))
	recon := sc.Floats(len(data))
	literals, sumSq := compressCore(data, dims, q, codes, recon)
	sc.PutFloats(recon)
	payload, err := encodeChunk(codes, literals, prec, opt.FlateLevel(), sc)
	sc.PutInts(codes)
	if err != nil {
		return nil, cst, err
	}
	cst.Unpredictable = len(literals)
	cst.MSE = sumSq / float64(len(data))
	cst.Min, cst.Max = codec.ValueBounds(data)
	return payload, cst, nil
}

// compressConstant encodes a field whose value range is zero.
func compressConstant(f *field.Field, opt Options) ([]byte, *Stats, error) {
	h := &Header{
		Codec:      CodecConstant,
		Precision:  f.Precision,
		Mode:       opt.Mode,
		Name:       f.Name,
		Dims:       f.Dims,
		ConstValue: f.Data[0],
	}
	out := h.Marshal()
	st := &Stats{
		OriginalBytes:   f.SizeBytes(),
		CompressedBytes: len(out),
		Ratio:           float64(f.SizeBytes()) / float64(len(out)),
		BitRate:         8 * float64(len(out)) / float64(f.Len()),
		NPoints:         f.Len(),
		Chunks:          1,
	}
	return out, st, nil
}

// Decompress reconstructs a field from a compressed stream.
func Decompress(data []byte) (*field.Field, *Header, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	if h.Codec == CodecConstant {
		out := field.New(h.Name, h.Precision, h.Dims...)
		for i := range out.Data {
			out.Data[i] = h.ConstValue
		}
		return out, h, nil
	}
	if h.Codec == CodecLogLorenzo {
		return DecompressPWRel(data)
	}
	if h.Codec != CodecLorenzo {
		return nil, nil, fmt.Errorf("sz: cannot decode codec %v here", h.Codec)
	}

	out := field.New(h.Name, h.Precision, h.Dims...)
	inner := h.InnerPoints()
	err = parallel.ForEach(len(h.Chunks), 0, func(c int) error {
		payload, err := codec.ChunkPayload(data, h, c)
		if err != nil {
			return err
		}
		lo := h.Chunks[c].RowStart
		hi := lo + h.Chunks[c].Rows
		return decompressChunk(payload, h, c, out.Data[lo*inner:hi*inner])
	})
	if err != nil {
		return nil, nil, err
	}
	return out, h, nil
}

// decompressChunk reverses compressChunk for chunk c of a parsed Lorenzo
// stream, reconstructing into dst (the chunk's points). Per-chunk bounds
// written by selective recompression take precedence over the header
// bound.
func decompressChunk(payload []byte, h *Header, c int, dst []float64) error {
	q, err := quantizer.New(h.ChunkBound(c), h.Capacity)
	if err != nil {
		return err
	}
	codes, literals, err := decodeChunk(payload, h.Precision)
	if err != nil {
		return fmt.Errorf("sz: chunk %d: %w", c, err)
	}
	if len(codes) != len(dst) {
		return fmt.Errorf("sz: chunk %d has %d codes, want %d", c, len(codes), len(dst))
	}
	return decompressCore(dst, codes, literals, h.ChunkDims(c), q)
}

// compressCore runs prediction + quantization over one slab, filling the
// caller-supplied codes buffer (one code per point; 0 marks a literal)
// and using recon as the reconstructed-value working buffer (both must
// have length len(data); prior contents are ignored and overwritten). It
// returns the literal values in scan order and the exact sum of squared
// reconstruction errors over the slab (non-finite pointwise errors
// excluded).
func compressCore(data []float64, dims []int, q *quantizer.Quantizer, codes []int, recon []float64) (literals []float64, sumSq float64) {
	switch len(dims) {
	case 1:
		compress1D(data, codes, recon, &literals, q)
	case 2:
		compress2D(data, dims, codes, recon, &literals, q)
	case 3:
		compress3D(data, dims, codes, recon, &literals, q)
	default:
		panic("sz: unsupported rank")
	}
	for i, v := range data {
		if e := v - recon[i]; e == e { // skip NaN
			sumSq += e * e
		}
	}
	return literals, sumSq
}

func quantizeStep(v, pred float64, q *quantizer.Quantizer, literals *[]float64) (code int, recon float64) {
	diff := v - pred
	code, ok := q.Quantize(diff)
	if !ok {
		*literals = append(*literals, v)
		return 0, v
	}
	return code, pred + q.Reconstruct(code)
}

func compress1D(data []float64, codes []int, recon []float64, literals *[]float64, q *quantizer.Quantizer) {
	prev := 0.0
	for i, v := range data {
		codes[i], recon[i] = quantizeStep(v, prev, q, literals)
		prev = recon[i]
	}
}

func compress2D(data []float64, dims []int, codes []int, recon []float64, literals *[]float64, q *quantizer.Quantizer) {
	rows, cols := dims[0], dims[1]
	for i := 0; i < rows; i++ {
		base := i * cols
		for j := 0; j < cols; j++ {
			idx := base + j
			var a, b, d float64
			if j > 0 {
				a = recon[idx-1]
			}
			if i > 0 {
				b = recon[idx-cols]
				if j > 0 {
					d = recon[idx-cols-1]
				}
			}
			codes[idx], recon[idx] = quantizeStep(data[idx], a+b-d, q, literals)
		}
	}
}

func compress3D(data []float64, dims []int, codes []int, recon []float64, literals *[]float64, q *quantizer.Quantizer) {
	d0, d1, d2 := dims[0], dims[1], dims[2]
	plane := d1 * d2
	for i := 0; i < d0; i++ {
		for j := 0; j < d1; j++ {
			base := i*plane + j*d2
			for k := 0; k < d2; k++ {
				idx := base + k
				var x100, x010, x001, x110, x101, x011, x111 float64
				if i > 0 {
					x100 = recon[idx-plane]
				}
				if j > 0 {
					x010 = recon[idx-d2]
				}
				if k > 0 {
					x001 = recon[idx-1]
				}
				if i > 0 && j > 0 {
					x110 = recon[idx-plane-d2]
				}
				if i > 0 && k > 0 {
					x101 = recon[idx-plane-1]
				}
				if j > 0 && k > 0 {
					x011 = recon[idx-d2-1]
				}
				if i > 0 && j > 0 && k > 0 {
					x111 = recon[idx-plane-d2-1]
				}
				pred := x100 + x010 + x001 - x110 - x101 - x011 + x111
				codes[idx], recon[idx] = quantizeStep(data[idx], pred, q, literals)
			}
		}
	}
}

// decompressCore reconstructs one slab in place into out.
func decompressCore(out []float64, codes []int, literals []float64, dims []int, q *quantizer.Quantizer) error {
	li := 0
	nextLiteral := func() (float64, error) {
		if li >= len(literals) {
			return 0, fmt.Errorf("sz: literal stream exhausted")
		}
		v := literals[li]
		li++
		return v, nil
	}
	switch len(dims) {
	case 1:
		prev := 0.0
		for i, c := range codes {
			if c == 0 {
				v, err := nextLiteral()
				if err != nil {
					return err
				}
				out[i] = v
			} else {
				out[i] = prev + q.Reconstruct(c)
			}
			prev = out[i]
		}
	case 2:
		rows, cols := dims[0], dims[1]
		for i := 0; i < rows; i++ {
			base := i * cols
			for j := 0; j < cols; j++ {
				idx := base + j
				c := codes[idx]
				if c == 0 {
					v, err := nextLiteral()
					if err != nil {
						return err
					}
					out[idx] = v
					continue
				}
				var a, b, d float64
				if j > 0 {
					a = out[idx-1]
				}
				if i > 0 {
					b = out[idx-cols]
					if j > 0 {
						d = out[idx-cols-1]
					}
				}
				out[idx] = a + b - d + q.Reconstruct(c)
			}
		}
	case 3:
		d0, d1, d2 := dims[0], dims[1], dims[2]
		plane := d1 * d2
		for i := 0; i < d0; i++ {
			for j := 0; j < d1; j++ {
				base := i*plane + j*d2
				for k := 0; k < d2; k++ {
					idx := base + k
					c := codes[idx]
					if c == 0 {
						v, err := nextLiteral()
						if err != nil {
							return err
						}
						out[idx] = v
						continue
					}
					var x100, x010, x001, x110, x101, x011, x111 float64
					if i > 0 {
						x100 = out[idx-plane]
					}
					if j > 0 {
						x010 = out[idx-d2]
					}
					if k > 0 {
						x001 = out[idx-1]
					}
					if i > 0 && j > 0 {
						x110 = out[idx-plane-d2]
					}
					if i > 0 && k > 0 {
						x101 = out[idx-plane-1]
					}
					if j > 0 && k > 0 {
						x011 = out[idx-d2-1]
					}
					if i > 0 && j > 0 && k > 0 {
						x111 = out[idx-plane-d2-1]
					}
					pred := x100 + x010 + x001 - x110 - x101 - x011 + x111
					out[idx] = pred + q.Reconstruct(c)
				}
			}
		}
	default:
		return fmt.Errorf("sz: unsupported rank %d", len(dims))
	}
	if li != len(literals) {
		return fmt.Errorf("sz: %d literals left over", len(literals)-li)
	}
	return nil
}

// encodeChunk serializes one slab: Huffman-coded quantization codes, then
// the literal values, DEFLATE-compressed as a whole. The staging buffer,
// output buffer, and DEFLATE writer come from sc (nil = fresh
// allocations); the returned payload is an exact-size copy that shares no
// storage with the scratch pools.
func encodeChunk(codes []int, literals []float64, prec field.Precision, level int, sc *codec.Scratch) ([]byte, error) {
	raw := sc.Bytes(len(codes)/2 + len(literals)*8 + 64)
	raw = binary.AppendUvarint(raw, uint64(len(codes)))
	hs := sc.Huffman()
	raw, err := huffman.EncodeScratch(raw, codes, hs)
	sc.PutHuffman(hs)
	if err != nil {
		sc.PutBytes(raw)
		return nil, err
	}
	raw = binary.AppendUvarint(raw, uint64(len(literals)))
	raw = appendLiterals(raw, literals, prec)

	buf := sc.Buffer()
	fw, err := sc.FlateWriter(buf, level)
	if err != nil {
		sc.PutBytes(raw)
		sc.PutBuffer(buf)
		return nil, err
	}
	_, werr := fw.Write(raw)
	cerr := fw.Close()
	sc.PutBytes(raw)
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		sc.PutBuffer(buf)
		return nil, werr
	}
	payload := append([]byte(nil), buf.Bytes()...)
	sc.PutFlateWriter(fw, level)
	sc.PutBuffer(buf)
	return payload, nil
}

// decodeChunk reverses encodeChunk.
func decodeChunk(payload []byte, prec field.Precision) (codes []int, literals []float64, err error) {
	fr := flate.NewReader(bytes.NewReader(payload))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, nil, fmt.Errorf("inflate: %w", err)
	}
	if err := fr.Close(); err != nil {
		return nil, nil, err
	}
	npoints, rest, err := readUvarint(raw)
	if err != nil {
		return nil, nil, err
	}
	codes, consumed, err := huffman.Decode(rest)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(codes)) != npoints {
		return nil, nil, fmt.Errorf("sz: decoded %d codes, header says %d", len(codes), npoints)
	}
	rest = rest[consumed:]
	nlit, rest, err := readUvarint(rest)
	if err != nil {
		return nil, nil, err
	}
	literals, err = readLiterals(rest, int(nlit), prec)
	if err != nil {
		return nil, nil, err
	}
	return codes, literals, nil
}

func appendLiterals(b []byte, vals []float64, prec field.Precision) []byte {
	if prec == field.Float32 {
		var tmp [4]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(float32(v)))
			b = append(b, tmp[:]...)
		}
		return b
	}
	var tmp [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		b = append(b, tmp[:]...)
	}
	return b
}

func readLiterals(b []byte, n int, prec field.Precision) ([]float64, error) {
	size := prec.Bytes()
	if len(b) < n*size {
		return nil, fmt.Errorf("sz: literal stream truncated (%d < %d)", len(b), n*size)
	}
	out := make([]float64, n)
	if prec == field.Float32 {
		for i := 0; i < n; i++ {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// estimateCapacity samples first-phase prediction errors (predicting from
// original values, which is a close proxy for the reconstructed-value
// predictions) and returns the smallest power-of-two capacity ≥ 256 whose
// interval range captures at least 99% of them, capped at the default
// capacity.
func estimateCapacity(data []float64, dims []int, eb float64) int {
	const (
		maxSamples = 1 << 16
		hitTarget  = 0.99
	)
	n := len(data)
	stride := n / maxSamples
	if stride < 1 {
		stride = 1
	}
	delta := 2 * eb
	// Collect |q| for sampled points using the rank-matched predictor on
	// original data.
	var absIdx []float64
	switch len(dims) {
	case 1:
		for i := stride; i < n; i += stride {
			absIdx = append(absIdx, math.Abs((data[i]-data[i-1])/delta))
		}
	case 2:
		cols := dims[1]
		for idx := stride; idx < n; idx += stride {
			i, j := idx/cols, idx%cols
			var a, b, d float64
			if j > 0 {
				a = data[idx-1]
			}
			if i > 0 {
				b = data[idx-cols]
				if j > 0 {
					d = data[idx-cols-1]
				}
			}
			absIdx = append(absIdx, math.Abs((data[idx]-(a+b-d))/delta))
		}
	case 3:
		d1, d2 := dims[1], dims[2]
		plane := d1 * d2
		for idx := stride; idx < n; idx += stride {
			i := idx / plane
			rem := idx % plane
			j := rem / d2
			k := rem % d2
			var x100, x010, x001, x110, x101, x011, x111 float64
			if i > 0 {
				x100 = data[idx-plane]
			}
			if j > 0 {
				x010 = data[idx-d2]
			}
			if k > 0 {
				x001 = data[idx-1]
			}
			if i > 0 && j > 0 {
				x110 = data[idx-plane-d2]
			}
			if i > 0 && k > 0 {
				x101 = data[idx-plane-1]
			}
			if j > 0 && k > 0 {
				x011 = data[idx-d2-1]
			}
			if i > 0 && j > 0 && k > 0 {
				x111 = data[idx-plane-d2-1]
			}
			pred := x100 + x010 + x001 - x110 - x101 - x011 + x111
			absIdx = append(absIdx, math.Abs((data[idx]-pred)/delta))
		}
	}
	if len(absIdx) == 0 {
		return quantizer.DefaultCapacity
	}
	for capacity := 256; capacity < quantizer.DefaultCapacity; capacity *= 2 {
		radius := float64(capacity / 2)
		hits := 0
		for _, a := range absIdx {
			if a < radius-0.5 {
				hits++
			}
		}
		if float64(hits)/float64(len(absIdx)) >= hitTarget {
			return capacity
		}
	}
	return quantizer.DefaultCapacity
}
