// Package sz implements an SZ-style error-bounded lossy compressor for 1-,
// 2-, and 3-dimensional floating-point fields, modeled on SZ 1.4 (Tao et
// al., IPDPS 2017; Di & Cappello, IPDPS 2016):
//
//  1. predict every point with the Lorenzo predictor from its preceding,
//     already-reconstructed neighbors;
//  2. quantize the prediction error with error-controlled uniform
//     quantization (bin width δ = 2·ebabs, midpoint reconstruction);
//  3. entropy-code the quantization codes with a custom canonical Huffman
//     coder; and
//  4. squeeze the result with DEFLATE (the algorithm inside GZIP).
//
// Points whose prediction error falls outside the quantization interval
// range are stored losslessly ("unpredictable" literals), so the
// pointwise absolute error is guaranteed ≤ ebabs for every point.
//
// The compressor optionally splits the field into independent slabs along
// the slowest dimension and compresses them concurrently; each slab
// restarts the predictor, so the error bound is unaffected.
//
// Because prediction during decompression sees exactly the reconstructed
// values the compressor saw, the pipeline is l2-norm-preserving in the
// sense of the paper's Eq. 1: X − X̃ equals the quantization-stage error
// on the prediction residuals. This is what makes the closed-form PSNR
// control of internal/core exact.
package sz

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/huffman"
	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/quantizer"
)

// Options is the unified codec configuration (see codec.Options). The SZ
// pipeline reads ErrorBound, Capacity, AutoCapacity, Workers, ChunkRows,
// ChunkPoints, Level, and the header annotations; BlockSize and
// Transform are ignored.
type Options = codec.Options

// Stats is the unified compression outcome report (see codec.Stats).
type Stats = codec.Stats

// Compress compresses the field under the given absolute error bound and
// returns the encoded stream plus statistics.
func Compress(f *field.Field, opt Options) ([]byte, *Stats, error) {
	return CompressCtx(context.Background(), f, opt, nil)
}

// CompressCtx is Compress with cancellation and buffer reuse: workers
// check ctx between chunks (a cancelled context aborts within one chunk
// of work per worker and surfaces ctx.Err()), and the large per-chunk
// transients — quantization codes, the reconstruction buffer, the
// pre-DEFLATE staging bytes, and the DEFLATE writer — come from scratch
// when it is non-nil, so a session reusing one scratch across calls stops
// paying those allocations on the hot path.
//
// The field is tiled into independent chunks along the slowest dimension
// (codec.ChunkSpans); each chunk restarts the predictor, compresses
// through CompressChunk, and lands in the container's chunk table with
// its exact MSE and value range, so streams are random-access at chunk
// granularity and the global fixed-PSNR accounting can aggregate
// per-chunk distortion.
func CompressCtx(ctx context.Context, f *field.Field, opt Options, sc *codec.Scratch) ([]byte, *Stats, error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	// The public layer measures the value range to resolve its plan and
	// passes it down in opt.ValueRange; trust it when present instead of
	// rescanning the whole field (the scan is a measurable slice of the
	// encode profile on large fields).
	vr := opt.ValueRange
	if vr == 0 {
		_, _, vr = f.ValueRange()
		opt.ValueRange = vr
	}

	if vr == 0 {
		return compressConstant(f, opt)
	}
	if !(opt.ErrorBound > 0) || math.IsInf(opt.ErrorBound, 0) || math.IsNaN(opt.ErrorBound) {
		return nil, nil, fmt.Errorf("sz: error bound must be positive and finite, got %g", opt.ErrorBound)
	}

	capacity := opt.Capacity
	if opt.AutoCapacity {
		capacity = estimateCapacity(f.Data, f.Dims, opt.ErrorBound)
	}
	if capacity == 0 {
		capacity = quantizer.DefaultCapacity
	}
	copt := opt
	copt.Capacity = capacity

	spans := codec.ChunkSpans(f.Dims, opt)
	inner := 1
	for _, d := range f.Dims[1:] {
		inner *= d
	}

	payloads := make([][]byte, len(spans))
	chunks := make([]codec.ChunkInfo, len(spans))
	err := parallel.ForEachCtx(ctx, len(spans), opt.Workers, func(c int) error {
		lo, hi := spans[c][0], spans[c][1]
		sub := f.Data[lo*inner : hi*inner]
		subDims := append([]int{hi - lo}, f.Dims[1:]...)
		payload, cst, err := compressChunk(sub, subDims, f.Precision, copt, sc)
		if err != nil {
			return fmt.Errorf("sz: chunk %d: %w", c, err)
		}
		payloads[c] = payload
		chunks[c] = codec.ChunkInfo{
			Rows:          hi - lo,
			Unpredictable: cst.Unpredictable,
			MSE:           cst.MSE,
			Min:           cst.Min,
			Max:           cst.Max,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	h := &Header{
		Codec:      CodecLorenzo,
		Precision:  f.Precision,
		Mode:       opt.Mode,
		Name:       f.Name,
		Dims:       f.Dims,
		EbAbs:      opt.ErrorBound,
		TargetPSNR: opt.TargetPSNR,
		ValueRange: opt.ValueRange,
		Capacity:   capacity,
		Chunks:     chunks,
	}
	if h.TargetPSNR == 0 && opt.Mode != ModePSNR {
		h.TargetPSNR = math.NaN()
	}
	out, err := codec.AssembleStream(h, payloads)
	if err != nil {
		return nil, nil, err
	}
	st := codec.StatsFromChunks(h, len(out), f.SizeBytes())
	st.ValueRange = vr
	return out, st, nil
}

// compressChunk runs the full per-chunk pipeline — Lorenzo prediction,
// quantization, Huffman, DEFLATE — over one row slab and reports the
// chunk's exact statistics. opt.Capacity and opt.ErrorBound must be
// resolved (positive) already.
func compressChunk(data []float64, dims []int, prec field.Precision, opt Options, sc *codec.Scratch) ([]byte, codec.ChunkStats, error) {
	var cst codec.ChunkStats
	q, err := quantizer.New(opt.ErrorBound, opt.Capacity)
	if err != nil {
		return nil, cst, err
	}
	codes := sc.Ints(len(data))
	recon := sc.Floats(len(data))
	literals, sumSq, min, max := compressCore(data, dims, q, codes, recon)
	sc.PutFloats(recon)
	payload, err := encodeChunk(codes, literals, prec, opt.Capacity, opt.Level, sc)
	sc.PutInts(codes)
	if err != nil {
		return nil, cst, err
	}
	cst.Unpredictable = len(literals)
	cst.MSE = sumSq / float64(len(data))
	cst.Min, cst.Max = min, max
	return payload, cst, nil
}

// compressConstant encodes a field whose value range is zero.
func compressConstant(f *field.Field, opt Options) ([]byte, *Stats, error) {
	h := &Header{
		Codec:      CodecConstant,
		Precision:  f.Precision,
		Mode:       opt.Mode,
		Name:       f.Name,
		Dims:       f.Dims,
		ConstValue: f.Data[0],
	}
	out := h.Marshal()
	st := &Stats{
		OriginalBytes:   f.SizeBytes(),
		CompressedBytes: len(out),
		Ratio:           float64(f.SizeBytes()) / float64(len(out)),
		BitRate:         8 * float64(len(out)) / float64(f.Len()),
		NPoints:         f.Len(),
		Chunks:          1,
	}
	return out, st, nil
}

// Decompress reconstructs a field from a compressed stream.
func Decompress(data []byte) (*field.Field, *Header, error) {
	return DecompressScratch(data, nil)
}

// DecompressScratch is Decompress drawing transient decode buffers — the
// inflate window, quantization-code slices, literal slices, and Huffman
// decode tables — from sc, so session callers reuse allocations across
// streams. A nil sc allocates fresh; the reconstruction is identical
// either way.
func DecompressScratch(data []byte, sc *codec.Scratch) (*field.Field, *Header, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	if h.Codec == CodecConstant {
		out := field.New(h.Name, h.Precision, h.Dims...)
		for i := range out.Data {
			out.Data[i] = h.ConstValue
		}
		return out, h, nil
	}
	if h.Codec == CodecLogLorenzo {
		return DecompressPWRelScratch(data, sc)
	}
	if h.Codec != CodecLorenzo {
		return nil, nil, fmt.Errorf("sz: cannot decode codec %v here", h.Codec)
	}

	out := field.New(h.Name, h.Precision, h.Dims...)
	inner := h.InnerPoints()
	err = parallel.ForEach(len(h.Chunks), 0, func(c int) error {
		payload, err := codec.ChunkPayload(data, h, c)
		if err != nil {
			return err
		}
		lo := h.Chunks[c].RowStart
		hi := lo + h.Chunks[c].Rows
		return decompressChunk(payload, h, c, out.Data[lo*inner:hi*inner], sc)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, h, nil
}

// decompressChunk reverses compressChunk for chunk c of a parsed Lorenzo
// stream, reconstructing into dst (the chunk's points). Per-chunk bounds
// written by selective recompression take precedence over the header
// bound. Transient buffers come from sc (nil = fresh allocations).
func decompressChunk(payload []byte, h *Header, c int, dst []float64, sc *codec.Scratch) error {
	q, err := quantizer.New(h.ChunkBound(c), h.Capacity)
	if err != nil {
		return err
	}
	codes, literals, err := decodeChunk(payload, h.Precision, sc)
	if err != nil {
		return fmt.Errorf("sz: chunk %d: %w", c, err)
	}
	if len(codes) != len(dst) {
		sc.PutInts(codes)
		sc.PutFloats(literals)
		return fmt.Errorf("sz: chunk %d has %d codes, want %d", c, len(codes), len(dst))
	}
	err = decompressCore(dst, codes, literals, h.ChunkDims(c), q)
	sc.PutInts(codes)
	sc.PutFloats(literals)
	return err
}

// compressCore runs prediction + quantization over one slab, filling the
// caller-supplied codes buffer (one code per point; 0 marks a literal)
// and using recon as the reconstructed-value working buffer (both must
// have length len(data); prior contents are ignored and overwritten). It
// returns the literal values in scan order, the exact sum of squared
// reconstruction errors over the slab (non-finite pointwise errors
// excluded), and the slab's value bounds (NaNs skipped; NaN/NaN when
// every value is NaN) — measured here because this pass already streams
// the data, so a separate bounds scan would cost a full trip through
// memory.
func compressCore(data []float64, dims []int, q *quantizer.Quantizer, codes []int, recon []float64) (literals []float64, sumSq, min, max float64) {
	st := coreState{min: math.Inf(1), max: math.Inf(-1)}
	switch len(dims) {
	case 1:
		compress1D(data, codes, recon, &st, q)
	case 2:
		compress2D(data, dims, codes, recon, &st, q)
	case 3:
		compress3D(data, dims, codes, recon, &st, q)
	default:
		panic("sz: unsupported rank")
	}
	if st.min > st.max { // all NaN or empty
		st.min, st.max = math.NaN(), math.NaN()
	}
	return st.literals, st.sumSq, st.min, st.max
}

// coreState accumulates the slab statistics inside the prediction loop
// itself. The loop is latency-bound on the serial recon dependency, so
// the extra adds and compares hide under it — measuring here saves the
// second full trip through data and recon that a separate
// sumSq/ValueBounds pass costs.
type coreState struct {
	literals []float64
	sumSq    float64
	min, max float64
}

// quantizeStep quantizes one point against its prediction, accumulating
// the point's squared reconstruction error and value bounds. Literals
// reconstruct exactly (error zero), and NaN values skip the bounds
// because every comparison against them is false — matching what a
// post-pass over data/recon would measure.
func quantizeStep(v, pred float64, q *quantizer.Quantizer, st *coreState) (code int, recon float64) {
	if v < st.min {
		st.min = v
	}
	if v > st.max {
		st.max = v
	}
	code, rec, err, ok := q.QuantizeRecon(v - pred)
	if !ok {
		st.literals = append(st.literals, v)
		return 0, v
	}
	st.sumSq += err * err
	return code, pred + rec
}

func compress1D(data []float64, codes []int, recon []float64, st *coreState, q *quantizer.Quantizer) {
	prev := 0.0
	for i, v := range data {
		codes[i], recon[i] = quantizeStep(v, prev, q, st)
		prev = recon[i]
	}
}

// compress2D runs the 2-D Lorenzo predictor row by row. The first row
// and first column use reduced stencils (missing neighbors predict 0, so
// their terms drop out); interior points read the full three-point
// stencil from re-sliced current/upper rows, which lets the compiler
// eliminate the per-point bounds checks the flat-index form pays.
func compress2D(data []float64, dims []int, codes []int, recon []float64, st *coreState, q *quantizer.Quantizer) {
	rows, cols := dims[0], dims[1]
	drow := data[0:cols:cols]
	rrow := recon[0:cols:cols]
	crow := codes[0:cols:cols]
	prev := 0.0
	for j, v := range drow {
		crow[j], rrow[j] = quantizeStep(v, prev, q, st)
		prev = rrow[j]
	}
	for i := 1; i < rows; i++ {
		base := i * cols
		drow := data[base : base+cols : base+cols]
		rrow := recon[base : base+cols : base+cols]
		crow := codes[base : base+cols : base+cols]
		up := recon[base-cols : base : base]
		crow[0], rrow[0] = quantizeStep(drow[0], up[0], q, st)
		for j := 1; j < cols; j++ {
			crow[j], rrow[j] = quantizeStep(drow[j], rrow[j-1]+up[j]-up[j-1], q, st)
		}
	}
}

// compress3D runs the 3-D Lorenzo predictor row by row. Rows with all
// three preceding neighbor rows present (i > 0 and j > 0 — the vast
// majority) take a fast path reading the seven-point stencil from four
// re-sliced rows with no per-point existence or bounds checks; boundary
// rows keep the generic guarded stencil.
//
// The fast path hand-inlines quantizer.QuantizeRecon (the call is past
// the inlining budget) and keeps the slab statistics in locals: stores
// to rrow could alias *st as far as the compiler knows, so accumulating
// through the pointer would reload every field each point.
func compress3D(data []float64, dims []int, codes []int, recon []float64, st *coreState, q *quantizer.Quantizer) {
	d0, d1, d2 := dims[0], dims[1], dims[2]
	plane := d1 * d2
	invDelta, delta := q.InvDelta(), q.Delta()
	eb, radius := q.ErrorBound(), q.Radius()
	radiusF := float64(radius)
	smin, smax, ssum := st.min, st.max, st.sumSq
	lits := st.literals
	for i := 0; i < d0; i++ {
		for j := 0; j < d1; j++ {
			base := i*plane + j*d2
			if i > 0 && j > 0 {
				drow := data[base : base+d2 : base+d2]
				rrow := recon[base : base+d2 : base+d2]
				crow := codes[base : base+d2 : base+d2]
				up := recon[base-d2 : base : base]                   // (i, j-1, ·)
				pl := recon[base-plane : base-plane+d2]              // (i-1, j, ·)
				pu := recon[base-plane-d2 : base-plane : base-plane] // (i-1, j-1, ·)
				pred := pl[0] + up[0] - pu[0]
				for k := 0; k < d2; k++ {
					v := drow[k]
					if v < smin {
						smin = v
					}
					if v > smax {
						smax = v
					}
					// Keep in sync with quantizer.QuantizeRecon.
					diff := v - pred
					idx := math.FMA(diff, invDelta, quantizer.RoundMagic) - quantizer.RoundMagic
					rec := idx * delta
					e := diff - rec
					if idx < radiusF && idx > -radiusF && e <= eb && e >= -eb {
						crow[k] = int(idx) + radius
						rrow[k] = pred + rec
						ssum += e * e
					} else {
						lits = append(lits, v)
						crow[k] = 0
						rrow[k] = v
					}
					if k+1 < d2 {
						pred = pl[k+1] + up[k+1] + rrow[k] - pu[k+1] - pl[k] - up[k] + pu[k]
					}
				}
				continue
			}
			for k := 0; k < d2; k++ {
				idx := base + k
				var x100, x010, x001, x110, x101, x011, x111 float64
				if i > 0 {
					x100 = recon[idx-plane]
				}
				if j > 0 {
					x010 = recon[idx-d2]
				}
				if k > 0 {
					x001 = recon[idx-1]
				}
				if i > 0 && j > 0 {
					x110 = recon[idx-plane-d2]
				}
				if i > 0 && k > 0 {
					x101 = recon[idx-plane-1]
				}
				if j > 0 && k > 0 {
					x011 = recon[idx-d2-1]
				}
				if i > 0 && j > 0 && k > 0 {
					x111 = recon[idx-plane-d2-1]
				}
				pred := x100 + x010 + x001 - x110 - x101 - x011 + x111
				v := data[idx]
				if v < smin {
					smin = v
				}
				if v > smax {
					smax = v
				}
				code, rec, e, ok := q.QuantizeRecon(v - pred)
				if ok {
					codes[idx] = code
					recon[idx] = pred + rec
					ssum += e * e
				} else {
					lits = append(lits, v)
					codes[idx] = 0
					recon[idx] = v
				}
			}
		}
	}
	st.min, st.max, st.sumSq, st.literals = smin, smax, ssum, lits
}

// decompressCore reconstructs one slab in place into out.
func decompressCore(out []float64, codes []int, literals []float64, dims []int, q *quantizer.Quantizer) error {
	li := 0
	nextLiteral := func() (float64, error) {
		if li >= len(literals) {
			return 0, fmt.Errorf("sz: literal stream exhausted")
		}
		v := literals[li]
		li++
		return v, nil
	}
	switch len(dims) {
	case 1:
		prev := 0.0
		for i, c := range codes {
			if c == 0 {
				v, err := nextLiteral()
				if err != nil {
					return err
				}
				out[i] = v
			} else {
				out[i] = prev + q.Reconstruct(c)
			}
			prev = out[i]
		}
	case 2:
		// First row, then interior rows: the same interior/border split
		// as compress2D, with the stencil read from re-sliced rows so the
		// per-point bounds checks vanish.
		rows, cols := dims[0], dims[1]
		cur := out[0:cols:cols]
		prev := 0.0
		for j, c := range codes[0:cols:cols] {
			if c == 0 {
				v, err := nextLiteral()
				if err != nil {
					return err
				}
				cur[j] = v
			} else {
				cur[j] = prev + q.Reconstruct(c)
			}
			prev = cur[j]
		}
		for i := 1; i < rows; i++ {
			base := i * cols
			cur := out[base : base+cols : base+cols]
			crow := codes[base : base+cols : base+cols]
			up := out[base-cols : base : base]
			if c := crow[0]; c == 0 {
				v, err := nextLiteral()
				if err != nil {
					return err
				}
				cur[0] = v
			} else {
				cur[0] = up[0] + q.Reconstruct(c)
			}
			for j := 1; j < cols; j++ {
				c := crow[j]
				if c == 0 {
					v, err := nextLiteral()
					if err != nil {
						return err
					}
					cur[j] = v
					continue
				}
				cur[j] = cur[j-1] + up[j] - up[j-1] + q.Reconstruct(c)
			}
		}
	case 3:
		// Rows with all preceding neighbor rows present (i > 0 and j > 0)
		// take the same re-sliced seven-point fast path as compress3D;
		// boundary rows keep the generic guarded stencil.
		d0, d1, d2 := dims[0], dims[1], dims[2]
		plane := d1 * d2
		for i := 0; i < d0; i++ {
			for j := 0; j < d1; j++ {
				base := i*plane + j*d2
				if i > 0 && j > 0 {
					cur := out[base : base+d2 : base+d2]
					crow := codes[base : base+d2 : base+d2]
					up := out[base-d2 : base : base]                   // (i, j-1, ·)
					pl := out[base-plane : base-plane+d2]              // (i-1, j, ·)
					pu := out[base-plane-d2 : base-plane : base-plane] // (i-1, j-1, ·)
					if c := crow[0]; c == 0 {
						v, err := nextLiteral()
						if err != nil {
							return err
						}
						cur[0] = v
					} else {
						cur[0] = pl[0] + up[0] - pu[0] + q.Reconstruct(c)
					}
					for k := 1; k < d2; k++ {
						c := crow[k]
						if c == 0 {
							v, err := nextLiteral()
							if err != nil {
								return err
							}
							cur[k] = v
							continue
						}
						pred := pl[k] + up[k] + cur[k-1] - pu[k] - pl[k-1] - up[k-1] + pu[k-1]
						cur[k] = pred + q.Reconstruct(c)
					}
					continue
				}
				for k := 0; k < d2; k++ {
					idx := base + k
					c := codes[idx]
					if c == 0 {
						v, err := nextLiteral()
						if err != nil {
							return err
						}
						out[idx] = v
						continue
					}
					var x100, x010, x001, x110, x101, x011, x111 float64
					if i > 0 {
						x100 = out[idx-plane]
					}
					if j > 0 {
						x010 = out[idx-d2]
					}
					if k > 0 {
						x001 = out[idx-1]
					}
					if i > 0 && j > 0 {
						x110 = out[idx-plane-d2]
					}
					if i > 0 && k > 0 {
						x101 = out[idx-plane-1]
					}
					if j > 0 && k > 0 {
						x011 = out[idx-d2-1]
					}
					if i > 0 && j > 0 && k > 0 {
						x111 = out[idx-plane-d2-1]
					}
					pred := x100 + x010 + x001 - x110 - x101 - x011 + x111
					out[idx] = pred + q.Reconstruct(c)
				}
			}
		}
	default:
		return fmt.Errorf("sz: unsupported rank %d", len(dims))
	}
	if li != len(literals) {
		return fmt.Errorf("sz: %d literals left over", len(literals)-li)
	}
	return nil
}

// encodeChunk serializes one slab: Huffman-coded quantization codes, then
// the literal values, DEFLATE-compressed as a whole. The staging buffer
// and DEFLATE encoder come from sc (nil = fresh allocations); the
// returned payload shares no storage with the scratch pools. level 0
// selects the purpose-built internal/deflate back-end, any other level
// the stdlib writer (see Scratch.AppendDeflate). capacity is the
// quantizer capacity that produced codes (every code is < capacity by
// construction), which lets the Huffman coder skip its validation pass.
func encodeChunk(codes []int, literals []float64, prec field.Precision, capacity, level int, sc *codec.Scratch) ([]byte, error) {
	raw := sc.Bytes(len(codes)/2 + len(literals)*8 + 64)
	raw = binary.AppendUvarint(raw, uint64(len(codes)))
	hs := sc.Huffman()
	raw, err := huffman.EncodeScratchMax(raw, codes, capacity-1, hs)
	sc.PutHuffman(hs)
	if err != nil {
		sc.PutBytes(raw)
		return nil, err
	}
	raw = binary.AppendUvarint(raw, uint64(len(literals)))
	raw = appendLiterals(raw, literals, prec)

	// Encode into a pooled staging buffer and hand back an exact-size
	// copy, so append growth is amortized by the pool and the returned
	// payload carries no slack capacity.
	stage, err := sc.AppendDeflate(sc.Bytes(len(raw)/2+64), raw, level)
	sc.PutBytes(raw)
	if err != nil {
		sc.PutBytes(stage)
		return nil, err
	}
	payload := append([]byte(nil), stage...)
	sc.PutBytes(stage)
	return payload, nil
}

// decodeChunk reverses encodeChunk. The inflate reader and staging
// buffer, the Huffman decode tables, and the returned codes and literals
// slices all come from sc (nil = fresh allocations); the caller owns the
// returned slices and should PutInts/PutFloats them when done.
func decodeChunk(payload []byte, prec field.Precision, sc *codec.Scratch) (codes []int, literals []float64, err error) {
	fr := sc.FlateReader(bytes.NewReader(payload))
	buf := sc.Buffer()
	defer sc.PutBuffer(buf)
	if _, err := buf.ReadFrom(fr); err != nil {
		fr.Close()
		sc.PutFlateReader(fr)
		return nil, nil, fmt.Errorf("inflate: %w", err)
	}
	if err := fr.Close(); err != nil {
		sc.PutFlateReader(fr)
		return nil, nil, err
	}
	sc.PutFlateReader(fr)
	raw := buf.Bytes()
	npoints, rest, err := readUvarint(raw)
	if err != nil {
		return nil, nil, err
	}
	if npoints > uint64(len(rest))*8 {
		// Every code costs at least one bit downstream; reject a corrupt
		// count before sizing the code buffer from it.
		return nil, nil, fmt.Errorf("sz: %d codes cannot fit in %d payload bytes", npoints, len(rest))
	}
	hd := sc.HuffDecode()
	codes, consumed, err := huffman.DecodeInto(sc.Ints(int(npoints))[:0], rest, hd)
	sc.PutHuffDecode(hd)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(codes)) != npoints {
		sc.PutInts(codes)
		return nil, nil, fmt.Errorf("sz: decoded %d codes, header says %d", len(codes), npoints)
	}
	rest = rest[consumed:]
	nlit, rest, err := readUvarint(rest)
	if err != nil {
		sc.PutInts(codes)
		return nil, nil, err
	}
	literals, err = readLiterals(rest, int(nlit), prec, sc)
	if err != nil {
		sc.PutInts(codes)
		return nil, nil, err
	}
	return codes, literals, nil
}

func appendLiterals(b []byte, vals []float64, prec field.Precision) []byte {
	if prec == field.Float32 {
		var tmp [4]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(float32(v)))
			b = append(b, tmp[:]...)
		}
		return b
	}
	var tmp [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		b = append(b, tmp[:]...)
	}
	return b
}

func readLiterals(b []byte, n int, prec field.Precision, sc *codec.Scratch) ([]float64, error) {
	size := prec.Bytes()
	if len(b) < n*size {
		return nil, fmt.Errorf("sz: literal stream truncated (%d < %d)", len(b), n*size)
	}
	out := sc.Floats(n)
	if prec == field.Float32 {
		for i := 0; i < n; i++ {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// estimateCapacity samples first-phase prediction errors (predicting from
// original values, which is a close proxy for the reconstructed-value
// predictions) and returns the smallest power-of-two capacity ≥ 256 whose
// interval range captures at least 99% of them, capped at the default
// capacity.
func estimateCapacity(data []float64, dims []int, eb float64) int {
	const (
		maxSamples = 1 << 16
		hitTarget  = 0.99
	)
	n := len(data)
	stride := n / maxSamples
	if stride < 1 {
		stride = 1
	}
	delta := 2 * eb
	// Collect |q| for sampled points using the rank-matched predictor on
	// original data.
	var absIdx []float64
	switch len(dims) {
	case 1:
		for i := stride; i < n; i += stride {
			absIdx = append(absIdx, math.Abs((data[i]-data[i-1])/delta))
		}
	case 2:
		cols := dims[1]
		for idx := stride; idx < n; idx += stride {
			i, j := idx/cols, idx%cols
			var a, b, d float64
			if j > 0 {
				a = data[idx-1]
			}
			if i > 0 {
				b = data[idx-cols]
				if j > 0 {
					d = data[idx-cols-1]
				}
			}
			absIdx = append(absIdx, math.Abs((data[idx]-(a+b-d))/delta))
		}
	case 3:
		d1, d2 := dims[1], dims[2]
		plane := d1 * d2
		for idx := stride; idx < n; idx += stride {
			i := idx / plane
			rem := idx % plane
			j := rem / d2
			k := rem % d2
			var x100, x010, x001, x110, x101, x011, x111 float64
			if i > 0 {
				x100 = data[idx-plane]
			}
			if j > 0 {
				x010 = data[idx-d2]
			}
			if k > 0 {
				x001 = data[idx-1]
			}
			if i > 0 && j > 0 {
				x110 = data[idx-plane-d2]
			}
			if i > 0 && k > 0 {
				x101 = data[idx-plane-1]
			}
			if j > 0 && k > 0 {
				x011 = data[idx-d2-1]
			}
			if i > 0 && j > 0 && k > 0 {
				x111 = data[idx-plane-d2-1]
			}
			pred := x100 + x010 + x001 - x110 - x101 - x011 + x111
			absIdx = append(absIdx, math.Abs((data[idx]-pred)/delta))
		}
	}
	if len(absIdx) == 0 {
		return quantizer.DefaultCapacity
	}
	for capacity := 256; capacity < quantizer.DefaultCapacity; capacity *= 2 {
		radius := float64(capacity / 2)
		hits := 0
		for _, a := range absIdx {
			if a < radius-0.5 {
				hits++
			}
		}
		if float64(hits)/float64(len(absIdx)) >= hitTarget {
			return capacity
		}
	}
	return quantizer.DefaultCapacity
}
