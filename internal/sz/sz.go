// Package sz implements an SZ-style error-bounded lossy compressor for 1-,
// 2-, and 3-dimensional floating-point fields, modeled on SZ 1.4 (Tao et
// al., IPDPS 2017; Di & Cappello, IPDPS 2016):
//
//  1. predict every point with the Lorenzo predictor from its preceding,
//     already-reconstructed neighbors;
//  2. quantize the prediction error with error-controlled uniform
//     quantization (bin width δ = 2·ebabs, midpoint reconstruction);
//  3. entropy-code the quantization codes with a custom canonical Huffman
//     coder; and
//  4. squeeze the result with DEFLATE (the algorithm inside GZIP).
//
// Points whose prediction error falls outside the quantization interval
// range are stored losslessly ("unpredictable" literals), so the
// pointwise absolute error is guaranteed ≤ ebabs for every point.
//
// The compressor optionally splits the field into independent slabs along
// the slowest dimension and compresses them concurrently; each slab
// restarts the predictor, so the error bound is unaffected.
//
// Because prediction during decompression sees exactly the reconstructed
// values the compressor saw, the pipeline is l2-norm-preserving in the
// sense of the paper's Eq. 1: X − X̃ equals the quantization-stage error
// on the prediction residuals. This is what makes the closed-form PSNR
// control of internal/core exact.
package sz

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/huffman"
	"fixedpsnr/internal/kernels"
	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/quantizer"
)

// Options is the unified codec configuration (see codec.Options). The SZ
// pipeline reads ErrorBound, Capacity, AutoCapacity, Workers, ChunkRows,
// ChunkPoints, Level, and the header annotations; BlockSize and
// Transform are ignored.
type Options = codec.Options

// Stats is the unified compression outcome report (see codec.Stats).
type Stats = codec.Stats

// Compress compresses the field under the given absolute error bound and
// returns the encoded stream plus statistics.
func Compress(f *field.Field, opt Options) ([]byte, *Stats, error) {
	return CompressCtx(context.Background(), f, opt, nil)
}

// CompressCtx is Compress with cancellation and buffer reuse: workers
// check ctx between chunks (a cancelled context aborts within one chunk
// of work per worker and surfaces ctx.Err()), and the large per-chunk
// transients — quantization codes, the reconstruction buffer, the
// pre-DEFLATE staging bytes, and the DEFLATE writer — come from scratch
// when it is non-nil, so a session reusing one scratch across calls stops
// paying those allocations on the hot path.
//
// The field is tiled into independent chunks along the slowest dimension
// (codec.ChunkSpans); each chunk restarts the predictor, compresses
// through CompressChunk, and lands in the container's chunk table with
// its exact MSE and value range, so streams are random-access at chunk
// granularity and the global fixed-PSNR accounting can aggregate
// per-chunk distortion.
func CompressCtx(ctx context.Context, f *field.Field, opt Options, sc *codec.Scratch) ([]byte, *Stats, error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	// The public layer measures the value range to resolve its plan and
	// passes it down in opt.ValueRange; trust it when present instead of
	// rescanning the whole field (the scan is a measurable slice of the
	// encode profile on large fields).
	vr := opt.ValueRange
	if vr == 0 {
		_, _, vr = f.ValueRange()
		opt.ValueRange = vr
	}

	if vr == 0 {
		return compressConstant(f, opt)
	}
	if !(opt.ErrorBound > 0) || math.IsInf(opt.ErrorBound, 0) || math.IsNaN(opt.ErrorBound) {
		return nil, nil, fmt.Errorf("sz: error bound must be positive and finite, got %g", opt.ErrorBound)
	}

	capacity := opt.Capacity
	if opt.AutoCapacity {
		capacity = estimateCapacity(f.Data, f.Dims, opt.ErrorBound)
	}
	if capacity == 0 {
		capacity = quantizer.DefaultCapacity
	}
	copt := opt
	copt.Capacity = capacity

	spans := codec.ChunkSpans(f.Dims, opt)
	inner := 1
	for _, d := range f.Dims[1:] {
		inner *= d
	}

	payloads := make([][]byte, len(spans))
	chunks := make([]codec.ChunkInfo, len(spans))
	// Each worker slot compresses from its own scratch shard: chunk
	// buffers recycled by a worker come back to the same worker, so the
	// pools never shuttle multi-megabyte buffers between cores.
	err := parallel.ForEachWorkerCtx(ctx, len(spans), opt.Workers, func(w, c int) error {
		lo, hi := spans[c][0], spans[c][1]
		sub := f.Data[lo*inner : hi*inner]
		subDims := append([]int{hi - lo}, f.Dims[1:]...)
		payload, cst, err := compressChunk(sub, subDims, f.Precision, copt, sc.Shard(w))
		if err != nil {
			return fmt.Errorf("sz: chunk %d: %w", c, err)
		}
		payloads[c] = payload
		chunks[c] = codec.ChunkInfo{
			Rows:          hi - lo,
			Unpredictable: cst.Unpredictable,
			MSE:           cst.MSE,
			Min:           cst.Min,
			Max:           cst.Max,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	h := &Header{
		Codec:      CodecLorenzo,
		Precision:  f.Precision,
		Mode:       opt.Mode,
		Name:       f.Name,
		Dims:       f.Dims,
		EbAbs:      opt.ErrorBound,
		TargetPSNR: opt.TargetPSNR,
		ValueRange: opt.ValueRange,
		Capacity:   capacity,
		Chunks:     chunks,
	}
	if h.TargetPSNR == 0 && opt.Mode != ModePSNR {
		h.TargetPSNR = math.NaN()
	}
	out, err := codec.AssembleStream(h, payloads)
	if err != nil {
		return nil, nil, err
	}
	st := codec.StatsFromChunks(h, len(out), f.SizeBytes())
	st.ValueRange = vr
	return out, st, nil
}

// compressChunk runs the full per-chunk pipeline — Lorenzo prediction,
// quantization, Huffman, DEFLATE — over one row slab and reports the
// chunk's exact statistics. opt.Capacity and opt.ErrorBound must be
// resolved (positive) already.
func compressChunk(data []float64, dims []int, prec field.Precision, opt Options, sc *codec.Scratch) ([]byte, codec.ChunkStats, error) {
	var cst codec.ChunkStats
	q, err := quantizer.New(opt.ErrorBound, opt.Capacity)
	if err != nil {
		return nil, cst, err
	}
	codes := sc.Int32s(len(data))
	recon := sc.Floats(len(data))
	literals, sumSq := compressCore(data, dims, q, codes, recon)
	sc.PutFloats(recon)
	// Chunk value bounds come from a dedicated vector-wide scan rather
	// than accumulators threaded through the (serial, latency-bound)
	// prediction loop: the scan is memory-bound at sixteen lanes while
	// two more accumulators per row would cost registers the grouped
	// kernels need, and the chunk is still cache-resident from the
	// prediction pass. NaNs are skipped; the all-NaN/empty sentinel maps
	// to NaN/NaN as ValueBounds-style callers expect.
	min, max := kernels.MinMax(data)
	if min > max {
		min, max = math.NaN(), math.NaN()
	}
	payload, err := encodeChunk(codes, literals, prec, opt.Capacity, opt.Level, sc)
	sc.PutInt32s(codes)
	if err != nil {
		return nil, cst, err
	}
	cst.Unpredictable = len(literals)
	cst.MSE = sumSq / float64(len(data))
	cst.Min, cst.Max = min, max
	return payload, cst, nil
}

// compressConstant encodes a field whose value range is zero.
func compressConstant(f *field.Field, opt Options) ([]byte, *Stats, error) {
	h := &Header{
		Codec:      CodecConstant,
		Precision:  f.Precision,
		Mode:       opt.Mode,
		Name:       f.Name,
		Dims:       f.Dims,
		ConstValue: f.Data[0],
	}
	out := h.Marshal()
	st := &Stats{
		OriginalBytes:   f.SizeBytes(),
		CompressedBytes: len(out),
		Ratio:           float64(f.SizeBytes()) / float64(len(out)),
		BitRate:         8 * float64(len(out)) / float64(f.Len()),
		NPoints:         f.Len(),
		Chunks:          1,
	}
	return out, st, nil
}

// Decompress reconstructs a field from a compressed stream.
func Decompress(data []byte) (*field.Field, *Header, error) {
	return DecompressScratch(data, nil)
}

// DecompressScratch is Decompress drawing transient decode buffers — the
// inflate window, quantization-code slices, literal slices, and Huffman
// decode tables — from sc, so session callers reuse allocations across
// streams. A nil sc allocates fresh; the reconstruction is identical
// either way.
func DecompressScratch(data []byte, sc *codec.Scratch) (*field.Field, *Header, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	if h.Codec == CodecConstant {
		out := field.New(h.Name, h.Precision, h.Dims...)
		for i := range out.Data {
			out.Data[i] = h.ConstValue
		}
		return out, h, nil
	}
	if h.Codec == CodecLogLorenzo {
		return DecompressPWRelScratch(data, sc)
	}
	if h.Codec != CodecLorenzo {
		return nil, nil, fmt.Errorf("sz: cannot decode codec %v here", h.Codec)
	}

	out := field.New(h.Name, h.Precision, h.Dims...)
	inner := h.InnerPoints()
	err = parallel.ForEachWorkerCtx(context.Background(), len(h.Chunks), 0, func(w, c int) error {
		payload, err := codec.ChunkPayload(data, h, c)
		if err != nil {
			return err
		}
		lo := h.Chunks[c].RowStart
		hi := lo + h.Chunks[c].Rows
		return decompressChunk(payload, h, c, out.Data[lo*inner:hi*inner], sc.Shard(w))
	})
	if err != nil {
		return nil, nil, err
	}
	return out, h, nil
}

// decompressChunk reverses compressChunk for chunk c of a parsed Lorenzo
// stream, reconstructing into dst (the chunk's points). Per-chunk bounds
// written by selective recompression take precedence over the header
// bound. Transient buffers come from sc (nil = fresh allocations).
func decompressChunk(payload []byte, h *Header, c int, dst []float64, sc *codec.Scratch) error {
	q, err := quantizer.New(h.ChunkBound(c), h.Capacity)
	if err != nil {
		return err
	}
	codes, literals, err := decodeChunk(payload, h.Precision, sc)
	if err != nil {
		return fmt.Errorf("sz: chunk %d: %w", c, err)
	}
	if len(codes) != len(dst) {
		sc.PutInt32s(codes)
		sc.PutFloats(literals)
		return fmt.Errorf("sz: chunk %d has %d codes, want %d", c, len(codes), len(dst))
	}
	err = decompressCore(dst, codes, literals, h.ChunkDims(c), q)
	sc.PutInt32s(codes)
	sc.PutFloats(literals)
	return err
}

// compressCore runs prediction + quantization over one slab, filling the
// caller-supplied codes buffer (one code per point; 0 marks a literal)
// and using recon as the reconstructed-value working buffer (both must
// have length len(data); prior contents are ignored and overwritten). It
// returns the literal values in scan order and the exact sum of squared
// reconstruction errors over the slab (non-finite pointwise errors
// excluded). Value bounds are not measured here — kernels.MinMax scans
// them vector-wide far faster than accumulators threaded through this
// serial loop.
func compressCore(data []float64, dims []int, q *quantizer.Quantizer, codes []int32, recon []float64) (literals []float64, sumSq float64) {
	var st coreState
	switch len(dims) {
	case 1:
		compress1D(data, codes, recon, &st, q)
	case 2:
		compress2D(data, dims, codes, recon, &st, q)
	case 3:
		compress3D(data, dims, codes, recon, &st, q)
	default:
		panic("sz: unsupported rank")
	}
	return st.literals, st.sumSq
}

// coreState accumulates the slab's literals and Σe² across the
// per-rank prediction loops.
type coreState struct {
	literals []float64
	sumSq    float64
}

// quantizeStep quantizes one point against its prediction, accumulating
// the point's squared reconstruction error. Literals reconstruct
// exactly (error zero).
func quantizeStep(v, pred float64, q *quantizer.Quantizer, st *coreState) (code int32, recon float64) {
	c, rec, err, ok := q.QuantizeRecon(v - pred)
	if !ok {
		st.literals = append(st.literals, v)
		return 0, v
	}
	st.sumSq += err * err
	return int32(c), pred + rec
}

func compress1D(data []float64, codes []int32, recon []float64, st *coreState, q *quantizer.Quantizer) {
	prev := 0.0
	for i, v := range data {
		codes[i], recon[i] = quantizeStep(v, prev, q, st)
		prev = recon[i]
	}
}

// compress2D runs the 2-D Lorenzo predictor row by row. The first row
// and first column use reduced stencils (missing neighbors predict 0, so
// their terms drop out); interior points read the full three-point
// stencil from re-sliced current/upper rows, which lets the compiler
// eliminate the per-point bounds checks the flat-index form pays.
func compress2D(data []float64, dims []int, codes []int32, recon []float64, st *coreState, q *quantizer.Quantizer) {
	rows, cols := dims[0], dims[1]
	drow := data[0:cols:cols]
	rrow := recon[0:cols:cols]
	crow := codes[0:cols:cols]
	prev := 0.0
	for j, v := range drow {
		crow[j], rrow[j] = quantizeStep(v, prev, q, st)
		prev = rrow[j]
	}
	for i := 1; i < rows; i++ {
		base := i * cols
		drow := data[base : base+cols : base+cols]
		rrow := recon[base : base+cols : base+cols]
		crow := codes[base : base+cols : base+cols]
		up := recon[base-cols : base : base]
		crow[0], rrow[0] = quantizeStep(drow[0], up[0], q, st)
		for j := 1; j < cols; j++ {
			crow[j], rrow[j] = quantizeStep(drow[j], rrow[j-1]+up[j]-up[j-1], q, st)
		}
	}
}

// wfScratch pools the wavefront scheduler's bookkeeping — the per-row
// literal segment table and arena on the encode side, the per-row
// literal offsets on the decode side, and the kernels' per-row literal
// spill buffers. It is deliberately separate from codec.Scratch: these
// buffers are orders of magnitude smaller than the codes/recon slabs
// sharing those pools, and mixing sizes in one sync.Pool evicts the
// big buffers (a small buffer landing in the per-P private slot misses
// the next big request and both get reallocated).
type wfScratch struct {
	seg   []int
	offs  []int
	arena []float64
	lit   [4][]float64
}

var wfPool = sync.Pool{New: func() any { return new(wfScratch) }}

// kernelQuant mirrors q's constants for the internal/kernels fused row
// kernels.
func kernelQuant(q *quantizer.Quantizer) kernels.Quant {
	return kernels.Quant{
		InvDelta: q.InvDelta(),
		Delta:    q.Delta(),
		EB:       q.ErrorBound(),
		RadiusF:  float64(q.Radius()),
		Radius:   int64(q.Radius()),
	}
}

// wavefront3D iterates the interior rows (i > 0 and j > 0) of a d0×d1
// row grid in anti-diagonal order: all rows with i+j == d are mutually
// independent under the Lorenzo dependency (row (i,j) reads only rows
// (i,j−1), (i−1,j), (i−1,j−1), all on earlier diagonals), so the
// schedule hands them out in the widest groups available — quads,
// then a pair, then a leftover single — and each callback may process
// its rows concurrently-in-one-loop. Border rows (i == 0 or j == 0)
// are not visited; they must be processed before this runs.
func wavefront3D(d0, d1 int, quad func(i1, j1, i2, j2, i3, j3, i4, j4 int), pair func(i1, j1, i2, j2 int), single func(i, j int)) {
	for d := 2; d <= (d0-1)+(d1-1); d++ {
		iLo := 1
		if lo := d - (d1 - 1); lo > 1 {
			iLo = lo
		}
		iHi := d - 1
		if iHi > d0-1 {
			iHi = d0 - 1
		}
		i := iLo
		for ; i+3 <= iHi; i += 4 {
			quad(i, d-i, i+1, d-i-1, i+2, d-i-2, i+3, d-i-3)
		}
		if i+1 <= iHi {
			pair(i, d-i, i+1, d-i-1)
			i += 2
		}
		if i <= iHi {
			single(i, d-i)
		}
	}
}

// borderRow3D compresses one border row (i == 0 or j == 0) with the
// generic guarded seven-point stencil, appending its literals to arena
// and threading the Σe² accumulator through by value so it stays in a
// register across the row.
func borderRow3D(data, recon []float64, codes []int32, i, j, d2, plane int, q *quantizer.Quantizer, arena []float64, ssum float64) ([]float64, float64) {
	base := i*plane + j*d2
	for k := 0; k < d2; k++ {
		idx := base + k
		var x100, x010, x001, x110, x101, x011, x111 float64
		if i > 0 {
			x100 = recon[idx-plane]
		}
		if j > 0 {
			x010 = recon[idx-d2]
		}
		if k > 0 {
			x001 = recon[idx-1]
		}
		if i > 0 && j > 0 {
			x110 = recon[idx-plane-d2]
		}
		if i > 0 && k > 0 {
			x101 = recon[idx-plane-1]
		}
		if j > 0 && k > 0 {
			x011 = recon[idx-d2-1]
		}
		if i > 0 && j > 0 && k > 0 {
			x111 = recon[idx-plane-d2-1]
		}
		pred := x100 + x010 + x001 - x110 - x101 - x011 + x111
		v := data[idx]
		code, rec, e, ok := q.QuantizeRecon(v - pred)
		if ok {
			codes[idx] = int32(code)
			recon[idx] = pred + rec
			ssum += e * e
		} else {
			arena = append(arena, v)
			codes[idx] = 0
			recon[idx] = v
		}
	}
	return arena, ssum
}

// compress3D runs the 3-D Lorenzo predictor in wavefront order. Border
// rows (plane i = 0, then column j = 0) depend only on each other and
// are processed first with the generic guarded stencil; every interior
// row depends only on rows from earlier anti-diagonals, so rows sharing
// a diagonal are mutually independent and go to the fused
// predict+quantize kernels in groups — up to four serial recon
// dependency chains interleaved in one loop
// (kernels.PredictQuantizeRows4), which is what lifts the throughput
// of this latency-bound loop. The per-point arithmetic is exactly the
// historical scan-order loop's (see kernels.PredictQuantizeRow), so
// codes, reconstructions, and literals are unchanged; only the
// accumulation order of Σe² differs (per-row partial sums merged in
// schedule order), which can move the recorded chunk MSE by ulps.
//
// Literals are collected into a processing-order arena with per-row
// segments and re-concatenated in scan (row-major) order at the end,
// so the emitted literal stream is byte-identical to scan-order
// processing and the stream format is unchanged.
func compress3D(data []float64, dims []int, codes []int32, recon []float64, st *coreState, q *quantizer.Quantizer) {
	d0, d1, d2 := dims[0], dims[1], dims[2]
	if d0 == 0 || d1 == 0 || d2 == 0 {
		return
	}
	plane := d1 * d2
	nrows := d0 * d1
	wf := wfPool.Get().(*wfScratch)
	// Per-row literal segments in the arena: seg[2r] = start,
	// seg[2r+1] = length. Every row is visited exactly once, so no
	// clearing is needed.
	if cap(wf.seg) < 2*nrows {
		wf.seg = make([]int, 2*nrows)
	}
	seg := wf.seg[:2*nrows]
	arena := wf.arena[:0]
	ssum := st.sumSq

	for j := 0; j < d1; j++ {
		start := len(arena)
		arena, ssum = borderRow3D(data, recon, codes, 0, j, d2, plane, q, arena, ssum)
		seg[2*j], seg[2*j+1] = start, len(arena)-start
	}
	for i := 1; i < d0; i++ {
		start := len(arena)
		arena, ssum = borderRow3D(data, recon, codes, i, 0, d2, plane, q, arena, ssum)
		r := i * d1
		seg[2*r], seg[2*r+1] = start, len(arena)-start
	}

	qk := kernelQuant(q)
	for l := range wf.lit {
		if cap(wf.lit[l]) < d2 {
			wf.lit[l] = make([]float64, d2)
		}
	}
	var rows [4]kernels.PQRow
	setRow := func(row *kernels.PQRow, i, j int, lit []float64) {
		base := i*plane + j*d2
		row.Data = data[base : base+d2 : base+d2]
		row.Recon = recon[base : base+d2 : base+d2]
		row.Codes = codes[base : base+d2 : base+d2]
		row.Up = recon[base-d2 : base : base]                   // (i, j-1, ·)
		row.Pl = recon[base-plane : base-plane+d2]              // (i-1, j, ·)
		row.Pu = recon[base-plane-d2 : base-plane : base-plane] // (i-1, j-1, ·)
		row.Lits = lit[:0]
		row.SumSq = 0
	}
	flush := func(row *kernels.PQRow, i, j int) {
		r := i*d1 + j
		start := len(arena)
		arena = append(arena, row.Lits...)
		seg[2*r], seg[2*r+1] = start, len(row.Lits)
		ssum += row.SumSq
	}
	wavefront3D(d0, d1,
		func(i1, j1, i2, j2, i3, j3, i4, j4 int) {
			setRow(&rows[0], i1, j1, wf.lit[0])
			setRow(&rows[1], i2, j2, wf.lit[1])
			setRow(&rows[2], i3, j3, wf.lit[2])
			setRow(&rows[3], i4, j4, wf.lit[3])
			kernels.PredictQuantizeRows4(&qk, &rows[0], &rows[1], &rows[2], &rows[3])
			flush(&rows[0], i1, j1)
			flush(&rows[1], i2, j2)
			flush(&rows[2], i3, j3)
			flush(&rows[3], i4, j4)
		},
		func(i1, j1, i2, j2 int) {
			setRow(&rows[0], i1, j1, wf.lit[0])
			setRow(&rows[1], i2, j2, wf.lit[1])
			kernels.PredictQuantizeRows2(&qk, &rows[0], &rows[1])
			flush(&rows[0], i1, j1)
			flush(&rows[1], i2, j2)
		},
		func(i, j int) {
			setRow(&rows[0], i, j, wf.lit[0])
			kernels.PredictQuantizeRow(&qk, &rows[0])
			flush(&rows[0], i, j)
		})

	if len(arena) > 0 {
		lits := st.literals
		for r := 0; r < nrows; r++ {
			s, l := seg[2*r], seg[2*r+1]
			lits = append(lits, arena[s:s+l]...)
		}
		st.literals = lits
	}
	wf.arena = arena
	wfPool.Put(wf)
	st.sumSq = ssum
}

// decompressCore reconstructs one slab in place into out.
func decompressCore(out []float64, codes []int32, literals []float64, dims []int, q *quantizer.Quantizer) error {
	li := 0
	nextLiteral := func() (float64, error) {
		if li >= len(literals) {
			return 0, fmt.Errorf("sz: literal stream exhausted")
		}
		v := literals[li]
		li++
		return v, nil
	}
	switch len(dims) {
	case 1:
		prev := 0.0
		for i, c := range codes {
			if c == 0 {
				v, err := nextLiteral()
				if err != nil {
					return err
				}
				out[i] = v
			} else {
				out[i] = prev + q.Reconstruct(int(c))
			}
			prev = out[i]
		}
	case 2:
		// First row, then interior rows: the same interior/border split
		// as compress2D, with the stencil read from re-sliced rows so the
		// per-point bounds checks vanish.
		rows, cols := dims[0], dims[1]
		cur := out[0:cols:cols]
		prev := 0.0
		for j, c := range codes[0:cols:cols] {
			if c == 0 {
				v, err := nextLiteral()
				if err != nil {
					return err
				}
				cur[j] = v
			} else {
				cur[j] = prev + q.Reconstruct(int(c))
			}
			prev = cur[j]
		}
		for i := 1; i < rows; i++ {
			base := i * cols
			cur := out[base : base+cols : base+cols]
			crow := codes[base : base+cols : base+cols]
			up := out[base-cols : base : base]
			if c := crow[0]; c == 0 {
				v, err := nextLiteral()
				if err != nil {
					return err
				}
				cur[0] = v
			} else {
				cur[0] = up[0] + q.Reconstruct(int(c))
			}
			for j := 1; j < cols; j++ {
				c := crow[j]
				if c == 0 {
					v, err := nextLiteral()
					if err != nil {
						return err
					}
					cur[j] = v
					continue
				}
				cur[j] = cur[j-1] + up[j] - up[j-1] + q.Reconstruct(int(c))
			}
		}
	case 3:
		// The 3-D path reconstructs in the same wavefront order as
		// compress3D, pairing independent anti-diagonal rows into the
		// interleaved reconstruction kernels; literal positions are
		// recovered by a per-row zero-count pre-pass, since the literal
		// stream is stored in scan (row-major) order.
		return decompress3D(out, codes, literals, dims, q)
	default:
		return fmt.Errorf("sz: unsupported rank %d", len(dims))
	}
	if li != len(literals) {
		return fmt.Errorf("sz: %d literals left over", len(literals)-li)
	}
	return nil
}

// decompress3D reconstructs a 3-D slab in wavefront order: border rows
// (plane i = 0, then column j = 0) with the generic guarded stencil,
// then interior anti-diagonals through the grouped reconstruction
// kernels (kernels.ReconstructRows4/Rows2), whose interleaved loops
// overlap the rows' serial prediction chains. The literal stream is
// stored in scan order, so a counting pre-pass over the codes gives
// every row its exact literal segment and rows can then run in any
// dependency-respecting order.
func decompress3D(out []float64, codes []int32, literals []float64, dims []int, q *quantizer.Quantizer) error {
	d0, d1, d2 := dims[0], dims[1], dims[2]
	if d0 == 0 || d1 == 0 || d2 == 0 {
		if len(literals) != 0 {
			return fmt.Errorf("sz: %d literals left over", len(literals))
		}
		return nil
	}
	plane := d1 * d2
	nrows := d0 * d1
	wf := wfPool.Get().(*wfScratch)
	if cap(wf.offs) < nrows+1 {
		wf.offs = make([]int, nrows+1)
	}
	offs := wf.offs[:nrows+1]
	total := 0
	for r := 0; r < nrows; r++ {
		offs[r] = total
		base := r * d2
		z := 0
		for _, c := range codes[base : base+d2] {
			if c == 0 {
				z++
			}
		}
		total += z
	}
	offs[nrows] = total
	if total > len(literals) {
		wfPool.Put(wf)
		return fmt.Errorf("sz: literal stream exhausted")
	}
	if total < len(literals) {
		wfPool.Put(wf)
		return fmt.Errorf("sz: %d literals left over", len(literals)-total)
	}
	rowLits := func(i, j int) []float64 {
		r := i*d1 + j
		return literals[offs[r]:offs[r+1]:offs[r+1]]
	}

	border := func(i, j int) {
		lits := rowLits(i, j)
		li := 0
		base := i*plane + j*d2
		for k := 0; k < d2; k++ {
			idx := base + k
			c := codes[idx]
			if c == 0 {
				out[idx] = lits[li]
				li++
				continue
			}
			var x100, x010, x001, x110, x101, x011, x111 float64
			if i > 0 {
				x100 = out[idx-plane]
			}
			if j > 0 {
				x010 = out[idx-d2]
			}
			if k > 0 {
				x001 = out[idx-1]
			}
			if i > 0 && j > 0 {
				x110 = out[idx-plane-d2]
			}
			if i > 0 && k > 0 {
				x101 = out[idx-plane-1]
			}
			if j > 0 && k > 0 {
				x011 = out[idx-d2-1]
			}
			if i > 0 && j > 0 && k > 0 {
				x111 = out[idx-plane-d2-1]
			}
			pred := x100 + x010 + x001 - x110 - x101 - x011 + x111
			out[idx] = pred + q.Reconstruct(int(c))
		}
	}
	for j := 0; j < d1; j++ {
		border(0, j)
	}
	for i := 1; i < d0; i++ {
		border(i, 0)
	}

	qk := kernelQuant(q)
	var rows [4]kernels.RRRow
	setRow := func(row *kernels.RRRow, i, j int) {
		base := i*plane + j*d2
		row.Out = out[base : base+d2 : base+d2]
		row.Codes = codes[base : base+d2 : base+d2]
		row.Up = out[base-d2 : base : base]                   // (i, j-1, ·)
		row.Pl = out[base-plane : base-plane+d2]              // (i-1, j, ·)
		row.Pu = out[base-plane-d2 : base-plane : base-plane] // (i-1, j-1, ·)
		row.Lits = rowLits(i, j)
	}
	wavefront3D(d0, d1,
		func(i1, j1, i2, j2, i3, j3, i4, j4 int) {
			setRow(&rows[0], i1, j1)
			setRow(&rows[1], i2, j2)
			setRow(&rows[2], i3, j3)
			setRow(&rows[3], i4, j4)
			kernels.ReconstructRows4(&qk, &rows[0], &rows[1], &rows[2], &rows[3])
		},
		func(i1, j1, i2, j2 int) {
			setRow(&rows[0], i1, j1)
			setRow(&rows[1], i2, j2)
			kernels.ReconstructRows2(&qk, &rows[0], &rows[1])
		},
		func(i, j int) {
			setRow(&rows[0], i, j)
			kernels.ReconstructRow(&qk, &rows[0])
		})
	wfPool.Put(wf)
	return nil
}

// encodeChunk serializes one slab as a versioned lanes4 payload:
//
//	[codec.PayloadMarker][codec.PayloadVersionLanes4]
//	uvarint(npoints)
//	[codes flag] uvarint(codesLen) <four-lane Huffman block, raw or DEFLATE>
//	uvarint(litLen) <DEFLATE(uvarint(nlit) + literal bytes), litLen bytes>
//
// The quantization codes go through huffman.EncodeLanes4 and are usually
// stored uncompressed — on noisy chunks Huffman output is within ~0.1%
// of incompressible, so wrapping it in DEFLATE bought nothing but the
// dominant share of decode time. Smooth chunks, whose Huffman body is
// runs of one pattern, keep the DEFLATE wrap when it wins meaningfully
// (codec.CodesDeflateWins); the literal section (raw IEEE floats,
// genuinely compressible) is always deflated. The staging buffers and
// DEFLATE encoder come from sc (nil = fresh allocations); the returned
// payload shares no storage with the scratch pools. level 0 selects the
// purpose-built internal/deflate back-end, any other level the stdlib
// writer (see Scratch.AppendDeflate). capacity is the quantizer capacity
// that produced codes (every code is < capacity by construction), which
// lets the Huffman coder skip its validation pass.
func encodeChunk(codes []int32, literals []float64, prec field.Precision, capacity, level int, sc *codec.Scratch) ([]byte, error) {
	out := sc.Bytes(len(codes)/2 + len(literals)*8 + 64)
	out = append(out, codec.PayloadMarker, codec.PayloadVersionLanes4)
	out = binary.AppendUvarint(out, uint64(len(codes)))

	block := sc.Bytes(len(codes)/2 + 64)
	hs := sc.Huffman()
	block, err := huffman.EncodeLanes4(block, codes, capacity-1, hs)
	sc.PutHuffman(hs)
	if err != nil {
		sc.PutBytes(block)
		sc.PutBytes(out)
		return nil, err
	}
	comp, err := sc.AppendDeflate(sc.Bytes(len(block)/2+64), block, level)
	if err != nil {
		sc.PutBytes(comp)
		sc.PutBytes(block)
		sc.PutBytes(out)
		return nil, err
	}
	if codec.CodesDeflateWins(len(block), len(comp)) {
		out = append(out, codec.PayloadCodesDeflate)
		out = binary.AppendUvarint(out, uint64(len(comp)))
		out = append(out, comp...)
	} else {
		out = append(out, codec.PayloadCodesRaw)
		out = binary.AppendUvarint(out, uint64(len(block)))
		out = append(out, block...)
	}
	sc.PutBytes(comp)
	sc.PutBytes(block)

	raw := sc.Bytes(len(literals)*8 + 16)
	raw = binary.AppendUvarint(raw, uint64(len(literals)))
	raw = appendLiterals(raw, literals, prec)
	stage, err := sc.AppendDeflate(sc.Bytes(len(raw)/2+64), raw, level)
	sc.PutBytes(raw)
	if err != nil {
		sc.PutBytes(stage)
		sc.PutBytes(out)
		return nil, err
	}
	out = binary.AppendUvarint(out, uint64(len(stage)))
	out = append(out, stage...)
	sc.PutBytes(stage)

	// Hand back an exact-size copy, so append growth is amortized by the
	// pool and the returned payload carries no slack capacity.
	payload := append([]byte(nil), out...)
	sc.PutBytes(out)
	return payload, nil
}

// decodeChunk reverses encodeChunk (and, for streams written before the
// payload-version marker, the legacy whole-payload DEFLATE layout —
// dispatched on the first byte, which no DEFLATE stream can share). The
// inflate reader and staging buffer, the Huffman decode tables, and the
// returned codes and literals slices all come from sc (nil = fresh
// allocations); the caller owns the returned slices and should
// PutInts/PutFloats them when done.
func decodeChunk(payload []byte, prec field.Precision, sc *codec.Scratch) (codes []int32, literals []float64, err error) {
	if len(payload) >= 2 && payload[0] == codec.PayloadMarker {
		return decodeChunkLanes4(payload, prec, sc)
	}
	return decodeChunkLegacy(payload, prec, sc)
}

// decodeChunkLanes4 decodes a versioned lanes4 chunk payload.
func decodeChunkLanes4(payload []byte, prec field.Precision, sc *codec.Scratch) (codes []int32, literals []float64, err error) {
	if payload[1] != codec.PayloadVersionLanes4 {
		return nil, nil, fmt.Errorf("sz: unsupported chunk payload version %d", payload[1])
	}
	npoints, rest, err := readUvarint(payload[2:])
	if err != nil {
		return nil, nil, err
	}
	if len(rest) < 1 {
		return nil, nil, fmt.Errorf("sz: truncated codes section")
	}
	codesEnc := rest[0]
	codesLen, rest, err := readUvarint(rest[1:])
	if err != nil {
		return nil, nil, err
	}
	if codesLen > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("sz: codes section shorter than declared (%d < %d)", len(rest), codesLen)
	}
	block := rest[:codesLen]
	rest = rest[codesLen:]
	switch codesEnc {
	case codec.PayloadCodesRaw:
		// block is the lanes4 bitstream as stored — the fast path.
	case codec.PayloadCodesDeflate:
		fr := sc.FlateReader(bytes.NewReader(block))
		cbuf := sc.Buffer()
		defer sc.PutBuffer(cbuf)
		if _, err := cbuf.ReadFrom(fr); err != nil {
			fr.Close()
			sc.PutFlateReader(fr)
			return nil, nil, fmt.Errorf("inflate: %w", err)
		}
		if err := fr.Close(); err != nil {
			sc.PutFlateReader(fr)
			return nil, nil, err
		}
		sc.PutFlateReader(fr)
		block = cbuf.Bytes()
	default:
		return nil, nil, fmt.Errorf("sz: unknown codes encoding %d", codesEnc)
	}
	if npoints > uint64(len(block))*8 {
		// Every code costs at least one bit in its lane; reject a corrupt
		// count before sizing the code buffer from it. The check runs
		// against the materialized (post-inflate) block, since a deflated
		// codes section legitimately holds more symbols than 8× its
		// stored bytes.
		return nil, nil, fmt.Errorf("sz: %d codes cannot fit in %d codes-section bytes", npoints, len(block))
	}
	hd := sc.HuffDecode()
	codes, _, err = huffman.DecodeLanes4Into(sc.Int32s(int(npoints))[:0], block, hd)
	sc.PutHuffDecode(hd)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(codes)) != npoints {
		sc.PutInt32s(codes)
		return nil, nil, fmt.Errorf("sz: decoded %d codes, header says %d", len(codes), npoints)
	}
	litLen, rest, err := readUvarint(rest)
	if err != nil {
		sc.PutInt32s(codes)
		return nil, nil, err
	}
	if litLen > uint64(len(rest)) {
		sc.PutInt32s(codes)
		return nil, nil, fmt.Errorf("sz: literal section shorter than declared (%d < %d)", len(rest), litLen)
	}

	fr := sc.FlateReader(bytes.NewReader(rest[:litLen]))
	buf := sc.Buffer()
	defer sc.PutBuffer(buf)
	if _, err := buf.ReadFrom(fr); err != nil {
		fr.Close()
		sc.PutFlateReader(fr)
		sc.PutInt32s(codes)
		return nil, nil, fmt.Errorf("inflate: %w", err)
	}
	if err := fr.Close(); err != nil {
		sc.PutFlateReader(fr)
		sc.PutInt32s(codes)
		return nil, nil, err
	}
	sc.PutFlateReader(fr)
	nlit, lit, err := readUvarint(buf.Bytes())
	if err != nil {
		sc.PutInt32s(codes)
		return nil, nil, err
	}
	literals, err = readLiterals(lit, int(nlit), prec, sc)
	if err != nil {
		sc.PutInt32s(codes)
		return nil, nil, err
	}
	return codes, literals, nil
}

// decodeChunkLegacy decodes the pre-lane layout: the whole payload is one
// DEFLATE stream wrapping uvarint(npoints), the single-stream Huffman
// block, uvarint(nlit), and the literal bytes.
func decodeChunkLegacy(payload []byte, prec field.Precision, sc *codec.Scratch) (codes []int32, literals []float64, err error) {
	fr := sc.FlateReader(bytes.NewReader(payload))
	buf := sc.Buffer()
	defer sc.PutBuffer(buf)
	if _, err := buf.ReadFrom(fr); err != nil {
		fr.Close()
		sc.PutFlateReader(fr)
		return nil, nil, fmt.Errorf("inflate: %w", err)
	}
	if err := fr.Close(); err != nil {
		sc.PutFlateReader(fr)
		return nil, nil, err
	}
	sc.PutFlateReader(fr)
	raw := buf.Bytes()
	npoints, rest, err := readUvarint(raw)
	if err != nil {
		return nil, nil, err
	}
	if npoints > uint64(len(rest))*8 {
		// Every code costs at least one bit downstream; reject a corrupt
		// count before sizing the code buffer from it.
		return nil, nil, fmt.Errorf("sz: %d codes cannot fit in %d payload bytes", npoints, len(rest))
	}
	hd := sc.HuffDecode()
	codes, consumed, err := huffman.DecodeInto(sc.Int32s(int(npoints))[:0], rest, hd)
	sc.PutHuffDecode(hd)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(codes)) != npoints {
		sc.PutInt32s(codes)
		return nil, nil, fmt.Errorf("sz: decoded %d codes, header says %d", len(codes), npoints)
	}
	rest = rest[consumed:]
	nlit, rest, err := readUvarint(rest)
	if err != nil {
		sc.PutInt32s(codes)
		return nil, nil, err
	}
	literals, err = readLiterals(rest, int(nlit), prec, sc)
	if err != nil {
		sc.PutInt32s(codes)
		return nil, nil, err
	}
	return codes, literals, nil
}

func appendLiterals(b []byte, vals []float64, prec field.Precision) []byte {
	if prec == field.Float32 {
		var tmp [4]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(float32(v)))
			b = append(b, tmp[:]...)
		}
		return b
	}
	var tmp [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		b = append(b, tmp[:]...)
	}
	return b
}

func readLiterals(b []byte, n int, prec field.Precision, sc *codec.Scratch) ([]float64, error) {
	size := prec.Bytes()
	if len(b) < n*size {
		return nil, fmt.Errorf("sz: literal stream truncated (%d < %d)", len(b), n*size)
	}
	out := sc.Floats(n)
	if prec == field.Float32 {
		for i := 0; i < n; i++ {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// estimateCapacity samples first-phase prediction errors (predicting from
// original values, which is a close proxy for the reconstructed-value
// predictions) and returns the smallest power-of-two capacity ≥ 256 whose
// interval range captures at least 99% of them, capped at the default
// capacity.
func estimateCapacity(data []float64, dims []int, eb float64) int {
	const (
		maxSamples = 1 << 16
		hitTarget  = 0.99
	)
	n := len(data)
	stride := n / maxSamples
	if stride < 1 {
		stride = 1
	}
	delta := 2 * eb
	// Collect |q| for sampled points using the rank-matched predictor on
	// original data.
	var absIdx []float64
	switch len(dims) {
	case 1:
		for i := stride; i < n; i += stride {
			absIdx = append(absIdx, math.Abs((data[i]-data[i-1])/delta))
		}
	case 2:
		cols := dims[1]
		for idx := stride; idx < n; idx += stride {
			i, j := idx/cols, idx%cols
			var a, b, d float64
			if j > 0 {
				a = data[idx-1]
			}
			if i > 0 {
				b = data[idx-cols]
				if j > 0 {
					d = data[idx-cols-1]
				}
			}
			absIdx = append(absIdx, math.Abs((data[idx]-(a+b-d))/delta))
		}
	case 3:
		d1, d2 := dims[1], dims[2]
		plane := d1 * d2
		for idx := stride; idx < n; idx += stride {
			i := idx / plane
			rem := idx % plane
			j := rem / d2
			k := rem % d2
			var x100, x010, x001, x110, x101, x011, x111 float64
			if i > 0 {
				x100 = data[idx-plane]
			}
			if j > 0 {
				x010 = data[idx-d2]
			}
			if k > 0 {
				x001 = data[idx-1]
			}
			if i > 0 && j > 0 {
				x110 = data[idx-plane-d2]
			}
			if i > 0 && k > 0 {
				x101 = data[idx-plane-1]
			}
			if j > 0 && k > 0 {
				x011 = data[idx-d2-1]
			}
			if i > 0 && j > 0 && k > 0 {
				x111 = data[idx-plane-d2-1]
			}
			pred := x100 + x010 + x001 - x110 - x101 - x011 + x111
			absIdx = append(absIdx, math.Abs((data[idx]-pred)/delta))
		}
	}
	if len(absIdx) == 0 {
		return quantizer.DefaultCapacity
	}
	for capacity := 256; capacity < quantizer.DefaultCapacity; capacity *= 2 {
		radius := float64(capacity / 2)
		hits := 0
		for _, a := range absIdx {
			if a < radius-0.5 {
				hits++
			}
		}
		if float64(hits)/float64(len(absIdx)) >= hitTarget {
			return capacity
		}
	}
	return quantizer.DefaultCapacity
}
