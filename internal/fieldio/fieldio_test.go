package fieldio

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"fixedpsnr/internal/field"
)

func testField(prec field.Precision, dims ...int) *field.Field {
	f := field.New("test/field-1", prec, dims...)
	rng := rand.New(rand.NewSource(1))
	for i := range f.Data {
		v := rng.NormFloat64() * 1e3
		if prec == field.Float32 {
			v = float64(float32(v))
		}
		f.Data[i] = v
	}
	return f
}

func TestRoundTripFloat32(t *testing.T) {
	f := testField(field.Float32, 7, 9)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != f.Name || !f.SameShape(g) || g.Precision != field.Float32 {
		t.Fatalf("metadata mismatch: %v", g)
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("value %d: %g != %g", i, f.Data[i], g.Data[i])
		}
	}
}

func TestRoundTripFloat64(t *testing.T) {
	f := testField(field.Float64, 3, 4, 5)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestSpecialValuesSurvive(t *testing.T) {
	f := field.New("special", field.Float64, 4)
	f.Data[0] = math.NaN()
	f.Data[1] = math.Inf(1)
	f.Data[2] = math.Inf(-1)
	f.Data[3] = math.Copysign(0, -1)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(g.Data[0]) || !math.IsInf(g.Data[1], 1) || !math.IsInf(g.Data[2], -1) {
		t.Fatal("special values lost")
	}
	if math.Signbit(g.Data[3]) != true {
		t.Fatal("negative zero lost")
	}
}

func TestWriteRejectsInvalidField(t *testing.T) {
	bad := &field.Field{Name: "bad", Dims: []int{2}, Data: make([]float64, 3)}
	if err := Write(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX rest"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	f := testField(field.Float32, 10)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, 5, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("expected error at cut %d", cut)
		}
	}
}

func TestReadRejectsBadPrecision(t *testing.T) {
	f := testField(field.Float32, 4)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 7 // precision byte
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected precision error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "field.sdf")
	f := testField(field.Float32, 12, 8)
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatal("file round trip mismatch")
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.sdf")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
