// Package fieldio persists fields in a small self-describing binary
// format ("SDF1"), the on-disk representation used by the CLI tools:
//
//	magic "SDF1"        4 bytes
//	precision           1 byte (0 = float32, 1 = float64)
//	name                uvarint length + bytes
//	ndims, dims...      uvarints
//	values              little-endian IEEE-754 at the declared precision
//
// The format exists so the compressor CLI can round-trip data sets without
// external dependencies; it is deliberately minimal (no chunking, no
// attributes).
package fieldio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"fixedpsnr/internal/field"
)

// Magic identifies a field file.
var Magic = [4]byte{'S', 'D', 'F', '1'}

// Write serializes the field to w at its declared precision.
func Write(w io.Writer, f *field.Field) error {
	if err := f.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(f.Precision)); err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(f.Name)))
	hdr = append(hdr, f.Name...)
	hdr = binary.AppendUvarint(hdr, uint64(len(f.Dims)))
	for _, d := range f.Dims {
		hdr = binary.AppendUvarint(hdr, uint64(d))
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var buf [8]byte
	if f.Precision == field.Float32 {
		for _, v := range f.Data {
			binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(float32(v)))
			if _, err := bw.Write(buf[:4]); err != nil {
				return err
			}
		}
	} else {
		for _, v := range f.Data {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a field written by Write.
func Read(r io.Reader) (*field.Field, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("fieldio: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("fieldio: bad magic %q", magic[:])
	}
	precByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	prec := field.Precision(precByte)
	if prec != field.Float32 && prec != field.Float64 {
		return nil, fmt.Errorf("fieldio: unknown precision %d", precByte)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fieldio: reading name length: %w", err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("fieldio: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	ndims, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ndims == 0 || ndims > 3 {
		return nil, fmt.Errorf("fieldio: unsupported rank %d", ndims)
	}
	dims := make([]int, ndims)
	total := 1
	for i := range dims {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<32 {
			return nil, fmt.Errorf("fieldio: bad dimension %d", d)
		}
		dims[i] = int(d)
		total *= int(d)
		if total > 1<<31 {
			return nil, fmt.Errorf("fieldio: field too large (%v)", dims)
		}
	}
	f := field.New(string(nameBuf), prec, dims...)
	if prec == field.Float32 {
		buf := make([]byte, 4*4096)
		for off := 0; off < total; {
			n := len(buf) / 4
			if total-off < n {
				n = total - off
			}
			if _, err := io.ReadFull(br, buf[:n*4]); err != nil {
				return nil, fmt.Errorf("fieldio: reading values: %w", err)
			}
			for i := 0; i < n; i++ {
				f.Data[off+i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
			}
			off += n
		}
	} else {
		buf := make([]byte, 8*4096)
		for off := 0; off < total; {
			n := len(buf) / 8
			if total-off < n {
				n = total - off
			}
			if _, err := io.ReadFull(br, buf[:n*8]); err != nil {
				return nil, fmt.Errorf("fieldio: reading values: %w", err)
			}
			for i := 0; i < n; i++ {
				f.Data[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
			}
			off += n
		}
	}
	return f, nil
}

// WriteFile writes the field to path, creating parent directories.
func WriteFile(path string, f *field.Field) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(w, f); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ReadFile reads a field from path.
func ReadFile(path string) (*field.Field, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Read(r)
}
