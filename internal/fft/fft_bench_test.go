package fft

import "testing"

func BenchmarkForward1K(b *testing.B)   { benchmarkForward(b, 1<<10) }
func BenchmarkForward64K(b *testing.B)  { benchmarkForward(b, 1<<16) }
func BenchmarkForward256K(b *testing.B) { benchmarkForward(b, 1<<18) }

func benchmarkForward(b *testing.B, n int) {
	x := randComplex(n, 1)
	work := make([]complex128, n)
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		if err := Forward(work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInverseND3D(b *testing.B) {
	dims := []int{32, 64, 64}
	n := 32 * 64 * 64
	x := randComplex(n, 2)
	work := make([]complex128, n)
	b.SetBytes(int64(n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		if err := InverseND(work, dims, 0); err != nil {
			b.Fatal(err)
		}
	}
}
