// Package fft implements an iterative radix-2 complex FFT plus the
// separable N-dimensional transforms built on it. The synthetic data set
// generator uses it for spectral synthesis of Gaussian random fields;
// nothing here depends on the rest of the module.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"fixedpsnr/internal/parallel"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two ≥ n (n ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place forward DFT of x (length must be a power
// of two): X[k] = Σ x[j]·exp(−2πi·jk/N).
func Forward(x []complex128) error { return transform(x, false) }

// Inverse computes the in-place inverse DFT of x including the 1/N
// normalization, so Inverse(Forward(x)) == x up to rounding.
func Inverse(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	n := float64(len(x))
	for i := range x {
		x[i] /= complex(n, 0)
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for lo := 0; lo < n; lo += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[lo+k]
				b := x[lo+k+half] * w
				x[lo+k] = a + b
				x[lo+k+half] = a - b
				w *= step
			}
		}
	}
	return nil
}

// InverseND computes the in-place inverse DFT of an N-dimensional array
// stored row-major in x with the given power-of-two dims, parallelizing
// the line transforms across `workers` goroutines. The full 1/N
// normalization is applied.
func InverseND(x []complex128, dims []int, workers int) error {
	total := 1
	for _, d := range dims {
		if !IsPow2(d) {
			return fmt.Errorf("fft: dimension %d is not a power of two", d)
		}
		total *= d
	}
	if total != len(x) {
		return fmt.Errorf("fft: dims %v imply %d values, have %d", dims, total, len(x))
	}
	// Transform along each axis in turn. For axis a with length L, the
	// array decomposes into total/L independent lines with stride equal
	// to the product of the dimensions after axis a.
	for a := len(dims) - 1; a >= 0; a-- {
		L := dims[a]
		stride := 1
		for j := a + 1; j < len(dims); j++ {
			stride *= dims[j]
		}
		nlines := total / L
		err := parallel.ForEach(nlines, workers, func(line int) error {
			// Decompose the line index into (outer, inner) where
			// inner < stride indexes within the fastest block and
			// outer indexes the blocks before axis a.
			outer := line / stride
			inner := line % stride
			base := outer*L*stride + inner
			buf := make([]complex128, L)
			for k := 0; k < L; k++ {
				buf[k] = x[base+k*stride]
			}
			if err := transform(buf, true); err != nil {
				return err
			}
			inv := 1 / float64(L)
			for k := 0; k < L; k++ {
				x[base+k*stride] = buf[k] * complex(inv, 0)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
