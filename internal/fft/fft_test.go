package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Fatalf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1023} {
		if IsPow2(n) {
			t.Fatalf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048, 0: 1, -3: 1}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestForwardRejectsNonPow2(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Fatal("expected error for length 3")
	}
}

func TestForwardKnownDFT(t *testing.T) {
	// DFT of [1, 0, 0, 0] is all ones.
	x := []complex128{1, 0, 0, 0}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("X[%d] = %v, want 1", i, v)
		}
	}
	// DFT of constant 1 is a delta at k=0 of height N.
	y := []complex128{1, 1, 1, 1}
	if err := Forward(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[0]-4) > 1e-12 {
		t.Fatalf("Y[0] = %v, want 4", y[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(y[k]) > 1e-12 {
			t.Fatalf("Y[%d] = %v, want 0", k, y[k])
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	n := 16
	x := randComplex(n, 1)
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			want[k] += x[j] * cmplx.Exp(complex(0, ang))
		}
	}
	got := append([]complex128(nil), x...)
	if err := Forward(got); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(got, want); d > 1e-10 {
		t.Fatalf("max diff vs naive DFT = %g", d)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 512} {
		x := randComplex(n, int64(n))
		orig := append([]complex128(nil), x...)
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(x, orig); d > 1e-10 {
			t.Fatalf("n=%d: round-trip max diff %g", n, d)
		}
	}
}

func TestParseval(t *testing.T) {
	n := 256
	x := randComplex(n, 5)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
		t.Fatalf("Parseval violated: %g vs %g", timeEnergy, freqEnergy)
	}
}

func TestInverseNDRoundTrip2D(t *testing.T) {
	dims := []int{8, 16}
	n := dims[0] * dims[1]
	x := randComplex(n, 9)
	orig := append([]complex128(nil), x...)
	// Forward along both axes manually, then InverseND must restore.
	// Axis 1 (rows).
	for r := 0; r < dims[0]; r++ {
		row := x[r*dims[1] : (r+1)*dims[1]]
		if err := Forward(row); err != nil {
			t.Fatal(err)
		}
	}
	// Axis 0 (columns).
	col := make([]complex128, dims[0])
	for c := 0; c < dims[1]; c++ {
		for r := 0; r < dims[0]; r++ {
			col[r] = x[r*dims[1]+c]
		}
		if err := Forward(col); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < dims[0]; r++ {
			x[r*dims[1]+c] = col[r]
		}
	}
	if err := InverseND(x, dims, 2); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(x, orig); d > 1e-10 {
		t.Fatalf("2-D round trip max diff %g", d)
	}
}

func TestInverseND3DDelta(t *testing.T) {
	dims := []int{4, 4, 4}
	n := 64
	x := make([]complex128, n)
	// Constant spectrum == delta at origin after inverse, scaled by 1/N... a
	// delta spectrum at k=0 gives a constant field of 1/N·N = value 1/N*…:
	// simply verify InverseND of a delta at k=0 with amplitude N is all ones.
	x[0] = complex(float64(n), 0)
	if err := InverseND(x, dims, 1); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("x[%d] = %v, want 1", i, v)
		}
	}
}

func TestInverseNDValidates(t *testing.T) {
	if err := InverseND(make([]complex128, 6), []int{2, 3}, 1); err == nil {
		t.Fatal("expected error for non-pow2 dimension")
	}
	if err := InverseND(make([]complex128, 7), []int{2, 4}, 1); err == nil {
		t.Fatal("expected error for dims/length mismatch")
	}
}
