package bitstream

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// opStream interprets fuzz bytes as a deterministic op program: each op is
// 10 bytes — 1 selector, 1 width, 8 value — so the corpus explores mixed
// WriteBit/WriteBits then mixed ReadBit/ReadBits schedules at arbitrary
// bit offsets.
type fuzzOp struct {
	wide  bool
	width uint
	v     uint64
}

func decodeOps(data []byte) []fuzzOp {
	var ops []fuzzOp
	for len(data) >= 10 && len(ops) < 512 {
		width := uint(data[1]%64) + 1 // 1..64
		ops = append(ops, fuzzOp{
			wide:  data[0]&1 == 1,
			width: width,
			v:     binary.LittleEndian.Uint64(data[2:10]),
		})
		data = data[10:]
	}
	return ops
}

// FuzzWriterDifferential checks the word-at-a-time Writer emits bytes
// identical to the bit-at-a-time reference for any write schedule.
func FuzzWriterDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 2, 0xff, 0, 0, 0, 0, 0, 0, 0, 1, 55, 0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe, 0x01, 0x02})
	f.Add(bytes.Repeat([]byte{1, 63, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55}, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeOps(data)
		w := &Writer{}
		ref := &refWriter{}
		for _, op := range ops {
			if op.wide {
				w.WriteBits(op.v, op.width)
				ref.WriteBits(op.v, op.width)
			} else {
				w.WriteBit(uint(op.v & 1))
				ref.WriteBit(uint(op.v & 1))
			}
			if w.Bits() != ref.bits {
				t.Fatalf("Bits() = %d, reference %d", w.Bits(), ref.bits)
			}
		}
		got, want := w.Bytes(), ref.Bytes()
		if !bytes.Equal(got, want) {
			t.Fatalf("writer bytes differ:\n got %x\nwant %x", got, want)
		}
	})
}

// FuzzReaderDifferential checks the word-at-a-time Reader returns the
// identical (value, err) sequence — and identical Remaining() at every
// step, including the exhausted terminal state — as the bit-at-a-time
// reference, for any buffer and any read schedule.
func FuzzReaderDifferential(f *testing.F) {
	f.Add([]byte{}, []byte{0xff})
	f.Add([]byte{0, 1, 0, 0, 0, 0, 0, 0, 0, 0}, []byte{0xde, 0xad})
	// Exhaustion at every bit offset: wide reads against a short buffer.
	f.Add(bytes.Repeat([]byte{1, 12, 0, 0, 0, 0, 0, 0, 0, 0}, 8), []byte{0xab, 0xcd, 0xef})
	f.Add(bytes.Repeat([]byte{1, 63, 0, 0, 0, 0, 0, 0, 0, 0}, 4), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, program, buf []byte) {
		ops := decodeOps(program)
		r := NewReader(buf)
		ref := &refReader{buf: buf}
		for i, op := range ops {
			var gv, wv uint64
			var gerr, werr error
			if op.wide {
				gv, gerr = r.ReadBits(op.width)
				wv, werr = ref.ReadBits(op.width)
			} else {
				var gb, wb uint
				gb, gerr = r.ReadBit()
				wb, werr = ref.ReadBit()
				gv, wv = uint64(gb), uint64(wb)
			}
			if gv != wv || (gerr == nil) != (werr == nil) {
				t.Fatalf("op %d (wide=%v width=%d): got (%d, %v), reference (%d, %v)",
					i, op.wide, op.width, gv, gerr, wv, werr)
			}
			if werr != nil {
				// Both readers must now be in the exhausted terminal state.
				if r.Remaining() != 0 || ref.Remaining() != 0 {
					t.Fatalf("op %d: Remaining after error = %d, reference %d", i, r.Remaining(), ref.Remaining())
				}
				continue
			}
			if r.Remaining() != ref.Remaining() {
				t.Fatalf("op %d: Remaining = %d, reference %d", i, r.Remaining(), ref.Remaining())
			}
		}
	})
}

// FuzzPeekConsume checks the Peek/Consume primitives against plain reads:
// peeking then consuming must yield exactly what ReadBits yields on an
// identical reader, and Consume past the end must fail exactly when
// ReadBits fails.
func FuzzPeekConsume(f *testing.F) {
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint(11))
	f.Add([]byte{1}, uint(13))
	f.Add([]byte{}, uint(1))
	f.Fuzz(func(t *testing.T, buf []byte, seed uint) {
		width := seed%57 + 1 // 1..57
		pk := NewReader(buf)
		rd := NewReader(buf)
		for {
			got := pk.Peek(width)
			cerr := pk.Consume(width)
			want, rerr := rd.ReadBits(width)
			if (cerr == nil) != (rerr == nil) {
				t.Fatalf("width %d: Consume err %v, ReadBits err %v", width, cerr, rerr)
			}
			if rerr != nil {
				// Peek must have zero-padded: the valid prefix of got is
				// whatever was left, which ReadBits refused to deliver.
				if pk.Remaining() != 0 || rd.Remaining() != 0 {
					t.Fatalf("width %d: exhausted readers report %d/%d remaining", width, pk.Remaining(), rd.Remaining())
				}
				return
			}
			if got != want {
				t.Fatalf("width %d: Peek+Consume = %x, ReadBits = %x", width, got, want)
			}
			if pk.Remaining() != rd.Remaining() {
				t.Fatalf("width %d: Remaining %d vs %d", width, pk.Remaining(), rd.Remaining())
			}
		}
	})
}
