// Package bitstream implements MSB-first bit-level writers and readers.
// The Huffman stage of the compressors uses it to pack variable-length
// codes densely; it is also reused by the transform compressor's
// sign/significance planes.
//
// Both directions operate word-at-a-time: the Writer stages bits in a
// 64-bit accumulator and flushes whole groups of bytes per call, and the
// Reader refills a 64-bit window from up to 8 input bytes at once, so the
// per-bit function call and error check of a naive implementation never
// appear on the hot path. The emitted bytes are identical to the original
// bit-at-a-time implementation (retained as the reference in the
// differential fuzz tests).
package bitstream

import (
	"encoding/binary"
	"errors"
)

// ErrOutOfBits is returned by Reader methods when the stream is exhausted.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Writer accumulates bits most-significant-first into a byte buffer.
// The zero value is ready to use.
//
// Lifecycle: write bits, call Bytes once to flush and read the result,
// then Reset before reusing the Writer — Bytes pads the final partial
// byte, so writing after Bytes without a Reset would corrupt the stream
// (Writer panics on that misuse rather than emitting garbage).
type Writer struct {
	buf    []byte
	cur    uint64 // bits staged, right-aligned in the low `n` bits
	n      uint   // number of staged bits (< 8 between calls)
	bits   int    // total bits written
	sealed bool   // Bytes has flushed; writes are invalid until Reset
}

// NewWriter returns a Writer with capacity hint of n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Reset discards all written bits, retaining the underlying buffer, so a
// pooled Writer can be reused without reallocating. It is the documented
// way to write again after Bytes.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.n, w.bits = 0, 0, 0
	w.sealed = false
}

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *Writer) WriteBit(b uint) {
	if w.sealed {
		panic("bitstream: Write after Bytes without Reset")
	}
	w.cur = w.cur<<1 | uint64(b&1)
	w.n++
	w.bits++
	if w.n == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.n = 0, 0
	}
}

// WriteBits appends the low `width` bits of v, most significant first.
// Widths above 56 split into two staged writes; width must be ≤ 64.
func (w *Writer) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if w.sealed {
		panic("bitstream: Write after Bytes without Reset")
	}
	if width > 56 {
		// split: high part then low 32
		w.writeBits(v>>32, width-32)
		w.writeBits(v&0xffffffff, 32)
		return
	}
	w.writeBits(v, width)
}

// writeBits is the staging fast path for width ≤ 56: one shift-or into the
// accumulator, then a single multi-byte flush of every completed byte.
// The flush stores a full 8-byte word and truncates the length back to
// the 1–7 bytes actually completed — when capacity allows — so the hot
// path is one branch and one store, with no memmove/growslice call per
// flush; the bytes emitted are identical to the append path it falls
// back to near the end of the buffer.
func (w *Writer) writeBits(v uint64, width uint) {
	w.cur = w.cur<<width | (v & (1<<width - 1))
	w.n += width
	w.bits += int(width)
	if w.n >= 8 {
		k := w.n >> 3 // 1..7 whole bytes ready
		w.n &= 7
		word := w.cur >> w.n << (64 - 8*k)
		if n := len(w.buf); cap(w.buf)-n >= 8 {
			w.buf = w.buf[: n+8 : cap(w.buf)]
			binary.BigEndian.PutUint64(w.buf[n:], word)
			w.buf = w.buf[:n+int(k)]
		} else {
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], word)
			w.buf = append(w.buf, tmp[:k]...)
		}
		w.cur &= 1<<w.n - 1
	}
}

// Bits returns the total number of bits written so far.
func (w *Writer) Bits() int { return w.bits }

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// underlying buffer. The Writer is sealed afterwards: call Reset before
// writing again (writes without a Reset panic).
func (w *Writer) Bytes() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.n)))
		w.cur, w.n = 0, 0
	}
	w.sealed = true
	return w.buf
}

// Reader consumes bits most-significant-first from a byte slice. It keeps
// a 64-bit staging window refilled from up to 8 input bytes at a time, so
// short reads are branch-light: one window check, one shift.
type Reader struct {
	buf []byte
	pos int    // next byte to refill from
	w   uint64 // staging window, left-aligned (next stream bit at bit 63)
	wn  uint   // number of valid bits in w
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset points the Reader at buf and rewinds it, retaining no state from
// the previous stream, so a pooled Reader can be reused across chunks.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.w, r.wn = 0, 0
}

// refill tops the staging window up to ≥ 57 valid bits (or to the end of
// the stream), loading 8 bytes in one aligned read when possible. The
// fast path is deliberately branch- and loop-free so refill inlines into
// the packed decode loops (and into Refill4): OR a full 8-byte load
// under the valid bits, then account exactly the whole bytes that fit.
// The unaccounted low bits are the true next bits of the stream, so
// re-ORing them on a later refill is idempotent — which also makes wn==0
// just the degenerate OR into an all-shifted-out window (and nets the
// full 64 bits).
func (r *Reader) refill() {
	if r.pos+8 <= len(r.buf) {
		k := (64 - r.wn) >> 3
		r.w |= binary.BigEndian.Uint64(r.buf[r.pos:]) >> r.wn
		r.pos += int(k)
		r.wn += k << 3
		return
	}
	r.refillTail()
}

// refillTail is the end-of-stream byte-at-a-time refill.
func (r *Reader) refillTail() {
	for r.wn <= 56 && r.pos < len(r.buf) {
		r.w |= uint64(r.buf[r.pos]) << (56 - r.wn)
		r.wn += 8
		r.pos++
	}
}

// Peek returns the next `width` bits MSB-first without consuming them,
// zero-padded when fewer bits remain. width must be ≤ 57.
func (r *Reader) Peek(width uint) uint64 {
	if r.wn < width {
		r.refill()
	}
	return r.w >> (64 - width)
}

// Consume advances the reader past `width` bits, which must have been
// Peeked (width ≤ 57). It fails with ErrOutOfBits when fewer than `width`
// bits remain, leaving the reader exhausted — the same terminal state a
// failed ReadBits leaves.
func (r *Reader) Consume(width uint) error {
	if width > r.wn {
		r.refill()
		if width > r.wn {
			r.exhaust()
			return ErrOutOfBits
		}
	}
	r.w <<= width
	r.wn -= width
	return nil
}

// exhaust moves the reader to the terminal empty state.
func (r *Reader) exhaust() {
	r.pos = len(r.buf)
	r.w, r.wn = 0, 0
}

// Refill tops the staging window up to ≥ 57 valid bits (or to the end of
// the stream). It is the explicit form of the refill Peek performs,
// letting a tight decode loop refill once and then consume several
// variable-length codes from the window with no per-code checks:
//
//	if r.Buffered() < maxLen { r.Refill() }
//	w := r.Window()          // next bits, MSB-aligned, zero-padded
//	l := lengthOf(w)         // decoder-specific
//	if l > r.Buffered() { …exhausted… }
//	r.Skip(l)
func (r *Reader) Refill() { r.refill() }

// Buffered returns the number of valid bits currently staged in the
// window — the maximum width Skip may consume without a Refill.
func (r *Reader) Buffered() uint { return r.wn }

// Window returns the staging window: the next Buffered() bits of the
// stream, MSB-aligned at bit 63, zero-padded beyond. It does not refill
// or consume.
func (r *Reader) Window() uint64 { return r.w }

// Skip consumes width bits from the staging window without any checks;
// the caller must ensure width ≤ Buffered(). Checked consumption is
// Consume.
func (r *Reader) Skip(width uint) {
	r.w <<= width
	r.wn -= width
}

// Refill4 tops up four readers' staging windows in one fused call — the
// multi-stream decode loops (huffman.DecodeLanes4Into) keep four
// independent lane readers in flight and refill them together once per
// round, so the four memory loads issue back to back instead of being
// interleaved with each lane's symbol resolution. Each window ends up
// with ≥ 57 valid bits or the remainder of its lane's stream, exactly as
// four Refill calls would leave them.
func Refill4(a, b, c, d *Reader) {
	a.refill()
	b.refill()
	c.refill()
	d.refill()
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.wn == 0 {
		r.refill()
		if r.wn == 0 {
			r.exhaust()
			return 0, ErrOutOfBits
		}
	}
	b := uint(r.w >> 63)
	r.w <<= 1
	r.wn--
	return b, nil
}

// ReadBits reads `width` bits MSB-first and returns them in the low bits
// of the result. width must be ≤ 64. When fewer than `width` bits remain
// the reader consumes them all and returns ErrOutOfBits (matching the
// bit-at-a-time reference: a failed wide read leaves the reader
// exhausted).
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width == 0 {
		return 0, nil
	}
	if width <= 57 {
		if r.wn < width {
			r.refill()
			if r.wn < width {
				r.exhaust()
				return 0, ErrOutOfBits
			}
		}
		v := r.w >> (64 - width)
		r.w <<= width
		r.wn -= width
		return v, nil
	}
	hi, err := r.ReadBits(width - 32)
	if err != nil {
		return 0, err
	}
	lo, err := r.ReadBits(32)
	if err != nil {
		return 0, err
	}
	return hi<<32 | lo, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.wn)
}
