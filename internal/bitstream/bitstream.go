// Package bitstream implements MSB-first bit-level writers and readers.
// The Huffman stage of the compressors uses it to pack variable-length
// codes densely; it is also reused by the transform compressor's
// sign/significance planes.
package bitstream

import (
	"errors"
)

// ErrOutOfBits is returned by Reader methods when the stream is exhausted.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Writer accumulates bits most-significant-first into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bits staged, left-aligned in the low `n` bits
	n    uint   // number of staged bits (< 8 after flushCur)
	bits int    // total bits written
}

// NewWriter returns a Writer with capacity hint of n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.n++
	w.bits++
	if w.n == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.n = 0, 0
	}
}

// WriteBits appends the low `width` bits of v, most significant first.
// width must be ≤ 56 so the staging word cannot overflow.
func (w *Writer) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width > 56 {
		// split: high part then low 32
		w.WriteBits(v>>32, width-32)
		w.WriteBits(v&0xffffffff, 32)
		return
	}
	w.cur = w.cur<<width | (v & (1<<width - 1))
	w.n += width
	w.bits += int(width)
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.cur>>w.n))
	}
	w.cur &= 1<<w.n - 1
}

// Bits returns the total number of bits written so far.
func (w *Writer) Bits() int { return w.bits }

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// underlying buffer. The Writer remains usable only for reading the result;
// further writes after Bytes are a programming error.
func (w *Writer) Bytes() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.n)))
		w.cur, w.n = 0, 0
	}
	return w.buf
}

// Reader consumes bits most-significant-first from a byte slice.
type Reader struct {
	buf []byte
	pos int  // byte position
	cur uint // bit position within buf[pos] (0 = MSB)
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	b := (r.buf[r.pos] >> (7 - r.cur)) & 1
	r.cur++
	if r.cur == 8 {
		r.cur = 0
		r.pos++
	}
	return uint(b), nil
}

// ReadBits reads `width` bits MSB-first and returns them in the low bits of
// the result. width must be ≤ 64.
func (r *Reader) ReadBits(width uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.cur)
}
