package bitstream

// The bit-at-a-time Writer/Reader this package shipped before the
// word-at-a-time rewrite, retained verbatim as the differential-testing
// oracle: the fuzzers below require the optimized implementations to
// produce identical bytes out and identical (value, err) sequences in,
// including the exhausted terminal state at every bit offset.

// refWriter is the original byte-at-a-time Writer.
type refWriter struct {
	buf  []byte
	cur  uint64
	n    uint
	bits int
}

func (w *refWriter) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.n++
	w.bits++
	if w.n == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.n = 0, 0
	}
}

func (w *refWriter) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width > 56 {
		w.WriteBits(v>>32, width-32)
		w.WriteBits(v&0xffffffff, 32)
		return
	}
	w.cur = w.cur<<width | (v & (1<<width - 1))
	w.n += width
	w.bits += int(width)
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.cur>>w.n))
	}
	w.cur &= 1<<w.n - 1
}

func (w *refWriter) Bytes() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.n)))
		w.cur, w.n = 0, 0
	}
	return w.buf
}

// refReader is the original bit-at-a-time Reader.
type refReader struct {
	buf []byte
	pos int
	cur uint
}

func (r *refReader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	b := (r.buf[r.pos] >> (7 - r.cur)) & 1
	r.cur++
	if r.cur == 8 {
		r.cur = 0
		r.pos++
	}
	return uint(b), nil
}

func (r *refReader) ReadBits(width uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

func (r *refReader) Remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.cur)
}
