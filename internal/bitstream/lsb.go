package bitstream

import "encoding/binary"

// LSBWriter accumulates bits least-significant-first into a byte buffer —
// the bit order DEFLATE (RFC 1951) uses, where the first bit of the
// stream occupies the least significant bit of the first byte. It is the
// LSB-first sibling of Writer and follows the same word-at-a-time
// pattern: bits are staged in a 64-bit accumulator and every completed
// byte is flushed with a single LittleEndian.PutUint64 per call, so the
// per-bit loop of a naive implementation never appears on the hot path.
//
// The zero value is ready to use. Unlike Writer there is no sealing:
// Bytes flushes the final partial byte (zero-padded in its high bits)
// and the caller is expected to Reset before reuse.
type LSBWriter struct {
	buf []byte
	cur uint64 // staged bits, the next stream bit at bit `n`
	n   uint   // number of staged bits (< 8 between calls)
}

// NewLSBWriter returns an LSBWriter with a capacity hint of n bytes.
func NewLSBWriter(n int) *LSBWriter {
	return &LSBWriter{buf: make([]byte, 0, n)}
}

// Reset discards all written bits, retaining the underlying buffer.
func (w *LSBWriter) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.n = 0, 0
}

// ResetTo rewinds the writer and arranges for subsequent writes to
// append to buf (which may hold existing, byte-aligned content). The
// caller receives the combined slice back from Bytes.
func (w *LSBWriter) ResetTo(buf []byte) {
	w.buf = buf
	w.cur, w.n = 0, 0
}

// WriteBits appends the low `width` bits of v, least significant first.
// width must be ≤ 56 and v must have no bits set at or above `width`
// (DEFLATE emitters always satisfy both: the longest single item is a
// 15-bit code followed by 13 extra bits, written separately).
func (w *LSBWriter) WriteBits(v uint64, width uint) {
	w.cur |= v << w.n
	w.n += width
	if w.n >= 8 {
		k := w.n >> 3 // 1..7 whole bytes ready
		// Store a full 8-byte word and truncate to the completed bytes
		// when capacity allows: one branch and one store per flush,
		// no memmove/growslice call. Identical bytes to the append
		// fallback taken near the end of the buffer.
		if n := len(w.buf); cap(w.buf)-n >= 8 {
			w.buf = w.buf[: n+8 : cap(w.buf)]
			binary.LittleEndian.PutUint64(w.buf[n:], w.cur)
			w.buf = w.buf[:n+int(k)]
		} else {
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], w.cur)
			w.buf = append(w.buf, tmp[:k]...)
		}
		w.cur >>= k * 8
		w.n &= 7
	}
}

// AlignByte pads the stream with zero bits up to the next byte boundary
// (a no-op when already aligned). DEFLATE stored blocks require it.
func (w *LSBWriter) AlignByte() {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.n = 0, 0
	}
}

// WriteBytes appends whole bytes to the stream. The stream must be
// byte-aligned (call AlignByte first); stored-block payloads use it to
// bypass the bit accumulator entirely.
func (w *LSBWriter) WriteBytes(p []byte) {
	if w.n != 0 {
		panic("bitstream: WriteBytes on unaligned LSBWriter")
	}
	w.buf = append(w.buf, p...)
}

// Bits returns the total number of bits written so far.
func (w *LSBWriter) Bits() int { return len(w.buf)*8 + int(w.n) }

// Bytes flushes any partial byte (zero-padded in its high bits) and
// returns the underlying buffer. Call Reset before writing again.
func (w *LSBWriter) Bytes() []byte {
	w.AlignByte()
	return w.buf
}
