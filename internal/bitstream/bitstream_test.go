package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	w := &Writer{}
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1} // 10 bits
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Bits() != 10 {
		t.Fatalf("Bits = %d, want 10", w.Bits())
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsMSBFirst(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b101, 3)
	w.WriteBits(0b11110000, 8)
	buf := w.Bytes()
	// Expect 101 1111 0000 padded: 1011 1110 000xxxxx
	if buf[0] != 0b10111110 {
		t.Fatalf("first byte = %08b", buf[0])
	}
	if buf[1]&0b11100000 != 0 {
		t.Fatalf("second byte = %08b", buf[1])
	}
}

func TestWideWrites(t *testing.T) {
	w := NewWriter(16)
	v := uint64(0xDEADBEEFCAFE) // 48 bits
	w.WriteBits(v, 48)
	w.WriteBits(0x1FFFFFFFFFFFFFF, 57) // > 56 takes the split path
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(48)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("48-bit value = %x, want %x", got, v)
	}
	got2, err := r.ReadBits(57)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != 0x1FFFFFFFFFFFFFF {
		t.Fatalf("57-bit value = %x", got2)
	}
}

func TestZeroWidthWrite(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(123, 0)
	if w.Bits() != 0 {
		t.Fatal("zero-width write should write nothing")
	}
}

func TestReaderExhaustion(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
	if _, err := r.ReadBits(4); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d, want 16", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining = %d, want 11", r.Remaining())
	}
}

func TestWriterResetLifecycle(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b1011, 4)
	first := append([]byte(nil), w.Bytes()...)
	w.Reset()
	if w.Bits() != 0 {
		t.Fatalf("Bits after Reset = %d", w.Bits())
	}
	w.WriteBits(0b1011, 4)
	if got := w.Bytes(); !bytes.Equal(got, first) {
		t.Fatalf("post-Reset bytes %x != first use %x", got, first)
	}
}

func TestWriterSealedPanics(t *testing.T) {
	w := NewWriter(1)
	w.WriteBit(1)
	w.Bytes()
	defer func() {
		if recover() == nil {
			t.Fatal("write after Bytes without Reset should panic")
		}
	}()
	w.WriteBits(3, 2)
}

func TestReaderReset(t *testing.T) {
	r := NewReader([]byte{0xA5})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("err = %v, want ErrOutOfBits", err)
	}
	r.Reset([]byte{0xFF, 0x00})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining after Reset = %d", r.Remaining())
	}
	v, err := r.ReadBits(16)
	if err != nil || v != 0xFF00 {
		t.Fatalf("ReadBits after Reset = %x, %v", v, err)
	}
}

func TestPeekConsume(t *testing.T) {
	r := NewReader([]byte{0b10110100, 0b11001010})
	if got := r.Peek(3); got != 0b101 {
		t.Fatalf("Peek(3) = %b", got)
	}
	// Peek must not consume.
	if got := r.Peek(5); got != 0b10110 {
		t.Fatalf("second Peek(5) = %b", got)
	}
	if err := r.Consume(5); err != nil {
		t.Fatal(err)
	}
	if got := r.Peek(11); got != 0b10011001010 {
		t.Fatalf("Peek(11) = %011b", got)
	}
	// Peek past the end zero-pads.
	if err := r.Consume(8); err != nil {
		t.Fatal(err)
	}
	if got := r.Peek(8); got != 0b01000000 {
		t.Fatalf("padded Peek(8) = %08b", got)
	}
	if err := r.Consume(3); err != nil {
		t.Fatal(err)
	}
	if err := r.Consume(1); err != ErrOutOfBits {
		t.Fatalf("Consume past end = %v, want ErrOutOfBits", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", r.Remaining())
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestRoundTripProperty(t *testing.T) {
	type op struct {
		V uint64
		W uint8
	}
	if err := quick.Check(func(ops []op) bool {
		w := &Writer{}
		var widths []uint
		var values []uint64
		for _, o := range ops {
			width := uint(o.W%56) + 1
			v := o.V & (1<<width - 1)
			w.WriteBits(v, width)
			widths = append(widths, width)
			values = append(values, v)
		}
		r := NewReader(w.Bytes())
		for i, width := range widths {
			got, err := r.ReadBits(width)
			if err != nil || got != values[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedBitAndBits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := &Writer{}
	var log []uint64
	var kinds []int
	for i := 0; i < 1000; i++ {
		if rng.Intn(2) == 0 {
			b := uint(rng.Intn(2))
			w.WriteBit(b)
			log = append(log, uint64(b))
			kinds = append(kinds, 0)
		} else {
			v := rng.Uint64() & 0xFFFF
			w.WriteBits(v, 16)
			log = append(log, v)
			kinds = append(kinds, 1)
		}
	}
	r := NewReader(w.Bytes())
	for i, want := range log {
		var got uint64
		var err error
		if kinds[i] == 0 {
			var b uint
			b, err = r.ReadBit()
			got = uint64(b)
		} else {
			got, err = r.ReadBits(16)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("op %d = %x, want %x", i, got, want)
		}
	}
}

func TestWindowSkipRefill(t *testing.T) {
	// 12 bytes so the first refill takes the aligned 8-byte path and the
	// top-up refill takes the branchless partial path.
	buf := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef}
	r := NewReader(buf)
	if r.Buffered() != 0 {
		t.Fatalf("Buffered before Refill = %d", r.Buffered())
	}
	r.Refill()
	if r.Buffered() != 64 {
		t.Fatalf("Buffered after aligned Refill = %d", r.Buffered())
	}
	if got := r.Window() >> (64 - 16); got != 0xdead {
		t.Fatalf("Window top 16 = %04x", got)
	}
	r.Skip(16)
	if r.Buffered() != 48 {
		t.Fatalf("Buffered after Skip(16) = %d", r.Buffered())
	}
	if got := r.Window() >> (64 - 16); got != 0xbeef {
		t.Fatalf("Window after Skip = %04x", got)
	}
	// Top-up refill must keep Remaining exact and extend the window.
	rem := r.Remaining()
	r.Refill()
	if r.Remaining() != rem {
		t.Fatalf("Refill changed Remaining: %d -> %d", rem, r.Remaining())
	}
	if r.Buffered() < 57 {
		t.Fatalf("Buffered after top-up = %d, want >= 57", r.Buffered())
	}
	if got := r.Window() >> (64 - 56); got != 0xbeef0123456789 {
		t.Fatalf("Window after top-up = %014x", got)
	}
	// Drain to the end through the checked API and confirm the tail bits.
	r.Skip(48)
	got, err := r.ReadBits(uint(r.Remaining()))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x89abcdef {
		t.Fatalf("tail = %x, want 89abcdef", got)
	}
}
