package transform

import "testing"

func BenchmarkDCTForward8(b *testing.B) {
	d, err := NewDCT(8)
	if err != nil {
		b.Fatal(err)
	}
	src := randSlice(8, 1)
	dst := make([]float64, 8)
	for i := 0; i < b.N; i++ {
		d.Forward(dst, src)
	}
}

func BenchmarkDCTForward2D8(b *testing.B) {
	d, _ := NewDCT(8)
	src := randSlice(64, 2)
	dst := make([]float64, 64)
	b.SetBytes(64 * 8)
	for i := 0; i < b.N; i++ {
		d.Forward2D(dst, src)
	}
}

func BenchmarkDCTForward3D8(b *testing.B) {
	d, _ := NewDCT(8)
	src := randSlice(512, 3)
	dst := make([]float64, 512)
	b.SetBytes(512 * 8)
	for i := 0; i < b.N; i++ {
		d.Forward3D(dst, src)
	}
}

func BenchmarkHaarForward256(b *testing.B) {
	src := randSlice(256, 4)
	work := make([]float64, 256)
	b.SetBytes(256 * 8)
	for i := 0; i < b.N; i++ {
		copy(work, src)
		if err := HaarForward(work, 8); err != nil {
			b.Fatal(err)
		}
	}
}
