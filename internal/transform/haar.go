package transform

import "fmt"

// HaarForward applies an in-place multi-level orthonormal Haar transform
// to x (length must be a power of two ≥ 1). Each level maps pairs
// (a, b) → ((a+b)/√2, (a−b)/√2); levels counts how many times the
// averaging half is recursed (levels ≤ log2(len)). The transform is
// orthonormal: ‖HaarForward(x)‖₂ = ‖x‖₂.
func HaarForward(x []float64, levels int) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("transform: Haar length %d is not a power of two", n)
	}
	maxLevels := 0
	for m := n; m > 1; m >>= 1 {
		maxLevels++
	}
	if levels < 0 || levels > maxLevels {
		return fmt.Errorf("transform: %d levels out of range [0, %d]", levels, maxLevels)
	}
	tmp := make([]float64, n)
	m := n
	for l := 0; l < levels; l++ {
		half := m / 2
		for i := 0; i < half; i++ {
			a, b := x[2*i], x[2*i+1]
			tmp[i] = (a + b) * invSqrt2
			tmp[half+i] = (a - b) * invSqrt2
		}
		copy(x[:m], tmp[:m])
		m = half
	}
	return nil
}

// HaarInverse inverts HaarForward with the same level count.
func HaarInverse(x []float64, levels int) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("transform: Haar length %d is not a power of two", n)
	}
	maxLevels := 0
	for m := n; m > 1; m >>= 1 {
		maxLevels++
	}
	if levels < 0 || levels > maxLevels {
		return fmt.Errorf("transform: %d levels out of range [0, %d]", levels, maxLevels)
	}
	tmp := make([]float64, n)
	// Undo levels from the deepest out.
	sizes := make([]int, 0, levels)
	m := n
	for l := 0; l < levels; l++ {
		sizes = append(sizes, m)
		m /= 2
	}
	for l := levels - 1; l >= 0; l-- {
		m := sizes[l]
		half := m / 2
		for i := 0; i < half; i++ {
			s, d := x[i], x[half+i]
			tmp[2*i] = (s + d) * invSqrt2
			tmp[2*i+1] = (s - d) * invSqrt2
		}
		copy(x[:m], tmp[:m])
	}
	return nil
}

const invSqrt2 = 0.7071067811865476 // 1/√2
