// Package transform provides the orthonormal linear transforms used by the
// transform-based compressor (internal/otc): the orthonormal DCT-II/III
// pair and a multi-level orthonormal Haar wavelet transform.
//
// Every transform here is orthonormal — it preserves the l2 norm exactly
// (Parseval). That property is the hypothesis of the paper's Theorem 2:
// distortion introduced by quantizing the transformed coefficients equals
// the distortion of the reconstructed data, which is what lets the
// fixed-PSNR mode drive a transform-based compressor with the same Eq. 6.
package transform

import (
	"fmt"
	"math"
)

// DCT holds precomputed basis matrices for the orthonormal DCT-II of a
// fixed size.
type DCT struct {
	n       int
	forward [][]float64 // forward[k][j] = c(k)·cos(π(2j+1)k/2n)
}

// NewDCT precomputes an orthonormal DCT for vectors of length n ≥ 1.
func NewDCT(n int) (*DCT, error) {
	if n < 1 {
		return nil, fmt.Errorf("transform: DCT size must be ≥ 1, got %d", n)
	}
	d := &DCT{n: n, forward: make([][]float64, n)}
	for k := 0; k < n; k++ {
		row := make([]float64, n)
		c := math.Sqrt(2 / float64(n))
		if k == 0 {
			c = math.Sqrt(1 / float64(n))
		}
		for j := 0; j < n; j++ {
			row[j] = c * math.Cos(math.Pi*float64(2*j+1)*float64(k)/(2*float64(n)))
		}
		d.forward[k] = row
	}
	return d, nil
}

// Size returns the transform length.
func (d *DCT) Size() int { return d.n }

// Forward applies the orthonormal DCT-II: dst[k] = Σ_j basis[k][j]·src[j].
// dst and src must both have length Size and may alias only if identical.
func (d *DCT) Forward(dst, src []float64) {
	for k := 0; k < d.n; k++ {
		row := d.forward[k]
		var s float64
		for j := 0; j < d.n; j++ {
			s += row[j] * src[j]
		}
		dst[k] = s
	}
}

// Inverse applies the orthonormal DCT-III (the transpose, which is the
// inverse of an orthonormal matrix).
func (d *DCT) Inverse(dst, src []float64) {
	for j := 0; j < d.n; j++ {
		var s float64
		for k := 0; k < d.n; k++ {
			s += d.forward[k][j] * src[k]
		}
		dst[j] = s
	}
}

// Forward2D applies the DCT separably to an n×n block stored row-major.
func (d *DCT) Forward2D(dst, src []float64) {
	n := d.n
	tmp := make([]float64, n*n)
	row := make([]float64, n)
	out := make([]float64, n)
	// Rows.
	for i := 0; i < n; i++ {
		copy(row, src[i*n:(i+1)*n])
		d.Forward(out, row)
		copy(tmp[i*n:(i+1)*n], out)
	}
	// Columns.
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = tmp[i*n+j]
		}
		d.Forward(out, col)
		for i := 0; i < n; i++ {
			dst[i*n+j] = out[i]
		}
	}
}

// Inverse2D inverts Forward2D.
func (d *DCT) Inverse2D(dst, src []float64) {
	n := d.n
	tmp := make([]float64, n*n)
	col := make([]float64, n)
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = src[i*n+j]
		}
		d.Inverse(out, col)
		for i := 0; i < n; i++ {
			tmp[i*n+j] = out[i]
		}
	}
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		copy(row, tmp[i*n:(i+1)*n])
		d.Inverse(out, row)
		copy(dst[i*n:(i+1)*n], out)
	}
}

// Forward3D applies the DCT separably to an n×n×n block stored row-major.
func (d *DCT) Forward3D(dst, src []float64) {
	d.apply3D(dst, src, d.Forward)
}

// Inverse3D inverts Forward3D.
func (d *DCT) Inverse3D(dst, src []float64) {
	d.apply3D(dst, src, d.Inverse)
}

func (d *DCT) apply3D(dst, src []float64, f func(dst, src []float64)) {
	n := d.n
	n2 := n * n
	cur := make([]float64, n2*n)
	copy(cur, src)
	line := make([]float64, n)
	out := make([]float64, n)
	// Axis 2 (fastest): lines are contiguous.
	for base := 0; base < n2*n; base += n {
		copy(line, cur[base:base+n])
		f(out, line)
		copy(cur[base:base+n], out)
	}
	// Axis 1: stride n.
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			base := i*n2 + k
			for j := 0; j < n; j++ {
				line[j] = cur[base+j*n]
			}
			f(out, line)
			for j := 0; j < n; j++ {
				cur[base+j*n] = out[j]
			}
		}
	}
	// Axis 0: stride n².
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			base := j*n + k
			for i := 0; i < n; i++ {
				line[i] = cur[base+i*n2]
			}
			f(out, line)
			for i := 0; i < n; i++ {
				cur[base+i*n2] = out[i]
			}
		}
	}
	copy(dst, cur)
}
