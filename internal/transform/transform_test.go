package transform

import (
	"math"
	"math/rand"
	"testing"
)

func randSlice(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func l2(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s)
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNewDCTValidates(t *testing.T) {
	if _, err := NewDCT(0); err == nil {
		t.Fatal("expected error for size 0")
	}
	if _, err := NewDCT(-3); err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestDCTSize1Identity(t *testing.T) {
	d, err := NewDCT(1)
	if err != nil {
		t.Fatal(err)
	}
	src := []float64{3.5}
	dst := make([]float64, 1)
	d.Forward(dst, src)
	if math.Abs(dst[0]-3.5) > 1e-14 {
		t.Fatalf("1-point DCT = %g", dst[0])
	}
}

// The DCT basis must be orthonormal: B·Bᵀ = I.
func TestDCTOrthonormal(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 16} {
		d, err := NewDCT(n)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				var dot float64
				for j := 0; j < n; j++ {
					dot += d.forward[a][j] * d.forward[b][j]
				}
				want := 0.0
				if a == b {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-12 {
					t.Fatalf("n=%d: <b%d,b%d> = %g, want %g", n, a, b, dot, want)
				}
			}
		}
	}
}

func TestDCTRoundTrip1D(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13} {
		d, _ := NewDCT(n)
		src := randSlice(n, int64(n))
		coef := make([]float64, n)
		back := make([]float64, n)
		d.Forward(coef, src)
		d.Inverse(back, coef)
		if diff := maxAbsDiff(src, back); diff > 1e-12 {
			t.Fatalf("n=%d: round-trip diff %g", n, diff)
		}
	}
}

// Parseval: the transform preserves the l2 norm — the hypothesis of the
// paper's Theorem 2.
func TestDCTParseval1D(t *testing.T) {
	d, _ := NewDCT(16)
	src := randSlice(16, 2)
	coef := make([]float64, 16)
	d.Forward(coef, src)
	if math.Abs(l2(src)-l2(coef)) > 1e-12*l2(src) {
		t.Fatalf("Parseval violated: %g vs %g", l2(src), l2(coef))
	}
}

func TestDCT2DRoundTripAndParseval(t *testing.T) {
	n := 8
	d, _ := NewDCT(n)
	src := randSlice(n*n, 3)
	coef := make([]float64, n*n)
	back := make([]float64, n*n)
	d.Forward2D(coef, src)
	if math.Abs(l2(src)-l2(coef)) > 1e-12*l2(src) {
		t.Fatalf("2D Parseval violated")
	}
	d.Inverse2D(back, coef)
	if diff := maxAbsDiff(src, back); diff > 1e-12 {
		t.Fatalf("2D round-trip diff %g", diff)
	}
}

func TestDCT3DRoundTripAndParseval(t *testing.T) {
	n := 4
	d, _ := NewDCT(n)
	src := randSlice(n*n*n, 4)
	coef := make([]float64, n*n*n)
	back := make([]float64, n*n*n)
	d.Forward3D(coef, src)
	if math.Abs(l2(src)-l2(coef)) > 1e-12*l2(src) {
		t.Fatalf("3D Parseval violated")
	}
	d.Inverse3D(back, coef)
	if diff := maxAbsDiff(src, back); diff > 1e-12 {
		t.Fatalf("3D round-trip diff %g", diff)
	}
}

func TestDCTConstantMapsToDC(t *testing.T) {
	n := 8
	d, _ := NewDCT(n)
	src := make([]float64, n)
	for i := range src {
		src[i] = 2
	}
	coef := make([]float64, n)
	d.Forward(coef, src)
	if math.Abs(coef[0]-2*math.Sqrt(float64(n))) > 1e-12 {
		t.Fatalf("DC = %g, want %g", coef[0], 2*math.Sqrt(float64(n)))
	}
	for k := 1; k < n; k++ {
		if math.Abs(coef[k]) > 1e-12 {
			t.Fatalf("AC coefficient %d = %g, want 0", k, coef[k])
		}
	}
}

func TestHaarValidates(t *testing.T) {
	if err := HaarForward(make([]float64, 3), 1); err == nil {
		t.Fatal("expected error for non-pow2 length")
	}
	if err := HaarForward(make([]float64, 8), 4); err == nil {
		t.Fatal("expected error for too many levels")
	}
	if err := HaarForward(make([]float64, 8), -1); err == nil {
		t.Fatal("expected error for negative levels")
	}
	if err := HaarInverse(make([]float64, 3), 1); err == nil {
		t.Fatal("expected error for non-pow2 length in inverse")
	}
	if err := HaarInverse(make([]float64, 8), 9); err == nil {
		t.Fatal("expected error for too many levels in inverse")
	}
}

func TestHaarRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64} {
		maxLevels := 0
		for m := n; m > 1; m >>= 1 {
			maxLevels++
		}
		for levels := 0; levels <= maxLevels; levels++ {
			src := randSlice(n, int64(n*10+levels))
			x := append([]float64(nil), src...)
			if err := HaarForward(x, levels); err != nil {
				t.Fatal(err)
			}
			if err := HaarInverse(x, levels); err != nil {
				t.Fatal(err)
			}
			if diff := maxAbsDiff(src, x); diff > 1e-12 {
				t.Fatalf("n=%d levels=%d: round-trip diff %g", n, levels, diff)
			}
		}
	}
}

func TestHaarParseval(t *testing.T) {
	src := randSlice(256, 7)
	x := append([]float64(nil), src...)
	if err := HaarForward(x, 8); err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2(src)-l2(x)) > 1e-12*l2(src) {
		t.Fatalf("Haar Parseval violated: %g vs %g", l2(src), l2(x))
	}
}

func TestHaarKnownValues(t *testing.T) {
	x := []float64{1, 3, 5, 7}
	if err := HaarForward(x, 1); err != nil {
		t.Fatal(err)
	}
	want := []float64{4 * invSqrt2, 12 * invSqrt2, -2 * invSqrt2, -2 * invSqrt2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("Haar[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}
