package kernels

import (
	"slices"
	"testing"
)

// TestLaneLens4 pins the lane length formula against the definition:
// lane i of an n-symbol slice holds the positions congruent to i mod 4.
func TestLaneLens4(t *testing.T) {
	for n := 0; n <= 64; n++ {
		c0, c1, c2, c3 := LaneLens4(n)
		var want [4]int
		for i := 0; i < n; i++ {
			want[i%4]++
		}
		if got := [4]int{c0, c1, c2, c3}; got != want {
			t.Fatalf("LaneLens4(%d) = %v, want %v", n, got, want)
		}
		if c0+c1+c2+c3 != n {
			t.Fatalf("LaneLens4(%d) sums to %d", n, c0+c1+c2+c3)
		}
	}
}

// FuzzLaneSplitJoin drives the split→join identity on fuzzer-chosen
// lengths — the byte count is the symbol count, so every tail shape
// (0–3 mod 4) comes up without generator cooperation. Symbol values
// encode their own position, so a symbol landing in the wrong lane or
// slot can never alias a correct one.
func FuzzLaneSplitJoin(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 2})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{1, 2, 3, 4})
	seed := make([]byte, 37) // 1 mod 4, spans several 4-blocks
	for i := range seed {
		seed[i] = byte(i * 11)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		syms := make([]int32, len(raw))
		for i, b := range raw {
			syms[i] = int32(i)<<8 | int32(b)
		}
		c0, c1, c2, c3 := LaneLens4(len(syms))
		lanes := [4][]int32{
			make([]int32, c0), make([]int32, c1),
			make([]int32, c2), make([]int32, c3),
		}
		LaneSplit4(lanes[0], lanes[1], lanes[2], lanes[3], syms)
		for i, s := range syms {
			if got := lanes[i%4][i/4]; got != s {
				t.Fatalf("lane %d slot %d holds %#x, want syms[%d] = %#x", i%4, i/4, got, i, s)
			}
		}
		joined := make([]int32, len(syms))
		LaneJoin4(joined, lanes[0], lanes[1], lanes[2], lanes[3])
		if !slices.Equal(joined, syms) {
			t.Fatalf("join(split(syms)) != syms for n=%d", len(syms))
		}
	})
}
