package kernels

import (
	"encoding/binary"
	"math"
	"testing"
)

// The differential fuzzers gate dispatch: every kernel's dispatched
// implementation (assembly on amd64 builds) is driven against the
// generic reference on fuzzer-chosen inputs and must match bit for bit.
// Rows are decoded straight from the raw corpus bytes, so NaN payloads,
// ±Inf, denormals, and every other awkward bit pattern show up without
// any generator cooperation, and row lengths sweep the non-lane-multiple
// tails. On `-tags noasm` builds the comparison is generic-vs-generic —
// trivially green, but the harness still exercises the panic contracts.

// fuzzRow reinterprets raw bytes as a float64 row (little endian).
func fuzzRow(b []byte) []float64 {
	row := make([]float64, len(b)/8)
	for i := range row {
		row[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return row
}

// fuzzQuant sanitizes fuzzer-picked quantizer parameters into a valid
// Quant: error bound positive and finite, capacity a power of two in
// the quantizer's accepted range.
func fuzzQuant(eb float64, capExp uint8) *Quant {
	eb = math.Abs(eb)
	if !(eb > 1e-300) || !(eb < 1e300) {
		eb = 1e-3
	}
	capacity := 1 << (4 + capExp%14) // 16 .. 2^17
	return testQuant(eb, capacity)
}

// carve splits a byte string into four equal-length float64 rows.
func carve4(raw []byte) (a, b, c, d []float64) {
	n := len(raw) / 32 * 8
	return fuzzRow(raw[:n]), fuzzRow(raw[n : 2*n]), fuzzRow(raw[2*n : 3*n]), fuzzRow(raw[3*n : 4*n])
}

func FuzzKernelPredictQuantize(f *testing.F) {
	f.Add(make([]byte, 32*7), 1e-3, uint8(6))
	f.Add([]byte{0x01, 0x02}, 0.5, uint8(0))
	seed := make([]byte, 32*5)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	binary.LittleEndian.PutUint64(seed, math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(seed[40:], math.Float64bits(math.Inf(1)))
	binary.LittleEndian.PutUint64(seed[80:], 1) // smallest denormal
	f.Add(seed, 1e-9, uint8(10))
	f.Fuzz(func(t *testing.T, raw []byte, eb float64, capExp uint8) {
		q := fuzzQuant(eb, capExp)
		data, up, pl, pu := carve4(raw)

		ref := newPQRow(data, up, pl, pu)
		pqRowGeneric(q, ref)
		got := newPQRow(data, up, pl, pu)
		PredictQuantizeRow(q, got)
		comparePQRows(t, "row", ref, got)

		// Pair and quad forms against generic single-row calls, with the
		// rows permuted so each lane sees different data.
		refB := newPQRow(up, pl, pu, data)
		pqRowGeneric(q, refB)
		gotA := newPQRow(data, up, pl, pu)
		gotB := newPQRow(up, pl, pu, data)
		PredictQuantizeRows2(q, gotA, gotB)
		comparePQRows(t, "pairA", ref, gotA)
		comparePQRows(t, "pairB", refB, gotB)

		refC := newPQRow(pl, pu, data, up)
		refD := newPQRow(pu, data, up, pl)
		pqRowGeneric(q, refC)
		pqRowGeneric(q, refD)
		quad := [4]*PQRow{
			newPQRow(data, up, pl, pu),
			newPQRow(up, pl, pu, data),
			newPQRow(pl, pu, data, up),
			newPQRow(pu, data, up, pl),
		}
		PredictQuantizeRows4(q, quad[0], quad[1], quad[2], quad[3])
		comparePQRows(t, "quadA", ref, quad[0])
		comparePQRows(t, "quadB", refB, quad[1])
		comparePQRows(t, "quadC", refC, quad[2])
		comparePQRows(t, "quadD", refD, quad[3])
	})
}

func FuzzKernelReconstructRow(f *testing.F) {
	f.Add(make([]byte, 32*3), 1e-3, uint8(6))
	f.Add([]byte{0xff, 0x00, 0x7f}, 2.0, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, eb float64, capExp uint8) {
		q := fuzzQuant(eb, capExp)
		data, up, pl, pu := carve4(raw)
		// Encode with the generic reference to get a (codes, lits) pair
		// that satisfies the kernel contract (lits length == zero-code
		// count, in row order) while still carrying special values.
		enc := newPQRow(data, up, pl, pu)
		pqRowGeneric(q, enc)
		encB := newPQRow(up, pl, pu, data)
		pqRowGeneric(q, encB)

		mk := func(e *PQRow) *RRRow {
			return &RRRow{
				Out:   make([]float64, len(e.Data)),
				Codes: e.Codes,
				Up:    e.Up,
				Pl:    e.Pl,
				Pu:    e.Pu,
				Lits:  e.Lits,
			}
		}
		compare := func(label string, want, got *RRRow) {
			t.Helper()
			for k := range want.Out {
				if math.Float64bits(want.Out[k]) != math.Float64bits(got.Out[k]) {
					t.Fatalf("%s: out[%d] = %x, want %x", label, k,
						math.Float64bits(got.Out[k]), math.Float64bits(want.Out[k]))
				}
			}
		}

		ref, got := mk(enc), mk(enc)
		reconRowGeneric(q, ref)
		ReconstructRow(q, got)
		compare("row", ref, got)

		refB, gotA, gotB := mk(encB), mk(enc), mk(encB)
		reconRowGeneric(q, refB)
		ReconstructRows2(q, gotA, gotB)
		compare("pairA", ref, gotA)
		compare("pairB", refB, gotB)

		qa, qb, qc, qd := mk(enc), mk(encB), mk(enc), mk(encB)
		ReconstructRows4(q, qa, qb, qc, qd)
		compare("quadA", ref, qa)
		compare("quadB", refB, qb)
		compare("quadC", ref, qc)
		compare("quadD", refB, qd)
	})
}

func FuzzKernelValueBounds(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8*16))
	nan := make([]byte, 8*17) // one past a full lane pass, all NaN
	for i := 0; i < len(nan); i += 8 {
		binary.LittleEndian.PutUint64(nan[i:], math.Float64bits(math.NaN()))
	}
	f.Add(nan)
	zeros := make([]byte, 8*33)
	for i := 0; i < len(zeros); i += 16 {
		binary.LittleEndian.PutUint64(zeros[i:], math.Float64bits(math.Copysign(0, -1)))
	}
	f.Add(zeros) // ±0 tie resolution across lanes and tail
	f.Fuzz(func(t *testing.T, raw []byte) {
		data := fuzzRow(raw)
		wantMin, wantMax := minMaxGeneric(data)
		gotMin, gotMax := MinMax(data)
		if math.Float64bits(wantMin) != math.Float64bits(gotMin) ||
			math.Float64bits(wantMax) != math.Float64bits(gotMax) {
			t.Fatalf("MinMax = (%x, %x), want (%x, %x)",
				math.Float64bits(gotMin), math.Float64bits(gotMax),
				math.Float64bits(wantMin), math.Float64bits(wantMax))
		}
	})
}

func FuzzKernelCount(f *testing.F) {
	f.Add([]byte{}, uint16(100))
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}, uint16(7))
	f.Add(make([]byte, 4*1001), uint16(1))
	f.Fuzz(func(t *testing.T, raw []byte, laneLen uint16) {
		m := int32(laneLen%2048) + 1
		syms := make([]int32, len(raw)/4)
		for i := range syms {
			v := int32(binary.LittleEndian.Uint32(raw[i*4:]))
			v %= m
			if v < 0 {
				v += m
			}
			syms[i] = v
		}
		var want, got [4][]int64
		for l := range want {
			want[l] = make([]int64, m)
			got[l] = make([]int64, m)
		}
		countLanes4Generic(want[0], want[1], want[2], want[3], syms)
		CountLanes4(got[0], got[1], got[2], got[3], syms)
		for l := range want {
			for i := range want[l] {
				if want[l][i] != got[l][i] {
					t.Fatalf("lane%d[%d] = %d, want %d", l, i, got[l][i], want[l][i])
				}
			}
		}
	})
}
