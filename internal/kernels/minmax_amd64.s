//go:build amd64 && !noasm

#include "textflag.h"

// func minMaxAVX2(data []float64) (min, max float64)
//
// Vector form of minMaxGeneric: four YMM accumulator pairs hold the
// sixteen lanes (lane = i mod 16), giving eight independent
// VMINPD/VMAXPD dependency chains so the scan is memory-bound rather
// than bound on one chain's 4-cycle latency. The accumulator sits in
// the NaN/tie-keeping source position, reproducing the generic
// `if v < min` comparisons exactly; the scalar tail folds into lane 0
// and lanes 1–15 merge in the generic's ascending order. The lane
// count and merge order are part of the kernel spec (they pick the
// winner among equal ±0 extrema) — change them only together with
// minMaxGeneric.
//
// Frame: 0..127 spilled mins (lane l at 8l), 128..255 spilled maxs.
TEXT ·minMaxAVX2(SB), NOSPLIT, $256-40
	MOVQ data_base+0(FP), SI
	MOVQ data_len+8(FP), CX

	// Seed all lanes with +Inf / -Inf.
	MOVQ         $0x7FF0000000000000, AX
	MOVQ         AX, X0
	VBROADCASTSD X0, Y0
	VMOVAPD      Y0, Y1
	VMOVAPD      Y0, Y2
	VMOVAPD      Y0, Y3
	MOVQ         $0xFFF0000000000000, AX
	MOVQ         AX, X4
	VBROADCASTSD X4, Y4
	VMOVAPD      Y4, Y5
	VMOVAPD      Y4, Y6
	VMOVAPD      Y4, Y7

	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-16, DX

vloop:
	CMPQ    BX, DX
	JGE     vdone
	VMOVUPD (SI)(BX*8), Y8
	VMOVUPD 32(SI)(BX*8), Y9
	VMOVUPD 64(SI)(BX*8), Y10
	VMOVUPD 96(SI)(BX*8), Y11
	VMINPD  Y0, Y8, Y0
	VMAXPD  Y4, Y8, Y4
	VMINPD  Y1, Y9, Y1
	VMAXPD  Y5, Y9, Y5
	VMINPD  Y2, Y10, Y2
	VMAXPD  Y6, Y10, Y6
	VMINPD  Y3, Y11, Y3
	VMAXPD  Y7, Y11, Y7
	ADDQ    $16, BX
	JMP     vloop

vdone:
	VMOVUPD    Y0, 0(SP)
	VMOVUPD    Y1, 32(SP)
	VMOVUPD    Y2, 64(SP)
	VMOVUPD    Y3, 96(SP)
	VMOVUPD    Y4, 128(SP)
	VMOVUPD    Y5, 160(SP)
	VMOVUPD    Y6, 192(SP)
	VMOVUPD    Y7, 224(SP)
	VZEROUPPER
	VMOVSD     0(SP), X0   // min lane 0
	VMOVSD     128(SP), X1 // max lane 0

tail:
	CMPQ   BX, CX
	JGE    merge
	VMOVSD (SI)(BX*8), X2
	VMINSD X0, X2, X0
	VMAXSD X1, X2, X1
	INCQ   BX
	JMP    tail

merge:
	// Lanes 1..15, mins then maxes, in minMaxGeneric's merge order.
	MOVQ SP, DI
	MOVQ $1, BX

minmerge:
	VMOVSD (DI)(BX*8), X2
	VMINSD X0, X2, X0
	INCQ   BX
	CMPQ   BX, $16
	JLT    minmerge
	MOVQ   $1, BX

maxmerge:
	VMOVSD 128(DI)(BX*8), X2
	VMAXSD X1, X2, X1
	INCQ   BX
	CMPQ   BX, $16
	JLT    maxmerge

	VMOVSD X0, min+24(FP)
	VMOVSD X1, max+32(FP)
	RET
