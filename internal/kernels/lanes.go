package kernels

// Lane split/join for the four-lane interleaved Huffman payloads
// (internal/huffman EncodeLanes4/DecodeLanes4Into): lane i of a symbol
// slice holds positions i, i+4, i+8, … — the same assignment
// CountLanes4 accumulates by, so the frequency count's lanes are
// exactly the emission lanes. The loops are strided int32 copies; the
// generic forms below are the reference semantics an AVX2
// gather/scatter form would have to match element-for-element, and are
// fast enough that none has been needed yet (the split is a vanishing
// slice of the encode profile next to the per-lane bit emission).

// LaneSplit4 scatters syms into four lane slices: lane i receives
// syms[i], syms[i+4], syms[i+8], …. The lane slices must have exactly
// the lane lengths LaneLens4 reports for len(syms); they must not alias
// syms.
func LaneSplit4(l0, l1, l2, l3 []int32, syms []int32) {
	i := 0
	for ; i+4 <= len(syms); i += 4 {
		l0[i>>2] = syms[i]
		l1[i>>2] = syms[i+1]
		l2[i>>2] = syms[i+2]
		l3[i>>2] = syms[i+3]
	}
	if i < len(syms) {
		l0[i>>2] = syms[i]
		i++
	}
	if i < len(syms) {
		l1[i>>2] = syms[i]
		i++
	}
	if i < len(syms) {
		l2[i>>2] = syms[i]
	}
}

// LaneJoin4 is the inverse of LaneSplit4: it gathers the four lane
// slices back into syms in interleaved order. The lane lengths must be
// LaneLens4(len(syms)); the lanes must not alias syms.
func LaneJoin4(syms []int32, l0, l1, l2, l3 []int32) {
	i := 0
	for ; i+4 <= len(syms); i += 4 {
		syms[i] = l0[i>>2]
		syms[i+1] = l1[i>>2]
		syms[i+2] = l2[i>>2]
		syms[i+3] = l3[i>>2]
	}
	if i < len(syms) {
		syms[i] = l0[i>>2]
		i++
	}
	if i < len(syms) {
		syms[i] = l1[i>>2]
		i++
	}
	if i < len(syms) {
		syms[i] = l2[i>>2]
	}
}

// LaneLens4 returns the four lane lengths for an n-symbol slice under
// the i-mod-4 lane assignment: lane i holds ⌈(n−i)/4⌉ symbols.
func LaneLens4(n int) (c0, c1, c2, c3 int) {
	return (n + 3) / 4, (n + 2) / 4, (n + 1) / 4, n / 4
}
