//go:build amd64 && !noasm

#include "textflag.h"

// Struct offsets (asserted by TestAsmStructOffsets):
//   RRRow: Out+0 Codes+24 Up+48 Pl+72 Pu+96 Lits ptr+120 len+128

// func reconRowAsm(q *Quant, a *RRRow)
//
// Transcription of reconRowGeneric: code 0 consumes the next literal,
// any other code reconstructs pred + float64(c-radius)*delta with the
// prediction chained strictly left to right through the previous output
// (kept in X1 across iterations instead of re-loading out[k-1]).
TEXT ·reconRowAsm(SB), NOSPLIT, $0-16
	MOVQ   q+0(FP), AX
	VMOVSD 8(AX), X0 // delta
	MOVQ   32(AX), DX // radius

	MOVQ a+8(FP), AX
	MOVQ 0(AX), R8    // Out
	MOVQ 8(AX), CX    // n
	MOVQ 24(AX), SI   // Codes
	MOVQ 48(AX), R10  // Up
	MOVQ 72(AX), R11  // Pl
	MOVQ 96(AX), R12  // Pu
	MOVQ 120(AX), R13 // Lits
	XORQ R15, R15     // literal cursor

	TESTQ CX, CX
	JZ    done

	// k = 0: out[0] = pl[0] + up[0] - pu[0] + float64(c-radius)*delta
	MOVLQSX (SI), AX
	TESTQ AX, AX
	JZ    lit0
	SUBQ  DX, AX
	CVTSQ2SD AX, X2
	VMULSD   X0, X2, X2
	VMOVSD   (R11), X1
	VADDSD   (R10), X1, X1
	VSUBSD   (R12), X1, X1
	VADDSD   X2, X1, X1
	JMP      store0

lit0:
	VMOVSD (R13), X1
	INCQ   R15

store0:
	VMOVSD X1, (R8)
	MOVQ   $1, BX

loop:
	CMPQ  BX, CX
	JGE   done
	MOVLQSX (SI)(BX*4), AX
	TESTQ AX, AX
	JZ    lit

	SUBQ     DX, AX
	CVTSQ2SD AX, X2
	VMULSD   X0, X2, X2

	// pred = pl[k]+up[k]+out[k-1]-pu[k]-pl[k-1]-up[k-1]+pu[k-1]
	VMOVSD (R11)(BX*8), X3
	VADDSD (R10)(BX*8), X3, X3
	VADDSD X1, X3, X3
	VSUBSD (R12)(BX*8), X3, X3
	VSUBSD -8(R11)(BX*8), X3, X3
	VSUBSD -8(R10)(BX*8), X3, X3
	VADDSD -8(R12)(BX*8), X3, X3
	VADDSD X2, X3, X1 // out[k] = pred + cf; becomes out[k-1]
	VMOVSD X1, (R8)(BX*8)
	INCQ   BX
	JMP    loop

lit:
	VMOVSD (R13)(R15*8), X1
	INCQ   R15
	VMOVSD X1, (R8)(BX*8)
	INCQ   BX
	JMP    loop

done:
	RET

// func reconRows2Asm(q *Quant, a, b *RRRow)
//
// Lane A then lane B per iteration, each lane reconRowAsm's sequence,
// so the two serial prediction chains overlap in the out-of-order
// window. Cold operands (pu row B, literal bases and cursors) live in
// the frame.
//
// Frame: 0 puB, 8 litsA, 16 litsB, 24 liA, 32 liB.
TEXT ·reconRows2Asm(SB), NOSPLIT, $48-24
	MOVQ   q+0(FP), AX
	VMOVSD 8(AX), X0 // delta
	MOVQ   32(AX), DX // radius

	MOVQ a+8(FP), AX
	MOVQ 0(AX), R8   // outA
	MOVQ 8(AX), CX   // n
	MOVQ 24(AX), SI  // codesA
	MOVQ 48(AX), R10 // upA
	MOVQ 72(AX), R12 // plA
	MOVQ 96(AX), R15 // puA
	MOVQ 120(AX), BX
	MOVQ BX, 8(SP)   // litsA
	MOVQ $0, 24(SP)  // liA

	MOVQ b+16(FP), AX
	MOVQ 0(AX), R9   // outB
	MOVQ 24(AX), DI  // codesB
	MOVQ 48(AX), R11 // upB
	MOVQ 72(AX), R13 // plB
	MOVQ 96(AX), BX
	MOVQ BX, 0(SP)   // puB
	MOVQ 120(AX), BX
	MOVQ BX, 16(SP)  // litsB
	MOVQ $0, 32(SP)  // liB

	TESTQ CX, CX
	JZ    done

	// k = 0, lane A
	MOVLQSX (SI), AX
	TESTQ AX, AX
	JZ    lit0A
	SUBQ  DX, AX
	CVTSQ2SD AX, X3
	VMULSD   X0, X3, X3
	VMOVSD   (R12), X1
	VADDSD   (R10), X1, X1
	VSUBSD   (R15), X1, X1
	VADDSD   X3, X1, X1
	JMP      store0A

lit0A:
	MOVQ   8(SP), AX
	VMOVSD (AX), X1
	INCQ   24(SP)

store0A:
	VMOVSD X1, (R8)

	// k = 0, lane B
	MOVLQSX (DI), AX
	TESTQ AX, AX
	JZ    lit0B
	SUBQ  DX, AX
	CVTSQ2SD AX, X3
	VMULSD   X0, X3, X3
	MOVQ     0(SP), AX
	VMOVSD   (R13), X2
	VADDSD   (R11), X2, X2
	VSUBSD   (AX), X2, X2
	VADDSD   X3, X2, X2
	JMP      store0B

lit0B:
	MOVQ   16(SP), AX
	VMOVSD (AX), X2
	INCQ   32(SP)

store0B:
	VMOVSD X2, (R9)
	MOVQ   $1, BX

loop:
	CMPQ BX, CX
	JGE  done

	// lane A
	MOVLQSX (SI)(BX*4), AX
	TESTQ AX, AX
	JZ    litA

	SUBQ     DX, AX
	CVTSQ2SD AX, X3
	VMULSD   X0, X3, X3
	VMOVSD   (R12)(BX*8), X4
	VADDSD   (R10)(BX*8), X4, X4
	VADDSD   X1, X4, X4
	VSUBSD   (R15)(BX*8), X4, X4
	VSUBSD   -8(R12)(BX*8), X4, X4
	VSUBSD   -8(R10)(BX*8), X4, X4
	VADDSD   -8(R15)(BX*8), X4, X4
	VADDSD   X3, X4, X1
	VMOVSD   X1, (R8)(BX*8)
	JMP      laneB

litA:
	MOVQ   8(SP), AX
	MOVQ   24(SP), DX
	VMOVSD (AX)(DX*8), X1
	INCQ   24(SP)
	MOVQ   q+0(FP), AX
	MOVQ   32(AX), DX // restore radius
	VMOVSD X1, (R8)(BX*8)

laneB:
	MOVLQSX (DI)(BX*4), AX
	TESTQ AX, AX
	JZ    litB

	SUBQ     DX, AX
	CVTSQ2SD AX, X3
	VMULSD   X0, X3, X3
	MOVQ     0(SP), AX
	VMOVSD   (R13)(BX*8), X4
	VADDSD   (R11)(BX*8), X4, X4
	VADDSD   X2, X4, X4
	VSUBSD   (AX)(BX*8), X4, X4
	VSUBSD   -8(R13)(BX*8), X4, X4
	VSUBSD   -8(R11)(BX*8), X4, X4
	VADDSD   -8(AX)(BX*8), X4, X4
	VADDSD   X3, X4, X2
	VMOVSD   X2, (R9)(BX*8)
	JMP      next

litB:
	MOVQ   16(SP), AX
	MOVQ   32(SP), DX
	VMOVSD (AX)(DX*8), X2
	INCQ   32(SP)
	MOVQ   q+0(FP), AX
	MOVQ   32(AX), DX // restore radius
	VMOVSD X2, (R9)(BX*8)

next:
	INCQ BX
	JMP  loop

done:
	RET
