// Package kernels collects the hot-loop kernels shared by the
// compression pipelines — the fused Lorenzo-3D predict+quantize row
// loop and its reconstruction inverse (internal/sz), the min/max value
// scan (field.ValueRange, codec.ValueBounds), and the four-lane Huffman
// frequency count (internal/huffman) — each with a portable generic
// implementation and, on amd64, an AVX2+FMA assembly implementation
// selected once at init via CPUID feature detection.
//
// The contract that makes runtime dispatch safe is bit-identity: every
// implementation of a kernel produces exactly the same outputs for the
// same inputs, floating point included, so the compressed streams are
// byte-identical whichever implementation ran. The arithmetic is
// specified operation-by-operation (evaluation order, math.FMA use,
// NaN/±0 comparison semantics) by the generic implementations in this
// package; the assembly reproduces it instruction-for-instruction, and
// differential fuzzers (FuzzKernel* in this package) gate the pairing.
//
// Build with `-tags noasm` (or on non-amd64 targets) to compile the
// generic implementations only; kernels.Active() reports which set is
// live.
//
// The predict+quantize and reconstruct kernels come in grouped forms
// (pairs and quads): rows from the same Lorenzo anti-diagonal are
// independent, so a grouped kernel can interleave their serial
// floating-point dependency chains in one loop, multiplying the
// throughput of a latency-bound loop without changing any per-point
// operation (see internal/sz for the wavefront schedule that feeds
// them). Because the rows are independent, a grouped call's outputs
// are — by construction — bit-identical to N single-row calls, which
// is why the generic grouped forms are plain serial loops (the Go
// compiler spills an interleaved form's ~20 live floats and loses the
// benefit) while the assembly forms interleave for real.
package kernels

// Quant mirrors the quantizer constants the fused kernels need, laid
// out for direct assembly access. RadiusF must equal float64(Radius).
type Quant struct {
	InvDelta float64 // 1/δ, reciprocal bin width
	Delta    float64 // bin width δ = 2·eb
	EB       float64 // absolute error bound
	RadiusF  float64 // float64(Radius)
	Radius   int64   // interval radius R = capacity/2
}

// PQRow is one interior row's worth of inputs, outputs, and
// accumulators for the fused Lorenzo predict + quantize kernel. All
// row slices must have the same length (the row extent); Lits must
// have length 0 and capacity at least that extent, so the kernel's
// appends never grow it. SumSq is a read-modify-write accumulator:
// callers seed it (0 for a fresh row) and read the updated value back
// after the call. Value bounds are not tracked here — a separate
// MinMax pass over the slab is vector-wide and cheaper than carrying
// two more serial accumulators per row through this loop.
type PQRow struct {
	Data  []float64 // row values (input)
	Recon []float64 // reconstructed values (output)
	Codes []int32   // quantization codes (output; 0 = literal)
	Up    []float64 // recon row (i, j−1, ·)
	Pl    []float64 // recon row (i−1, j, ·)
	Pu    []float64 // recon row (i−1, j−1, ·)
	Lits  []float64 // literal values in row order (appended)

	SumSq float64 // Σ e² over quantized points
}

// RRRow is one interior row's worth of inputs and outputs for the
// reconstruction (decode) kernel. Out/Codes/Up/Pl/Pu must share one
// length; Lits must hold exactly the row's literal values (one per
// zero code, pre-counted by the caller), in row order.
type RRRow struct {
	Out   []float64 // reconstructed values (output)
	Codes []int32   // quantization codes (input; 0 = literal)
	Up    []float64 // out row (i, j−1, ·)
	Pl    []float64 // out row (i−1, j, ·)
	Pu    []float64 // out row (i−1, j−1, ·)
	Lits  []float64 // this row's literals (consumed in order)
}

// Dispatched implementations, chosen once at init (see dispatch_*.go).
var (
	minMaxFn      func(data []float64) (min, max float64)    = minMaxGeneric
	countLanes4Fn func(l0, l1, l2, l3 []int64, syms []int32) = countLanes4Generic
	pqRows4Fn     func(q *Quant, a, b, c, d *PQRow)          = pqRows4Generic
	pqRows2Fn     func(q *Quant, a, b *PQRow)                = pqRows2Generic
	pqRowFn       func(q *Quant, a *PQRow)                   = pqRowGeneric
	reconRows4Fn  func(q *Quant, a, b, c, d *RRRow)          = reconRows4Generic
	reconRows2Fn  func(q *Quant, a, b *RRRow)                = reconRows2Generic
	reconRowFn    func(q *Quant, a *RRRow)                   = reconRowGeneric
	implName                                                 = "generic"
)

// Active reports which kernel implementation set is live: "avx2" when
// the assembly kernels were selected at init, "generic" otherwise
// (non-amd64, `-tags noasm` builds, missing CPU features, or a
// ForceGeneric override).
func Active() string { return implName }

// ForceGeneric switches every dispatched kernel to the portable
// implementation and returns a func restoring the previous selection.
// It exists for tests (the stream-fixture guard encodes under both
// implementations in one process) and must not race concurrent kernel
// callers: flip it only around single-threaded sections.
func ForceGeneric() (restore func()) {
	prevMinMax, prevCount := minMaxFn, countLanes4Fn
	prevPQ4, prevPQ2, prevPQ1 := pqRows4Fn, pqRows2Fn, pqRowFn
	prevRR4, prevRR2, prevRR1 := reconRows4Fn, reconRows2Fn, reconRowFn
	prevName := implName
	minMaxFn, countLanes4Fn = minMaxGeneric, countLanes4Generic
	pqRows4Fn, pqRows2Fn, pqRowFn = pqRows4Generic, pqRows2Generic, pqRowGeneric
	reconRows4Fn, reconRows2Fn, reconRowFn = reconRows4Generic, reconRows2Generic, reconRowGeneric
	implName = "generic"
	return func() {
		minMaxFn, countLanes4Fn = prevMinMax, prevCount
		pqRows4Fn, pqRows2Fn, pqRowFn = prevPQ4, prevPQ2, prevPQ1
		reconRows4Fn, reconRows2Fn, reconRowFn = prevRR4, prevRR2, prevRR1
		implName = prevName
	}
}

// MinMax scans data's minimum and maximum, skipping NaNs (comparisons
// against NaN are false). It returns (+Inf, −Inf) — min > max — for
// empty or all-NaN input; callers map that sentinel to their own
// convention. The scan runs sixteen accumulator lanes (lane = i mod
// 16, four YMM accumulator pairs in the AVX2 form) with the scalar
// tail folded into lane 0 before lanes 1–15 merge in ascending order,
// so every implementation agrees on which of several equal extrema
// (±0) wins.
func MinMax(data []float64) (min, max float64) { return minMaxFn(data) }

// CountLanes4 accumulates symbol frequencies into four interleaved
// lanes — position i into lane i mod 4, the final 1–3 symbols into
// lanes 0.. in order — so runs of one dominant symbol (the common case
// for quantization codes) do not serialize on a single counter's
// store-to-load forwarding; four counters per symbol keep the forwarded
// increments at least four loop iterations apart. Every symbol must lie
// in [0, len(laneN)) for the lane it lands in; one outside panics, as
// slice indexing would. Callers sum the lanes — only the totals are
// meaningful, so widening the lane count never changes a stream.
func CountLanes4(l0, l1, l2, l3 []int64, syms []int32) {
	countLanes4Fn(l0, l1, l2, l3, syms)
}

// PredictQuantizeRows4 runs the fused Lorenzo-3D predict + quantize
// loop over four independent interior rows (same anti-diagonal). The
// rows do not interact, so the outputs equal four PredictQuantizeRow
// calls bit-for-bit; the assembly form interleaves the four serial
// recon dependency chains in one loop so they hide each other's
// latency.
func PredictQuantizeRows4(q *Quant, a, b, c, d *PQRow) { pqRows4Fn(q, a, b, c, d) }

// PredictQuantizeRows2 is the two-row grouped form of
// PredictQuantizeRow, for anti-diagonals with fewer than four rows
// left.
func PredictQuantizeRows2(q *Quant, a, b *PQRow) { pqRows2Fn(q, a, b) }

// PredictQuantizeRow runs the fused Lorenzo-3D predict + quantize loop
// over one interior row: the seven-point stencil prediction from the
// already-reconstructed Up/Pl/Pu rows and the in-row left neighbor,
// reciprocal-multiply binning (math.FMA with the round-to-nearest
// magic constant), reconstruction-verified bound check, and fused
// Σe² accumulation. This single-row form is the reference semantics
// every other implementation must match bit-for-bit.
func PredictQuantizeRow(q *Quant, a *PQRow) { pqRowFn(q, a) }

// ReconstructRows4 is the decode-side inverse of PredictQuantizeRows4:
// four independent interior rows reconstructed in one call.
func ReconstructRows4(q *Quant, a, b, c, d *RRRow) { reconRows4Fn(q, a, b, c, d) }

// ReconstructRows2 is the decode-side inverse of PredictQuantizeRows2:
// two independent interior rows reconstructed in one interleaved loop.
func ReconstructRows2(q *Quant, a, b *RRRow) { reconRows2Fn(q, a, b) }

// ReconstructRow reconstructs one interior row from its codes and
// literals; the reference semantics for the pair form.
func ReconstructRow(q *Quant, a *RRRow) { reconRowFn(q, a) }
