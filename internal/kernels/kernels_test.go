package kernels

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"

	"fixedpsnr/internal/quantizer"
)

// TestRoundMagicMatchesQuantizer pins the package-local rounding
// constant to the quantizer's: the kernels reimplement its binning
// arithmetic and must round identically.
func TestRoundMagicMatchesQuantizer(t *testing.T) {
	if roundMagic != quantizer.RoundMagic {
		t.Fatalf("roundMagic = %g, quantizer.RoundMagic = %g", float64(roundMagic), float64(quantizer.RoundMagic))
	}
}

// TestAsmStructOffsets pins the struct layouts the assembly kernels
// hard-code. A failure here means the .s files must be updated before
// anything else is debugged.
func TestAsmStructOffsets(t *testing.T) {
	check := func(name string, got, want uintptr) {
		t.Helper()
		if got != want {
			t.Errorf("%s offset = %d, assembly assumes %d", name, got, want)
		}
	}
	var q Quant
	check("Quant.InvDelta", unsafe.Offsetof(q.InvDelta), 0)
	check("Quant.Delta", unsafe.Offsetof(q.Delta), 8)
	check("Quant.EB", unsafe.Offsetof(q.EB), 16)
	check("Quant.RadiusF", unsafe.Offsetof(q.RadiusF), 24)
	check("Quant.Radius", unsafe.Offsetof(q.Radius), 32)

	var p PQRow
	check("PQRow.Data", unsafe.Offsetof(p.Data), 0)
	check("PQRow.Recon", unsafe.Offsetof(p.Recon), 24)
	check("PQRow.Codes", unsafe.Offsetof(p.Codes), 48)
	check("PQRow.Up", unsafe.Offsetof(p.Up), 72)
	check("PQRow.Pl", unsafe.Offsetof(p.Pl), 96)
	check("PQRow.Pu", unsafe.Offsetof(p.Pu), 120)
	check("PQRow.Lits", unsafe.Offsetof(p.Lits), 144)
	check("PQRow.SumSq", unsafe.Offsetof(p.SumSq), 168)

	var r RRRow
	check("RRRow.Out", unsafe.Offsetof(r.Out), 0)
	check("RRRow.Codes", unsafe.Offsetof(r.Codes), 24)
	check("RRRow.Up", unsafe.Offsetof(r.Up), 48)
	check("RRRow.Pl", unsafe.Offsetof(r.Pl), 72)
	check("RRRow.Pu", unsafe.Offsetof(r.Pu), 96)
	check("RRRow.Lits", unsafe.Offsetof(r.Lits), 120)

	if size := unsafe.Sizeof(int(0)); size != 8 {
		t.Skipf("assembly kernels assume 64-bit int, have %d bytes", size)
	}
}

func testQuant(eb float64, capacity int) *Quant {
	q, err := quantizer.New(eb, capacity)
	if err != nil {
		panic(err)
	}
	return &Quant{
		InvDelta: q.InvDelta(),
		Delta:    q.Delta(),
		EB:       q.ErrorBound(),
		RadiusF:  float64(q.Radius()),
		Radius:   int64(q.Radius()),
	}
}

// specials salts positions of a row with the awkward values the
// bit-identity contract must survive.
var specials = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1),
	0, math.Copysign(0, -1),
	5e-324, -5e-324, 2.2250738585072014e-308,
	math.MaxFloat64, -math.MaxFloat64,
	1e300, -1e300,
}

func randRow(rng *rand.Rand, n int, salt bool) []float64 {
	row := make([]float64, n)
	for i := range row {
		row[i] = rng.NormFloat64() * 10
	}
	if salt && n > 0 {
		for k := 0; k < 1+n/7; k++ {
			row[rng.Intn(n)] = specials[rng.Intn(len(specials))]
		}
	}
	return row
}

func newPQRow(data, up, pl, pu []float64) *PQRow {
	n := len(data)
	return &PQRow{
		Data:  data,
		Recon: make([]float64, n),
		Codes: make([]int32, n),
		Up:    up,
		Pl:    pl,
		Pu:    pu,
		Lits:  make([]float64, 0, n),
	}
}

func clonePQRow(a *PQRow) *PQRow {
	b := *a
	b.Recon = append([]float64(nil), a.Recon...)
	b.Codes = append([]int32(nil), a.Codes...)
	b.Lits = make([]float64, len(a.Lits), cap(a.Lits))
	copy(b.Lits, a.Lits)
	return &b
}

func comparePQRows(t *testing.T, label string, want, got *PQRow) {
	t.Helper()
	for k := range want.Recon {
		if math.Float64bits(want.Recon[k]) != math.Float64bits(got.Recon[k]) {
			t.Fatalf("%s: recon[%d] = %x, want %x", label, k, math.Float64bits(got.Recon[k]), math.Float64bits(want.Recon[k]))
		}
		if want.Codes[k] != got.Codes[k] {
			t.Fatalf("%s: codes[%d] = %d, want %d", label, k, got.Codes[k], want.Codes[k])
		}
	}
	if len(want.Lits) != len(got.Lits) {
		t.Fatalf("%s: %d literals, want %d", label, len(got.Lits), len(want.Lits))
	}
	for k := range want.Lits {
		if math.Float64bits(want.Lits[k]) != math.Float64bits(got.Lits[k]) {
			t.Fatalf("%s: lits[%d] = %x, want %x", label, k, math.Float64bits(got.Lits[k]), math.Float64bits(want.Lits[k]))
		}
	}
	if math.Float64bits(want.SumSq) != math.Float64bits(got.SumSq) {
		t.Fatalf("%s: SumSq = %x, want %x", label, math.Float64bits(got.SumSq), math.Float64bits(want.SumSq))
	}
}

// TestPredictQuantizeDispatchedMatchesGeneric drives the dispatched
// row kernels (assembly when active) against the generic reference on
// random rows salted with NaN/Inf/denormal values, every length 0..130
// to exercise tails, asserting bit-identical outputs.
func TestPredictQuantizeDispatchedMatchesGeneric(t *testing.T) {
	if Active() == "generic" {
		t.Skip("dispatched kernels are the generic kernels on this build")
	}
	rng := rand.New(rand.NewSource(9))
	for _, eb := range []float64{1e-3, 0.5, 1e-10} {
		q := testQuant(eb, 1024)
		for n := 0; n <= 130; n++ {
			salt := n%3 == 0
			data := randRow(rng, n, salt)
			up := randRow(rng, n, salt)
			pl := randRow(rng, n, salt)
			pu := randRow(rng, n, salt)

			ref := newPQRow(data, up, pl, pu)
			pqRowGeneric(q, ref)
			got := newPQRow(data, up, pl, pu)
			PredictQuantizeRow(q, got)
			comparePQRows(t, "row", ref, got)

			// Pair form against two generic single-row calls.
			dataB := randRow(rng, n, salt)
			refA := newPQRow(data, up, pl, pu)
			refB := newPQRow(dataB, pl, up, pu)
			pqRowGeneric(q, refA)
			pqRowGeneric(q, refB)
			gotA := newPQRow(data, up, pl, pu)
			gotB := newPQRow(dataB, pl, up, pu)
			PredictQuantizeRows2(q, gotA, gotB)
			comparePQRows(t, "pairA", refA, gotA)
			comparePQRows(t, "pairB", refB, gotB)

			// Quad form against four generic single-row calls.
			dataC := randRow(rng, n, salt)
			dataD := randRow(rng, n, salt)
			refC := newPQRow(dataC, up, pu, pl)
			refD := newPQRow(dataD, pu, pl, up)
			qr := [4]*PQRow{
				newPQRow(data, up, pl, pu),
				newPQRow(dataB, pl, up, pu),
				newPQRow(dataC, up, pu, pl),
				newPQRow(dataD, pu, pl, up),
			}
			pqRowGeneric(q, refC)
			pqRowGeneric(q, refD)
			PredictQuantizeRows4(q, qr[0], qr[1], qr[2], qr[3])
			comparePQRows(t, "quadA", refA, qr[0])
			comparePQRows(t, "quadB", refB, qr[1])
			comparePQRows(t, "quadC", refC, qr[2])
			comparePQRows(t, "quadD", refD, qr[3])

			// Reconstruction of the quantized rows must round-trip
			// identically too.
			checkRecon(t, q, refA)
			checkRecon(t, q, refB)
			checkRecon(t, q, refC)
			checkRecon(t, q, refD)
		}
	}
}

// checkRecon reconstructs a quantized row with both the generic and
// dispatched kernels and asserts both match the encoder's recon.
func checkRecon(t *testing.T, q *Quant, enc *PQRow) {
	t.Helper()
	n := len(enc.Data)
	mk := func() *RRRow {
		return &RRRow{
			Out:   make([]float64, n),
			Codes: enc.Codes,
			Up:    enc.Up,
			Pl:    enc.Pl,
			Pu:    enc.Pu,
			Lits:  enc.Lits,
		}
	}
	ref := mk()
	reconRowGeneric(q, ref)
	got := mk()
	ReconstructRow(q, got)
	for k := 0; k < n; k++ {
		if math.Float64bits(ref.Out[k]) != math.Float64bits(got.Out[k]) {
			t.Fatalf("recon: out[%d] = %x, want %x", k, math.Float64bits(got.Out[k]), math.Float64bits(ref.Out[k]))
		}
	}
}

// TestReconstructGroupsMatchGeneric checks the pair and quad
// reconstruction kernels against generic single-row calls, literals
// included.
func TestReconstructGroupsMatchGeneric(t *testing.T) {
	if Active() == "generic" {
		t.Skip("dispatched kernels are the generic kernels on this build")
	}
	rng := rand.New(rand.NewSource(17))
	q := testQuant(1e-2, 512)
	for n := 1; n <= 100; n++ {
		var enc, ref [4]*RRRow
		for l := range enc {
			e := newPQRow(randRow(rng, n, true), randRow(rng, n, true), randRow(rng, n, true), randRow(rng, n, true))
			pqRowGeneric(q, e)
			mk := func() *RRRow {
				return &RRRow{Out: make([]float64, n), Codes: e.Codes, Up: e.Up, Pl: e.Pl, Pu: e.Pu, Lits: e.Lits}
			}
			enc[l], ref[l] = mk(), mk()
			reconRowGeneric(q, ref[l])
		}
		compare := func(label string, want, got *RRRow) {
			t.Helper()
			for k := 0; k < n; k++ {
				if math.Float64bits(want.Out[k]) != math.Float64bits(got.Out[k]) {
					t.Fatalf("%s out[%d] mismatch (n=%d)", label, k, n)
				}
			}
		}
		ReconstructRows2(q, enc[0], enc[1])
		compare("pairA", ref[0], enc[0])
		compare("pairB", ref[1], enc[1])
		for l := range enc {
			for k := range enc[l].Out {
				enc[l].Out[k] = 0
			}
		}
		ReconstructRows4(q, enc[0], enc[1], enc[2], enc[3])
		for l := range enc {
			compare("quad", ref[l], enc[l])
		}
	}
}

// TestMinMaxDispatchedMatchesGeneric covers tails, specials, and the
// ±0 tie-resolution order.
func TestMinMaxDispatchedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := [][]float64{
		nil,
		{},
		{math.NaN()},
		{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()},
		{0, math.Copysign(0, -1)},
		{math.Copysign(0, -1), 0},
		{1, 2, 3, 4, 5, 6, 7},
		{math.Inf(1), math.Inf(-1)},
	}
	for n := 0; n <= 70; n++ {
		cases = append(cases, randRow(rng, n, true))
	}
	for i, data := range cases {
		wantMin, wantMax := minMaxGeneric(data)
		gotMin, gotMax := MinMax(data)
		if math.Float64bits(wantMin) != math.Float64bits(gotMin) || math.Float64bits(wantMax) != math.Float64bits(gotMax) {
			t.Errorf("case %d: MinMax = (%x, %x), want (%x, %x)", i,
				math.Float64bits(gotMin), math.Float64bits(gotMax),
				math.Float64bits(wantMin), math.Float64bits(wantMax))
		}
	}
}

// TestCountLanes4DispatchedMatchesGeneric checks lane-exact counts —
// every tail length mod 4 — and the panic contract on an out-of-range
// symbol in each position of a quad and of the tail.
func TestCountLanes4DispatchedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 64, 65, 1000, 1001, 1002, 1003} {
		syms := make([]int32, n)
		for i := range syms {
			syms[i] = int32(rng.Intn(256))
		}
		var want, got [4][]int64
		for l := range want {
			want[l] = make([]int64, 256)
			got[l] = make([]int64, 256)
		}
		countLanes4Generic(want[0], want[1], want[2], want[3], syms)
		CountLanes4(got[0], got[1], got[2], got[3], syms)
		for l := range want {
			for i := range want[l] {
				if want[l][i] != got[l][i] {
					t.Fatalf("n=%d: lane%d[%d] = %d, want %d", n, l, i, got[l][i], want[l][i])
				}
			}
		}
	}
	for _, bad := range []int32{-1, 256, 1 << 30} {
		for pos := 0; pos < 7; pos++ {
			syms := []int32{1, 2, 3, 4, 5, 6, 7}
			syms[pos] = bad
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("CountLanes4(sym=%d at %d) did not panic", bad, pos)
					}
				}()
				CountLanes4(make([]int64, 256), make([]int64, 256), make([]int64, 256), make([]int64, 256), syms)
			}()
		}
	}
}

// TestForceGeneric verifies the test-only dispatch override restores
// the previous selection.
func TestForceGeneric(t *testing.T) {
	before := Active()
	restore := ForceGeneric()
	if Active() != "generic" {
		t.Fatalf("Active() = %q under ForceGeneric", Active())
	}
	restore()
	if Active() != before {
		t.Fatalf("Active() = %q after restore, want %q", Active(), before)
	}
}
