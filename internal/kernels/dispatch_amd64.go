//go:build amd64 && !noasm

package kernels

// cpuid and xgetbv are tiny assembly shims (cpuid_amd64.s); the module
// has no dependencies, so feature detection is hand-rolled rather than
// imported from golang.org/x/sys/cpu.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// The assembly kernels (…_amd64.s). Each reproduces its generic
// counterpart's arithmetic operation-for-operation; see the package
// comment for the bit-identity contract and the differential fuzzers
// that enforce it.
//
//go:noescape
func minMaxAVX2(data []float64) (min, max float64)

//go:noescape
func countLanes4Asm(l0, l1, l2, l3 []int64, syms []int32)

//go:noescape
func pqRowAsm(q *Quant, a *PQRow)

//go:noescape
func pqRows2Asm(q *Quant, a, b *PQRow)

//go:noescape
func pqRows4Asm(q *Quant, a, b, c, d *PQRow)

//go:noescape
func reconRowAsm(q *Quant, a *RRRow)

//go:noescape
func reconRows2Asm(q *Quant, a, b *RRRow)

// reconRows4Asm is two pair calls: the reconstruction pair kernel
// already keeps both chains' working state in registers, and a wider
// interleave showed no further gain on the decode side (the quad form
// exists so the wavefront scheduler can hand both pipelines the same
// row groups).
func reconRows4Asm(q *Quant, a, b, c, d *RRRow) {
	reconRows2Asm(q, a, b)
	reconRows2Asm(q, c, d)
}

// countLanes4OOB backs the bounds check in countLanes4Asm: the assembly
// jumps here instead of writing outside the lane slices, matching the
// generic implementation's panic-on-bad-symbol contract.
func countLanes4OOB() {
	panic("kernels: CountLanes4 symbol out of range")
}

func init() {
	if !haveAVX2FMA() {
		return
	}
	minMaxFn = minMaxAVX2
	countLanes4Fn = countLanes4Asm
	pqRows4Fn = pqRows4Asm
	pqRows2Fn = pqRows2Asm
	pqRowFn = pqRowAsm
	reconRows4Fn = reconRows4Asm
	reconRows2Fn = reconRows2Asm
	reconRowFn = reconRowAsm
	implName = "avx2"
}

// haveAVX2FMA reports whether the CPU and OS support the AVX2+FMA
// kernels: AVX, AVX2, and FMA in CPUID, plus OS-enabled XMM+YMM state
// (OSXSAVE and XCR0 bits 1 and 2), the standard safety checklist for
// dispatching VEX-encoded code.
func haveAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
