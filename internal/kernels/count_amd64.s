//go:build amd64 && !noasm

#include "textflag.h"

// func countLanes4Asm(l0, l1, l2, l3 []int64, syms []int32)
//
// The four-lane frequency count with the per-symbol bounds checks kept:
// an out-of-range symbol routes to countLanes4OOB (which panics)
// instead of writing outside the lane slices, matching the generic
// implementation's contract. Four lanes put the increments to any one
// counter at least four iterations apart, which is what beats the
// store-to-load forwarding latency on runs of one dominant symbol —
// the common shape for quantization codes. Counter increments are
// commutative, so the order of checks and increments within an
// iteration does not change the lane contents. Not NOSPLIT: the panic
// path CALLs into Go.
TEXT ·countLanes4Asm(SB), $0-120
	MOVQ l0_base+0(FP), R8
	MOVQ l0_len+8(FP), DI
	MOVQ l1_base+24(FP), R9
	MOVQ l1_len+32(FP), R12
	MOVQ l2_base+48(FP), R10
	MOVQ l2_len+56(FP), R13
	MOVQ l3_base+72(FP), R11
	MOVQ l3_len+80(FP), R15
	MOVQ syms_base+96(FP), SI
	MOVQ syms_len+104(FP), DX

	MOVQ DX, CX
	SHRQ $2, CX
	JZ   tail

loop:
	MOVLQSX (SI), AX
	MOVLQSX 4(SI), BX
	CMPQ    AX, DI
	JAE     oob
	CMPQ    BX, R12
	JAE     oob
	INCQ    (R8)(AX*8)
	INCQ    (R9)(BX*8)
	MOVLQSX 8(SI), AX
	MOVLQSX 12(SI), BX
	CMPQ    AX, R13
	JAE     oob
	CMPQ    BX, R15
	JAE     oob
	INCQ    (R10)(AX*8)
	INCQ    (R11)(BX*8)
	ADDQ    $16, SI
	DECQ    CX
	JNZ     loop

tail:
	// The final n mod 4 symbols go to lanes 0.. in order.
	ANDQ    $3, DX
	JZ      done
	MOVLQSX (SI), AX
	CMPQ    AX, DI
	JAE     oob
	INCQ    (R8)(AX*8)
	DECQ    DX
	JZ      done
	MOVLQSX 4(SI), AX
	CMPQ    AX, R12
	JAE     oob
	INCQ    (R9)(AX*8)
	DECQ    DX
	JZ      done
	MOVLQSX 8(SI), AX
	CMPQ    AX, R13
	JAE     oob
	INCQ    (R10)(AX*8)

done:
	RET

oob:
	CALL ·countLanes4OOB(SB)
	RET
