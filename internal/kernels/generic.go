package kernels

import "math"

// roundMagic implements round-to-nearest (ties to even) by pushing the
// value into the [2^52, 2^53) binade; it must stay equal to
// quantizer.RoundMagic (asserted by TestRoundMagicMatchesQuantizer).
const roundMagic = 3 << 51

// minMaxLanes is MinMax's accumulator width. Sixteen float64 lanes are
// four YMM registers per accumulator in the AVX2 form — enough
// independent VMINPD/VMAXPD chains to turn the scan memory-bound. The
// lane assignment (lane = i mod 16, tail into lane 0, lanes merged in
// ascending order) is part of the kernel spec: a different width or
// merge order can change which of several equal ±0 extrema wins.
const minMaxLanes = 16

// minMaxGeneric is the portable MinMax.
func minMaxGeneric(data []float64) (min, max float64) {
	var mins, maxs [minMaxLanes]float64
	for l := range mins {
		mins[l] = math.Inf(1)
		maxs[l] = math.Inf(-1)
	}
	i := 0
	for ; i+minMaxLanes <= len(data); i += minMaxLanes {
		blk := data[i : i+minMaxLanes : i+minMaxLanes]
		for l, v := range blk {
			if v < mins[l] {
				mins[l] = v
			}
			if v > maxs[l] {
				maxs[l] = v
			}
		}
	}
	for ; i < len(data); i++ {
		v := data[i]
		if v < mins[0] {
			mins[0] = v
		}
		if v > maxs[0] {
			maxs[0] = v
		}
	}
	min, max = mins[0], maxs[0]
	for l := 1; l < minMaxLanes; l++ {
		if mins[l] < min {
			min = mins[l]
		}
	}
	for l := 1; l < minMaxLanes; l++ {
		if maxs[l] > max {
			max = maxs[l]
		}
	}
	return min, max
}

// countLanes4Generic is the portable CountLanes4: the historical
// interleaved counting loop from internal/huffman, widened from two
// lanes to four (lane = i mod 4, tail symbols into lanes 0.. in order).
func countLanes4Generic(l0, l1, l2, l3 []int64, syms []int32) {
	i := 0
	for ; i+4 <= len(syms); i += 4 {
		l0[syms[i]]++
		l1[syms[i+1]]++
		l2[syms[i+2]]++
		l3[syms[i+3]]++
	}
	if i < len(syms) {
		l0[syms[i]]++
		i++
	}
	if i < len(syms) {
		l1[syms[i]]++
		i++
	}
	if i < len(syms) {
		l2[syms[i]]++
	}
}

// pqRowGeneric is the reference fused predict+quantize row loop. Keep
// the operation order in sync with quantizer.QuantizeRecon and the
// assembly kernels: prediction sums left-to-right, binning via one
// math.FMA against roundMagic, rec as a plain multiply, and the bound
// enforced on the reconstruction itself (NaN/Inf fail the comparisons
// and fall to the literal path naturally).
func pqRowGeneric(q *Quant, a *PQRow) {
	n := len(a.Data)
	if n == 0 {
		return
	}
	da, ra := a.Data[:n], a.Recon[:n]
	ca := a.Codes[:n]
	ua, pla, pua := a.Up[:n], a.Pl[:n], a.Pu[:n]
	la := a.Lits
	invDelta, delta, eb, radiusF := q.InvDelta, q.Delta, q.EB, q.RadiusF
	radius := int(q.Radius)
	ssum := a.SumSq
	pred := pla[0] + ua[0] - pua[0]
	for k := 0; k < n; k++ {
		v := da[k]
		diff := v - pred
		idx := math.FMA(diff, invDelta, roundMagic) - roundMagic
		rec := idx * delta
		e := diff - rec
		if idx < radiusF && idx > -radiusF && e <= eb && e >= -eb {
			ca[k] = int32(int(idx) + radius)
			ra[k] = pred + rec
			ssum += e * e
		} else {
			la = append(la, v)
			ca[k] = 0
			ra[k] = v
		}
		if k+1 < n {
			pred = pla[k+1] + ua[k+1] + ra[k] - pua[k+1] - pla[k] - ua[k] + pua[k]
		}
	}
	a.SumSq, a.Lits = ssum, la
}

// The generic grouped forms run their rows serially: the rows are
// independent, so the outputs are identical to the single-row loop by
// construction, and the Go compiler makes a hash of an interleaved
// source form anyway (two rows' worth of live floats spill past the
// fifteen usable XMM registers and the interleave runs slower than the
// serial loop — measured, not guessed). The assembly forms interleave
// for real; see pq_amd64.s.

func pqRows2Generic(q *Quant, a, b *PQRow) {
	pqRowGeneric(q, a)
	pqRowGeneric(q, b)
}

func pqRows4Generic(q *Quant, a, b, c, d *PQRow) {
	pqRowGeneric(q, a)
	pqRowGeneric(q, b)
	pqRowGeneric(q, c)
	pqRowGeneric(q, d)
}

// reconRowGeneric is the reference interior-row reconstruction loop;
// operation order matches the historical internal/sz decode fast path
// (and therefore the encoder's recon updates) exactly.
func reconRowGeneric(q *Quant, a *RRRow) {
	n := len(a.Out)
	if n == 0 {
		return
	}
	out := a.Out[:n]
	ca := a.Codes[:n]
	ua, pla, pua := a.Up[:n], a.Pl[:n], a.Pu[:n]
	lits := a.Lits
	delta := q.Delta
	radius := int(q.Radius)
	li := 0
	if c := ca[0]; c == 0 {
		out[0] = lits[li]
		li++
	} else {
		out[0] = pla[0] + ua[0] - pua[0] + float64(int(c)-radius)*delta
	}
	for k := 1; k < n; k++ {
		c := ca[k]
		if c == 0 {
			out[k] = lits[li]
			li++
			continue
		}
		pred := pla[k] + ua[k] + out[k-1] - pua[k] - pla[k-1] - ua[k-1] + pua[k-1]
		out[k] = pred + float64(int(c)-radius)*delta
	}
}

func reconRows2Generic(q *Quant, a, b *RRRow) {
	reconRowGeneric(q, a)
	reconRowGeneric(q, b)
}

func reconRows4Generic(q *Quant, a, b, c, d *RRRow) {
	reconRowGeneric(q, a)
	reconRowGeneric(q, b)
	reconRowGeneric(q, c)
	reconRowGeneric(q, d)
}
