//go:build amd64 && !noasm

#include "textflag.h"

// Round-to-nearest magic (3<<51, must equal quantizer.RoundMagic) and a
// 128-bit sign-flip mask for negating eb/radiusF in the prologues.
DATA magic<>+0(SB)/8, $0x4338000000000000
GLOBL magic<>(SB), RODATA, $8

DATA sign128<>+0(SB)/8, $0x8000000000000000
DATA sign128<>+8(SB)/8, $0x0000000000000000
GLOBL sign128<>(SB), RODATA, $16

// Struct offsets (asserted by TestAsmStructOffsets):
//   Quant: InvDelta+0  Delta+8  EB+16  RadiusF+24  Radius+32
//   PQRow: Data+0 Recon+24 Codes+48 Up+72 Pl+96 Pu+120
//          Lits ptr+144 len+152  SumSq+168

// func pqRowAsm(q *Quant, a *PQRow)
//
// Register-for-register transcription of pqRowGeneric. The accept test
// is evaluated as four UCOMISD branches arranged so every NaN path
// lands on the literal branch, exactly the generic comparisons'
// outcome; ssum accumulates via separate VMULSD+VADDSD (no FMA), and
// the prediction update chains strictly left to right.
TEXT ·pqRowAsm(SB), NOSPLIT, $0-16
	MOVQ   q+0(FP), AX
	VMOVSD 0(AX), X0            // invDelta
	VMOVSD 8(AX), X1            // delta
	VMOVSD 16(AX), X2           // eb
	VMOVSD 24(AX), X4           // radiusF
	MOVQ   32(AX), DX           // radius
	VXORPD sign128<>(SB), X2, X3 // -eb
	VXORPD sign128<>(SB), X4, X5 // -radiusF

	MOVQ   a+8(FP), DI
	MOVQ   0(DI), SI   // Data
	MOVQ   8(DI), CX   // n
	MOVQ   24(DI), R8  // Recon
	MOVQ   48(DI), R9  // Codes
	MOVQ   72(DI), R10 // Up
	MOVQ   96(DI), R11 // Pl
	MOVQ   120(DI), R12 // Pu
	MOVQ   144(DI), R13 // Lits base
	MOVQ   152(DI), R15 // Lits len
	VMOVSD 168(DI), X8  // ssum

	TESTQ CX, CX
	JZ    done

	// pred = pl[0] + up[0] - pu[0]
	VMOVSD (R11), X9
	VADDSD (R10), X9, X9
	VSUBSD (R12), X9, X9
	XORQ   BX, BX

loop:
	VMOVSD (SI)(BX*8), X10 // v
	VSUBSD X9, X10, X11    // diff = v - pred

	VMOVAPD     X11, X12
	VFMADD213SD magic<>(SB), X0, X12
	VSUBSD      magic<>(SB), X12, X12 // idx
	VMULSD      X1, X12, X13          // rec = idx*delta
	VSUBSD      X13, X11, X14         // e = diff - rec

	UCOMISD X12, X4 // radiusF cmp idx: stay iff idx < radiusF, ordered
	JLS     lit
	UCOMISD X5, X12 // idx cmp -radiusF: stay iff idx > -radiusF, ordered
	JLS     lit
	UCOMISD X14, X2 // eb cmp e: stay iff e <= eb, ordered
	JCS     lit
	UCOMISD X3, X14 // e cmp -eb: stay iff e >= -eb, ordered
	JCS     lit

	CVTTSD2SQ X12, AX
	ADDQ      DX, AX
	MOVL      AX, (R9)(BX*4)  // codes[k] = int32(int(idx) + radius)
	VADDSD    X13, X9, X10    // ra = pred + rec
	VMOVSD    X10, (R8)(BX*8)
	VMULSD    X14, X14, X14
	VADDSD    X14, X8, X8     // ssum += e*e
	JMP       next

lit:
	VMOVSD X10, (R13)(R15*8) // lits = append(lits, v)
	INCQ   R15
	MOVL   $0, (R9)(BX*4)
	VMOVSD X10, (R8)(BX*8)   // recon[k] = v; X10 stays ra

next:
	INCQ BX
	CMPQ BX, CX
	JGE  done

	// pred = pl[k+1] + up[k+1] + ra - pu[k+1] - pl[k] - up[k] + pu[k]
	// (BX is k+1 here; -8 displacements reach the k column)
	VMOVSD (R11)(BX*8), X9
	VADDSD (R10)(BX*8), X9, X9
	VADDSD X10, X9, X9
	VSUBSD (R12)(BX*8), X9, X9
	VSUBSD -8(R11)(BX*8), X9, X9
	VSUBSD -8(R10)(BX*8), X9, X9
	VADDSD -8(R12)(BX*8), X9, X9
	JMP    loop

done:
	MOVQ   a+8(FP), DI
	VMOVSD X8, 168(DI)
	MOVQ   R15, 152(DI)
	RET

// func pqRows2Asm(q *Quant, a, b *PQRow)
//
// Two independent rows per iteration: lane A then lane B, each lane's
// instruction sequence identical to pqRowAsm's, so the out-of-order
// core overlaps the two serial recon dependency chains. Cold operands
// (codes/lits pointers, pu row B, compare constants) live in the frame;
// the compare constants move to the memory side of UCOMISD, which flips
// the branch senses relative to pqRowAsm (reject-on-pass instead of
// stay-on-pass) while keeping the accept predicate's outcome — NaNs
// rejected — bit-identical.
//
// Frame: 0 codesA, 8 codesB, 16 puB, 24 litsA, 32 litsB, 40 cntA,
// 48 cntB, 56 eb, 64 -eb, 72 radiusF, 80 -radiusF, 88 radius.
TEXT ·pqRows2Asm(SB), NOSPLIT, $96-24
	MOVQ   q+0(FP), AX
	VMOVSD 0(AX), X0  // invDelta
	VMOVSD 8(AX), X1  // delta
	VMOVSD 16(AX), X2
	VMOVSD X2, 56(SP) // eb
	VXORPD sign128<>(SB), X2, X2
	VMOVSD X2, 64(SP) // -eb
	VMOVSD 24(AX), X2
	VMOVSD X2, 72(SP) // radiusF
	VXORPD sign128<>(SB), X2, X2
	VMOVSD X2, 80(SP) // -radiusF
	MOVQ   32(AX), DX
	MOVQ   DX, 88(SP) // radius

	MOVQ   a+8(FP), AX
	MOVQ   0(AX), SI    // dataA
	MOVQ   8(AX), CX    // n
	MOVQ   24(AX), R8   // reconA
	MOVQ   48(AX), DX
	MOVQ   DX, 0(SP)    // codesA
	MOVQ   72(AX), R10  // upA
	MOVQ   96(AX), R12  // plA
	MOVQ   120(AX), R15 // puA
	MOVQ   144(AX), DX
	MOVQ   DX, 24(SP)   // litsA
	MOVQ   152(AX), DX
	MOVQ   DX, 40(SP)   // cntA
	VMOVSD 168(AX), X10 // ssumA

	MOVQ   b+16(FP), AX
	MOVQ   0(AX), DI   // dataB
	MOVQ   24(AX), R9  // reconB
	MOVQ   48(AX), DX
	MOVQ   DX, 8(SP)   // codesB
	MOVQ   72(AX), R11 // upB
	MOVQ   96(AX), R13 // plB
	MOVQ   120(AX), DX
	MOVQ   DX, 16(SP)  // puB
	MOVQ   144(AX), DX
	MOVQ   DX, 32(SP)  // litsB
	MOVQ   152(AX), DX
	MOVQ   DX, 48(SP)  // cntB
	VMOVSD 168(AX), X13 // ssumB

	TESTQ CX, CX
	JZ    done

	// predA = plA[0] + upA[0] - puA[0]
	VMOVSD (R12), X6
	VADDSD (R10), X6, X6
	VSUBSD (R15), X6, X6

	// predB = plB[0] + upB[0] - puB[0]
	MOVQ   16(SP), DX
	VMOVSD (R13), X7
	VADDSD (R11), X7, X7
	VSUBSD (DX), X7, X7

	XORQ BX, BX

loop:
	// ---- lane A (temps X2 v, X3 diff, X4 idx, X5 rec, X14 e) ----
	VMOVSD (SI)(BX*8), X2
	VSUBSD X6, X2, X3

	VMOVAPD     X3, X4
	VFMADD213SD magic<>(SB), X0, X4
	VSUBSD      magic<>(SB), X4, X4
	VMULSD      X1, X4, X5
	VSUBSD      X5, X3, X14

	UCOMISD 72(SP), X4  // idx cmp radiusF: reject iff idx >= radiusF, ordered
	JCC     litA
	UCOMISD 80(SP), X4  // idx cmp -radiusF: reject iff idx <= -radiusF or NaN
	JLS     litA
	UCOMISD 56(SP), X14 // e cmp eb: reject iff e > eb, ordered
	JHI     litA
	UCOMISD 64(SP), X14 // e cmp -eb: reject iff e < -eb or NaN
	JCS     litA

	CVTTSD2SQ X4, AX
	ADDQ      88(SP), AX
	MOVQ      0(SP), DX
	MOVL      AX, (DX)(BX*4)
	VADDSD    X5, X6, X2    // raA
	VMOVSD    X2, (R8)(BX*8)
	VMULSD    X14, X14, X14
	VADDSD    X14, X10, X10
	JMP       laneB

litA:
	MOVQ   24(SP), DX
	MOVQ   40(SP), AX
	VMOVSD X2, (DX)(AX*8)
	INCQ   40(SP)
	MOVQ   0(SP), DX
	MOVL   $0, (DX)(BX*4)
	VMOVSD X2, (R8)(BX*8) // X2 stays raA = v

laneB:
	// ---- lane B (temps X3 v, X4 diff, X5 idx, X6 rec, X14 e;
	// X6/predA is dead once raA exists) ----
	VMOVSD (DI)(BX*8), X3
	VSUBSD X7, X3, X4

	VMOVAPD     X4, X5
	VFMADD213SD magic<>(SB), X0, X5
	VSUBSD      magic<>(SB), X5, X5
	VMULSD      X1, X5, X6
	VSUBSD      X6, X4, X14

	UCOMISD 72(SP), X5
	JCC     litB
	UCOMISD 80(SP), X5
	JLS     litB
	UCOMISD 56(SP), X14
	JHI     litB
	UCOMISD 64(SP), X14
	JCS     litB

	CVTTSD2SQ X5, AX
	ADDQ      88(SP), AX
	MOVQ      8(SP), DX
	MOVL      AX, (DX)(BX*4)
	VADDSD    X6, X7, X3    // raB
	VMOVSD    X3, (R9)(BX*8)
	VMULSD    X14, X14, X14
	VADDSD    X14, X13, X13
	JMP       next

litB:
	MOVQ   32(SP), DX
	MOVQ   48(SP), AX
	VMOVSD X3, (DX)(AX*8)
	INCQ   48(SP)
	MOVQ   8(SP), DX
	MOVL   $0, (DX)(BX*4)
	VMOVSD X3, (R9)(BX*8) // X3 stays raB = v

next:
	INCQ BX
	CMPQ BX, CX
	JGE  done

	// predA = plA[k+1]+upA[k+1]+raA-puA[k+1]-plA[k]-upA[k]+puA[k]
	VMOVSD (R12)(BX*8), X6
	VADDSD (R10)(BX*8), X6, X6
	VADDSD X2, X6, X6
	VSUBSD (R15)(BX*8), X6, X6
	VSUBSD -8(R12)(BX*8), X6, X6
	VSUBSD -8(R10)(BX*8), X6, X6
	VADDSD -8(R15)(BX*8), X6, X6

	// predB likewise, puB from the frame
	MOVQ   16(SP), DX
	VMOVSD (R13)(BX*8), X7
	VADDSD (R11)(BX*8), X7, X7
	VADDSD X3, X7, X7
	VSUBSD (DX)(BX*8), X7, X7
	VSUBSD -8(R13)(BX*8), X7, X7
	VSUBSD -8(R11)(BX*8), X7, X7
	VADDSD -8(DX)(BX*8), X7, X7
	JMP    loop

done:
	MOVQ   a+8(FP), AX
	VMOVSD X10, 168(AX)
	MOVQ   40(SP), DX
	MOVQ   DX, 152(AX)
	MOVQ   b+16(FP), AX
	VMOVSD X13, 168(AX)
	MOVQ   48(SP), DX
	MOVQ   DX, 152(AX)
	RET

// func pqRows4Asm(q *Quant, a, b, c, d *PQRow)
//
// Four independent rows per iteration, lane A through lane D, each
// lane's instruction sequence identical to pqRowAsm's. Four ~20-cycle
// serial recon chains in flight cover the chain latency almost
// completely, leaving the loop bound by uop throughput and the
// data/recon/codes memory streams. There are not enough registers for
// four lanes' pointers, so every pointer lives in the frame (L1-hot,
// off the critical path); only the four running predictions
// (X2..X5), the four Σe² accumulators (X6..X9), and the quantizer
// constants (X0/X1 plus the frame-spilled compare bounds) stay in
// registers. Prediction updates for all four lanes sit after the
// k+1 < n check at next:, reaching the k column with -8 displacements
// and reloading ra from the just-stored recon slot.
//
// Frame: per-lane blocks at 0 (A), 64 (B), 128 (C), 192 (D), each
// {data+0 recon+8 codes+16 up+24 pl+32 pu+40 lits+48 cnt+56}; then
// 256 eb, 264 -eb, 272 radiusF, 280 -radiusF, 288 radius.
TEXT ·pqRows4Asm(SB), NOSPLIT, $296-40
	MOVQ   q+0(FP), AX
	VMOVSD 0(AX), X0  // invDelta
	VMOVSD 8(AX), X1  // delta
	VMOVSD 16(AX), X2
	VMOVSD X2, 256(SP) // eb
	VXORPD sign128<>(SB), X2, X2
	VMOVSD X2, 264(SP) // -eb
	VMOVSD 24(AX), X2
	VMOVSD X2, 272(SP) // radiusF
	VXORPD sign128<>(SB), X2, X2
	VMOVSD X2, 280(SP) // -radiusF
	MOVQ   32(AX), DX
	MOVQ   DX, 288(SP) // radius

	MOVQ   a+8(FP), AX
	MOVQ   0(AX), DX
	MOVQ   DX, 0(SP)   // dataA
	MOVQ   8(AX), CX   // n
	MOVQ   24(AX), DX
	MOVQ   DX, 8(SP)   // reconA
	MOVQ   48(AX), DX
	MOVQ   DX, 16(SP)  // codesA
	MOVQ   72(AX), DX
	MOVQ   DX, 24(SP)  // upA
	MOVQ   96(AX), DX
	MOVQ   DX, 32(SP)  // plA
	MOVQ   120(AX), DX
	MOVQ   DX, 40(SP)  // puA
	MOVQ   144(AX), DX
	MOVQ   DX, 48(SP)  // litsA
	MOVQ   152(AX), DX
	MOVQ   DX, 56(SP)  // cntA
	VMOVSD 168(AX), X6 // ssumA

	MOVQ   b+16(FP), AX
	MOVQ   0(AX), DX
	MOVQ   DX, 64(SP)
	MOVQ   24(AX), DX
	MOVQ   DX, 72(SP)
	MOVQ   48(AX), DX
	MOVQ   DX, 80(SP)
	MOVQ   72(AX), DX
	MOVQ   DX, 88(SP)
	MOVQ   96(AX), DX
	MOVQ   DX, 96(SP)
	MOVQ   120(AX), DX
	MOVQ   DX, 104(SP)
	MOVQ   144(AX), DX
	MOVQ   DX, 112(SP)
	MOVQ   152(AX), DX
	MOVQ   DX, 120(SP)
	VMOVSD 168(AX), X7 // ssumB

	MOVQ   c+24(FP), AX
	MOVQ   0(AX), DX
	MOVQ   DX, 128(SP)
	MOVQ   24(AX), DX
	MOVQ   DX, 136(SP)
	MOVQ   48(AX), DX
	MOVQ   DX, 144(SP)
	MOVQ   72(AX), DX
	MOVQ   DX, 152(SP)
	MOVQ   96(AX), DX
	MOVQ   DX, 160(SP)
	MOVQ   120(AX), DX
	MOVQ   DX, 168(SP)
	MOVQ   144(AX), DX
	MOVQ   DX, 176(SP)
	MOVQ   152(AX), DX
	MOVQ   DX, 184(SP)
	VMOVSD 168(AX), X8 // ssumC

	MOVQ   d+32(FP), AX
	MOVQ   0(AX), DX
	MOVQ   DX, 192(SP)
	MOVQ   24(AX), DX
	MOVQ   DX, 200(SP)
	MOVQ   48(AX), DX
	MOVQ   DX, 208(SP)
	MOVQ   72(AX), DX
	MOVQ   DX, 216(SP)
	MOVQ   96(AX), DX
	MOVQ   DX, 224(SP)
	MOVQ   120(AX), DX
	MOVQ   DX, 232(SP)
	MOVQ   144(AX), DX
	MOVQ   DX, 240(SP)
	MOVQ   152(AX), DX
	MOVQ   DX, 248(SP)
	VMOVSD 168(AX), X9 // ssumD

	TESTQ CX, CX
	JZ    done

	// predL = plL[0] + upL[0] - puL[0], lanes A..D in X2..X5
	MOVQ   32(SP), SI
	MOVQ   24(SP), DI
	MOVQ   40(SP), AX
	VMOVSD (SI), X2
	VADDSD (DI), X2, X2
	VSUBSD (AX), X2, X2
	MOVQ   96(SP), SI
	MOVQ   88(SP), DI
	MOVQ   104(SP), AX
	VMOVSD (SI), X3
	VADDSD (DI), X3, X3
	VSUBSD (AX), X3, X3
	MOVQ   160(SP), SI
	MOVQ   152(SP), DI
	MOVQ   168(SP), AX
	VMOVSD (SI), X4
	VADDSD (DI), X4, X4
	VSUBSD (AX), X4, X4
	MOVQ   224(SP), SI
	MOVQ   216(SP), DI
	MOVQ   232(SP), AX
	VMOVSD (SI), X5
	VADDSD (DI), X5, X5
	VSUBSD (AX), X5, X5

	XORQ BX, BX

loop:
	// ---- lane A (pred X2, ssum X6; temps X10 v/ra, X11 diff,
	// X12 idx, X13 rec, X14 e) ----
	MOVQ   0(SP), SI
	VMOVSD (SI)(BX*8), X10
	VSUBSD X2, X10, X11

	VMOVAPD     X11, X12
	VFMADD213SD magic<>(SB), X0, X12
	VSUBSD      magic<>(SB), X12, X12
	VMULSD      X1, X12, X13
	VSUBSD      X13, X11, X14

	UCOMISD 272(SP), X12 // idx cmp radiusF: reject iff idx >= radiusF, ordered
	JCC     litA
	UCOMISD 280(SP), X12 // idx cmp -radiusF: reject iff idx <= -radiusF or NaN
	JLS     litA
	UCOMISD 256(SP), X14 // e cmp eb: reject iff e > eb, ordered
	JHI     litA
	UCOMISD 264(SP), X14 // e cmp -eb: reject iff e < -eb or NaN
	JCS     litA

	CVTTSD2SQ X12, AX
	ADDQ      288(SP), AX
	MOVQ      16(SP), DX
	MOVL      AX, (DX)(BX*4)
	VADDSD    X13, X2, X10 // raA
	VMULSD    X14, X14, X14
	VADDSD    X14, X6, X6
	JMP       storeA

litA:
	MOVQ   48(SP), DX
	MOVQ   56(SP), AX
	VMOVSD X10, (DX)(AX*8)
	INCQ   56(SP)
	MOVQ   16(SP), DX
	MOVL   $0, (DX)(BX*4)

storeA:
	MOVQ   8(SP), DX
	VMOVSD X10, (DX)(BX*8)

	// ---- lane B (pred X3, ssum X7) ----
	MOVQ   64(SP), SI
	VMOVSD (SI)(BX*8), X10
	VSUBSD X3, X10, X11

	VMOVAPD     X11, X12
	VFMADD213SD magic<>(SB), X0, X12
	VSUBSD      magic<>(SB), X12, X12
	VMULSD      X1, X12, X13
	VSUBSD      X13, X11, X14

	UCOMISD 272(SP), X12
	JCC     litB
	UCOMISD 280(SP), X12
	JLS     litB
	UCOMISD 256(SP), X14
	JHI     litB
	UCOMISD 264(SP), X14
	JCS     litB

	CVTTSD2SQ X12, AX
	ADDQ      288(SP), AX
	MOVQ      80(SP), DX
	MOVL      AX, (DX)(BX*4)
	VADDSD    X13, X3, X10 // raB
	VMULSD    X14, X14, X14
	VADDSD    X14, X7, X7
	JMP       storeB

litB:
	MOVQ   112(SP), DX
	MOVQ   120(SP), AX
	VMOVSD X10, (DX)(AX*8)
	INCQ   120(SP)
	MOVQ   80(SP), DX
	MOVL   $0, (DX)(BX*4)

storeB:
	MOVQ   72(SP), DX
	VMOVSD X10, (DX)(BX*8)

	// ---- lane C (pred X4, ssum X8) ----
	MOVQ   128(SP), SI
	VMOVSD (SI)(BX*8), X10
	VSUBSD X4, X10, X11

	VMOVAPD     X11, X12
	VFMADD213SD magic<>(SB), X0, X12
	VSUBSD      magic<>(SB), X12, X12
	VMULSD      X1, X12, X13
	VSUBSD      X13, X11, X14

	UCOMISD 272(SP), X12
	JCC     litC
	UCOMISD 280(SP), X12
	JLS     litC
	UCOMISD 256(SP), X14
	JHI     litC
	UCOMISD 264(SP), X14
	JCS     litC

	CVTTSD2SQ X12, AX
	ADDQ      288(SP), AX
	MOVQ      144(SP), DX
	MOVL      AX, (DX)(BX*4)
	VADDSD    X13, X4, X10 // raC
	VMULSD    X14, X14, X14
	VADDSD    X14, X8, X8
	JMP       storeC

litC:
	MOVQ   176(SP), DX
	MOVQ   184(SP), AX
	VMOVSD X10, (DX)(AX*8)
	INCQ   184(SP)
	MOVQ   144(SP), DX
	MOVL   $0, (DX)(BX*4)

storeC:
	MOVQ   136(SP), DX
	VMOVSD X10, (DX)(BX*8)

	// ---- lane D (pred X5, ssum X9) ----
	MOVQ   192(SP), SI
	VMOVSD (SI)(BX*8), X10
	VSUBSD X5, X10, X11

	VMOVAPD     X11, X12
	VFMADD213SD magic<>(SB), X0, X12
	VSUBSD      magic<>(SB), X12, X12
	VMULSD      X1, X12, X13
	VSUBSD      X13, X11, X14

	UCOMISD 272(SP), X12
	JCC     litD
	UCOMISD 280(SP), X12
	JLS     litD
	UCOMISD 256(SP), X14
	JHI     litD
	UCOMISD 264(SP), X14
	JCS     litD

	CVTTSD2SQ X12, AX
	ADDQ      288(SP), AX
	MOVQ      208(SP), DX
	MOVL      AX, (DX)(BX*4)
	VADDSD    X13, X5, X10 // raD
	VMULSD    X14, X14, X14
	VADDSD    X14, X9, X9
	JMP       storeD

litD:
	MOVQ   240(SP), DX
	MOVQ   248(SP), AX
	VMOVSD X10, (DX)(AX*8)
	INCQ   248(SP)
	MOVQ   208(SP), DX
	MOVL   $0, (DX)(BX*4)

storeD:
	MOVQ   200(SP), DX
	VMOVSD X10, (DX)(BX*8)

	INCQ BX
	CMPQ BX, CX
	JGE  done

	// predL = plL[k+1]+upL[k+1]+raL-puL[k+1]-plL[k]-upL[k]+puL[k]
	// (BX is k+1 here; -8 displacements reach the k column, and raL
	// reloads from the recon slot stored above)
	MOVQ   32(SP), SI
	MOVQ   24(SP), DI
	MOVQ   40(SP), AX
	MOVQ   8(SP), DX
	VMOVSD (SI)(BX*8), X2
	VADDSD (DI)(BX*8), X2, X2
	VADDSD -8(DX)(BX*8), X2, X2
	VSUBSD (AX)(BX*8), X2, X2
	VSUBSD -8(SI)(BX*8), X2, X2
	VSUBSD -8(DI)(BX*8), X2, X2
	VADDSD -8(AX)(BX*8), X2, X2

	MOVQ   96(SP), SI
	MOVQ   88(SP), DI
	MOVQ   104(SP), AX
	MOVQ   72(SP), DX
	VMOVSD (SI)(BX*8), X3
	VADDSD (DI)(BX*8), X3, X3
	VADDSD -8(DX)(BX*8), X3, X3
	VSUBSD (AX)(BX*8), X3, X3
	VSUBSD -8(SI)(BX*8), X3, X3
	VSUBSD -8(DI)(BX*8), X3, X3
	VADDSD -8(AX)(BX*8), X3, X3

	MOVQ   160(SP), SI
	MOVQ   152(SP), DI
	MOVQ   168(SP), AX
	MOVQ   136(SP), DX
	VMOVSD (SI)(BX*8), X4
	VADDSD (DI)(BX*8), X4, X4
	VADDSD -8(DX)(BX*8), X4, X4
	VSUBSD (AX)(BX*8), X4, X4
	VSUBSD -8(SI)(BX*8), X4, X4
	VSUBSD -8(DI)(BX*8), X4, X4
	VADDSD -8(AX)(BX*8), X4, X4

	MOVQ   224(SP), SI
	MOVQ   216(SP), DI
	MOVQ   232(SP), AX
	MOVQ   200(SP), DX
	VMOVSD (SI)(BX*8), X5
	VADDSD (DI)(BX*8), X5, X5
	VADDSD -8(DX)(BX*8), X5, X5
	VSUBSD (AX)(BX*8), X5, X5
	VSUBSD -8(SI)(BX*8), X5, X5
	VSUBSD -8(DI)(BX*8), X5, X5
	VADDSD -8(AX)(BX*8), X5, X5

	JMP loop

done:
	MOVQ   a+8(FP), AX
	VMOVSD X6, 168(AX)
	MOVQ   56(SP), DX
	MOVQ   DX, 152(AX)
	MOVQ   b+16(FP), AX
	VMOVSD X7, 168(AX)
	MOVQ   120(SP), DX
	MOVQ   DX, 152(AX)
	MOVQ   c+24(FP), AX
	VMOVSD X8, 168(AX)
	MOVQ   184(SP), DX
	MOVQ   DX, 152(AX)
	MOVQ   d+32(FP), AX
	VMOVSD X9, 168(AX)
	MOVQ   248(SP), DX
	MOVQ   DX, 152(AX)
	RET
