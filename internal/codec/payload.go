package codec

// Chunk payload version framing, shared by the SZ and transform
// pipelines.
//
// Legacy chunk payloads (every stream before the four-lane format) are
// bare DEFLATE streams: their first byte encodes BFINAL and BTYPE in its
// low three bits, and the only invalid combination is BTYPE = 3
// (reserved, RFC 1951 §3.2.3). A first byte of 0x07 — BFINAL=1,
// BTYPE=3 — therefore can never begin a valid legacy payload, which
// makes it a safe in-band version marker: decoders dispatch on it with
// no header bump or stream-level flag, and legacy payloads keep decoding
// through the pre-lane path byte for byte.
const (
	// PayloadMarker introduces a versioned chunk payload:
	// payload[0] == PayloadMarker, payload[1] == the version byte.
	PayloadMarker = 0x07

	// PayloadVersionLanes4 is the four-lane interleaved Huffman payload:
	// the quantization codes are split into 4 interleaved lanes sharing
	// one canonical code table (huffman.EncodeLanes4), framed by a
	// codes-encoding flag and a byte length, and usually stored raw —
	// Huffman output on noisy chunks is within a fraction of a percent of
	// incompressible, so DEFLATE over it bought ~0.1% ratio for a
	// dominant share of decode time. The literal section always stays
	// DEFLATE-compressed.
	PayloadVersionLanes4 = 1
)

// Codes-section encodings inside a versioned payload. Raw is the fast
// path; Deflate survives for smooth chunks, where the Huffman body is
// long runs of one pattern and DEFLATE still collapses it — the regime
// fixed-ratio steering at high targets depends on.
const (
	PayloadCodesRaw     = 0
	PayloadCodesDeflate = 1
)

// CodesDeflateWins reports whether a deflated codes section earns its
// decode-time cost over storing rawLen bytes directly: it must save more
// than 1/16th (6.25%). Typical noisy chunks deflate by ~0.1% and stay
// raw; run-dominated smooth chunks deflate by 90%+ and opt in.
func CodesDeflateWins(rawLen, compLen int) bool {
	return compLen < rawLen-rawLen/16
}
