package codec

import (
	"context"
	"errors"
	"fmt"

	"fixedpsnr/internal/field"
	"fixedpsnr/internal/parallel"
)

// Region decoding: reconstruct an axis-aligned sub-block of a field from
// a compressed stream, decoding only the chunks the region intersects.
// Because chunks tile the slowest dimension and each chunk restarts its
// pipeline state, the result is byte-identical to slicing a full decode;
// the cost scales with the intersected rows, not the field.

// DecompressRegion reconstructs the sub-block starting at off with
// extents ext from a compressed stream. Chunk-capable streams decode only
// the intersecting chunks; other streams (legacy single-payload, custom
// codecs, pointwise-relative) fall back to a full decode plus crop, so
// the call succeeds on every registered stream.
func DecompressRegion(data []byte, off, ext []int) (*field.Field, *Header, error) {
	return DecompressRegionScratch(context.Background(), data, off, ext, nil)
}

// DecompressRegionScratch is DecompressRegion drawing per-chunk decode
// transients (slab buffers, inflate windows, Huffman tables) from a
// session's sc, under a cancellable context: a cancelled ctx aborts the
// decode within one chunk of work per worker and returns ctx.Err(). A nil
// sc is valid and allocates fresh.
func DecompressRegionScratch(ctx context.Context, data []byte, off, ext []int, sc *Scratch) (*field.Field, *Header, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	out, err := DecompressRegionFrom(ctx, h, func(ci int) ([]byte, error) {
		return ChunkPayload(data, h, ci)
	}, off, ext, sc)
	if errors.Is(err, ErrNotChunked) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		full, _, ferr := DecompressScratch(data, sc)
		if ferr != nil {
			return nil, nil, ferr
		}
		out, err = full.Slice(off, ext)
	}
	if err != nil {
		return nil, nil, err
	}
	return out, h, nil
}

// DecompressChunkInto decodes chunk ci of a chunk-capable stream into
// dst, which must hold exactly ChunkPoints(ci) values — the chunk's full
// row slab. It returns ErrNotChunked for streams without chunk-granular
// access (including the constant pseudo-codec, whose "payload" is the
// header itself) so callers can fall back to a whole-stream decode. This
// is the unit a decoded-chunk cache stores: one slab, reusable across
// every region that intersects it.
func DecompressChunkInto(dst []float64, h *Header, ci int, payload []byte, sc *Scratch) error {
	if ci < 0 || ci >= len(h.Chunks) {
		return fmt.Errorf("codec: chunk %d out of range [0,%d)", ci, len(h.Chunks))
	}
	if want := h.ChunkPoints(ci); len(dst) != want {
		return fmt.Errorf("codec: chunk %d slab is %d values, want %d", ci, len(dst), want)
	}
	if h.Codec == IDConstant {
		for i := range dst {
			dst[i] = h.ConstValue
		}
		return nil
	}
	c, ok := Lookup(h.Codec)
	if !ok {
		return fmt.Errorf("codec: no registered codec for stream ID %v", h.Codec)
	}
	cc, ok := c.(ChunkCodec)
	if !ok {
		return ErrNotChunked
	}
	return cc.DecompressChunk(payload, h, ci, dst, sc)
}

// DecompressRegionFrom is the chunk-granular core of DecompressRegion
// for callers that can fetch individual chunk payloads without holding
// the whole stream — the archive reader passes a closure that ReadAts
// only the needed byte ranges. It returns ErrNotChunked when the stream
// cannot be decoded chunk by chunk; such callers fall back to fetching
// the whole entry. A cancelled ctx stops the decode within one chunk per
// worker and surfaces ctx.Err().
func DecompressRegionFrom(ctx context.Context, h *Header, payload func(ci int) ([]byte, error), off, ext []int, sc *Scratch) (*field.Field, error) {
	if err := field.ValidateRegion(h.Dims, off, ext); err != nil {
		return nil, err
	}
	if h.Codec == IDConstant {
		out := field.New(h.Name, h.Precision, ext...)
		for i := range out.Data {
			out.Data[i] = h.ConstValue
		}
		return out, nil
	}
	c, ok := Lookup(h.Codec)
	if !ok {
		return nil, fmt.Errorf("codec: no registered codec for stream ID %v", h.Codec)
	}
	cc, ok := c.(ChunkCodec)
	if !ok {
		return nil, ErrNotChunked
	}

	rowLo, rowHi := off[0], off[0]+ext[0]
	var hit []int
	for ci := range h.Chunks {
		ck := &h.Chunks[ci]
		if ck.RowStart < rowHi && ck.RowStart+ck.Rows > rowLo {
			hit = append(hit, ci)
		}
	}
	if len(hit) == 0 {
		return nil, fmt.Errorf("codec: region rows [%d,%d) intersect no chunk", rowLo, rowHi)
	}

	out := field.New(h.Name, h.Precision, ext...)
	inner := h.InnerPoints()
	dstOff := make([]int, len(ext))
	err := parallel.ForEachCtx(ctx, len(hit), 0, func(i int) error {
		ci := hit[i]
		ck := h.Chunks[ci]
		pl, err := payload(ci)
		if err != nil {
			return fmt.Errorf("codec: chunk %d: %w", ci, err)
		}
		slab := sc.Floats(ck.Rows * inner)
		defer sc.PutFloats(slab)
		if err := cc.DecompressChunk(pl, h, ci, slab, sc); err != nil {
			return err
		}
		copyChunkRegion(out.Data, ext, dstOff, slab, h, ci, off, rowLo, rowHi)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// copyChunkRegion copies the intersection of chunk ci's decoded slab with
// the requested region into the output block: the chunk's rows are
// clipped to the region's row window, then the inner dimensions are
// cropped while copying. Shared by the streaming region decode above and
// cache-fed region assembly in the serving layer.
func copyChunkRegion(dst []float64, ext, dstOff []int, slab []float64, h *Header, ci int, off []int, rowLo, rowHi int) {
	ck := h.Chunks[ci]
	lo, hi := ck.RowStart, ck.RowStart+ck.Rows
	if lo < rowLo {
		lo = rowLo
	}
	if hi > rowHi {
		hi = rowHi
	}
	srcOff := append([]int{lo - ck.RowStart}, off[1:]...)
	dOff := append([]int{lo - rowLo}, dstOff[1:]...)
	cext := append([]int{hi - lo}, ext[1:]...)
	field.CopyRegion(dst, ext, dOff, slab, h.ChunkDims(ci), srcOff, cext)
}

// CopyChunkRegion is copyChunkRegion for external assemblers (the serving
// layer's decoded-chunk cache): copy the part of chunk ci's full decoded
// slab that falls inside the region (off, ext) into out, a region-shaped
// block. The chunk must intersect the region's row window.
func CopyChunkRegion(out []float64, h *Header, ci int, slab []float64, off, ext []int) {
	copyChunkRegion(out, ext, make([]int, len(ext)), slab, h, ci, off, off[0], off[0]+ext[0])
}
