package codec_test

import (
	"math"
	"testing"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
)

// groupedHeader builds a representative version-4 header: two groups,
// four chunks with per-chunk bounds and mixed ownership.
func groupedHeader() *codec.Header {
	return &codec.Header{
		Codec:      codec.IDLorenzo,
		Precision:  field.Float32,
		Mode:       codec.ModeRatio,
		Name:       "grouped",
		Dims:       []int{8, 16},
		EbAbs:      2e-3,
		TargetPSNR: math.NaN(),
		ValueRange: 2,
		Capacity:   65536,
		Groups: []codec.GroupInfo{
			{Name: "roi0", Mode: codec.ModePSNR, TargetPSNR: 80, TargetRatio: 0},
			{Name: "background", Mode: codec.ModeRatio, TargetPSNR: math.NaN(), TargetRatio: 8},
		},
		Chunks: []codec.ChunkInfo{
			{Rows: 2, Off: 0, Len: 10, EbAbs: 2e-3, MSE: 1e-8, Min: -1, Max: 1, Group: 1},
			{Rows: 2, Off: 10, Len: 12, EbAbs: 1e-5, MSE: 2e-10, Min: 0, Max: 2, Group: 0},
			{Rows: 2, Off: 22, Len: 8, EbAbs: 1e-5, MSE: 3e-10, Min: 0, Max: 1, Group: 0},
			{Rows: 2, Off: 30, Len: 9, EbAbs: 2e-3, MSE: 2e-8, Min: -1, Max: 0, Group: 1},
		},
	}
}

// TestGroupedHeaderRoundTrip: a version-4 header survives marshal →
// parse with its group table, per-chunk group IDs, and bounds intact,
// and the version byte is 4 exactly when a group table is present.
func TestGroupedHeaderRoundTrip(t *testing.T) {
	h := groupedHeader()
	raw := append(h.Marshal(), make([]byte, 40)...)
	if raw[4] != codec.VersionGrouped {
		t.Fatalf("version byte = %d, want %d", raw[4], codec.VersionGrouped)
	}
	g, err := codec.ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	if g.Version != codec.VersionGrouped {
		t.Fatalf("Version = %d", g.Version)
	}
	if len(g.Groups) != 2 {
		t.Fatalf("Groups = %+v", g.Groups)
	}
	if g.Groups[0].Name != "roi0" || g.Groups[0].Mode != codec.ModePSNR || g.Groups[0].TargetPSNR != 80 {
		t.Fatalf("group 0 = %+v", g.Groups[0])
	}
	if g.Groups[1].Name != "background" || g.Groups[1].TargetRatio != 8 || !math.IsNaN(g.Groups[1].TargetPSNR) {
		t.Fatalf("group 1 = %+v", g.Groups[1])
	}
	for ci := range g.Chunks {
		if g.Chunks[ci].Group != h.Chunks[ci].Group {
			t.Fatalf("chunk %d group = %d, want %d", ci, g.Chunks[ci].Group, h.Chunks[ci].Group)
		}
		if g.ChunkBound(ci) != h.Chunks[ci].EbAbs {
			t.Fatalf("chunk %d bound = %g", ci, g.ChunkBound(ci))
		}
	}

	// Ungrouped headers keep the version-3 byte layout.
	h3 := groupedHeader()
	h3.Groups = nil
	for i := range h3.Chunks {
		h3.Chunks[i].Group = 0
	}
	raw3 := h3.Marshal()
	if raw3[4] != codec.Version {
		t.Fatalf("ungrouped version byte = %d, want %d", raw3[4], codec.Version)
	}
}

// TestGroupedHeaderValidation: group IDs out of range, empty group
// tables, and oversized tables are rejected.
func TestGroupedHeaderValidation(t *testing.T) {
	// Chunk referencing a group beyond the table.
	h := groupedHeader()
	h.Chunks[0].Group = 2
	if _, err := codec.ParseHeader(append(h.Marshal(), make([]byte, 40)...)); err == nil {
		t.Fatal("accepted chunk group out of table range")
	}

	// Implicit-group helpers on a v3 header.
	h3 := groupedHeader()
	h3.Groups = nil
	for i := range h3.Chunks {
		h3.Chunks[i].Group = 0
	}
	g, err := codec.ParseHeader(append(h3.Marshal(), make([]byte, 40)...))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d on ungrouped stream", g.NumGroups())
	}
	if got := g.GroupChunks(0); len(got) != 4 {
		t.Fatalf("implicit group holds %d chunks", len(got))
	}
}

// TestMarshalLegacyRejectsGroups: the v1/v2 layout has no group table;
// re-serializing a grouped header as legacy must fail, not drop data.
func TestMarshalLegacyRejectsGroups(t *testing.T) {
	h := groupedHeader()
	if _, err := h.MarshalLegacy(codec.VersionLegacy); err == nil {
		t.Fatal("MarshalLegacy accepted a grouped header")
	}
	h.Groups = nil // still has nonzero chunk Group fields
	for i := range h.Chunks {
		h.Chunks[i].EbAbs = 0
	}
	if _, err := h.MarshalLegacy(codec.VersionLegacy); err == nil {
		t.Fatal("MarshalLegacy accepted chunks with group IDs")
	}
}

// TestGroupAggregates pins the chunk-subset accounting helpers.
func TestGroupAggregates(t *testing.T) {
	h := groupedHeader()
	roi := h.GroupChunks(0)
	bg := h.GroupChunks(1)
	if len(roi) != 2 || len(bg) != 2 {
		t.Fatalf("subsets %v %v", roi, bg)
	}
	if got, want := h.GroupAggregateMSE(roi), (2e-10+3e-10)/2; math.Abs(got-want) > 1e-24 {
		t.Fatalf("roi MSE = %g, want %g", got, want)
	}
	if got := h.GroupPayloadBytes(bg); got != 19 {
		t.Fatalf("bg payload = %d", got)
	}
	if got := h.GroupPoints(roi); got != 4*16 {
		t.Fatalf("roi points = %d", got)
	}
	if got := h.GroupAggregateMSE(nil); !math.IsNaN(got) {
		t.Fatalf("empty subset MSE = %g, want NaN", got)
	}
}
