package codec

import (
	"bytes"
	"compress/flate"
	"io"
	"sync"

	"fixedpsnr/internal/deflate"
	"fixedpsnr/internal/huffman"
)

// Scratch is the reusable compression state a session-style caller (an
// Encoder in the public API) threads through repeated Compress calls so
// the hot path stops allocating its large transient buffers fresh every
// time: quantization-code slices, reconstruction buffers, transform block
// buffers, pre-DEFLATE staging bytes, output buffers, and DEFLATE writers
// (whose internal window state dominates a flate.NewWriter call).
//
// All pools are backed by sync.Pool, so one Scratch is safe for
// concurrent use by any number of goroutines — a single Encoder shared
// across request handlers feeds every worker from the same Scratch.
//
// A nil *Scratch is valid everywhere: getters fall back to plain
// allocation and puts become no-ops, which is exactly the behavior of the
// one-shot (non-session) API.
type Scratch struct {
	int32s   sync.Pool // *[]int32
	floats   sync.Pool // *[]float64
	bytes    sync.Pool // *[]byte
	bufs     sync.Pool // *bytes.Buffer
	flates   sync.Pool // *pooledFlate
	huffs    sync.Pool // *huffman.Scratch
	huffDecs sync.Pool // *huffman.DecodeScratch
	flateRs  sync.Pool // io.ReadCloser + flate.Resetter
	deflates sync.Pool // *deflate.Encoder

	mu     sync.Mutex // guards shards
	shards []*Scratch // per-worker children, created lazily by Shard
}

// pooledFlate remembers the level a pooled DEFLATE writer was created
// with; flate.Writer cannot change level on Reset.
type pooledFlate struct {
	w     *flate.Writer
	level int
}

// NewScratch returns an empty scratch pool set.
func NewScratch() *Scratch { return &Scratch{} }

// Shard returns the per-worker child scratch for worker slot w,
// creating it on first use. Shards live as long as their parent, so a
// session's buffers stay warm across encodes, but each shard is only
// ever handed to one worker slot of a parallel section at a time —
// buffers recycled by a worker are reused by the same worker, never
// migrated through a pool another core is hammering. Negative w (or a
// nil receiver) returns the receiver itself, preserving the nil-safe
// one-shot behavior.
func (s *Scratch) Shard(w int) *Scratch {
	if s == nil || w < 0 {
		return s
	}
	s.mu.Lock()
	for len(s.shards) <= w {
		s.shards = append(s.shards, &Scratch{})
	}
	sh := s.shards[w]
	s.mu.Unlock()
	return sh
}

// Int32s returns an int32 slice of length n — the element type of the
// quantization-code buffers, which at tens of millions of points per
// field halves the memory traffic of every pass over the codes compared
// to a machine-word slice. Contents are unspecified; the caller must
// fully overwrite it.
func (s *Scratch) Int32s(n int) []int32 {
	if s != nil {
		if v, ok := s.int32s.Get().(*[]int32); ok && cap(*v) >= n {
			return (*v)[:n]
		}
	}
	return make([]int32, n)
}

// PutInt32s returns a slice obtained from Int32s to the pool.
func (s *Scratch) PutInt32s(p []int32) {
	if s == nil || cap(p) == 0 {
		return
	}
	p = p[:0]
	s.int32s.Put(&p)
}

// Floats returns a float64 slice of length n. Contents are unspecified;
// the caller must fully overwrite it.
func (s *Scratch) Floats(n int) []float64 {
	if s != nil {
		if v, ok := s.floats.Get().(*[]float64); ok && cap(*v) >= n {
			return (*v)[:n]
		}
	}
	return make([]float64, n)
}

// PutFloats returns a slice obtained from Floats to the pool.
func (s *Scratch) PutFloats(p []float64) {
	if s == nil || cap(p) == 0 {
		return
	}
	p = p[:0]
	s.floats.Put(&p)
}

// Bytes returns an empty byte slice with at least capHint capacity, for
// append-style staging buffers.
func (s *Scratch) Bytes(capHint int) []byte {
	if s != nil {
		if v, ok := s.bytes.Get().(*[]byte); ok {
			if cap(*v) >= capHint {
				return (*v)[:0]
			}
			// Too small for this request; drop it and allocate. Pool
			// contents converge on the working-set size quickly.
		}
	}
	return make([]byte, 0, capHint)
}

// PutBytes returns a slice obtained from Bytes to the pool. The caller
// must no longer reference it (or any slice sharing its backing array).
func (s *Scratch) PutBytes(p []byte) {
	if s == nil || cap(p) == 0 {
		return
	}
	p = p[:0]
	s.bytes.Put(&p)
}

// Buffer returns a reset bytes.Buffer.
func (s *Scratch) Buffer() *bytes.Buffer {
	if s != nil {
		if v, ok := s.bufs.Get().(*bytes.Buffer); ok {
			v.Reset()
			return v
		}
	}
	return &bytes.Buffer{}
}

// PutBuffer returns a buffer obtained from Buffer to the pool. The caller
// must have copied out any bytes it still needs.
func (s *Scratch) PutBuffer(b *bytes.Buffer) {
	if s == nil || b == nil {
		return
	}
	s.bufs.Put(b)
}

// Huffman returns a reusable Huffman construction scratch (nil when s is
// nil, which huffman.EncodeScratch accepts). Each instance serves one
// encode at a time; get one per in-flight chunk and put it back after.
func (s *Scratch) Huffman() *huffman.Scratch {
	if s == nil {
		return nil
	}
	if v, ok := s.huffs.Get().(*huffman.Scratch); ok {
		return v
	}
	return huffman.NewScratch()
}

// PutHuffman returns a scratch obtained from Huffman to the pool.
func (s *Scratch) PutHuffman(h *huffman.Scratch) {
	if s == nil || h == nil {
		return
	}
	s.huffs.Put(h)
}

// HuffDecode returns a reusable Huffman decode scratch (nil when s is
// nil, which huffman.DecodeInto accepts). Each instance serves one decode
// at a time; get one per in-flight chunk and put it back after.
func (s *Scratch) HuffDecode() *huffman.DecodeScratch {
	if s == nil {
		return nil
	}
	if v, ok := s.huffDecs.Get().(*huffman.DecodeScratch); ok {
		return v
	}
	return huffman.NewDecodeScratch()
}

// PutHuffDecode returns a scratch obtained from HuffDecode to the pool.
func (s *Scratch) PutHuffDecode(d *huffman.DecodeScratch) {
	if s == nil || d == nil {
		return
	}
	s.huffDecs.Put(d)
}

// FlateReader returns a DEFLATE reader over r, reusing a pooled reader's
// window state when one is available (flate readers allocate ~50 KB of
// history and dictionary per NewReader, which dominates small-chunk
// decode profiles).
func (s *Scratch) FlateReader(r io.Reader) io.ReadCloser {
	if s != nil {
		if v, ok := s.flateRs.Get().(io.ReadCloser); ok {
			v.(flate.Resetter).Reset(r, nil)
			return v
		}
	}
	return flate.NewReader(r)
}

// PutFlateReader returns a reader obtained from FlateReader to the pool.
// The caller must have called Close already.
func (s *Scratch) PutFlateReader(fr io.ReadCloser) {
	if s == nil || fr == nil {
		return
	}
	if _, ok := fr.(flate.Resetter); !ok {
		return
	}
	s.flateRs.Put(fr)
}

// FlateWriter returns a DEFLATE writer at the given level targeting w,
// reusing pooled writer state when the level matches.
func (s *Scratch) FlateWriter(w io.Writer, level int) (*flate.Writer, error) {
	if s != nil {
		if v, ok := s.flates.Get().(*pooledFlate); ok {
			if v.level == level {
				v.w.Reset(w)
				return v.w, nil
			}
			// Stale level (the session changed configuration): drop it.
		}
	}
	return flate.NewWriter(w, level)
}

// PutFlateWriter returns a writer obtained from FlateWriter to the pool.
// The caller must have called Close (or Flush) already.
func (s *Scratch) PutFlateWriter(fw *flate.Writer, level int) {
	if s == nil || fw == nil {
		return
	}
	s.flates.Put(&pooledFlate{w: fw, level: level})
}

// Deflater returns a pooled purpose-built DEFLATE encoder (the
// internal/deflate back-end). An Encoder carries its hash table, token
// buffers, and code tables — pooling them keeps the encode hot path
// allocation-free.
func (s *Scratch) Deflater() *deflate.Encoder {
	if s != nil {
		if v, ok := s.deflates.Get().(*deflate.Encoder); ok {
			return v
		}
	}
	return deflate.NewEncoder()
}

// PutDeflater returns an encoder obtained from Deflater to the pool.
func (s *Scratch) PutDeflater(e *deflate.Encoder) {
	if s == nil || e == nil {
		return
	}
	s.deflates.Put(e)
}

// AppendDeflate compresses src into a complete DEFLATE stream appended
// to dst and returns the extended slice. This is the single routing
// point for the encode side: level 0 — the default everywhere — selects
// the purpose-built internal/deflate encoder (entropy-gated match
// search, one-pass dynamic Huffman); any explicit non-zero level keeps
// the stdlib compress/flate writer as an escape hatch for debugging and
// ratio comparisons. Both back-ends emit conformant DEFLATE, so readers
// never care which one produced a stream.
func (s *Scratch) AppendDeflate(dst, src []byte, level int) ([]byte, error) {
	if level == 0 {
		e := s.Deflater()
		dst = e.AppendEncode(dst, src)
		s.PutDeflater(e)
		return dst, nil
	}
	buf := s.Buffer()
	fw, err := s.FlateWriter(buf, level)
	if err != nil {
		s.PutBuffer(buf)
		return nil, err
	}
	_, werr := fw.Write(src)
	cerr := fw.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		s.PutBuffer(buf)
		return nil, werr
	}
	dst = append(dst, buf.Bytes()...)
	s.PutFlateWriter(fw, level)
	s.PutBuffer(buf)
	return dst, nil
}
