package codec_test

import (
	"encoding/binary"
	"testing"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
)

// chunkTableSeed builds a valid version-3 stream (header + zero-filled
// payload space) whose chunk table the fuzzer then mutates.
func chunkTableSeed() []byte {
	h := &codec.Header{
		Codec:      codec.IDLorenzo,
		Precision:  field.Float32,
		Mode:       codec.ModePSNR,
		Name:       "fuzz",
		Dims:       []int{8, 16},
		EbAbs:      1e-3,
		TargetPSNR: 60,
		ValueRange: 2,
		Capacity:   65536,
		Chunks: []codec.ChunkInfo{
			{Rows: 3, Off: 0, Len: 10, Unpredictable: 1, MSE: 1e-8, Min: -1, Max: 1},
			{Rows: 3, Off: 10, Len: 12, MSE: 2e-8, Min: 0, Max: 2},
			{Rows: 2, Off: 22, Len: 8, MSE: 0, Min: 0.5, Max: 0.5},
		},
	}
	return append(h.Marshal(), make([]byte, 30)...)
}

// groupTableSeed builds a valid version-4 stream (grouped header +
// zero-filled payload space) whose group and chunk tables the fuzzers
// mutate.
func groupTableSeed() []byte {
	h := &codec.Header{
		Codec:      codec.IDLorenzo,
		Precision:  field.Float32,
		Mode:       codec.ModeRatio,
		Name:       "fuzz4",
		Dims:       []int{8, 16},
		EbAbs:      1e-3,
		TargetPSNR: 60,
		ValueRange: 2,
		Capacity:   65536,
		Groups: []codec.GroupInfo{
			{Name: "roi0", Mode: codec.ModePSNR, TargetPSNR: 80},
			{Name: "background", Mode: codec.ModeRatio, TargetRatio: 8},
		},
		Chunks: []codec.ChunkInfo{
			{Rows: 3, Off: 0, Len: 10, Unpredictable: 1, EbAbs: 1e-5, MSE: 1e-8, Min: -1, Max: 1, Group: 0},
			{Rows: 3, Off: 10, Len: 12, EbAbs: 1e-3, MSE: 2e-8, Min: 0, Max: 2, Group: 1},
			{Rows: 2, Off: 22, Len: 8, EbAbs: 1e-3, MSE: 0, Min: 0.5, Max: 0.5, Group: 1},
		},
	}
	return append(h.Marshal(), make([]byte, 30)...)
}

// checkParsedChunkInvariants asserts the structural invariants every
// decoder relies on for an accepted header, including the version-4
// group invariants (chunk group IDs inside the group table, table sizes
// bounded).
func checkParsedChunkInvariants(t *testing.T, h *codec.Header, data []byte) {
	t.Helper()
	if len(h.Chunks) == 0 {
		t.Fatal("accepted header with no chunks")
	}
	if len(h.Groups) > codec.MaxGroups {
		t.Fatalf("accepted %d groups", len(h.Groups))
	}
	rows := 0
	prevEnd := 0
	maxEnd := 0
	for i, c := range h.Chunks {
		if c.Rows <= 0 || c.Len < 0 || c.Off < 0 {
			t.Fatalf("chunk %d has non-positive geometry: %+v", i, c)
		}
		if c.RowStart != rows {
			t.Fatalf("chunk %d RowStart = %d, want %d", i, c.RowStart, rows)
		}
		if c.Off < prevEnd {
			t.Fatalf("chunk %d payload overlaps previous (off %d < end %d)", i, c.Off, prevEnd)
		}
		if c.Group < 0 || c.Group >= h.NumGroups() {
			t.Fatalf("chunk %d group %d outside table of %d", i, c.Group, h.NumGroups())
		}
		if len(h.Groups) == 0 && c.Group != 0 {
			t.Fatalf("ungrouped stream gave chunk %d group %d", i, c.Group)
		}
		rows += c.Rows
		prevEnd = c.Off + c.Len
		if prevEnd > maxEnd {
			maxEnd = prevEnd
		}
	}
	if rows != h.Dims[0] {
		t.Fatalf("chunk rows sum to %d, want %d", rows, h.Dims[0])
	}
	if h.PayloadOffset()+maxEnd > len(data) {
		t.Fatalf("accepted header declares payloads past the stream end (%d > %d)",
			h.PayloadOffset()+maxEnd, len(data))
	}
}

// FuzzDecodeChunkTable exercises the version-3/4 chunk-index parser:
// whatever the input — truncated tables, overlapping or out-of-bounds
// chunk entries, varint garbage — ParseHeader must either reject it with
// an error or return a header whose chunk table satisfies every
// invariant the decoders rely on. It must never panic.
func FuzzDecodeChunkTable(f *testing.F) {
	seed := chunkTableSeed()
	f.Add(seed)
	f.Add(groupTableSeed())
	// Truncations through the chunk table region.
	for cut := len(seed) - 30; cut > len(seed)-90 && cut > 0; cut -= 7 {
		f.Add(append([]byte(nil), seed[:cut]...))
	}
	// Overlapping chunks: bump the second entry's offset below the first
	// entry's end (the table serializes rows, off, len, ... per entry;
	// mutating bytes is enough to land in the interesting space).
	for i := len(seed) - 120; i < len(seed)-30 && i > 0; i += 5 {
		mut := append([]byte(nil), seed...)
		mut[i] ^= 0x7F
		f.Add(mut)
	}
	// Out-of-bounds: declare a huge payload length.
	huge := append([]byte(nil), seed...)
	huge = append(huge[:len(huge)-40], binary.AppendUvarint(nil, 1<<45)...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := codec.ParseHeader(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if h.Codec == codec.IDConstant {
			return
		}
		// Accepted headers must satisfy the decoders' invariants.
		checkParsedChunkInvariants(t, h, data)
	})
}

// FuzzDecodeGroupTable aims the fuzzer at the version-4 group table and
// its per-chunk group references specifically: seeds mutate the group
// count, names, descriptors, and the chunk entries' trailing group IDs.
// ParseHeader must reject or return a header whose group invariants hold
// — a chunk pointing outside the group table would panic every grouped
// consumer downstream.
func FuzzDecodeGroupTable(f *testing.F) {
	seed := groupTableSeed()
	f.Add(seed)
	// Truncations through the group-table region (it sits between the
	// capacity varint and the chunk table, well inside the header).
	for cut := len(seed) - 30; cut > 40 && cut > len(seed)-160; cut -= 11 {
		f.Add(append([]byte(nil), seed[:cut]...))
	}
	// Point mutations across the whole header: group count bumps, name
	// length corruption, mode bytes, chunk group IDs past the table.
	for i := 5; i < len(seed)-30; i += 3 {
		mut := append([]byte(nil), seed...)
		mut[i] ^= 0xFF
		f.Add(mut)
	}
	// A stream that declares a huge group table.
	huge := append([]byte(nil), seed[:44]...)
	huge = append(huge, binary.AppendUvarint(nil, 1<<40)...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := codec.ParseHeader(data)
		if err != nil {
			return
		}
		if h.Codec == codec.IDConstant {
			return
		}
		checkParsedChunkInvariants(t, h, data)
		// Re-marshaling an accepted grouped header must reproduce a
		// parseable header with the same group structure.
		if len(h.Groups) > 0 {
			re, err := codec.ParseHeaderPrefix(h.Marshal())
			if err != nil {
				t.Fatalf("re-marshaled accepted header rejected: %v", err)
			}
			if len(re.Groups) != len(h.Groups) {
				t.Fatalf("groups %d -> %d across re-marshal", len(h.Groups), len(re.Groups))
			}
			for ci := range re.Chunks {
				if re.Chunks[ci].Group != h.Chunks[ci].Group {
					t.Fatalf("chunk %d group changed across re-marshal", ci)
				}
			}
		}
	})
}
