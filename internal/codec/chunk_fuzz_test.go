package codec_test

import (
	"encoding/binary"
	"testing"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
)

// chunkTableSeed builds a valid version-3 stream (header + zero-filled
// payload space) whose chunk table the fuzzer then mutates.
func chunkTableSeed() []byte {
	h := &codec.Header{
		Codec:      codec.IDLorenzo,
		Precision:  field.Float32,
		Mode:       codec.ModePSNR,
		Name:       "fuzz",
		Dims:       []int{8, 16},
		EbAbs:      1e-3,
		TargetPSNR: 60,
		ValueRange: 2,
		Capacity:   65536,
		Chunks: []codec.ChunkInfo{
			{Rows: 3, Off: 0, Len: 10, Unpredictable: 1, MSE: 1e-8, Min: -1, Max: 1},
			{Rows: 3, Off: 10, Len: 12, MSE: 2e-8, Min: 0, Max: 2},
			{Rows: 2, Off: 22, Len: 8, MSE: 0, Min: 0.5, Max: 0.5},
		},
	}
	return append(h.Marshal(), make([]byte, 30)...)
}

// FuzzDecodeChunkTable exercises the version-3 chunk-index parser:
// whatever the input — truncated tables, overlapping or out-of-bounds
// chunk entries, varint garbage — ParseHeader must either reject it with
// an error or return a header whose chunk table satisfies every
// invariant the decoders rely on. It must never panic.
func FuzzDecodeChunkTable(f *testing.F) {
	seed := chunkTableSeed()
	f.Add(seed)
	// Truncations through the chunk table region.
	for cut := len(seed) - 30; cut > len(seed)-90 && cut > 0; cut -= 7 {
		f.Add(append([]byte(nil), seed[:cut]...))
	}
	// Overlapping chunks: bump the second entry's offset below the first
	// entry's end (the table serializes rows, off, len, ... per entry;
	// mutating bytes is enough to land in the interesting space).
	for i := len(seed) - 120; i < len(seed)-30 && i > 0; i += 5 {
		mut := append([]byte(nil), seed...)
		mut[i] ^= 0x7F
		f.Add(mut)
	}
	// Out-of-bounds: declare a huge payload length.
	huge := append([]byte(nil), seed...)
	huge = append(huge[:len(huge)-40], binary.AppendUvarint(nil, 1<<45)...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := codec.ParseHeader(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if h.Codec == codec.IDConstant {
			return
		}
		// Accepted headers must satisfy the decoders' invariants.
		if len(h.Chunks) == 0 {
			t.Fatal("accepted header with no chunks")
		}
		rows := 0
		prevEnd := 0
		maxEnd := 0
		for i, c := range h.Chunks {
			if c.Rows <= 0 || c.Len < 0 || c.Off < 0 {
				t.Fatalf("chunk %d has non-positive geometry: %+v", i, c)
			}
			if c.RowStart != rows {
				t.Fatalf("chunk %d RowStart = %d, want %d", i, c.RowStart, rows)
			}
			if c.Off < prevEnd {
				t.Fatalf("chunk %d payload overlaps previous (off %d < end %d)", i, c.Off, prevEnd)
			}
			rows += c.Rows
			prevEnd = c.Off + c.Len
			if prevEnd > maxEnd {
				maxEnd = prevEnd
			}
		}
		if rows != h.Dims[0] {
			t.Fatalf("chunk rows sum to %d, want %d", rows, h.Dims[0])
		}
		if h.PayloadOffset()+maxEnd > len(data) {
			t.Fatalf("accepted header declares payloads past the stream end (%d > %d)",
				h.PayloadOffset()+maxEnd, len(data))
		}
	})
}
