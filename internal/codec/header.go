package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"fixedpsnr/internal/field"
)

// Stream layout, versions 3 and 4 (all integers are unsigned varints
// unless noted):
//
//	magic   "FPSZ"            4 bytes
//	version                   1 byte  (3 = chunked, 4 = chunked + groups)
//	codec                     1 byte  (IDLorenzo, IDConstant, ...)
//	precision                 1 byte  (0 = float32, 1 = float64)
//	mode                      1 byte  (informational: how the bound was set)
//	name                      uvarint length + bytes
//	ndims, dims...            uvarints
//	ebAbs                     8 bytes IEEE-754 LE (0 for constant codec)
//	targetPSNR                8 bytes IEEE-754 LE (NaN when not PSNR mode)
//	valueRange                8 bytes IEEE-754 LE (vr of the original data)
//	capacity                  uvarint (quantization intervals 2n)
//	ngroups, group table      v4 only: ngroups × group entry (below)
//	nchunks                   uvarint
//	chunk table               nchunks × chunk entry (below)
//	chunk payloads            concatenated codec-specific streams
//
// One chunk entry:
//
//	rows                      uvarint (extent along dims[0])
//	off                       uvarint (payload offset from PayloadOffset)
//	len                       uvarint (compressed payload bytes)
//	unpredictable             uvarint (points stored as literals)
//	ebAbs                     8 bytes IEEE-754 LE (0 = header ebAbs)
//	mse                       8 bytes IEEE-754 LE (NaN = unmeasured)
//	min, max                  8 bytes IEEE-754 LE each (chunk value range)
//	group                     uvarint, v4 only (index into the group table)
//
// One group entry (v4 only):
//
//	name                      uvarint length + bytes
//	mode                      1 byte  (how the group's bound was derived)
//	targetPSNR                8 bytes IEEE-754 LE (NaN unless psnr mode)
//	targetRatio               8 bytes IEEE-754 LE (0 unless ratio mode)
//
// Chunks tile the field along the slowest dimension: chunk i covers rows
// [Σ rows_j (j<i), +rows_i) at full extent in every other dimension, and
// every chunk is independently decodable — that is what random-access
// region decoding and the streaming encoder are built on. Offsets must be
// non-overlapping and non-decreasing; gaps are permitted (a rewriter may
// leave dead bytes), overlap is rejected.
//
// Version 4 adds region groups: every chunk belongs to exactly one group
// and each group records the quality target it was steered to (a region
// of interest held at a fixed PSNR, a background steered to a fixed
// ratio). Writers emit version 4 only when a stream has a group table —
// streams with a single implicit group keep the version-3 layout byte for
// byte, and versions 1–3 parse into the same Header with an empty Groups
// slice, which every consumer treats as one implicit group spanning all
// chunks.
//
// Versions 1 and 2 are the legacy whole-field layout: the chunk table is
// a bare (len, rows) pair per chunk with no offsets and no per-chunk
// statistics. Version 2 is accepted as an alias of the version-1 layout
// (the byte was reserved during the session-API era and stamped by some
// interim writers); both remain readable forever.
//
// The constant codec replaces everything from capacity onward with a
// single 8-byte value in every version.

// Magic identifies a fixed-PSNR compressed stream.
var Magic = [4]byte{'F', 'P', 'S', 'Z'}

// Version is the stream format version written for ungrouped streams
// (the chunked container). Streams carrying a region-group table are
// written as VersionGrouped.
const Version = 3

// VersionGrouped is the stream format version with a region-group table:
// the version-3 layout plus per-chunk group IDs and per-group quality
// target descriptors. Only streams with a non-empty group table use it.
const VersionGrouped = 4

// MaxGroups bounds the region-group table size. Groups map to steering
// targets, of which a field has a handful; the cap exists so a corrupt
// header cannot demand absurd allocations.
const MaxGroups = 1 << 10

// Legacy stream format versions that remain readable.
const (
	// VersionLegacy is the original whole-field container layout.
	VersionLegacy = 1
	// VersionLegacy2 is accepted as an alias of the version-1 layout.
	VersionLegacy2 = 2
)

// ID identifies the compression pipeline used for a stream payload. The
// byte value is recorded in the stream header and routes decompression
// through the registry.
type ID uint8

// Stream IDs. New pipelines must pick unused values; the registry panics
// on collisions.
const (
	// IDLorenzo is the SZ pipeline: Lorenzo prediction +
	// error-controlled uniform quantization + Huffman + DEFLATE.
	IDLorenzo ID = 1
	// IDConstant stores a constant field as a single value.
	IDConstant ID = 2
	// IDLogLorenzo is the pointwise-relative pipeline: IDLorenzo
	// applied in the log domain with a sign/zero side channel.
	IDLogLorenzo ID = 3
	// IDOTC is the orthogonal-transform pipeline implemented by
	// internal/otc: blockwise orthonormal DCT + uniform quantization +
	// Huffman + DEFLATE. It shares this container format.
	IDOTC ID = 4
)

// String names the codec ID.
func (c ID) String() string {
	switch c {
	case IDLorenzo:
		return "sz-lorenzo"
	case IDConstant:
		return "constant"
	case IDLogLorenzo:
		return "sz-log-lorenzo"
	case IDOTC:
		return "otc-dct"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// Mode records how the error bound embedded in a stream was derived.
// It is informational; decompression never needs it.
type Mode uint8

// Mode values.
const (
	// ModeAbs: the user supplied the absolute error bound directly.
	ModeAbs Mode = iota
	// ModeRel: bound derived from a value-range-based relative bound.
	ModeRel
	// ModePSNR: bound derived from a target PSNR via Eq. 8.
	ModePSNR
	// ModePWRel: pointwise-relative bound (log-domain compression).
	ModePWRel
	// ModeRatio: bound steered to a target compression ratio
	// (FRaZ-style fixed-ratio mode).
	ModeRatio
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAbs:
		return "abs"
	case ModeRel:
		return "rel"
	case ModePSNR:
		return "psnr"
	case ModePWRel:
		return "pwrel"
	case ModeRatio:
		return "ratio"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Transform selects the orthonormal block transform of the otc pipeline.
// It lives here so the unified Options can carry it without depending on
// the pipeline package.
type Transform uint8

// Transforms.
const (
	// TransformDCT is the orthonormal DCT-II (ZFP-flavored).
	TransformDCT Transform = 0
	// TransformHaar is the full multi-level orthonormal Haar DWT
	// (SSEM-flavored).
	TransformHaar Transform = 1
)

// String names the transform.
func (t Transform) String() string {
	switch t {
	case TransformDCT:
		return "dct"
	case TransformHaar:
		return "haar"
	default:
		return fmt.Sprintf("transform(%d)", uint8(t))
	}
}

// ChunkInfo is one entry of the per-chunk index: where the chunk's
// payload lives, which rows it covers, and the statistics measured when
// it was compressed. The index is what makes chunk-granular random
// access (DecodeRegion, archive ExtractRegion) and selective
// recompression during calibrated refinement possible without touching
// any other chunk.
type ChunkInfo struct {
	// Rows is the chunk's extent along Dims[0]; chunks cover the full
	// extent of every other dimension.
	Rows int
	// Off is the payload byte offset relative to Header.PayloadOffset.
	Off int
	// Len is the compressed payload length in bytes.
	Len int
	// Unpredictable counts points (or coefficients) stored as literals
	// (0 for legacy streams, which did not record it).
	Unpredictable int
	// EbAbs is the absolute bound this chunk was quantized with; 0 means
	// the header-level EbAbs. Selective recompression writes per-chunk
	// bounds when it keeps some chunks at a previous pass's bound.
	EbAbs float64
	// MSE is the exact reconstruction MSE of this chunk, measured during
	// compression (Theorem 1 pipelines); NaN when unmeasured (transform
	// pipelines, legacy streams).
	MSE float64
	// Min and Max are the chunk's value range (NaN when unmeasured).
	Min, Max float64
	// Group is the index of the region group this chunk belongs to
	// (into Header.Groups). Zero for streams without a group table,
	// whose chunks all sit in one implicit group.
	Group int
	// RowStart is the first row this chunk covers. It is derived from
	// the Rows prefix sum at parse/assembly time, never serialized.
	RowStart int
}

// GroupInfo is one region-group descriptor of a version-4 stream: the
// named quality target a subset of chunks was steered to. The settled
// absolute bound of each group lives in its chunks' EbAbs entries; the
// descriptor records what the bound was steered toward, so inspection
// tooling and decoders can report per-region quality without the
// original request.
type GroupInfo struct {
	// Name identifies the group ("roi0", "background", ...).
	Name string
	// Mode records how the group's bound was derived (ModePSNR,
	// ModeRatio, or a single-pass mode for pinned groups).
	Mode Mode
	// TargetPSNR is the group's PSNR target in dB (NaN unless Mode is
	// ModePSNR).
	TargetPSNR float64
	// TargetRatio is the group's compression-ratio target (0 unless
	// Mode is ModeRatio).
	TargetRatio float64
}

// Header describes a compressed stream.
type Header struct {
	// Version is the stream format version this header was parsed from;
	// Marshal always emits the current Version.
	Version    uint8
	Codec      ID
	Precision  field.Precision
	Mode       Mode
	Name       string
	Dims       []int
	EbAbs      float64 // absolute error bound used for quantization
	TargetPSNR float64 // NaN unless Mode == ModePSNR
	ValueRange float64 // vr of the original data (recorded for inspection)
	Capacity   int     // quantization intervals (2n)
	// Groups is the region-group table (version 4). Empty for every
	// other version and for ungrouped version-3 streams: consumers must
	// treat an empty table as one implicit group holding every chunk.
	Groups []GroupInfo
	// Chunks is the per-chunk index (empty for IDConstant streams).
	Chunks []ChunkInfo
	// ConstValue holds the value of a constant field (IDConstant).
	ConstValue float64
	// headerLen is the byte offset where chunk payloads begin.
	headerLen int
}

// PayloadOffset returns the byte offset where chunk payloads begin in the
// stream this header was parsed from. It is only meaningful on headers
// returned by ParseHeader.
func (h *Header) PayloadOffset() int { return h.headerLen }

// NPoints returns the total number of points implied by Dims.
func (h *Header) NPoints() int {
	n := 1
	for _, d := range h.Dims {
		n *= d
	}
	return n
}

// InnerPoints returns the number of points per row along Dims[0] (the
// product of the non-slowest dimensions).
func (h *Header) InnerPoints() int {
	n := 1
	for _, d := range h.Dims[1:] {
		n *= d
	}
	return n
}

// ChunkDims returns the dims of chunk ci: its row extent followed by the
// field's inner dimensions.
func (h *Header) ChunkDims(ci int) []int {
	return append([]int{h.Chunks[ci].Rows}, h.Dims[1:]...)
}

// ChunkPoints returns the number of points in chunk ci.
func (h *Header) ChunkPoints(ci int) int {
	return h.Chunks[ci].Rows * h.InnerPoints()
}

// ChunkBound returns the absolute bound chunk ci was quantized with: its
// per-chunk bound when recorded, the header bound otherwise.
func (h *Header) ChunkBound(ci int) float64 {
	if eb := h.Chunks[ci].EbAbs; eb > 0 {
		return eb
	}
	return h.EbAbs
}

// AggregateMSE computes the field MSE as the point-count-weighted mean of
// the per-chunk MSEs — the global accounting the fixed-PSNR guarantee is
// defined on (Eqs. 4–5 hold for the whole field, not per chunk). It
// returns NaN when any chunk's MSE is unmeasured, and 0 for constant
// streams.
func (h *Header) AggregateMSE() float64 {
	if h.Codec == IDConstant {
		return 0
	}
	if len(h.Chunks) == 0 {
		return math.NaN()
	}
	inner := h.InnerPoints()
	var sumSq float64
	var n int
	for _, c := range h.Chunks {
		if math.IsNaN(c.MSE) {
			return math.NaN()
		}
		pts := c.Rows * inner
		sumSq += c.MSE * float64(pts)
		n += pts
	}
	if n == 0 {
		return math.NaN()
	}
	return sumSq / float64(n)
}

// NumGroups returns the number of region groups, treating an empty group
// table (v1–v3 streams and ungrouped v4 writers) as one implicit group.
func (h *Header) NumGroups() int {
	if len(h.Groups) == 0 {
		return 1
	}
	return len(h.Groups)
}

// GroupOf returns the group index of chunk ci (always 0 when the stream
// has no group table).
func (h *Header) GroupOf(ci int) int { return h.Chunks[ci].Group }

// GroupChunks returns the indices of the chunks in group g, in chunk
// order. With an empty group table, group 0 holds every chunk.
func (h *Header) GroupChunks(g int) []int {
	var out []int
	for ci := range h.Chunks {
		if h.Chunks[ci].Group == g {
			out = append(out, ci)
		}
	}
	return out
}

// GroupAggregateMSE computes the point-count-weighted mean of the MSEs of
// one chunk subset — the per-group distortion accounting the region-aware
// steering loop drives on, defined exactly like the field-level
// AggregateMSE but over a group's chunks only. NaN when any chunk in the
// subset is unmeasured or the subset is empty.
func (h *Header) GroupAggregateMSE(chunks []int) float64 {
	inner := h.InnerPoints()
	var sumSq float64
	var n int
	for _, ci := range chunks {
		c := &h.Chunks[ci]
		if math.IsNaN(c.MSE) {
			return math.NaN()
		}
		pts := c.Rows * inner
		sumSq += c.MSE * float64(pts)
		n += pts
	}
	if n == 0 {
		return math.NaN()
	}
	return sumSq / float64(n)
}

// GroupPayloadBytes sums the compressed payload bytes of one chunk
// subset — the size statistic per-group ratio steering measures (header
// overhead is shared by all groups and excluded).
func (h *Header) GroupPayloadBytes(chunks []int) int {
	n := 0
	for _, ci := range chunks {
		n += h.Chunks[ci].Len
	}
	return n
}

// GroupPoints counts the values covered by one chunk subset.
func (h *Header) GroupPoints(chunks []int) int {
	rows := 0
	for _, ci := range chunks {
		rows += h.Chunks[ci].Rows
	}
	return rows * h.InnerPoints()
}

// AppendFloat64 appends v as 8 bytes IEEE-754 little-endian.
func AppendFloat64(b []byte, v float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(b, tmp[:]...)
}

// ReadFloat64 consumes 8 bytes IEEE-754 little-endian.
func ReadFloat64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("codec: truncated float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// ReadUvarint consumes one unsigned varint.
func ReadUvarint(b []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, fmt.Errorf("codec: truncated varint")
	}
	return v, b[k:], nil
}

// headerParses counts ParseHeader calls. Tests use it to prove that
// index-based archive access touches only the entries it must.
var headerParses atomic.Int64

// HeaderParses returns the number of ParseHeader calls so far.
func HeaderParses() int64 { return headerParses.Load() }

// marshalPrefix emits the fields shared by every version up to and
// including the dims.
func (h *Header) marshalPrefix(version byte) []byte {
	out := make([]byte, 0, 64+len(h.Name)+48*len(h.Chunks))
	out = append(out, Magic[:]...)
	out = append(out, version)
	out = append(out, byte(h.Codec))
	out = append(out, byte(h.Precision))
	out = append(out, byte(h.Mode))
	out = binary.AppendUvarint(out, uint64(len(h.Name)))
	out = append(out, h.Name...)
	out = binary.AppendUvarint(out, uint64(len(h.Dims)))
	for _, d := range h.Dims {
		out = binary.AppendUvarint(out, uint64(d))
	}
	return out
}

// marshalScalars emits the bound/annotation block shared by every
// version (or the constant value, which ends the header).
func (h *Header) marshalScalars(out []byte) []byte {
	out = AppendFloat64(out, h.EbAbs)
	out = AppendFloat64(out, h.TargetPSNR)
	out = AppendFloat64(out, h.ValueRange)
	out = binary.AppendUvarint(out, uint64(h.Capacity))
	return out
}

// Marshal serializes the header in the current chunked format: version 3
// when the stream has no group table, version 4 (group table + per-chunk
// group IDs) when it does — so ungrouped streams stay byte-identical to
// pre-group writers. All registered codecs share this container format so
// that inspection tooling and random access work uniformly. Chunk offsets
// and lengths must already be final; AssembleStream fills them from the
// payload slices and calls Marshal.
func (h *Header) Marshal() []byte {
	grouped := len(h.Groups) > 0
	version := byte(Version)
	if grouped {
		version = VersionGrouped
	}
	out := h.marshalPrefix(version)
	if h.Codec == IDConstant {
		return AppendFloat64(out, h.ConstValue)
	}
	out = h.marshalScalars(out)
	if grouped {
		out = binary.AppendUvarint(out, uint64(len(h.Groups)))
		for _, g := range h.Groups {
			out = binary.AppendUvarint(out, uint64(len(g.Name)))
			out = append(out, g.Name...)
			out = append(out, byte(g.Mode))
			out = AppendFloat64(out, g.TargetPSNR)
			out = AppendFloat64(out, g.TargetRatio)
		}
	}
	out = binary.AppendUvarint(out, uint64(len(h.Chunks)))
	for _, c := range h.Chunks {
		out = binary.AppendUvarint(out, uint64(c.Rows))
		out = binary.AppendUvarint(out, uint64(c.Off))
		out = binary.AppendUvarint(out, uint64(c.Len))
		out = binary.AppendUvarint(out, uint64(c.Unpredictable))
		out = AppendFloat64(out, c.EbAbs)
		out = AppendFloat64(out, c.MSE)
		out = AppendFloat64(out, c.Min)
		out = AppendFloat64(out, c.Max)
		if grouped {
			out = binary.AppendUvarint(out, uint64(c.Group))
		}
	}
	return out
}

// MarshalLegacy serializes the header in the legacy (version 1 or 2)
// layout: a bare (len, rows) chunk table with no offsets or statistics.
// It exists so compatibility fixtures and migration tests can produce
// old-format streams; production writers always emit the current version
// via Marshal. Per-chunk bounds cannot be represented and must be unset.
func (h *Header) MarshalLegacy(version byte) ([]byte, error) {
	if version != VersionLegacy && version != VersionLegacy2 {
		return nil, fmt.Errorf("codec: MarshalLegacy supports versions %d and %d, got %d",
			VersionLegacy, VersionLegacy2, version)
	}
	if len(h.Groups) > 0 {
		return nil, fmt.Errorf("codec: header has %d region groups; legacy layout cannot record them", len(h.Groups))
	}
	for i, c := range h.Chunks {
		if c.EbAbs != 0 {
			return nil, fmt.Errorf("codec: chunk %d has a per-chunk bound; legacy layout cannot record it", i)
		}
		if c.Group != 0 {
			return nil, fmt.Errorf("codec: chunk %d has a region group; legacy layout cannot record it", i)
		}
	}
	out := h.marshalPrefix(version)
	if h.Codec == IDConstant {
		return AppendFloat64(out, h.ConstValue), nil
	}
	out = h.marshalScalars(out)
	out = binary.AppendUvarint(out, uint64(len(h.Chunks)))
	for _, c := range h.Chunks {
		out = binary.AppendUvarint(out, uint64(c.Len))
		out = binary.AppendUvarint(out, uint64(c.Rows))
	}
	return out, nil
}

// ParseHeader decodes the header of a compressed stream without touching
// the chunk payloads. It validates the magic, version, structural sanity
// of the dimensions and chunk table, and that the stream is long enough
// to hold the payloads the header declares.
func ParseHeader(data []byte) (*Header, error) {
	return parseHeader(data, true)
}

// ParseHeaderPrefix decodes a header from a stream prefix: identical to
// ParseHeader except that the declared chunk payloads need not be present
// in data. Callers that only want metadata (archive listings, chunk
// tables for region reads) use it to read a bounded prefix instead of a
// whole entry.
func ParseHeaderPrefix(data []byte) (*Header, error) {
	return parseHeader(data, false)
}

func parseHeader(data []byte, requirePayload bool) (*Header, error) {
	headerParses.Add(1)
	b := data
	if len(b) < 8 {
		return nil, fmt.Errorf("codec: stream too short (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != Magic {
		return nil, fmt.Errorf("codec: bad magic %q", b[:4])
	}
	b = b[4:]
	version := b[0]
	switch version {
	case VersionLegacy, VersionLegacy2, Version, VersionGrouped:
	default:
		return nil, fmt.Errorf("codec: unsupported version %d", version)
	}
	h := &Header{Version: version}
	h.Codec = ID(b[1])
	h.Precision = field.Precision(b[2])
	h.Mode = Mode(b[3])
	b = b[4:]

	nameLen, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) < nameLen || nameLen > 1<<20 {
		return nil, fmt.Errorf("codec: bad name length %d", nameLen)
	}
	h.Name = string(b[:nameLen])
	b = b[nameLen:]

	ndims, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if ndims == 0 || ndims > 3 {
		return nil, fmt.Errorf("codec: unsupported rank %d", ndims)
	}
	h.Dims = make([]int, ndims)
	total := 1
	for i := range h.Dims {
		var d uint64
		d, b, err = ReadUvarint(b)
		if err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<40 {
			return nil, fmt.Errorf("codec: bad dimension %d", d)
		}
		if int(d) > (1<<50)/total {
			return nil, fmt.Errorf("codec: field size overflows (%v...)", h.Dims[:i+1])
		}
		h.Dims[i] = int(d)
		total *= int(d)
	}

	if h.Codec == IDConstant {
		h.ConstValue, b, err = ReadFloat64(b)
		if err != nil {
			return nil, err
		}
		h.headerLen = len(data) - len(b)
		return h, nil
	}

	if h.EbAbs, b, err = ReadFloat64(b); err != nil {
		return nil, err
	}
	if h.TargetPSNR, b, err = ReadFloat64(b); err != nil {
		return nil, err
	}
	if h.ValueRange, b, err = ReadFloat64(b); err != nil {
		return nil, err
	}
	capacity, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if capacity < 4 || capacity > 1<<30 {
		return nil, fmt.Errorf("codec: bad capacity %d", capacity)
	}
	h.Capacity = int(capacity)
	if version == VersionGrouped {
		if b, err = parseGroupTable(h, b); err != nil {
			return nil, err
		}
	}
	nchunks, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if nchunks == 0 || nchunks > 1<<20 {
		return nil, fmt.Errorf("codec: bad chunk count %d", nchunks)
	}
	h.Chunks = make([]ChunkInfo, nchunks)
	switch version {
	case Version, VersionGrouped:
		b, err = parseChunkTable(h, b, version == VersionGrouped)
	default:
		b, err = parseLegacyChunkTable(h, b)
	}
	if err != nil {
		return nil, err
	}
	h.headerLen = len(data) - len(b)
	if requirePayload {
		need := 0
		for _, c := range h.Chunks {
			if end := c.Off + c.Len; end > need {
				need = end
			}
		}
		if len(b) < need {
			return nil, fmt.Errorf("codec: chunk payloads truncated (%d < %d)", len(b), need)
		}
	}
	return h, nil
}

// parseGroupTable decodes the version-4 region-group table. A grouped
// stream must declare at least one group; the chunk table that follows
// references entries by index.
func parseGroupTable(h *Header, b []byte) ([]byte, error) {
	ngroups, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if ngroups == 0 || ngroups > MaxGroups {
		return nil, fmt.Errorf("codec: bad group count %d", ngroups)
	}
	h.Groups = make([]GroupInfo, ngroups)
	for i := range h.Groups {
		nameLen, rest, err := ReadUvarint(b)
		if err != nil {
			return nil, err
		}
		b = rest
		if uint64(len(b)) < nameLen || nameLen > 1<<10 {
			return nil, fmt.Errorf("codec: group %d bad name length %d", i, nameLen)
		}
		g := &h.Groups[i]
		g.Name = string(b[:nameLen])
		b = b[nameLen:]
		if len(b) < 1 {
			return nil, fmt.Errorf("codec: group %d truncated", i)
		}
		g.Mode = Mode(b[0])
		b = b[1:]
		if g.TargetPSNR, b, err = ReadFloat64(b); err != nil {
			return nil, err
		}
		if g.TargetRatio, b, err = ReadFloat64(b); err != nil {
			return nil, err
		}
		if g.TargetRatio < 0 || math.IsInf(g.TargetRatio, 0) || math.IsNaN(g.TargetRatio) {
			return nil, fmt.Errorf("codec: group %d bad target ratio %g", i, g.TargetRatio)
		}
	}
	return b, nil
}

// parseChunkTable decodes the version-3/4 chunk index and validates its
// invariants: per-chunk rows cover Dims[0] exactly, offsets are
// non-overlapping and non-decreasing, no entry's extent overflows, and
// (version 4) every chunk's group ID points into the group table.
func parseChunkTable(h *Header, b []byte, grouped bool) ([]byte, error) {
	rowSum := 0
	prevEnd := 0
	var err error
	for i := range h.Chunks {
		var rows, off, length, unpred uint64
		if rows, b, err = ReadUvarint(b); err != nil {
			return nil, err
		}
		if off, b, err = ReadUvarint(b); err != nil {
			return nil, err
		}
		if length, b, err = ReadUvarint(b); err != nil {
			return nil, err
		}
		if unpred, b, err = ReadUvarint(b); err != nil {
			return nil, err
		}
		c := &h.Chunks[i]
		if c.EbAbs, b, err = ReadFloat64(b); err != nil {
			return nil, err
		}
		if c.MSE, b, err = ReadFloat64(b); err != nil {
			return nil, err
		}
		if c.Min, b, err = ReadFloat64(b); err != nil {
			return nil, err
		}
		if c.Max, b, err = ReadFloat64(b); err != nil {
			return nil, err
		}
		if grouped {
			var group uint64
			if group, b, err = ReadUvarint(b); err != nil {
				return nil, err
			}
			if group >= uint64(len(h.Groups)) {
				return nil, fmt.Errorf("codec: chunk %d references group %d of %d", i, group, len(h.Groups))
			}
			c.Group = int(group)
		}
		if rows > 1<<50 || off > 1<<50 || length > 1<<50 || unpred > 1<<50 {
			return nil, fmt.Errorf("codec: chunk %d entry overflows", i)
		}
		if rows == 0 || int(rows) > h.Dims[0]-rowSum {
			return nil, fmt.Errorf("codec: chunk %d covers %d rows with %d remaining", i, rows, h.Dims[0]-rowSum)
		}
		if int(off) < prevEnd {
			return nil, fmt.Errorf("codec: chunk %d payload [%d,+%d) overlaps previous end %d", i, off, length, prevEnd)
		}
		c.Rows = int(rows)
		c.Off = int(off)
		c.Len = int(length)
		c.Unpredictable = int(unpred)
		c.RowStart = rowSum
		rowSum += int(rows)
		prevEnd = int(off) + int(length)
	}
	if rowSum != h.Dims[0] {
		return nil, fmt.Errorf("codec: chunk rows sum to %d, want %d", rowSum, h.Dims[0])
	}
	return b, nil
}

// parseLegacyChunkTable decodes the version-1/2 (len, rows) pair table
// into the unified chunk index: offsets come from the running length sum
// and the per-chunk statistics are marked unmeasured.
func parseLegacyChunkTable(h *Header, b []byte) ([]byte, error) {
	rowSum := 0
	off := 0
	var err error
	for i := range h.Chunks {
		var length, rows uint64
		if length, b, err = ReadUvarint(b); err != nil {
			return nil, err
		}
		if rows, b, err = ReadUvarint(b); err != nil {
			return nil, err
		}
		if length > 1<<50 || rows > 1<<50 {
			return nil, fmt.Errorf("codec: chunk %d entry overflows", i)
		}
		if rows == 0 {
			return nil, fmt.Errorf("codec: chunk %d covers no rows", i)
		}
		h.Chunks[i] = ChunkInfo{
			Rows:     int(rows),
			Off:      off,
			Len:      int(length),
			EbAbs:    0,
			MSE:      math.NaN(),
			Min:      math.NaN(),
			Max:      math.NaN(),
			RowStart: rowSum,
		}
		off += int(length)
		rowSum += int(rows)
	}
	if rowSum != h.Dims[0] {
		return nil, fmt.Errorf("codec: chunk rows sum to %d, want %d", rowSum, h.Dims[0])
	}
	return b, nil
}
