package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"fixedpsnr/internal/field"
)

// Stream layout (all integers are unsigned varints unless noted):
//
//	magic   "FPSZ"            4 bytes
//	version                   1 byte
//	codec                     1 byte  (IDLorenzo, IDConstant, ...)
//	precision                 1 byte  (0 = float32, 1 = float64)
//	mode                      1 byte  (informational: how the bound was set)
//	name                      uvarint length + bytes
//	ndims, dims...            uvarints
//	ebAbs                     8 bytes IEEE-754 LE (0 for constant codec)
//	targetPSNR                8 bytes IEEE-754 LE (NaN when not PSNR mode)
//	valueRange                8 bytes IEEE-754 LE (vr of the original data)
//	capacity                  uvarint (quantization intervals 2n)
//	nchunks                   uvarint
//	chunk compressed lengths  uvarint × nchunks
//	chunk payloads            concatenated codec-specific streams
//
// The constant codec replaces everything from capacity onward with a
// single 8-byte value.

// Magic identifies a fixed-PSNR compressed stream.
var Magic = [4]byte{'F', 'P', 'S', 'Z'}

// Version is the current stream format version.
const Version = 1

// ID identifies the compression pipeline used for a stream payload. The
// byte value is recorded in the stream header and routes decompression
// through the registry.
type ID uint8

// Stream IDs. New pipelines must pick unused values; the registry panics
// on collisions.
const (
	// IDLorenzo is the SZ pipeline: Lorenzo prediction +
	// error-controlled uniform quantization + Huffman + DEFLATE.
	IDLorenzo ID = 1
	// IDConstant stores a constant field as a single value.
	IDConstant ID = 2
	// IDLogLorenzo is the pointwise-relative pipeline: IDLorenzo
	// applied in the log domain with a sign/zero side channel.
	IDLogLorenzo ID = 3
	// IDOTC is the orthogonal-transform pipeline implemented by
	// internal/otc: blockwise orthonormal DCT + uniform quantization +
	// Huffman + DEFLATE. It shares this container format.
	IDOTC ID = 4
)

// String names the codec ID.
func (c ID) String() string {
	switch c {
	case IDLorenzo:
		return "sz-lorenzo"
	case IDConstant:
		return "constant"
	case IDLogLorenzo:
		return "sz-log-lorenzo"
	case IDOTC:
		return "otc-dct"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// Mode records how the error bound embedded in a stream was derived.
// It is informational; decompression never needs it.
type Mode uint8

// Mode values.
const (
	// ModeAbs: the user supplied the absolute error bound directly.
	ModeAbs Mode = iota
	// ModeRel: bound derived from a value-range-based relative bound.
	ModeRel
	// ModePSNR: bound derived from a target PSNR via Eq. 8.
	ModePSNR
	// ModePWRel: pointwise-relative bound (log-domain compression).
	ModePWRel
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAbs:
		return "abs"
	case ModeRel:
		return "rel"
	case ModePSNR:
		return "psnr"
	case ModePWRel:
		return "pwrel"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Transform selects the orthonormal block transform of the otc pipeline.
// It lives here so the unified Options can carry it without depending on
// the pipeline package.
type Transform uint8

// Transforms.
const (
	// TransformDCT is the orthonormal DCT-II (ZFP-flavored).
	TransformDCT Transform = 0
	// TransformHaar is the full multi-level orthonormal Haar DWT
	// (SSEM-flavored).
	TransformHaar Transform = 1
)

// String names the transform.
func (t Transform) String() string {
	switch t {
	case TransformDCT:
		return "dct"
	case TransformHaar:
		return "haar"
	default:
		return fmt.Sprintf("transform(%d)", uint8(t))
	}
}

// Header describes a compressed stream.
type Header struct {
	Codec      ID
	Precision  field.Precision
	Mode       Mode
	Name       string
	Dims       []int
	EbAbs      float64 // absolute error bound used for quantization
	TargetPSNR float64 // NaN unless Mode == ModePSNR
	ValueRange float64 // vr of the original data (recorded for inspection)
	Capacity   int     // quantization intervals (2n)
	ChunkLens  []int   // compressed byte length of each chunk
	ChunkRows  []int   // rows (along Dims[0]) covered by each chunk
	// ConstValue holds the value of a constant field (IDConstant).
	ConstValue float64
	// headerLen is the byte offset where chunk payloads begin.
	headerLen int
}

// PayloadOffset returns the byte offset where chunk payloads begin in the
// stream this header was parsed from. It is only meaningful on headers
// returned by ParseHeader.
func (h *Header) PayloadOffset() int { return h.headerLen }

// NPoints returns the total number of points implied by Dims.
func (h *Header) NPoints() int {
	n := 1
	for _, d := range h.Dims {
		n *= d
	}
	return n
}

// AppendFloat64 appends v as 8 bytes IEEE-754 little-endian.
func AppendFloat64(b []byte, v float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(b, tmp[:]...)
}

// ReadFloat64 consumes 8 bytes IEEE-754 little-endian.
func ReadFloat64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("codec: truncated float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// ReadUvarint consumes one unsigned varint.
func ReadUvarint(b []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, fmt.Errorf("codec: truncated varint")
	}
	return v, b[k:], nil
}

// headerParses counts ParseHeader calls. Tests use it to prove that
// index-based archive access touches only the entries it must.
var headerParses atomic.Int64

// HeaderParses returns the number of ParseHeader calls so far.
func HeaderParses() int64 { return headerParses.Load() }

// Marshal serializes the header. All registered codecs share this
// container format so that inspection tooling works uniformly.
func (h *Header) Marshal() []byte {
	out := make([]byte, 0, 64+len(h.Name))
	out = append(out, Magic[:]...)
	out = append(out, Version)
	out = append(out, byte(h.Codec))
	out = append(out, byte(h.Precision))
	out = append(out, byte(h.Mode))
	out = binary.AppendUvarint(out, uint64(len(h.Name)))
	out = append(out, h.Name...)
	out = binary.AppendUvarint(out, uint64(len(h.Dims)))
	for _, d := range h.Dims {
		out = binary.AppendUvarint(out, uint64(d))
	}
	if h.Codec == IDConstant {
		out = AppendFloat64(out, h.ConstValue)
		return out
	}
	out = AppendFloat64(out, h.EbAbs)
	out = AppendFloat64(out, h.TargetPSNR)
	out = AppendFloat64(out, h.ValueRange)
	out = binary.AppendUvarint(out, uint64(h.Capacity))
	out = binary.AppendUvarint(out, uint64(len(h.ChunkLens)))
	for i, l := range h.ChunkLens {
		out = binary.AppendUvarint(out, uint64(l))
		out = binary.AppendUvarint(out, uint64(h.ChunkRows[i]))
	}
	return out
}

// ParseHeader decodes the header of a compressed stream without touching
// the chunk payloads. It validates the magic, version, structural sanity
// of the dimensions, and that the stream is long enough to hold the
// payloads the header declares.
func ParseHeader(data []byte) (*Header, error) {
	return parseHeader(data, true)
}

// ParseHeaderPrefix decodes a header from a stream prefix: identical to
// ParseHeader except that the declared chunk payloads need not be present
// in data. Callers that only want metadata (archive listings) use it to
// read a bounded prefix instead of a whole entry.
func ParseHeaderPrefix(data []byte) (*Header, error) {
	return parseHeader(data, false)
}

func parseHeader(data []byte, requirePayload bool) (*Header, error) {
	headerParses.Add(1)
	b := data
	if len(b) < 8 {
		return nil, fmt.Errorf("codec: stream too short (%d bytes)", len(b))
	}
	if [4]byte(b[:4]) != Magic {
		return nil, fmt.Errorf("codec: bad magic %q", b[:4])
	}
	b = b[4:]
	if b[0] != Version {
		return nil, fmt.Errorf("codec: unsupported version %d", b[0])
	}
	h := &Header{}
	h.Codec = ID(b[1])
	h.Precision = field.Precision(b[2])
	h.Mode = Mode(b[3])
	b = b[4:]

	nameLen, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) < nameLen || nameLen > 1<<20 {
		return nil, fmt.Errorf("codec: bad name length %d", nameLen)
	}
	h.Name = string(b[:nameLen])
	b = b[nameLen:]

	ndims, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if ndims == 0 || ndims > 3 {
		return nil, fmt.Errorf("codec: unsupported rank %d", ndims)
	}
	h.Dims = make([]int, ndims)
	total := 1
	for i := range h.Dims {
		var d uint64
		d, b, err = ReadUvarint(b)
		if err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<40 {
			return nil, fmt.Errorf("codec: bad dimension %d", d)
		}
		if int(d) > (1<<50)/total {
			return nil, fmt.Errorf("codec: field size overflows (%v...)", h.Dims[:i+1])
		}
		h.Dims[i] = int(d)
		total *= int(d)
	}

	if h.Codec == IDConstant {
		h.ConstValue, b, err = ReadFloat64(b)
		if err != nil {
			return nil, err
		}
		h.headerLen = len(data) - len(b)
		return h, nil
	}

	if h.EbAbs, b, err = ReadFloat64(b); err != nil {
		return nil, err
	}
	if h.TargetPSNR, b, err = ReadFloat64(b); err != nil {
		return nil, err
	}
	if h.ValueRange, b, err = ReadFloat64(b); err != nil {
		return nil, err
	}
	capacity, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if capacity < 4 || capacity > 1<<30 {
		return nil, fmt.Errorf("codec: bad capacity %d", capacity)
	}
	h.Capacity = int(capacity)
	nchunks, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if nchunks == 0 || nchunks > 1<<20 {
		return nil, fmt.Errorf("codec: bad chunk count %d", nchunks)
	}
	h.ChunkLens = make([]int, nchunks)
	h.ChunkRows = make([]int, nchunks)
	sum := 0
	rowSum := 0
	for i := range h.ChunkLens {
		var l, r uint64
		l, b, err = ReadUvarint(b)
		if err != nil {
			return nil, err
		}
		r, b, err = ReadUvarint(b)
		if err != nil {
			return nil, err
		}
		h.ChunkLens[i] = int(l)
		h.ChunkRows[i] = int(r)
		sum += int(l)
		rowSum += int(r)
	}
	if rowSum != h.Dims[0] {
		return nil, fmt.Errorf("codec: chunk rows sum to %d, want %d", rowSum, h.Dims[0])
	}
	h.headerLen = len(data) - len(b)
	if requirePayload && len(b) < sum {
		return nil, fmt.Errorf("codec: chunk payloads truncated (%d < %d)", len(b), sum)
	}
	return h, nil
}
