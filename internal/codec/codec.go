// Package codec is the registry layer of the compression stack: it owns
// the shared stream container (header format, codec identifiers, unified
// options and statistics) and a registry through which concrete pipelines
// — internal/sz (prediction-based) and internal/otc (orthogonal
// transform) — publish themselves.
//
// The layering is:
//
//	fixedpsnr          public API: Field in, stream out
//	internal/plan      mode → absolute-bound derivation + calibration
//	internal/codec     this package: registry, container, shared types
//	internal/sz, /otc  concrete pipelines, self-registered via init()
//
// Decompression routes by registry lookup on the codec byte recorded in
// the stream header, so adding a pipeline is a registration, not a
// refactor: implement Codec, call Register in init(), and every caller of
// Decompress (single streams, archives, the CLI) can read your streams.
package codec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"fixedpsnr/internal/field"
)

// Codec is one compression pipeline behind the registry.
//
// Compress encodes a field under opt and returns the self-describing
// stream plus statistics. Decompress reverses any stream whose header
// codec byte is in IDs. Implementations must be safe for concurrent use.
type Codec interface {
	// Name is the stable registry key ("sz", "otc") used by callers
	// that select a pipeline by name.
	Name() string
	// IDs lists the stream codec bytes this pipeline decodes.
	IDs() []ID
	// MeasuresMSE reports whether Stats.MSE holds the exact
	// reconstruction MSE after Compress (Theorem 1 pipelines). The
	// calibrated fixed-PSNR loop in internal/plan requires it.
	MeasuresMSE() bool
	// Compress encodes f under opt. Implementations must honor ctx
	// cancellation between units of work (slabs, blocks, refinement
	// passes) and return ctx.Err() promptly, and should draw transient
	// buffers from scratch when it is non-nil so session callers reuse
	// allocations across calls. Both ctx and scratch may be nil /
	// context.Background() for one-shot use.
	Compress(ctx context.Context, f *field.Field, opt Options, scratch *Scratch) ([]byte, *Stats, error)
	Decompress(data []byte) (*field.Field, *Header, error)
}

// ChunkCodec is the optional interface of pipelines that operate one
// row-slab chunk at a time. It is what the chunked container's advanced
// paths are built on: the streaming encoder (bounded-memory EncodeFrom)
// compresses chunks as they arrive, region decoding touches only the
// chunks a request intersects, and the calibrated fixed-PSNR refinement
// recompresses only the chunks whose error contribution is stale.
//
// Both built-in pipelines implement it. A registered Codec that does not
// is still fully usable through Compress/Decompress; the chunk-granular
// entry points fall back to whole-field operation (region decodes crop a
// full reconstruction) or report ErrNotChunked (streaming encode).
type ChunkCodec interface {
	Codec
	// CompressChunk compresses one chunk: data holds the chunk's values
	// in row-major order and dims are the chunk's dimensions (dims[0] is
	// the chunk's row extent; the rest match the field). opt carries the
	// resolved configuration — in particular ErrorBound and Capacity are
	// final (no AutoCapacity resolution happens at chunk level). The
	// returned payload must be decodable by DecompressChunk.
	CompressChunk(ctx context.Context, data []float64, dims []int, prec field.Precision, opt Options, scratch *Scratch) ([]byte, ChunkStats, error)
	// DecompressChunk reverses CompressChunk: payload is chunk ci's
	// payload bytes (exactly h.Chunks[ci].Len of them), h the parsed
	// stream header, and dst the chunk's destination values
	// (h.ChunkPoints(ci) of them). Implementations should draw transient
	// decode buffers from scratch when it is non-nil (nil is valid and
	// means one-shot use). It returns ErrNotChunked for stream IDs the
	// pipeline cannot decode chunk-by-chunk.
	DecompressChunk(payload []byte, h *Header, ci int, dst []float64, scratch *Scratch) error
}

// ScratchDecompressor is the optional interface of pipelines whose
// whole-stream decode path can reuse session scratch buffers. The
// registry-level DecompressScratch routes through it when available, so a
// session Decoder holding one Scratch stops paying the decode-side
// transient allocations (inflate windows, Huffman tables, code slices)
// on every call.
type ScratchDecompressor interface {
	Codec
	// DecompressScratch is Decompress drawing transient buffers from sc.
	// A nil sc must behave exactly like Decompress.
	DecompressScratch(data []byte, sc *Scratch) (*field.Field, *Header, error)
}

// PWRelCodec is the optional interface of pipelines that implement the
// pointwise-relative error mode (|x̃ − x| ≤ rel·|x| for every point).
// The built-in sz pipeline implements it via log-domain compression.
// Dispatch is capability-based — the public API routes ModePWRel to any
// registered codec that implements this interface — so pointwise-relative
// support is a codec property, not a hardwired pipeline name.
type PWRelCodec interface {
	Codec
	// CompressPWRel encodes f under the pointwise relative bound pwRel
	// (in (0, 1)). opt carries the shared configuration; its ErrorBound
	// is ignored (the pipeline derives its own inner bound from pwRel).
	CompressPWRel(ctx context.Context, f *field.Field, pwRel float64, opt Options, scratch *Scratch) ([]byte, *Stats, error)
}

// ErrNotChunked reports that a stream cannot be decoded chunk by chunk
// (its codec is not a ChunkCodec, or the stream ID is one the pipeline
// only decodes whole, like the log-domain pointwise-relative streams).
// Region decoding falls back to a full decode plus crop when it sees it.
var ErrNotChunked = errors.New("codec: stream does not support chunk-granular access")

var (
	regMu  sync.RWMutex
	byID   = map[ID]Codec{}
	byName = map[string]Codec{}
)

// Register publishes a pipeline. It panics if the name or any stream ID
// is already taken — registration happens in init() and a collision is a
// programming error, not a runtime condition.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	name := c.Name()
	if name == "" {
		panic("codec: Register with empty name")
	}
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("codec: duplicate registration of %q", name))
	}
	ids := c.IDs()
	if len(ids) == 0 {
		panic(fmt.Sprintf("codec: %q registers no stream IDs", name))
	}
	for _, id := range ids {
		if prev, dup := byID[id]; dup {
			panic(fmt.Sprintf("codec: stream ID %v claimed by both %q and %q", id, prev.Name(), name))
		}
	}
	byName[name] = c
	for _, id := range ids {
		byID[id] = c
	}
}

// Lookup finds the pipeline that decodes streams with the given codec
// byte.
func Lookup(id ID) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byID[id]
	return c, ok
}

// ByName finds a registered pipeline by its registry name.
func ByName(name string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byName[name]
	return c, ok
}

// Names lists the registered pipelines, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Decompress reconstructs a field from any registered stream: it parses
// the header once and routes to the pipeline registered for the codec
// byte. This is the single decode entry point for the public API, the
// archive container, and the CLI.
func Decompress(data []byte) (*field.Field, *Header, error) {
	return DecompressScratch(data, nil)
}

// DecompressScratch is Decompress threading a session's scratch pools
// into pipelines that can use them (ScratchDecompressor implementers);
// other pipelines decode exactly as before. A nil sc is valid.
func DecompressScratch(data []byte, sc *Scratch) (*field.Field, *Header, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	c, ok := Lookup(h.Codec)
	if !ok {
		return nil, nil, fmt.Errorf("codec: no registered codec for stream ID %v", h.Codec)
	}
	if sd, ok := c.(ScratchDecompressor); ok {
		return sd.DecompressScratch(data, sc)
	}
	return c.Decompress(data)
}
