package codec_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/otc"
	"fixedpsnr/internal/sz"
)

func TestRegistryRoutesBothPipelines(t *testing.T) {
	for id, want := range map[codec.ID]string{
		codec.IDLorenzo:    "sz",
		codec.IDConstant:   "sz",
		codec.IDLogLorenzo: "sz",
		codec.IDOTC:        "otc",
	} {
		c, ok := codec.Lookup(id)
		if !ok {
			t.Fatalf("no codec registered for %v", id)
		}
		if c.Name() != want {
			t.Fatalf("%v routed to %q, want %q", id, c.Name(), want)
		}
	}
	names := codec.Names()
	if len(names) != 2 || names[0] != "otc" || names[1] != "sz" {
		t.Fatalf("Names() = %v", names)
	}
	if _, ok := codec.Lookup(codec.ID(99)); ok {
		t.Fatal("Lookup(99) found a codec")
	}
	if _, ok := codec.ByName("zstd"); ok {
		t.Fatal(`ByName("zstd") found a codec`)
	}
}

func TestMeasuresMSECapability(t *testing.T) {
	szc, _ := codec.ByName("sz")
	otcc, _ := codec.ByName("otc")
	if !szc.MeasuresMSE() {
		t.Fatal("sz must measure its MSE (Theorem 1)")
	}
	if otcc.MeasuresMSE() {
		t.Fatal("otc does not measure data-domain MSE")
	}
}

func testField(t *testing.T) *field.Field {
	t.Helper()
	f := field.New("route", field.Float64, 24, 24)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i) / 9)
	}
	return f
}

func TestDecompressRoutesByRegistry(t *testing.T) {
	f := testField(t)
	opt := codec.Options{ErrorBound: 1e-3, Workers: 1}
	for _, name := range codec.Names() {
		c, _ := codec.ByName(name)
		blob, _, err := c.Compress(context.Background(), f, opt, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, h, err := codec.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: registry decompression: %v", name, err)
		}
		if g.Name != f.Name || !g.SameShape(f) {
			t.Fatalf("%s: reconstruction metadata mismatch", name)
		}
		if owner, _ := codec.Lookup(h.Codec); owner.Name() != name {
			t.Fatalf("stream ID %v owned by %q, compressed by %q", h.Codec, owner.Name(), name)
		}
	}
}

func TestDecompressUnknownStreamID(t *testing.T) {
	f := testField(t)
	blob, _, err := sz.Compress(f, codec.Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob[5] = 200 // unregistered codec byte
	_, _, err = codec.Decompress(blob)
	if err == nil || !strings.Contains(err.Error(), "no registered codec") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnifiedStatsRecordValueRange(t *testing.T) {
	f := testField(t)
	_, _, vr := f.ValueRange()
	_, st, err := sz.Compress(f, codec.Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.ValueRange != vr {
		t.Fatalf("sz stats vr = %g, want %g", st.ValueRange, vr)
	}
	_, ost, err := otc.Compress(f, codec.Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ost.ValueRange != vr {
		t.Fatalf("otc stats vr = %g, want %g", ost.ValueRange, vr)
	}
	if !math.IsNaN(ost.MSE) {
		t.Fatalf("otc stats MSE = %g, want NaN (unmeasured)", ost.MSE)
	}
}

type fakeCodec struct {
	name string
	ids  []codec.ID
}

func (f fakeCodec) Name() string      { return f.name }
func (f fakeCodec) IDs() []codec.ID   { return f.ids }
func (f fakeCodec) MeasuresMSE() bool { return false }
func (f fakeCodec) Compress(context.Context, *field.Field, codec.Options, *codec.Scratch) ([]byte, *codec.Stats, error) {
	return nil, nil, nil
}
func (f fakeCodec) Decompress([]byte) (*field.Field, *codec.Header, error) { return nil, nil, nil }

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegisterCollisionsPanic(t *testing.T) {
	mustPanic(t, "duplicate name", func() {
		codec.Register(fakeCodec{name: "sz", ids: []codec.ID{77}})
	})
	mustPanic(t, "duplicate stream ID", func() {
		codec.Register(fakeCodec{name: "fresh", ids: []codec.ID{codec.IDLorenzo}})
	})
	mustPanic(t, "empty name", func() {
		codec.Register(fakeCodec{name: "", ids: []codec.ID{78}})
	})
	mustPanic(t, "no IDs", func() {
		codec.Register(fakeCodec{name: "empty-ids"})
	})
}

func TestHeaderMarshalParseRoundTrip(t *testing.T) {
	h := &codec.Header{
		Codec:      codec.IDLorenzo,
		Precision:  field.Float32,
		Mode:       codec.ModePSNR,
		Name:       "round-trip",
		Dims:       []int{4, 6, 8},
		EbAbs:      1e-3,
		TargetPSNR: 64,
		ValueRange: 2.5,
		Capacity:   1024,
		Chunks: []codec.ChunkInfo{
			{Rows: 2, Off: 0, Len: 9, Unpredictable: 3, EbAbs: 0, MSE: 2.5e-7, Min: -1, Max: 1.5},
			{Rows: 2, Off: 9, Len: 11, Unpredictable: 0, EbAbs: 5e-4, MSE: 1e-7, Min: 0, Max: 0.5},
		},
	}
	raw := append(h.Marshal(), make([]byte, 20)...) // payload space
	g, err := codec.ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	if g.Codec != h.Codec || g.Precision != h.Precision || g.Mode != h.Mode ||
		g.Name != h.Name || g.EbAbs != h.EbAbs || g.TargetPSNR != h.TargetPSNR ||
		g.ValueRange != h.ValueRange || g.Capacity != h.Capacity {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, h)
	}
	if g.Version != codec.Version {
		t.Fatalf("Version = %d, want %d", g.Version, codec.Version)
	}
	if len(g.Chunks) != 2 {
		t.Fatalf("Chunks = %d, want 2", len(g.Chunks))
	}
	for i := range g.Chunks {
		want := h.Chunks[i]
		want.RowStart = i * 2
		if g.Chunks[i] != want {
			t.Fatalf("chunk %d = %+v, want %+v", i, g.Chunks[i], want)
		}
	}
	if g.ChunkBound(0) != h.EbAbs || g.ChunkBound(1) != 5e-4 {
		t.Fatalf("ChunkBound = %g, %g", g.ChunkBound(0), g.ChunkBound(1))
	}
	if g.NPoints() != 4*6*8 {
		t.Fatalf("NPoints = %d", g.NPoints())
	}
	if g.PayloadOffset() != len(raw)-20 {
		t.Fatalf("PayloadOffset = %d, want %d", g.PayloadOffset(), len(raw)-20)
	}
	// The aggregate is the point-weighted mean of the chunk MSEs; both
	// chunks cover the same point count here.
	if agg := g.AggregateMSE(); math.Abs(agg-(2.5e-7+1e-7)/2) > 1e-20 {
		t.Fatalf("AggregateMSE = %g", agg)
	}
}

func TestHeaderLegacyVersionsReadable(t *testing.T) {
	h := &codec.Header{
		Codec:      codec.IDLorenzo,
		Precision:  field.Float64,
		Mode:       codec.ModeAbs,
		Name:       "legacy",
		Dims:       []int{6, 10},
		EbAbs:      1e-3,
		TargetPSNR: math.NaN(),
		ValueRange: 1,
		Capacity:   65536,
		Chunks: []codec.ChunkInfo{
			{Rows: 3, Len: 7},
			{Rows: 3, Len: 5},
		},
	}
	for _, version := range []byte{codec.VersionLegacy, codec.VersionLegacy2} {
		raw, err := h.MarshalLegacy(version)
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, make([]byte, 12)...) // payload space
		g, err := codec.ParseHeader(raw)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if g.Version != version {
			t.Fatalf("Version = %d, want %d", g.Version, version)
		}
		if len(g.Chunks) != 2 ||
			g.Chunks[0].Rows != 3 || g.Chunks[0].Off != 0 || g.Chunks[0].Len != 7 ||
			g.Chunks[1].Off != 7 || g.Chunks[1].RowStart != 3 {
			t.Fatalf("v%d chunks = %+v", version, g.Chunks)
		}
		// Legacy chunk statistics are unmeasured.
		if !math.IsNaN(g.Chunks[0].MSE) || !math.IsNaN(g.AggregateMSE()) {
			t.Fatalf("v%d: legacy chunk MSE should be NaN", version)
		}
	}
	// Per-chunk bounds are unrepresentable in the legacy layout.
	h.Chunks[1].EbAbs = 1e-4
	if _, err := h.MarshalLegacy(codec.VersionLegacy); err == nil {
		t.Fatal("MarshalLegacy accepted a per-chunk bound")
	}
	if _, err := h.MarshalLegacy(7); err == nil {
		t.Fatal("MarshalLegacy accepted version 7")
	}
}

func TestParseHeaderRejectsBadChunkTables(t *testing.T) {
	mk := func(mut func(h *codec.Header)) []byte {
		h := &codec.Header{
			Codec: codec.IDLorenzo, Precision: field.Float64, Name: "bad",
			Dims: []int{8, 4}, EbAbs: 1e-3, TargetPSNR: math.NaN(),
			ValueRange: 1, Capacity: 65536,
			Chunks: []codec.ChunkInfo{{Rows: 4, Off: 0, Len: 6}, {Rows: 4, Off: 6, Len: 6}},
		}
		mut(h)
		return append(h.Marshal(), make([]byte, 64)...)
	}
	cases := map[string]func(h *codec.Header){
		"overlapping payloads": func(h *codec.Header) { h.Chunks[1].Off = 3 },
		"rows exceed dims":     func(h *codec.Header) { h.Chunks[1].Rows = 40 },
		"rows fall short":      func(h *codec.Header) { h.Chunks[1].Rows = 1 },
		"zero-row chunk":       func(h *codec.Header) { h.Chunks[1].Rows = 0 },
		// Marshal writes uint64(-4) = 2^64-4; the parser must reject the
		// overflow rather than wrap to a negative row count that panics
		// every downstream slicer.
		"rows uvarint overflow": func(h *codec.Header) { h.Chunks[0].Rows = -4; h.Chunks[1].Rows = 12 },
	}
	for name, mut := range cases {
		if _, err := codec.ParseHeader(mk(mut)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Out-of-bounds payload extent: header valid, stream too short.
	ok := mk(func(*codec.Header) {})
	if _, err := codec.ParseHeader(ok[:len(ok)-60]); err == nil {
		t.Error("truncated payloads: accepted")
	}
}
