package codec_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/otc"
	"fixedpsnr/internal/sz"
)

func TestRegistryRoutesBothPipelines(t *testing.T) {
	for id, want := range map[codec.ID]string{
		codec.IDLorenzo:    "sz",
		codec.IDConstant:   "sz",
		codec.IDLogLorenzo: "sz",
		codec.IDOTC:        "otc",
	} {
		c, ok := codec.Lookup(id)
		if !ok {
			t.Fatalf("no codec registered for %v", id)
		}
		if c.Name() != want {
			t.Fatalf("%v routed to %q, want %q", id, c.Name(), want)
		}
	}
	names := codec.Names()
	if len(names) != 2 || names[0] != "otc" || names[1] != "sz" {
		t.Fatalf("Names() = %v", names)
	}
	if _, ok := codec.Lookup(codec.ID(99)); ok {
		t.Fatal("Lookup(99) found a codec")
	}
	if _, ok := codec.ByName("zstd"); ok {
		t.Fatal(`ByName("zstd") found a codec`)
	}
}

func TestMeasuresMSECapability(t *testing.T) {
	szc, _ := codec.ByName("sz")
	otcc, _ := codec.ByName("otc")
	if !szc.MeasuresMSE() {
		t.Fatal("sz must measure its MSE (Theorem 1)")
	}
	if otcc.MeasuresMSE() {
		t.Fatal("otc does not measure data-domain MSE")
	}
}

func testField(t *testing.T) *field.Field {
	t.Helper()
	f := field.New("route", field.Float64, 24, 24)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i) / 9)
	}
	return f
}

func TestDecompressRoutesByRegistry(t *testing.T) {
	f := testField(t)
	opt := codec.Options{ErrorBound: 1e-3, Workers: 1}
	for _, name := range codec.Names() {
		c, _ := codec.ByName(name)
		blob, _, err := c.Compress(context.Background(), f, opt, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, h, err := codec.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: registry decompression: %v", name, err)
		}
		if g.Name != f.Name || !g.SameShape(f) {
			t.Fatalf("%s: reconstruction metadata mismatch", name)
		}
		if owner, _ := codec.Lookup(h.Codec); owner.Name() != name {
			t.Fatalf("stream ID %v owned by %q, compressed by %q", h.Codec, owner.Name(), name)
		}
	}
}

func TestDecompressUnknownStreamID(t *testing.T) {
	f := testField(t)
	blob, _, err := sz.Compress(f, codec.Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob[5] = 200 // unregistered codec byte
	_, _, err = codec.Decompress(blob)
	if err == nil || !strings.Contains(err.Error(), "no registered codec") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnifiedStatsRecordValueRange(t *testing.T) {
	f := testField(t)
	_, _, vr := f.ValueRange()
	_, st, err := sz.Compress(f, codec.Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.ValueRange != vr {
		t.Fatalf("sz stats vr = %g, want %g", st.ValueRange, vr)
	}
	_, ost, err := otc.Compress(f, codec.Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ost.ValueRange != vr {
		t.Fatalf("otc stats vr = %g, want %g", ost.ValueRange, vr)
	}
	if !math.IsNaN(ost.MSE) {
		t.Fatalf("otc stats MSE = %g, want NaN (unmeasured)", ost.MSE)
	}
}

type fakeCodec struct {
	name string
	ids  []codec.ID
}

func (f fakeCodec) Name() string      { return f.name }
func (f fakeCodec) IDs() []codec.ID   { return f.ids }
func (f fakeCodec) MeasuresMSE() bool { return false }
func (f fakeCodec) Compress(context.Context, *field.Field, codec.Options, *codec.Scratch) ([]byte, *codec.Stats, error) {
	return nil, nil, nil
}
func (f fakeCodec) Decompress([]byte) (*field.Field, *codec.Header, error) { return nil, nil, nil }

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegisterCollisionsPanic(t *testing.T) {
	mustPanic(t, "duplicate name", func() {
		codec.Register(fakeCodec{name: "sz", ids: []codec.ID{77}})
	})
	mustPanic(t, "duplicate stream ID", func() {
		codec.Register(fakeCodec{name: "fresh", ids: []codec.ID{codec.IDLorenzo}})
	})
	mustPanic(t, "empty name", func() {
		codec.Register(fakeCodec{name: "", ids: []codec.ID{78}})
	})
	mustPanic(t, "no IDs", func() {
		codec.Register(fakeCodec{name: "empty-ids"})
	})
}

func TestHeaderMarshalParseRoundTrip(t *testing.T) {
	h := &codec.Header{
		Codec:      codec.IDLorenzo,
		Precision:  field.Float32,
		Mode:       codec.ModePSNR,
		Name:       "round-trip",
		Dims:       []int{4, 6, 8},
		EbAbs:      1e-3,
		TargetPSNR: 64,
		ValueRange: 2.5,
		Capacity:   1024,
		ChunkLens:  []int{9, 11},
		ChunkRows:  []int{2, 2},
	}
	raw := append(h.Marshal(), make([]byte, 20)...) // payload space
	g, err := codec.ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	if g.Codec != h.Codec || g.Precision != h.Precision || g.Mode != h.Mode ||
		g.Name != h.Name || g.EbAbs != h.EbAbs || g.TargetPSNR != h.TargetPSNR ||
		g.ValueRange != h.ValueRange || g.Capacity != h.Capacity {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, h)
	}
	if g.NPoints() != 4*6*8 {
		t.Fatalf("NPoints = %d", g.NPoints())
	}
	if g.PayloadOffset() != len(raw)-20 {
		t.Fatalf("PayloadOffset = %d, want %d", g.PayloadOffset(), len(raw)-20)
	}
}
