package codec

import "compress/flate"

// Options is the unified per-codec configuration. Both pipelines read the
// common core (ErrorBound, Capacity, Workers, Level, and the header
// annotations); each ignores the knobs that do not apply to it, so one
// options struct travels from the public API through the plan layer to
// any registered codec.
type Options struct {
	// ErrorBound is the absolute error bound ebabs — half the
	// quantization bin width (δ = 2·ebabs) in every pipeline. Must be
	// positive unless the field is constant.
	ErrorBound float64
	// Capacity is the number of quantization intervals (2n). Zero
	// selects the pipeline default; AutoCapacity overrides it.
	Capacity int
	// AutoCapacity estimates the capacity from the data (SZ pipeline).
	AutoCapacity bool
	// Workers bounds compression concurrency (non-positive: all CPUs).
	Workers int
	// ChunkRows forces the chunk height along the slowest dimension.
	// Zero defers to ChunkPoints (or a Workers-derived spread).
	ChunkRows int
	// ChunkPoints is the target chunk size in points; chunks are
	// ChunkPoints/inner rows tall (at least one row). Zero keeps the
	// Workers-derived spread for in-memory encodes and
	// DefaultChunkPoints for the streaming encoder. Values below
	// MinChunkPoints are rejected by validation.
	ChunkPoints int
	// Level selects the DEFLATE back-end for the payload stage. Zero —
	// the default — routes through the purpose-built internal/deflate
	// encoder (entropy-gated match search tuned for entropy-coded
	// payloads, matching SZ's use of fast gzip). An explicit
	// compress/flate level (-2..9, nonzero) keeps the stdlib writer as
	// an escape hatch; both back-ends emit conformant DEFLATE streams.
	Level int
	// BlockSize is the transform block edge (otc pipeline).
	BlockSize int
	// Transform selects the block transform (otc pipeline).
	Transform Transform
	// Mode, TargetPSNR, and ValueRange annotate the stream header for
	// inspection; they do not affect the algorithm.
	Mode       Mode
	TargetPSNR float64
	ValueRange float64
}

// FlateLevel resolves the level passed to compress/flate when the
// stdlib escape hatch is selected (Level != 0). Level 0 does not reach
// the stdlib writer at all — Scratch.AppendDeflate routes it to the
// internal back-end — so the BestSpeed mapping here only preserves the
// historical meaning for callers that resolve a level eagerly.
func (o Options) FlateLevel() int {
	if o.Level == 0 {
		return flate.BestSpeed
	}
	return o.Level
}

// Stats is the unified compression outcome report. Fields that a
// pipeline does not measure keep their documented sentinel (NaN MSE for
// pipelines without Theorem 1 measurement, zero Chunks/Blocks when not
// applicable).
type Stats struct {
	OriginalBytes   int
	CompressedBytes int
	Ratio           float64 // OriginalBytes / CompressedBytes
	BitRate         float64 // compressed bits per value
	NPoints         int
	Unpredictable   int // points (or coefficients) stored as literals
	Chunks          int // independently decodable container chunks
	Blocks          int // transform blocks (otc pipeline)
	Capacity        int // quantization intervals actually used
	// ValueRange is the measured value range of the compressed field.
	// Recorded so callers can convert the measured MSE into a PSNR in
	// every mode (including ModeAbs, where no relative bound exists).
	ValueRange float64
	// MSE is the exact mean squared error of the reconstruction,
	// measured during compression (Theorem 1 makes the
	// quantization-stage distortion equal the end-to-end distortion,
	// so no decompression is needed). NaN when the pipeline does not
	// measure it (Codec.MeasuresMSE reports false).
	MSE float64
}
