package codec

import (
	"fmt"
	"math"

	"fixedpsnr/internal/kernels"
	"fixedpsnr/internal/parallel"
)

// MinChunkPoints is the smallest chunk worth paying a Huffman table and a
// chunk-table entry for. Options.ChunkPoints below this floor are
// rejected by validation: each chunk carries its own entropy tables
// (sized by Capacity — roughly 17 bytes per quantization interval during
// construction), so tiny chunks make the fixed per-chunk overhead
// dominate the payload.
const MinChunkPoints = 1 << 14

// DefaultChunkPoints is the chunk size the streaming encoder uses when
// Options.ChunkPoints is zero: big enough that per-chunk overhead is
// negligible, small enough that a bounded window of in-flight chunks
// keeps encoder memory in the tens of megabytes.
const DefaultChunkPoints = 1 << 18

// ChunkSpans partitions dims[0] into the row spans the chunked container
// tiles the field with, honoring (in priority order) an explicit
// ChunkRows, a target ChunkPoints, or — when neither is set — a spread
// over the worker count, which preserves the pre-chunking parallel slab
// behavior for in-memory encodes.
func ChunkSpans(dims []int, opt Options) [][2]int {
	rows := dims[0]
	if opt.ChunkRows > 0 {
		return parallel.Chunks(rows, opt.ChunkRows)
	}
	if opt.ChunkPoints > 0 {
		return parallel.Chunks(rows, RowsForChunkPoints(dims, opt.ChunkPoints))
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers <= 1 || rows == 1 {
		return [][2]int{{0, rows}}
	}
	n := workers
	if n > rows {
		n = rows
	}
	out := make([][2]int, 0, n)
	for w := 0; w < n; w++ {
		lo, hi := parallel.Partition(rows, n, w)
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// RowsForChunkPoints converts a target chunk size in points into a row
// count along dims[0] (at least 1, at most dims[0]).
func RowsForChunkPoints(dims []int, chunkPoints int) int {
	inner := 1
	for _, d := range dims[1:] {
		inner *= d
	}
	rows := (chunkPoints + inner - 1) / inner
	if rows < 1 {
		rows = 1
	}
	if rows > dims[0] {
		rows = dims[0]
	}
	return rows
}

// ChunkPlanner is the optional interface of a ChunkCodec whose tiling
// deviates from the generic ChunkSpans — otc rounds ChunkPoints-derived
// chunk heights to its transform block edge so chunk boundaries do not
// shear blocks. Container-assembling callers (the streaming encoder)
// must use the codec's planner when it has one, so the same options
// produce the same tiling on every encode path.
type ChunkPlanner interface {
	ChunkSpans(dims []int, opt Options) [][2]int
}

// PlanChunkSpans tiles dims[0] for the given codec: its own ChunkSpans
// when it plans its tiling, the generic partition otherwise.
func PlanChunkSpans(c Codec, dims []int, opt Options) [][2]int {
	if p, ok := c.(ChunkPlanner); ok {
		return p.ChunkSpans(dims, opt)
	}
	return ChunkSpans(dims, opt)
}

// ValueBounds scans a chunk's min and max, skipping NaNs (NaN/NaN when
// every value is NaN) — the per-chunk value range recorded in the chunk
// table. The scan is the runtime-dispatched kernels.MinMax, which
// relies on NaN comparisons being false instead of testing for NaN.
func ValueBounds(data []float64) (min, max float64) {
	min, max = kernels.MinMax(data)
	if min > max { // all NaN or empty
		return math.NaN(), math.NaN()
	}
	return min, max
}

// ChunkStats is the per-chunk outcome a ChunkCodec reports from
// CompressChunk; AssembleStream records it in the chunk table.
type ChunkStats struct {
	// Unpredictable counts points (or coefficients) stored as literals.
	Unpredictable int
	// MSE is the chunk's exact reconstruction MSE (NaN when the
	// pipeline does not measure it).
	MSE float64
	// Min and Max are the chunk's value range.
	Min, Max float64
}

// AssembleStream finalizes a chunked stream: it lays the payloads out
// back to back, fills each chunk's Off/Len/RowStart, and returns the
// marshaled header followed by the payloads. h.Chunks must already hold
// Rows and the per-chunk statistics, one entry per payload.
func AssembleStream(h *Header, payloads [][]byte) ([]byte, error) {
	if len(payloads) != len(h.Chunks) {
		return nil, fmt.Errorf("codec: %d payloads for %d chunk entries", len(payloads), len(h.Chunks))
	}
	off := 0
	rowStart := 0
	total := 0
	for i, p := range payloads {
		c := &h.Chunks[i]
		c.Off = off
		c.Len = len(p)
		c.RowStart = rowStart
		off += len(p)
		rowStart += c.Rows
		total += len(p)
	}
	if len(h.Dims) > 0 && rowStart != h.Dims[0] {
		return nil, fmt.Errorf("codec: chunk rows sum to %d, want %d", rowStart, h.Dims[0])
	}
	head := h.Marshal()
	out := make([]byte, 0, len(head)+total)
	out = append(out, head...)
	for _, p := range payloads {
		out = append(out, p...)
	}
	h.headerLen = len(head)
	return out, nil
}

// ChunkPayload slices chunk ci's payload out of a full stream.
func ChunkPayload(data []byte, h *Header, ci int) ([]byte, error) {
	c := h.Chunks[ci]
	lo := h.PayloadOffset() + c.Off
	hi := lo + c.Len
	if lo < 0 || hi > len(data) {
		return nil, fmt.Errorf("codec: chunk %d payload [%d,%d) outside stream of %d bytes", ci, lo, hi, len(data))
	}
	return data[lo:hi:hi], nil
}

// StatsFromChunks rebuilds the aggregate Stats report from a finished
// chunked stream: compressed sizes from the stream, distortion from the
// point-count-weighted chunk MSEs, and value range from the chunk
// min/max. originalBytes is the field's nominal storage footprint.
func StatsFromChunks(h *Header, streamLen, originalBytes int) *Stats {
	st := &Stats{
		OriginalBytes:   originalBytes,
		CompressedBytes: streamLen,
		NPoints:         h.NPoints(),
		Chunks:          len(h.Chunks),
		Capacity:        h.Capacity,
		MSE:             h.AggregateMSE(),
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, c := range h.Chunks {
		st.Unpredictable += c.Unpredictable
		if c.Min < min {
			min = c.Min
		}
		if c.Max > max {
			max = c.Max
		}
	}
	if min <= max {
		st.ValueRange = max - min
	} else {
		st.ValueRange = math.NaN()
	}
	if streamLen > 0 && st.NPoints > 0 {
		st.Ratio = float64(originalBytes) / float64(streamLen)
		st.BitRate = 8 * float64(streamLen) / float64(st.NPoints)
	}
	return st
}
