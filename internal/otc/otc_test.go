package otc

import (
	"math"
	"math/rand"
	"testing"

	"fixedpsnr/internal/core"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/stats"
	"fixedpsnr/internal/sz"
)

func smoothField(name string, noise float64, dims ...int) *field.Field {
	f := field.New(name, field.Float64, dims...)
	rng := rand.New(rand.NewSource(int64(f.Len())))
	switch len(dims) {
	case 1:
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i)/15) + noise*rng.NormFloat64()
		}
	case 2:
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				f.Set2(i, j, math.Sin(float64(i)/10)*math.Cos(float64(j)/13)+noise*rng.NormFloat64())
			}
		}
	case 3:
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				for k := 0; k < dims[2]; k++ {
					f.Set3(i, j, k, math.Sin(float64(i)/4)*math.Cos(float64(j)/6)*math.Sin(float64(k)/5)+noise*rng.NormFloat64())
				}
			}
		}
	}
	return f
}

func TestBlockGridCoversField(t *testing.T) {
	for _, dims := range [][]int{{17}, {10, 13}, {5, 9, 12}} {
		blocks := blockGrid(dims, 4)
		covered := make(map[int]int)
		inner := func(br blockRange) {
			// Enumerate all flat indices in the block.
			switch len(dims) {
			case 1:
				for i := 0; i < br.size[0]; i++ {
					covered[br.off[0]+i]++
				}
			case 2:
				for i := 0; i < br.size[0]; i++ {
					for j := 0; j < br.size[1]; j++ {
						covered[(br.off[0]+i)*dims[1]+br.off[1]+j]++
					}
				}
			case 3:
				for i := 0; i < br.size[0]; i++ {
					for j := 0; j < br.size[1]; j++ {
						for k := 0; k < br.size[2]; k++ {
							covered[((br.off[0]+i)*dims[1]+br.off[1]+j)*dims[2]+br.off[2]+k]++
						}
					}
				}
			}
		}
		total := 1
		for _, d := range dims {
			total *= d
		}
		for _, br := range blocks {
			inner(br)
		}
		if len(covered) != total {
			t.Fatalf("dims %v: covered %d of %d points", dims, len(covered), total)
		}
		for idx, c := range covered {
			if c != 1 {
				t.Fatalf("dims %v: point %d covered %d times", dims, idx, c)
			}
		}
	}
}

func TestGatherScatterInverse(t *testing.T) {
	dims := []int{6, 7, 8}
	src := make([]float64, 6*7*8)
	for i := range src {
		src[i] = float64(i)
	}
	dst := make([]float64, len(src))
	for _, br := range blockGrid(dims, 4) {
		buf := make([]float64, br.n)
		gatherBlock(src, dims, br, buf)
		scatterBlock(dst, dims, br, buf)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("gather/scatter mismatch at %d", i)
		}
	}
}

func TestForwardInverseBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tr := range []Transform{TransformDCT, TransformHaar} {
		for _, sizes := range [][]int{{5}, {4, 4}, {3, 5}, {4, 4, 4}, {2, 3, 5}, {8, 8}} {
			n := 1
			for _, s := range sizes {
				n *= s
			}
			buf := make([]float64, n)
			orig := make([]float64, n)
			for i := range buf {
				buf[i] = rng.NormFloat64()
				orig[i] = buf[i]
			}
			if err := forwardBlock(buf, sizes, tr); err != nil {
				t.Fatal(err)
			}
			// Parseval inside the block — Theorem 2's hypothesis holds
			// for both transform families.
			var e0, e1 float64
			for i := range buf {
				e0 += orig[i] * orig[i]
				e1 += buf[i] * buf[i]
			}
			if math.Abs(e0-e1) > 1e-10*(1+e0) {
				t.Fatalf("%v sizes %v: block Parseval violated (%g vs %g)", tr, sizes, e0, e1)
			}
			if err := inverseBlock(buf, sizes, tr); err != nil {
				t.Fatal(err)
			}
			for i := range buf {
				if math.Abs(buf[i]-orig[i]) > 1e-12 {
					t.Fatalf("%v sizes %v: round-trip diff at %d", tr, sizes, i)
				}
			}
		}
	}
}

func roundTrip(t *testing.T, f *field.Field, opt Options) (*field.Field, *Stats) {
	t.Helper()
	blob, st, err := Compress(f, opt)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	g, h, err := Decompress(blob)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if h.Name != f.Name || !f.SameShape(g) {
		t.Fatalf("metadata mismatch")
	}
	return g, st
}

func TestRoundTrip2D(t *testing.T) {
	f := smoothField("otc2", 0.01, 40, 50)
	g, st := roundTrip(t, f, Options{ErrorBound: 5e-4, Workers: 1})
	d := stats.Compare(f.Data, g.Data)
	if d.MaxErr > 1 {
		t.Fatalf("wild reconstruction error %g", d.MaxErr)
	}
	if st.Blocks == 0 || st.Ratio <= 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRoundTrip1D3D(t *testing.T) {
	for _, dims := range [][]int{{333}, {9, 20, 17}} {
		f := smoothField("otcn", 0.01, dims...)
		g, _ := roundTrip(t, f, Options{ErrorBound: 5e-4, Workers: 2})
		d := stats.Compare(f.Data, g.Data)
		if d.PSNR < 40 {
			t.Fatalf("dims %v: PSNR %g too low", dims, d.PSNR)
		}
	}
}

// Theorem 2 in action: for the orthonormal-transform pipeline, the
// end-to-end MSE equals the coefficient-domain quantization MSE, so the
// Eq. 6 estimate (with δ on coefficients) predicts the data-domain PSNR.
func TestTheorem2FixedPSNR(t *testing.T) {
	f := smoothField("thm2", 0.05, 64, 64)
	_, _, vr := f.ValueRange()
	for _, target := range []float64{50, 70, 90} {
		delta := core.DeltaForPSNR(target, vr)
		g, _ := roundTrip(t, f, Options{ErrorBound: delta / 2, Workers: 1})
		d := stats.Compare(f.Data, g.Data)
		// The uniform-within-bin assumption makes the estimate
		// conservative; actual PSNR must be ≥ target − 1 dB and within
		// a few dB above it for mid/high targets.
		if d.PSNR < target-1 {
			t.Fatalf("target %g: actual %g fell below", target, d.PSNR)
		}
		if d.PSNR > target+15 {
			t.Fatalf("target %g: actual %g suspiciously high (estimator broken?)", target, d.PSNR)
		}
	}
}

func TestConstantField(t *testing.T) {
	f := field.New("const", field.Float32, 8, 8)
	for i := range f.Data {
		f.Data[i] = -2.5
	}
	g, _ := roundTrip(t, f, Options{Workers: 1})
	for i := range g.Data {
		if g.Data[i] != -2.5 {
			t.Fatal("constant reconstruction broke")
		}
	}
}

func TestInvalidDelta(t *testing.T) {
	f := smoothField("bad", 0.01, 16, 16)
	for _, delta := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, _, err := Compress(f, Options{ErrorBound: delta}); err == nil {
			t.Fatalf("expected error for delta %g", delta)
		}
	}
}

func TestDecompressRejectsWrongCodec(t *testing.T) {
	f := smoothField("szstream", 0.01, 16, 16)
	blob, _, err := sz.Compress(f, sz.Options{ErrorBound: 1e-3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(blob); err == nil {
		t.Fatal("expected error decoding an SZ stream with otc")
	}
}

func TestHeaderCodecIsOTC(t *testing.T) {
	f := smoothField("hdr", 0.01, 16, 16)
	blob, _, err := Compress(f, Options{ErrorBound: 5e-4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sz.ParseHeader(blob)
	if err != nil {
		t.Fatal(err)
	}
	if h.Codec != sz.CodecOTC {
		t.Fatalf("codec = %v", h.Codec)
	}
}

func TestLiteralCoefficientsPreserved(t *testing.T) {
	// Huge DC coefficients with a tiny capacity force literals.
	f := smoothField("lit", 0.01, 32, 32)
	for i := range f.Data {
		f.Data[i] += 1e6
	}
	g, st := roundTrip(t, f, Options{ErrorBound: 5e-5, Capacity: 4, Workers: 1})
	if st.Unpredictable == 0 {
		t.Fatal("expected literal coefficients")
	}
	d := stats.Compare(f.Data, g.Data)
	if d.PSNR < 40 {
		t.Fatalf("PSNR %g with literals", d.PSNR)
	}
}

func TestBlockSizeOption(t *testing.T) {
	f := smoothField("bs", 0.01, 30, 30)
	for _, bs := range []int{2, 4, 8, 16} {
		g, _ := roundTrip(t, f, Options{ErrorBound: 5e-4, BlockSize: bs, Workers: 1})
		d := stats.Compare(f.Data, g.Data)
		if d.PSNR < 40 {
			t.Fatalf("block size %d: PSNR %g", bs, d.PSNR)
		}
	}
}

func TestHaarPipelineRoundTrip(t *testing.T) {
	f := smoothField("haar", 0.02, 48, 56)
	g, st := roundTrip(t, f, Options{ErrorBound: 5e-4, Transform: TransformHaar, Workers: 1})
	d := stats.Compare(f.Data, g.Data)
	if d.PSNR < 40 {
		t.Fatalf("Haar pipeline PSNR %g", d.PSNR)
	}
	if st.Ratio <= 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHaarPipelineFixedPSNR(t *testing.T) {
	f := smoothField("haarpsnr", 0.05, 64, 64)
	_, _, vr := f.ValueRange()
	for _, target := range []float64{50, 80} {
		delta := core.DeltaForPSNR(target, vr)
		g, _ := roundTrip(t, f, Options{ErrorBound: delta / 2, Transform: TransformHaar, Workers: 1})
		d := stats.Compare(f.Data, g.Data)
		if d.PSNR < target-1 {
			t.Fatalf("target %g: Haar actual %g fell below", target, d.PSNR)
		}
	}
}

func TestTransformString(t *testing.T) {
	if TransformDCT.String() != "dct" || TransformHaar.String() != "haar" {
		t.Fatal("transform names wrong")
	}
	if Transform(9).String() == "" {
		t.Fatal("unknown transform should render")
	}
}
