// Package otc implements an orthogonal-transform compressor: a blockwise
// orthonormal DCT-II front end (in the spirit of ZFP's custom transform
// and SSEM's wavelets) followed by the same uniform quantization + Huffman
// + DEFLATE back end as the SZ pipeline.
//
// Its purpose in this module is twofold:
//
//   - it is the second compressor family the paper covers — Theorem 2
//     states that for orthonormal transforms the quantization-stage
//     distortion equals the reconstruction distortion, so the same Eq. 6
//     drives a fixed-PSNR mode here, with the quantization bin width
//     δ = vr·√12·10^(−PSNR/20) applied to transform coefficients; and
//   - it serves as an independent check that the fixed-PSNR analysis is
//     not an artifact of the Lorenzo predictor.
//
// Unlike the SZ pipeline, quantizing in the transform domain does not
// bound the pointwise error — only the l2 distortion is controlled, which
// is exactly the fixed-PSNR use case.
//
// Blocks are cut to the field boundary (a partial block of size r uses an
// orthonormal DCT of size r), so the whole transform stays exactly
// orthonormal without padding.
package otc

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
	"fixedpsnr/internal/huffman"
	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/quantizer"
	"fixedpsnr/internal/transform"
)

// DefaultBlockSize is the default transform block edge length.
const DefaultBlockSize = 8

// otcCodec publishes this pipeline in the codec registry. It owns the
// orthogonal-transform stream ID; constant streams it emits carry
// codec.IDConstant and route to the sz pipeline's decoder.
type otcCodec struct{}

func (otcCodec) Name() string { return "otc" }

func (otcCodec) IDs() []codec.ID { return []codec.ID{codec.IDOTC} }

// MeasuresMSE is false: quantization happens in the transform domain and
// the pipeline does not track the data-domain distortion exactly.
func (otcCodec) MeasuresMSE() bool { return false }

func (otcCodec) Compress(ctx context.Context, f *field.Field, opt codec.Options, sc *codec.Scratch) ([]byte, *codec.Stats, error) {
	return CompressCtx(ctx, f, opt, sc)
}

func (otcCodec) Decompress(data []byte) (*field.Field, *codec.Header, error) {
	return Decompress(data)
}

// DecompressScratch implements codec.ScratchDecompressor.
func (otcCodec) DecompressScratch(data []byte, sc *codec.Scratch) (*field.Field, *codec.Header, error) {
	return DecompressScratch(data, sc)
}

// CompressChunk implements codec.ChunkCodec: one row slab through the
// blockwise transform pipeline. Blocks are cut to the chunk boundary, so
// every chunk is independently decodable.
func (otcCodec) CompressChunk(ctx context.Context, data []float64, dims []int, prec field.Precision, opt codec.Options, sc *codec.Scratch) ([]byte, codec.ChunkStats, error) {
	copt := opt
	if copt.Capacity == 0 {
		copt.Capacity = quantizer.DefaultCapacity
	}
	if !(copt.ErrorBound > 0) || math.IsInf(copt.ErrorBound, 0) || math.IsNaN(copt.ErrorBound) {
		return nil, codec.ChunkStats{}, fmt.Errorf("otc: error bound (half bin width) must be positive and finite, got %g", copt.ErrorBound)
	}
	q, err := quantizer.New(copt.ErrorBound, copt.Capacity)
	if err != nil {
		return nil, codec.ChunkStats{}, err
	}
	return compressChunk(ctx, data, dims, copt, q, sc)
}

// DecompressChunk implements codec.ChunkCodec for OTC streams.
func (otcCodec) DecompressChunk(payload []byte, h *codec.Header, ci int, dst []float64, sc *codec.Scratch) error {
	if h.Codec != codec.IDOTC {
		return codec.ErrNotChunked
	}
	if len(dst) != h.ChunkPoints(ci) {
		return fmt.Errorf("otc: chunk %d dst has %d points, want %d", ci, len(dst), h.ChunkPoints(ci))
	}
	return decompressChunk(payload, h, ci, dst, sc)
}

func init() { codec.Register(otcCodec{}) }

// Transform selects the orthonormal block transform (shared type; see
// codec.Transform). Blocks whose edge is not a power of two fall back to
// the DCT of the exact size under TransformHaar, so the whole transform
// stays orthonormal without padding.
type Transform = codec.Transform

// Transforms.
const (
	// TransformDCT is the orthonormal DCT-II (ZFP-flavored).
	TransformDCT = codec.TransformDCT
	// TransformHaar is the full multi-level orthonormal Haar DWT
	// (SSEM-flavored).
	TransformHaar = codec.TransformHaar
)

// Options is the unified codec configuration (see codec.Options). The
// transform pipeline reads ErrorBound (half the coefficient bin width:
// δ = 2·ErrorBound), Transform, BlockSize, Capacity, Workers, Level, and
// the header annotations; AutoCapacity and ChunkRows are ignored.
type Options = codec.Options

// blockEdge resolves the block-size default.
func blockEdge(o Options) int {
	if o.BlockSize <= 0 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

// Stats is the unified compression outcome report (see codec.Stats).
// This pipeline does not measure its exact MSE, so Stats.MSE is NaN.
type Stats = codec.Stats

// dctCache shares DCT basis matrices across blocks and calls.
var dctCache sync.Map // int → *transform.DCT

func dctFor(n int) (*transform.DCT, error) {
	if v, ok := dctCache.Load(n); ok {
		return v.(*transform.DCT), nil
	}
	d, err := transform.NewDCT(n)
	if err != nil {
		return nil, err
	}
	actual, _ := dctCache.LoadOrStore(n, d)
	return actual.(*transform.DCT), nil
}

// blockRange describes one block along each axis: offsets and sizes.
type blockRange struct {
	off  [3]int
	size [3]int
	n    int // total points
}

// blockGrid enumerates blocks covering dims with edge length b, cutting
// partial blocks at the boundary.
func blockGrid(dims []int, b int) []blockRange {
	steps := make([][]blockRange, len(dims))
	for a, d := range dims {
		for lo := 0; lo < d; lo += b {
			hi := lo + b
			if hi > d {
				hi = d
			}
			var r blockRange
			r.off[a] = lo
			r.size[a] = hi - lo
			steps[a] = append(steps[a], r)
		}
	}
	// Cartesian product across axes.
	blocks := []blockRange{{size: [3]int{1, 1, 1}, n: 1}}
	for a := range dims {
		var next []blockRange
		for _, base := range blocks {
			for _, s := range steps[a] {
				nb := base
				nb.off[a] = s.off[a]
				nb.size[a] = s.size[a]
				next = append(next, nb)
			}
		}
		blocks = next
	}
	for i := range blocks {
		n := 1
		for a := 0; a < len(dims); a++ {
			n *= blocks[i].size[a]
		}
		blocks[i].n = n
	}
	return blocks
}

// gatherBlock copies a block into buf (row-major within the block).
func gatherBlock(data []float64, dims []int, br blockRange, buf []float64) {
	switch len(dims) {
	case 1:
		copy(buf, data[br.off[0]:br.off[0]+br.size[0]])
	case 2:
		cols := dims[1]
		idx := 0
		for i := 0; i < br.size[0]; i++ {
			src := (br.off[0]+i)*cols + br.off[1]
			copy(buf[idx:idx+br.size[1]], data[src:src+br.size[1]])
			idx += br.size[1]
		}
	case 3:
		d1, d2 := dims[1], dims[2]
		plane := d1 * d2
		idx := 0
		for i := 0; i < br.size[0]; i++ {
			for j := 0; j < br.size[1]; j++ {
				src := (br.off[0]+i)*plane + (br.off[1]+j)*d2 + br.off[2]
				copy(buf[idx:idx+br.size[2]], data[src:src+br.size[2]])
				idx += br.size[2]
			}
		}
	}
}

// scatterBlock writes a block buffer back into the field array.
func scatterBlock(data []float64, dims []int, br blockRange, buf []float64) {
	switch len(dims) {
	case 1:
		copy(data[br.off[0]:br.off[0]+br.size[0]], buf)
	case 2:
		cols := dims[1]
		idx := 0
		for i := 0; i < br.size[0]; i++ {
			dst := (br.off[0]+i)*cols + br.off[1]
			copy(data[dst:dst+br.size[1]], buf[idx:idx+br.size[1]])
			idx += br.size[1]
		}
	case 3:
		d1, d2 := dims[1], dims[2]
		plane := d1 * d2
		idx := 0
		for i := 0; i < br.size[0]; i++ {
			for j := 0; j < br.size[1]; j++ {
				dst := (br.off[0]+i)*plane + (br.off[1]+j)*d2 + br.off[2]
				copy(data[dst:dst+br.size[2]], buf[idx:idx+br.size[2]])
				idx += br.size[2]
			}
		}
	}
}

// forwardBlock applies the separable orthonormal block transform in place
// over a block buffer with the given per-axis sizes (rank = len(sizes)).
func forwardBlock(buf []float64, sizes []int, tr Transform) error {
	return applyBlock(buf, sizes, tr, false)
}

// inverseBlock inverts forwardBlock.
func inverseBlock(buf []float64, sizes []int, tr Transform) error {
	return applyBlock(buf, sizes, tr, true)
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2int(n int) int {
	l := 0
	for m := n; m > 1; m >>= 1 {
		l++
	}
	return l
}

func applyBlock(buf []float64, sizes []int, tr Transform, inverse bool) error {
	rank := len(sizes)
	// Strides for row-major layout of the block.
	strides := make([]int, rank)
	s := 1
	for a := rank - 1; a >= 0; a-- {
		strides[a] = s
		s *= sizes[a]
	}
	total := s
	line := make([]float64, 0, 64)
	out := make([]float64, 0, 64)
	for a := 0; a < rank; a++ {
		L := sizes[a]
		if L == 1 {
			continue
		}
		// Haar requires power-of-two lengths; other lengths keep the
		// exact-size DCT so the block transform remains orthonormal.
		useHaar := tr == TransformHaar && isPow2(L)
		var d *transform.DCT
		if !useHaar {
			var err error
			d, err = dctFor(L)
			if err != nil {
				return err
			}
		}
		line = line[:L]
		out = out[:L]
		stride := strides[a]
		nlines := total / L
		for ln := 0; ln < nlines; ln++ {
			// Decompose the line index into coordinates of the other
			// axes to find the base offset.
			base := 0
			rem := ln
			for x := rank - 1; x >= 0; x-- {
				if x == a {
					continue
				}
				c := rem % sizes[x]
				rem /= sizes[x]
				base += c * strides[x]
			}
			if stride == 1 {
				copy(line, buf[base:base+L])
			} else {
				idx := base
				for k := range line {
					line[k] = buf[idx]
					idx += stride
				}
			}
			if useHaar {
				levels := log2int(L)
				var err error
				if inverse {
					err = transform.HaarInverse(line, levels)
				} else {
					err = transform.HaarForward(line, levels)
				}
				if err != nil {
					return err
				}
				copy(out, line)
			} else if inverse {
				d.Inverse(out, line)
			} else {
				d.Forward(out, line)
			}
			if stride == 1 {
				copy(buf[base:base+L], out)
			} else {
				idx := base
				for k := range out {
					buf[idx] = out[k]
					idx += stride
				}
			}
		}
	}
	return nil
}

// Compress compresses the field by blockwise orthonormal DCT and uniform
// coefficient quantization with bin width opt.Delta.
func Compress(f *field.Field, opt Options) ([]byte, *Stats, error) {
	return CompressCtx(context.Background(), f, opt, nil)
}

// CompressCtx is Compress with cancellation and buffer reuse: workers
// check ctx between transform blocks (a cancelled context aborts within
// one block of work per worker and surfaces ctx.Err()), and the block
// gather buffers plus the entropy-stage staging buffers and DEFLATE
// writer come from sc when it is non-nil.
//
// When Options.ChunkPoints or ChunkRows is set the field is tiled into
// independently decodable chunks along the slowest dimension (blocks are
// cut at chunk boundaries, preserving orthonormality), enabling
// random-access region decodes of transform streams; the default keeps
// one chunk covering the whole field, which matches the historical block
// layout exactly.
func CompressCtx(ctx context.Context, f *field.Field, opt Options, sc *codec.Scratch) ([]byte, *Stats, error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	// Trust the value range the public layer already measured (see the
	// matching comment in sz.CompressCtx); rescan only when absent.
	vr := opt.ValueRange
	if vr == 0 {
		_, _, vr = f.ValueRange()
		opt.ValueRange = vr
	}
	if vr == 0 {
		return compressConstant(f, opt)
	}
	if !(opt.ErrorBound > 0) || math.IsInf(opt.ErrorBound, 0) || math.IsNaN(opt.ErrorBound) {
		return nil, nil, fmt.Errorf("otc: error bound (half bin width) must be positive and finite, got %g", opt.ErrorBound)
	}
	capacity := opt.Capacity
	if capacity == 0 {
		capacity = quantizer.DefaultCapacity
	}
	copt := opt
	copt.Capacity = capacity
	// quantizer.New takes the half-width (error bound) convention;
	// the coefficient bin width is δ = 2·ErrorBound.
	q, err := quantizer.New(opt.ErrorBound, capacity)
	if err != nil {
		return nil, nil, err
	}

	spans := chunkSpans(f.Dims, opt)
	inner := 1
	for _, d := range f.Dims[1:] {
		inner *= d
	}
	payloads := make([][]byte, len(spans))
	chunks := make([]codec.ChunkInfo, len(spans))
	totalBlocks := 0
	// Chunks run serially; the block loop inside each chunk is parallel,
	// so the default single-chunk layout keeps its full concurrency.
	for c, span := range spans {
		lo, hi := span[0], span[1]
		sub := f.Data[lo*inner : hi*inner]
		subDims := append([]int{hi - lo}, f.Dims[1:]...)
		payload, cst, err := compressChunk(ctx, sub, subDims, copt, q, sc)
		if err != nil {
			return nil, nil, err
		}
		payloads[c] = payload
		chunks[c] = codec.ChunkInfo{
			Rows:          hi - lo,
			Unpredictable: cst.Unpredictable,
			MSE:           cst.MSE,
			Min:           cst.Min,
			Max:           cst.Max,
		}
		totalBlocks += len(blockGrid(subDims, blockEdge(opt)))
	}

	h := &codec.Header{
		Codec:      codec.IDOTC,
		Precision:  f.Precision,
		Mode:       opt.Mode,
		Name:       f.Name,
		Dims:       f.Dims,
		EbAbs:      opt.ErrorBound,
		TargetPSNR: opt.TargetPSNR,
		ValueRange: opt.ValueRange,
		Capacity:   capacity,
		Chunks:     chunks,
	}
	if h.TargetPSNR == 0 && opt.Mode != codec.ModePSNR {
		h.TargetPSNR = math.NaN()
	}
	out, err := codec.AssembleStream(h, payloads)
	if err != nil {
		return nil, nil, err
	}
	st := codec.StatsFromChunks(h, len(out), f.SizeBytes())
	st.ValueRange = vr
	st.Blocks = totalBlocks
	st.MSE = math.NaN() // not measured by this pipeline
	return out, st, nil
}

// ChunkSpans implements codec.ChunkPlanner, so every container
// assembler (CompressCtx here, the public streaming encoder) tiles
// identically for the same options.
func (otcCodec) ChunkSpans(dims []int, opt codec.Options) [][2]int {
	return chunkSpans(dims, opt)
}

// chunkSpans tiles dims[0] for this pipeline: a single whole-field chunk
// by default, explicit ChunkRows verbatim, and ChunkPoints rounded up to
// a multiple of the block edge so chunk boundaries do not shear
// transform blocks.
func chunkSpans(dims []int, opt Options) [][2]int {
	if opt.ChunkRows > 0 {
		return parallel.Chunks(dims[0], opt.ChunkRows)
	}
	if opt.ChunkPoints <= 0 {
		return [][2]int{{0, dims[0]}}
	}
	rows := codec.RowsForChunkPoints(dims, opt.ChunkPoints)
	b := blockEdge(opt)
	if rem := rows % b; rem != 0 && rows+b-rem <= dims[0] {
		rows += b - rem
	}
	return parallel.Chunks(dims[0], rows)
}

// compressChunk transforms, quantizes, and entropy-codes one row slab.
// Blocks within the chunk run in parallel under opt.Workers.
func compressChunk(ctx context.Context, data []float64, dims []int, opt Options, q *quantizer.Quantizer, sc *codec.Scratch) ([]byte, codec.ChunkStats, error) {
	var cst codec.ChunkStats
	blocks := blockGrid(dims, blockEdge(opt))
	type blockOut struct {
		codes    []int32
		literals []float64
	}
	outs := make([]blockOut, len(blocks))
	err := parallel.ForEachWorkerCtx(ctx, len(blocks), opt.Workers, func(w, bi int) error {
		br := blocks[bi]
		sc := sc.Shard(w)
		buf := sc.Floats(br.n)
		gatherBlock(data, dims, br, buf)
		sizes := br.size[:len(dims)]
		if err := forwardBlock(buf, sizes, opt.Transform); err != nil {
			sc.PutFloats(buf)
			return err
		}
		codes := make([]int32, len(buf))
		var literals []float64
		for i, c := range buf {
			code, ok := q.Quantize(c)
			if !ok {
				literals = append(literals, c)
				codes[i] = 0
				continue
			}
			codes[i] = int32(code)
		}
		sc.PutFloats(buf)
		outs[bi] = blockOut{codes: codes, literals: literals}
		return nil
	})
	if err != nil {
		return nil, cst, err
	}

	var codes []int32
	var literals []float64
	for _, o := range outs {
		codes = append(codes, o.codes...)
		literals = append(literals, o.literals...)
	}
	payload, err := encodePayload(codes, literals, blockEdge(opt), opt.Transform, opt.Level, sc)
	if err != nil {
		return nil, cst, err
	}
	cst.Unpredictable = len(literals)
	cst.MSE = math.NaN() // quantization happens in the transform domain
	cst.Min, cst.Max = codec.ValueBounds(data)
	return payload, cst, nil
}

func compressConstant(f *field.Field, opt Options) ([]byte, *Stats, error) {
	h := &codec.Header{
		Codec:      codec.IDConstant,
		Precision:  f.Precision,
		Mode:       opt.Mode,
		Name:       f.Name,
		Dims:       f.Dims,
		ConstValue: f.Data[0],
	}
	out := h.Marshal()
	st := &Stats{
		OriginalBytes:   f.SizeBytes(),
		CompressedBytes: len(out),
		Ratio:           float64(f.SizeBytes()) / float64(len(out)),
		BitRate:         8 * float64(len(out)) / float64(f.Len()),
		NPoints:         f.Len(),
		Blocks:          1,
	}
	return out, st, nil
}

// Decompress reconstructs a field from an OTC stream. It accepts constant
// streams as well so callers can route by magic alone.
func Decompress(data []byte) (*field.Field, *codec.Header, error) {
	return DecompressScratch(data, nil)
}

// DecompressScratch is Decompress drawing transient decode buffers — the
// inflate window, code and literal slices, Huffman decode tables, and
// per-block coefficient buffers — from sc, so session callers reuse
// allocations across streams. A nil sc allocates fresh; the
// reconstruction is identical either way.
func DecompressScratch(data []byte, sc *codec.Scratch) (*field.Field, *codec.Header, error) {
	h, err := codec.ParseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	if h.Codec == codec.IDConstant {
		out := field.New(h.Name, h.Precision, h.Dims...)
		for i := range out.Data {
			out.Data[i] = h.ConstValue
		}
		return out, h, nil
	}
	if h.Codec != codec.IDOTC {
		return nil, nil, fmt.Errorf("otc: stream has codec %v, not %v", h.Codec, codec.IDOTC)
	}
	out := field.New(h.Name, h.Precision, h.Dims...)
	inner := h.InnerPoints()
	for ci := range h.Chunks {
		payload, err := codec.ChunkPayload(data, h, ci)
		if err != nil {
			return nil, nil, err
		}
		lo := h.Chunks[ci].RowStart
		hi := lo + h.Chunks[ci].Rows
		if err := decompressChunk(payload, h, ci, out.Data[lo*inner:hi*inner], sc); err != nil {
			return nil, nil, err
		}
	}
	return out, h, nil
}

// decompressChunk reverses compressChunk for chunk ci, reconstructing
// into dst (the chunk's points). Blocks within the chunk run in
// parallel. Transient buffers come from sc (nil = fresh allocations).
func decompressChunk(payload []byte, h *codec.Header, ci int, dst []float64, sc *codec.Scratch) error {
	codes, literals, blockSize, tr, err := decodePayload(payload, sc)
	if err != nil {
		return err
	}
	defer sc.PutInt32s(codes)
	defer sc.PutFloats(literals)
	dims := h.ChunkDims(ci)
	if len(codes) != len(dst) {
		return fmt.Errorf("otc: chunk %d has %d codes for %d points", ci, len(codes), len(dst))
	}
	q, err := quantizer.New(h.ChunkBound(ci), h.Capacity)
	if err != nil {
		return err
	}
	blocks := blockGrid(dims, blockSize)

	// Pre-compute per-block offsets into the code/literal streams. The
	// literal offsets depend on the code stream, so this pass is serial;
	// the inverse transforms then run in parallel.
	codeOff := make([]int, len(blocks)+1)
	litOff := make([]int, len(blocks)+1)
	pos := 0
	lit := 0
	for bi, br := range blocks {
		codeOff[bi] = pos
		litOff[bi] = lit
		for _, c := range codes[pos : pos+br.n] {
			if c == 0 {
				lit++
			}
		}
		pos += br.n
	}
	codeOff[len(blocks)] = pos
	litOff[len(blocks)] = lit
	if lit != len(literals) {
		return fmt.Errorf("otc: literal count mismatch (%d vs %d)", lit, len(literals))
	}

	return parallel.ForEachWorkerCtx(context.Background(), len(blocks), 0, func(w, bi int) error {
		br := blocks[bi]
		sc := sc.Shard(w)
		buf := sc.Floats(br.n)
		defer sc.PutFloats(buf)
		li := litOff[bi]
		// Range over the block's code window with buf pinned to the same
		// length so the compiler drops both bounds checks in the hot loop.
		cs := codes[codeOff[bi]:codeOff[bi+1]]
		buf = buf[:len(cs)]
		for i, c := range cs {
			if c == 0 {
				buf[i] = literals[li]
				li++
				continue
			}
			buf[i] = q.Reconstruct(int(c))
		}
		sizes := br.size[:len(dims)]
		if err := inverseBlock(buf, sizes, tr); err != nil {
			return err
		}
		scatterBlock(dst, dims, br, buf)
		return nil
	})
}

// encodePayload serializes one chunk as a versioned lanes4 payload:
//
//	[codec.PayloadMarker][codec.PayloadVersionLanes4]
//	byte(tr) uvarint(blockSize)
//	uvarint(npoints)
//	[codes flag] uvarint(codesLen) <four-lane Huffman block, raw or DEFLATE>
//	uvarint(litLen) <DEFLATE(uvarint(nlit) + float64 literals), litLen bytes>
//
// Coefficient codes go through huffman.EncodeLanes4Scratch and are
// usually stored uncompressed (Huffman output on noisy chunks is within
// ~0.1% of incompressible); smooth chunks keep the DEFLATE wrap when it
// wins meaningfully (codec.CodesDeflateWins). The literal coefficients
// (always float64) are always deflated. The staging buffers and DEFLATE
// encoder come from sc (nil = fresh allocations); the returned payload
// shares no storage with the scratch pools. level routes through
// Scratch.AppendDeflate (0 = internal back-end, nonzero = stdlib escape
// hatch).
func encodePayload(codes []int32, literals []float64, blockSize int, tr Transform, level int, sc *codec.Scratch) ([]byte, error) {
	out := sc.Bytes(len(codes)/2 + len(literals)*8 + 64)
	out = append(out, codec.PayloadMarker, codec.PayloadVersionLanes4)
	out = append(out, byte(tr))
	out = binary.AppendUvarint(out, uint64(blockSize))
	out = binary.AppendUvarint(out, uint64(len(codes)))

	block := sc.Bytes(len(codes)/2 + 64)
	hs := sc.Huffman()
	block, err := huffman.EncodeLanes4Scratch(block, codes, hs)
	sc.PutHuffman(hs)
	if err != nil {
		sc.PutBytes(block)
		sc.PutBytes(out)
		return nil, err
	}
	comp, err := sc.AppendDeflate(sc.Bytes(len(block)/2+64), block, level)
	if err != nil {
		sc.PutBytes(comp)
		sc.PutBytes(block)
		sc.PutBytes(out)
		return nil, err
	}
	if codec.CodesDeflateWins(len(block), len(comp)) {
		out = append(out, codec.PayloadCodesDeflate)
		out = binary.AppendUvarint(out, uint64(len(comp)))
		out = append(out, comp...)
	} else {
		out = append(out, codec.PayloadCodesRaw)
		out = binary.AppendUvarint(out, uint64(len(block)))
		out = append(out, block...)
	}
	sc.PutBytes(comp)
	sc.PutBytes(block)

	raw := sc.Bytes(len(literals)*8 + 16)
	raw = binary.AppendUvarint(raw, uint64(len(literals)))
	var tmp [8]byte
	for _, v := range literals {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		raw = append(raw, tmp[:]...)
	}
	stage, err := sc.AppendDeflate(sc.Bytes(len(raw)/2+64), raw, level)
	sc.PutBytes(raw)
	if err != nil {
		sc.PutBytes(stage)
		sc.PutBytes(out)
		return nil, err
	}
	out = binary.AppendUvarint(out, uint64(len(stage)))
	out = append(out, stage...)
	sc.PutBytes(stage)

	// Hand back an exact-size copy, so append growth is amortized by the
	// pool and the returned payload carries no slack capacity.
	payload := append([]byte(nil), out...)
	sc.PutBytes(out)
	return payload, nil
}

// decodePayload reverses encodePayload (and the legacy whole-payload
// DEFLATE layout, dispatched on the first byte — no DEFLATE stream can
// begin with codec.PayloadMarker). The inflate reader and staging
// buffer, the Huffman decode tables, and the returned codes and literals
// slices all come from sc (nil = fresh allocations); the caller owns the
// returned slices and should PutInts/PutFloats them when done.
func decodePayload(payload []byte, sc *codec.Scratch) (codes []int32, literals []float64, blockSize int, tr Transform, err error) {
	if len(payload) >= 2 && payload[0] == codec.PayloadMarker {
		return decodePayloadLanes4(payload, sc)
	}
	return decodePayloadLegacy(payload, sc)
}

// decodePayloadLanes4 decodes a versioned lanes4 chunk payload.
func decodePayloadLanes4(payload []byte, sc *codec.Scratch) (codes []int32, literals []float64, blockSize int, tr Transform, err error) {
	if payload[1] != codec.PayloadVersionLanes4 {
		return nil, nil, 0, 0, fmt.Errorf("otc: unsupported chunk payload version %d", payload[1])
	}
	raw := payload[2:]
	if len(raw) < 1 {
		return nil, nil, 0, 0, fmt.Errorf("otc: empty payload")
	}
	tr = Transform(raw[0])
	if tr != TransformDCT && tr != TransformHaar {
		return nil, nil, 0, 0, fmt.Errorf("otc: unknown transform %d", raw[0])
	}
	raw = raw[1:]
	bs, k := binary.Uvarint(raw)
	if k <= 0 || bs == 0 || bs > 1<<20 {
		return nil, nil, 0, 0, fmt.Errorf("otc: bad block size")
	}
	raw = raw[k:]
	npoints, k := binary.Uvarint(raw)
	if k <= 0 {
		return nil, nil, 0, 0, fmt.Errorf("otc: truncated point count")
	}
	raw = raw[k:]
	if len(raw) < 1 {
		return nil, nil, 0, 0, fmt.Errorf("otc: truncated codes section")
	}
	codesEnc := raw[0]
	raw = raw[1:]
	codesLen, k := binary.Uvarint(raw)
	if k <= 0 {
		return nil, nil, 0, 0, fmt.Errorf("otc: truncated codes section length")
	}
	raw = raw[k:]
	if codesLen > uint64(len(raw)) {
		return nil, nil, 0, 0, fmt.Errorf("otc: codes section shorter than declared (%d < %d)", len(raw), codesLen)
	}
	block := raw[:codesLen]
	raw = raw[codesLen:]
	switch codesEnc {
	case codec.PayloadCodesRaw:
		// block is the lanes4 bitstream as stored — the fast path.
	case codec.PayloadCodesDeflate:
		fr := sc.FlateReader(bytes.NewReader(block))
		cbuf := sc.Buffer()
		defer sc.PutBuffer(cbuf)
		if _, err := cbuf.ReadFrom(fr); err != nil {
			fr.Close()
			sc.PutFlateReader(fr)
			return nil, nil, 0, 0, fmt.Errorf("otc: inflate: %w", err)
		}
		if err := fr.Close(); err != nil {
			sc.PutFlateReader(fr)
			return nil, nil, 0, 0, err
		}
		sc.PutFlateReader(fr)
		block = cbuf.Bytes()
	default:
		return nil, nil, 0, 0, fmt.Errorf("otc: unknown codes encoding %d", codesEnc)
	}
	if npoints > uint64(len(block))*8 {
		// Every code costs at least one bit in its lane; reject a corrupt
		// count before sizing the code buffer from it, against the
		// materialized (post-inflate) block.
		return nil, nil, 0, 0, fmt.Errorf("otc: %d codes cannot fit in %d codes-section bytes", npoints, len(block))
	}
	hd := sc.HuffDecode()
	codes, _, err = huffman.DecodeLanes4Into(sc.Int32s(int(npoints))[:0], block, hd)
	sc.PutHuffDecode(hd)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if uint64(len(codes)) != npoints {
		sc.PutInt32s(codes)
		return nil, nil, 0, 0, fmt.Errorf("otc: decoded %d codes, want %d", len(codes), npoints)
	}
	litLen, k := binary.Uvarint(raw)
	if k <= 0 {
		sc.PutInt32s(codes)
		return nil, nil, 0, 0, fmt.Errorf("otc: truncated literal section length")
	}
	raw = raw[k:]
	if litLen > uint64(len(raw)) {
		sc.PutInt32s(codes)
		return nil, nil, 0, 0, fmt.Errorf("otc: literal section shorter than declared (%d < %d)", len(raw), litLen)
	}

	fr := sc.FlateReader(bytes.NewReader(raw[:litLen]))
	buf := sc.Buffer()
	defer sc.PutBuffer(buf)
	if _, err := buf.ReadFrom(fr); err != nil {
		fr.Close()
		sc.PutFlateReader(fr)
		sc.PutInt32s(codes)
		return nil, nil, 0, 0, fmt.Errorf("otc: inflate: %w", err)
	}
	if err := fr.Close(); err != nil {
		sc.PutFlateReader(fr)
		sc.PutInt32s(codes)
		return nil, nil, 0, 0, err
	}
	sc.PutFlateReader(fr)
	lit := buf.Bytes()
	nlit, k := binary.Uvarint(lit)
	if k <= 0 {
		sc.PutInt32s(codes)
		return nil, nil, 0, 0, fmt.Errorf("otc: truncated literal count")
	}
	lit = lit[k:]
	if uint64(len(lit)) < nlit*8 {
		sc.PutInt32s(codes)
		return nil, nil, 0, 0, fmt.Errorf("otc: literal stream truncated")
	}
	literals = sc.Floats(int(nlit))
	for i := range literals {
		literals[i] = math.Float64frombits(binary.LittleEndian.Uint64(lit[i*8:]))
	}
	return codes, literals, int(bs), tr, nil
}

// decodePayloadLegacy decodes the pre-lane layout: the whole payload is
// one DEFLATE stream wrapping the transform id, block size, point count,
// single-stream Huffman block, and literal floats.
func decodePayloadLegacy(payload []byte, sc *codec.Scratch) (codes []int32, literals []float64, blockSize int, tr Transform, err error) {
	fr := sc.FlateReader(bytes.NewReader(payload))
	buf := sc.Buffer()
	defer sc.PutBuffer(buf)
	if _, err := buf.ReadFrom(fr); err != nil {
		return nil, nil, 0, 0, fmt.Errorf("otc: inflate: %w", err)
	}
	if err := fr.Close(); err != nil {
		return nil, nil, 0, 0, err
	}
	sc.PutFlateReader(fr)
	raw := buf.Bytes()
	if len(raw) < 1 {
		return nil, nil, 0, 0, fmt.Errorf("otc: empty payload")
	}
	tr = Transform(raw[0])
	if tr != TransformDCT && tr != TransformHaar {
		return nil, nil, 0, 0, fmt.Errorf("otc: unknown transform %d", raw[0])
	}
	raw = raw[1:]
	bs, k := binary.Uvarint(raw)
	if k <= 0 || bs == 0 || bs > 1<<20 {
		return nil, nil, 0, 0, fmt.Errorf("otc: bad block size")
	}
	raw = raw[k:]
	npoints, k := binary.Uvarint(raw)
	if k <= 0 {
		return nil, nil, 0, 0, fmt.Errorf("otc: truncated point count")
	}
	raw = raw[k:]
	if npoints > uint64(len(raw))*8 {
		// Every code costs at least one bit downstream; reject a corrupt
		// count before sizing the code buffer from it.
		return nil, nil, 0, 0, fmt.Errorf("otc: %d codes cannot fit in %d payload bytes", npoints, len(raw))
	}
	hd := sc.HuffDecode()
	codes, consumed, err := huffman.DecodeInto(sc.Int32s(int(npoints))[:0], raw, hd)
	sc.PutHuffDecode(hd)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if uint64(len(codes)) != npoints {
		sc.PutInt32s(codes)
		return nil, nil, 0, 0, fmt.Errorf("otc: decoded %d codes, want %d", len(codes), npoints)
	}
	raw = raw[consumed:]
	nlit, k := binary.Uvarint(raw)
	if k <= 0 {
		return nil, nil, 0, 0, fmt.Errorf("otc: truncated literal count")
	}
	raw = raw[k:]
	if uint64(len(raw)) < nlit*8 {
		sc.PutInt32s(codes)
		return nil, nil, 0, 0, fmt.Errorf("otc: literal stream truncated")
	}
	literals = sc.Floats(int(nlit))
	for i := range literals {
		literals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return codes, literals, int(bs), tr, nil
}
