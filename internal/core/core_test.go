package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Eq. 7 and Eq. 8 must be exact inverses.
func TestEq7Eq8Inverse(t *testing.T) {
	if err := quick.Check(func(raw float64) bool {
		psnr := math.Mod(math.Abs(raw), 200)
		if psnr == 0 {
			return true
		}
		ebRel := RelBoundForPSNR(psnr)
		back := EstimatePSNRFromRelBound(ebRel)
		return almostEqual(back, psnr, 1e-9)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEq8KnownValue(t *testing.T) {
	// PSNR = 60 dB → ebrel = √3·10⁻³.
	got := RelBoundForPSNR(60)
	want := math.Sqrt(3) * 1e-3
	if !almostEqual(got, want, 1e-15) {
		t.Fatalf("RelBoundForPSNR(60) = %g, want %g", got, want)
	}
}

func TestEq7MatchesEq6WithSZDelta(t *testing.T) {
	// SZ sets δ = 2·ebabs; Eq. 7 must equal Eq. 6 at that δ.
	vr, eb := 12.5, 3e-4
	if got, want := EstimatePSNRFromAbsBound(vr, eb), EstimatePSNRUniform(vr, 2*eb); !almostEqual(got, want, 1e-9) {
		t.Fatalf("Eq.7 %g != Eq.6 %g", got, want)
	}
}

func TestAbsBoundForPSNRScalesWithRange(t *testing.T) {
	if got := AbsBoundForPSNR(60, 10); !almostEqual(got, 10*RelBoundForPSNR(60), 1e-15) {
		t.Fatalf("AbsBoundForPSNR = %g", got)
	}
}

func TestDeltaForPSNRInvertsEq6(t *testing.T) {
	vr := 7.25
	for _, psnr := range []float64{20, 60, 100, 140} {
		delta := DeltaForPSNR(psnr, vr)
		if got := EstimatePSNRUniform(vr, delta); !almostEqual(got, psnr, 1e-9) {
			t.Fatalf("Eq.6(DeltaForPSNR(%g)) = %g", psnr, got)
		}
	}
}

func TestEstimatorEdgeCases(t *testing.T) {
	if !math.IsInf(EstimatePSNRUniform(0, 1), 1) {
		t.Fatal("zero range should be +Inf")
	}
	if !math.IsInf(EstimatePSNRUniform(1, 0), 1) {
		t.Fatal("zero delta should be +Inf (lossless)")
	}
	if !math.IsInf(EstimatePSNRFromAbsBound(1, 0), 1) {
		t.Fatal("zero bound should be +Inf")
	}
	if !math.IsInf(EstimatePSNRFromRelBound(0), 1) {
		t.Fatal("zero rel bound should be +Inf")
	}
}

// Eq. 3 with uniform bins and total one-sided probability 1/2 must reduce
// to the Eq. 6 closed form.
func TestLayoutEstimatorReducesToUniform(t *testing.T) {
	vr := 42.0
	delta := 1e-3 * vr
	n := 1000
	widths := make([]float64, n)
	density := make([]float64, n)
	for i := range widths {
		widths[i] = delta
		// Σ P(mi)·δ = 1/2 → P(mi) = 1/(2nδ) distributed arbitrarily;
		// uniform here.
		density[i] = 1 / (2 * float64(n) * delta)
	}
	mse, err := EstimateMSEFromLayout(widths, density)
	if err != nil {
		t.Fatal(err)
	}
	if want := delta * delta / 12; !almostEqual(mse, want, 1e-12*want) {
		t.Fatalf("layout MSE = %g, want %g", mse, want)
	}
	psnr, err := EstimatePSNRFromLayout(widths, density, vr)
	if err != nil {
		t.Fatal(err)
	}
	if want := EstimatePSNRUniform(vr, delta); !almostEqual(psnr, want, 1e-9) {
		t.Fatalf("layout PSNR = %g, want %g", psnr, want)
	}
}

func TestLayoutEstimatorValidates(t *testing.T) {
	if _, err := EstimateMSEFromLayout([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	if _, err := EstimateMSEFromLayout([]float64{-1}, []float64{1}); err == nil {
		t.Fatal("expected error for negative width")
	}
	if p, err := EstimatePSNRFromLayout(nil, nil, 1); err != nil || !math.IsInf(p, 1) {
		t.Fatalf("empty layout should be lossless: %g, %v", p, err)
	}
	if p, err := EstimatePSNRFromLayout([]float64{1}, []float64{0.5}, 0); err != nil || !math.IsInf(p, 1) {
		t.Fatalf("zero range should be +Inf: %g, %v", p, err)
	}
}

func TestQuantizationMSEUniformErrors(t *testing.T) {
	// Errors uniform in [−δ/2, δ/2) land in the center bin; their exact
	// quantization MSE approaches δ²/12.
	rng := rand.New(rand.NewSource(5))
	delta := 0.02
	errs := make([]float64, 200000)
	for i := range errs {
		errs[i] = (rng.Float64() - 0.5) * delta
	}
	mse, inRange := QuantizationMSE(errs, delta, 100)
	want := UniformAssumptionMSE(delta)
	if !almostEqual(mse, want, 0.02*want) {
		t.Fatalf("uniform-error MSE = %g, want ≈ %g", mse, want)
	}
	if inRange != 1 {
		t.Fatalf("inRange = %g, want 1", inRange)
	}
}

func TestQuantizationMSEPeakedErrorsBeatAssumption(t *testing.T) {
	// Sharply peaked errors (tiny compared to δ) have much lower true
	// quantization MSE than δ²/12 — the paper's explanation for the
	// overshoot at low PSNR targets.
	rng := rand.New(rand.NewSource(6))
	delta := 1.0
	errs := make([]float64, 50000)
	for i := range errs {
		errs[i] = rng.NormFloat64() * 0.01
	}
	mse, _ := QuantizationMSE(errs, delta, 100)
	if mse >= UniformAssumptionMSE(delta)/100 {
		t.Fatalf("peaked-error MSE %g not ≪ uniform assumption %g", mse, UniformAssumptionMSE(delta))
	}
}

func TestQuantizationMSEOutOfRange(t *testing.T) {
	// Errors beyond the radius are literals: zero contribution.
	errs := []float64{1000, -1000}
	mse, inRange := QuantizationMSE(errs, 1, 4)
	if mse != 0 || inRange != 0 {
		t.Fatalf("out-of-range: mse=%g inRange=%g", mse, inRange)
	}
	if m, r := QuantizationMSE(nil, 1, 4); m != 0 || r != 0 {
		t.Fatal("empty input should be zeros")
	}
	if m, r := QuantizationMSE([]float64{1}, 0, 4); m != 0 || r != 0 {
		t.Fatal("zero delta should be zeros")
	}
}

func TestPlanFixedPSNR(t *testing.T) {
	p, err := PlanFixedPSNR(80, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p.EbRel, math.Sqrt(3)*1e-4, 1e-18) {
		t.Fatalf("EbRel = %g", p.EbRel)
	}
	if !almostEqual(p.EbAbs, p.EbRel*100, 1e-15) {
		t.Fatalf("EbAbs = %g", p.EbAbs)
	}
	if p.Constant {
		t.Fatal("non-constant plan flagged constant")
	}
}

func TestPlanFixedPSNRConstantField(t *testing.T) {
	p, err := PlanFixedPSNR(80, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Constant {
		t.Fatal("zero-range plan should be constant")
	}
}

func TestPlanFixedPSNRValidates(t *testing.T) {
	for _, psnr := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := PlanFixedPSNR(psnr, 1); err == nil {
			t.Fatalf("expected error for target %g", psnr)
		}
	}
	for _, vr := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := PlanFixedPSNR(60, vr); err == nil {
			t.Fatalf("expected error for range %g", vr)
		}
	}
}

// The planned bound, pushed back through the estimator, reproduces the
// target exactly for any positive range.
func TestPlanRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(rawPSNR, rawVR float64) bool {
		psnr := 1 + math.Mod(math.Abs(rawPSNR), 180)
		vr := math.Abs(rawVR)
		if vr == 0 || math.IsInf(vr, 0) || math.IsNaN(vr) || vr > 1e30 {
			return true
		}
		p, err := PlanFixedPSNR(psnr, vr)
		if err != nil {
			return false
		}
		back := EstimatePSNRFromAbsBound(vr, p.EbAbs)
		return almostEqual(back, psnr, 1e-6)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
