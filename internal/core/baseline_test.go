package core

import (
	"errors"
	"math"
	"testing"
)

// analyticProbe simulates a compressor whose PSNR follows Eq. 7 plus a
// fixed bias, so the search target is reachable and monotone.
func analyticProbe(bias float64, count *int) CompressProbe {
	return func(ebRel float64) (float64, error) {
		*count++
		return EstimatePSNRFromRelBound(ebRel) + bias, nil
	}
}

func TestIterativeSearchConverges(t *testing.T) {
	for _, target := range []float64{25, 60, 95, 130} {
		count := 0
		res, err := IterativeSearch(target, 0.5, 60, analyticProbe(1.7, &count))
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		if !res.Converged {
			t.Fatalf("target %g did not converge: %+v", target, res)
		}
		if math.Abs(res.ActualPSNR-target) > 0.5 {
			t.Fatalf("target %g: actual %g", target, res.ActualPSNR)
		}
		if res.Iterations != count {
			t.Fatalf("iteration accounting mismatch: %d vs %d", res.Iterations, count)
		}
		if res.Iterations < 2 {
			t.Fatalf("target %g: suspiciously few iterations (%d) — the baseline should need several probes", target, res.Iterations)
		}
	}
}

func TestIterativeSearchImmediateHit(t *testing.T) {
	// Target exactly at the first probe's PSNR converges in one step.
	count := 0
	probe := analyticProbe(0, &count)
	first, _ := probe(1e-3)
	count = 0
	res, err := IterativeSearch(first, 0.5, 60, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Fatalf("expected 1-probe convergence, got %+v", res)
	}
}

func TestIterativeSearchPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := IterativeSearch(60, 0.5, 10, func(float64) (float64, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestIterativeSearchRespectsMaxIter(t *testing.T) {
	// A probe that never lands inside the tolerance but stays monotone.
	count := 0
	res, err := IterativeSearch(60, 1e-12, 7, analyticProbe(0.3, &count))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot converge with zero-width tolerance")
	}
	if res.Iterations != 7 {
		t.Fatalf("iterations = %d, want 7", res.Iterations)
	}
}

func TestIterativeSearchDefaults(t *testing.T) {
	// Non-positive tol and maxIter take defaults without panicking.
	count := 0
	res, err := IterativeSearch(60, 0, 0, analyticProbe(0, &count))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("default-parameter search failed: %+v", res)
	}
}

func TestIterativeSearchLowTarget(t *testing.T) {
	// Target below the first probe's PSNR forces the increase branch.
	count := 0
	res, err := IterativeSearch(12, 0.5, 60, analyticProbe(0, &count))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("low target did not converge: %+v", res)
	}
	if res.EbRel <= 1e-3 {
		t.Fatalf("low target should need a larger bound than the start: %g", res.EbRel)
	}
}
