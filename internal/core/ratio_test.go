package core

import (
	"math"
	"testing"
)

func TestWithinRatioTolerance(t *testing.T) {
	cases := []struct {
		achieved, target, tol float64
		want                  bool
	}{
		{16, 16, 0.05, true},
		{16.7, 16, 0.05, true},  // +4.4%
		{15.3, 16, 0.05, true},  // -4.4%
		{17.0, 16, 0.05, false}, // +6.3%
		{14.9, 16, 0.05, false},
		{0, 16, 0.05, false},
		{math.NaN(), 16, 0.05, false},
		{math.Inf(1), 16, 0.05, false},
		{-3, 16, 0.05, false},
	}
	for _, c := range cases {
		if got := WithinRatioTolerance(c.achieved, c.target, c.tol); got != c.want {
			t.Errorf("WithinRatioTolerance(%g, %g, %g) = %v, want %v", c.achieved, c.target, c.tol, got, c.want)
		}
	}
}

func TestInitialBoundForRatio(t *testing.T) {
	// Larger targets must start at larger (lossier) bounds, and the
	// guess must scale with the value range.
	b8 := InitialBoundForRatio(8, 1, 32)
	b64 := InitialBoundForRatio(64, 1, 32)
	if !(b64 > b8) || !(b8 > 0) {
		t.Fatalf("bounds must grow with the target: R=8 -> %g, R=64 -> %g", b8, b64)
	}
	if got := InitialBoundForRatio(8, 10, 32); math.Abs(got-10*b8) > 1e-12*b8 {
		t.Fatalf("bound must scale with vr: got %g, want %g", got, 10*b8)
	}
	if got := InitialBoundForRatio(8, 0, 32); got != 0 {
		t.Fatalf("zero range must yield zero bound, got %g", got)
	}
}

// TestNextBoundFixedRatioSecantExactOnPowerLaw: for ratio(b) = c·b^a the
// two-point log–log secant solves the target exactly (up to the clamp).
func TestNextBoundFixedRatioSecantExactOnPowerLaw(t *testing.T) {
	c, a := 100.0, 0.5
	ratio := func(b float64) float64 { return c * math.Pow(b, a) }
	b0, b1 := 1e-4, 2e-4
	target := 4.0
	next, err := NextBoundFixedRatio(32, b0, ratio(b0), b1, ratio(b1), target)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(target/c, 1/a)
	if math.Abs(next-want) > 1e-9*want {
		t.Fatalf("secant step = %g, want %g", next, want)
	}
}

// TestNextBoundFixedRatioSingleTightensTowardTarget: the entropy-model
// step from one point moves in the right direction.
func TestNextBoundFixedRatioSingleTightensTowardTarget(t *testing.T) {
	// Achieved 8 at bound 1e-3, target 32: need a coarser bound.
	up, err := NextBoundFixedRatio(32, 1e-3, 8, 0, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !(up > 1e-3) {
		t.Fatalf("undershooting the ratio must coarsen the bound, got %g", up)
	}
	// Achieved 32 at bound 1e-3, target 8: need a tighter bound.
	down, err := NextBoundFixedRatio(32, 1e-3, 32, 0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(down < 1e-3) {
		t.Fatalf("overshooting the ratio must tighten the bound, got %g", down)
	}
}

// TestNextBoundFixedRatioClamped: one step never moves more than 16× from
// the latest measured point.
func TestNextBoundFixedRatioClamped(t *testing.T) {
	next, err := NextBoundFixedRatio(64, 1e-6, 1.01, 0, 0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if next > 16e-6*(1+1e-12) {
		t.Fatalf("step %g exceeds the 16x clamp", next)
	}
	next, err = NextBoundFixedRatio(64, 1e-2, 1e6, 0, 0, 1.01)
	if err != nil {
		t.Fatal(err)
	}
	if next < 1e-2/16*(1-1e-12) {
		t.Fatalf("step %g exceeds the 1/16 clamp", next)
	}
}

func TestNextBoundFixedRatioRejectsBadInputs(t *testing.T) {
	bad := [][6]float64{
		{0, 1e-3, 8, 0, 0, 16},             // bpp
		{32, 0, 8, 0, 0, 16},               // b0
		{32, 1e-3, 0, 0, 0, 16},            // r0
		{32, 1e-3, 8, 0, 0, 0},             // target
		{32, 1e-3, 8, 0, 0, -4},            // negative target
		{32, math.Inf(1), 8, 0, 0, 16},     // inf b0
		{32, 1e-3, 8, math.NaN(), 2, 16},   // nan b1
		{32, 1e-3, 8, 1e-4, 2, math.NaN()}, // nan target (caught by !(target>0))
	}
	for _, c := range bad {
		if _, err := NextBoundFixedRatio(c[0], c[1], c[2], c[3], c[4], c[5]); err == nil {
			t.Errorf("NextBoundFixedRatio(%v) = nil error, want rejection", c)
		}
	}
}

// FuzzNextBoundFixedRatio: for any inputs the solver either errors or
// returns a strictly positive, finite bound — never NaN, never Inf, never
// zero — so the steering loop cannot be handed an unusable bound.
func FuzzNextBoundFixedRatio(f *testing.F) {
	f.Add(32.0, 1e-3, 8.0, 2e-3, 12.0, 16.0)
	f.Add(64.0, 1e-9, 1.0001, 0.0, 0.0, 1e6)
	f.Add(32.0, 1.0, 1e300, 2.0, 1e-300, 2.0)
	f.Add(64.0, math.MaxFloat64, 1e9, math.SmallestNonzeroFloat64, 1.5, 3.0)
	f.Fuzz(func(t *testing.T, bpp, b0, r0, b1, r1, target float64) {
		next, err := NextBoundFixedRatio(bpp, b0, r0, b1, r1, target)
		if err != nil {
			return
		}
		if !(next > 0) || math.IsInf(next, 0) || math.IsNaN(next) {
			t.Fatalf("NextBoundFixedRatio(%g,%g,%g,%g,%g,%g) = %g without error",
				bpp, b0, r0, b1, r1, target, next)
		}
		// The clamp invariant: within 16x of the latest measured point.
		latest := b0
		if b1 > 0 && r1 > 0 {
			latest = b1
		}
		if next > latest*16*(1+1e-9) || next < latest/16*(1-1e-9) {
			t.Fatalf("step %g outside the 16x clamp around %g", next, latest)
		}
	})
}
